(* Million-peer scale sweep (SCALING.md).

   Measures raw engine throughput (events/sec), memory footprint
   (live heap + process high-water RSS) and lookup latency percentiles
   over populations of 10k / 100k / 1M peers.

   Populations are built directly through the membership oracle — the
   paper's centralized server — rather than through protocol joins:
   every t-join invalidates all finger tables (an O(t) lazy rebuild)
   and every s-join scans the size table, so protocol-driven
   construction is O(n^2) and infeasible at these scales.  We register
   peers, wire the ring once with [World.stabilize_ring], and attach
   s-peers breadth-first under the degree constraint δ, exactly the
   end state the join protocol converges to.  The measured workload
   (inserts and lookups) then runs through the genuine protocol
   message paths.

   Output: BENCH_scale.json.  [run ~smoke:true] does the 10k point
   only, adds a lanes-determinism cross-check (1 vs 4 lanes must agree
   on event count and stored-item set size) and gates on an events/sec
   floor — the CI configuration. *)

module H = Hybrid_p2p.Hybrid
module World = Hybrid_p2p.World
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Id_space = P2p_hashspace.Id_space
module Routing = P2p_topology.Routing
module Engine = P2p_sim.Engine
module Trace = P2p_sim.Trace
module Rng = P2p_sim.Rng
module Metrics = P2p_net.Metrics
module Registry = P2p_obs.Registry
module Spans = P2p_obs.Spans
module Log_hist = P2p_obs.Log_hist
module Json = P2p_obs.Json

let underlay_latency_ms = 5.0
let s_fraction = 0.8

(* CI floor: an order-of-magnitude regression guard, not a race.  The
   seed machine drains well over 100k events/sec at the 10k point. *)
let smoke_min_events_per_s = 10_000.0

(* Telemetry overhead gate: sampled tracing at this rate must keep at
   least this fraction of the tracing-off throughput. *)
let telemetry_sample_rate = 0.01
let min_sampled_throughput_ratio = 0.9

type point = {
  n : int;
  lanes : int;
  lookahead : float;
  telemetry : string;  (* "off" | "sampled-<rate>" | "full" *)
  routing : string;  (* "synthetic" | "link_state" *)
  t_count : int;
  items : int;
  lookups : int;
  found : int;
  events : int;
  build_s : float;
  wall_s : float;
  events_per_s : float;
  live_bytes : int;
  bytes_per_peer : float;
  vm_rss_kb : int option;
  vm_hwm_kb : int option;
  p50_ms : float option;
  p99_ms : float option;
  hops_mean : float;
  hops_max : float;
  stored_total : int;
  invariant_error : string option;
}

(* ------------------------------------------------------------------ *)
(* Process memory                                                      *)

let proc_status_kb field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let prefix = field ^ ":" in
      let plen = String.length prefix in
      let rec scan () =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            None
        | line ->
            if String.length line > plen && String.sub line 0 plen = prefix
            then begin
              close_in ic;
              let rest = String.sub line plen (String.length line - plen) in
              try Scanf.sscanf rest " %d" (fun kb -> Some kb)
              with Scanf.Scan_failure _ | Failure _ -> None
            end
            else scan ()
      in
      scan ()

(* ------------------------------------------------------------------ *)
(* Oracle construction                                                 *)

(* Attach points for one s-network tree: a FIFO of (node, free slots).
   Popping the front and re-queueing both parent (if slots remain) and
   child grows the tree level-by-level, so depth stays O(log_δ size). *)
let populate h ~rng ~n =
  let w = H.world h in
  let interner = World.interner w in
  let cfg = H.config h in
  let delta = cfg.Config.delta in
  let t_count = max 1 (n - int_of_float (s_fraction *. float_of_int n)) in
  let used = Hashtbl.create (2 * t_count) in
  let rec fresh_p_id () =
    let id = Rng.int rng Id_space.size in
    if Hashtbl.mem used id then fresh_p_id ()
    else begin
      Hashtbl.add used id ();
      id
    end
  in
  let make_t host =
    let p =
      Peer.make ~interner ~host ~p_id:(fresh_p_id ()) ~role:Peer.T_peer
        ~link_capacity:1.0 ()
    in
    p.Peer.t_home <- Some p;
    World.register w p;
    p
  in
  let peers = Array.make n (make_t 0) in
  for host = 1 to t_count - 1 do
    peers.(host) <- make_t host
  done;
  World.stabilize_ring w;
  let roots = Array.sub peers 0 t_count in
  let slots =
    Array.map
      (fun r ->
        let q = Queue.create () in
        Queue.push (r, delta) q;
        q)
      roots
  in
  let sizes = Array.make t_count 0 in
  for host = t_count to n - 1 do
    let ri = (host - t_count) mod t_count in
    let q = slots.(ri) in
    let parent, free = Queue.pop q in
    let child =
      Peer.make ~interner ~host ~p_id:0 ~role:Peer.S_peer ~link_capacity:1.0
        ()
    in
    Peer.attach_child ~parent ~child;
    World.register w child;
    if free > 1 then Queue.push (parent, free - 1) q;
    (* an s-peer's cp edge uses one of its δ slots *)
    Queue.push (child, delta - 1) q;
    sizes.(ri) <- sizes.(ri) + 1;
    peers.(host) <- child
  done;
  Array.iteri (fun ri r -> World.set_snet_size w r sizes.(ri)) roots;
  (peers, t_count)

(* ------------------------------------------------------------------ *)
(* One sweep point                                                     *)

let sized n =
  (* items / lookups scale sub-linearly: the workload exercises the
     protocol paths; population size is what is under test *)
  let items = min 20_000 (max 2_000 (n / 50)) in
  let lookups = min 10_000 (max 2_000 (n / 100)) in
  (items, lookups)

(* A transit-stub topology with at least [n] nodes: the fixed 4x5
   backbone of the paper's topologies, 25-node stub domains, and as many
   stub domains per transit node as it takes to cover [n]. *)
let transit_stub_params n =
  let transit = 4 * 5 in
  let stub_nodes = 25 in
  let per_node =
    max 1 ((n - transit + (transit * stub_nodes) - 1) / (transit * stub_nodes))
  in
  {
    P2p_topology.Transit_stub.default_params with
    P2p_topology.Transit_stub.transit_domains = 4;
    transit_nodes = 5;
    stub_domains_per_node = per_node;
    stub_nodes;
  }

let link_state_routing ~seed n =
  let params = transit_stub_params n in
  let ts =
    P2p_topology.Transit_stub.generate ~rng:(Rng.create (seed + 3)) params
  in
  Routing.link_state ts.P2p_topology.Transit_stub.graph
    ~is_transit:(fun u ->
      match ts.P2p_topology.Transit_stub.classes.(u) with
      | P2p_topology.Transit_stub.Transit _ -> true
      | P2p_topology.Transit_stub.Stub _ -> false)

let measure_point ?(telemetry = `Full) ?(routing_mode = `Synthetic) ~seed ~n
    ~lanes ~lookahead () =
  let items, lookups = sized n in
  let routing, routing_label =
    match routing_mode with
    | `Synthetic ->
      (Routing.synthetic ~nodes:n ~latency:underlay_latency_ms, "synthetic")
    | `Link_state -> (link_state_routing ~seed n, "link_state")
  in
  let config =
    (* successor-walk data routing is O(t) per operation — fine at the
       paper's 384 peers, hopeless at 10k+; the sweep measures the
       finger-routed configuration *)
    { Config.default with Config.engine_lanes = lanes;
      engine_lookahead = lookahead; use_fingers_for_data = true }
  in
  (* Ring buffer sized so the lookup phase stays fully traced. *)
  let capacity = max 100_000 (60 * lookups) in
  let trace, telemetry_label =
    match telemetry with
    | `Off -> (None, "off")
    | `Sampled rate ->
      ( Some (Trace.create ~capacity ~sample_rate:rate ~sample_seed:seed ()),
        Printf.sprintf "sampled-%g" rate )
    | `Full -> (Some (Trace.create ~capacity ()), "full")
  in
  let h = H.create ~seed ~routing ~config ?trace () in
  let rng = Rng.create (seed + 17) in
  let t0 = Sys.time () in
  let peers, t_count = populate h ~rng ~n in
  let build_s = Sys.time () -. t0 in
  let key i = Printf.sprintf "item-%06d" i in
  let e = H.engine h in
  let ev0 = Engine.events_executed e in
  let w0 = Sys.time () in
  for i = 0 to items - 1 do
    let from = peers.(Rng.int rng n) in
    H.insert h ~from ~key:(key i) ~value:(Printf.sprintf "v%d" i) ();
    H.run h
  done;
  let found = ref 0 in
  for _ = 1 to lookups do
    let from = peers.(Rng.int rng n) in
    let i = Rng.int rng items in
    H.lookup h ~from ~key:(key i)
      ~on_result:(function
        | Data_ops.Found _ -> incr found
        | Data_ops.Timed_out -> ())
      ();
    H.run h
  done;
  let wall_s = Sys.time () -. w0 in
  let events = Engine.events_executed e - ev0 in
  let events_per_s =
    if wall_s > 0.0 then float_of_int events /. wall_s else 0.0
  in
  (* Lookup latency percentiles from the exact op-completion histograms
     (all ops counted at every sample rate; empty with tracing off). *)
  let reg = Metrics.registry (H.metrics h) in
  if Trace.enabled (H.trace h) then Spans.record reg (H.trace h);
  let hist =
    Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms"
  in
  let p50_ms, p99_ms =
    if Log_hist.count hist > 0 then
      (Some (Log_hist.percentile hist 50.0), Some (Log_hist.percentile hist 99.0))
    else (None, None)
  in
  let hops = Metrics.lookup_hops (H.metrics h) in
  let stored_total = H.total_items h in
  let invariant_error =
    match H.check_invariants h with Ok () -> None | Error m -> Some m
  in
  Gc.compact ();
  let live_bytes = (Gc.stat ()).Gc.live_words * (Sys.word_size / 8) in
  let point =
    {
      n;
      lanes;
      lookahead;
      telemetry = telemetry_label;
      routing = routing_label;
      t_count;
      items;
      lookups;
      found = !found;
      events;
      build_s;
      wall_s;
      events_per_s;
      live_bytes;
      bytes_per_peer = float_of_int live_bytes /. float_of_int n;
      vm_rss_kb = proc_status_kb "VmRSS";
      vm_hwm_kb = proc_status_kb "VmHWM";
      p50_ms;
      p99_ms;
      hops_mean = P2p_stats.Summary.mean hops;
      hops_max = P2p_stats.Summary.max hops;
      stored_total;
      invariant_error;
    }
  in
  point

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let opt_float = function Some f -> Json.Float f | None -> Json.Null
let opt_kb = function Some kb -> Json.Int kb | None -> Json.Null

let point_json p =
  Json.Obj
    [
      (* which transport backend carried the run — benches always drive
         the deterministic sim seam; live-ring figures come from
         `p2psim serve` health dumps instead *)
      ("transport", Json.String "sim");
      ("peers", Json.Int p.n);
      ("t_peers", Json.Int p.t_count);
      ("lanes", Json.Int p.lanes);
      ("lookahead_ms", Json.Float p.lookahead);
      ("telemetry", Json.String p.telemetry);
      ("routing", Json.String p.routing);
      ("items", Json.Int p.items);
      ("lookups", Json.Int p.lookups);
      ("found", Json.Int p.found);
      ("stored_total", Json.Int p.stored_total);
      ("build_cpu_s", Json.Float p.build_s);
      ("workload_cpu_s", Json.Float p.wall_s);
      ("events", Json.Int p.events);
      ("events_per_s", Json.Float p.events_per_s);
      ("live_heap_bytes", Json.Int p.live_bytes);
      ("bytes_per_peer", Json.Float p.bytes_per_peer);
      ("vm_rss_kb", opt_kb p.vm_rss_kb);
      ("vm_hwm_kb", opt_kb p.vm_hwm_kb);
      ("lookup_p50_ms", opt_float p.p50_ms);
      ("lookup_p99_ms", opt_float p.p99_ms);
      ("lookup_hops_mean", Json.Float p.hops_mean);
      ("lookup_hops_max", Json.Float p.hops_max);
      ( "invariants",
        match p.invariant_error with
        | None -> Json.String "ok"
        | Some m -> Json.String m );
    ]

let print_point p =
  Printf.printf
    "  %7d peers (%d t) [%-12s %-10s]  %8.0f ev/s  %6.1f MB live (%5.0f B/peer)  found %d/%d  p50 %s p99 %s\n%!"
    p.n p.t_count p.telemetry p.routing p.events_per_s
    (float_of_int p.live_bytes /. 1048576.0)
    p.bytes_per_peer p.found p.lookups
    (match p.p50_ms with Some f -> Printf.sprintf "%.1fms" f | None -> "-")
    (match p.p99_ms with Some f -> Printf.sprintf "%.1fms" f | None -> "-")

let write_json ~path doc =
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let run ~smoke () =
  let seed = 42 in
  Printf.printf "== scale sweep%s ==\n%!" (if smoke then " (smoke)" else "");
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* 10k point, single lane: the reference measurement. *)
  let p10k = measure_point ~seed ~n:10_000 ~lanes:1 ~lookahead:0.0 () in
  print_point p10k;
  (* Telemetry cost at the same point: tracing off (the throughput
     ceiling) and head-sampled tracing (the scale configuration). *)
  let p10k_off =
    measure_point ~telemetry:`Off ~seed ~n:10_000 ~lanes:1 ~lookahead:0.0 ()
  in
  print_point p10k_off;
  let p10k_sampled =
    measure_point
      ~telemetry:(`Sampled telemetry_sample_rate)
      ~seed ~n:10_000 ~lanes:1 ~lookahead:0.0 ()
  in
  print_point p10k_sampled;
  let overhead_pct p =
    if p10k_off.events_per_s > 0.0 then
      100.0 *. (1.0 -. (p.events_per_s /. p10k_off.events_per_s))
    else 0.0
  in
  let telemetry_overhead_pct = overhead_pct p10k in
  let sampled_overhead_pct = overhead_pct p10k_sampled in
  Printf.printf
    "  telemetry overhead vs off: full %.1f%%, sampled(%g) %.1f%%\n%!"
    telemetry_overhead_pct telemetry_sample_rate sampled_overhead_pct;
  if
    p10k_sampled.events_per_s
    < min_sampled_throughput_ratio *. p10k_off.events_per_s
  then
    fail
      "sampled tracing (rate %g) throughput %.0f ev/s is below %.0f%% of \
       tracing-off %.0f ev/s"
      telemetry_sample_rate p10k_sampled.events_per_s
      (100.0 *. min_sampled_throughput_ratio)
      p10k_off.events_per_s;
  (* Telemetry must never change the simulation itself. *)
  if p10k_off.events <> p10k.events || p10k_sampled.events <> p10k.events then
    fail "telemetry changed the event schedule (off %d, sampled %d, full %d)"
      p10k_off.events p10k_sampled.events p10k.events;
  if p10k_sampled.found <> p10k.found || p10k_off.found <> p10k.found then
    fail "telemetry changed lookup outcomes (off %d, sampled %d, full %d)"
      p10k_off.found p10k_sampled.found p10k.found;
  (* Lanes determinism: 4 lanes with zero lookahead must replay the
     exact single-lane schedule — same event count, same outcome. *)
  let p10k_l4 = measure_point ~seed ~n:10_000 ~lanes:4 ~lookahead:0.0 () in
  print_point p10k_l4;
  if p10k_l4.events <> p10k.events then
    fail "lanes=4 executed %d events, lanes=1 executed %d (determinism broken)"
      p10k_l4.events p10k.events;
  if p10k_l4.stored_total <> p10k.stored_total then
    fail "lanes=4 stored %d items, lanes=1 stored %d (determinism broken)"
      p10k_l4.stored_total p10k.stored_total;
  if p10k_l4.found <> p10k.found then
    fail "lanes=4 found %d lookups, lanes=1 found %d (determinism broken)"
      p10k_l4.found p10k.found;
  (* Bounded-skew mode: results may legitimately differ in event order;
     reported as its own sample, not gated for equality. *)
  let p10k_la = measure_point ~seed ~n:10_000 ~lanes:4 ~lookahead:2.0 () in
  print_point p10k_la;
  if p10k.events_per_s < smoke_min_events_per_s then
    fail "events/sec %.0f below floor %.0f" p10k.events_per_s
      smoke_min_events_per_s;
  (match p10k.invariant_error with
  | None -> ()
  | Some msg -> fail "invariants violated at 10k: %s" msg);
  (* The real transit-stub underlay, routed with the precomputed
     link-state tables: since PR-9 this holds the same events/sec floor
     as the synthetic clique — physical routing is no longer the reason
     to fake the underlay at scale. *)
  let p10k_ls =
    measure_point ~routing_mode:`Link_state ~seed ~n:10_000 ~lanes:1
      ~lookahead:0.0 ()
  in
  print_point p10k_ls;
  if p10k_ls.events_per_s < smoke_min_events_per_s then
    fail "link_state routed graph: events/sec %.0f below floor %.0f"
      p10k_ls.events_per_s smoke_min_events_per_s;
  (match p10k_ls.invariant_error with
  | None -> ()
  | Some msg -> fail "invariants violated at 10k (link_state): %s" msg);
  let points =
    ref [ p10k; p10k_off; p10k_sampled; p10k_l4; p10k_la; p10k_ls ]
  in
  let attempted_1m = ref "not attempted (smoke mode)" in
  if not smoke then begin
    let p100k = measure_point ~seed ~n:100_000 ~lanes:1 ~lookahead:0.0 () in
    print_point p100k;
    points := !points @ [ p100k ];
    (match measure_point ~seed ~n:1_000_000 ~lanes:1 ~lookahead:0.0 () with
    | p1m ->
        print_point p1m;
        points := !points @ [ p1m ];
        attempted_1m := "completed"
    | exception Out_of_memory ->
        attempted_1m := "out of memory";
        Printf.printf "  1M point: out of memory\n%!")
  end;
  let doc =
    Json.Obj
      [
        ("bench", Json.String "scale");
        ("smoke", Json.Bool smoke);
        ("seed", Json.Int seed);
        ("s_fraction", Json.Float s_fraction);
        ("underlay_latency_ms", Json.Float underlay_latency_ms);
        ("one_million_point", Json.String !attempted_1m);
        ( "lanes_deterministic",
          Json.Bool
            (p10k_l4.events = p10k.events
            && p10k_l4.stored_total = p10k.stored_total
            && p10k_l4.found = p10k.found) );
        ( "telemetry",
          Json.Obj
            [
              ("sample_rate", Json.Float telemetry_sample_rate);
              ("off_events_per_s", Json.Float p10k_off.events_per_s);
              ("sampled_events_per_s", Json.Float p10k_sampled.events_per_s);
              ("full_events_per_s", Json.Float p10k.events_per_s);
              ("telemetry_overhead_pct", Json.Float telemetry_overhead_pct);
              ("sampled_overhead_pct", Json.Float sampled_overhead_pct);
              ( "min_sampled_throughput_ratio",
                Json.Float min_sampled_throughput_ratio );
            ] );
        ("points", Json.List (List.map point_json !points));
        ( "gate",
          Json.Obj
            [
              ("min_events_per_s", Json.Float smoke_min_events_per_s);
              ("failures", Json.List
                 (List.rev_map (fun s -> Json.String s) !failures));
            ] );
      ]
  in
  write_json ~path:"BENCH_scale.json" doc;
  match !failures with
  | [] -> Printf.printf "scale gate: PASS\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "scale gate FAIL: %s\n%!" f)
        (List.rev fs);
      exit 1
