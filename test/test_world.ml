(* Unit tests for Hybrid_p2p.World: the membership directory, the
   server's assignment policies, the ring oracle, finger maintenance and
   ring stabilization. *)

open Helpers
module Id_space = P2p_hashspace.Id_space
module Landmark = P2p_topology.Landmark
module Graph = P2p_topology.Graph
module Routing = P2p_topology.Routing
module Rng = P2p_sim.Rng
module Interest = Hybrid_p2p.Interest

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* a quiesced world with an explicit ring of t-peers at given p_ids *)
let world_with_ring ?(config = default_config) ids =
  let h = H.create_star ~seed:90 ~peers:64 ~config () in
  let peers =
    List.mapi
      (fun host p_id ->
        let p = H.join h ~host ~role:Peer.T_peer ~p_id () in
        H.run h;
        p)
      ids
  in
  (h, peers)

let test_membership_directory () =
  let h, peers = world_with_ring [ 100; 200; 300 ] in
  let w = H.world h in
  checki "count" 3 (World.peer_count w);
  List.iter
    (fun p ->
      match World.find_peer w ~host:p.Peer.host with
      | Some q -> checkb "found self" true (q == p)
      | None -> Alcotest.fail "missing peer")
    peers;
  checkb "absent host" true (World.find_peer w ~host:63 = None);
  World.unregister w (List.hd peers);
  checki "unregistered" 2 (World.peer_count w)

let test_t_peers_sorted () =
  let h, _ = world_with_ring [ 500; 100; 300 ] in
  let arr = World.t_peers (H.world h) in
  Alcotest.check (Alcotest.list Alcotest.int) "sorted by p_id" [ 100; 300; 500 ]
    (Array.to_list (Array.map (fun p -> p.Peer.p_id) arr))

let test_t_peers_cache_matches_oracle () =
  (* The sorted t-peer array is cached behind a dirty bit; after every
     kind of membership churn it must equal a from-scratch recompute. *)
  let h, _ = star_system ~n:48 ~ps:0.6 () in
  let w = H.world h in
  let recompute () =
    World.live_peers w
    |> List.filter Peer.is_t_peer
    |> List.map (fun p -> p.Peer.p_id)
    |> List.sort compare
  in
  let cached () =
    World.t_peers w |> Array.to_list |> List.map (fun p -> p.Peer.p_id)
  in
  let agree label =
    Alcotest.check (Alcotest.list Alcotest.int) label (recompute ()) (cached ())
  in
  agree "after build";
  let victim =
    List.find Peer.is_t_peer (World.live_peers w)
  in
  H.crash h victim;
  H.run h;
  agree "after t-peer crash";
  ignore (H.grow h ~count:6 ~s_fraction:0.0 : Peer.t array);
  agree "after t-joins";
  (match List.find_opt (fun p -> Peer.is_t_peer p && p.Peer.alive) (World.live_peers w) with
   | Some p ->
     H.leave h p ();
     H.run h;
     agree "after graceful t-leave"
   | None -> Alcotest.fail "no live t-peer left")

let test_oracle_owner () =
  let h, peers = world_with_ring [ 100; 200; 300 ] in
  let w = H.world h in
  let owner id = (Option.get (World.oracle_owner w id)).Peer.p_id in
  checki "interior" 200 (owner 150);
  checki "exact" 200 (owner 200);
  checki "wraps" 100 (owner 301);
  checki "before first" 100 (owner 50);
  List.iter (fun p -> H.crash h p) peers;
  checkb "empty ring" true (World.oracle_owner w 1 = None)

let test_smallest_s_network_policy () =
  let h, tpeers = world_with_ring [ 100; 200 ] in
  let w = H.world h in
  let t0 = List.nth tpeers 0 and t1 = List.nth tpeers 1 in
  (* grow t0's s-network by hand through the size table *)
  World.set_snet_size w t0 5;
  World.set_snet_size w t1 1;
  let joiner = Peer.make ~host:60 ~p_id:0 ~role:Peer.S_peer ~link_capacity:1.0 () in
  (match World.choose_s_network w ~joiner with
   | Some t -> checkb "smallest wins" true (t == t1)
   | None -> Alcotest.fail "no assignment");
  World.set_snet_size w t1 9;
  (match World.choose_s_network w ~joiner with
   | Some t -> checkb "flips when sizes flip" true (t == t0)
   | None -> Alcotest.fail "no assignment")

let test_by_interest_policy_uses_route_id () =
  let h = H.create_star ~seed:91 ~peers:64 ~snet_policy:Hybrid_p2p.World.By_interest () in
  let home0 = H.join h ~host:0 ~role:Peer.T_peer ~p_id:(Interest.route_id 0) () in
  H.run h;
  let home1 = H.join h ~host:1 ~role:Peer.T_peer ~p_id:(Interest.route_id 1) () in
  H.run h;
  let w = H.world h in
  let joiner interest =
    Peer.make ~host:50 ~p_id:0 ~role:Peer.S_peer ~link_capacity:1.0 ~interest ()
  in
  (match World.choose_s_network w ~joiner:(joiner 0) with
   | Some t -> checkb "category 0 -> its home" true (t == home0)
   | None -> Alcotest.fail "no assignment");
  (match World.choose_s_network w ~joiner:(joiner 1) with
   | Some t -> checkb "category 1 -> its home" true (t == home1)
   | None -> Alcotest.fail "no assignment");
  (* a peer without interest falls back to load balancing *)
  let no_interest = Peer.make ~host:51 ~p_id:0 ~role:Peer.S_peer ~link_capacity:1.0 () in
  checkb "no-interest handled" true (World.choose_s_network w ~joiner:no_interest <> None)

let test_by_cluster_prefers_local_t_peer () =
  (* line graph: two halves; landmarks at the ends *)
  let g = Graph.create 10 in
  for i = 0 to 8 do
    Graph.add_edge g i (i + 1) ~latency:1.0
  done;
  let routing = Routing.create g in
  let landmark = Landmark.create routing ~landmarks:[ 0; 9 ] ~levels:[] in
  let h =
    Hybrid_p2p.Hybrid.create ~seed:92 ~routing
      ~snet_policy:(Hybrid_p2p.World.By_cluster landmark) ()
  in
  (* one t-peer per half *)
  let t_left = H.join h ~host:1 ~role:Peer.T_peer () in
  H.run h;
  let t_right = H.join h ~host:8 ~role:Peer.T_peer () in
  H.run h;
  let w = H.world h in
  let joiner host = Peer.make ~host ~p_id:0 ~role:Peer.S_peer ~link_capacity:1.0 () in
  (match World.choose_s_network w ~joiner:(joiner 2) with
   | Some t -> checkb "left joiner -> left t-peer" true (t == t_left)
   | None -> Alcotest.fail "no assignment");
  match World.choose_s_network w ~joiner:(joiner 7) with
  | Some t -> checkb "right joiner -> right t-peer" true (t == t_right)
  | None -> Alcotest.fail "no assignment"

let test_fresh_p_id_in_range () =
  let h, _ = world_with_ring [ 100 ] in
  let w = H.world h in
  for _ = 1 to 200 do
    checkb "valid" true (Id_space.valid (World.fresh_p_id w))
  done

let test_refresh_and_substitute_fingers () =
  let h, peers = world_with_ring [ 100; 200; 300; 400 ] in
  let w = H.world h in
  World.ensure_fingers w;
  let p100 = List.nth peers 0 and p200 = List.nth peers 1 in
  (* finger 0 of 100 targets 101 -> owner is 200 *)
  (match p100.Peer.fingers.(0) with
   | Some f -> checki "finger 0" 200 f.Peer.p_id
   | None -> Alcotest.fail "no finger");
  (* substitution: replace 200 by a stand-in everywhere *)
  let stand_in = Peer.make ~host:60 ~p_id:200 ~role:Peer.T_peer ~link_capacity:1.0 () in
  World.substitute_in_fingers w ~old_peer:p200 ~replacement:stand_in;
  (match p100.Peer.fingers.(0) with
   | Some f -> checkb "substituted" true (f == stand_in)
   | None -> Alcotest.fail "no finger")

let test_stabilize_ring_rewires () =
  let h, peers = world_with_ring [ 100; 200; 300; 400 ] in
  let w = H.world h in
  (* scramble the pointers *)
  List.iter
    (fun p ->
      p.Peer.succ <- Some p;
      p.Peer.pred <- None)
    peers;
  World.stabilize_ring w;
  match Hybrid_p2p.T_network.check_ring w with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_snet_size_accounting_via_joins () =
  let h, tpeers = world_with_ring [ 100 ] in
  let w = H.world h in
  let root = List.hd tpeers in
  checki "starts empty" 0 (World.snet_size w root);
  for host = 10 to 14 do
    ignore (H.join h ~host ~role:Peer.S_peer () : Peer.t);
    H.run h
  done;
  checki "five joined" 5 (World.snet_size w root);
  let victim = List.find Peer.is_s_peer (H.peers h) in
  H.leave h victim ();
  H.run h;
  checki "one left" 4 (World.snet_size w root)

let suite =
  [
    Alcotest.test_case "membership directory" `Quick test_membership_directory;
    Alcotest.test_case "t-peers sorted" `Quick test_t_peers_sorted;
    Alcotest.test_case "t-peers cache = oracle under churn" `Quick
      test_t_peers_cache_matches_oracle;
    Alcotest.test_case "oracle owner" `Quick test_oracle_owner;
    Alcotest.test_case "policy: smallest s-network" `Quick test_smallest_s_network_policy;
    Alcotest.test_case "policy: by interest" `Quick test_by_interest_policy_uses_route_id;
    Alcotest.test_case "policy: by cluster prefers local" `Quick
      test_by_cluster_prefers_local_t_peer;
    Alcotest.test_case "fresh p_id in range" `Quick test_fresh_p_id_in_range;
    Alcotest.test_case "finger refresh and substitution" `Quick
      test_refresh_and_substitute_fingers;
    Alcotest.test_case "stabilize_ring rewires" `Quick test_stabilize_ring_rewires;
    Alcotest.test_case "s-network size accounting" `Quick test_snet_size_accounting_via_joins;
  ]
