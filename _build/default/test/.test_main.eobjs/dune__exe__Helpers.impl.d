test/helpers.ml: Alcotest Hybrid_p2p List Printf
