bench/ablations.ml: Array Churn Config Data_ops Experiments H Hashtbl Keys List Metrics Option P2p_sim P2p_stats P2p_topology Peer Printf Rng Stdlib World
