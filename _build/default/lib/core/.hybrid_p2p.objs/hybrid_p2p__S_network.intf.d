lib/core/s_network.mli: Peer World
