type handle = Event_queue.handle

type labeled = { label : string option; thunk : unit -> unit }

type label_stats = { mutable fires : int; mutable cpu_s : float }

type t = {
  queue : labeled Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  root_rng : Rng.t;
  mutable queue_hwm : int;
  mutable profiling : bool;
  label_table : (string, label_stats) Hashtbl.t;
}

let create ~seed () =
  {
    queue = Event_queue.create ();
    clock = 0.0;
    executed = 0;
    root_rng = Rng.create seed;
    queue_hwm = 0;
    profiling = false;
    label_table = Hashtbl.create 16;
  }

let rng t = t.root_rng

let now t = t.clock

let enable_profiling t = t.profiling <- true

let profiling t = t.profiling

let add t ~time ~label f =
  let h = Event_queue.add t.queue ~time { label; thunk = f } in
  let depth = Event_queue.length t.queue in
  if depth > t.queue_hwm then t.queue_hwm <- depth;
  h

let schedule ?label t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  add t ~time:(t.clock +. delay) ~label f

let schedule_at ?label t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  add t ~time ~label f

let cancel = Event_queue.cancel

let account t label cpu_s =
  let stats =
    match Hashtbl.find_opt t.label_table label with
    | Some s -> s
    | None ->
      let s = { fires = 0; cpu_s = 0.0 } in
      Hashtbl.add t.label_table label s;
      s
  in
  stats.fires <- stats.fires + 1;
  stats.cpu_s <- stats.cpu_s +. cpu_s

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, { label; thunk }) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    (match label with
     | Some label when t.profiling ->
       let started = Sys.time () in
       thunk ();
       account t label (Sys.time () -. started)
     | Some _ | None -> thunk ());
    true

let rec run t = if step t then run t

let run_until t ~time =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some event_time when event_time <= time ->
      ignore (step t : bool);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if time > t.clock then t.clock <- time

let events_executed t = t.executed

let pending t = Event_queue.live_length t.queue

let queue_high_water t = t.queue_hwm

let profile t =
  Hashtbl.fold
    (fun label s acc -> (label, s.fires, s.cpu_s) :: acc)
    t.label_table []
  |> List.sort compare
