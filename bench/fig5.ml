(* Fig. 5a: lookup failure ratio vs p_s for TTL in {1, 2, 4}.
   Fig. 5b: lookup failure ratio vs crashed fraction for several p_s
   (peers leave abruptly without transferring their data; Section 6.2).
   Durability: Fig 5b's sweep with the replication layer on — failure
   ratio and items lost vs cumulative crashed fraction, r in {0, 1, 2}. *)

open Experiments
module Ascii_plot = P2p_stats.Ascii_plot
module Replication = P2p_replication.Manager

let fig5a ~scale () =
  header "Fig 5a — lookup failure ratio vs p_s, TTL in {1, 2, 4}";
  row "%6s  %10s  %10s  %10s\n" "p_s" "TTL=1" "TTL=2" "TTL=4";
  let collected = ref [] in
  List.iter
    (fun ps ->
      let ratios =
        List.map
          (fun ttl ->
            let b = build ~seed:5 ~ps ~scale () in
            insert_corpus b;
            run_lookups ~ttl b ~count:scale.n_lookups;
            Metrics.failure_ratio (H.metrics b.h))
          [ 1; 2; 4 ]
      in
      match ratios with
      | [ r1; r2; r4 ] ->
        collected := (ps, r1, r2, r4) :: !collected;
        row "%6.2f  %10.4f  %10.4f  %10.4f\n%!" ps r1 r2 r4
      | _ -> assert false)
    ps_sweep;
  let points f = List.rev_map (fun (ps, a, b, c) -> (ps, f (a, b, c))) !collected in
  print_string
    (Ascii_plot.line_chart
       ~series:
         [ { Ascii_plot.name = "TTL=1"; points = points (fun (a, _, _) -> a) };
           { Ascii_plot.name = "TTL=2"; points = points (fun (_, b, _) -> b) };
           { Ascii_plot.name = "TTL=4"; points = points (fun (_, _, c) -> c) } ]
       ())

let fig5b ~scale () =
  header "Fig 5b — lookup failure ratio vs crashed fraction (no load transfer)";
  row "%8s  %10s  %10s  %10s\n" "crashed" "p_s=0.4" "p_s=0.6" "p_s=0.8";
  List.iter
    (fun fraction ->
      let ratios =
        List.map
          (fun ps ->
            let b = build ~seed:6 ~ps ~scale () in
            insert_corpus b;
            let victims =
              Churn.crash_storm ~rng:b.rng ~population:(Array.length b.peers) ~fraction
            in
            Array.iter (fun i -> H.crash b.h b.peers.(i)) victims;
            H.repair b.h;
            H.run b.h;
            run_lookups b ~count:scale.n_lookups;
            Metrics.failure_ratio (H.metrics b.h))
          [ 0.4; 0.6; 0.8 ]
      in
      match ratios with
      | [ a; b; c ] -> row "%8.2f  %10.4f  %10.4f  %10.4f\n%!" fraction a b c
      | _ -> assert false)
    [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3 ]

(* Extends Fig 5b with the durability layer: the crashed fraction
   accumulates in 5%-of-population waves with a repair (and, with r > 0,
   its replication heal) between waves — the sustained-churn regime the
   layer is built for, rather than one simultaneous storm that can wipe a
   primary and all its replicas before any reaction. *)
let durability ~scale () =
  header "Durability — failure ratio & items lost vs crashed fraction (p_s = 0.6, waves of 5%)";
  let factors = [ 0; 1; 2 ] in
  let wave = 0.05 in
  row "%8s  %30s  %30s\n" "crashed" "failure ratio (r=0/1/2)" "items lost (r=0/1/2)";
  let collected = ref [] in
  List.iter
    (fun fraction ->
      let results =
        List.map
          (fun r ->
            let config = { Config.default with Config.replication_factor = r } in
            let b = build ~config ~seed:6 ~ps:0.6 ~scale () in
            let manager =
              if r > 0 then Some (Replication.install (H.world b.h)) else None
            in
            ignore (manager : Replication.t option);
            insert_corpus b;
            let before = H.total_items b.h in
            let n0 = Array.length b.peers in
            let waves = int_of_float (Float.round (fraction /. wave)) in
            for _ = 1 to waves do
              let live = Array.of_list (H.peers b.h) in
              let per_wave =
                min
                  (int_of_float (Float.round (wave *. float_of_int n0)))
                  (Array.length live - 1)
              in
              let victims =
                Churn.crash_storm ~rng:b.rng ~population:(Array.length live)
                  ~fraction:(float_of_int per_wave /. float_of_int (Array.length live))
              in
              Array.iter (fun i -> H.crash b.h live.(i)) victims;
              H.repair b.h;
              H.run b.h
            done;
            run_lookups b ~count:scale.n_lookups;
            let lost = before - H.total_items b.h in
            (Metrics.failure_ratio (H.metrics b.h), lost))
          factors
      in
      match results with
      | [ (f0, l0); (f1, l1); (f2, l2) ] ->
        collected := (fraction, f0, f1, f2) :: !collected;
        row "%8.2f  %10.4f%10.4f%10.4f  %10d%10d%10d\n%!" fraction f0 f1 f2 l0 l1 l2
      | _ -> assert false)
    [ 0.0; 0.05; 0.1; 0.15; 0.2 ];
  let points f = List.rev_map (fun (fr, a, b, c) -> (fr, f (a, b, c))) !collected in
  print_string
    (Ascii_plot.line_chart
       ~series:
         [ { Ascii_plot.name = "r=0"; points = points (fun (a, _, _) -> a) };
           { Ascii_plot.name = "r=1"; points = points (fun (_, b, _) -> b) };
           { Ascii_plot.name = "r=2"; points = points (fun (_, _, c) -> c) } ]
       ())
