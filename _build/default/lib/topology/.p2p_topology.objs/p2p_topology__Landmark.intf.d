lib/topology/landmark.mli: P2p_sim Routing
