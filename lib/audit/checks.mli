(** Catalogue of named, individually runnable invariant checks.

    Each check inspects a live {!Hybrid_p2p.World.t} and reports every
    violation it can find (not just the first), plus health gauges.  The
    checks mirror the paper's structural invariants — t-ring
    successor/predecessor symmetry (Section 3.2.1), s-tree shape and the
    degree cap δ (Section 3.2.2), data placement under Schemes A/B — and
    add a load-balance view (items-per-peer spread and a Gini
    coefficient).

    Unlike {!Hybrid_p2p.Hybrid.check_invariants}, which presumes
    quiescence, these checks are safe to run {e online}, mid-churn:
    protocol states that are legitimately in flight (an engaged join
    mutex, a subtree walking back to its root after a graceful leave) are
    recognized and skipped rather than misreported.  Genuine damage — a
    dangling ring pointer to a crashed peer, a tree edge over the degree
    cap, an item outside its owner's segment — is still caught the moment
    it exists. *)

(** [Error] marks structural damage; [Warning] marks drift that routing
    survives (e.g. stale server-side accounting). *)
type severity = Warning | Error

val severity_to_string : severity -> string

type violation = {
  check : string;  (** name of the check that found it *)
  severity : severity;
  subject : int option;  (** host of the offending peer, when one exists *)
  detail : string;
}

(** Outcome of one check over one world state. *)
type status = {
  name : string;
  violations : violation list;
  gauges : (string * float) list;  (** health gauges, e.g. load balance *)
}

(** One catalogue run: every selected check at one simulated instant. *)
type snapshot = {
  time : float;
  statuses : status list;
}

type check

val check_name : check -> string

(** One-line description, for [--help]-style listings. *)
val describe : check -> string

(** The full catalogue, in canonical order: [ring_symmetry],
    [finger_tables], [tree_structure], [membership], [data_placement],
    [replication_factor], [bloom_coverage], [load_balance].
    [bloom_coverage] verifies the edge-summary contract of
    {!Hybrid_p2p.Summaries} — no stored key is invisible to an ancestor
    edge's attenuated Bloom filter (pruned floods can only over-visit,
    never miss); it rebuilds stale summaries first (derived state only)
    and is a no-op while [bloom_bits_per_key = 0].
    [replication_factor] holds
    every primary item to [min r (Policy.expected_copies)] live replica
    copies; it stays quiet (gauges only) while copies are in flight
    ([World.replication_pending > 0]) or t-peers are mid-triangle, and
    is a no-op when replication is off.
    [latency_sanity] verifies the causal-span contract of
    {!P2p_sim.Trace} — every completed child span's interval nests
    inside its parent's, and no op's critical-path attribution
    ({!P2p_obs.Spans}) exceeds its end-to-end latency; it is a no-op
    while tracing is off. *)
val all : check list

val names : string list

val find : string -> check option

(** [select names] resolves a name list against the catalogue.
    [Error unknown] carries the first unknown name. *)
val select : string list -> (check list, string) result

(** [run check w] executes one check. *)
val run : check -> Hybrid_p2p.World.t -> status

(** [run_all ?checks w] executes the catalogue (or [checks]) and stamps
    the world's current simulated time. *)
val run_all : ?checks:check list -> Hybrid_p2p.World.t -> snapshot

(** All violations of a snapshot, in catalogue order. *)
val violations : snapshot -> violation list

(** Only the [Error]-severity subset. *)
val errors : violation list -> violation list

(** [to_result snap] is [Ok ()] when the snapshot carries no
    [Error]-severity violation, otherwise [Error reason] with the first
    one — the drop-in replacement for a final
    {!Hybrid_p2p.Hybrid.check_invariants}. *)
val to_result : snapshot -> (unit, string) result

val pp_violation : Format.formatter -> violation -> unit
