(* Tests for the Section-4 closed-form model (P2p_analysis.Formulas). *)

module F = P2p_analysis.Formulas

let checkb = Alcotest.check Alcotest.bool
let checkf3 = Alcotest.check (Alcotest.float 1e-3)

let n = 1000

let test_avg_snetwork_size () =
  checkf3 "ps=0.5 -> 1 s-peer per t-peer" 1.0 (F.avg_snetwork_size ~ps:0.5);
  checkf3 "ps=0 -> empty" 0.0 (F.avg_snetwork_size ~ps:0.0);
  checkf3 "ps=0.9 -> 9" 9.0 (F.avg_snetwork_size ~ps:0.9);
  checkb "ps=1 -> infinite" true (F.avg_snetwork_size ~ps:1.0 = infinity)

let test_t_join_latency_endpoints () =
  (* log2(1000/2) ~ 8.97 at ps=0 *)
  checkb "ps=0 near log2(N/2)" true (abs_float (F.t_join_latency ~ps:0.0 ~n -. 8.966) < 0.01);
  checkb "decreasing in ps" true
    (F.t_join_latency ~ps:0.5 ~n < F.t_join_latency ~ps:0.0 ~n);
  checkf3 "ps=1" 0.0 (F.t_join_latency ~ps:1.0 ~n)

let test_s_join_latency () =
  checkf3 "ps=0" 0.0 (F.s_join_latency ~ps:0.0 ~delta:2);
  (* ps=0.9: log_2 9 ~ 3.17 *)
  checkb "ps=0.9 delta=2" true (abs_float (F.s_join_latency ~ps:0.9 ~delta:2 -. 3.17) < 0.01);
  checkb "bigger delta shorter walk" true
    (F.s_join_latency ~ps:0.9 ~delta:4 < F.s_join_latency ~ps:0.9 ~delta:2);
  (* below ps=0.5 the average s-network has < 1 peer: walk length clamps to 0 *)
  checkf3 "tiny s-networks clamp" 0.0 (F.s_join_latency ~ps:0.3 ~delta:2)

let test_join_latency_u_shape () =
  (* Fig. 3a: the hybrid minimizes join latency at an interior ps *)
  let at ps = F.join_latency ~ps ~n ~delta:2 in
  let structured = at 0.0 in
  let interior = at 0.7 in
  checkb "interior beats pure structured" true (interior < structured);
  (* the minimum over a sweep lies strictly inside (0, 1) *)
  let best_ps = ref 0.0 and best = ref infinity in
  for i = 0 to 100 do
    let ps = float_of_int i /. 100.0 in
    let v = at ps in
    if v < !best then begin
      best := v;
      best_ps := ps
    end
  done;
  checkb (Printf.sprintf "argmin %.2f interior" !best_ps) true
    (!best_ps > 0.3 && !best_ps < 1.0)

let test_join_latency_delta_ordering () =
  (* Fig. 3a: at fixed ps, larger delta -> shorter join latency *)
  List.iter
    (fun ps ->
      let l2 = F.join_latency ~ps ~n ~delta:2 in
      let l3 = F.join_latency ~ps ~n ~delta:3 in
      let l4 = F.join_latency ~ps ~n ~delta:4 in
      checkb (Printf.sprintf "ordering at ps=%.1f" ps) true (l4 <= l3 && l3 <= l2))
    [ 0.6; 0.7; 0.8; 0.9 ]

let test_local_hit_probability () =
  checkf3 "ps=0" 0.0 (F.local_hit_probability ~ps:0.0 ~n);
  checkb "grows with ps" true
    (F.local_hit_probability ~ps:0.9 ~n > F.local_hit_probability ~ps:0.5 ~n);
  checkf3 "ps=1 clamps to 1" 1.0 (F.local_hit_probability ~ps:1.0 ~n)

let test_out_of_reach_monotonicity () =
  (* Eq. 2: failure grows with ps, shrinks with ttl *)
  checkb "grows with ps" true
    (F.peers_out_of_reach ~ps:0.95 ~delta:3 ~ttl:1
     > F.peers_out_of_reach ~ps:0.8 ~delta:3 ~ttl:1);
  checkb "shrinks with ttl" true
    (F.peers_out_of_reach ~ps:0.95 ~delta:3 ~ttl:4
     <= F.peers_out_of_reach ~ps:0.95 ~delta:3 ~ttl:1);
  checkf3 "small s-network fully reachable" 0.0
    (F.peers_out_of_reach ~ps:0.4 ~delta:3 ~ttl:2)

let test_failure_ratio_range () =
  List.iter
    (fun ps ->
      List.iter
        (fun ttl ->
          let r = F.lookup_failure_ratio ~ps ~delta:3 ~ttl in
          checkb "in [0,1]" true (r >= 0.0 && r <= 1.0))
        [ 0; 1; 2; 4 ])
    [ 0.0; 0.3; 0.5; 0.7; 0.9; 0.99 ];
  checkf3 "structured never fails" 0.0 (F.lookup_failure_ratio ~ps:0.0 ~delta:3 ~ttl:1)

let test_lookup_latency_shapes () =
  (* Fig. 3b: latency decreases as ps grows (fewer ring hops); larger
     delta no slower *)
  let l ps = F.lookup_latency ~ps ~n ~delta:2 ~ttl:4 in
  checkb "decreasing towards high ps" true (l 0.9 < l 0.1);
  List.iter
    (fun ps ->
      checkb "delta ordering" true
        (F.lookup_latency ~ps ~n ~delta:4 ~ttl:4 <= F.lookup_latency ~ps ~n ~delta:2 ~ttl:4))
    [ 0.6; 0.8; 0.9 ]

let test_lookup_latency_unconstrained () =
  (* star s-networks: diameter 2, so local lookups cost exactly 2 *)
  let v = F.lookup_latency_unconstrained ~ps:1.0 ~n in
  checkf3 "pure unstructured costs 2" 2.0 v;
  checkb "structured costs more" true (F.lookup_latency_unconstrained ~ps:0.0 ~n > 2.0)

let test_rejects () =
  Alcotest.check_raises "bad ps" (Invalid_argument "Formulas: ps out of [0,1]") (fun () ->
      ignore (F.join_latency ~ps:1.5 ~n ~delta:2 : float));
  Alcotest.check_raises "bad delta" (Invalid_argument "Formulas: delta must be >= 2")
    (fun () -> ignore (F.join_latency ~ps:0.5 ~n ~delta:1 : float));
  Alcotest.check_raises "bad ttl" (Invalid_argument "Formulas: ttl must be >= 0")
    (fun () -> ignore (F.lookup_latency ~ps:0.5 ~n ~delta:2 ~ttl:(-1) : float))

let suite =
  [
    Alcotest.test_case "avg s-network size" `Quick test_avg_snetwork_size;
    Alcotest.test_case "t-join latency endpoints" `Quick test_t_join_latency_endpoints;
    Alcotest.test_case "s-join latency" `Quick test_s_join_latency;
    Alcotest.test_case "Fig 3a: U shape" `Quick test_join_latency_u_shape;
    Alcotest.test_case "Fig 3a: delta ordering" `Quick test_join_latency_delta_ordering;
    Alcotest.test_case "local hit probability" `Quick test_local_hit_probability;
    Alcotest.test_case "Eq 2: monotonicity" `Quick test_out_of_reach_monotonicity;
    Alcotest.test_case "failure ratio in range" `Quick test_failure_ratio_range;
    Alcotest.test_case "Fig 3b: latency shapes" `Quick test_lookup_latency_shapes;
    Alcotest.test_case "unconstrained lookup latency" `Quick test_lookup_latency_unconstrained;
    Alcotest.test_case "rejects bad arguments" `Quick test_rejects;
  ]
