(* Tests for the discrete-event substrate: Event_queue, Engine, Timer. *)

module Event_queue = P2p_sim.Event_queue
module Engine = P2p_sim.Engine
module Timer = P2p_sim.Timer

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Event_queue --- *)

let test_queue_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:3.0 'c' : Event_queue.handle);
  ignore (Event_queue.add q ~time:1.0 'a' : Event_queue.handle);
  ignore (Event_queue.add q ~time:2.0 'b' : Event_queue.handle);
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.check Alcotest.char "first" 'a' (snd (pop ()));
  Alcotest.check Alcotest.char "second" 'b' (snd (pop ()));
  Alcotest.check Alcotest.char "third" 'c' (snd (pop ()));
  checkb "empty" true (Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.add q ~time:5.0 i : Event_queue.handle)
  done;
  for i = 0 to 9 do
    checki "tie broken by insertion order" i (snd (Option.get (Event_queue.pop q)))
  done

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~time:1.0 "dead" in
  ignore (Event_queue.add q ~time:2.0 "live" : Event_queue.handle);
  Event_queue.cancel h1;
  checkb "cancelled flag" true (Event_queue.cancelled h1);
  Alcotest.check Alcotest.string "cancelled skipped" "live"
    (snd (Option.get (Event_queue.pop q)));
  Event_queue.cancel h1 (* double cancel is harmless *)

let test_queue_cancel_all () =
  let q = Event_queue.create () in
  let handles = List.init 5 (fun i -> Event_queue.add q ~time:(float_of_int i) i) in
  List.iter Event_queue.cancel handles;
  checkb "is_empty" true (Event_queue.is_empty q);
  checkb "pop none" true (Event_queue.pop q = None)

let test_queue_peek () =
  let q = Event_queue.create () in
  checkb "peek empty" true (Event_queue.peek_time q = None);
  let h = Event_queue.add q ~time:4.0 () in
  ignore (Event_queue.add q ~time:7.0 () : Event_queue.handle);
  checkf "peek earliest" 4.0 (Option.get (Event_queue.peek_time q));
  Event_queue.cancel h;
  checkf "peek skips dead" 7.0 (Option.get (Event_queue.peek_time q))

let test_queue_live_length () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1.0 () in
  ignore (Event_queue.add q ~time:2.0 () : Event_queue.handle);
  checki "two live" 2 (Event_queue.live_length q);
  Event_queue.cancel h;
  checki "one live" 1 (Event_queue.live_length q)

let test_queue_compaction_bounded () =
  (* 10k schedule/cancel pairs (the shape of timer churn: resets cancel
     the old entry and schedule a new one) must not accumulate dead heap
     slots — compaction at insertion keeps the physical size within a
     small constant of the live population. *)
  let q = Event_queue.create () in
  let keep = ref [] in
  for i = 1 to 10_000 do
    let h = Event_queue.add q ~time:(float_of_int i) i in
    if i mod 1000 = 0 then keep := (i, h) :: !keep else Event_queue.cancel h
  done;
  checki "live survivors" 10 (Event_queue.live_length q);
  checkb "physical heap bounded" true (Event_queue.length q <= 64);
  (* survivors still pop, in time order *)
  List.iter
    (fun i -> checki "survivor pops in order" (i * 1000) (snd (Option.get (Event_queue.pop q))))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  checkb "then empty" true (Event_queue.pop q = None)

let test_queue_interleaved () =
  (* Random adds/pops stay sorted. *)
  let q = Event_queue.create () in
  let rng = P2p_sim.Rng.create 99 in
  let last = ref neg_infinity in
  let pending = ref 0 in
  for _ = 1 to 2000 do
    if !pending = 0 || P2p_sim.Rng.bool rng then begin
      let time = P2p_sim.Rng.float rng 1000.0 in
      (* never schedule in the past relative to what was already popped *)
      let time = Float.max time !last in
      ignore (Event_queue.add q ~time () : Event_queue.handle);
      incr pending
    end
    else begin
      let time, () = Option.get (Event_queue.pop q) in
      checkb "monotone pops" true (time >= !last);
      last := time;
      decr pending
    end
  done

(* --- batched insertion and the entry pool --- *)

let test_queue_batch_determinism () =
  (* the same schedule through [batch_add] + [flush_batch] must pop
     bit-identically to plain [add] — same times, same tie-breaks *)
  let plain = Event_queue.create () in
  let batched = Event_queue.create () in
  let rng = P2p_sim.Rng.create 7 in
  let times = Array.init 500 (fun _ -> float_of_int (P2p_sim.Rng.int rng 50)) in
  Array.iteri
    (fun i time -> ignore (Event_queue.add plain ~time i : Event_queue.handle))
    times;
  Array.iteri
    (fun i time -> ignore (Event_queue.batch_add batched ~time i : Event_queue.handle))
    times;
  Event_queue.flush_batch batched;
  let rec drain () =
    match (Event_queue.pop plain, Event_queue.pop batched) with
    | None, None -> ()
    | Some (t1, v1), Some (t2, v2) ->
      checkf "same time" t1 t2;
      checki "same value" v1 v2;
      drain ()
    | _ -> Alcotest.fail "queues drained unevenly"
  in
  drain ()

let test_queue_batch_autoflush () =
  let q = Event_queue.create () in
  ignore (Event_queue.batch_add q ~time:2.0 'b' : Event_queue.handle);
  Event_queue.batch_add_fast q ~time:1.0 'a';
  (* reading operations flush the pending suffix on their own *)
  checkf "peek flushes" 1.0 (Option.get (Event_queue.peek_time q));
  Alcotest.check Alcotest.char "first" 'a' (snd (Option.get (Event_queue.pop q)));
  Alcotest.check Alcotest.char "second" 'b' (snd (Option.get (Event_queue.pop q)))

let test_queue_batch_cancel () =
  (* cancelling a batched entry before its flush must stick *)
  let q = Event_queue.create () in
  let h = Event_queue.batch_add q ~time:1.0 "dead" in
  ignore (Event_queue.batch_add q ~time:2.0 "live" : Event_queue.handle);
  Event_queue.cancel h;
  Event_queue.flush_batch q;
  Alcotest.check Alcotest.string "cancelled skipped" "live"
    (snd (Option.get (Event_queue.pop q)));
  checkb "then empty" true (Event_queue.pop q = None)

let test_queue_add_fast () =
  let q = Event_queue.create () in
  Event_queue.add_fast q ~time:2.0 'b';
  Event_queue.add_fast q ~time:1.0 'a';
  ignore (Event_queue.add q ~time:3.0 'c' : Event_queue.handle);
  Alcotest.check Alcotest.char "first" 'a' (snd (Option.get (Event_queue.pop q)));
  Alcotest.check Alcotest.char "second" 'b' (snd (Option.get (Event_queue.pop q)));
  Alcotest.check Alcotest.char "third" 'c' (snd (Option.get (Event_queue.pop q)))

let test_queue_pop_apply () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:1.0 1 : Event_queue.handle);
  let seen = ref [] in
  let f time v =
    seen := (time, v) :: !seen;
    (* the entry is removed before [f] runs, so re-adding is fine *)
    if v < 3 then ignore (Event_queue.add q ~time:(time +. 1.0) (v + 1) : Event_queue.handle)
  in
  while Event_queue.pop_apply q f do
    ()
  done;
  Alcotest.check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
    "chain" [ (1.0, 1); (2.0, 2); (3.0, 3) ] (List.rev !seen);
  checkb "empty returns false" false (Event_queue.pop_apply q f)

let test_queue_pool_reuse () =
  (* thousands of add/pop cycles churn through the entry pool; recycled
     entries must never leak a stale value or break ordering *)
  let q = Event_queue.create () in
  for round = 0 to 99 do
    for i = 0 to 49 do
      ignore
        (Event_queue.add q ~time:(float_of_int (i * 13 mod 50)) (round, i)
          : Event_queue.handle)
    done;
    let last = ref neg_infinity in
    for _ = 0 to 49 do
      let time, (r, _) = Option.get (Event_queue.pop q) in
      checkb "time monotone" true (time >= !last);
      last := time;
      checki "value from this round" round r
    done;
    checkb "drained" true (Event_queue.is_empty q)
  done

(* --- Engine --- *)

let test_engine_clock () =
  let e = Engine.create ~seed:1 () in
  checkf "starts at 0" 0.0 (Engine.now e);
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> fired := 5 :: !fired) : Engine.handle);
  ignore (Engine.schedule e ~delay:2.0 (fun () -> fired := 2 :: !fired) : Engine.handle);
  Engine.run e;
  checkf "clock advanced" 5.0 (Engine.now e);
  Alcotest.check (Alcotest.list Alcotest.int) "order" [ 5; 2 ] !fired

let test_engine_negative_delay () =
  let e = Engine.create ~seed:1 () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ()) : Engine.handle))

let test_engine_schedule_at_past () =
  let e = Engine.create ~seed:1 () in
  ignore (Engine.schedule e ~delay:10.0 (fun () -> ()) : Engine.handle);
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:5.0 (fun () -> ()) : Engine.handle))

let test_engine_cascading () =
  let e = Engine.create ~seed:1 () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule e ~delay:1.0 (fun () ->
             incr count;
             chain (n - 1))
          : Engine.handle)
  in
  chain 10;
  Engine.run e;
  checki "all fired" 10 !count;
  checkf "clock = 10" 10.0 (Engine.now e);
  checki "events_executed" 10 (Engine.events_executed e)

let test_engine_run_until () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired) : Engine.handle)
  done;
  Engine.run_until e ~time:5.5;
  checki "five fired" 5 !fired;
  checkf "clock at 5.5" 5.5 (Engine.now e);
  checki "pending" 5 (Engine.pending e);
  Engine.run e;
  checki "rest fired" 10 !fired

let test_engine_cancel () =
  let e = Engine.create ~seed:1 () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  checkb "cancelled never fires" false !fired

let test_engine_same_time_order () =
  let e = Engine.create ~seed:1 () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:3.0 (fun () -> order := i :: !order) : Engine.handle)
  done;
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.int) "scheduling order preserved" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

(* --- schedule_batch / schedule_detached --- *)

(* The load-bearing property: wrapping any set of schedule calls in
   [schedule_batch] must replay the unbatched event schedule
   bit-identically — same firing order, same clocks — across lanes and
   same-time ties, including fan-outs issued from inside a running
   event. *)
let test_engine_schedule_batch_determinism () =
  let run ~batch =
    let e = Engine.create ~seed:3 ~lanes:4 () in
    let log = ref [] in
    let wrap f = if batch then Engine.schedule_batch e f else f () in
    let sched i delay =
      ignore
        (Engine.schedule e ~shard:(i mod 4) ~delay (fun () ->
             log := (i, Engine.now e) :: !log)
          : Engine.handle)
    in
    wrap (fun () ->
        for i = 0 to 19 do
          sched i (float_of_int (i * 7 mod 5))
        done);
    ignore
      (Engine.schedule e ~delay:1.5 (fun () ->
           wrap (fun () ->
               for i = 100 to 109 do
                 sched i 2.0
               done))
        : Engine.handle);
    Engine.run e;
    List.rev !log
  in
  let unbatched = run ~batch:false in
  let batched = run ~batch:true in
  checki "same count" 30 (List.length batched);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "batched insertion replays the unbatched schedule" unbatched batched

let test_engine_batch_cancel () =
  let e = Engine.create ~seed:1 () in
  let fired = ref [] in
  Engine.schedule_batch e (fun () ->
      let h = Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired) in
      ignore (Engine.schedule e ~delay:2.0 (fun () -> fired := 2 :: !fired) : Engine.handle);
      Engine.cancel h);
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.int) "cancelled inside batch never fires"
    [ 2 ] !fired

let test_engine_batch_nested () =
  (* nested batches flatten into the outermost one *)
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  Engine.schedule_batch e (fun () ->
      Engine.schedule_batch e (fun () ->
          ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired) : Engine.handle));
      ignore (Engine.schedule e ~delay:2.0 (fun () -> incr fired) : Engine.handle));
  Engine.run e;
  checki "both fired" 2 !fired

let test_engine_batch_exception () =
  (* events scheduled before the batch body raised must still land *)
  let e = Engine.create ~seed:1 () in
  let fired = ref false in
  (try
     Engine.schedule_batch e (fun () ->
         ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := true) : Engine.handle);
         failwith "boom")
   with Failure _ -> ());
  Engine.run e;
  checkb "flushed despite exception" true !fired

let test_engine_schedule_detached () =
  let e = Engine.create ~seed:1 ~lanes:2 () in
  let log = ref [] in
  Engine.schedule_detached e ~label:None ~shard:1 ~delay:2.0 (fun () ->
      log := "detached" :: !log);
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "first" :: !log) : Engine.handle);
  ignore
    (Engine.schedule e ~shard:1 ~delay:2.0 (fun () -> log := "tie-second" :: !log)
      : Engine.handle);
  Engine.run e;
  (* the detached event was scheduled first, so it wins the time-2 tie *)
  Alcotest.check (Alcotest.list Alcotest.string) "ordering with normal schedules"
    [ "first"; "detached"; "tie-second" ] (List.rev !log);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_detached: negative delay") (fun () ->
      Engine.schedule_detached e ~label:None ~shard:0 ~delay:(-1.0) (fun () -> ()))

(* --- Timer --- *)

let test_timer_one_shot () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let t = Timer.one_shot e ~delay:10.0 (fun () -> incr fired) in
  checkb "active" true (Timer.active t);
  Engine.run e;
  checki "fired once" 1 !fired;
  checkb "inactive after fire" false (Timer.active t)

let test_timer_cancel () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let t = Timer.one_shot e ~delay:10.0 (fun () -> incr fired) in
  Timer.cancel t;
  Engine.run e;
  checki "never fired" 0 !fired

let test_timer_reset_postpones () =
  let e = Engine.create ~seed:1 () in
  let fire_time = ref 0.0 in
  let t = Timer.one_shot e ~delay:10.0 (fun () -> fire_time := Engine.now e) in
  Engine.run_until e ~time:6.0;
  Timer.reset t;
  Engine.run e;
  checkf "postponed to 16" 16.0 !fire_time

let test_timer_reset_rearms () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let t = Timer.one_shot e ~delay:5.0 (fun () -> incr fired) in
  Engine.run e;
  checki "first" 1 !fired;
  Timer.reset t;
  Engine.run e;
  checki "rearmed fires again" 2 !fired

let test_timer_periodic () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let t = Timer.periodic e ~period:2.0 (fun () -> incr fired) in
  Engine.run_until e ~time:9.0;
  checki "four ticks in 9ms at period 2" 4 !fired;
  Timer.cancel t;
  Engine.run_until e ~time:20.0;
  checki "no ticks after cancel" 4 !fired

let test_timer_periodic_cancel_in_action () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let cell = ref None in
  let t =
    Timer.periodic e ~period:1.0 (fun () ->
        incr fired;
        if !fired = 3 then Timer.cancel (Option.get !cell))
  in
  cell := Some t;
  Engine.run_until e ~time:10.0;
  checki "self-cancel stops at 3" 3 !fired

let suite =
  [
    Alcotest.test_case "queue: pops in time order" `Quick test_queue_order;
    Alcotest.test_case "queue: FIFO on equal times" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue: cancellation" `Quick test_queue_cancel;
    Alcotest.test_case "queue: cancel all" `Quick test_queue_cancel_all;
    Alcotest.test_case "queue: peek_time" `Quick test_queue_peek;
    Alcotest.test_case "queue: live_length" `Quick test_queue_live_length;
    Alcotest.test_case "queue: 10k cancels stay compact" `Quick test_queue_compaction_bounded;
    Alcotest.test_case "queue: interleaved ops stay sorted" `Quick test_queue_interleaved;
    Alcotest.test_case "queue: batched insertion is deterministic" `Quick
      test_queue_batch_determinism;
    Alcotest.test_case "queue: reads auto-flush pending batch" `Quick
      test_queue_batch_autoflush;
    Alcotest.test_case "queue: cancel inside batch" `Quick test_queue_batch_cancel;
    Alcotest.test_case "queue: add_fast ordering" `Quick test_queue_add_fast;
    Alcotest.test_case "queue: pop_apply" `Quick test_queue_pop_apply;
    Alcotest.test_case "queue: entry pool reuse" `Quick test_queue_pool_reuse;
    Alcotest.test_case "engine: clock and ordering" `Quick test_engine_clock;
    Alcotest.test_case "engine: negative delay rejected" `Quick test_engine_negative_delay;
    Alcotest.test_case "engine: schedule_at past rejected" `Quick test_engine_schedule_at_past;
    Alcotest.test_case "engine: cascading events" `Quick test_engine_cascading;
    Alcotest.test_case "engine: run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: same-time scheduling order" `Quick test_engine_same_time_order;
    Alcotest.test_case "engine: schedule_batch replays unbatched order" `Quick
      test_engine_schedule_batch_determinism;
    Alcotest.test_case "engine: cancel inside schedule_batch" `Quick test_engine_batch_cancel;
    Alcotest.test_case "engine: nested schedule_batch flattens" `Quick test_engine_batch_nested;
    Alcotest.test_case "engine: schedule_batch flushes on exception" `Quick
      test_engine_batch_exception;
    Alcotest.test_case "engine: schedule_detached ordering" `Quick
      test_engine_schedule_detached;
    Alcotest.test_case "timer: one-shot" `Quick test_timer_one_shot;
    Alcotest.test_case "timer: cancel" `Quick test_timer_cancel;
    Alcotest.test_case "timer: reset postpones" `Quick test_timer_reset_postpones;
    Alcotest.test_case "timer: reset rearms" `Quick test_timer_reset_rearms;
    Alcotest.test_case "timer: periodic" `Quick test_timer_periodic;
    Alcotest.test_case "timer: periodic self-cancel" `Quick test_timer_periodic_cancel_in_action;
  ]
