(** Engine occupancy gauges.

    [record reg engine] snapshots the engine into [reg]:
    - ["engine/events_executed"], ["engine/queue_high_water"] — the
      whole-engine figures;
    - when the engine has more than one lane, per-lane gauges under
      subsystem ["lanes"] ([lane<i>_executed], [lane<i>_pending],
      [lane<i>_high_water], [lane<i>_stalls]) plus ["lanes/imbalance"]
      (max/mean executed events per lane; [1.0] = balanced).

    Pull-style like {!Gc_stats}: call it from the {!Sampler}'s
    [on_sample] hook for a timeline, and once before exporting final
    metrics.  [p2psim report] renders the ["lanes"] subsystem as the
    [== lanes ==] table. *)

val record : Registry.t -> P2p_sim.Engine.t -> unit
