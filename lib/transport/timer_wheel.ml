(* Wall-clock timers for the live transport, with the same semantics as
   the engine-clock [P2p_sim.Timer]: restartable one-shots and
   periodics, lazy cancellation, and cancel-after-fire as a counted
   no-op on the shared [timer/cancel_late] counter.  Backed by the same
   [Event_queue] binary heap the engine uses — time is whatever the
   clock function supplied at [create] returns (the live loop passes
   milliseconds since its epoch), and the owning event loop drives the
   wheel by calling [run_due] whenever [next_deadline] comes due. *)

open P2p_sim

type state = Armed | Fired | Cancelled

type tm = {
  wheel : t;
  delay : float;
  kind : [ `One_shot | `Periodic ];
  action : unit -> unit;
  mutable handle : Event_queue.handle option;
  mutable state : state;
}

and t = { q : tm Event_queue.t; clock : unit -> float }

let create ~clock = { q = Event_queue.create (); clock }

let arm tm =
  tm.handle <- Some (Event_queue.add tm.wheel.q ~time:(tm.wheel.clock () +. tm.delay) tm);
  tm.state <- Armed

let cancel tm =
  match tm.handle with
  | Some h ->
    Event_queue.cancel h;
    tm.handle <- None;
    tm.state <- Cancelled
  | None ->
    if tm.state = Fired then begin
      tm.state <- Cancelled;
      Timer.note_cancel_late ()
    end

let reset tm =
  (match tm.handle with
   | Some h ->
     Event_queue.cancel h;
     tm.handle <- None
   | None -> ());
  arm tm

let active tm = tm.handle <> None

let wrap tm =
  {
    Transport.cancel = (fun () -> cancel tm);
    reset = (fun () -> reset tm);
    active = (fun () -> active tm);
  }

let one_shot t ~delay action =
  let tm =
    { wheel = t; delay; kind = `One_shot; action; handle = None; state = Armed }
  in
  arm tm;
  wrap tm

let periodic t ~period action =
  let tm =
    {
      wheel = t;
      delay = period;
      kind = `Periodic;
      action;
      handle = None;
      state = Armed;
    }
  in
  arm tm;
  wrap tm

let next_deadline t = Event_queue.peek_time t.q

let pending t = Event_queue.live_length t.q

(* Fire every timer due at or before the current clock reading.  A
   periodic re-arms before its action runs, so the action may cancel or
   reset it; a one-shot is marked [Fired] first for the same reason.
   Periodics re-arm relative to the current clock, not the missed
   deadline: a stalled loop fires each periodic once and moves on rather
   than bursting through every missed interval. *)
let run_due t =
  let now = t.clock () in
  let fired = ref 0 in
  let rec loop () =
    match Event_queue.peek_time t.q with
    | Some time when time <= now -> (
      match Event_queue.pop t.q with
      | None -> ()
      | Some (_, tm) ->
        tm.handle <- None;
        tm.state <- Fired;
        if tm.kind = `Periodic then arm tm;
        tm.action ();
        incr fired;
        loop ())
    | _ -> ()
  in
  loop ();
  !fired
