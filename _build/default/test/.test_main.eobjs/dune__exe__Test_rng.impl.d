test/test_rng.ml: Alcotest Array Hashtbl P2p_sim Printf
