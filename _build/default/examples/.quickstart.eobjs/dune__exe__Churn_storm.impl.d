examples/churn_storm.ml: Array Hybrid_p2p P2p_sim P2p_workload Printf
