(* Shared experiment infrastructure for regenerating the paper's tables
   and figures.

   Every experiment builds a hybrid system over a GT-ITM-style
   transit-stub topology (the paper's setup: 1,000 physical nodes, one
   peer per node), pre-assigns t/s roles according to the system parameter
   [p_s], joins everyone, inserts a corpus of items from random peers and
   then drives lookups, collecting the metrics the paper reports. *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module World = Hybrid_p2p.World
module Data_ops = Hybrid_p2p.Data_ops
module Rng = P2p_sim.Rng
module Transit_stub = P2p_topology.Transit_stub
module Routing = P2p_topology.Routing
module Landmark = P2p_topology.Landmark
module Metrics = P2p_net.Metrics
module Keys = P2p_workload.Keys
module Churn = P2p_workload.Churn
module Summary = P2p_stats.Summary

type scale = {
  label : string;
  topology : Transit_stub.params;
  n_items : int;
  n_lookups : int;
}

(* The paper's full setup: 1,000 nodes. *)
let paper_scale =
  {
    label = "paper (1000 peers)";
    topology = Transit_stub.default_params;
    n_items = 10_000;
    n_lookups = 10_000;
  }

(* A quick setup for smoke runs: ~400 nodes, lighter workload. *)
let small_scale =
  {
    label = "small (384 peers)";
    topology =
      {
        Transit_stub.default_params with
        Transit_stub.transit_domains = 3;
        transit_nodes = 4;
        stub_domains_per_node = 5;
        stub_nodes = 6;
      };
    n_items = 3_000;
    n_lookups = 2_000;
  }

type built = {
  h : H.t;
  peers : Peer.t array;
  items : Keys.item array;
  rng : Rng.t; (* workload stream, independent of the system's rng *)
}

(* Capacity classes: 1/3 high, 1/3 medium, 1/3 low; highest is 10x the
   lowest (paper Section 6). *)
let capacity_of_host host =
  match host mod 3 with 0 -> 10.0 | 1 -> 3.0 | _ -> 1.0

(* Role pre-assignment.  [heterogeneity]: peers with the highest link
   capacities become the t-peers (Section 5.1); otherwise roles are
   random with P(s-peer) = ps. *)
let assign_roles ~rng ~ps ~heterogeneity hosts =
  let n = Array.length hosts in
  let t_quota = max 1 (int_of_float (Float.round ((1.0 -. ps) *. float_of_int n))) in
  if heterogeneity then begin
    let order = Array.copy hosts in
    (* sort by capacity descending, shuffling within ties *)
    Rng.shuffle rng order;
    Array.sort (fun a b -> compare (capacity_of_host b) (capacity_of_host a)) order;
    let t_set = Hashtbl.create t_quota in
    Array.iteri (fun i host -> if i < t_quota then Hashtbl.replace t_set host ()) order;
    Array.map (fun host -> if Hashtbl.mem t_set host then Peer.T_peer else Peer.S_peer) hosts
  end
  else begin
    (* exactly t_quota t-peers, placed uniformly at random *)
    let roles = Array.make n Peer.S_peer in
    let index = Array.init n (fun i -> i) in
    Rng.shuffle rng index;
    for k = 0 to t_quota - 1 do
      roles.(index.(k)) <- Peer.T_peer
    done;
    roles
  end

let build ?(config = Config.default) ?(seed = 1) ?(ps = 0.5) ?(heterogeneity = false)
    ?(landmarks = 0) ~scale () =
  let rng = Rng.create (seed * 7919) in
  let topo = Transit_stub.generate ~rng:(Rng.create (seed * 31 + 7)) scale.topology in
  let routing = Routing.create topo.Transit_stub.graph in
  let snet_policy =
    if landmarks > 0 then begin
      let marks =
        Landmark.select_landmarks ~rng:(Rng.create (seed * 13 + 3)) routing
          ~count:landmarks
      in
      Some (World.By_cluster (Landmark.create routing ~landmarks:marks ~levels:[ 10.0; 40.0 ]))
    end
    else None
  in
  let config =
    if heterogeneity then { config with Config.link_usage_aware = true } else config
  in
  let h = H.create ~seed ~routing ~config ?snet_policy () in
  let n = P2p_topology.Graph.node_count topo.Transit_stub.graph in
  let hosts = Array.init n (fun i -> i) in
  let roles = assign_roles ~rng ~ps ~heterogeneity hosts in
  (* join in random order, a t-peer first so the ring can bootstrap *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  (match Array.find_index (fun i -> roles.(i) = Peer.T_peer) order with
   | Some k ->
     let tmp = order.(0) in
     order.(0) <- order.(k);
     order.(k) <- tmp
   | None -> ());
  let peers =
    Array.map
      (fun i ->
        let host = hosts.(i) in
        let peer =
          H.join h ~host ~role:roles.(i) ~link_capacity:(capacity_of_host host) ()
        in
        H.run h;
        peer)
      order
  in
  let items = Keys.generate ~rng ~count:scale.n_items ~categories:8 in
  { h; peers; items; rng }

(* --- registry dumps (--metrics-dir) --- *)

(* When set (by main's --metrics-dir flag), every measured system dumps
   its metrics registry as JSON into this directory, one file per dump,
   readable with `p2psim report`. *)
let metrics_dir : string option ref = ref None

let dump_counter = ref 0

(* Dump [b]'s registry to "<metrics-dir>/<name>.json"; [name] defaults to
   a running "dump-NNN" counter so sweep iterations stay distinct.  No-op
   unless --metrics-dir was given. *)
let dump_metrics ?name b =
  match !metrics_dir with
  | None -> ()
  | Some dir ->
    let name =
      match name with
      | Some n -> n
      | None ->
        incr dump_counter;
        Printf.sprintf "dump-%03d" !dump_counter
    in
    let path = Filename.concat dir (name ^ ".json") in
    P2p_obs.Export.write_metrics ~path (Metrics.registry (H.metrics b.h));
    Printf.printf "  [metrics -> %s]\n%!" path

(* --- latency SLO gates (--slo) --- *)

(* When non-empty (filled by main's repeatable --slo flag), benches that
   measure latency check each spec ("lookup:p99<=40") against every
   measured system's registry and fail the run on violation, turning the
   bench into a latency regression gate for CI. *)
let slo_specs : string list ref = ref []

(* --- invariant sanity pass (--audit) --- *)

(* When set (by main's --audit flag), every measured system also runs the
   full invariant-check catalogue after its lookup phase; violations are
   printed and Error-severity ones abort the bench run, so a structural
   bug cannot silently shape the numbers being reported. *)
let audit_enabled = ref false

let audit_pass b =
  if !audit_enabled then begin
    let snap = P2p_audit.Checks.run_all (H.world b.h) in
    match P2p_audit.Checks.violations snap with
    | [] -> ()
    | vs ->
      Printf.printf "  [audit: %d violations]\n%!" (List.length vs);
      List.iter
        (fun v ->
          Printf.printf "    %s\n%!" (Format.asprintf "%a" P2p_audit.Checks.pp_violation v))
        vs;
      if P2p_audit.Checks.errors vs <> [] then begin
        Printf.eprintf "bench: aborting on audit errors\n";
        exit 1
      end
  end

(* Insert the whole corpus from random peers and settle. *)
let insert_corpus b =
  Array.iter
    (fun item ->
      let from = Rng.pick b.rng b.peers in
      if from.Peer.alive then
        H.insert b.h ~from ~key:item.Keys.key ~value:item.Keys.value ())
    b.items;
  H.run b.h

(* Issue [count] uniform lookups of previously inserted items from random
   live peers; returns (succeeded, failed). *)
let run_lookups ?ttl b ~count =
  let live = Array.of_list (H.peers b.h) in
  let targets = Keys.lookup_sequence ~rng:b.rng ~items:b.items ~count in
  Array.iter
    (fun item ->
      let from = Rng.pick b.rng live in
      H.lookup b.h ~from ~key:item.Keys.key ?ttl ~on_result:(fun _ -> ()) ())
    targets;
  H.run b.h;
  audit_pass b;
  dump_metrics b

(* --- output helpers --- *)

let header title =
  Printf.printf "\n==== %s ====\n%!" title

let row fmt = Printf.printf fmt

let ps_sweep = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]
