(* Protocol-level tests for S_network and T_network through the facade's
   world, exercising tree walks, triangles, concurrency and role
   transfer. *)

open Helpers
module S_network = Hybrid_p2p.S_network
module T_network = Hybrid_p2p.T_network
module Id_space = P2p_hashspace.Id_space

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- S-network --- *)

let test_tree_shape_delta2 () =
  let config = { default_config with Config.delta = 2 } in
  let h, _ = star_system ~config ~seed:20 ~n:40 ~ps:1.0 () in
  (* single t-peer, 39 s-peers, binary-ish tree *)
  let root = List.find Peer.is_t_peer (H.peers h) in
  (match S_network.check_tree ~delta:2 root with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  checki "all members in tree" 40 (List.length (Peer.tree_members root));
  (* depth must be at least log2(39) ~ 5 for a degree-2 tree *)
  let max_depth =
    List.fold_left (fun acc p -> max acc (Peer.depth p)) 0 (Peer.tree_members root)
  in
  checkb (Printf.sprintf "depth %d >= 5" max_depth) true (max_depth >= 5)

let test_tree_flatter_with_bigger_delta () =
  let depth_for delta =
    let config = { default_config with Config.delta } in
    let h, _ = star_system ~config ~seed:21 ~n:80 ~ps:1.0 () in
    let root = List.find Peer.is_t_peer (H.peers h) in
    List.fold_left (fun acc p -> max acc (Peer.depth p)) 0 (Peer.tree_members root)
  in
  let d2 = depth_for 2 and d8 = depth_for 8 in
  checkb (Printf.sprintf "delta 8 tree (%d) flatter than delta 2 (%d)" d8 d2) true (d8 < d2)

let test_flood_reaches_within_ttl () =
  let h, _ = star_system ~seed:22 ~n:50 ~ps:1.0 () in
  let root = List.find Peer.is_t_peer (H.peers h) in
  let w = H.world h in
  let visited = ref [] in
  S_network.flood w ~from:root ~ttl:2 ~visit:(fun p ~depth ->
      visited := (p.Peer.host, depth) :: !visited;
      true) ();
  H.run h;
  (* every visited peer is within depth 2 and depths are correct *)
  List.iter
    (fun (host, depth) ->
      let p = Option.get (World.find_peer w ~host) in
      checki (Printf.sprintf "depth of #%d" host) (Peer.depth p) depth;
      checkb "within ttl" true (depth <= 2))
    !visited;
  (* count all peers with tree depth <= 2: exactly those are visited *)
  let expected =
    List.length (List.filter (fun p -> Peer.depth p <= 2) (Peer.tree_members root))
  in
  checki "exact coverage" expected (List.length !visited)

let test_flood_visits_once () =
  let h, _ = star_system ~seed:23 ~n:60 ~ps:1.0 () in
  let root = List.find Peer.is_t_peer (H.peers h) in
  let counts = Hashtbl.create 64 in
  S_network.flood (H.world h) ~from:root ~ttl:20 ~visit:(fun p ~depth:_ ->
      Hashtbl.replace counts p.Peer.host
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Peer.host));
      true) ();
  H.run h;
  Hashtbl.iter
    (fun host n -> checki (Printf.sprintf "peer #%d visited once" host) 1 n)
    counts;
  checki "everyone visited" 60 (Hashtbl.length counts)

let test_flood_stops_at_finder () =
  let h, _ = star_system ~seed:24 ~n:60 ~ps:1.0 () in
  let root = List.find Peer.is_t_peer (H.peers h) in
  (* stop forwarding below depth 1: only root and its children visited *)
  let visited = ref 0 in
  S_network.flood (H.world h) ~from:root ~ttl:20 ~visit:(fun _ ~depth ->
      incr visited;
      depth < 1) ();
  H.run h;
  let expected =
    List.length (List.filter (fun p -> Peer.depth p <= 2) (Peer.tree_members root))
  in
  checkb "pruned flood smaller than full ttl-2 flood" true (!visited <= expected)

let test_s_leave_rejoins_children () =
  let h, _ = star_system ~seed:25 ~n:50 ~ps:1.0 () in
  let victim =
    List.find (fun p -> Peer.is_s_peer p && p.Peer.children <> []) (H.peers h)
  in
  let child_hosts = List.map (fun c -> c.Peer.host) victim.Peer.children in
  H.leave h victim ();
  H.run h;
  ok_invariants h;
  checki "population shrank" 49 (H.peer_count h);
  (* children still alive and attached somewhere *)
  List.iter
    (fun host ->
      match World.find_peer (H.world h) ~host with
      | Some c -> checkb "child re-attached" true (c.Peer.cp <> None)
      | None -> Alcotest.fail "child vanished")
    child_hosts

let test_s_leave_transfers_to_cp () =
  let h, _ = star_system ~seed:26 ~n:30 ~ps:1.0 () in
  let victim = List.find (fun p -> Peer.is_s_peer p && p.Peer.cp <> None) (H.peers h) in
  let cp = Option.get victim.Peer.cp in
  Hybrid_p2p.Data_store.insert victim.Peer.store ~key:"vk" ~value:"vv";
  let before = Hybrid_p2p.Data_store.size cp.Peer.store in
  H.leave h victim ();
  H.run h;
  checki "item moved to cp" (before + 1) (Hybrid_p2p.Data_store.size cp.Peer.store)

(* --- T-network --- *)

let test_ring_sorted_after_many_joins () =
  let h, _ = star_system ~seed:27 ~n:80 ~ps:0.0 () in
  (match T_network.check_ring (H.world h) with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  checki "all t" 80 (H.t_peer_count h)

let test_id_conflict_resolved () =
  let h = H.create_star ~seed:28 ~peers:10 () in
  let a = H.join h ~host:0 ~p_id:1000 () in
  H.run h;
  let b = H.join h ~host:1 ~p_id:1000 ~role:Peer.T_peer () in
  H.run h;
  checkb "ids now distinct" true (a.Peer.p_id <> b.Peer.p_id);
  ok_invariants h

let test_concurrent_joins_same_segment () =
  (* Issue several joins into the same gap without settling in between:
     the join queue must serialize them. *)
  let h = H.create_star ~seed:29 ~peers:20 () in
  ignore (H.join h ~host:0 ~p_id:0 () : Peer.t);
  H.run h;
  ignore (H.join h ~host:1 ~p_id:1_000_000 ~role:Peer.T_peer () : Peer.t);
  H.run h;
  (* now five concurrent joins between 0 and 1_000_000 *)
  let joiners =
    List.init 5 (fun i ->
        H.join h ~host:(2 + i) ~p_id:((i + 1) * 100_000) ~role:Peer.T_peer ())
  in
  H.run h;
  checki "all joined" 7 (H.peer_count h);
  List.iter (fun p -> checkb "wired" true (p.Peer.succ <> None)) joiners;
  ok_invariants h

let test_concurrent_identical_ids () =
  let h = H.create_star ~seed:30 ~peers:20 () in
  ignore (H.join h ~host:0 ~p_id:0 () : Peer.t);
  H.run h;
  (* five peers race with the same requested id *)
  let joiners =
    List.init 5 (fun i -> H.join h ~host:(1 + i) ~p_id:500_000 ~role:Peer.T_peer ())
  in
  H.run h;
  let ids = List.sort_uniq compare (List.map (fun p -> p.Peer.p_id) joiners) in
  checki "all ids distinct after conflict resolution" 5 (List.length ids);
  ok_invariants h

let test_leave_triangle_empty_snetwork () =
  let h, _ = star_system ~seed:31 ~n:30 ~ps:0.0 () in
  (* all t-peers with empty s-networks: leaves run the triangle *)
  let victim = H.random_peer h in
  (* a key the victim's own segment serves, so placement stays legal *)
  let rec local_key i =
    let key = Printf.sprintf "tri-%d" i in
    if Peer.covers victim (P2p_hashspace.Key_hash.of_string key) then key
    else local_key (i + 1)
  in
  Hybrid_p2p.Data_store.insert victim.Peer.store ~key:(local_key 0) ~value:"v";
  let done_flag = ref false in
  H.leave h victim ~on_done:(fun () -> done_flag := true) ();
  H.run h;
  checkb "leave completed" true !done_flag;
  checki "population" 29 (H.peer_count h);
  checki "data moved to successor" 1
    (List.fold_left
       (fun acc p -> acc + Hybrid_p2p.Data_store.size p.Peer.store)
       0 (H.peers h));
  ok_invariants h

let test_join_load_transfer () =
  (* items whose d_id falls into a new t-peer's segment move to it *)
  let h = H.create_star ~seed:32 ~peers:20 () in
  let a = H.join h ~host:0 ~p_id:0 () in
  H.run h;
  ignore (insert_items h ~count:50 : string list);
  checki "all at the solo t-peer" 50 (Hybrid_p2p.Data_store.size a.Peer.store);
  let b = H.join h ~host:1 ~p_id:(Id_space.size / 2) ~role:Peer.T_peer () in
  H.run h;
  checkb "segment split moved items" true (Hybrid_p2p.Data_store.size b.Peer.store > 0);
  checki "nothing lost" 50 (H.total_items h);
  ok_invariants h

let test_route_to_owner_visits_ring () =
  let h, _ = star_system ~seed:33 ~n:40 ~ps:0.0 () in
  let w = H.world h in
  let from = H.random_peer h in
  let visited = ref [] in
  let arrived = ref None in
  T_network.route_to_owner w ~from ~d_id:123_456
    ~visit:(fun p -> visited := p :: !visited)
    ~on_arrive:(fun ~owner ~hops -> arrived := Some (owner, hops))
    ();
  H.run h;
  match !arrived with
  | None -> Alcotest.fail "never arrived"
  | Some (owner, hops) ->
    checkb "owner covers the id" true (Peer.covers owner 123_456);
    checki "visits = hops + 1" (hops + 1) (List.length !visited);
    checkb "owner visited" true (List.exists (fun p -> p == owner) !visited)

let test_route_with_fingers_is_shorter () =
  let hops_with fingers =
    let config = { default_config with Config.use_fingers_for_data = fingers } in
    let h, _ = star_system ~config ~seed:34 ~n:120 ~ps:0.0 () in
    let w = H.world h in
    let total = ref 0 in
    for i = 0 to 19 do
      let from = H.random_peer h in
      let d_id = i * 50_000_000 in
      let got = ref 0 in
      T_network.route_to_owner w ~from ~d_id
        ~visit:(fun _ -> ())
        ~on_arrive:(fun ~owner:_ ~hops -> got := hops)
        ();
      H.run h;
      total := !total + !got
    done;
    !total
  in
  let slow = hops_with false and fast = hops_with true in
  checkb (Printf.sprintf "fingers (%d) beat ring walk (%d)" fast slow) true (fast < slow / 2)

let suite =
  [
    Alcotest.test_case "s-net: tree shape delta=2" `Quick test_tree_shape_delta2;
    Alcotest.test_case "s-net: bigger delta flattens" `Quick test_tree_flatter_with_bigger_delta;
    Alcotest.test_case "s-net: flood coverage by ttl" `Quick test_flood_reaches_within_ttl;
    Alcotest.test_case "s-net: flood visits once" `Quick test_flood_visits_once;
    Alcotest.test_case "s-net: finder stops forwarding" `Quick test_flood_stops_at_finder;
    Alcotest.test_case "s-net: leave rejoins children" `Quick test_s_leave_rejoins_children;
    Alcotest.test_case "s-net: leave transfers load to cp" `Quick test_s_leave_transfers_to_cp;
    Alcotest.test_case "t-net: ring after many joins" `Quick test_ring_sorted_after_many_joins;
    Alcotest.test_case "t-net: id conflict resolved" `Quick test_id_conflict_resolved;
    Alcotest.test_case "t-net: concurrent joins serialize" `Quick
      test_concurrent_joins_same_segment;
    Alcotest.test_case "t-net: concurrent identical ids" `Quick test_concurrent_identical_ids;
    Alcotest.test_case "t-net: leave triangle" `Quick test_leave_triangle_empty_snetwork;
    Alcotest.test_case "t-net: join load transfer" `Quick test_join_load_transfer;
    Alcotest.test_case "t-net: route_to_owner" `Quick test_route_to_owner_visits_ring;
    Alcotest.test_case "t-net: fingers shorten routes" `Quick test_route_with_fingers_is_shorter;
  ]
