type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
  mutable data : float array;
  mutable len : int;
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create () =
  {
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    total = 0.0;
    data = [||];
    len = 0;
    sorted = None;
  }

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let new_cap = if cap = 0 then 64 else cap * 2 in
    let data = Array.make new_cap 0.0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.total <- t.total +. x;
  t.sorted <- None;
  push t x

let add_all t xs = List.iter (add t) xs

let clear t =
  t.count <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  t.total <- 0.0;
  t.len <- 0;
  t.sorted <- None

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.mean

let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.count = 0 then invalid_arg "Summary.min: empty";
  t.min_v

let max t =
  if t.count = 0 then invalid_arg "Summary.max: empty";
  t.max_v

let total t = t.total

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.data 0 t.len in
    Array.sort compare s;
    t.sorted <- Some s;
    s

let percentile t p =
  if t.count = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: out of range";
  let s = sorted t in
  let n = Array.length s in
  (* Nearest-rank: ceil(p/100 * n), 1-indexed. *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let rank = Stdlib.max 1 (Stdlib.min n rank) in
  s.(rank - 1)

let median t = percentile t 50.0

let ci95 t =
  if t.count < 2 then 0.0
  else 1.96 *. stddev t /. sqrt (float_of_int t.count)

let samples t = Array.sub t.data 0 t.len

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f"
      t.count (mean t) (stddev t) t.min_v (median t) (percentile t 95.0) t.max_v
