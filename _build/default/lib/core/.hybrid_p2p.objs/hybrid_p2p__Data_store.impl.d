lib/core/data_store.ml: Hashtbl Id_space Key_hash List Option P2p_hashspace
