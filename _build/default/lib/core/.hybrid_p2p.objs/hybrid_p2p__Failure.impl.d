lib/core/failure.ml: Array Cache Config Data_store Fun Hashtbl List P2p_sim Peer S_network T_network World
