(* Always-on flight recorder: a bounded ring of recent operation
   completions and audit findings, cheap enough to leave enabled at
   million-peer scale (one array store per op; no strings are built
   until a dump is requested).  When something trips — an SLO gate, an
   audit check, or an explicit dump-on-exit — the ring is written out as
   JSONL next to a chrome trace of whatever spans the trace ring still
   holds, so "what led up to the p99" is answered by reading the dump
   instead of re-running the experiment. *)

module Trace = P2p_sim.Trace

type entry =
  | Op of {
      at : float;
      op : int;
      kind : string;
      total_ms : float;
      op_sampled : bool;
    }
  | Audit of { at : float; check : string; severity : string; detail : string }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;
  mutable retained : int;
  mutable total : int;
}

let create ~capacity () =
  if capacity <= 0 then
    invalid_arg "Flight_recorder.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    retained = 0;
    total = 0;
  }

let push t entry =
  t.ring.(t.next) <- Some entry;
  t.next <- (t.next + 1) mod t.capacity;
  if t.retained < t.capacity then t.retained <- t.retained + 1;
  t.total <- t.total + 1

let record_op t ~at ~op ~kind ~total_ms ~sampled =
  push t (Op { at; op; kind; total_ms; op_sampled = sampled })

let record_audit t ~at ~check ~severity ~detail =
  push t (Audit { at; check; severity; detail })

let observe t (c : Trace.op_completion) =
  record_op t ~at:c.Trace.comp_stop ~op:c.Trace.comp_op
    ~kind:c.Trace.comp_kind
    ~total_ms:(c.Trace.comp_stop -. c.Trace.comp_start)
    ~sampled:c.Trace.comp_sampled

let length t = t.retained

let total_recorded t = t.total

let entries t =
  let start = (t.next - t.retained + t.capacity) mod t.capacity in
  List.init t.retained (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let entry_to_json = function
  | Op { at; op; kind; total_ms; op_sampled } ->
    Json.Obj
      [
        ("t", Json.Float at);
        ("type", Json.String "op");
        ("op", Json.Int op);
        ("kind", Json.String kind);
        ("total_ms", Json.Float total_ms);
        ("sampled", Json.Bool op_sampled);
      ]
  | Audit { at; check; severity; detail } ->
    Json.Obj
      [
        ("t", Json.Float at);
        ("type", Json.String "audit");
        ("check", Json.String check);
        ("severity", Json.String severity);
        ("detail", Json.String detail);
      ]

let to_jsonl ?(reason = "manual") t =
  let buf = Buffer.create 4096 in
  let header =
    Json.Obj
      [
        ("type", Json.String "flight-recorder");
        ("reason", Json.String reason);
        ("entries", Json.Int t.retained);
        ("dropped", Json.Int (t.total - t.retained));
      ]
  in
  Buffer.add_string buf (Json.to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let rec ensure_dir d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let dump t ?trace ?lane_of ?registry ~dir ~reason () =
  ensure_dir dir;
  let path name = Filename.concat dir (Printf.sprintf "flight-%s%s" reason name) in
  let jsonl = path ".jsonl" in
  Export.write_file ~path:jsonl (to_jsonl ~reason t);
  let written = ref [ jsonl ] in
  (match trace with
   | Some tr when Trace.enabled tr ->
     let chrome = path ".chrome.json" in
     Export.write_chrome_trace ~path:chrome ?lane_of tr;
     written := chrome :: !written
   | Some _ | None -> ());
  (match registry with
   | Some reg ->
     let metrics = path ".metrics.json" in
     Export.write_metrics ~path:metrics reg;
     written := metrics :: !written
   | None -> ());
  List.rev !written
