(** The unstructured tier: tree-shaped s-networks (Section 3.2.2).

    Each s-network is a tree rooted at a t-peer.  A joining s-peer walks
    from the root down a random branch until it finds a peer with a free
    degree slot (its "connect point"); the walk, the graceful leave with
    subtree rejoin, and the TTL-bounded tree flood all travel as messages
    through the underlay, so hop counts and latencies are measured, not
    modelled. *)

(** [join w ~joiner ~root ~on_done] runs the join walk from the t-peer
    [root].  When the tree edge is wired, [on_done ~hops ~cp] fires with
    the number of overlay hops the request travelled and the chosen
    connect point.  The joiner is registered in the world and the server's
    size table is maintained.  [op] stamps every walk message with the
    join's trace operation id. *)
val join :
  World.t ->
  ?op:int ->
  joiner:Peer.t ->
  root:Peer.t ->
  on_done:(hops:int -> cp:Peer.t -> unit) ->
  unit ->
  unit

(** [rejoin_subtree w ~child ~root ~on_done] re-attaches an existing peer
    (carrying its whole subtree) under [root]'s tree — used when a parent
    leaves or crashes.  No registration or size accounting happens: the
    peers never left the system.  [op] attributes the walk messages to the
    triggering leave/repair operation in the trace. *)
val rejoin_subtree :
  World.t ->
  ?op:int ->
  child:Peer.t ->
  root:Peer.t ->
  on_done:(hops:int -> unit) ->
  unit ->
  unit

(** [rejoin_subtree_sync w ~child ~root] is {!rejoin_subtree} without
    message traffic — used by offline repair, which models the outcome of
    recovery rather than its timing. *)
val rejoin_subtree_sync : World.t -> child:Peer.t -> root:Peer.t -> unit

(** [leave w peer] removes an s-peer gracefully: its stored items transfer
    to its connect point, neighbours drop it, and each orphaned child
    rejoins through the t-peer (Section 3.2.2).  [op] is the trace
    operation id of the leave.
    @raise Invalid_argument on a t-peer or a dead peer. *)
val leave : World.t -> ?op:int -> Peer.t -> unit

(** [set_subtree_home w ~root ~home] rewrites [t_home] and [p_id] of every
    member of [root]'s subtree — used after a role transfer. *)
val set_subtree_home : World.t -> root:Peer.t -> home:Peer.t -> unit

(** [flood w ~from ~ttl ~visit] floods over tree edges: [visit peer ~depth]
    runs at every reached peer (including [from] at depth 0) at the
    simulated moment the query arrives, and returns whether that peer keeps
    forwarding — a peer that finds the item locally stops flooding
    (Section 3.4) while other branches continue.  The tree guarantees each
    peer is visited at most once.  [op] stamps every flood message with the
    originating operation's trace id.

    [prune_key] turns on summary-guided pruning: when the edge summaries
    ({!Summaries}) are enabled and the tree's are fresh, branches whose
    summary rules out [prune_key] within the remaining TTL budget are not
    forwarded to (counted under [s_network/flood_pruned]).  A keyed flood
    first rebuilds stale summaries ({!Summaries.ensure_fresh}); freshness
    is re-checked at every hop so mid-flight invalidation degrades the
    flood back to the full tree visit.  Only exact-key searches may pass
    [prune_key] — keyword scans must flood unguided. *)
val flood :
  World.t ->
  ?op:int ->
  ?prune_key:string ->
  from:Peer.t ->
  ttl:int ->
  visit:(Peer.t -> depth:int -> bool) ->
  unit ->
  unit

(** [check_tree root] verifies structural invariants of [root]'s s-network:
    cp/children symmetry, no cycles, consistent [t_home] and [p_id].
    Returns [Error reason] on the first violation.  The degree bound is
    checked against [delta]. *)
val check_tree : delta:int -> Peer.t -> (unit, string) result
