lib/sim/timer.mli: Engine
