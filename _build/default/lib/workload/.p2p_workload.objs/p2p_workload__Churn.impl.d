lib/workload/churn.ml: Array Float List P2p_sim
