lib/core/interest.mli: P2p_hashspace
