(** Message delivery over the physical network.

    Sending an overlay message from peer [src] to peer [dst] schedules its
    delivery after the latency of the shortest physical path between the two
    hosts (plus a fixed per-message processing delay), charges link stress to
    each physical link on the path, and bumps the message counters.  The
    payload is an arbitrary closure, so protocol code reads naturally:

    {[ Underlay.send net ~src ~dst (fun () -> handle_join_request dst msg) ]} *)

type t

(** [create ~engine ~routing ~metrics ?stress ?trace ~processing_delay ()]
    wires an underlay.  [stress] enables per-link stress accounting
    (slightly more work per message as paths must be materialized);
    [trace] (default {!P2p_sim.Trace.disabled}) records every message as a
    ["message"] event; [processing_delay] (ms) models per-hop handling
    cost and is added once per overlay message. *)
val create :
  engine:P2p_sim.Engine.t ->
  routing:P2p_topology.Routing.t ->
  metrics:Metrics.t ->
  ?stress:P2p_topology.Link_stress.t ->
  ?trace:P2p_sim.Trace.t ->
  processing_delay:float ->
  unit ->
  t

(** The trace this underlay records into. *)
val trace : t -> P2p_sim.Trace.t

(** [send t ?op ~src ~dst f] delivers [f] at [now + delay src dst].
    Sending to self delivers after just the processing delay.  [op] stamps
    the traced ["message"] event with the operation id of the insert /
    lookup / join that caused it (see {!P2p_sim.Trace.begin_op}), making
    the operation's hop sequence replayable.  [shard] selects the engine
    event lane for the delivery (default: the destination host); with the
    default single lane or zero lookahead it has no observable effect. *)
val send :
  t -> ?op:int -> ?shard:int -> src:int -> dst:int -> (unit -> unit) -> unit

(** [set_transmission_delay t f] installs an additional per-message delay
    [f ~src ~dst] (ms) — used to model heterogeneous access-link
    capacities: a message costs what the slower endpoint's link can
    carry. *)
val set_transmission_delay : t -> (src:int -> dst:int -> float) -> unit

(** [delay t ~src ~dst] is the one-way latency an overlay message
    experiences, including processing delay. *)
val delay : t -> src:int -> dst:int -> float

val engine : t -> P2p_sim.Engine.t
val metrics : t -> Metrics.t
val routing : t -> P2p_topology.Routing.t
