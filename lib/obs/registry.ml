module Summary = P2p_stats.Summary

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = { summary : Summary.t }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Log of Log_hist.t

type t = {
  table : (string * string, metric) Hashtbl.t;
  mutable order : (string * string) list; (* registration order, reversed *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let add_key t key metric =
  Hashtbl.replace t.table key metric;
  t.order <- key :: t.order

let counter t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Counter c) -> c
  | Some _ ->
    invalid_arg (Printf.sprintf "Registry.counter: %s/%s is not a counter" subsystem name)
  | None ->
    let c = { count = 0 } in
    add_key t key (Counter c);
    c

let gauge t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Gauge g) -> g
  | Some _ ->
    invalid_arg (Printf.sprintf "Registry.gauge: %s/%s is not a gauge" subsystem name)
  | None ->
    let g = { value = 0.0 } in
    add_key t key (Gauge g);
    g

let histogram t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Registry.histogram: %s/%s is not a histogram" subsystem name)
  | None ->
    let h = { summary = Summary.create () } in
    add_key t key (Histogram h);
    h

let log_histogram t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Log l) -> l
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Registry.log_histogram: %s/%s is not a log histogram"
         subsystem name)
  | None ->
    let l = Log_hist.create () in
    add_key t key (Log l);
    l

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let set g v = g.value <- v

let set_max g v = if v > g.value then g.value <- v

let gauge_value g = g.value

let observe h v = Summary.add h.summary v

let summary h = h.summary

(* Zero every metric in place: handles held by subsystems stay valid
   (and registration order is kept), but counts, gauge values, and
   histogram samples start over — the between-configs reset a bench
   sweep needs. *)
let reset_values t =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Histogram h -> Summary.clear h.summary
      | Log l -> Log_hist.clear l)
    t.table

(* --- iteration / export --- *)

type binding = { subsystem : string; name : string; metric : metric }

let bindings t =
  List.rev_map
    (fun ((subsystem, name) as key) ->
      { subsystem; name; metric = Hashtbl.find t.table key })
    t.order

let subsystems t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun b ->
      if Hashtbl.mem seen b.subsystem then None
      else begin
        Hashtbl.add seen b.subsystem ();
        Some b.subsystem
      end)
    (bindings t)

(* Fixed-width bucketing of a summary's samples for report rendering:
   [bins] (lo, count) pairs covering [min, max]. *)
let histogram_bins ?(bins = 12) s =
  let n = Summary.count s in
  if n = 0 then []
  else begin
    let lo = Summary.min s and hi = Summary.max s in
    if lo = hi then [ (lo, n) ]
    else begin
      let width = (hi -. lo) /. float_of_int bins in
      let counts = Array.make bins 0 in
      Array.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = Stdlib.min (bins - 1) (Stdlib.max 0 b) in
          counts.(b) <- counts.(b) + 1)
        (Summary.samples s);
      List.init bins (fun b -> (lo +. (float_of_int b *. width), counts.(b)))
    end
  end

let summary_to_json s =
  let base = [ ("kind", Json.String "histogram"); ("count", Json.Int (Summary.count s)) ] in
  if Summary.count s = 0 then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ("mean", Json.Float (Summary.mean s));
          ("stddev", Json.Float (Summary.stddev s));
          ("min", Json.Float (Summary.min s));
          ("p50", Json.Float (Summary.median s));
          ("p90", Json.Float (Summary.percentile s 90.0));
          ("p99", Json.Float (Summary.percentile s 99.0));
          ("max", Json.Float (Summary.max s));
          ( "bins",
            Json.List
              (List.map
                 (fun (lo, count) ->
                   Json.Obj [ ("lo", Json.Float lo); ("count", Json.Int count) ])
                 (histogram_bins s)) );
        ])

let metric_to_json = function
  | Counter c -> Json.Obj [ ("kind", Json.String "counter"); ("value", Json.Int c.count) ]
  | Gauge g -> Json.Obj [ ("kind", Json.String "gauge"); ("value", Json.Float g.value) ]
  | Histogram h -> summary_to_json h.summary
  | Log l -> Log_hist.to_json l

let to_json t =
  let by_subsystem =
    List.map
      (fun subsystem ->
        let fields =
          List.filter_map
            (fun b ->
              if b.subsystem = subsystem then Some (b.name, metric_to_json b.metric)
              else None)
            (bindings t)
        in
        (subsystem, Json.Obj fields))
      (subsystems t)
  in
  Json.Obj by_subsystem

(* RFC-4180 field escaping: names containing the delimiter, a quote, or
   a line break are wrapped in double quotes with inner quotes doubled —
   otherwise such a name shifts every later column of its row. *)
let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "subsystem,name,kind,count,value,mean,min,max\n";
  List.iter
    (fun b ->
      let subsystem = csv_field b.subsystem and name = csv_field b.name in
      match b.metric with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,counter,%d,%d,,,\n" subsystem name c.count c.count)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,gauge,,%g,,,\n" subsystem name g.value)
      | Histogram h ->
        let s = h.summary in
        if Summary.count s = 0 then
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,histogram,0,,,,\n" subsystem name)
        else
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,histogram,%d,,%g,%g,%g\n" subsystem name
               (Summary.count s) (Summary.mean s) (Summary.min s) (Summary.max s))
      | Log l ->
        if Log_hist.count l = 0 then
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,log_histogram,0,,,,\n" subsystem name)
        else
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,log_histogram,%d,,%g,%g,%g\n" subsystem name
               (Log_hist.count l) (Log_hist.mean l) (Log_hist.min_value l)
               (Log_hist.max_value l)))
    (bindings t);
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun subsystem ->
      Format.fprintf ppf "%s:@," subsystem;
      List.iter
        (fun b ->
          if b.subsystem = subsystem then
            match b.metric with
            | Counter c -> Format.fprintf ppf "  %-28s %d@," b.name c.count
            | Gauge g -> Format.fprintf ppf "  %-28s %g@," b.name g.value
            | Histogram h -> Format.fprintf ppf "  %-28s %a@," b.name Summary.pp h.summary
            | Log l ->
              if Log_hist.count l = 0 then
                Format.fprintf ppf "  %-28s (empty)@," b.name
              else
                Format.fprintf ppf
                  "  %-28s n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f@,"
                  b.name (Log_hist.count l) (Log_hist.mean l)
                  (Log_hist.percentile l 50.0) (Log_hist.percentile l 95.0)
                  (Log_hist.percentile l 99.0) (Log_hist.max_value l))
        (bindings t))
    (subsystems t);
  Format.fprintf ppf "@]"
