test/test_properties.ml: Array Hashtbl Hybrid_p2p List P2p_chord P2p_hashspace P2p_sim P2p_stats Printf QCheck QCheck_alcotest Random String
