lib/topology/transit_stub.mli: Graph P2p_sim
