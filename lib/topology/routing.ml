type source_result = { dist : float array; prev : int array }

type graph_routed = {
  graph : Graph.t;
  cache : source_result option array;
  max_cached : int;
  (* Intrusive LRU list over cached sources: [lru_prev]/[lru_next] chain
     exactly the sources whose cache slot is [Some], so touching a source
     and evicting the coldest one are both O(1) pointer splices — no scan,
     no stamps. *)
  lru_prev : int array;
  lru_next : int array;
  mutable lru_head : int; (* least recently used cached source; -1 = none *)
  mutable lru_tail : int; (* most recently used cached source; -1 = none *)
  mutable cached : int;
}

(* Precomputed link-state tables over a transit-stub hierarchy (the
   TinyOS LinkStateC idea: pay for SPF once, amortize over every routed
   message).  The decomposition exploits the topology's structure: a
   stub domain touches the rest of the graph through exactly one access
   link, so every inter-domain shortest path factors as
   stub -> gateway -> transit backbone -> gateway -> stub.  We therefore
   store all-pairs tables only *inside* each (small) stub domain and
   over the transit backbone — O(sum s_i^2 + g^2) memory, not O(n^2) —
   and answer any [distance]/[hop_count] query with O(1) arithmetic over
   those tables. *)
type link_state = {
  ls_graph : Graph.t;
  is_transit : bool array;
  domain_of : int array; (* stub-domain id per node; -1 for transit nodes *)
  dom_members : int array array; (* domain -> member nodes *)
  dom_index : int array; (* node -> its index inside its domain *)
  dom_gateway : int array; (* domain -> gateway node, -1 when isolated *)
  dom_attach : int array; (* domain -> transit node of the access link *)
  dom_access : float array; (* domain -> access-link latency *)
  (* per-domain all-pairs, s*s row-major in domain-local indices *)
  dom_dist : float array array;
  dom_next : int array array; (* first hop, as a global node id; -1 = none *)
  dom_hops : int array array;
  (* transit backbone all-pairs, g*g row-major in transit indices *)
  t_index : int array; (* node -> transit index; -1 for stub nodes *)
  t_nodes : int array;
  t_dist : float array;
  t_next : int array; (* first hop, as a global node id; -1 = none *)
  t_hops : int array;
}

type ls_box = { mutable ls : link_state }

(* [Synthetic] short-circuits path computation entirely: every distinct
   pair is one hop at a fixed latency.  Million-node underlays cannot
   afford per-source Dijkstra (the cache alone is O(n) per source), and
   overlay-scalability studies do not need real path diversity. *)
type t =
  | Graph_routed of graph_routed
  | Synthetic of { graph : Graph.t; latency : float }
  | Link_state of ls_box

let create ?(max_cached_sources = max_int) graph =
  if max_cached_sources < 1 then invalid_arg "Routing.create: max_cached_sources";
  let n = Graph.node_count graph in
  Graph_routed
    {
      graph;
      cache = Array.make n None;
      max_cached = max_cached_sources;
      lru_prev = Array.make n (-1);
      lru_next = Array.make n (-1);
      lru_head = -1;
      lru_tail = -1;
      cached = 0;
    }

let synthetic ~nodes ~latency =
  if nodes < 0 then invalid_arg "Routing.synthetic: negative node count";
  if latency <= 0.0 then invalid_arg "Routing.synthetic: latency must be positive";
  Synthetic { graph = Graph.create nodes; latency }

(* Dijkstra with a simple binary heap of (distance, node). *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h x =
    let cap = Array.length h.data in
    if h.size = cap then begin
      let data = Array.make (if cap = 0 then 16 else cap * 2) x in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
          if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = h.data.(!i) in
            h.data.(!i) <- h.data.(!smallest);
            h.data.(!smallest) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

let dijkstra graph src =
  let n = Graph.node_count graph in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- 0.0;
  let heap = Heap.create () in
  Heap.push heap (0.0, src);
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        Graph.iter_neighbors graph u (fun v w ->
            let alt = d +. w in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              prev.(v) <- u;
              Heap.push heap (alt, v)
            end)
      end;
      loop ()
  in
  loop ();
  { dist; prev }

(* --- graph-routed cache: intrusive LRU --- *)

let lru_unlink t src =
  let p = t.lru_prev.(src) and n = t.lru_next.(src) in
  if p >= 0 then t.lru_next.(p) <- n else t.lru_head <- n;
  if n >= 0 then t.lru_prev.(n) <- p else t.lru_tail <- p;
  t.lru_prev.(src) <- -1;
  t.lru_next.(src) <- -1

let lru_push_tail t src =
  t.lru_prev.(src) <- t.lru_tail;
  t.lru_next.(src) <- -1;
  if t.lru_tail >= 0 then t.lru_next.(t.lru_tail) <- src else t.lru_head <- src;
  t.lru_tail <- src

(* Evict the least-recently-used cached source: the head of the
   intrusive list, an O(1) splice. *)
let evict_lru t =
  let victim = t.lru_head in
  if victim >= 0 then begin
    lru_unlink t victim;
    t.cache.(victim) <- None;
    t.cached <- t.cached - 1
  end

let source_result t src =
  match t.cache.(src) with
  | Some r ->
    if t.lru_tail <> src then begin
      lru_unlink t src;
      lru_push_tail t src
    end;
    r
  | None ->
    if t.cached >= t.max_cached then evict_lru t;
    let r = dijkstra t.graph src in
    t.cache.(src) <- Some r;
    t.cached <- t.cached + 1;
    lru_push_tail t src;
    r

let drop_cache t =
  for src = 0 to Array.length t.cache - 1 do
    t.cache.(src) <- None;
    t.lru_prev.(src) <- -1;
    t.lru_next.(src) <- -1
  done;
  t.lru_head <- -1;
  t.lru_tail <- -1;
  t.cached <- 0

(* --- link-state construction --- *)

(* All-pairs Dijkstra over the subgraph induced by [members] (neighbours
   outside the set are ignored).  Domains and the transit backbone are
   small, so a scan-min O(s^2) Dijkstra per source beats heap overhead
   and allocates only the result tables. *)
let restricted_all_pairs graph ~members ~index_of ~in_set =
  let s = Array.length members in
  let dist = Array.make (s * s) infinity in
  let next = Array.make (s * s) (-1) in
  let hops = Array.make (s * s) 0 in
  let d = Array.make s infinity in
  let settled = Array.make s false in
  let first = Array.make s (-1) in
  let hop = Array.make s 0 in
  for si = 0 to s - 1 do
    Array.fill d 0 s infinity;
    Array.fill settled 0 s false;
    Array.fill first 0 s (-1);
    Array.fill hop 0 s 0;
    d.(si) <- 0.0;
    let src = members.(si) in
    for _round = 0 to s - 1 do
      (* pick the unsettled node with the smallest tentative distance *)
      let best = ref (-1) in
      let best_d = ref infinity in
      for j = 0 to s - 1 do
        if (not settled.(j)) && d.(j) < !best_d then begin
          best := j;
          best_d := d.(j)
        end
      done;
      if !best >= 0 then begin
        let u = !best in
        settled.(u) <- true;
        Graph.iter_neighbors graph members.(u) (fun v w ->
            if in_set v then begin
              let vi = index_of v in
              let alt = d.(u) +. w in
              if alt < d.(vi) then begin
                d.(vi) <- alt;
                first.(vi) <- (if members.(u) = src then v else first.(u));
                hop.(vi) <- hop.(u) + 1
              end
            end)
      end
    done;
    let row = si * s in
    for j = 0 to s - 1 do
      dist.(row + j) <- d.(j);
      next.(row + j) <- first.(j);
      hops.(row + j) <- hop.(j)
    done
  done;
  (dist, next, hops)

let build_link_state graph ~is_transit =
  let n = Graph.node_count graph in
  let transit = Array.init n is_transit in
  (* stub domains = connected components of the stub-only subgraph *)
  let domain_of = Array.make n (-1) in
  let members_rev = ref [] in
  let domain_count = ref 0 in
  let stack = ref [] in
  for u = 0 to n - 1 do
    if (not transit.(u)) && domain_of.(u) < 0 then begin
      let d = !domain_count in
      incr domain_count;
      let acc = ref [] in
      domain_of.(u) <- d;
      stack := [ u ];
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
          stack := rest;
          acc := v :: !acc;
          Graph.iter_neighbors graph v (fun w _ ->
              if (not transit.(w)) && domain_of.(w) < 0 then begin
                domain_of.(w) <- d;
                stack := w :: !stack
              end)
      done;
      members_rev := Array.of_list (List.rev !acc) :: !members_rev
    end
  done;
  let dom_members = Array.of_list (List.rev !members_rev) in
  let domains = Array.length dom_members in
  let dom_index = Array.make n 0 in
  Array.iter
    (fun members -> Array.iteri (fun i u -> dom_index.(u) <- i) members)
    dom_members;
  (* access links: each domain must touch the backbone through at most
     one stub-to-transit edge, the structural invariant the whole
     decomposition rests on *)
  let dom_gateway = Array.make domains (-1) in
  let dom_attach = Array.make domains (-1) in
  let dom_access = Array.make domains infinity in
  Array.iteri
    (fun d members ->
      Array.iter
        (fun u ->
          Graph.iter_neighbors graph u (fun v w ->
              if transit.(v) then begin
                if dom_gateway.(d) >= 0 then
                  invalid_arg
                    (Printf.sprintf
                       "Routing.link_state: stub domain %d has several access \
                        links (not transit-stub shaped)"
                       d);
                dom_gateway.(d) <- u;
                dom_attach.(d) <- v;
                dom_access.(d) <- w
              end))
        members)
    dom_members;
  (* intra-domain tables *)
  let dom_dist = Array.make domains [||] in
  let dom_next = Array.make domains [||] in
  let dom_hops = Array.make domains [||] in
  Array.iteri
    (fun d members ->
      let dist, next, hops =
        restricted_all_pairs graph ~members
          ~index_of:(fun v -> dom_index.(v))
          ~in_set:(fun v -> (not transit.(v)) && domain_of.(v) = d)
      in
      dom_dist.(d) <- dist;
      dom_next.(d) <- next;
      dom_hops.(d) <- hops)
    dom_members;
  (* transit backbone tables *)
  let t_nodes =
    let acc = ref [] in
    for u = n - 1 downto 0 do
      if transit.(u) then acc := u :: !acc
    done;
    Array.of_list !acc
  in
  let t_index = Array.make n (-1) in
  Array.iteri (fun i u -> t_index.(u) <- i) t_nodes;
  let t_dist, t_next, t_hops =
    restricted_all_pairs graph ~members:t_nodes
      ~index_of:(fun v -> t_index.(v))
      ~in_set:(fun v -> transit.(v))
  in
  {
    ls_graph = graph;
    is_transit = transit;
    domain_of;
    dom_members;
    dom_index;
    dom_gateway;
    dom_attach;
    dom_access;
    dom_dist;
    dom_next;
    dom_hops;
    t_index;
    t_nodes;
    t_dist;
    t_hops;
    t_next;
  }

let link_state graph ~is_transit =
  Link_state { ls = build_link_state graph ~is_transit }

(* --- link-state queries --- *)

let ls_intra_dist ls d u v =
  let s = Array.length ls.dom_members.(d) in
  ls.dom_dist.(d).((ls.dom_index.(u) * s) + ls.dom_index.(v))

let ls_intra_hops ls d u v =
  let s = Array.length ls.dom_members.(d) in
  ls.dom_hops.(d).((ls.dom_index.(u) * s) + ls.dom_index.(v))

let ls_intra_next ls d u v =
  let s = Array.length ls.dom_members.(d) in
  ls.dom_next.(d).((ls.dom_index.(u) * s) + ls.dom_index.(v))

let ls_t_dist ls u v =
  let g = Array.length ls.t_nodes in
  ls.t_dist.((ls.t_index.(u) * g) + ls.t_index.(v))

let ls_t_hops ls u v =
  let g = Array.length ls.t_nodes in
  ls.t_hops.((ls.t_index.(u) * g) + ls.t_index.(v))

let ls_t_next ls u v =
  let g = Array.length ls.t_nodes in
  ls.t_next.((ls.t_index.(u) * g) + ls.t_index.(v))

(* Distance (and hops) from a node up to its backbone attachment point:
   0 for a transit node; intra-path to the gateway plus the access link
   for a stub node.  Infinity when the domain has no access link. *)
let ls_to_backbone ls u du =
  if du < 0 then (u, 0.0, 0)
  else begin
    let gw = ls.dom_gateway.(du) in
    if gw < 0 then (-1, infinity, 0)
    else
      ( ls.dom_attach.(du),
        ls_intra_dist ls du u gw +. ls.dom_access.(du),
        ls_intra_hops ls du u gw + 1 )
  end

let ls_distance ls u v =
  if u = v then 0.0
  else begin
    let du = ls.domain_of.(u) and dv = ls.domain_of.(v) in
    if du >= 0 && du = dv then ls_intra_dist ls du u v
    else if du < 0 && dv < 0 then ls_t_dist ls u v
    else begin
      let au, up, _ = ls_to_backbone ls u du in
      let av, down, _ = ls_to_backbone ls v dv in
      if au < 0 || av < 0 then infinity else up +. ls_t_dist ls au av +. down
    end
  end

let ls_hop_count ls u v =
  if u = v then 0
  else begin
    let du = ls.domain_of.(u) and dv = ls.domain_of.(v) in
    if du >= 0 && du = dv then ls_intra_hops ls du u v
    else if du < 0 && dv < 0 then ls_t_hops ls u v
    else begin
      let au, _, hu = ls_to_backbone ls u du in
      let av, _, hv = ls_to_backbone ls v dv in
      if au < 0 || av < 0 then 0 else hu + ls_t_hops ls au av + hv
    end
  end

(* First hop from [u] toward [v]; -1 when unreachable.  Mirrors the
   distance decomposition: head for the gateway, cross the backbone to
   the destination domain's attachment, drop down its access link,
   finish inside the domain. *)
let ls_next_hop ls u v =
  let du = ls.domain_of.(u) and dv = ls.domain_of.(v) in
  if u = v then u
  else if du >= 0 && du = dv then ls_intra_next ls du u v
  else if du >= 0 then begin
    let gw = ls.dom_gateway.(du) in
    if gw < 0 then -1
    else if u = gw then ls.dom_attach.(du)
    else ls_intra_next ls du u gw
  end
  else if dv < 0 then ls_t_next ls u v
  else begin
    let a = ls.dom_attach.(dv) in
    if a < 0 then -1
    else if u = a then ls.dom_gateway.(dv)
    else ls_t_next ls u a
  end

let ls_path ls u v =
  if ls_distance ls u v = infinity then raise Not_found;
  let rec collect node acc =
    if node = v then List.rev (v :: acc)
    else collect (ls_next_hop ls node v) (node :: acc)
  in
  if u = v then [ u ] else collect u []

(* --- incremental recomputation --- *)

let rebuild_domain ls d =
  let members = ls.dom_members.(d) in
  let dist, next, hops =
    restricted_all_pairs ls.ls_graph ~members
      ~index_of:(fun v -> ls.dom_index.(v))
      ~in_set:(fun v -> (not ls.is_transit.(v)) && ls.domain_of.(v) = d)
  in
  ls.dom_dist.(d) <- dist;
  ls.dom_next.(d) <- next;
  ls.dom_hops.(d) <- hops

let rebuild_transit ls =
  let dist, next, hops =
    restricted_all_pairs ls.ls_graph ~members:ls.t_nodes
      ~index_of:(fun v -> ls.t_index.(v))
      ~in_set:(fun v -> ls.is_transit.(v))
  in
  Array.blit dist 0 ls.t_dist 0 (Array.length dist);
  Array.blit next 0 ls.t_next 0 (Array.length next);
  Array.blit hops 0 ls.t_hops 0 (Array.length hops)

let update_link t u v ~latency =
  match t with
  | Synthetic _ -> invalid_arg "Routing.update_link: synthetic router"
  | Graph_routed r ->
    Graph.set_latency r.graph u v ~latency;
    (* every cached single-source tree may route through the edge *)
    drop_cache r
  | Link_state b ->
    let ls = b.ls in
    Graph.set_latency ls.ls_graph u v ~latency;
    let du = ls.domain_of.(u) and dv = ls.domain_of.(v) in
    if du < 0 && dv < 0 then rebuild_transit ls
    else if du >= 0 && du = dv then rebuild_domain ls du
    else
      (* the only stub-to-transit edges are access links *)
      let d = if du >= 0 then du else dv in
      ls.dom_access.(d) <- latency

let refresh t =
  match t with
  | Synthetic _ -> ()
  | Graph_routed r -> drop_cache r
  | Link_state b ->
    b.ls <- build_link_state b.ls.ls_graph ~is_transit:(fun u -> b.ls.is_transit.(u))

(* --- the common query surface --- *)

let distance t u v =
  match t with
  | Graph_routed t -> (source_result t u).dist.(v)
  | Synthetic { latency; _ } -> if u = v then 0.0 else latency
  | Link_state b -> ls_distance b.ls u v

let path t u v =
  match t with
  | Graph_routed t ->
    let r = source_result t u in
    if r.dist.(v) = infinity then raise Not_found;
    let rec build acc node =
      if node = u then u :: acc else build (node :: acc) r.prev.(node)
    in
    build [] v
  | Synthetic _ -> if u = v then [ u ] else [ u; v ]
  | Link_state b -> ls_path b.ls u v

(* Hop counting never materializes the path: graph mode walks the
   predecessor chain, link-state mode adds three table entries. *)
let hop_count t u v =
  match t with
  | Graph_routed t ->
    if u = v then 0
    else begin
      let r = source_result t u in
      if r.dist.(v) = infinity then raise Not_found;
      let hops = ref 0 in
      let node = ref v in
      while !node <> u do
        node := r.prev.(!node);
        incr hops
      done;
      !hops
    end
  | Synthetic _ -> if u = v then 0 else 1
  | Link_state b ->
    if u <> v && ls_distance b.ls u v = infinity then raise Not_found;
    ls_hop_count b.ls u v

let eccentricity t u =
  match t with
  | Graph_routed t ->
    let r = source_result t u in
    Array.fold_left (fun acc d -> if d <> infinity && d > acc then d else acc) 0.0 r.dist
  | Synthetic { latency; _ } -> latency
  | Link_state b ->
    let ls = b.ls in
    let n = Graph.node_count ls.ls_graph in
    let acc = ref 0.0 in
    for v = 0 to n - 1 do
      let d = ls_distance ls u v in
      if d <> infinity && d > !acc then acc := d
    done;
    !acc

let graph = function
  | Graph_routed t -> t.graph
  | Synthetic { graph; _ } -> graph
  | Link_state b -> b.ls.ls_graph
