(** Subsystem-scoped metrics registry.

    One registry per simulated system collects every measured quantity
    under a [(subsystem, name)] key — ["t_network"/"joins_completed"],
    ["underlay"/"messages"], ["data_ops"/"lookup_latency_ms"], ... — so a
    run report can attribute cost per tier (t-network vs s-network vs
    underlay), which a single flat record cannot.

    Four metric shapes:
    - {e counters} — monotone event counts;
    - {e gauges} — last-written (or high-water) values;
    - {e histograms} — value distributions, backed by
      {!P2p_stats.Summary} so means, percentiles, and confidence
      intervals come for free;
    - {e log histograms} — {!Log_hist} latency distributions on a fixed
      geometric grid, mergeable across runs.

    Handles are get-or-create: [counter t ~subsystem ~name] returns the
    existing counter on every subsequent call, so call sites need no
    registration phase.  Registration order is preserved in every export,
    keeping output deterministic run to run. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Handles} — get-or-create; [Invalid_argument] if the name already
    holds a metric of a different shape. *)

val counter : t -> subsystem:string -> name:string -> counter
val gauge : t -> subsystem:string -> name:string -> gauge
val histogram : t -> subsystem:string -> name:string -> histogram

(** The handle is the {!Log_hist.t} itself; record with
    {!Log_hist.observe}. *)
val log_histogram : t -> subsystem:string -> name:string -> Log_hist.t

(** {1 Recording} *)

(** [incr ?by c] adds [by] (default [1]). *)
val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** [set g v] overwrites the gauge. *)
val set : gauge -> float -> unit

(** [set_max g v] keeps the maximum ever written — high-water marks. *)
val set_max : gauge -> float -> unit

val gauge_value : gauge -> float

(** [observe h v] adds one sample. *)
val observe : histogram -> float -> unit

(** The backing summary (shared, not a copy): read-side access to count,
    mean, percentiles, and raw samples. *)
val summary : histogram -> P2p_stats.Summary.t

(** [reset_values t] zeroes every metric in place — counters to [0],
    gauges to [0.], histogram samples discarded — while keeping every
    handle valid and the registration order intact.  Lets a bench sweep
    reuse one wired-up system across configurations without metrics
    accumulating across configs. *)
val reset_values : t -> unit

(** {1 Iteration} *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Log of Log_hist.t

type binding = { subsystem : string; name : string; metric : metric }

(** All registered metrics in registration order. *)
val bindings : t -> binding list

(** Distinct subsystems in first-registration order. *)
val subsystems : t -> string list

(** [histogram_bins ?bins s] buckets a summary's samples into [bins]
    (default [12]) fixed-width [(lo, count)] buckets over [[min, max]] —
    the shape data a report's ASCII histogram needs.  Empty summary gives
    [[]]; a constant summary gives one bucket. *)
val histogram_bins : ?bins:int -> P2p_stats.Summary.t -> (float * int) list

(** {1 Export} *)

(** [to_json t] — one object per subsystem, one field per metric:
    [{"kind":"counter","value":n}], [{"kind":"gauge","value":x}], or
    [{"kind":"histogram","count":n,"mean":...,"bins":[...]}]. *)
val to_json : t -> Json.t

(** [csv_field s] — RFC-4180 escaping of one CSV field: quoted (with
    inner quotes doubled) when [s] contains a comma, quote, or line
    break; returned verbatim otherwise. *)
val csv_field : string -> string

(** [to_csv t] — one row per metric with a fixed
    [subsystem,name,kind,count,value,mean,min,max] header; subsystem and
    metric names pass through {!csv_field}. *)
val to_csv : t -> string

val pp : Format.formatter -> t -> unit
