(** Run reports: parse an exported metrics snapshot and pretty-print it.

    [p2psim report m.json] reads a file written by {!Export.write_metrics}
    and renders per-subsystem counter tables and ASCII latency histograms
    (via {!P2p_stats.Ascii_plot}), so a run's cost profile is readable in
    a terminal without any external tooling. *)

(** A parsed histogram snapshot: summary statistics plus fixed-width
    [(lo, count)] buckets for chart rendering. *)
type hist = {
  count : int;
  mean : float;
  stddev : float;
  min_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  bins : (float * int) list;
}

type metric = Counter of int | Gauge of float | Histogram of hist

(** Subsystems in file order, each with its metrics in file order. *)
type t = (string * (string * metric) list) list

(** [of_string text] parses a metrics JSON document ({!Registry.to_json}
    schema). *)
val of_string : string -> (t, string) result

(** [of_registry registry] snapshots a live registry without a
    serialization detour. *)
val of_registry : Registry.t -> t

(** [render report] — the full human-readable report: one [== subsystem ==]
    section each, counters/gauges aligned, histograms with summary lines
    and bar charts.  An ["audit"] subsystem (written by the online
    invariant auditor) renders as a "health" section instead: one
    OK / VIOLATED row per check, with last-run freshness, followed by the
    health gauges.  Reports without audit metrics render exactly as
    before. *)
val render : t -> string
