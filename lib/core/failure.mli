(** Abrupt leaving: crash injection, online detection and recovery
    (Section 3.2.2), and offline repair.

    {b Online path} (when [config.heartbeats] is true): every peer
    periodically broadcasts HELLO messages to its overlay neighbours; a
    per-neighbour watchdog times out when a neighbour goes silent.  Data
    query traffic doubles as liveness evidence — a queried peer sends an
    acknowledgment (rate-limited by the suppress timer), the acknowledgment
    resets the querier's watchdog, and sending it postpones the peer's own
    scheduled HELLO, saving bandwidth exactly as the paper describes.  On a
    timeout: a child of a crashed s-peer rejoins through its t-peer with
    its subtree; the loss of a t-peer triggers the server election, where
    the surviving member with the smallest address is promoted into the
    crashed t-peer's ring position (finger tables are substituted, never
    recomputed).

    {b Offline path} ([repair]): after a crash storm in a batch experiment
    (heartbeats off), a single call restores every structural invariant —
    the deterministic end state the online protocol converges to.  Without
    replication, crashed peers' data is lost either way; that loss is what
    Fig. 5b measures.  With [config.replication_factor > 0] and the
    {!P2p_replication} manager installed, both paths notify the manager
    (through {!World.t}'s [on_peer_failure]/[on_repaired] hooks) so items
    whose primary died are promoted from surviving replicas and the
    redundancy is re-established. *)

(** [crash w peer] makes [peer] abruptly leave: its data evaporates, no
    pointer is repaired, its timers stop.  Detection is the neighbours'
    problem.  A ["crash"] trace event is recorded and the
    [failure/crashes] counter bumped.
    @raise Invalid_argument if already dead. *)
val crash : World.t -> Peer.t -> unit

(** [enable_heartbeats w peer] starts the peer's periodic HELLO broadcast
    and arms watchdogs for its current neighbours.  Call after the peer
    finished joining.  No-op when [config.heartbeats] is false. *)
val enable_heartbeats : World.t -> Peer.t -> unit

(** [install_query_hook w] wires data-query traffic into the
    acknowledgment/suppress timer machinery.  Called once by {!Hybrid}. *)
val install_query_hook : World.t -> unit

(** [repair w] synchronously restores all structural invariants damaged by
    crashes: elects replacements for crashed t-peers (smallest surviving
    address), reattaches orphaned subtrees, rebuilds ring pointers and
    fingers, and recounts s-network sizes.  The whole repair is spanned by
    one trace operation of kind [Repair]. *)
val repair : World.t -> unit
