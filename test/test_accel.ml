(* Tests for the lookup accelerators: Bloom filters, attenuated edge
   summaries (flood pruning) and the per-peer result cache.

   The load-bearing property throughout is one-sidedness: every
   accelerator may cost extra messages (false positives, cold caches)
   but must never lose an answer the unaccelerated system would find. *)

open Helpers
module Bloom = Hybrid_p2p.Bloom
module Summaries = Hybrid_p2p.Summaries
module Cache = Hybrid_p2p.Cache
module Checks = P2p_audit.Checks
module Replication = P2p_replication.Manager
module Metrics = P2p_net.Metrics
module Registry = P2p_obs.Registry
module Rng = P2p_sim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Bloom filter --- *)

let prop_bloom_no_false_negatives =
  QCheck.Test.make ~name:"bloom: added keys are always members" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (string_gen_of_size (Gen.int_range 1 24) Gen.printable))
    (fun keys ->
      let f = Bloom.create ~expected:(max 1 (List.length keys)) ~bits_per_key:8 in
      List.iter (Bloom.add f) keys;
      List.for_all (Bloom.mem f) keys)

let test_bloom_fp_rate () =
  (* At the design point (n = expected, 10 bits/key, ~7 hashes) the
     theoretical false-positive rate is ~0.8%; assert a generous 3%
     ceiling and a near-half fill ratio. *)
  let n = 2_000 in
  let f = Bloom.create ~expected:n ~bits_per_key:10 in
  for i = 1 to n do
    Bloom.add f (Printf.sprintf "present-%06d" i)
  done;
  let probes = 20_000 in
  let fp = ref 0 in
  for i = 1 to probes do
    if Bloom.mem f (Printf.sprintf "absent-%06d" i) then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int probes in
  if rate > 0.03 then
    Alcotest.failf "false-positive rate %.4f above the 3%% ceiling" rate;
  let fill = Bloom.fill_ratio f in
  checkb "fill ratio near 0.5" true (fill > 0.3 && fill < 0.7);
  checki "count tracks adds" n (Bloom.count f)

let test_bloom_rejects () =
  Alcotest.check_raises "bits_per_key must be positive"
    (Invalid_argument "Bloom.create: bits_per_key") (fun () ->
      ignore (Bloom.create ~expected:10 ~bits_per_key:0 : Bloom.t))

(* --- result cache --- *)

let test_cache_ttl_expiry () =
  let c = Cache.create ~capacity:4 in
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"k" ~value:"v";
  Alcotest.check (Alcotest.option Alcotest.string) "fresh" (Some "v")
    (Cache.find c ~now:5.0 ~key:"k");
  Alcotest.check (Alcotest.option Alcotest.string) "expired" None
    (Cache.find c ~now:10.5 ~key:"k");
  checki "expired entry dropped on access" 0 (Cache.size c)

let test_cache_eviction_order () =
  (* When full, the entry closest to expiry goes first — regardless of
     insertion order. *)
  let c = Cache.create ~capacity:3 in
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"mid" ~value:"1";
  Cache.put c ~now:0.0 ~lifetime:5.0 ~key:"soon" ~value:"2";
  Cache.put c ~now:0.0 ~lifetime:20.0 ~key:"late" ~value:"3";
  Cache.put c ~now:1.0 ~lifetime:30.0 ~key:"new" ~value:"4";
  checkb "soonest-to-expire evicted" true (Cache.find c ~now:1.0 ~key:"soon" = None);
  checkb "mid kept" true (Cache.find c ~now:1.0 ~key:"mid" = Some "1");
  checkb "late kept" true (Cache.find c ~now:1.0 ~key:"late" = Some "3");
  checkb "new kept" true (Cache.find c ~now:1.0 ~key:"new" = Some "4")

let test_cache_refresh_moves_expiry () =
  (* Refreshing an entry must also move it back in the eviction order:
     the stale heap pair may not evict the refreshed key. *)
  let c = Cache.create ~capacity:2 in
  Cache.put c ~now:0.0 ~lifetime:5.0 ~key:"a" ~value:"v1";
  Cache.put c ~now:0.0 ~lifetime:50.0 ~key:"b" ~value:"v";
  Cache.put c ~now:1.0 ~lifetime:100.0 ~key:"a" ~value:"v2";
  Cache.put c ~now:2.0 ~lifetime:100.0 ~key:"c" ~value:"v";
  checkb "b (soonest) evicted" true (Cache.find c ~now:2.0 ~key:"b" = None);
  checkb "refreshed a survives" true (Cache.find c ~now:2.0 ~key:"a" = Some "v2");
  checki "at capacity" 2 (Cache.size c)

let test_cache_many_churns_stay_bounded () =
  (* Heap compaction: refreshing the same small key set thousands of
     times must not grow internal state without bound (indirectly: stays
     correct and at capacity). *)
  let c = Cache.create ~capacity:8 in
  for i = 1 to 10_000 do
    Cache.put c ~now:(float_of_int i) ~lifetime:100.0
      ~key:(Printf.sprintf "k%d" (i mod 16))
      ~value:"v"
  done;
  checki "at capacity" 8 (Cache.size c)

(* --- summaries: pruned floods keep full recall --- *)

let accel_config =
  { default_config with Config.bloom_bits_per_key = 8; bloom_depth = 3 }

let counter_value h ~subsystem ~name =
  Registry.counter_value
    (Registry.counter (Metrics.registry (H.metrics h)) ~subsystem ~name)

let recall_all h keys =
  List.fold_left
    (fun acc key ->
      if found (lookup_sync h ~from:(H.random_peer h) ~key ()) then acc + 1 else acc)
    0 keys

let test_pruned_recall_equals_full () =
  (* Same seed, same workload, with and without summaries: the pruned
     system must answer every lookup the full-flood system answers,
     while actually pruning. *)
  let build config =
    let h, _ = star_system ~config ~seed:77 ~n:72 ~ps:0.75 () in
    let keys = insert_items h ~count:300 in
    (h, keys)
  in
  let h_full, keys_full = build default_config in
  let h_pruned, keys_pruned = build accel_config in
  Alcotest.check (Alcotest.list Alcotest.string) "same corpus" keys_full keys_pruned;
  let full = recall_all h_full keys_full in
  let pruned = recall_all h_pruned keys_pruned in
  checki "pruned recall = full recall" full pruned;
  checki "full-flood recall is total" (List.length keys_full) full;
  checkb "pruning actually happened" true
    (counter_value h_pruned ~subsystem:"s_network" ~name:"flood_pruned" > 0);
  checkb "full floods never prune" true
    (counter_value h_full ~subsystem:"s_network" ~name:"flood_pruned" = 0);
  ok_invariants h_pruned

let run_bloom_coverage h =
  match Checks.find "bloom_coverage" with
  | None -> Alcotest.fail "bloom_coverage check missing from catalogue"
  | Some c -> Checks.run c (H.world h)

let test_no_false_negatives_under_churn () =
  (* Joins, graceful leaves, crashes and a replication heal; after each
     settle, the coverage audit must find every stored key visible
     through its root path, and live lookups must still resolve. *)
  let config = { accel_config with Config.replication_factor = 2 } in
  let h, members = star_system ~config ~seed:31 ~n:80 ~ps:0.7 () in
  let members = Array.to_list members in
  let m = Replication.install (H.world h) in
  let keys = insert_items h ~count:400 in
  let assert_clean label =
    let status = run_bloom_coverage h in
    (match status.Checks.violations with
     | [] -> ()
     | v :: _ ->
       Alcotest.failf "%s: %s" label
         (Format.asprintf "%a" Checks.pp_violation v))
  in
  assert_clean "after inserts";
  (* graceful leaves: a couple of s-peers (their items walk up a hop) *)
  let rng = Rng.create 5 in
  let s_peers = List.filter (fun p -> not (Peer.is_t_peer p)) members in
  List.iteri
    (fun i p -> if i < 3 && p.Peer.alive then H.leave h p ())
    s_peers;
  H.run h;
  assert_clean "after s-peer leaves";
  (* joins: new peers attach to existing trees *)
  ignore (H.grow h ~count:8 ~s_fraction:0.8 : Peer.t array);
  assert_clean "after joins";
  (* crashes incl. a t-peer, then repair + heal restore the copies *)
  let crash_some ps =
    List.iteri (fun i p -> if i < 2 && p.Peer.alive then H.crash h p) ps
  in
  crash_some (List.filter (fun p -> not (Peer.is_t_peer p) && p.Peer.alive) members);
  (match List.find_opt (fun p -> Peer.is_t_peer p && p.Peer.alive) members with
   | Some t -> H.crash h t
   | None -> ());
  H.repair h;
  Replication.heal m;
  H.run h;
  assert_clean "after crashes + heal";
  (* and the data is genuinely reachable, not just summarized *)
  let sample =
    List.filteri (fun i _ -> i mod 10 = 0) keys
  in
  List.iter
    (fun key ->
      if not (found (lookup_sync h ~from:(H.random_peer h) ~key ())) then
        Alcotest.failf "key %s lost after churn" key)
    sample;
  ignore rng

let suite =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260806 |])
    prop_bloom_no_false_negatives
  :: [
       Alcotest.test_case "bloom: fp rate at design point" `Quick test_bloom_fp_rate;
       Alcotest.test_case "bloom: rejects bad geometry" `Quick test_bloom_rejects;
       Alcotest.test_case "cache: ttl expiry" `Quick test_cache_ttl_expiry;
       Alcotest.test_case "cache: evicts soonest-to-expire" `Quick
         test_cache_eviction_order;
       Alcotest.test_case "cache: refresh moves expiry" `Quick
         test_cache_refresh_moves_expiry;
       Alcotest.test_case "cache: 10k refreshes stay bounded" `Quick
         test_cache_many_churns_stay_bounded;
       Alcotest.test_case "summaries: pruned recall = full recall" `Quick
         test_pruned_recall_equals_full;
       Alcotest.test_case "summaries: no false negatives under churn" `Quick
         test_no_false_negatives_under_churn;
     ]
