(* Fig. 6a: average lookup latency vs p_s with and without link
   heterogeneity (Section 5.1: high-capacity peers become t-peers and
   connect points are chosen by link usage).
   Fig. 6b: average lookup latency vs p_s with and without topology
   awareness (Section 5.2: landmark binning with 8 and 12 landmarks). *)

open Experiments
module Summary = P2p_stats.Summary
module Ascii_plot = P2p_stats.Ascii_plot

let mean_latency ?config ~scale ~ps ~heterogeneity ~landmarks ~seed () =
  let b = build ?config ~seed ~ps ~heterogeneity ~landmarks ~scale () in
  insert_corpus b;
  run_lookups b ~count:scale.n_lookups;
  Summary.mean (Metrics.lookup_latency (H.metrics b.h))

let fig6a ~scale () =
  header "Fig 6a — average lookup latency (ms) vs p_s, +/- link heterogeneity";
  row "%6s  %12s  %16s\n" "p_s" "basic" "heterogeneity";
  (* access-link transmission cost makes capacity matter, as in NS2 *)
  let config = { Config.default with Config.transmission_ms = 40.0 } in
  let collected = ref [] in
  List.iter
    (fun ps ->
      let basic =
        mean_latency ~config ~scale ~ps ~heterogeneity:false ~landmarks:0 ~seed:8 ()
      in
      let hetero =
        mean_latency ~config ~scale ~ps ~heterogeneity:true ~landmarks:0 ~seed:8 ()
      in
      collected := (ps, basic, hetero) :: !collected;
      row "%6.2f  %12.2f  %16.2f\n%!" ps basic hetero)
    ps_sweep;
  print_string
    (Ascii_plot.line_chart
       ~series:
         [ { Ascii_plot.name = "basic";
             points = List.rev_map (fun (ps, b, _) -> (ps, b)) !collected };
           { Ascii_plot.name = "heterogeneity";
             points = List.rev_map (fun (ps, _, h) -> (ps, h)) !collected } ]
       ())

let fig6b ~scale () =
  header "Fig 6b — average lookup latency (ms) vs p_s, +/- topology awareness";
  row "%6s  %12s  %14s  %14s\n" "p_s" "basic" "8 landmarks" "12 landmarks";
  List.iter
    (fun ps ->
      let basic = mean_latency ~scale ~ps ~heterogeneity:false ~landmarks:0 ~seed:9 () in
      let l8 = mean_latency ~scale ~ps ~heterogeneity:false ~landmarks:8 ~seed:9 () in
      let l12 = mean_latency ~scale ~ps ~heterogeneity:false ~landmarks:12 ~seed:9 () in
      row "%6.2f  %12.2f  %14.2f  %14.2f\n%!" ps basic l8 l12)
    ps_sweep
