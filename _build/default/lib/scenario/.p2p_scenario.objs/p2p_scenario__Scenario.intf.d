lib/scenario/scenario.mli: Format Hybrid_p2p
