lib/core/data_ops.ml: Array Cache Config Data_store Hashtbl Key_hash List Option P2p_hashspace P2p_net P2p_sim Peer S_network Stdlib String T_network World
