(** Critical-path analysis over {!P2p_sim.Trace} causal span trees.

    For every completed operation retained in the trace, reconstructs the
    longest causal chain of child spans inside the op's root interval by
    a backward sweep (latest-stopping span first, cursor jumping to each
    chosen span's start).  The chain's segments are disjoint and
    contained in the root interval, so [critical_ms <= total_ms] holds by
    construction — the invariant the [latency_sanity] audit check
    verifies. *)

(** One segment of a critical path. *)
type segment = { seg_tier : string; seg_phase : string; seg_ms : float }

(** The analysis of one completed operation. *)
type op = {
  op_id : int;
  kind : string;  (** the op kind's wire name, e.g. ["lookup"] *)
  op_start : float;
  op_stop : float;
  total_ms : float;  (** root span duration *)
  critical_ms : float;  (** sum of the chain's segment durations *)
  chain : segment list;  (** earliest segment first *)
  span_count : int;  (** completed non-root spans of the op *)
}

(** Duration of a completed span; [0.] while open. *)
val duration : P2p_sim.Trace.span -> float

(** All completed operations retained in the trace, oldest first. *)
val completed : P2p_sim.Trace.t -> op list

(** Group an analysis by op kind, first-seen order preserved. *)
val by_kind : op list -> (string * op list) list

(** [record reg trace] folds the analysis into [reg]: log-bucketed
    latency histograms [latency/<kind>_total_ms], [<kind>_critical_ms]
    and [phase_<phase>_ms], per-tier critical-path attribution gauges
    [latency/<kind>_tier_<tier>_ms], and span-health gauges under
    [trace/]. *)
val record : Registry.t -> P2p_sim.Trace.t -> unit
