type entry = { value : string; expiry : float }

type t = {
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  { capacity; entries = Hashtbl.create (min 64 (capacity + 1)); hits = 0; misses = 0 }

let size t = Hashtbl.length t.entries

let capacity t = t.capacity

let evict_soonest t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, expiry) when expiry <= e.expiry -> ()
      | Some _ | None -> victim := Some (key, e.expiry))
    t.entries;
  match !victim with
  | Some (key, _) -> Hashtbl.remove t.entries key
  | None -> ()

let put t ~now ~lifetime ~key ~value =
  if t.capacity > 0 then begin
    if (not (Hashtbl.mem t.entries key)) && Hashtbl.length t.entries >= t.capacity then
      evict_soonest t;
    Hashtbl.replace t.entries key { value; expiry = now +. lifetime }
  end

let find t ~now ~key =
  match Hashtbl.find_opt t.entries key with
  | Some e when e.expiry > now ->
    t.hits <- t.hits + 1;
    Some e.value
  | Some _ ->
    Hashtbl.remove t.entries key;
    t.misses <- t.misses + 1;
    None
  | None ->
    t.misses <- t.misses + 1;
    None

let hits t = t.hits

let misses t = t.misses

let clear t = Hashtbl.reset t.entries
