examples/music_library.ml: Hashtbl Hybrid_p2p List Option P2p_sim Printf
