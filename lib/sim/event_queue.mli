(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)].  The sequence number is
    a monotonically increasing tie-breaker so that two events scheduled for
    the same instant fire in scheduling order — this keeps simulations
    deterministic.  Cancellation is lazy: a cancelled event stays in the heap
    until it reaches the top and is then discarded — but when cancelled
    entries outnumber live ones the whole heap is compacted in one pass
    (amortized O(1) per cancellation), so timer-heavy churn cannot leak
    heap slots indefinitely.

    The hot insertion/removal path is allocation-conscious: event times
    live in a parallel unboxed float array, popped entries are recycled
    through a bounded pool (at most 1024 stale ['a] references are
    retained per queue), {!add_fast} skips the per-event handle, and the
    [batch_*] operations defer heap sifting so a fan-out of [k] inserts
    costs one restructuring pass instead of [k].

    Determinism under batching: ordering keys [(time, seq)] are stamped at
    call time and are unique, so the pop sequence is a pure function of
    the [add*] call sequence — batched and unbatched insertion replay the
    identical event schedule. *)

type 'a t

(** Handle to a scheduled event, usable for cancellation. *)
type handle

(** [create ?tick ()] makes an empty queue.  [tick] is the sequence
    counter used to stamp insertions; passing the same ref to several
    queues gives their entries one global scheduling order, which is how
    the engine's per-lane queues stay mergeable into a single
    deterministic timeline (see {!peek_key}). *)
val create : ?tick:int ref -> unit -> 'a t

(** [add t ~time v] schedules [v] at [time] and returns its handle. *)
val add : 'a t -> time:float -> 'a -> handle

(** [add_fast t ~time v] schedules [v] at [time] with no way to cancel
    it; the queue's shared never-dead handle is used, so nothing beyond
    the (pooled) entry is allocated. *)
val add_fast : 'a t -> time:float -> 'a -> unit

(** [batch_add t ~time v] appends [v] without restoring the heap
    property; the entry participates in ordering only after the next
    {!flush_batch} (any reading operation flushes implicitly).  Use for
    fan-outs that insert many events back-to-back. *)
val batch_add : 'a t -> time:float -> 'a -> handle

(** [batch_add_fast t ~time v] is {!batch_add} without a handle, as
    {!add_fast}. *)
val batch_add_fast : 'a t -> time:float -> 'a -> unit

(** [flush_batch t] restores the heap property after a run of
    [batch_add*]: one sift per batched entry when the batch is small, a
    single bottom-up heapify when it rivals the heap size.  Idempotent;
    called automatically by every reading operation, so forgetting it
    costs nothing but the deferral. *)
val flush_batch : 'a t -> unit

(** [cancel h] marks the event dead; it will never be returned by
    [pop].  Cancelling twice is harmless. *)
val cancel : handle -> unit

(** [cancelled h] is [true] iff [h] has been cancelled. *)
val cancelled : handle -> bool

(** [pop t] removes and returns the earliest live event as
    [Some (time, v)], or [None] if the queue holds no live event. *)
val pop : 'a t -> (float * 'a) option

(** [pop_apply t f] removes the earliest live event and calls [f time v]
    on it, returning [true]; [false] (without calling [f]) if the queue
    holds no live event.  Equivalent to {!pop} but allocates nothing.
    The event is removed before [f] runs, so [f] may re-add. *)
val pop_apply : 'a t -> (float -> 'a -> unit) -> bool

(** [peek_time t] is the timestamp of the earliest live event, if any.
    Dead events at the front are discarded as a side effect. *)
val peek_time : 'a t -> float option

(** [next_time t] is the timestamp of the earliest live event, or
    [infinity] when none — {!peek_time} without the option allocation.
    Note: an event scheduled *at* time [infinity] is indistinguishable
    from emptiness here; use {!is_empty} to decide emptiness. *)
val next_time : 'a t -> float

(** [peek_key t] is the [(time, sequence)] ordering key of the earliest
    live event, if any.  Comparing keys across queues that share a [tick]
    counter yields the exact order a single merged queue would have
    produced — the conservative merge primitive of the engine's event
    lanes.  Dead events at the front are discarded as a side effect. *)
val peek_key : 'a t -> (float * int) option

(** [peek_seq t] is the sequence number of the earliest live event, or
    [max_int] when none.  With {!next_time}, an allocation-free
    {!peek_key}. *)
val peek_seq : 'a t -> int

(** [is_empty t] is [true] iff no live event remains.  Dead events at the
    front are discarded as a side effect. *)
val is_empty : 'a t -> bool

(** [live_length t] counts live events (O(1): the queue tracks its
    cancelled-but-present population). *)
val live_length : 'a t -> int

(** [length t] is the physical heap size — live plus not-yet-collected
    cancelled events (O(1)).  An upper bound on {!live_length}; as long
    as scheduling continues, insertion-time compaction keeps it within
    ~2× the live population plus a constant.  Cheap enough for per-event
    queue-depth profiling. *)
val length : 'a t -> int
