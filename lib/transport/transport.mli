(** The transport seam between protocol logic and the outside world.

    The hybrid protocol (t-network ring, s-network trees, data
    operations, replication) needs exactly four capabilities: send a
    message to a peer, dispatch received messages, arm/cancel timers, and
    read a monotonic clock.  {!S} names them; two backends implement
    them:

    - {!Sim_transport} — a thin adapter over the deterministic event
      engine.  Payloads are closures, time is simulated, every existing
      test/bench/scenario runs unchanged (bit-identical traces).
    - {!Live_transport} — non-blocking TCP sockets with a select loop,
      per-connection connect/retry/backoff state machines and a
      wall-clock timer wheel.  Payloads are {!Wire.msg} values.

    The first-class record {!t} is the closure-payload instance the
    in-process protocol core holds (see [World.t]). *)

(** A cancellable timer.  Cancelling after the timer fired is a silent
    no-op counted under the shared [timer/cancel_late] counter
    ({!P2p_sim.Timer.cancel_late}); it never leaves a ghost entry in the
    underlying queue. *)
type timer = {
  cancel : unit -> unit;
  reset : unit -> unit;
  active : unit -> bool;
}

val cancel : timer -> unit
val reset : timer -> unit
val active : timer -> bool

(** The transport signature both backends satisfy. *)
module type S = sig
  type t
  type payload
  type addr

  val now : t -> float

  val send : t -> ?op:int -> ?shard:int -> src:addr -> dst:addr -> payload -> unit

  val set_handler : t -> (src:addr -> dst:addr -> payload -> unit) -> unit

  val one_shot : t -> ?label:string -> delay:float -> (unit -> unit) -> timer

  val periodic : t -> ?label:string -> period:float -> (unit -> unit) -> timer
end

(** First-class closure-payload transport: what the protocol core stores
    and calls.  [send] delivers the closure to the destination host after
    the backend's propagation delay; [one_shot]/[periodic] arm timers on
    the backend clock. *)
type t = {
  now : unit -> float;
  send :
    ?op:int -> ?shard:int -> src:int -> dst:int -> (unit -> unit) -> unit;
  one_shot : ?label:string -> delay:float -> (unit -> unit) -> timer;
  periodic : ?label:string -> period:float -> (unit -> unit) -> timer;
  batch : (unit -> unit) -> unit;
      (** [batch f] runs [f] with the backend's fan-out batching, if any:
          the sim backend defers event-heap restructuring for every send
          inside [f] to one pass ([Engine.schedule_batch]); backends
          without an equivalent just run [f].  Semantics (ordering,
          delivery) are identical with and without. *)
}

val now : t -> float

val send : t -> ?op:int -> ?shard:int -> src:int -> dst:int -> (unit -> unit) -> unit

(** [batch t f] — see the {!type-t} field. *)
val batch : t -> (unit -> unit) -> unit

val one_shot : t -> ?label:string -> delay:float -> (unit -> unit) -> timer

val periodic : t -> ?label:string -> period:float -> (unit -> unit) -> timer
