(* Test runner: one Alcotest section per library module. *)

let () =
  Alcotest.run "hybrid_p2p"
    [
      ("sim.rng", Test_rng.suite);
      ("sim.engine", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("hashspace", Test_hashspace.suite);
      ("topology", Test_topology.suite);
      ("p2pnet", Test_p2pnet.suite);
      ("chord", Test_chord.suite);
      ("gnutella", Test_gnutella.suite);
      ("workload", Test_workload.suite);
      ("hybrid.peer", Test_peer.suite);
      ("hybrid.world", Test_world.suite);
      ("hybrid.networks", Test_networks.suite);
      ("hybrid.data+failure", Test_data_failure.suite);
      ("replication", Test_replication.suite);
      ("hybrid.system", Test_hybrid.suite);
      ("hybrid.extensions", Test_extensions.suite);
      ("hybrid.accel", Test_accel.suite);
      ("observability", Test_obs.suite);
      ("observability.spans", Test_spans.suite);
      ("audit", Test_audit.suite);
      ("tools", Test_tools.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("analysis", Test_analysis.suite);
      ("scale", Test_scale.suite);
      ("transport", Test_transport.suite);
      ("properties", Test_properties.suite);
      ("properties.extensions", Test_properties2.suite);
    ]
