lib/core/cache.ml: Hashtbl
