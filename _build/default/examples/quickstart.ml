(* Quickstart: build a hybrid P2P system, share some files, look them up.

   Run with: dune exec examples/quickstart.exe *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Data_ops = Hybrid_p2p.Data_ops
module Metrics = P2p_net.Metrics

let () =
  (* A 100-peer system on a synthetic star underlay; 70% of peers join the
     unstructured tier (the paper's sweet spot for join latency). *)
  let h = H.create_star ~seed:2024 ~peers:128 () in
  ignore (H.grow h ~count:100 ~s_fraction:0.7 : Peer.t array);
  Printf.printf "System up: %d peers (%d t-peers on the ring, %d s-peers in trees)\n"
    (H.peer_count h) (H.t_peer_count h) (H.s_peer_count h);

  (* Share a few files from random peers. *)
  let files =
    [ ("ocaml-manual.pdf", "…"); ("holiday.jpg", "…"); ("talk.mp4", "…");
      ("thesis.tex", "…"); ("soundtrack.flac", "…") ]
  in
  List.iter
    (fun (key, value) ->
      H.insert h ~from:(H.random_peer h) ~key ~value
        ~on_done:(fun ~holder ~hops ->
          Printf.printf "  stored %-16s at peer #%-3d (%d hops)\n" key holder.Peer.host hops)
        ())
    files;
  H.run h;

  (* Look every file up from other random peers. *)
  print_endline "Lookups:";
  List.iter
    (fun (key, _) ->
      H.lookup h ~from:(H.random_peer h) ~key
        ~on_result:(function
          | Data_ops.Found { holder; latency; hops } ->
            Printf.printf "  found  %-16s at peer #%-3d in %.1f ms (%d hops)\n" key
              holder.Peer.host latency hops
          | Data_ops.Timed_out -> Printf.printf "  MISSED %s\n" key)
        ())
    files;
  H.lookup h ~from:(H.random_peer h) ~key:"does-not-exist.iso"
    ~on_result:(function
      | Data_ops.Found _ -> print_endline "  impossible!"
      | Data_ops.Timed_out -> print_endline "  does-not-exist.iso timed out, as expected")
    ();
  H.run h;

  let m = H.metrics h in
  Printf.printf
    "\nTotals: %d overlay messages, %d lookups (%d ok / %d failed), connum %d\n"
    (Metrics.messages m) (Metrics.lookups_issued m) (Metrics.lookups_succeeded m)
    (Metrics.lookups_failed m) (Metrics.connum m);
  match H.check_invariants h with
  | Ok () -> print_endline "Invariants hold."
  | Error e -> Printf.printf "INVARIANT VIOLATION: %s\n" e
