examples/tracker_mode.ml: Hybrid_p2p P2p_net P2p_stats Printf
