bench/fig6.ml: Config Experiments H List Metrics P2p_stats
