lib/workload/keys.mli: P2p_hashspace P2p_sim
