lib/core/cache.mli:
