lib/core/t_network.mli: Id_space P2p_hashspace Peer World
