lib/chord/ring.ml: Array Hashtbl Id_space Key_hash List P2p_hashspace Printf
