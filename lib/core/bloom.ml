type t = {
  bits : Bytes.t;
  nbits : int;
  hashes : int;
  mutable count : int;
}

(* k ≈ (m/n) ln 2; with m/n = bits_per_key that is 0.69·bits_per_key. *)
let hash_count ~bits_per_key = max 1 ((bits_per_key * 7) / 10)

let create ~expected ~bits_per_key =
  if bits_per_key <= 0 then invalid_arg "Bloom.create: bits_per_key";
  let nbits = max 64 (max 1 expected * bits_per_key) in
  {
    bits = Bytes.make ((nbits + 7) / 8) '\000';
    nbits;
    hashes = hash_count ~bits_per_key;
    count = 0;
  }

(* Double hashing (Kirsch–Mitzenmacher): two independent hashes generate
   the whole index family.  [h2] is forced odd so it is invertible mod any
   power of two and never degenerates to a single probe. *)
let index t h1 h2 i = (h1 + (i * h2)) mod t.nbits

let hash_pair key =
  let h1 = Hashtbl.seeded_hash 0x2545f491 key in
  let h2 = (Hashtbl.seeded_hash 0x27d4eb2f key * 2) + 1 in
  (h1, h2)

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t key =
  let h1, h2 = hash_pair key in
  for i = 0 to t.hashes - 1 do
    set_bit t (index t h1 h2 i)
  done;
  t.count <- t.count + 1

let mem t key =
  let h1, h2 = hash_pair key in
  let rec probe i = i >= t.hashes || (get_bit t (index t h1 h2 i) && probe (i + 1)) in
  probe 0

let count t = t.count

let nbits t = t.nbits

let fill_ratio t =
  let set = ref 0 in
  for i = 0 to t.nbits - 1 do
    if get_bit t i then incr set
  done;
  float_of_int !set /. float_of_int t.nbits
