lib/topology/link_stress.mli: Graph
