test/test_tools.ml: Alcotest Hybrid_p2p List P2p_scenario P2p_sim P2p_stats P2p_topology Result String
