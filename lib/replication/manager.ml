module World = Hybrid_p2p.World
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_store = Hybrid_p2p.Data_store
module Summaries = Hybrid_p2p.Summaries
module Transport = P2p_transport.Transport
module Trace = P2p_sim.Trace
module Registry = P2p_obs.Registry
module Metrics = P2p_net.Metrics

let subsystem = "replication"

type t = {
  w : World.t;
  factor : int;
  copies_written : Registry.counter;
  promoted : Registry.counter;
  re_replicated : Registry.counter;
  bytes_re_replicated : Registry.counter;
  heal_passes : Registry.counter;
  anti_entropy_rounds : Registry.counter;
  digest_mismatches : Registry.counter;
  stale_pruned : Registry.counter;
  live_factor : Registry.gauge;
  mutable heal_timer : Transport.timer option;  (* debounced post-crash heal *)
  mutable ae_timer : Transport.timer option;  (* periodic anti-entropy *)
}

let factor t = t.factor

(* --- write-path fan-out ------------------------------------------------ *)

(* One copy per policy target, shipped as ordinary overlay messages
   attributed to the insert's op.  [replication_pending] brackets the
   flight so audit ticks that land mid-fan-out stay quiet. *)
let fan_out t ~op ~holder ~route_id ~key ~value =
  let w = t.w in
  let targets = Policy.targets w ~primary:holder in
  let ship () =
    List.iter
      (fun target ->
        w.World.replication_pending <- w.World.replication_pending + 1;
        World.send_span w ?op ~tier:"replication" ~phase:"replicate_copy"
          ~src:holder ~dst:target (fun () ->
            w.World.replication_pending <- w.World.replication_pending - 1;
            if target.Peer.alive && not (Data_store.mem target.Peer.store ~key) then begin
              Data_store.insert_routed target.Peer.replicas ~route_id ~key ~value;
              (* replica copies count as flood-servable keys: the edge
                 summaries must learn them or a pruned flood could miss the
                 copy once the primary dies *)
              Summaries.note_stored w ~holder:target ~key;
              Registry.incr t.copies_written
            end))
      targets
  in
  (* r copies leave in one burst: batch their event insertions *)
  match targets with [] | [ _ ] -> ship () | _ -> World.batch w ship

(* --- heal: promote lost primaries, restore the factor ------------------ *)

(* Global key census: where every key's primary and replica copies live.
   Collected before any mutation so the heal sees one consistent cut. *)
type census_entry = {
  value : string;
  route_id : P2p_hashspace.Id_space.id;
  mutable primaries : Peer.t list;
  mutable replica_holders : Peer.t list;
}

let census w =
  let tbl : (string, census_entry) Hashtbl.t = Hashtbl.create 1024 in
  let learn ~primary p ~key ~value ~route_id =
    let e =
      match Hashtbl.find_opt tbl key with
      | Some e -> e
      | None ->
        let e = { value; route_id; primaries = []; replica_holders = [] } in
        Hashtbl.add tbl key e;
        e
    in
    if primary then e.primaries <- p :: e.primaries
    else e.replica_holders <- p :: e.replica_holders
  in
  World.iter_peers w (fun p ->
      Data_store.iter p.Peer.store (fun ~key ~value ~route_id ->
          learn ~primary:true p ~key ~value ~route_id);
      Data_store.iter p.Peer.replicas (fun ~key ~value ~route_id ->
          learn ~primary:false p ~key ~value ~route_id));
  tbl

let update_live_factor t tbl =
  let items = ref 0 and copies = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      if e.primaries <> [] then begin
        incr items;
        copies := !copies + List.length e.replica_holders
      end)
    tbl;
  Registry.set t.live_factor
    (if !items = 0 then 0.0 else float_of_int !copies /. float_of_int !items)

(* Synchronous durability pass over the whole system:

   1. every key whose primary copies all died is promoted from a
      surviving replica back into the current segment owner's store;
   2. every key regains a replica on each current policy target that
      lacks a copy (membership drift moves the target set — copies are
      re-established where reads will look for them, stale copies
      elsewhere are left to anti-entropy);
   3. replica copies co-located with a primary are dropped.

   Runs inside [Failure.repair] (offline path) and from the debounced
   post-crash timer (online path); mutates stores directly — by the time
   it runs, repair has already made structure consistent, and modelling
   the transfer traffic would only re-order identical end states. *)
let heal ?op t =
  let w = t.w in
  Registry.incr t.heal_passes;
  let own_op = op = None in
  let op =
    match op with
    | Some op -> op
    | None -> Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Replicate "heal"
  in
  let tbl = census w in
  let promoted = ref 0 and restored = ref 0 in
  Hashtbl.iter
    (fun key e ->
      (* 1. promotion *)
      (if e.primaries = [] then
         match World.oracle_owner w e.route_id with
         | None -> ()
         | Some owner ->
           Data_store.insert_routed owner.Peer.store ~route_id:e.route_id ~key
             ~value:e.value;
           if w.World.config.Config.s_style = Config.Bittorrent_tracker then
             Hashtbl.replace owner.Peer.tracker_index key owner;
           e.primaries <- [ owner ];
           incr promoted;
           Registry.incr t.promoted);
      match e.primaries with
      | [] -> ()
      | primary :: _ ->
        (* 3. drop replica copies shadowed by a primary at the same peer *)
        let shadowed, holders =
          List.partition (fun p -> List.memq p e.primaries) e.replica_holders
        in
        List.iter (fun p -> Data_store.remove p.Peer.replicas ~key) shadowed;
        e.replica_holders <- holders;
        (* 2. restore the factor on the current targets *)
        List.iter
          (fun target ->
            if
              (not (List.memq target e.replica_holders))
              && not (Data_store.mem target.Peer.store ~key)
            then begin
              Data_store.insert_routed target.Peer.replicas ~route_id:e.route_id ~key
                ~value:e.value;
              e.replica_holders <- target :: e.replica_holders;
              incr restored;
              Registry.incr t.re_replicated;
              Registry.incr t.bytes_re_replicated
                ~by:(String.length key + String.length e.value)
            end)
          (Policy.targets w ~primary))
    tbl;
  World.mark_span w ~op ~tier:"replication" ~phase:"heal_step"
    (Printf.sprintf "promoted %d, re-replicated %d" !promoted !restored);
  update_live_factor t tbl;
  (* the heal rewrote stores and replica shadows across arbitrary trees;
     cheaper to declare every edge summary stale than to track each move *)
  Summaries.invalidate_all w;
  if own_op then
    Trace.end_op (World.trace w) ~time:(World.now w) ~op
      (Printf.sprintf "promoted %d, re-replicated %d" !promoted !restored)

(* Online failure path: detections arrive once per watching neighbour and
   possibly for several victims of one storm; a single debounced timer
   turns them into one heal after the election/rejoin dust settles. *)
let on_failure t _dead =
  let w = t.w in
  match t.heal_timer with
  | Some timer -> Transport.reset timer
  | None ->
    w.World.replication_pending <- w.World.replication_pending + 1;
    t.heal_timer <-
      Some
        (World.one_shot w ~delay:w.World.config.Config.hello_timeout
           (fun () ->
             t.heal_timer <- None;
             w.World.replication_pending <- w.World.replication_pending - 1;
             heal t))

(* --- anti-entropy ------------------------------------------------------ *)

(* One round: every segment owner digests its s-network's primary items
   and sends the digest to each replica target; a target whose own
   replica digest disagrees pulls the item list and converges on it —
   missing copies are shipped, stale copies inside the segment pruned.
   Message-for-message this is the classic push-pull digest exchange,
   attributed to one [Anti_entropy] trace op per round.

   [Tree_neighbors] placement has no per-segment replica locality to
   digest (each item's copies follow its own holder), so a round falls
   back to the synchronous heal pass, which converges the same state. *)
let anti_entropy_round t =
  let w = t.w in
  Registry.incr t.anti_entropy_rounds;
  if w.World.config.Config.replica_placement = Config.Tree_neighbors then heal t
  else begin
    let op =
      Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Anti_entropy ""
    in
    let homes = Array.copy (World.t_peers w) in
    let segments = ref 0 and mismatches = ref 0 in
    Array.iter
      (fun home ->
        let left = Peer.segment_left home in
        let right = home.Peer.p_id in
        let items =
          List.concat_map
            (fun member -> Data_store.segment_items member.Peer.store ~left ~right)
            (Peer.tree_members home)
        in
        let digest = Data_store.digest_items items in
        (* one digest per successor leaves in a burst: batch the inserts *)
        World.batch w @@ fun () ->
        List.iter
          (fun target ->
            incr segments;
            w.World.replication_pending <- w.World.replication_pending + 1;
            World.send_span w ~op ~tier:"replication" ~phase:"digest_push"
              ~src:home ~dst:target (fun () ->
                w.World.replication_pending <- w.World.replication_pending - 1;
                if
                  target.Peer.alive
                  && Data_store.segment_digest target.Peer.replicas ~left ~right
                     <> digest
                then begin
                  incr mismatches;
                  Registry.incr t.digest_mismatches;
                  (* pull: the target asks for the list and converges *)
                  w.World.replication_pending <- w.World.replication_pending + 1;
                  World.send_span w ~op ~tier:"replication" ~phase:"digest_pull"
                    ~src:target ~dst:home (fun () ->
                      w.World.replication_pending <- w.World.replication_pending - 1;
                      if target.Peer.alive then begin
                        let wanted = Hashtbl.create (List.length items) in
                        List.iter
                          (fun (key, value, route_id) ->
                            Hashtbl.replace wanted key ();
                            match Data_store.find target.Peer.replicas ~key with
                            | Some v when v = value -> ()
                            | Some _ | None ->
                              if not (Data_store.mem target.Peer.store ~key) then begin
                                Data_store.insert_routed target.Peer.replicas ~route_id
                                  ~key ~value;
                                Summaries.note_stored w ~holder:target ~key;
                                Registry.incr t.copies_written;
                                Registry.incr t.bytes_re_replicated
                                  ~by:(String.length key + String.length value)
                              end)
                          items;
                        List.iter
                          (fun (key, _, _) ->
                            if not (Hashtbl.mem wanted key) then begin
                              Data_store.remove target.Peer.replicas ~key;
                              Registry.incr t.stale_pruned
                            end)
                          (Data_store.segment_items target.Peer.replicas ~left ~right)
                      end)
                end))
          (Policy.ring_successors w ~home ~factor:t.factor))
      homes;
    Trace.end_op (World.trace w) ~time:(World.now w) ~op
      (Printf.sprintf "%d segment digests, %d mismatches" !segments !mismatches)
  end

let start t =
  if t.factor > 0 && t.ae_timer = None then
    t.ae_timer <-
      Some
        (World.periodic t.w
           ~period:t.w.World.config.Config.anti_entropy_interval (fun () ->
             anti_entropy_round t))

let stop t =
  match t.ae_timer with
  | Some timer ->
    Transport.cancel timer;
    t.ae_timer <- None
  | None -> ()

(* --- wiring ------------------------------------------------------------ *)

let install w =
  let reg = Metrics.registry w.World.metrics in
  let counter name = Registry.counter reg ~subsystem ~name in
  (* pre-register the read-path counter [Data_ops] bumps by name, so the
     report shows the zero row even before the first fallback hit *)
  ignore (counter "replica_hits" : Registry.counter);
  let t =
    {
      w;
      factor = w.World.config.Config.replication_factor;
      copies_written = counter "copies_written";
      promoted = counter "promoted";
      re_replicated = counter "re_replicated";
      bytes_re_replicated = counter "bytes_re_replicated";
      heal_passes = counter "heal_passes";
      anti_entropy_rounds = counter "anti_entropy_rounds";
      digest_mismatches = counter "digest_mismatches";
      stale_pruned = counter "stale_pruned";
      live_factor = Registry.gauge reg ~subsystem ~name:"live_replica_factor";
      heal_timer = None;
      ae_timer = None;
    }
  in
  Registry.set
    (Registry.gauge reg ~subsystem ~name:"replication_factor")
    (float_of_int t.factor);
  if t.factor > 0 then begin
    w.World.on_stored <- Some (fan_out t);
    w.World.on_peer_failure <- Some (on_failure t);
    w.World.on_repaired <- Some (fun ~op -> heal ?op t)
  end;
  t
