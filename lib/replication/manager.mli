(** The replication manager: the durability subsystem's moving parts.

    One manager serves one world.  {!install} registers the
    [replication/*] metrics and (when [config.replication_factor > 0])
    hooks the manager into the core through {!World.t}'s outward hooks —
    the core never depends on this library:

    - [on_stored] → {e write-path fan-out}: every insert's primary copy
      is copied to the {!Policy.targets} as ordinary overlay messages;
    - [on_peer_failure] → {e failure-driven re-replication} (online
      heartbeat path): detections debounce into one {!heal} a
      [hello_timeout] later;
    - [on_repaired] → {e post-repair heal} (offline path): runs inside
      [Failure.repair] as its final pass.

    The read path needs no hook: [Data_ops] consults each visited peer's
    replica store as a fallback and, in ring mode, probes the owner's
    successors in parallel with the tree resolution.

    {e Anti-entropy}: {!start} arms a periodic timer; each round the
    owner of every ring segment digests its s-network's primary items
    ({!Data_store.segment_digest}) and exchanges the digest with its
    successor replicas, shipping missing copies and pruning stale ones
    on mismatch.  The timer keeps the event queue non-empty, so batch
    drivers must bracket it: [start], run the engine for a while, [stop]
    (the pattern [p2psim]'s [--anti-entropy] and the scenario runner's
    [anti-entropy:MS] action follow). *)

type t

(** [install w] registers metrics and wires the hooks (no-ops when the
    configured factor is 0).  Install once, before the workload. *)
val install : Hybrid_p2p.World.t -> t

(** Configured replication factor (copies beyond the primary). *)
val factor : t -> int

(** [heal t] runs one synchronous durability pass: promotes every item
    whose primary copies all died from a surviving replica into the
    current segment owner's store, re-establishes a replica on each
    current policy target that lacks one, and drops replica copies
    shadowed by a co-located primary.  Idempotent at quiescence.  [op]
    attributes the pass to an existing trace operation (the repair's);
    otherwise it is spanned by its own [Replicate] op. *)
val heal : ?op:int -> t -> unit

(** [anti_entropy_round t] runs one digest-exchange round immediately
    (also what the periodic timer fires).  [Tree_neighbors] placement
    has no per-segment locality to digest, so the round degenerates to
    {!heal}. *)
val anti_entropy_round : t -> unit

(** [start t] arms the periodic anti-entropy timer
    ([config.anti_entropy_interval] ms); no-op if running or factor 0. *)
val start : t -> unit

(** [stop t] cancels the timer so batch drains can terminate. *)
val stop : t -> unit
