module Ascii_plot = P2p_stats.Ascii_plot

type hist = {
  count : int;
  mean : float;
  stddev : float;
  min_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  bins : (float * int) list;
}

type metric = Counter of int | Gauge of float | Histogram of hist

type t = (string * (string * metric) list) list

let float_field json name =
  Option.value ~default:0.0 (Option.bind (Json.member name json) Json.to_float)

let hist_of_json json =
  let bins =
    match Option.bind (Json.member "bins" json) Json.to_list with
    | None -> []
    | Some items ->
      List.filter_map
        (fun item ->
          match
            ( Option.bind (Json.member "lo" item) Json.to_float,
              Option.bind (Json.member "count" item) Json.to_int )
          with
          | Some lo, Some count -> Some (lo, count)
          | _ -> None)
        items
  in
  {
    count = Option.value ~default:0 (Option.bind (Json.member "count" json) Json.to_int);
    mean = float_field json "mean";
    stddev = float_field json "stddev";
    min_v = float_field json "min";
    p50 = float_field json "p50";
    p90 = float_field json "p90";
    p99 = float_field json "p99";
    max_v = float_field json "max";
    bins;
  }

let metric_of_json json =
  match Option.bind (Json.member "kind" json) Json.to_str with
  | Some "counter" -> (
    match Option.bind (Json.member "value" json) Json.to_int with
    | Some v -> Ok (Counter v)
    | None -> Error "counter without integer \"value\"")
  | Some "gauge" -> (
    match Option.bind (Json.member "value" json) Json.to_float with
    | Some v -> Ok (Gauge v)
    | None -> Error "gauge without numeric \"value\"")
  | Some "histogram" -> Ok (Histogram (hist_of_json json))
  | Some kind -> Error (Printf.sprintf "unknown metric kind %S" kind)
  | None -> Error "metric without \"kind\""

let of_json json =
  match json with
  | Json.Obj subsystems ->
    let rec subsystem_list acc = function
      | [] -> Ok (List.rev acc)
      | (subsystem, Json.Obj fields) :: rest ->
        let rec metric_list macc = function
          | [] -> Ok (List.rev macc)
          | (name, mjson) :: mrest -> (
            match metric_of_json mjson with
            | Ok m -> metric_list ((name, m) :: macc) mrest
            | Error e -> Error (Printf.sprintf "%s/%s: %s" subsystem name e))
        in
        (match metric_list [] fields with
         | Ok metrics -> subsystem_list ((subsystem, metrics) :: acc) rest
         | Error _ as e -> e)
      | (subsystem, _) :: _ ->
        Error (Printf.sprintf "subsystem %S is not an object" subsystem)
    in
    subsystem_list [] subsystems
  | _ -> Error "metrics document must be a JSON object"

let of_string text =
  match Json.parse text with
  | Error msg -> Error ("JSON parse error: " ^ msg)
  | Ok json -> of_json json

let of_registry registry =
  match of_json (Registry.to_json registry) with
  | Ok report -> report
  | Error msg ->
    (* to_json always produces the schema of_json reads *)
    invalid_arg ("Report.of_registry: " ^ msg)

let render_histogram buf name h =
  Buffer.add_string buf
    (Printf.sprintf "  %-28s n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n"
       name h.count h.mean h.stddev h.min_v h.p50 h.p90 h.p99 h.max_v);
  if h.bins <> [] && h.count > 1 then begin
    let bars =
      List.map (fun (lo, count) -> (Printf.sprintf "%10.2f" lo, float_of_int count)) h.bins
    in
    let chart = Ascii_plot.histogram ~bars () in
    String.split_on_char '\n' chart
    |> List.iter (fun line ->
           if line <> "" then Buffer.add_string buf ("    " ^ line ^ "\n"))
  end

let strip_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  if l > ls && String.sub s (l - ls) ls = suffix then Some (String.sub s 0 (l - ls))
  else None

(* The ["audit"] subsystem renders as a per-check health table instead of
   a raw metric dump: the auditor writes a [<check>_violations] counter
   and a [<check>_last_run_ms] freshness gauge per invariant check, which
   pair up into OK / VIOLATED rows.  Metrics that follow neither naming
   convention (the health gauges — load balance, peers in transit, ...)
   print as usual below the table, so nothing in the file is hidden. *)
let render_health buf metrics =
  Buffer.add_string buf "== health (audit) ==\n";
  (match List.assoc_opt "ticks" metrics with
   | Some (Counter n) -> Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" "audit ticks" n)
   | _ -> ());
  List.iter
    (fun (name, metric) ->
      match (metric, strip_suffix ~suffix:"_violations" name) with
      | Counter v, Some check ->
        let verdict = if v = 0 then "OK" else Printf.sprintf "VIOLATED (%d)" v in
        let freshness =
          match List.assoc_opt (check ^ "_last_run_ms") metrics with
          | Some (Gauge t) -> Printf.sprintf "  last run %g ms" t
          | _ -> ""
        in
        Buffer.add_string buf (Printf.sprintf "  %-20s %-14s%s\n" check verdict freshness)
      | _ -> ())
    metrics;
  List.iter
    (fun (name, metric) ->
      match metric with
      | Gauge v
        when name <> "ticks"
             && strip_suffix ~suffix:"_last_run_ms" name = None
             && strip_suffix ~suffix:"_violations" name = None ->
        Buffer.add_string buf (Printf.sprintf "  %-28s %g\n" name v)
      | _ -> ())
    metrics;
  Buffer.add_char buf '\n'

let render report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (subsystem, metrics) ->
      if subsystem = "audit" then render_health buf metrics
      else begin
        Buffer.add_string buf (Printf.sprintf "== %s ==\n" subsystem);
        (* counters and gauges first, aligned; histograms after with charts *)
        List.iter
          (fun (name, metric) ->
            match metric with
            | Counter v -> Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" name v)
            | Gauge v -> Buffer.add_string buf (Printf.sprintf "  %-28s %g\n" name v)
            | Histogram _ -> ())
          metrics;
        List.iter
          (fun (name, metric) ->
            match metric with
            | Histogram h -> render_histogram buf name h
            | Counter _ | Gauge _ -> ())
          metrics;
        Buffer.add_char buf '\n'
      end)
    report;
  Buffer.contents buf
