(** Shared simulation context for one hybrid system instance.

    Bundles the engine, the underlay, the metrics sink, the configuration
    and the membership directory, and implements the two centralized
    entities the paper assumes:

    - the {e well-known server} peers contact to join: it generates p_ids,
      decides roles, and assigns joining s-peers to s-networks
      (smallest-first, by interest, or by landmark cluster — Sections 3.2,
      5.2, 5.3);
    - the {e oracle} view of the t-ring used for finger-table refresh,
      which models the outcome of background stabilization without
      simulating every stabilization message. *)

open P2p_hashspace

(** How the server assigns a joining s-peer to an s-network. *)
type snet_policy =
  | Smallest_s_network  (** balance sizes (paper Section 3.2.2) *)
  | By_interest  (** match the peer's interest category (Section 5.3) *)
  | By_cluster of P2p_topology.Landmark.t
      (** topology-aware: same landmark cluster -> same s-network, spread
          round-robin when clusters outnumber s-networks (Section 5.2) *)

type t = {
  engine : P2p_sim.Engine.t;
  underlay : P2p_net.Underlay.t;
  transport : P2p_transport.Transport.t;
      (** the seam every protocol message and timer goes through — a
          {!P2p_transport.Sim_transport} over [underlay] here; the live
          Unix backend implements the same signature for real
          deployments *)
  metrics : P2p_net.Metrics.t;
  config : Config.t;
  rng : P2p_sim.Rng.t;
  interner : Intern.t;
      (** world-wide string interner shared by every peer's stores, so all
          copies of a key or value share one heap block *)
  mutable slots : Peer.t option array;
      (** host-indexed membership directory (hosts are dense graph node
          ids); [None] = no peer registered on that host *)
  mutable live_count : int;  (** registered peers, i.e. occupied [slots] *)
  mutable snet : int array;
      (** host-indexed s-peer counts for t-peers; [-1] = no entry *)
  mutable t_sorted : Peer.t array;  (** live t-peers by p_id (lazy) *)
  mutable t_ids : int array;
      (** p_ids of [t_sorted], same order — the flat successor array the
          oracle binary-searches without touching peer records *)
  mutable t_dirty : bool;
  mutable fingers_dirty : bool;
  mutable summary_epoch : int;
      (** generation counter for the s-tree edge summaries ({!Summaries}):
          bumped whenever a structural change may have invalidated every
          tree's summaries at once (any t-ring membership change, a
          replication heal).  A tree whose root carries an older epoch
          rebuilds lazily before its next pruned flood. *)
  snet_policy : snet_policy;
  pending_election : (int, Peer.t option) Hashtbl.t;
      (** crashed t-peer host -> elected replacement ([None] when the
          s-network had no survivor to promote) *)
  mutable on_query : (receiver:Peer.t -> sender:Peer.t -> unit) option;
      (** installed by [Failure] when heartbeats are on: lets query traffic
          double as liveness evidence (the acknowledgment timers of
          Section 3.2.2) *)
  mutable on_stored :
    (op:int option ->
    holder:Peer.t ->
    route_id:Id_space.id ->
    key:string ->
    value:string ->
    unit)
      option;
      (** fired after an insert's primary copy lands at its holder.
          Installed by [P2p_replication.Manager] to fan the copy out to
          the replica targets; the core stays ignorant of the policy
          (dependency points outward). *)
  mutable on_peer_failure : (Peer.t -> unit) option;
      (** fired when online failure detection concludes a peer genuinely
          crashed (once per detecting neighbour).  Installed by the
          replication manager to schedule re-replication. *)
  mutable on_repaired : (op:int option -> unit) option;
      (** fired at the end of an offline {!Failure.repair} pass, with the
          repair's trace op.  Installed by the replication manager to
          promote surviving replicas of lost primaries and restore the
          replication factor. *)
  mutable replication_pending : int;
      (** replication copies currently in flight (fan-out or heal
          messages not yet delivered).  Audit checks treat a non-zero
          value as "mid-operation" and withhold under-replication
          errors. *)
}

val create :
  engine:P2p_sim.Engine.t ->
  underlay:P2p_net.Underlay.t ->
  metrics:P2p_net.Metrics.t ->
  config:Config.t ->
  ?snet_policy:snet_policy ->
  unit ->
  t

val now : t -> float

(** The underlay's trace — where operation ids are minted and every
    message event lands. *)
val trace : t -> P2p_sim.Trace.t

(** [send t ?op ~src ~dst f] delivers [f] through the transport seam,
    attributing the message to operation [op] in the trace. *)
val send : t -> ?op:int -> src:Peer.t -> dst:Peer.t -> (unit -> unit) -> unit

(** [batch t f] runs [f] (a multi-recipient fan-out issuing several
    {!send}/{!send_span} calls) under the transport's insertion batching:
    the sim backend defers event-heap sifting to one pass per touched
    lane.  Delivery order is bit-identical with and without batching;
    [Config.batch_sends = false] turns it into a plain call for A/B
    measurement. *)
val batch : t -> (unit -> unit) -> unit

(** [one_shot t ~delay f] arms a timer on the transport clock.  The
    protocol layers must use these (not {!P2p_sim.Timer} directly) so
    the same code runs over the simulation engine and the live
    wall-clock wheel.  Cancelling after firing is a counted no-op (the
    [timer/cancel_late] counter). *)
val one_shot :
  t -> ?label:string -> delay:float -> (unit -> unit) -> P2p_transport.Transport.timer

(** [periodic t ~period f] fires [f] every [period] until cancelled. *)
val periodic :
  t -> ?label:string -> period:float -> (unit -> unit) -> P2p_transport.Transport.timer

(** [send_span t ?op ~tier ~phase ~src ~dst f] — {!send}, plus a causal
    span of [op] (parented on the op's root span) covering the message's
    propagation delay and handler execution.  Falls back to a plain
    {!send} when [op] is absent or the trace is disabled. *)
val send_span :
  t ->
  ?op:int ->
  tier:string ->
  phase:string ->
  src:Peer.t ->
  dst:Peer.t ->
  (unit -> unit) ->
  unit

(** [mark_span t ?op ~tier ~phase label] records a zero-duration span of
    [op] at the current time: an instant of attributable work (a cache
    probe, a heal step).  No-op when [op] is absent. *)
val mark_span :
  t ->
  ?op:int ->
  tier:string ->
  phase:string ->
  ?src:Peer.t ->
  ?dst:Peer.t ->
  string ->
  unit

(** [bump t ~subsystem ~name] increments a counter in the metrics
    registry — the per-subsystem attribution channel. *)
val bump : t -> subsystem:string -> name:string -> unit

(** {1 Membership directory} *)

(** The world's shared string interner (see the [interner] field). *)
val interner : t -> Intern.t

(** [register t peer] enters [peer] into the membership directory.
    @raise Invalid_argument on a negative host. *)
val register : t -> Peer.t -> unit

val unregister : t -> Peer.t -> unit
val find_peer : t -> host:int -> Peer.t option

(** [shard_of_host t ~host] — the ring-segment shard of the live peer on
    [host] ([None] for unknown/crashed hosts).  An event's engine lane is
    [shard mod Engine.lanes]; exporters use this to attribute a peer's
    spans to the lane that executed them. *)
val shard_of_host : t -> host:int -> int option

val peer_count : t -> int

(** All registered peers in ascending host order. *)
val live_peers : t -> Peer.t list

(** [iter_peers t f] applies [f] to every registered peer in ascending
    host order, allocating nothing — walks of million-peer worlds
    (audits, replication sweeps) should prefer this to {!live_peers}. *)
val iter_peers : t -> (Peer.t -> unit) -> unit

(** Live t-peers sorted by p_id. *)
val t_peers : t -> Peer.t array

(** [successor_index t d_id] is the index into {!t_peers} of [d_id]'s
    successor — the first p_id [>= d_id], wrapping past the highest p_id
    to index [0].  [-1] on an empty ring.  Runs as a binary search over
    the flat [t_ids] array. *)
val successor_index : t -> Id_space.id -> int

(** Mark the t-ring membership changed (invalidates oracle and fingers). *)
val touch_ring : t -> unit

(** {1 Oracle / server services} *)

(** [oracle_owner t d_id] is the live t-peer owning [d_id], if any. *)
val oracle_owner : t -> Id_space.id -> Peer.t option

(** [fresh_p_id t] draws a random p_id (the server's default generation
    mode). *)
val fresh_p_id : t -> Id_space.id

(** [random_t_peer t] — the server's "arbitrary existing peer" handed to
    joiners; [None] on an empty system. *)
val random_t_peer : t -> Peer.t option

(** [choose_s_network t ~joiner] — the t-peer whose s-network the server
    assigns [joiner] to, following the world's policy.  [None] when there
    are no t-peers. *)
val choose_s_network : t -> joiner:Peer.t -> Peer.t option

(** [snet_size_changed t tpeer ~delta] maintains the server's size table. *)
val snet_size_changed : t -> Peer.t -> delta:int -> unit

(** [snet_size t tpeer] is the server's count of s-peers in [tpeer]'s
    s-network. *)
val snet_size : t -> Peer.t -> int

(** [set_snet_size t tpeer n] overwrites the count — used on role
    transfer. *)
val set_snet_size : t -> Peer.t -> int -> unit

(** Every (t-peer host, recorded s-peer count) row of the server's size
    table, in no particular order — the audit layer compares these against
    live tree walks. *)
val snet_size_entries : t -> (int * int) list

(** Whether the lazily refreshed finger tables currently reflect the ring
    membership.  [false] after a membership change until the next
    [ensure_fingers]; checks comparing fingers to the oracle should skip
    while stale. *)
val fingers_fresh : t -> bool

(** {1 Finger tables} *)

(** [ensure_fingers t] recomputes every live t-peer's fingers if stale. *)
val ensure_fingers : t -> unit

(** [refresh_fingers_of t peer] recomputes one node's fingers from the
    oracle. *)
val refresh_fingers_of : t -> Peer.t -> unit

(** [stabilize_ring t] rewires every live t-peer's successor/predecessor
    from the sorted membership oracle and refreshes fingers — the end
    state the background stabilization protocol reaches.  Used when
    routing detects that crashes left the pointers inconsistent. *)
val stabilize_ring : t -> unit

(** [substitute_in_fingers t ~old_peer ~replacement] performs the paper's
    cheap finger update when an s-peer takes over a leaving/crashed
    t-peer: every finger entry pointing at [old_peer] is rewritten to
    [replacement]; nothing is recomputed. *)
val substitute_in_fingers : t -> old_peer:Peer.t -> replacement:Peer.t -> unit
