lib/core/peer.mli: Cache Config Data_store Format Hashtbl Id_space P2p_hashspace P2p_sim
