lib/workload/keys.ml: Array P2p_hashspace P2p_sim Printf Zipf
