(** Zipf-distributed rank sampling.

    P2P file popularity is heavy-tailed; measurement studies the paper
    cites ([21], [22]) motivate Zipf-like request distributions.  The
    sampler precomputes the normalized CDF over [n] ranks and draws by
    binary search. *)

type t

(** [create ~n ~exponent] prepares a sampler over ranks [0 .. n-1] with
    P(rank k) proportional to [1 / (k+1)^exponent].
    @raise Invalid_argument if [n <= 0] or [exponent < 0.]. *)
val create : n:int -> exponent:float -> t

(** [sample t rng] draws a rank. *)
val sample : t -> P2p_sim.Rng.t -> int

(** [probability t k] is P(rank k).  @raise Invalid_argument if out of
    range. *)
val probability : t -> int -> float
