open P2p_hashspace
module Rng = P2p_sim.Rng
module Engine = P2p_sim.Engine

let successor_or_self peer = Option.value peer.Peer.succ ~default:peer

let closest_preceding_finger current target =
  let best = ref None in
  let fingers = current.Peer.fingers in
  for k = Array.length fingers - 1 downto 0 do
    if !best = None then
      match fingers.(k) with
      | Some f
        when f.Peer.alive && Peer.is_t_peer f && f != current
             && Id_space.between f.Peer.p_id ~left:current.Peer.p_id ~right:target ->
        best := Some f
      | Some _ | None -> ()
  done;
  !best

(* Walk the ring from [current] until [p_id] falls in (current, succ];
   each forward is a message.  [use_fingers] switches between the
   O(log N) finger walk and the plain successor walk. *)
let find_position w ?op ~current ~p_id ~hops ~use_fingers ~on_found () =
  if use_fingers then World.ensure_fingers w;
  let max_hops = (4 * Id_space.bits) + (2 * World.peer_count w) + 8 in
  let rec step current hops =
    let succ = successor_or_self current in
    if
      succ == current
      || Id_space.between_incl_right p_id ~left:current.Peer.p_id ~right:succ.Peer.p_id
    then on_found ~pre:current ~hops
    else if hops > max_hops then begin
      (* Crashes left the pointers inconsistent with the membership; let
         stabilization catch up, then answer from the repaired ring. *)
      World.stabilize_ring w;
      World.bump w ~subsystem:"t_network" ~name:"stabilizations";
      match World.oracle_owner w p_id with
      | Some owner ->
        let pre = Option.value owner.Peer.pred ~default:owner in
        on_found ~pre ~hops
      | None -> on_found ~pre:current ~hops
    end
    else begin
      let next =
        if use_fingers then
          match closest_preceding_finger current p_id with
          | Some f -> f
          | None -> succ
        else succ
      in
      World.send_span w ?op ~tier:"t_network" ~phase:"ring_hop" ~src:current
        ~dst:next (fun () -> step next (hops + 1))
    end
  in
  step current hops

(* Pull the joiner's new data segment (pre_id, joiner.p_id] out of every
   member of the successor's s-network (Table 1, suc.loadtransfer). *)
let load_transfer_on_join w ~joiner ~succ ~pre_id =
  if succ != joiner then
    List.iter
      (fun member ->
        let moved =
          Data_store.take_segment member.Peer.store ~left:pre_id ~right:joiner.Peer.p_id
        in
        List.iter
          (fun (key, value, route_id) ->
            Data_store.insert_routed joiner.Peer.store ~route_id ~key ~value;
            if w.World.config.Config.s_style = Config.Bittorrent_tracker then begin
              Hashtbl.remove succ.Peer.tracker_index key;
              Hashtbl.replace joiner.Peer.tracker_index key joiner
            end)
          moved)
      (Peer.tree_members succ)

let rec process_queue w pre =
  match pre.Peer.join_queue with
  | [] -> ()
  | { Peer.candidate; announce; hops_so_far; op } :: rest ->
    pre.Peer.join_queue <- rest;
    begin_insert w ?op ~pre ~joiner:candidate ~hops:hops_so_far ~announce
      ~on_fail:(fun () -> ()) ()

and begin_insert w ?op ~pre ~joiner ~hops ~announce ~on_fail () =
  let succ = successor_or_self pre in
  if not pre.Peer.alive then
    (* The located predecessor died meanwhile; restart from the oracle. *)
    (match World.random_t_peer w with
     | Some other ->
       find_position w ?op ~current:other ~p_id:joiner.Peer.p_id ~hops
         ~use_fingers:w.World.config.Config.use_fingers_for_join
         ~on_found:(fun ~pre ~hops ->
           begin_insert w ?op ~pre ~joiner ~hops ~announce ~on_fail ())
         ()
     | None -> on_fail ())
  else if pre.Peer.joining || pre.Peer.leaving then
    pre.Peer.join_queue <-
      pre.Peer.join_queue
      @ [ { Peer.candidate = joiner; announce; hops_so_far = hops; op } ]
  else if
    succ != pre
    && not
         (Id_space.between_incl_right joiner.Peer.p_id ~left:pre.Peer.p_id
            ~right:succ.Peer.p_id)
  then begin
    (* The segment shrank while this request was queued; re-route the
       candidate and keep draining this peer's queue. *)
    find_position w ?op ~current:pre ~p_id:joiner.Peer.p_id ~hops
      ~use_fingers:w.World.config.Config.use_fingers_for_join
      ~on_found:(fun ~pre ~hops ->
        begin_insert w ?op ~pre ~joiner ~hops ~announce ~on_fail ())
      ();
    process_queue w pre
  end
  else begin
    (* pre.check: resolve an ID conflict by the ring midpoint. *)
    let conflict =
      joiner.Peer.p_id = succ.Peer.p_id || joiner.Peer.p_id = pre.Peer.p_id
    in
    let id_ok =
      if not conflict then true
      else
        match Id_space.midpoint ~left:pre.Peer.p_id ~right:succ.Peer.p_id with
        | Some mid ->
          joiner.Peer.p_id <- mid;
          true
        | None -> false
    in
    if not id_ok then begin
      on_fail ();
      process_queue w pre
    end
    else begin
      pre.Peer.joining <- true;
      let pre_id = pre.Peer.p_id in
      (* Join triangle (Fig. 2, left): pre -> new -> suc -> pre. *)
      World.send_span w ?op ~tier:"t_network" ~phase:"join_leg" ~src:pre
        ~dst:joiner (fun () ->
          joiner.Peer.succ <- Some succ;
          joiner.Peer.pred <- Some pre;
          World.send_span w ?op ~tier:"t_network" ~phase:"join_leg" ~src:joiner
            ~dst:succ (fun () ->
              succ.Peer.pred <- Some joiner;
              World.send_span w ?op ~tier:"t_network" ~phase:"join_leg"
                ~src:succ ~dst:pre (fun () ->
                  pre.Peer.succ <- Some joiner;
                  joiner.Peer.t_home <- Some joiner;
                  World.register w joiner;
                  World.refresh_fingers_of w joiner;
                  load_transfer_on_join w ~joiner ~succ ~pre_id;
                  pre.Peer.joining <- false;
                  World.bump w ~subsystem:"t_network" ~name:"joins_completed";
                  announce ~hops:(hops + 3);
                  process_queue w pre)))
    end
  end

let join w ?op ~joiner ~introducer ?(on_fail = fun () -> ()) ~on_done () =
  if not (Peer.is_t_peer joiner) then invalid_arg "T_network.join: joiner must be a t-peer";
  (* The join request first travels to the introducer. *)
  World.send_span w ?op ~tier:"t_network" ~phase:"join_request" ~src:joiner
    ~dst:introducer (fun () ->
      find_position w ?op ~current:introducer ~p_id:joiner.Peer.p_id ~hops:1
        ~use_fingers:w.World.config.Config.use_fingers_for_join
        ~on_found:(fun ~pre ~hops ->
          begin_insert w ?op ~pre ~joiner ~hops ~announce:on_done ~on_fail ())
        ())

let bootstrap w peer =
  if not (Peer.is_t_peer peer) then invalid_arg "T_network.bootstrap: t-peer required";
  peer.Peer.succ <- Some peer;
  peer.Peer.pred <- Some peer;
  peer.Peer.t_home <- Some peer;
  World.register w peer;
  World.refresh_fingers_of w peer

let promote_replacement w ?op ~old_peer ~replacement ~transfer_data () =
  World.bump w ~subsystem:"t_network" ~name:"promotions";
  let previous_size = World.snet_size w old_peer in
  (* Detach the replacement from its tree position; its subtree follows. *)
  (match replacement.Peer.cp with
   | Some cp when cp.Peer.alive -> Peer.detach_child ~parent:cp ~child:replacement
   | Some _ | None -> replacement.Peer.cp <- None);
  replacement.Peer.role <- Peer.T_peer;
  replacement.Peer.p_id <- old_peer.Peer.p_id;
  replacement.Peer.t_home <- Some replacement;
  (* Membership first, so the sorted-ring oracle already sees the
     replacement when the old pointers are unusable (crash chains). *)
  old_peer.Peer.alive <- false;
  World.unregister w old_peer;
  World.register w replacement;
  (* Take over the ring pointers (the paper's "take over the neighbors and
     the pointers of the original t-peer"); when a ring neighbour is dead
     too, fall back to the stabilized ring order. *)
  let sorted_neighbor ~offset =
    let arr = World.t_peers w in
    let n = Array.length arr in
    let index = ref 0 in
    Array.iteri (fun i p -> if p == replacement then index := i) arr;
    arr.((!index + offset + n) mod n)
  in
  let ring_succ =
    match old_peer.Peer.succ with
    | Some s when s != old_peer && s.Peer.alive && Peer.is_t_peer s -> s
    | Some _ | None -> sorted_neighbor ~offset:1
  in
  let ring_pred =
    match old_peer.Peer.pred with
    | Some p when p != old_peer && p.Peer.alive && Peer.is_t_peer p -> p
    | Some _ | None -> sorted_neighbor ~offset:(-1)
  in
  replacement.Peer.succ <- Some ring_succ;
  replacement.Peer.pred <- Some ring_pred;
  if ring_succ != replacement then ring_succ.Peer.pred <- Some replacement;
  if ring_pred != replacement then ring_pred.Peer.succ <- Some replacement;
  (* Data and tracker state. *)
  if transfer_data then begin
    List.iter
      (fun (key, value, route_id) ->
        Data_store.insert_routed replacement.Peer.store ~route_id ~key ~value)
      (Data_store.take_all old_peer.Peer.store);
    Hashtbl.iter
      (fun key holder ->
        let holder = if holder == old_peer then replacement else holder in
        Hashtbl.replace replacement.Peer.tracker_index key holder)
      old_peer.Peer.tracker_index;
    Hashtbl.reset old_peer.Peer.tracker_index
  end;
  World.set_snet_size w replacement (Stdlib.max 0 (previous_size - 1));
  (* The replacement keeps its own children; re-home its subtree under the
     inherited p_id. *)
  S_network.set_subtree_home w ~root:replacement ~home:replacement;
  World.refresh_fingers_of w replacement;
  (* The cheap finger update: substitution, no recomputation. *)
  World.substitute_in_fingers w ~old_peer ~replacement;
  (* Orphaned children of the old t-peer rejoin under the replacement;
     live subtrees below dead children must not be abandoned. *)
  let orphans =
    List.filter (fun c -> c != replacement)
      (Peer.live_subtree_roots old_peer.Peer.children)
  in
  old_peer.Peer.children <- [];
  List.iter
    (fun child ->
      child.Peer.cp <- None;
      World.send_span w ?op ~tier:"s_network" ~phase:"rejoin" ~src:child
        ~dst:replacement (fun () ->
          S_network.rejoin_subtree w ?op ~child ~root:replacement
            ~on_done:(fun ~hops:_ -> ()) ()))
    orphans

(* Leave triangle (Fig. 2, right): leaving -> pre -> suc -> leaving. *)
let leave_triangle w ?op peer ~on_done =
  peer.Peer.leaving <- true;
  let succ = successor_or_self peer in
  if succ == peer then begin
    (* Last t-peer of the system. *)
    peer.Peer.alive <- false;
    World.unregister w peer;
    on_done ()
  end
  else begin
    let pred = Option.value peer.Peer.pred ~default:succ in
    (* n.loaddump(): all data moves to the successor. *)
    List.iter
      (fun (key, value, route_id) ->
        Data_store.insert_routed succ.Peer.store ~route_id ~key ~value;
        if w.World.config.Config.s_style = Config.Bittorrent_tracker then
          Hashtbl.replace succ.Peer.tracker_index key succ)
      (Data_store.take_all peer.Peer.store);
    World.send_span w ?op ~tier:"t_network" ~phase:"leave_leg" ~src:peer
      ~dst:pred (fun () ->
        pred.Peer.succ <- Some succ;
        World.send_span w ?op ~tier:"t_network" ~phase:"leave_leg" ~src:pred
          ~dst:succ (fun () ->
            (* suc checks the leaving peer is who its predecessor pointer
               points to before rewiring (Section 3.3). *)
            (match succ.Peer.pred with
             | Some p when p == peer -> succ.Peer.pred <- Some pred
             | Some _ | None -> ());
            World.send_span w ?op ~tier:"t_network" ~phase:"leave_leg"
              ~src:succ ~dst:peer (fun () ->
                peer.Peer.alive <- false;
                World.unregister w peer;
                World.substitute_in_fingers w ~old_peer:peer ~replacement:succ;
                on_done ())))
  end

let rec leave w ?op peer ~on_done =
  if not peer.Peer.alive then invalid_arg "T_network.leave: dead peer";
  if not (Peer.is_t_peer peer) then invalid_arg "T_network.leave: not a t-peer";
  if peer.Peer.joining || peer.Peer.join_queue <> [] || peer.Peer.leaving then
    (* Pending joins must complete first; retry shortly. *)
    ignore
      (World.one_shot w ~delay:1.0 (fun () ->
           if peer.Peer.alive then leave w ?op peer ~on_done)
        : P2p_transport.Transport.timer)
  else begin
    World.bump w ~subsystem:"t_network" ~name:"leaves";
    let members =
      List.filter (fun m -> m != peer && m.Peer.alive) (Peer.tree_members peer)
    in
    match members with
    | [] -> leave_triangle w ?op peer ~on_done
    | _ ->
      let replacement = Rng.pick_list w.World.rng members in
      promote_replacement w ?op ~old_peer:peer ~replacement ~transfer_data:true ();
      on_done ()
  end

let route_to_owner w ?op ~from ~d_id ~visit ~on_arrive () =
  if not (Peer.is_t_peer from) then invalid_arg "T_network.route_to_owner: from";
  let use_fingers = w.World.config.Config.use_fingers_for_data in
  if use_fingers then World.ensure_fingers w;
  let max_hops = (4 * Id_space.bits) + (2 * World.peer_count w) + 8 in
  let rec step current hops =
    visit current;
    if Peer.covers current d_id then on_arrive ~owner:current ~hops
    else if hops > max_hops then begin
      World.stabilize_ring w;
      World.bump w ~subsystem:"t_network" ~name:"stabilizations";
      match World.oracle_owner w d_id with
      | Some owner when owner != current -> on_arrive ~owner ~hops
      | Some _ | None -> on_arrive ~owner:current ~hops
    end
    else begin
      let succ = successor_or_self current in
      let next =
        if use_fingers then
          match closest_preceding_finger current d_id with
          | Some f -> f
          | None -> succ
        else succ
      in
      if next == current then on_arrive ~owner:current ~hops
      else
        World.send_span w ?op ~tier:"t_network" ~phase:"ring_hop" ~src:current
          ~dst:next (fun () -> step next (hops + 1))
    end
  in
  step from 0

let check_ring w =
  let arr = World.t_peers w in
  let n = Array.length arr in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec check i =
    if i >= n then Ok ()
    else begin
      let node = arr.(i) in
      let expected_succ = arr.((i + 1) mod n) in
      let expected_pred = arr.((i + n - 1) mod n) in
      let* () =
        match node.Peer.succ with
        | Some s when s == expected_succ || n = 1 -> Ok ()
        | Some s ->
          Error
            (Printf.sprintf "t-peer #%d: successor #%d, expected #%d" node.Peer.host
               s.Peer.host expected_succ.Peer.host)
        | None -> Error (Printf.sprintf "t-peer #%d: no successor" node.Peer.host)
      in
      let* () =
        match node.Peer.pred with
        | Some p when p == expected_pred || n = 1 -> Ok ()
        | Some p ->
          Error
            (Printf.sprintf "t-peer #%d: predecessor #%d, expected #%d" node.Peer.host
               p.Peer.host expected_pred.Peer.host)
        | None -> Error (Printf.sprintf "t-peer #%d: no predecessor" node.Peer.host)
      in
      let* () =
        if node.Peer.joining then
          Error (Printf.sprintf "t-peer #%d: joining mutex engaged" node.Peer.host)
        else if node.Peer.leaving then
          Error (Printf.sprintf "t-peer #%d: leaving mutex engaged" node.Peer.host)
        else if node.Peer.join_queue <> [] then
          Error (Printf.sprintf "t-peer #%d: non-empty join queue" node.Peer.host)
        else Ok ()
      in
      check (i + 1)
    end
  in
  check 0
