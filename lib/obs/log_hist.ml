(* Log-bucketed latency histogram.

   Bucket boundaries follow a geometric grid b_i = v0 * gamma^i with
   gamma = 2^(1/4): four buckets per doubling, ~9% relative error at
   the bucket edges, and a fixed grid shared by every histogram so two
   histograms merge by elementwise bucket addition (associative and
   commutative by construction).  Bucket i covers (b_{i-1}, b_i];
   values at or below v0 (including zero-duration spans) land in
   bucket 0.

   The index function is computed from logarithms and then fixed up
   against the same [boundary] function, so a sample lying exactly on
   boundary b_i always lands in bucket i and [percentile] hands back
   b_i exactly — float rounding in [log]/[**] cannot shift edge
   samples into a neighbouring bucket. *)

let v0 = 1e-3

let gamma = Float.pow 2.0 0.25

let boundary i = v0 *. Float.pow gamma (float_of_int i)

let index x =
  if not (Float.is_finite x) then invalid_arg "Log_hist.index: not finite"
  else if x <= v0 then 0
  else begin
    let i = ref (int_of_float (ceil (log (x /. v0) /. log gamma))) in
    if !i < 0 then i := 0;
    while !i > 0 && boundary (!i - 1) >= x do
      decr i
    done;
    while boundary !i < x do
      incr i
    done;
    !i
  end

type t = {
  buckets : (int, int ref) Hashtbl.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    buckets = Hashtbl.create 16;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let observe t x =
  let i = index x in
  (match Hashtbl.find_opt t.buckets i with
   | Some c -> incr c
   | None -> Hashtbl.add t.buckets i (ref 1));
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let min_value t =
  if t.count = 0 then invalid_arg "Log_hist.min_value: empty";
  t.min_v

let max_value t =
  if t.count = 0 then invalid_arg "Log_hist.max_value: empty";
  t.max_v

let buckets t =
  Hashtbl.fold (fun i c acc -> (i, !c) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let percentile t p =
  if t.count = 0 then invalid_arg "Log_hist.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Log_hist.percentile: out of range";
  (* nearest rank over the cumulative bucket counts; the answer is the
     upper boundary of the bucket holding that rank, clamped to the
     observed maximum so p100 is exact *)
  let rank =
    Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.count)))
  in
  let rec walk seen = function
    | [] -> t.max_v
    | (i, c) :: rest ->
      let seen = seen + c in
      if seen >= rank then Float.min (boundary i) t.max_v else walk seen rest
  in
  walk 0 (buckets t)

let merge a b =
  let t = create () in
  let blend src =
    Hashtbl.iter
      (fun i c ->
        match Hashtbl.find_opt t.buckets i with
        | Some acc -> acc := !acc + !c
        | None -> Hashtbl.add t.buckets i (ref !c))
      src.buckets;
    t.count <- t.count + src.count;
    t.sum <- t.sum +. src.sum;
    if src.count > 0 then begin
      if src.min_v < t.min_v then t.min_v <- src.min_v;
      if src.max_v > t.max_v then t.max_v <- src.max_v
    end
  in
  blend a;
  blend b;
  t

(* In-place variant of {!merge}: folds [src]'s buckets into [dst].
   Registry handles are fixed objects, so an aggregator building a
   merged registry adds each scraped histogram into the handle it
   already registered instead of swapping in a fresh value. *)
let merge_into ~into:dst src =
  Hashtbl.iter
    (fun i c ->
      match Hashtbl.find_opt dst.buckets i with
      | Some acc -> acc := !acc + !c
      | None -> Hashtbl.add dst.buckets i (ref !c))
    src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let clear t =
  Hashtbl.reset t.buckets;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let quantile_points = [ ("p50", 50.0); ("p90", 90.0); ("p95", 95.0); ("p99", 99.0); ("p999", 99.9) ]

let to_json t =
  let quantiles =
    if t.count = 0 then List.map (fun (k, _) -> (k, Json.Null)) quantile_points
    else List.map (fun (k, p) -> (k, Json.Float (percentile t p))) quantile_points
  in
  Json.Obj
    ([
       ("kind", Json.String "log_histogram");
       ("v0", Json.Float v0);
       ("gamma", Json.Float gamma);
       ("count", Json.Int t.count);
       ("sum", Json.Float t.sum);
       ("min", if t.count = 0 then Json.Null else Json.Float t.min_v);
       ("max", if t.count = 0 then Json.Null else Json.Float t.max_v);
     ]
    @ quantiles
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
               (buckets t)) );
      ])

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "log_histogram: missing or bad %S" name)
  in
  let* count = field "count" Json.to_int in
  let* s = field "sum" Json.to_float in
  let* bucket_list = field "buckets" Json.to_list in
  let* pairs =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        match Json.to_list b with
        | Some [ i; c ] -> (
          match (Json.to_int i, Json.to_int c) with
          | Some i, Some c -> Ok ((i, c) :: acc)
          | _ -> Error "log_histogram: bad bucket entry")
        | _ -> Error "log_histogram: bad bucket entry")
      (Ok []) bucket_list
  in
  let t = create () in
  List.iter (fun (i, c) -> Hashtbl.replace t.buckets i (ref c)) pairs;
  t.count <- count;
  t.sum <- s;
  (match Option.bind (Json.member "min" j) Json.to_float with
   | Some m -> t.min_v <- m
   | None -> ());
  (match Option.bind (Json.member "max" j) Json.to_float with
   | Some m -> t.max_v <- m
   | None -> ());
  Ok t
