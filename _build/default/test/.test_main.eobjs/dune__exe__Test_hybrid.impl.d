test/test_hybrid.ml: Alcotest H Helpers Hybrid_p2p List Option P2p_hashspace P2p_net P2p_sim P2p_stats Printf
