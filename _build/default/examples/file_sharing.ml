(* Interest-based file sharing (paper Section 5.3).

   Peers declare an interest (music / movies / books / games) when
   joining; the server groups same-interest peers into the same s-network.
   A Zipf-popular workload of lookups then mostly resolves inside the
   requester's own s-network, cutting latency and keeping traffic off the
   t-network — exactly the effect the paper motivates.

   Run with: dune exec examples/file_sharing.exe *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Data_ops = Hybrid_p2p.Data_ops
module Keys = P2p_workload.Keys
module Rng = P2p_sim.Rng
module Summary = P2p_stats.Summary

let categories = [| "music"; "movies"; "books"; "games" |]

let build ~interest_based =
  let snet_policy =
    if interest_based then Some Hybrid_p2p.World.By_interest else None
  in
  (* an interest s-network holds a whole category: give floods enough TTL
     to cover its tree (the paper: "the data lookup latency largely
     depends on the TTL" in interest-based systems) *)
  let config = { Hybrid_p2p.Config.default with Hybrid_p2p.Config.default_ttl = 12 } in
  let h = H.create_star ~seed:7 ~peers:256 ~config ?snet_policy () in
  (* a backbone of one t-peer per category, each placed at its category's
     routing ID so the category's segment is exactly its s-network *)
  for host = 0 to Array.length categories - 1 do
    ignore
      (H.join h ~host ~role:Peer.T_peer ~p_id:(Hybrid_p2p.Interest.route_id host) ()
        : Peer.t);
    H.run h
  done;
  (* twenty more t-peers so the ring detour is realistic *)
  for host = 4 to 23 do
    ignore (H.join h ~host ~role:Peer.T_peer () : Peer.t);
    H.run h
  done;
  for host = 24 to 183 do
    let interest = host mod Array.length categories in
    ignore (H.join h ~host ~role:Peer.S_peer ~interest () : Peer.t);
    H.run h
  done;
  h

let run_workload h ~label =
  let rng = Rng.create 99 in
  let items = Keys.generate ~rng ~count:400 ~categories:(Array.length categories) in
  (* each item is published by a peer interested in its category *)
  Array.iter
    (fun item ->
      let publisher =
        let candidates =
          List.filter (fun p -> p.Peer.interest = Some item.Keys.category) (H.peers h)
        in
        Rng.pick_list rng candidates
      in
      (* interest-based sharing routes a whole category under one ID *)
      H.insert h ~from:publisher ~key:item.Keys.key ~value:item.Keys.value
        ~route_id:(Hybrid_p2p.Interest.route_id item.Keys.category) ())
    items;
  H.run h;
  (* Zipf-popular lookups, issued by peers interested in the item's topic *)
  let queries = Keys.zipf_lookup_sequence ~rng ~items ~count:1500 ~exponent:0.9 in
  let latencies = Summary.create () in
  let missed = ref 0 in
  Array.iter
    (fun item ->
      let requester =
        let candidates =
          List.filter (fun p -> p.Peer.interest = Some item.Keys.category) (H.peers h)
        in
        Rng.pick_list rng candidates
      in
      H.lookup h ~from:requester ~key:item.Keys.key
        ~route_id:(Hybrid_p2p.Interest.route_id item.Keys.category)
        ~on_result:(function
          | Data_ops.Found { latency; _ } -> Summary.add latencies latency
          | Data_ops.Timed_out -> incr missed)
        ())
    queries;
  H.run h;
  Printf.printf "%-22s mean latency %6.1f ms   p95 %6.1f ms   missed %d/%d\n" label
    (Summary.mean latencies)
    (Summary.percentile latencies 95.0)
    !missed (Array.length queries)

let () =
  print_endline "File sharing with 4 topics, 24 t-peers, 160 s-peers, 400 files, 1500 Zipf lookups:";
  run_workload (build ~interest_based:true) ~label:"interest-based";
  run_workload (build ~interest_based:false) ~label:"random assignment";
  print_endline
    "\nInterest-based grouping answers most queries inside the local s-network;\n\
     random assignment pays the t-network detour far more often."
