module Rng = P2p_sim.Rng

type item = { key : string; value : string; category : int }

let generate ~rng ~count ~categories =
  if count < 0 then invalid_arg "Keys.generate: negative count";
  if categories <= 0 then invalid_arg "Keys.generate: categories";
  Array.init count (fun i ->
      let tag = Rng.int rng 1_000_000_000 in
      {
        key = Printf.sprintf "file-%06d-%09d" i tag;
        value = Printf.sprintf "contents-of-%06d" i;
        category = Rng.int rng categories;
      })

let d_id item = P2p_hashspace.Key_hash.of_string item.key

let lookup_sequence ~rng ~items ~count =
  if Array.length items = 0 then invalid_arg "Keys.lookup_sequence: no items";
  Array.init count (fun _ -> Rng.pick rng items)

let zipf_lookup_sequence ~rng ~items ~count ~exponent =
  let n = Array.length items in
  if n = 0 then invalid_arg "Keys.zipf_lookup_sequence: no items";
  let sampler = Zipf.create ~n ~exponent in
  Array.init count (fun _ -> items.(Zipf.sample sampler rng))
