(** Online invariant monitor: the {!Checks} catalogue on a cadence.

    An auditor is bound to one live system and runs its check selection
    every [interval] simulated milliseconds, reporting through the
    observability substrate:

    - each tick is a traced operation (kind [Custom "audit"]), and every
      violation found lands in the trace as a severity-tagged event
      ([audit-error] / [audit-warning]) under that operation id — so
      damage is localized in the run's timeline, not just counted;
    - the registry (under the ["audit"] subsystem) carries a [ticks]
      counter, a per-check [<name>_violations] counter, a per-check
      [<name>_last_run_ms] freshness gauge, and every health gauge the
      checks produce (load-balance spread, peers in transit, ...);
    - the auditor itself keeps a violations-over-time timeline and the
      last snapshot for end-of-run summaries.

    Three driving modes, matching how the rest of the repo drives the
    engine:

    - {!settle} drains the event queue like [Engine.run], ticking
      whenever the simulated clock crosses a due time — the drop-in
      replacement for [Hybrid.run] in scenarios;
    - {!advance} plays the engine forward a fixed duration like
      [Hybrid.run_for], ticking at every due time in the window;
    - {!start}/{!stop} arm a self-rearming engine timer for callers that
      drive the engine themselves.  While started, the event queue never
      empties — drive with [run_for]/[run_until], not [run]. *)

type t

(** [create ?interval ?checks w] binds an auditor to [w].  [interval]
    (default [250.] simulated ms) is the audit cadence; [checks] (default
    {!Checks.all}) selects the catalogue subset.  All registry metrics
    are pre-registered here so exports show zeroed health rows even
    before the first tick.  @raise Invalid_argument if [interval <= 0.]. *)
val create :
  ?interval:float -> ?checks:Checks.check list -> Hybrid_p2p.World.t -> t

val world : t -> Hybrid_p2p.World.t
val interval : t -> float

(** [set_on_violation t f] — call [f] for every violation any future
    tick finds (severity is the trace tag, ["audit-error"] or
    ["audit-warning"]).  The flight recorder hooks in here so audit
    findings appear in dumps alongside the op completions surrounding
    them.  Replaces any previously set callback. *)
val set_on_violation :
  t ->
  (time:float -> check:string -> severity:string -> detail:string -> unit) ->
  unit

(** [tick t] runs the catalogue right now, unconditionally, and records
    the results; returns the snapshot.  Resets the cadence: the next
    periodic tick is due [interval] from now. *)
val tick : t -> Checks.snapshot

(** Whether the next periodic tick's due time has been reached — for
    callers driving the engine with their own step loop (e.g. one that
    interleaves metric sampling) instead of {!settle}/{!advance}. *)
val due : t -> bool

(** [settle t] executes pending events until the queue drains (like
    [Hybrid.run]), ticking whenever simulated time reaches a due time,
    plus one final tick at the drained state if anything ran since the
    last one. *)
val settle : t -> unit

(** [advance t ~ms] plays the engine forward [ms] simulated milliseconds
    (like [Hybrid.run_for]), ticking at every due time inside the
    window. *)
val advance : t -> ms:float -> unit

(** [start t] arms the periodic engine timer (no-op if armed). *)
val start : t -> unit

(** [stop t] cancels the periodic timer (no-op if not armed). *)
val stop : t -> unit

(** {1 Accumulated results} *)

(** Number of audit ticks run so far. *)
val ticks : t -> int

(** Total violations (both severities) across all ticks. *)
val violations_total : t -> int

(** Total [Error]-severity violations across all ticks. *)
val errors_total : t -> int

(** The most recent snapshot, if any tick has run. *)
val last_snapshot : t -> Checks.snapshot option

(** [(time, violations_found)] per tick, oldest first — the
    violations-over-time series scenario reports summarize. *)
val timeline : t -> (float * int) list

(** [result t] — [Ok ()] if no [Error]-severity violation was ever seen,
    otherwise the first one's description. *)
val result : t -> (unit, string) result
