module World = Hybrid_p2p.World
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_store = Hybrid_p2p.Data_store
open P2p_hashspace

type severity = Warning | Error

let severity_to_string = function Warning -> "warning" | Error -> "error"

type violation = {
  check : string;
  severity : severity;
  subject : int option;
  detail : string;
}

type status = {
  name : string;
  violations : violation list;
  gauges : (string * float) list;
}

type snapshot = {
  time : float;
  statuses : status list;
}

type check = {
  c_name : string;
  c_describe : string;
  c_run : string -> World.t -> status;
      (* the check's own name is threaded in so violations self-attribute *)
}

let check_name c = c.c_name

let describe c = c.c_describe

(* Collector threaded through a check body. *)
type collector = {
  mutable acc : violation list; (* newest first *)
  mutable extra : (string * float) list;
  who : string;
}

let collector who = { acc = []; extra = []; who }

let err col ?subject fmt =
  Printf.ksprintf
    (fun detail ->
      col.acc <- { check = col.who; severity = Error; subject; detail } :: col.acc)
    fmt

let warn col ?subject fmt =
  Printf.ksprintf
    (fun detail ->
      col.acc <- { check = col.who; severity = Warning; subject; detail } :: col.acc)
    fmt

let gauge col name value = col.extra <- (name, value) :: col.extra

let finish col =
  { name = col.who; violations = List.rev col.acc; gauges = List.rev col.extra }

(* --- in-flight state recognition ----------------------------------------

   A tick can land mid-protocol: between two legs of a join/leave
   triangle, or while an orphaned subtree is walking back to its root.
   [Peer.quiet] flags the former (engaged mutexes); a live s-peer whose
   cp chain ends at a live s-peer with no connect point is the latter. *)

(* Where does [peer]'s cp chain end? *)
type attachment =
  | Rooted of Peer.t  (* reached a live t-peer *)
  | In_transit  (* chain ends at a live s-peer awaiting (re)attachment *)
  | Stranded of Peer.t  (* chain passes through a dead peer *)
  | Cp_cycle

let resolve_attachment peer =
  let rec follow p hops =
    if hops > 100_000 then Cp_cycle
    else if not p.Peer.alive then Stranded p
    else if Peer.is_t_peer p then Rooted p
    else
      match p.Peer.cp with
      | None -> In_transit
      | Some parent -> follow parent (hops + 1)
  in
  follow peer 0

(* --- ring symmetry ------------------------------------------------------ *)

let ring_symmetry who w =
  let col = collector who in
  let arr = World.t_peers w in
  let n = Array.length arr in
  let registered = Hashtbl.create (2 * n) in
  Array.iter (fun p -> Hashtbl.replace registered p.Peer.host ()) arr;
  (* A pointer at an alive t-peer that is not yet registered belongs to a
     join triangle in flight — the joiner becomes visible atomically with
     the final leg. *)
  let mid_join q =
    q.Peer.alive && Peer.is_t_peer q && not (Hashtbl.mem registered q.Peer.host)
  in
  let busy = ref 0 in
  Array.iter (fun p -> if not (Peer.quiet p) then incr busy) arr;
  gauge col "ring_busy_peers" (float_of_int !busy);
  for i = 0 to n - 1 do
    let a = arr.(i) and b = arr.((i + 1) mod n) in
    (* Only judge a segment whose endpoints are not mid-operation: the
       join/leave triangles rewire pointers leg by leg under the mutex. *)
    if Peer.quiet a && Peer.quiet b then begin
      (match a.Peer.succ with
       | Some s when s == b || n = 1 -> ()
       | Some s when mid_join s -> ()
       | Some s when not s.Peer.alive ->
         err col ~subject:a.Peer.host "t-peer #%d: successor #%d is dead" a.Peer.host
           s.Peer.host
       | Some s ->
         err col ~subject:a.Peer.host "t-peer #%d: successor #%d, expected #%d"
           a.Peer.host s.Peer.host b.Peer.host
       | None -> err col ~subject:a.Peer.host "t-peer #%d: no successor" a.Peer.host);
      match b.Peer.pred with
      | Some p when p == a || n = 1 -> ()
      | Some p when mid_join p -> ()
      | Some p when not p.Peer.alive ->
        err col ~subject:b.Peer.host "t-peer #%d: predecessor #%d is dead" b.Peer.host
          p.Peer.host
      | Some p ->
        err col ~subject:b.Peer.host "t-peer #%d: predecessor #%d, expected #%d"
          b.Peer.host p.Peer.host a.Peer.host
      | None -> err col ~subject:b.Peer.host "t-peer #%d: no predecessor" b.Peer.host
    end
  done;
  (* p_ids must be unique on the ring — a duplicate makes ownership
     ambiguous (conflicts resolve by midpoint at join time). *)
  for i = 0 to n - 2 do
    if arr.(i).Peer.p_id = arr.(i + 1).Peer.p_id then
      err col ~subject:arr.(i).Peer.host "t-peers #%d and #%d share p_id %#x"
        arr.(i).Peer.host
        arr.(i + 1).Peer.host
        arr.(i).Peer.p_id
  done;
  finish col

(* --- finger tables vs the oracle ---------------------------------------- *)

let finger_tables who w =
  let col = collector who in
  if not (World.fingers_fresh w) then begin
    (* Fingers are refreshed lazily; comparing a stale table against the
       oracle would misreport pending recomputation as damage. *)
    gauge col "fingers_fresh" 0.0;
    finish col
  end
  else begin
    gauge col "fingers_fresh" 1.0;
    let arr = World.t_peers w in
    Array.iter
      (fun p ->
        let fingers = p.Peer.fingers in
        if Array.length fingers <> Id_space.bits then
          err col ~subject:p.Peer.host "t-peer #%d: finger table has %d entries, want %d"
            p.Peer.host (Array.length fingers) Id_space.bits
        else
          Array.iteri
            (fun k entry ->
              let start = Id_space.finger_start ~base:p.Peer.p_id k in
              match (entry, World.oracle_owner w start) with
              | None, None -> ()
              | Some f, Some expected when f == expected -> ()
              | Some f, Some expected ->
                err col ~subject:p.Peer.host
                  "t-peer #%d: finger[%d] is #%d, oracle says #%d" p.Peer.host k
                  f.Peer.host expected.Peer.host
              | None, Some expected ->
                err col ~subject:p.Peer.host "t-peer #%d: finger[%d] unset, oracle says #%d"
                  p.Peer.host k expected.Peer.host
              | Some f, None ->
                err col ~subject:p.Peer.host "t-peer #%d: finger[%d] is #%d on an empty ring"
                  p.Peer.host k f.Peer.host)
            fingers)
      arr;
    finish col
  end

(* --- s-tree shape and the degree cap ------------------------------------ *)

let tree_structure who w =
  let col = collector who in
  let delta = w.World.config.Config.delta in
  let seen = Hashtbl.create 256 in
  let rec walk root peer =
    if Hashtbl.mem seen peer.Peer.host then
      err col ~subject:peer.Peer.host "cycle at peer #%d in s-network of #%d"
        peer.Peer.host root.Peer.host
    else begin
      Hashtbl.add seen peer.Peer.host ();
      if Peer.tree_degree peer > delta then
        err col ~subject:peer.Peer.host "peer #%d: degree %d exceeds cap %d"
          peer.Peer.host (Peer.tree_degree peer) delta;
      (match peer.Peer.t_home with
       | Some home when home == root -> ()
       | Some home ->
         err col ~subject:peer.Peer.host "peer #%d: t_home is #%d, expected #%d"
           peer.Peer.host home.Peer.host root.Peer.host
       | None -> err col ~subject:peer.Peer.host "peer #%d: no t_home" peer.Peer.host);
      if peer.Peer.p_id <> root.Peer.p_id then
        err col ~subject:peer.Peer.host "peer #%d: p_id %#x differs from root #%d"
          peer.Peer.host peer.Peer.p_id root.Peer.host;
      List.iter
        (fun child ->
          if not child.Peer.alive then
            err col ~subject:peer.Peer.host "peer #%d: child #%d is dead (undetected crash)"
              peer.Peer.host child.Peer.host
          else begin
            (match child.Peer.cp with
             | Some cp when cp == peer -> ()
             | Some cp ->
               err col ~subject:child.Peer.host "child #%d: cp is #%d, not parent #%d"
                 child.Peer.host cp.Peer.host peer.Peer.host
             | None ->
               err col ~subject:child.Peer.host "child #%d of #%d: cp unset" child.Peer.host
                 peer.Peer.host);
            walk root child
          end)
        peer.Peer.children
    end
  in
  Array.iter
    (fun root ->
      (match root.Peer.cp with
       | None -> ()
       | Some cp ->
         err col ~subject:root.Peer.host "root #%d has a connect point (#%d)" root.Peer.host
           cp.Peer.host);
      walk root root)
    (World.t_peers w);
  finish col

(* --- membership: every live peer hangs under exactly one live root ------ *)

let membership who w =
  let col = collector who in
  let in_transit = ref 0 in
  let by_root : (int, int) Hashtbl.t = Hashtbl.create 64 in
  World.iter_peers w
    (fun p ->
      if Peer.is_t_peer p then begin
        (match p.Peer.t_home with
         | Some home when home == p -> ()
         | Some home ->
           err col ~subject:p.Peer.host "t-peer #%d: t_home is #%d, not itself" p.Peer.host
             home.Peer.host
         | None -> err col ~subject:p.Peer.host "t-peer #%d: no t_home" p.Peer.host);
        match p.Peer.cp with
        | None -> ()
        | Some cp ->
          err col ~subject:p.Peer.host "t-peer #%d has a connect point (#%d)" p.Peer.host
            cp.Peer.host
      end
      else
        match resolve_attachment p with
        | Rooted root ->
          Hashtbl.replace by_root root.Peer.host
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_root root.Peer.host));
          (match p.Peer.t_home with
           | Some home when home == root -> ()
           | Some home ->
             err col ~subject:p.Peer.host "s-peer #%d: t_home is #%d but attached under #%d"
               p.Peer.host home.Peer.host root.Peer.host
           | None -> err col ~subject:p.Peer.host "s-peer #%d: no t_home" p.Peer.host)
        | In_transit ->
          (* a detached subtree walking back to its root — legitimate
             between a graceful leave / promotion and the re-attach *)
          incr in_transit
        | Stranded dead ->
          err col ~subject:p.Peer.host "s-peer #%d: stranded under dead peer #%d"
            p.Peer.host dead.Peer.host
        | Cp_cycle ->
          err col ~subject:p.Peer.host "s-peer #%d: cp chain never reaches a root"
            p.Peer.host);
  gauge col "peers_in_transit" (float_of_int !in_transit);
  (* The server's size table is only comparable when nothing is in
     flight; stale entries while peers rejoin are expected. *)
  if !in_transit = 0 then
    List.iter
      (fun (host, recorded) ->
        let actual = Option.value ~default:0 (Hashtbl.find_opt by_root host) in
        if recorded <> actual then
          warn col ~subject:host
            "server size table: s-network of #%d recorded as %d, counted %d" host recorded
            actual)
      (World.snet_size_entries w);
  finish col

(* --- data placement (Schemes A and B) ----------------------------------- *)

let data_placement who w =
  let col = collector who in
  let arr = World.t_peers w in
  if Array.length arr > 0 then begin
    let misplaced = ref 0 in
    World.iter_peers w
      (fun p ->
        if Data_store.size p.Peer.store > 0 then
          match p.Peer.t_home with
          | None -> () (* membership already flags this *)
          | Some home when not home.Peer.alive -> ()
          | Some home ->
            (* While the root or its predecessor is mid-triangle the
               segment boundary is moving (the leave's loaddump lands
               before the ring is rewired); judge the segment only when
               both ends are settled. *)
            let boundary_settled =
              Peer.quiet home
              && (match home.Peer.pred with
                  | Some pre -> Peer.quiet pre
                  | None -> false)
            in
            if boundary_settled then
              Data_store.iter p.Peer.store (fun ~key ~value:_ ~route_id ->
                  if not (Peer.covers home route_id) then begin
                    incr misplaced;
                    if !misplaced <= 8 then
                      err col ~subject:p.Peer.host
                        "item %S (route_id %#x) at #%d outside segment of #%d" key route_id
                        p.Peer.host home.Peer.host
                  end));
    if !misplaced > 8 then
      err col "...and %d more misplaced items" (!misplaced - 8);
    gauge col "misplaced_items" (float_of_int !misplaced)
  end;
  finish col

(* --- replication factor (durability invariant) -------------------------- *)

let replication_factor who w =
  let col = collector who in
  let r = w.World.config.Config.replication_factor in
  if r > 0 then begin
    let pending = w.World.replication_pending in
    gauge col "replication_pending" (float_of_int pending);
    (* Copies are in flight during fan-out/heal windows, and policy
       targets are moving while a join/leave triangle is mid-rewire —
       only a settled system owes the full factor. *)
    let settled =
      pending = 0 && Array.for_all Peer.quiet (World.t_peers w)
    in
    let copies_of : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    World.iter_peers w
      (fun p ->
        Data_store.iter p.Peer.replicas (fun ~key ~value:_ ~route_id:_ ->
            Hashtbl.replace copies_of key
              (1 + Option.value ~default:0 (Hashtbl.find_opt copies_of key))));
    let checked = Hashtbl.create 1024 in
    let items = ref 0 and copies = ref 0 and under = ref 0 in
    World.iter_peers w
      (fun p ->
        Data_store.iter p.Peer.store (fun ~key ~value:_ ~route_id:_ ->
            if not (Hashtbl.mem checked key) then begin
              Hashtbl.add checked key ();
              incr items;
              let have = Option.value ~default:0 (Hashtbl.find_opt copies_of key) in
              copies := !copies + have;
              let expected =
                min r (P2p_replication.Policy.expected_copies w ~primary:p)
              in
              if have < expected then begin
                incr under;
                if settled && !under <= 8 then
                  err col ~subject:p.Peer.host
                    "item %S at #%d has %d replica copies, expected %d" key
                    p.Peer.host have expected
              end
            end));
    if settled && !under > 8 then
      err col "...and %d more under-replicated items" (!under - 8);
    gauge col "replicated_items" (float_of_int !items);
    gauge col "replica_copies" (float_of_int !copies);
    gauge col "under_replicated" (float_of_int !under);
    gauge col "live_replica_factor"
      (if !items = 0 then 0.0 else float_of_int !copies /. float_of_int !items)
  end;
  finish col

(* --- load balance gauges (Fig. 4's quantity, continuously) -------------- *)

let gini sizes =
  let n = Array.length sizes in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy sizes in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    if total <= 0.0 then 0.0
    else begin
      let weighted = ref 0.0 in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
      let nf = float_of_int n in
      ((2.0 *. !weighted) /. (nf *. total)) -. ((nf +. 1.0) /. nf)
    end
  end

let load_balance who w =
  let col = collector who in
  let sizes = Array.make (World.peer_count w) 0.0 in
  let i = ref 0 in
  World.iter_peers w (fun p ->
      sizes.(!i) <- float_of_int (Data_store.size p.Peer.store);
      incr i);
  let n = Array.length sizes in
  let total = Array.fold_left ( +. ) 0.0 sizes in
  let max_v = Array.fold_left Float.max 0.0 sizes in
  gauge col "items_total" total;
  gauge col "items_per_peer_max" max_v;
  gauge col "items_per_peer_mean" (if n = 0 then 0.0 else total /. float_of_int n);
  gauge col "items_gini" (gini sizes);
  finish col

(* --- bloom_coverage ------------------------------------------------------

   The edge-summary contract ({!Hybrid_p2p.Summaries}): a fresh attenuated
   Bloom summary may only over-approximate — every key actually stored
   (primary or replica) at any member must pass the on-path filter of
   every ancestor edge at a level the flood's budget reaches, or a pruned
   flood could miss data a full flood would find.  The check first forces
   a rebuild of stale trees (pure derived state: no messages, no RNG, so
   simulated results are unchanged), then verifies the contract against
   the live placement.  No-op while summaries are disabled. *)

let bloom_coverage who w =
  let col = collector who in
  if w.World.config.Config.bloom_bits_per_key <= 0 then finish col
  else begin
    let module Summaries = Hybrid_p2p.Summaries in
    let module Bloom = Hybrid_p2p.Bloom in
    let roots = World.t_peers w in
    let stale_at_tick = ref 0 and keys_checked = ref 0 in
    Array.iter
      (fun root ->
        if not (Summaries.fresh w root) then incr stale_at_tick;
        Summaries.ensure_fresh w root;
        (* verify every ancestor edge on the key's root path: a key [dist]
           hops below an edge must sit in a filter level a flood with
           exactly [dist] remaining forwards would consult *)
        let rec check_path child parent ~dist ~key ~holder =
          (match Hashtbl.find_opt parent.Peer.summaries child.Peer.host with
           | None -> () (* unsummarized edge: floods never prune it *)
           | Some filters ->
             let levels = min dist (Array.length filters) in
             let rec probe i =
               i < levels && (Bloom.mem filters.(i) key || probe (i + 1))
             in
             if not (probe 0) then
               err col ~subject:holder.Peer.host
                 "key %S held at #%d is invisible to the summary of edge #%d->#%d \
                  (false negative: a flood reaching #%d with %d forwards left \
                  would prune the branch)"
                 key holder.Peer.host parent.Peer.host child.Peer.host
                 parent.Peer.host dist);
          match parent.Peer.cp with
          | Some grand -> check_path parent grand ~dist:(dist + 1) ~key ~holder
          | None -> ()
        in
        let rec walk peer =
          let local =
            List.rev_append
              (Data_store.keys peer.Peer.store)
              (Data_store.keys peer.Peer.replicas)
          in
          (match peer.Peer.cp with
           | Some parent ->
             List.iter
               (fun key ->
                 incr keys_checked;
                 check_path peer parent ~dist:1 ~key ~holder:peer)
               local
           | None -> keys_checked := !keys_checked + List.length local);
          List.iter (fun c -> if c.Peer.alive then walk c) peer.Peer.children
        in
        walk root)
      roots;
    gauge col "trees" (float_of_int (Array.length roots));
    gauge col "trees_stale_at_tick" (float_of_int !stale_at_tick);
    gauge col "keys_checked" (float_of_int !keys_checked);
    finish col
  end

(* --- latency_sanity ------------------------------------------------------

   The span-tree contract ({!P2p_sim.Trace} causal spans + the
   {!P2p_obs.Spans} analyzer): a completed child span's interval lies
   inside its parent's ([begin_span] suppresses children born after the
   parent closed, [end_span] clamps overruns — so an escape means the
   bookkeeping itself broke), and an op's critical-path attribution never
   exceeds its end-to-end latency.  No-op while tracing is off. *)

let latency_sanity who w =
  let module Trace = P2p_sim.Trace in
  let module Spans = P2p_obs.Spans in
  let col = collector who in
  let tr = World.trace w in
  if not (Trace.enabled tr) then finish col
  else begin
    let spans = Trace.spans tr in
    let by_id = Hashtbl.create 256 in
    List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.span_id s) spans;
    let checked = ref 0 and escapes = ref 0 in
    List.iter
      (fun (s : Trace.span) ->
        match (s.Trace.span_stop, Hashtbl.find_opt by_id s.Trace.parent) with
        | Some stop, Some (parent : Trace.span) ->
          incr checked;
          let pstop =
            (* an open parent bounds its children only from below *)
            Option.value parent.Trace.span_stop ~default:Float.infinity
          in
          if s.Trace.span_start < parent.Trace.span_start -. 1e-9 || stop > pstop +. 1e-9
          then begin
            incr escapes;
            if !escapes <= 8 then
              err col ?subject:s.Trace.span_src
                "span %d (%s/%s) [%g, %g] escapes parent %d [%g, %g]"
                s.Trace.span_id s.Trace.tier s.Trace.phase s.Trace.span_start stop
                parent.Trace.span_id parent.Trace.span_start pstop
          end
        | (None, _ | _, None) -> ())
      spans;
    if !escapes > 8 then err col "...and %d more escaped spans" (!escapes - 8);
    let ops = Spans.completed tr in
    List.iter
      (fun (o : Spans.op) ->
        if o.Spans.critical_ms > o.Spans.total_ms +. 1e-6 then
          err col "op %d (%s): critical path %.3f ms exceeds total latency %.3f ms"
            o.Spans.op_id o.Spans.kind o.Spans.critical_ms o.Spans.total_ms)
      ops;
    gauge col "spans_checked" (float_of_int !checked);
    gauge col "ops_checked" (float_of_int (List.length ops));
    gauge col "span_mismatches" (float_of_int (Trace.span_mismatches tr));
    gauge col "spans_clamped" (float_of_int (Trace.spans_clamped tr));
    finish col
  end

(* --- catalogue ----------------------------------------------------------- *)

let all =
  [
    {
      c_name = "ring_symmetry";
      c_describe = "t-ring successor/predecessor symmetry and p_id uniqueness";
      c_run = ring_symmetry;
    };
    {
      c_name = "finger_tables";
      c_describe = "finger tables agree with the membership oracle (when fresh)";
      c_run = finger_tables;
    };
    {
      c_name = "tree_structure";
      c_describe = "s-tree acyclicity, cp symmetry, t_home/p_id, degree cap delta";
      c_run = tree_structure;
    };
    {
      c_name = "membership";
      c_describe = "every live peer attached under one live root; server size table";
      c_run = membership;
    };
    {
      c_name = "data_placement";
      c_describe = "every stored item inside its holder's ring segment";
      c_run = data_placement;
    };
    {
      c_name = "replication_factor";
      c_describe = "every primary item keeps its configured replica count (when r > 0)";
      c_run = replication_factor;
    };
    {
      c_name = "bloom_coverage";
      c_describe =
        "s-tree edge summaries never hide stored data (no false negatives)";
      c_run = bloom_coverage;
    };
    {
      c_name = "load_balance";
      c_describe = "items-per-peer spread and Gini coefficient (gauges only)";
      c_run = load_balance;
    };
    {
      c_name = "latency_sanity";
      c_describe =
        "causal spans nest inside their parents; critical path <= op latency";
      c_run = latency_sanity;
    };
  ]

let names = List.map (fun c -> c.c_name) all

let find name = List.find_opt (fun c -> c.c_name = name) all

let select wanted =
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match find name with
      | Some c -> resolve (c :: acc) rest
      | None -> Error name)
  in
  resolve [] wanted

let run c w = c.c_run c.c_name w

let run_all ?(checks = all) w =
  { time = World.now w; statuses = List.map (fun c -> run c w) checks }

let violations snap = List.concat_map (fun s -> s.violations) snap.statuses

let errors vs = List.filter (fun v -> v.severity = Error) vs

let to_result snap =
  match errors (violations snap) with
  | [] -> Ok ()
  | v :: _ -> Result.Error (Printf.sprintf "%s: %s" v.check v.detail)

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" (severity_to_string v.severity) v.check v.detail
