type handle = Event_queue.handle

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  root_rng : Rng.t;
}

let create ~seed () =
  { queue = Event_queue.create (); clock = 0.0; executed = 0; root_rng = Rng.create seed }

let rng t = t.root_rng

let now t = t.clock

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.add t.queue ~time:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time f

let cancel = Event_queue.cancel

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let rec run t = if step t then run t

let run_until t ~time =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some event_time when event_time <= time ->
      ignore (step t : bool);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if time > t.clock then t.clock <- time

let events_executed t = t.executed

let pending t = Event_queue.live_length t.queue
