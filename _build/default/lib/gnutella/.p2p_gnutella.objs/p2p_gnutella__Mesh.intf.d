lib/gnutella/mesh.mli: P2p_sim
