module Rng = P2p_sim.Rng

type params = {
  transit_domains : int;
  transit_nodes : int;
  stub_domains_per_node : int;
  stub_nodes : int;
  extra_transit_edges : int;
  extra_stub_edges : int;
  transit_transit_latency : float * float;
  intra_transit_latency : float * float;
  transit_stub_latency : float * float;
  intra_stub_latency : float * float;
}

let default_params =
  {
    transit_domains = 4;
    transit_nodes = 5;
    stub_domains_per_node = 7;
    stub_nodes = 7;
    extra_transit_edges = 2;
    extra_stub_edges = 2;
    transit_transit_latency = (30.0, 60.0);
    intra_transit_latency = (10.0, 25.0);
    transit_stub_latency = (5.0, 15.0);
    intra_stub_latency = (1.0, 4.0);
  }

let node_count p =
  let transit = p.transit_domains * p.transit_nodes in
  transit + (transit * p.stub_domains_per_node * p.stub_nodes)

type node_class = Transit of int | Stub of int

type t = { graph : Graph.t; classes : node_class array }

let sample_latency rng (lo, hi) = Rng.float_in_range rng ~lo ~hi

(* Connect [nodes] into a random connected subgraph: a random spanning
   chain over a shuffled order, plus [extra] random chords. *)
let connect_domain rng graph nodes ~extra ~latency_range =
  let nodes = Array.copy nodes in
  Rng.shuffle rng nodes;
  let n = Array.length nodes in
  for i = 1 to n - 1 do
    Graph.add_edge graph nodes.(i - 1) nodes.(i)
      ~latency:(sample_latency rng latency_range)
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  (* Chords may collide with existing edges; bound the retries. *)
  while !added < extra && !attempts < extra * 10 && n >= 3 do
    incr attempts;
    let u = Rng.pick rng nodes and v = Rng.pick rng nodes in
    if u <> v && not (Graph.has_edge graph u v) then begin
      Graph.add_edge graph u v ~latency:(sample_latency rng latency_range);
      incr added
    end
  done

let validate p =
  if
    p.transit_domains <= 0 || p.transit_nodes <= 0
    || p.stub_domains_per_node < 0 || p.stub_nodes <= 0
  then invalid_arg "Transit_stub.generate: non-positive size parameter"

let generate ~rng p =
  validate p;
  let total = node_count p in
  let graph = Graph.create total in
  let classes = Array.make total (Transit 0) in
  let transit_total = p.transit_domains * p.transit_nodes in
  (* Nodes [0, transit_total) are transit; the rest are stub, laid out
     domain-major so each transit node's stubs are contiguous. *)
  let domains =
    Array.init p.transit_domains (fun d ->
        Array.init p.transit_nodes (fun i -> (d * p.transit_nodes) + i))
  in
  Array.iteri
    (fun d nodes ->
      Array.iter (fun u -> classes.(u) <- Transit d) nodes;
      connect_domain rng graph nodes ~extra:p.extra_transit_edges
        ~latency_range:p.intra_transit_latency)
    domains;
  (* Inter-domain backbone: chain the domains, plus one extra random
     domain-to-domain link per domain for redundancy. *)
  let random_node_of_domain d = Rng.pick rng domains.(d) in
  for d = 1 to p.transit_domains - 1 do
    let u = random_node_of_domain (d - 1) and v = random_node_of_domain d in
    if not (Graph.has_edge graph u v) then
      Graph.add_edge graph u v ~latency:(sample_latency rng p.transit_transit_latency)
  done;
  if p.transit_domains >= 3 then
    for d = 0 to p.transit_domains - 1 do
      let d' = Rng.int rng p.transit_domains in
      if d <> d' then begin
        let u = random_node_of_domain d and v = random_node_of_domain d' in
        if u <> v && not (Graph.has_edge graph u v) then
          Graph.add_edge graph u v ~latency:(sample_latency rng p.transit_transit_latency)
      end
    done;
  (* Stub domains. *)
  let next = ref transit_total in
  for transit_node = 0 to transit_total - 1 do
    for _domain = 1 to p.stub_domains_per_node do
      let members = Array.init p.stub_nodes (fun i -> !next + i) in
      next := !next + p.stub_nodes;
      Array.iter (fun u -> classes.(u) <- Stub transit_node) members;
      connect_domain rng graph members ~extra:p.extra_stub_edges
        ~latency_range:p.intra_stub_latency;
      (* Access link: a random member attaches to the transit node. *)
      let gateway = Rng.pick rng members in
      Graph.add_edge graph gateway transit_node
        ~latency:(sample_latency rng p.transit_stub_latency)
    done
  done;
  { graph; classes }

let transit_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun u c -> match c with Transit _ -> acc := u :: !acc | Stub _ -> ())
    t.classes;
  List.rev !acc

let stub_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun u c -> match c with Stub _ -> acc := u :: !acc | Transit _ -> ())
    t.classes;
  List.rev !acc
