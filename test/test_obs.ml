(* Observability layer: operation-scoped traces, JSONL round-trips,
   the metrics registry, the legacy-Metrics-as-view guarantee, engine
   profiling, and report rendering. *)

open Helpers
module Trace = P2p_sim.Trace
module Engine = P2p_sim.Engine
module Metrics = P2p_net.Metrics
module Registry = P2p_obs.Registry
module Export = P2p_obs.Export
module Report = P2p_obs.Report
module Summary = P2p_stats.Summary

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let event : Trace.event Alcotest.testable = Alcotest.testable Trace.pp_event ( = )

(* A traced star system grown to [n] peers. *)
let traced_system ?(seed = 11) ?(n = 40) ?(ps = 0.5) () =
  let trace = Trace.create ~capacity:100_000 () in
  let h = H.create_star ~seed ~peers:200 ~trace () in
  let members = H.grow h ~count:n ~s_fraction:ps in
  (h, trace, members)

(* --- trace buffer semantics --- *)

let test_ring_buffer () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~tag:"tick" (string_of_int i)
  done;
  checki "retained" 4 (Trace.length t);
  checki "total" 10 (Trace.total_recorded t);
  checks "oldest retained" "7"
    (match Trace.events t with e :: _ -> e.Trace.detail | [] -> "");
  Trace.clear t;
  checki "cleared" 0 (Trace.length t);
  checki "total survives clear" 10 (Trace.total_recorded t)

let test_reset () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record t ~time:(float_of_int i) ~tag:"tick" (string_of_int i)
  done;
  let op = Trace.begin_op t ~time:7.0 ~kind:Trace.Lookup "k" in
  checkb "op id advanced" true (op >= 0);
  checki "ops before reset" 1 (Trace.ops_started t);
  Trace.reset t;
  checki "reset empties" 0 (Trace.length t);
  checki "reset zeroes total" 0 (Trace.total_recorded t);
  checki "reset zeroes ops" 0 (Trace.ops_started t);
  (* a reset trace behaves like a fresh one: ids restart at 0 *)
  checki "ids restart" 0 (Trace.begin_op t ~time:8.0 ~kind:Trace.Insert "k2");
  Trace.record t ~time:9.0 ~tag:"tick" "after";
  checki "records again" 2 (Trace.length t)

(* Wraparound: the semantics of every read operation once more than
   [capacity] events have been recorded. *)
let test_wraparound () =
  let t = Trace.create ~capacity:5 () in
  let op_a = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "a" in
  let op_b = Trace.begin_op t ~time:0.5 ~kind:Trace.Insert "b" in
  for i = 1 to 12 do
    let op = if i mod 2 = 0 then op_a else op_b in
    Trace.record t ~time:(float_of_int i) ~tag:(if i mod 3 = 0 then "three" else "other")
      ~op (string_of_int i)
  done;
  (* 2 op-start events + 12 records = 14 total, newest 5 retained *)
  checki "total counts evicted too" 14 (Trace.total_recorded t);
  checki "retained = capacity" 5 (Trace.length t);
  let details = List.map (fun e -> e.Trace.detail) (Trace.events t) in
  Alcotest.check (Alcotest.list Alcotest.string) "oldest-first after wrap"
    [ "8"; "9"; "10"; "11"; "12" ] details;
  (* find only sees retained events *)
  let threes = Trace.find t ~tag:"three" in
  Alcotest.check (Alcotest.list Alcotest.string) "find after wrap" [ "9"; "12" ]
    (List.map (fun e -> e.Trace.detail) threes);
  (* op correlation survives eviction of the op's start event *)
  let of_a = Trace.events_of_op t op_a in
  Alcotest.check (Alcotest.list Alcotest.string) "op events after wrap"
    [ "8"; "10"; "12" ]
    (List.map (fun e -> e.Trace.detail) of_a);
  (* minted ids keep counting: eviction never recycles them *)
  checki "ops minted" 2 (Trace.ops_started t);
  let op_c = Trace.begin_op t ~time:20.0 ~kind:Trace.Leave "c" in
  checki "next id past eviction" (op_b + 1) op_c;
  Trace.end_op t ~time:21.0 ~op:op_c "bye";
  checkb "new op readable" true (List.length (Trace.events_of_op t op_c) = 2)

let test_op_kind_names () =
  List.iter
    (fun kind ->
      checkb
        (Trace.op_kind_to_string kind)
        true
        (Trace.op_kind_of_string (Trace.op_kind_to_string kind) = kind))
    [
      Trace.Insert; Trace.Lookup; Trace.T_join; Trace.S_join; Trace.Leave;
      Trace.Repair; Trace.Keyword; Trace.Custom "resync";
    ]

let test_begin_end_op () =
  let t = Trace.create ~capacity:64 () in
  let a = Trace.begin_op t ~time:1.0 ~kind:Trace.Lookup "key-a" in
  let b = Trace.begin_op t ~time:2.0 ~kind:Trace.Insert "key-b" in
  checki "consecutive ids" (a + 1) b;
  Trace.record t ~time:3.0 ~tag:"message" ~op:a ~src:1 ~dst:2 "hop";
  Trace.end_op t ~time:4.0 ~op:a "done";
  checki "ops minted" 2 (Trace.ops_started t);
  let of_a = Trace.events_of_op t a in
  checki "three events for op a" 3 (List.length of_a);
  checks "starts with kind-start" "lookup-start"
    (match of_a with e :: _ -> e.Trace.tag | [] -> "");
  checks "ends with op-end" "op-end"
    (match List.rev of_a with e :: _ -> e.Trace.tag | [] -> "");
  (* ids are minted even when the trace is disabled *)
  let d = Trace.begin_op Trace.disabled ~time:0.0 ~kind:Trace.Lookup "x" in
  checkb "disabled still mints" true (d >= 0)

(* --- JSONL export round-trip --- *)

let test_jsonl_roundtrip () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.25 ~kind:Trace.Lookup "file \"quoted\"\n" in
  Trace.record t ~time:1.5 ~tag:"message" ~op ~src:3 ~dst:9 "12.50 ms, 4 links";
  Trace.record t ~time:2.0 ~tag:"crash" ~src:7 "t-peer";
  Trace.end_op t ~time:3.75 ~op "found at #9";
  let text = Export.trace_to_string t in
  match Export.events_of_jsonl text with
  | Error e -> Alcotest.fail ("parse: " ^ e)
  | Ok events ->
    Alcotest.check (Alcotest.list event) "round-trip" (Trace.events t) events

let test_jsonl_bad_input () =
  checkb "not json" true
    (Result.is_error (Export.events_of_jsonl "not json at all"));
  checkb "missing tag" true
    (Result.is_error (Export.events_of_jsonl {|{"t":1.0,"detail":"x"}|}));
  checkb "blank lines ok" true
    (match Export.events_of_jsonl "\n\n" with Ok [] -> true | _ -> false)

let test_system_trace_jsonl () =
  let h, trace, _ = traced_system () in
  let keys = insert_items h ~count:20 in
  let r = lookup_sync h ~from:(H.random_peer h) ~key:(List.hd keys) () in
  checkb "lookup found" true (found r);
  match Export.events_of_jsonl (Export.trace_to_string trace) with
  | Error e -> Alcotest.fail ("system trace does not re-parse: " ^ e)
  | Ok events ->
    checki "re-parses in full" (Trace.length trace) (List.length events);
    (* the lookup's events all share its op id and end with op-end *)
    let start =
      List.find (fun e -> e.Trace.tag = "lookup-start") (List.rev events)
    in
    let op = match start.Trace.op with Some op -> op | None -> -1 in
    let of_op = List.filter (fun e -> e.Trace.op = Some op) events in
    checkb "lookup spans several events" true (List.length of_op >= 2);
    checkb "terminal op-end" true
      (List.exists (fun e -> e.Trace.tag = "op-end") of_op)

let test_trace_determinism () =
  let run () =
    let h, trace, _ = traced_system ~seed:23 ~n:30 ~ps:0.6 () in
    let keys = insert_items h ~count:25 in
    List.iter
      (fun key -> ignore (lookup_sync h ~from:(H.random_peer h) ~key () : _))
      keys;
    H.repair h;
    H.run h;
    (Export.trace_to_string trace, Export.metrics_to_string (Metrics.registry (H.metrics h)))
  in
  let trace1, metrics1 = run () in
  let trace2, metrics2 = run () in
  checks "identical trace" trace1 trace2;
  checks "identical metrics" metrics1 metrics2

(* --- registry --- *)

let test_registry_basics () =
  let r = Registry.create () in
  let c = Registry.counter r ~subsystem:"sub" ~name:"count" in
  Registry.incr c;
  Registry.incr ~by:4 c;
  checki "counter" 5 (Registry.counter_value c);
  checkb "get-or-create" true (Registry.counter r ~subsystem:"sub" ~name:"count" == c);
  let g = Registry.gauge r ~subsystem:"sub" ~name:"depth" in
  Registry.set_max g 7.0;
  Registry.set_max g 3.0;
  checkb "high-water" true (Registry.gauge_value g = 7.0);
  let hist = Registry.histogram r ~subsystem:"sub" ~name:"lat" in
  List.iter (Registry.observe hist) [ 1.0; 2.0; 3.0 ];
  checki "samples" 3 (Summary.count (Registry.summary hist));
  Alcotest.check_raises "shape clash"
    (Invalid_argument "Registry.gauge: sub/count is not a gauge") (fun () ->
      ignore (Registry.gauge r ~subsystem:"sub" ~name:"count" : Registry.gauge));
  checki "subsystems" 1 (List.length (Registry.subsystems r));
  checki "bindings" 3 (List.length (Registry.bindings r))

let test_histogram_bins () =
  let s = Summary.create () in
  checki "empty" 0 (List.length (Registry.histogram_bins s));
  Summary.add s 5.0;
  Summary.add s 5.0;
  checki "constant collapses to one bucket" 1
    (List.length (Registry.histogram_bins s));
  List.iter (Summary.add s) [ 0.0; 10.0 ];
  let bins = Registry.histogram_bins ~bins:4 s in
  checki "requested bins" 4 (List.length bins);
  checki "samples conserved" 4 (List.fold_left (fun a (_, c) -> a + c) 0 bins)

let test_scripted_counters () =
  let h, _, _ = traced_system ~seed:31 ~n:20 () in
  let reg = Metrics.registry (H.metrics h) in
  let read name =
    Registry.counter_value (Registry.counter reg ~subsystem:"data_ops" ~name)
  in
  checki "fresh inserts" 0 (read "inserts");
  H.insert h ~from:(H.random_peer h) ~key:"the-item" ~value:"v" ();
  H.run h;
  checki "one insert" 1 (read "inserts");
  let r = lookup_sync h ~from:(H.random_peer h) ~key:"the-item" () in
  checkb "found" true (found r);
  checki "one lookup issued" 1 (read "lookups_issued");
  checki "one lookup succeeded" 1 (read "lookups_succeeded");
  checki "no failures" 0 (read "lookups_failed");
  checkb "messages flowed" true
    (Registry.counter_value
       (Registry.counter reg ~subsystem:"underlay" ~name:"messages")
    > 0)

let test_legacy_metrics_view () =
  let h, _, _ = traced_system ~seed:37 ~n:30 () in
  let keys = insert_items h ~count:15 in
  List.iter
    (fun key -> ignore (lookup_sync h ~from:(H.random_peer h) ~key () : _))
    keys;
  let m = H.metrics h in
  let reg = Metrics.registry m in
  let counter sub name =
    Registry.counter_value (Registry.counter reg ~subsystem:sub ~name)
  in
  checki "messages" (Metrics.messages m) (counter "underlay" "messages");
  checki "physical hops" (Metrics.physical_hops m) (counter "underlay" "physical_hops");
  checki "issued" (Metrics.lookups_issued m) (counter "data_ops" "lookups_issued");
  checki "succeeded" (Metrics.lookups_succeeded m)
    (counter "data_ops" "lookups_succeeded");
  checki "failed" (Metrics.lookups_failed m) (counter "data_ops" "lookups_failed");
  checki "connum" (Metrics.connum m) (counter "data_ops" "connum");
  let hist sub name =
    Registry.summary (Registry.histogram reg ~subsystem:sub ~name)
  in
  checkb "lookup latency shared" true
    (Metrics.lookup_latency m == hist "data_ops" "lookup_latency_ms");
  checkb "join hops shared" true
    (Metrics.join_hops m == hist "membership" "join_hops");
  checki "joins measured" 30 (Summary.count (Metrics.join_latency m))

(* --- engine profiling --- *)

let test_engine_profiling () =
  let h, _, _ = traced_system ~seed:41 ~n:10 () in
  let e = H.engine h in
  checkb "off by default" false (Engine.profiling e);
  Engine.enable_profiling e;
  checkb "on" true (Engine.profiling e);
  let keys = insert_items h ~count:10 in
  let r = lookup_sync h ~from:(H.random_peer h) ~key:(List.hd keys) () in
  checkb "found" true (found r);
  checkb "events executed" true (Engine.events_executed e > 0);
  checkb "queue high-water" true (Engine.queue_high_water e > 0);
  checki "drained" 0 (Engine.pending e);
  match List.assoc_opt "message" (List.map (fun (l, n, t) -> (l, (n, t))) (Engine.profile e)) with
  | None -> Alcotest.fail "no 'message' row in profile"
  | Some (fires, cpu) ->
    checkb "messages fired" true (fires > 0);
    checkb "cpu time non-negative" true (cpu >= 0.0)

(* --- export + report --- *)

let test_metrics_json_roundtrip () =
  let h, _, _ = traced_system ~seed:43 ~n:25 () in
  let keys = insert_items h ~count:10 in
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:(List.hd keys) () : _);
  let reg = Metrics.registry (H.metrics h) in
  match Report.of_string (Export.metrics_to_string reg) with
  | Error e -> Alcotest.fail ("metrics JSON does not re-parse: " ^ e)
  | Ok parsed ->
    let live = Report.of_registry reg in
    checki "same subsystems" (List.length live) (List.length parsed);
    List.iter2
      (fun (sub_l, ms_l) (sub_p, ms_p) ->
        checks "subsystem order" sub_l sub_p;
        checki (sub_l ^ " metric count") (List.length ms_l) (List.length ms_p))
      live parsed;
    checkb "renders non-trivially" true
      (String.length (Report.render parsed) > 100)

let test_report_render () =
  let h, _, _ = traced_system ~seed:47 ~n:25 () in
  let keys = insert_items h ~count:10 in
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:(List.hd keys) () : _);
  let reg = Metrics.registry (H.metrics h) in
  let rendered = Report.render (Report.of_registry reg) in
  let contains needle =
    let n = String.length needle and hs = String.length rendered in
    let rec scan i =
      i + n <= hs && (String.sub rendered i n = needle || scan (i + 1))
    in
    scan 0
  in
  checkb "underlay section" true (contains "== underlay ==");
  checkb "data_ops section" true (contains "== data_ops ==");
  checkb "membership section" true (contains "== membership ==");
  checkb "counter row" true (contains "lookups_issued");
  checkb "histogram bars" true (contains "|#")

let contains ~haystack needle =
  let n = String.length needle and hs = String.length haystack in
  let rec scan i = i + n <= hs && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* The audit subsystem renders as a health table; reports without audit
   metrics must render exactly as before (old JSON stays readable). *)
let test_report_health_section () =
  let reg = Registry.create () in
  Registry.incr ~by:7 (Registry.counter reg ~subsystem:"audit" ~name:"ticks");
  ignore
    (Registry.counter reg ~subsystem:"audit" ~name:"ring_symmetry_violations"
      : Registry.counter);
  Registry.set (Registry.gauge reg ~subsystem:"audit" ~name:"ring_symmetry_last_run_ms") 125.0;
  Registry.incr ~by:2
    (Registry.counter reg ~subsystem:"audit" ~name:"tree_structure_violations");
  Registry.set (Registry.gauge reg ~subsystem:"audit" ~name:"items_gini") 0.31;
  Registry.incr (Registry.counter reg ~subsystem:"other" ~name:"n");
  let rendered = Report.render (Report.of_registry reg) in
  checkb "health heading" true (contains ~haystack:rendered "== health (audit) ==");
  checkb "tick row" true (contains ~haystack:rendered "audit ticks");
  checkb "clean check is OK" true (contains ~haystack:rendered "ring_symmetry        OK");
  checkb "freshness shown" true (contains ~haystack:rendered "last run 125 ms");
  checkb "violated check" true (contains ~haystack:rendered "VIOLATED (2)");
  checkb "health gauges still shown" true (contains ~haystack:rendered "items_gini");
  checkb "other subsystems untouched" true (contains ~haystack:rendered "== other ==");
  (* no audit subsystem -> no health section, graceful degradation *)
  let plain = Registry.create () in
  Registry.incr (Registry.counter plain ~subsystem:"underlay" ~name:"messages");
  let rendered = Report.render (Report.of_registry plain) in
  checkb "no spurious health section" false (contains ~haystack:rendered "health")

let test_export_files () =
  let h, trace, _ = traced_system ~seed:53 ~n:15 () in
  let keys = insert_items h ~count:5 in
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:(List.hd keys) () : _);
  let dir = Filename.temp_file "p2p-obs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let tpath = Filename.concat dir "t.jsonl"
  and mpath = Filename.concat dir "m.json"
  and cpath = Filename.concat dir "m.csv" in
  Export.write_trace ~path:tpath trace;
  Export.write_metrics ~path:mpath (Metrics.registry (H.metrics h));
  Export.write_metrics_csv ~path:cpath (Metrics.registry (H.metrics h));
  checkb "trace re-reads" true
    (Result.is_ok (Export.events_of_jsonl (Export.read_file tpath)));
  checkb "metrics re-read" true
    (Result.is_ok (Report.of_string (Export.read_file mpath)));
  let csv = Export.read_file cpath in
  checkb "csv header" true
    (String.length csv > 0 && String.sub csv 0 9 = "subsystem");
  List.iter Sys.remove [ tpath; mpath; cpath ];
  Sys.rmdir dir

(* --- log-histogram JSON round-trip and cluster merge --- *)

module Log_hist = P2p_obs.Log_hist
module Json = P2p_obs.Json
module Scrape = P2p_obs.Scrape

let reparse h =
  match Log_hist.of_json (Log_hist.to_json h) with
  | Ok h' -> h'
  | Error e -> Alcotest.fail ("log hist re-parse: " ^ e)

let hist_equal a b =
  Log_hist.count a = Log_hist.count b
  && Log_hist.buckets a = Log_hist.buckets b
  && Log_hist.sum a = Log_hist.sum b
  && (Log_hist.count a = 0
      || Log_hist.min_value a = Log_hist.min_value b
         && Log_hist.max_value a = Log_hist.max_value b)

let test_log_hist_json_roundtrip () =
  (* empty, single-bucket, and a spread distribution all survive *)
  let empty = Log_hist.create () in
  checkb "empty round-trips" true (hist_equal empty (reparse empty));
  let single = Log_hist.create () in
  Log_hist.observe single 5.0;
  Log_hist.observe single 5.0;
  checkb "single bucket round-trips" true (hist_equal single (reparse single));
  let spread = Log_hist.create () in
  List.iter (Log_hist.observe spread) [ 0.1; 1.0; 2.5; 40.0; 900.0; 900.0 ];
  let spread' = reparse spread in
  checkb "spread round-trips" true (hist_equal spread spread');
  checkb "percentiles agree after round-trip" true
    (Log_hist.percentile spread 99.0 = Log_hist.percentile spread' 99.0)

let test_log_hist_parse_then_merge () =
  (* serialize -> parse -> merge must equal merging the live values:
     the aggregator path (scrape JSON in between) loses nothing *)
  let a = Log_hist.create () and b = Log_hist.create () in
  List.iter (Log_hist.observe a) [ 1.0; 3.0; 3.2; 77.0 ];
  List.iter (Log_hist.observe b) [ 0.5; 3.1; 900.0 ];
  let direct = Log_hist.merge a b in
  let via_json = Log_hist.merge (reparse a) (reparse b) in
  checkb "merge of parsed equals direct merge" true (hist_equal direct via_json);
  (* merge_into agrees with merge *)
  let into = reparse a in
  Log_hist.merge_into ~into (reparse b);
  checkb "merge_into equals merge" true (hist_equal direct into);
  (* merging an empty histogram is the identity *)
  let into = reparse a in
  Log_hist.merge_into ~into (Log_hist.create ());
  checkb "empty merge is identity" true (hist_equal a into)

(* --- scrape snapshots and their cluster merge --- *)

let scrape_snapshot ~node samples =
  let reg = Registry.create () in
  let h = Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms" in
  List.iter (Log_hist.observe h) samples;
  Registry.incr ~by:(10 * (node + 1))
    (Registry.counter reg ~subsystem:"wire" ~name:"msgs_sent");
  Registry.set_max
    (Registry.gauge reg ~subsystem:"ring" ~name:"store")
    (float_of_int (5 * (node + 1)));
  {
    Scrape.node;
    at = 1000.0 +. float_of_int node;
    uptime_ms = 500.0;
    ready = true;
    p_id = node * 100;
    succ = (node + 1) mod 4;
    pred = (node + 3) mod 4;
    store = 5 * (node + 1);
    violations = 0;
    metrics = Registry.to_json reg;
    trace = [];
  }

let test_scrape_roundtrip () =
  let s = scrape_snapshot ~node:2 [ 1.0; 2.0 ] in
  match Scrape.of_string (Scrape.to_string s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
    checki "node survives" s.Scrape.node s'.Scrape.node;
    checkb "ready survives" s.Scrape.ready s'.Scrape.ready;
    checki "store survives" s.Scrape.store s'.Scrape.store;
    (* JSON printing may flip float/int shapes (15.0 -> "15"), so
       compare the metrics by what the aggregator extracts *)
    let reg = Registry.create () in
    Scrape.merge_metrics_into reg s'.Scrape.metrics;
    checki "counters survive" 30
      (Registry.counter_value
         (Registry.counter reg ~subsystem:"wire" ~name:"msgs_sent"));
    checki "histogram samples survive" 2
      (Log_hist.count
         (Registry.log_histogram reg ~subsystem:"latency"
            ~name:"lookup_total_ms"))

let test_scrape_rejects_foreign () =
  checkb "wrong type rejected" true
    (Result.is_error (Scrape.of_string "{\"type\":\"nope\",\"version\":1}"));
  checkb "future version rejected" true
    (Result.is_error (Scrape.of_string "{\"type\":\"scrape\",\"version\":99}"));
  checkb "garbage rejected" true (Result.is_error (Scrape.of_string "{"))

let test_scrape_merged_registry () =
  let snaps =
    [
      scrape_snapshot ~node:0 [ 1.0; 2.0; 4.0 ];
      scrape_snapshot ~node:1 [ 8.0; 16.0 ];
      scrape_snapshot ~node:2 [];
    ]
  in
  let merged = Scrape.merged_registry snaps in
  checki "counters sum across nodes" 60
    (Registry.counter_value
       (Registry.counter merged ~subsystem:"wire" ~name:"msgs_sent"));
  checkb "gauges keep the cluster maximum" true
    (Registry.gauge_value (Registry.gauge merged ~subsystem:"ring" ~name:"store")
     = 15.0);
  let h =
    Registry.log_histogram merged ~subsystem:"latency" ~name:"lookup_total_ms"
  in
  checki "histograms hold every node's samples" 5 (Log_hist.count h);
  (* p99 of the merged distribution tracks the global tail (node 1's),
     which per-node averaging would have hidden *)
  checkb "merged p99 is the global tail" true (Log_hist.percentile h 99.0 >= 16.0)

let test_scrape_merged_chrome () =
  let span pid name =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "X");
        ("pid", Json.Int pid);
        ("tid", Json.Int 7);
        ("ts", Json.Float 1.0);
        ("dur", Json.Float 2.0);
      ]
  in
  let meta pid =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
      ]
  in
  let snaps =
    [
      { (scrape_snapshot ~node:0 []) with Scrape.trace = [ meta 0; span 0 "a" ] };
      { (scrape_snapshot ~node:1 []) with Scrape.trace = [ meta 1; span 1 "b" ] };
    ]
  in
  match Scrape.merged_chrome snaps with
  | Json.List events ->
    let phase e =
      match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?"
    in
    let metas = List.filter (fun e -> phase e = "M") events in
    let spans = List.filter (fun e -> phase e = "X") events in
    checki "one re-derived process_name per node" 2 (List.length metas);
    checki "both nodes' spans pooled" 2 (List.length spans)
  | _ -> Alcotest.fail "merged chrome is not a list"

let test_scrape_render_table () =
  let snaps = [ scrape_snapshot ~node:0 [ 1.0 ]; scrape_snapshot ~node:1 [ 2.0 ] ] in
  let table = Scrape.render_table snaps in
  checkb "has per-node rows" true (contains ~haystack:table "store");
  checkb "has the cluster summary" true (contains ~haystack:table "cluster:")

let suite =
  [
    Alcotest.test_case "trace: ring buffer" `Quick test_ring_buffer;
    Alcotest.test_case "trace: reset" `Quick test_reset;
    Alcotest.test_case "trace: wraparound" `Quick test_wraparound;
    Alcotest.test_case "trace: op kind names" `Quick test_op_kind_names;
    Alcotest.test_case "trace: begin/end op" `Quick test_begin_end_op;
    Alcotest.test_case "jsonl: synthetic round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl: bad input" `Quick test_jsonl_bad_input;
    Alcotest.test_case "jsonl: system trace" `Quick test_system_trace_jsonl;
    Alcotest.test_case "trace: deterministic across runs" `Quick test_trace_determinism;
    Alcotest.test_case "registry: shapes" `Quick test_registry_basics;
    Alcotest.test_case "registry: histogram bins" `Quick test_histogram_bins;
    Alcotest.test_case "registry: scripted counters" `Quick test_scripted_counters;
    Alcotest.test_case "registry: legacy metrics view" `Quick test_legacy_metrics_view;
    Alcotest.test_case "engine: profiling" `Quick test_engine_profiling;
    Alcotest.test_case "report: json round-trip" `Quick test_metrics_json_roundtrip;
    Alcotest.test_case "report: render" `Quick test_report_render;
    Alcotest.test_case "report: health section" `Quick test_report_health_section;
    Alcotest.test_case "export: files" `Quick test_export_files;
    Alcotest.test_case "log hist: json round-trip" `Quick
      test_log_hist_json_roundtrip;
    Alcotest.test_case "log hist: parse-then-merge equals direct merge" `Quick
      test_log_hist_parse_then_merge;
    Alcotest.test_case "scrape: snapshot round-trip" `Quick test_scrape_roundtrip;
    Alcotest.test_case "scrape: rejects foreign documents" `Quick
      test_scrape_rejects_foreign;
    Alcotest.test_case "scrape: merged registry semantics" `Quick
      test_scrape_merged_registry;
    Alcotest.test_case "scrape: merged chrome trace" `Quick
      test_scrape_merged_chrome;
    Alcotest.test_case "scrape: rendered table" `Quick test_scrape_render_table;
  ]
