test/test_world.ml: Alcotest Array H Helpers Hybrid_p2p List Option P2p_hashspace P2p_sim P2p_topology Peer World
