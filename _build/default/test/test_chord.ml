(* Tests for the Chord baseline (P2p_chord.Ring). *)

module Ring = P2p_chord.Ring
module Id_space = P2p_hashspace.Id_space
module Key_hash = P2p_hashspace.Key_hash
module Rng = P2p_sim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ok_invariants ring =
  match Ring.check_invariants ring with
  | Ok () -> ()
  | Error reason -> Alcotest.fail ("invariants: " ^ reason)

let build ids =
  let ring = Ring.create () in
  let nodes =
    List.mapi (fun i id -> fst (Ring.join ring ~host:i ~p_id:id)) ids
  in
  (ring, nodes)

let random_ring ~seed n =
  let rng = Rng.create seed in
  let ring = Ring.create () in
  let nodes = ref [] in
  let used = Hashtbl.create 64 in
  let host = ref 0 in
  while List.length !nodes < n do
    let id = Rng.int rng Id_space.size in
    if not (Hashtbl.mem used id) then begin
      Hashtbl.add used id ();
      nodes := fst (Ring.join ring ~host:!host ~p_id:id) :: !nodes;
      incr host
    end
  done;
  (ring, !nodes, rng)

let test_single_node () =
  let ring, nodes = build [ 100 ] in
  let n = List.hd nodes in
  checki "count" 1 (Ring.node_count ring);
  checkb "own successor" true (Ring.successor n == n);
  ok_invariants ring

let test_join_order_independent () =
  let ring, _ = build [ 500; 100; 300; 900; 700 ] in
  checki "count" 5 (Ring.node_count ring);
  ok_invariants ring

let test_join_duplicate_id () =
  let ring, _ = build [ 100 ] in
  Alcotest.check_raises "duplicate" (Invalid_argument "Ring.join: duplicate p_id")
    (fun () -> ignore (Ring.join ring ~host:9 ~p_id:100 : Ring.node * Ring.node list))

let test_join_path_nonempty () =
  let ring, _ = build [ 100; 200; 300 ] in
  let _, path = Ring.join ring ~host:7 ~p_id:250 in
  checkb "path has hops" true (List.length path >= 1);
  ok_invariants ring

let test_find_successor_owner () =
  let ring, nodes = build [ 100; 200; 300 ] in
  let from = List.hd nodes in
  let owner, path = Ring.find_successor ring ~from 150 in
  checki "owner of 150 is 200" 200 (Ring.p_id owner);
  checkb "path starts at from" true (List.hd path == from);
  checkb "path ends at owner" true (List.nth path (List.length path - 1) == owner);
  let owner, _ = Ring.find_successor ring ~from 300 in
  checki "exact id" 300 (Ring.p_id owner);
  let owner, _ = Ring.find_successor ring ~from 301 in
  checki "wraps to smallest" 100 (Ring.p_id owner)

let test_store_lookup_roundtrip () =
  let ring, nodes, rng = random_ring ~seed:11 50 in
  let from () = Rng.pick_list rng nodes in
  for i = 0 to 99 do
    let key = Printf.sprintf "k%d" i in
    ignore (Ring.store ring ~from:(from ()) ~key ~value:(string_of_int i) : Ring.node list)
  done;
  for i = 0 to 99 do
    let key = Printf.sprintf "k%d" i in
    let value, _ = Ring.lookup ring ~from:(from ()) ~key in
    Alcotest.check (Alcotest.option Alcotest.string) key (Some (string_of_int i)) value
  done

let test_data_at_owner () =
  let ring, nodes, _ = random_ring ~seed:12 20 in
  let from = List.hd nodes in
  let key = "some-file" in
  ignore (Ring.store ring ~from ~key ~value:"v" : Ring.node list);
  let owner, _ = Ring.find_successor ring ~from (Key_hash.of_string key) in
  checki "stored at owner" 1 (Ring.stored_items owner)

let test_lookup_path_logarithmic () =
  let ring, nodes, rng = random_ring ~seed:13 256 in
  (* with fingers, path length should be well below N/2 *)
  let total = ref 0 and samples = 200 in
  for _ = 1 to samples do
    let from = Rng.pick_list rng nodes in
    let id = Rng.int rng Id_space.size in
    let _, path = Ring.find_successor ring ~from id in
    total := !total + List.length path - 1
  done;
  let mean = float_of_int !total /. float_of_int samples in
  checkb (Printf.sprintf "mean path %.1f < 16 (log2 256 = 8)" mean) true (mean < 16.0)

let test_leave_transfers_data () =
  let ring, _ = build [ 100; 200; 300 ] in
  let items_before key = key in
  ignore items_before;
  (* put data at every node by hashing keys until each node has some *)
  let nodes = Ring.nodes ring in
  let from = List.hd nodes in
  for i = 0 to 49 do
    ignore (Ring.store ring ~from ~key:(Printf.sprintf "x%d" i) ~value:"v" : Ring.node list)
  done;
  let total_before = List.fold_left (fun acc n -> acc + Ring.stored_items n) 0 nodes in
  let victim = List.find (fun n -> Ring.p_id n = 200) nodes in
  Ring.leave ring victim;
  let total_after =
    List.fold_left (fun acc n -> acc + Ring.stored_items n) 0 (Ring.nodes ring)
  in
  checki "no data lost on graceful leave" total_before total_after;
  Ring.stabilize ring;
  ok_invariants ring

let test_leave_last_nodes () =
  let ring, nodes = build [ 100; 200 ] in
  List.iter (fun n -> Ring.leave ring n) nodes;
  checki "empty" 0 (Ring.node_count ring)

let test_leave_twice_rejected () =
  let ring, nodes = build [ 100; 200 ] in
  let n = List.hd nodes in
  Ring.leave ring n;
  Alcotest.check_raises "double leave" (Invalid_argument "Ring.leave: node already left")
    (fun () -> Ring.leave ring n)

let test_crash_loses_data () =
  let ring, _ = build [ 100; 200; 300 ] in
  let nodes = Ring.nodes ring in
  let from = List.hd nodes in
  for i = 0 to 49 do
    ignore (Ring.store ring ~from ~key:(Printf.sprintf "y%d" i) ~value:"v" : Ring.node list)
  done;
  let victim = List.find (fun n -> Ring.stored_items n > 0) nodes in
  let lost = Ring.stored_items victim in
  let total_before = List.fold_left (fun acc n -> acc + Ring.stored_items n) 0 nodes in
  Ring.crash ring victim;
  let total_after =
    List.fold_left (fun acc n -> acc + Ring.stored_items n) 0 (Ring.nodes ring)
  in
  checki "crash loses exactly the victim's items" (total_before - lost) total_after

let test_crash_then_stabilize () =
  let ring, nodes, rng = random_ring ~seed:14 60 in
  (* crash 10 random nodes, stabilize, invariants must hold again *)
  let victims = ref [] in
  let alive = ref nodes in
  for _ = 1 to 10 do
    let v = Rng.pick_list rng !alive in
    alive := List.filter (fun n -> n != v) !alive;
    victims := v :: !victims
  done;
  List.iter (fun v -> Ring.crash ring v) !victims;
  Ring.stabilize ring;
  Ring.stabilize ring;
  checki "fifty remain" 50 (Ring.node_count ring);
  ok_invariants ring

let test_routing_survives_crash_before_stabilize () =
  let ring, nodes, rng = random_ring ~seed:15 40 in
  ignore (Ring.store ring ~from:(List.hd nodes) ~key:"needle" ~value:"found" : Ring.node list);
  (* crash nodes that do NOT hold the item *)
  let holder, _ = Ring.find_successor ring ~from:(List.hd nodes)
      (Key_hash.of_string "needle") in
  let alive = List.filter (fun n -> n != holder) nodes in
  let victims = ref [] in
  let pool = ref alive in
  for _ = 1 to 5 do
    let v = Rng.pick_list rng !pool in
    pool := List.filter (fun n -> n != v) !pool;
    victims := v :: !victims
  done;
  List.iter (fun v -> Ring.crash ring v) !victims;
  (* no stabilization yet: lookup must still succeed via successor lists *)
  let from = List.find (fun n -> Ring.alive n) !pool in
  let value, _ = Ring.lookup ring ~from ~key:"needle" in
  Alcotest.check (Alcotest.option Alcotest.string) "found despite crashes" (Some "found") value

let test_fingers_point_correctly () =
  let ring, _, _ = random_ring ~seed:16 64 in
  ok_invariants ring (* forces the lazy finger refresh *);
  List.iter
    (fun n ->
      Array.iteri
        (fun k f ->
          match f with
          | Some target ->
            let start = Id_space.finger_start ~base:(Ring.p_id n) k in
            (* a node exactly at [start] is trivially the correct finger *)
            if Ring.p_id target <> start then
            (* no live node lies strictly between start and the finger *)
            List.iter
              (fun other ->
                checkb "finger is first at/after start" false
                  (Id_space.between (Ring.p_id other) ~left:start
                     ~right:(Ring.p_id target)
                   && Ring.p_id other <> Ring.p_id target
                   && Id_space.distance ~src:start ~dst:(Ring.p_id other)
                      < Id_space.distance ~src:start ~dst:(Ring.p_id target)))
              (Ring.nodes ring)
          | None -> Alcotest.fail "missing finger")
        (Ring.fingers n))
    (Ring.nodes ring)

let suite =
  [
    Alcotest.test_case "single node ring" `Quick test_single_node;
    Alcotest.test_case "join in arbitrary order" `Quick test_join_order_independent;
    Alcotest.test_case "duplicate id rejected" `Quick test_join_duplicate_id;
    Alcotest.test_case "join path non-empty" `Quick test_join_path_nonempty;
    Alcotest.test_case "find_successor ownership" `Quick test_find_successor_owner;
    Alcotest.test_case "store/lookup roundtrip" `Quick test_store_lookup_roundtrip;
    Alcotest.test_case "data placed at owner" `Quick test_data_at_owner;
    Alcotest.test_case "finger routing is fast" `Quick test_lookup_path_logarithmic;
    Alcotest.test_case "graceful leave keeps data" `Quick test_leave_transfers_data;
    Alcotest.test_case "leave down to empty" `Quick test_leave_last_nodes;
    Alcotest.test_case "double leave rejected" `Quick test_leave_twice_rejected;
    Alcotest.test_case "crash loses data" `Quick test_crash_loses_data;
    Alcotest.test_case "crash then stabilize" `Quick test_crash_then_stabilize;
    Alcotest.test_case "routing survives crashes pre-stabilize" `Quick
      test_routing_survives_crash_before_stabilize;
    Alcotest.test_case "fingers point correctly" `Quick test_fingers_point_correctly;
  ]
