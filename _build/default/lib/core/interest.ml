let route_id category =
  P2p_hashspace.Key_hash.of_string (Printf.sprintf "interest-category:%d" category)
