(** Discrete-event simulation engine.

    The engine owns a simulated clock and an event queue of thunks.  A
    simulation is driven by scheduling actions at relative delays or
    absolute times and then calling one of the [run] functions.  Actions may
    schedule further actions; time only advances between events.

    This replaces the NS2 substrate the paper evaluated on: every metric the
    paper reports (hop counts, latencies, message counts, failure ratios) is
    produced by event-driven message delivery on top of this engine.

    {b Event lanes.} The event population can be partitioned into [lanes]
    independent heaps ({!create}'s [?lanes], default [1]).  Callers tag
    scheduled events with an integer [?shard] (untagged events go to lane
    0); the engine maps shards onto lanes and merges the lane heads
    conservatively by [(time, sequence)].  With the default
    [lookahead = 0.] the merged order is {e identical} to a single queue
    for every lane count — lanes only change the data layout (smaller
    heaps, segment-local sift costs), never the trace.  A positive
    [lookahead] relaxes the merge: {!run} drains one lane in batches while
    its head stays within [lookahead] of every other lane's head, so
    mostly-independent segments execute in long runs without consulting
    the global order.  That is safe whenever [lookahead] is at most the
    minimum cross-lane scheduling delay (for the hybrid overlay: the
    minimum underlay message latency), the classic conservative-lookahead
    condition; events inside one lane always execute in exact order.
    During a lookahead batch the clock can regress by at most [lookahead]
    between events of different lanes.

    {b Profiling.} The engine always tracks the number of events executed
    and the high-water mark of the queue depth.  When profiling is switched
    on ({!enable_profiling}), events scheduled with a [?label] additionally
    accumulate per-label fire counts and host-CPU handler time, so a run
    report can show where simulation wall-clock goes (message delivery vs
    timers vs experiment glue).  Profiling is off by default and labelled
    scheduling costs nothing while it stays off. *)

type t

type handle = Event_queue.handle

(** [create ~seed ?lanes ?lookahead ()] makes an engine whose clock starts
    at [0.] and whose root RNG is seeded with [seed].  [lanes] (default
    [1]) is the number of event lanes; [lookahead] (default [0.], exact
    merge) is the conservative-lookahead window in simulated milliseconds.
    @raise Invalid_argument if [lanes < 1] or [lookahead < 0.]. *)
val create : seed:int -> ?lanes:int -> ?lookahead:float -> unit -> t

(** The engine's root RNG.  Subsystems should [Rng.split] it rather than
    share it, so that adding a consumer does not shift other streams. *)
val rng : t -> Rng.t

(** Current simulated time (the timestamp of the executing event; under a
    positive lookahead this can regress by at most [lookahead] between
    events of different lanes). *)
val now : t -> float

(** Number of event lanes. *)
val lanes : t -> int

(** The conservative-lookahead window ([0.] = exact single-queue order). *)
val lookahead : t -> float

(** [schedule ?label ?shard t ~delay f] runs [f ()] at [now t +. delay].
    [label] groups the event for {!profile} accounting; [shard] selects
    the event's lane ([shard mod lanes]; omitted means lane 0).
    @raise Invalid_argument if [delay < 0.]. *)
val schedule :
  ?label:string -> ?shard:int -> t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at ?label ?shard t ~time f] runs [f ()] at absolute [time].
    @raise Invalid_argument if [time] is in the simulated past. *)
val schedule_at :
  ?label:string -> ?shard:int -> t -> time:float -> (unit -> unit) -> handle

(** [schedule_detached t ~label ~shard ~delay f] is {!schedule} for
    fire-and-forget events: no handle is returned, so nothing cancellable
    is allocated (the lane queue reuses a shared never-dead handle and a
    pooled entry).  [label] and [shard] are plain arguments — pass
    hoisted values at hot call sites and the call allocates only the
    event record.  This is the per-message path of the underlay, which
    never cancels deliveries.
    @raise Invalid_argument if [delay < 0.]. *)
val schedule_detached :
  t -> label:string option -> shard:int -> delay:float -> (unit -> unit) -> unit

(** [schedule_batch t f] runs [f ()] with batched event insertion: every
    [schedule]/[schedule_at]/[schedule_detached] inside [f] appends to
    its lane without restoring the heap property, and the touched lanes
    are restructured once when [f] returns (or raises).  A fan-out of
    [k] inserts thus costs one sift pass instead of [k].  Ordering is
    unaffected — sequence numbers are stamped at call time, so the
    executed schedule is bit-identical with and without batching.  Nested
    calls flatten into the outermost batch.  [f] must not itself drain
    the engine ({!step}/{!run} inside a batch would observe a flushed —
    correct but unbatched — queue). *)
val schedule_batch : t -> (unit -> unit) -> unit

(** [cancel h] prevents a scheduled action from running. *)
val cancel : handle -> unit

(** [step t] executes the earliest pending event (by global
    [(time, sequence)] order across every lane), advancing the clock.
    Returns [false] if no event was pending.  [step] never applies the
    lookahead batching — external step loops observe the exact order. *)
val step : t -> bool

(** [run t] executes events until every lane is empty, draining lanes in
    conservative batches (see the module preamble). *)
val run : t -> unit

(** [run_until t ~time] executes all events with timestamp [<= time] in
    exact global order, then advances the clock to exactly [time]. *)
val run_until : t -> time:float -> unit

(** {1 Profiling} *)

(** [enable_profiling t] turns on per-label handler timing (irreversible
    for the engine's lifetime; meant to be set right after {!create}). *)
val enable_profiling : t -> unit

(** Is per-label profiling on? *)
val profiling : t -> bool

(** Number of events executed so far. *)
val events_executed : t -> int

(** Number of live events still pending, summed over every lane. *)
val pending : t -> int

(** Highest total queue depth observed so far (physical heap slots summed
    over lanes, counting not-yet-collected cancelled events). *)
val queue_high_water : t -> int

(** One lane's occupancy figures — always tracked (a handful of array
    stores per event), so per-lane telemetry needs no profiling flag. *)
type lane_stat = {
  lane_events : int;  (** events executed on this lane *)
  lane_pending : int;  (** live events currently queued on this lane *)
  lane_high_water : int;
      (** deepest physical heap this lane has reached (slots, counting
          not-yet-collected cancelled events) *)
  lane_merge_stalls : int;
      (** {!run} batches this lane ended because another lane's frontier
          blocked further draining — the cross-lane merge-overhead signal
          lookahead tuning watches *)
}

(** [lane_stats t] — a fresh per-lane snapshot, index = lane number. *)
val lane_stats : t -> lane_stat array

(** [profile t] — per-label [(label, fires, cpu_seconds)] rows, sorted by
    label.  Empty unless {!enable_profiling} was called and labelled events
    fired.  CPU time is host time ([Sys.time]), not simulated time. *)
val profile : t -> (string * int * float) list
