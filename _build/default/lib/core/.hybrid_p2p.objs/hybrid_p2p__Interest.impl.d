lib/core/interest.ml: P2p_hashspace Printf
