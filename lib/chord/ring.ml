open P2p_hashspace
module Trace = P2p_sim.Trace

type node = {
  host : int;
  p_id : int;
  mutable successor : node;
  mutable predecessor : node option;
  mutable successor_list : node list;
  fingers : node option array;
  store : (string, string) Hashtbl.t;
  mutable alive : bool;
}

type t = {
  by_id : (int, node) Hashtbl.t;
  mutable join_order : node list; (* oldest last *)
  mutable sorted : node array;    (* live nodes by p_id; rebuilt lazily *)
  mutable dirty : bool;
  mutable fingers_dirty : bool;
      (* set on join/leave; fingers and successor lists refresh lazily,
         modelling the background fix_fingers pass.  Crashes deliberately
         do NOT set it: stale fingers until [stabilize] are the point. *)
  successor_list_length : int;
  trace : Trace.t option;
  mutable clock : float;
      (* logical time for span attribution: the overlay itself is
         synchronous, so hops tick an internal clock at 1 ms each *)
}

let create ?trace ?(successor_list_length = 8) () =
  if successor_list_length < 1 then
    invalid_arg "Ring.create: successor_list_length must be >= 1";
  {
    by_id = Hashtbl.create 64;
    join_order = [];
    sorted = [||];
    dirty = false;
    fingers_dirty = false;
    successor_list_length;
    trace;
    clock = 0.0;
  }

(* Replay a routing path into the trace as one [Custom] op: a "ring_hop"
   span per edge, 1 logical ms each, so the baseline's routing shows up
   in the same span tooling as the hybrid system's. *)
let trace_path t ~kind ~label path =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    let start = t.clock in
    let op = Trace.begin_op tr ~time:start ~kind:(Trace.Custom kind) label in
    let time = ref start in
    let rec hops = function
      | a :: (b :: _ as rest) ->
        let s =
          Trace.begin_span tr ~time:!time ~op ~tier:"chord" ~phase:"ring_hop"
            ~src:a.host ~dst:b.host "ring_hop"
        in
        time := !time +. 1.0;
        Trace.end_span tr ~time:!time s;
        hops rest
      | [] | [ _ ] -> ()
    in
    hops path;
    Trace.end_op tr ~time:!time ~op
      (Printf.sprintf "%d hops" (Stdlib.max 0 (List.length path - 1)));
    t.clock <- !time +. 1.0
  | Some _ | None -> ()

let node_count t = Hashtbl.length t.by_id

let nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.by_id []

let host n = n.host
let p_id n = n.p_id
let successor n = n.successor
let predecessor n = n.predecessor
let alive n = n.alive
let fingers n = n.fingers
let stored_items n = Hashtbl.length n.store

let sorted_live t =
  if t.dirty then begin
    let arr = Array.of_list (nodes t) in
    Array.sort (fun a b -> compare a.p_id b.p_id) arr;
    t.sorted <- arr;
    t.dirty <- false
  end;
  t.sorted

(* Oracle: the live owner of [id] — first live node clockwise at or after
   [id].  Used only by maintenance (finger refresh, successor repair), which
   models the outcome of the background stabilization protocol. *)
let oracle_successor t id =
  let arr = sorted_live t in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    (* Binary search for the first p_id >= id. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid).p_id >= id then hi := mid else lo := mid + 1
    done;
    Some (if !lo = n then arr.(0) else arr.(!lo))
  end

let refresh_fingers t node =
  for k = 0 to Id_space.bits - 1 do
    node.fingers.(k) <- oracle_successor t (Id_space.finger_start ~base:node.p_id k)
  done

let refresh_successor_list t node =
  let rec collect acc current k =
    if k = 0 then List.rev acc
    else collect (current.successor :: acc) current.successor (k - 1)
  in
  node.successor_list <- collect [] node t.successor_list_length

(* First live entry of the successor list, falling back to the node itself. *)
let first_live_successor node =
  let rec scan = function
    | [] -> node
    | s :: rest -> if s.alive then s else scan rest
  in
  if node.successor.alive then node.successor else scan node.successor_list

let ensure_fingers t =
  if t.fingers_dirty then begin
    t.fingers_dirty <- false;
    let live = nodes t in
    List.iter (refresh_fingers t) live;
    List.iter (refresh_successor_list t) live
  end

let closest_preceding_finger node id =
  let best = ref None in
  for k = Id_space.bits - 1 downto 0 do
    if !best = None then
      match node.fingers.(k) with
      | Some f when f.alive && f != node && Id_space.between f.p_id ~left:node.p_id ~right:id ->
        best := Some f
      | Some _ | None -> ()
  done;
  !best

let find_successor t ~from id =
  ensure_fingers t;
  let rec walk current acc steps =
    if steps > 4 * Id_space.bits then
      (* Stale pointers can in principle loop; bail out to the linear walk. *)
      let next = first_live_successor current in
      if Id_space.between_incl_right id ~left:current.p_id ~right:next.p_id then
        (next, List.rev (next :: acc))
      else walk_linear next (next :: acc)
    else begin
      let succ = first_live_successor current in
      if Id_space.between_incl_right id ~left:current.p_id ~right:succ.p_id then
        (succ, List.rev (succ :: acc))
      else
        match closest_preceding_finger current id with
        | Some f -> walk f (f :: acc) (steps + 1)
        | None -> walk succ (succ :: acc) (steps + 1)
    end
  and walk_linear current acc =
    let next = first_live_successor current in
    if Id_space.between_incl_right id ~left:current.p_id ~right:next.p_id then
      (next, List.rev (next :: acc))
    else walk_linear next (next :: acc)
  in
  walk from [ from ] 0

let default_introducer t =
  match List.rev t.join_order with
  | [] -> None
  | oldest :: _ -> Some oldest

(* Move every key owned by [new_node] (i.e. hashing into
   (predecessor(new), new]) from [source] to [new_node]. *)
let transfer_load ~source ~new_node =
  let left = match new_node.predecessor with Some p -> p.p_id | None -> new_node.p_id in
  let moved =
    Hashtbl.fold
      (fun key value acc ->
        let d_id = Key_hash.of_string key in
        if Id_space.between_incl_right d_id ~left ~right:new_node.p_id then
          (key, value) :: acc
        else acc)
      source.store []
  in
  List.iter
    (fun (key, value) ->
      Hashtbl.remove source.store key;
      Hashtbl.replace new_node.store key value)
    moved

let join ?introducer t ~host ~p_id =
  if not (Id_space.valid p_id) then invalid_arg "Ring.join: invalid p_id";
  if Hashtbl.mem t.by_id p_id then invalid_arg "Ring.join: duplicate p_id";
  let rec node =
    {
      host;
      p_id;
      successor = node;
      predecessor = None;
      successor_list = [];
      fingers = Array.make Id_space.bits None;
      store = Hashtbl.create 16;
      alive = true;
    }
  in
  let path =
    match (introducer, default_introducer t) with
    | (Some intro, _ | None, Some intro) ->
      let owner, path = find_successor t ~from:intro p_id in
      (* Insert between owner's predecessor and owner. *)
      let pred = match owner.predecessor with Some p -> p | None -> owner in
      node.successor <- owner;
      node.predecessor <- Some pred;
      pred.successor <- node;
      owner.predecessor <- Some node;
      transfer_load ~source:owner ~new_node:node;
      path
    | None, None ->
      node.successor <- node;
      node.predecessor <- Some node;
      []
  in
  Hashtbl.replace t.by_id p_id node;
  t.join_order <- node :: t.join_order;
  t.dirty <- true;
  t.fingers_dirty <- true;
  refresh_fingers t node;
  refresh_successor_list t node;
  trace_path t ~kind:"chord-join" ~label:(Printf.sprintf "#%d" host) path;
  (node, path)

let remove_from_membership t node =
  Hashtbl.remove t.by_id node.p_id;
  t.join_order <- List.filter (fun n -> n != node) t.join_order;
  t.dirty <- true

let remove_gracefully t node =
  remove_from_membership t node;
  t.fingers_dirty <- true

let leave t node =
  if not node.alive then invalid_arg "Ring.leave: node already left";
  node.alive <- false;
  remove_gracefully t node;
  if node.successor != node then begin
    let succ = node.successor in
    let pred = match node.predecessor with Some p -> p | None -> succ in
    (* Dump all data to the successor. *)
    Hashtbl.iter (fun key value -> Hashtbl.replace succ.store key value) node.store;
    Hashtbl.reset node.store;
    pred.successor <- succ;
    succ.predecessor <- Some (if pred.alive then pred else succ)
  end

let crash t node =
  if not node.alive then invalid_arg "Ring.crash: node already gone";
  node.alive <- false;
  Hashtbl.reset node.store;
  remove_from_membership t node

let store t ~from ~key ~value =
  let d_id = Key_hash.of_string key in
  let owner, path = find_successor t ~from d_id in
  Hashtbl.replace owner.store key value;
  trace_path t ~kind:"chord-store" ~label:key path;
  path

let lookup t ~from ~key =
  let d_id = Key_hash.of_string key in
  let owner, path = find_successor t ~from d_id in
  trace_path t ~kind:"chord-lookup" ~label:key path;
  (Hashtbl.find_opt owner.store key, path)

let stabilize t =
  t.fingers_dirty <- true;
  let live = nodes t in
  (* Successor repair: adopt the oracle's next live node (models successor
     lists resolving after crashes), then rectify predecessors. *)
  List.iter
    (fun n ->
      if not n.successor.alive || n.successor == n then begin
        match oracle_successor t (Id_space.add n.p_id 1) with
        | Some s -> n.successor <- s
        | None -> n.successor <- n
      end)
    live;
  List.iter
    (fun n ->
      let s = n.successor in
      match s.predecessor with
      | Some p when p.alive && p != s && not (Id_space.between n.p_id ~left:p.p_id ~right:s.p_id) -> ()
      | Some _ | None -> s.predecessor <- Some n)
    live;
  List.iter
    (fun n ->
      (match n.predecessor with
       | Some p when not p.alive ->
         n.predecessor <- (match oracle_successor t (Id_space.add n.p_id 1) with
                           | Some _ -> n.predecessor
                           | None -> None)
       | Some _ | None -> ());
      refresh_fingers t n;
      refresh_successor_list t n)
    live;
  (* Second predecessor pass now that successors are sane. *)
  List.iter
    (fun n ->
      match n.predecessor with
      | Some p when p.alive && p.successor == n -> ()
      | Some _ | None ->
        (* Find the live node whose successor is n. *)
        let pred = List.find_opt (fun m -> m.successor == n) live in
        (match pred with Some p -> n.predecessor <- Some p | None -> ())
    )
    live

let check_invariants t =
  ensure_fingers t;
  let arr = sorted_live t in
  let n = Array.length arr in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  if n = 0 then Ok ()
  else begin
    let rec check i =
      if i >= n then Ok ()
      else begin
        let node = arr.(i) in
        let expected_succ = arr.((i + 1) mod n) in
        let expected_pred = arr.((i + n - 1) mod n) in
        let* () =
          if node.successor == expected_succ || n = 1 then Ok ()
          else
            Error
              (Printf.sprintf "node %#x: successor %#x, expected %#x" node.p_id
                 node.successor.p_id expected_succ.p_id)
        in
        let* () =
          match node.predecessor with
          | Some p when p == expected_pred || n = 1 -> Ok ()
          | Some p ->
            Error
              (Printf.sprintf "node %#x: predecessor %#x, expected %#x" node.p_id
                 p.p_id expected_pred.p_id)
          | None -> Error (Printf.sprintf "node %#x: no predecessor" node.p_id)
        in
        let finger_err = ref None in
        for k = 0 to Id_space.bits - 1 do
          if !finger_err = None then begin
            let start = Id_space.finger_start ~base:node.p_id k in
            let expected = oracle_successor t start in
            match (node.fingers.(k), expected) with
            | Some f, Some e when f == e -> ()
            | _, None -> ()
            | Some f, Some e ->
              finger_err :=
                Some
                  (Printf.sprintf "node %#x: finger %d is %#x, expected %#x"
                     node.p_id k f.p_id e.p_id)
            | None, Some e ->
              finger_err :=
                Some
                  (Printf.sprintf "node %#x: finger %d empty, expected %#x"
                     node.p_id k e.p_id)
          end
        done;
        let* () = match !finger_err with Some e -> Error e | None -> Ok () in
        check (i + 1)
      end
    in
    check 0
  end

let successor_list_length t = t.successor_list_length
