(* Tests for the replication & anti-entropy durability layer
   (lib/replication): placement policy, write-path fan-out, read-path
   fallback, crash survival through heal, the replication_factor audit
   check, and digest-based anti-entropy convergence. *)

open Helpers
module Data_store = Hybrid_p2p.Data_store
module Policy = P2p_replication.Policy
module Manager = P2p_replication.Manager
module Registry = P2p_obs.Registry
module Metrics = P2p_net.Metrics
module Checks = P2p_audit.Checks
module Chord = P2p_chord.Ring
module Scenario = P2p_scenario.Scenario

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let r_config ?(placement = Config.Ring_successors) r =
  { default_config with Config.replication_factor = r; replica_placement = placement }

(* A settled replicated system: star underlay, manager installed before
   any data exists so every insert fans out. *)
let replicated_system ?placement ?(seed = 60) ~n ~ps ~r () =
  let h, members = star_system ~config:(r_config ?placement r) ~seed ~n ~ps () in
  let m = Manager.install (H.world h) in
  (h, members, m)

let replication_counter h name =
  let reg = Metrics.registry (H.metrics h) in
  Registry.counter_value (Registry.counter reg ~subsystem:"replication" ~name)

let run_replication_check h =
  match Checks.find "replication_factor" with
  | None -> Alcotest.fail "replication_factor check missing from catalogue"
  | Some c -> Checks.run c (H.world h)

let check_clean h =
  match (run_replication_check h).Checks.violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.fail
      (Format.asprintf "replication_factor violated: %a" Checks.pp_violation v)

let replica_copy_count h key =
  List.length (List.filter (fun p -> Data_store.mem p.Peer.replicas ~key) (H.peers h))

let primary_holder h key =
  List.find (fun p -> Data_store.mem p.Peer.store ~key) (H.peers h)

(* --- config ------------------------------------------------------------ *)

let test_config_validation () =
  checkb "default valid" true (Result.is_ok (Config.validate Config.default));
  checkb "r = 2 valid" true (Result.is_ok (Config.validate (r_config 2)));
  checkb "negative factor rejected" true
    (Result.is_error
       (Config.validate { default_config with Config.replication_factor = -1 }));
  checkb "zero anti-entropy interval rejected" true
    (Result.is_error
       (Config.validate { default_config with Config.anti_entropy_interval = 0.0 }));
  checkb "zero successor list rejected" true
    (Result.is_error
       (Config.validate { default_config with Config.successor_list_length = 0 }))

(* --- placement policy -------------------------------------------------- *)

let test_ring_policy_targets () =
  let h, _, _ = replicated_system ~seed:61 ~n:60 ~ps:0.7 ~r:2 () in
  let w = H.world h in
  let t_count = Array.length (World.t_peers w) in
  List.iter
    (fun p ->
      let targets = Policy.targets w ~primary:p in
      checki "ring targets" (min 2 (t_count - 1)) (List.length targets);
      checkb "never the primary" false (List.memq p targets);
      List.iter
        (fun tg ->
          checkb "target is a live t-peer" true (Peer.is_t_peer tg && tg.Peer.alive))
        targets;
      checki "targets distinct" (List.length targets)
        (List.length (List.sort_uniq compare (List.map (fun t -> t.Peer.host) targets))))
    (H.peers h)

let test_tree_policy_targets () =
  let h, _, _ =
    replicated_system ~placement:Config.Tree_neighbors ~seed:62 ~n:60 ~ps:0.8 ~r:2 ()
  in
  let w = H.world h in
  List.iter
    (fun p ->
      let targets = Policy.targets w ~primary:p in
      checkb "at most r targets" true (List.length targets <= 2);
      checkb "never the primary" false (List.memq p targets);
      let neighbors = Peer.tree_neighbors p in
      List.iter
        (fun tg ->
          checkb "target is a live tree neighbor" true
            (tg.Peer.alive && List.memq tg neighbors))
        targets)
    (H.peers h)

(* --- write-path fan-out ------------------------------------------------ *)

let test_fanout_on_insert () =
  let h, _, _ = replicated_system ~seed:63 ~n:60 ~ps:0.7 ~r:2 () in
  let keys = insert_items h ~count:100 in
  let w = H.world h in
  List.iter
    (fun key ->
      let primary = primary_holder h key in
      let expected = min 2 (Policy.expected_copies w ~primary) in
      checki (Printf.sprintf "copies of %s" key) expected (replica_copy_count h key))
    keys;
  checkb "copies_written counted" true (replication_counter h "copies_written" > 0);
  check_clean h

let test_fanout_tree_placement () =
  let h, _, _ =
    replicated_system ~placement:Config.Tree_neighbors ~seed:64 ~n:60 ~ps:0.8 ~r:2 ()
  in
  ignore (insert_items h ~count:100 : string list);
  checkb "copies_written counted" true (replication_counter h "copies_written" > 0);
  check_clean h

(* --- read-path fallback ------------------------------------------------ *)

let test_read_falls_back_to_replica () =
  let h, _, _ = replicated_system ~seed:65 ~n:60 ~ps:0.7 ~r:2 () in
  ignore (insert_items h ~count:50 : string list);
  let key = "item-00007" in
  let holder = primary_holder h key in
  Data_store.remove holder.Peer.store ~key;
  (* query from a different s-network, from a peer not holding a copy *)
  let from =
    List.find
      (fun p ->
        Option.get p.Peer.t_home != Option.get holder.Peer.t_home
        && not (Data_store.mem p.Peer.replicas ~key))
      (H.peers h)
  in
  let r = lookup_sync h ~from ~key () in
  checkb "found via replica" true (found r);
  checkb "replica_hits counted" true (replication_counter h "replica_hits" > 0)

(* --- crash survival ---------------------------------------------------- *)

let test_crash_waves_lose_nothing () =
  let h, _, _ = replicated_system ~seed:66 ~n:100 ~ps:0.7 ~r:2 () in
  ignore (insert_items h ~count:400 : string list);
  let before = H.total_items h in
  checki "all inserted" 400 before;
  (* two 10% waves with a repair (and its heal) between.  [H.peers] is in
     ascending host order, so the stride is a deterministic victim draw;
     offset 5 is a draw in which no item loses its primary and both ring
     replicas inside one wave (such triple-kills are legitimately beyond
     r = 2, not a durability bug). *)
  for _ = 1 to 2 do
    let victims = List.filteri (fun i _ -> i mod 10 = 5) (H.peers h) in
    List.iter (H.crash h) victims;
    H.repair h;
    H.run h
  done;
  checki "no items lost" before (H.total_items h);
  ok_invariants h;
  check_clean h;
  checkb "promotions or re-replications happened" true
    (replication_counter h "promoted" + replication_counter h "re_replicated" > 0)

let test_baseline_r0_loses_data () =
  (* the same storm without replication loses items — the layer, not the
     storm, is what the previous test measures *)
  let h, _, _ = replicated_system ~seed:66 ~n:100 ~ps:0.7 ~r:0 () in
  ignore (insert_items h ~count:400 : string list);
  let before = H.total_items h in
  let victims = List.filteri (fun i _ -> i mod 10 = 5) (H.peers h) in
  List.iter (H.crash h) victims;
  H.repair h;
  H.run h;
  checkb "r = 0 loses items" true (H.total_items h < before)

(* --- audit check & heal ------------------------------------------------ *)

let test_dropped_replica_flagged_then_healed () =
  let h, _, m = replicated_system ~seed:67 ~n:60 ~ps:0.7 ~r:2 () in
  ignore (insert_items h ~count:100 : string list);
  check_clean h;
  let key = "item-00042" in
  let holder = List.find (fun p -> Data_store.mem p.Peer.replicas ~key) (H.peers h) in
  Data_store.remove holder.Peer.replicas ~key;
  let status = run_replication_check h in
  checkb "dropped copy flagged" true (status.Checks.violations <> []);
  Manager.heal m;
  H.run h;
  check_clean h;
  let w = H.world h in
  let expected = min 2 (Policy.expected_copies w ~primary:(primary_holder h key)) in
  checki "factor restored" expected (replica_copy_count h key)

(* --- anti-entropy ------------------------------------------------------ *)

let test_anti_entropy_converges () =
  let h, _, m = replicated_system ~seed:68 ~n:60 ~ps:0.7 ~r:2 () in
  ignore (insert_items h ~count:100 : string list);
  (* corrupt one replica store: drop a real copy, plant a stale one in
     the same ring segment *)
  let holder, (key, _, route_id) =
    List.filter_map
      (fun p ->
        let triple = ref None in
        Data_store.iter p.Peer.replicas (fun ~key ~value ~route_id ->
            if !triple = None then triple := Some (key, value, route_id));
        Option.map (fun t -> (p, t)) !triple)
      (H.peers h)
    |> List.hd
  in
  Data_store.remove holder.Peer.replicas ~key;
  Data_store.insert_routed holder.Peer.replicas ~route_id ~key:"bogus-stale-copy"
    ~value:"x";
  Manager.anti_entropy_round m;
  H.run h;
  checkb "missing copy restored" true (Data_store.mem holder.Peer.replicas ~key);
  checkb "stale copy pruned" false
    (Data_store.mem holder.Peer.replicas ~key:"bogus-stale-copy");
  checkb "mismatch counted" true (replication_counter h "digest_mismatches" > 0);
  checkb "prune counted" true (replication_counter h "stale_pruned" > 0);
  check_clean h

let test_anti_entropy_round_quiet_when_synced () =
  let h, _, m = replicated_system ~seed:69 ~n:40 ~ps:0.6 ~r:1 () in
  ignore (insert_items h ~count:50 : string list);
  Manager.anti_entropy_round m;
  H.run h;
  checki "no mismatches on a synced system" 0
    (replication_counter h "digest_mismatches");
  check_clean h

(* --- digests ----------------------------------------------------------- *)

let test_digest_order_independent () =
  let a = ("k1", "v1", 100) and b = ("k2", "v2", 200) in
  checki "order independent" (Data_store.digest_items [ a; b ])
    (Data_store.digest_items [ b; a ]);
  checkb "value change detected" true
    (Data_store.digest_items [ a ] <> Data_store.digest_items [ ("k1", "v9", 100) ]);
  checkb "count term distinguishes empty" true
    (Data_store.digest_items [] <> Data_store.digest_items [ a ])

(* --- scenario integration (timer bracket + no-loss) -------------------- *)

let test_scenario_anti_entropy_action () =
  let h = H.create_star ~seed:70 ~peers:400 ~config:(r_config 2) () in
  let report =
    Scenario.run h ~seed:70
      ~script:
        [ Scenario.Join_many (40, 0.7); Scenario.Insert_items 150; Scenario.Settle;
          Scenario.Crash_fraction 0.1; Scenario.Repair;
          Scenario.Anti_entropy 2_000.0; Scenario.Lookup_items 100; Scenario.Settle ]
  in
  checkb "invariants hold" true (Result.is_ok report.Scenario.invariants);
  checki "no items lost" report.Scenario.inserted report.Scenario.final_items;
  checki "all lookups succeed" 100 report.Scenario.lookups_ok

(* --- successor list length (chord baseline) ---------------------------- *)

let test_successor_list_length () =
  let ring = Chord.create ~successor_list_length:5 () in
  checki "explicit length" 5 (Chord.successor_list_length ring);
  checki "default length" 8 (Chord.successor_list_length (Chord.create ()));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Ring.create: successor_list_length must be >= 1") (fun () ->
      ignore (Chord.create ~successor_list_length:0 () : Chord.t))

let suite =
  [
    Alcotest.test_case "config: durability fields validated" `Quick
      test_config_validation;
    Alcotest.test_case "policy: ring successors" `Quick test_ring_policy_targets;
    Alcotest.test_case "policy: tree neighbors" `Quick test_tree_policy_targets;
    Alcotest.test_case "fan-out: every insert replicated" `Quick test_fanout_on_insert;
    Alcotest.test_case "fan-out: tree placement" `Quick test_fanout_tree_placement;
    Alcotest.test_case "read: replica fallback serves lost primary" `Quick
      test_read_falls_back_to_replica;
    Alcotest.test_case "crash: waves + heal lose nothing (r=2)" `Quick
      test_crash_waves_lose_nothing;
    Alcotest.test_case "crash: r=0 baseline loses data" `Quick
      test_baseline_r0_loses_data;
    Alcotest.test_case "audit: dropped copy flagged then healed" `Quick
      test_dropped_replica_flagged_then_healed;
    Alcotest.test_case "anti-entropy: restores and prunes" `Quick
      test_anti_entropy_converges;
    Alcotest.test_case "anti-entropy: quiet when synced" `Quick
      test_anti_entropy_round_quiet_when_synced;
    Alcotest.test_case "digest: order-independent set hash" `Quick
      test_digest_order_independent;
    Alcotest.test_case "scenario: anti-entropy action, no loss" `Quick
      test_scenario_anti_entropy_action;
    Alcotest.test_case "chord: successor list length configurable" `Quick
      test_successor_list_length;
  ]
