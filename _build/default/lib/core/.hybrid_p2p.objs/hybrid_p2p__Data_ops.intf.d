lib/core/data_ops.mli: P2p_hashspace Peer World
