(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)].  The sequence number is
    a monotonically increasing tie-breaker so that two events scheduled for
    the same instant fire in scheduling order — this keeps simulations
    deterministic.  Cancellation is lazy: a cancelled event stays in the heap
    until it reaches the top and is then discarded — but when cancelled
    entries outnumber live ones the whole heap is compacted in one pass
    (amortized O(1) per cancellation), so timer-heavy churn cannot leak
    heap slots indefinitely. *)

type 'a t

(** Handle to a scheduled event, usable for cancellation. *)
type handle

(** [create ?tick ()] makes an empty queue.  [tick] is the sequence
    counter used to stamp insertions; passing the same ref to several
    queues gives their entries one global scheduling order, which is how
    the engine's per-lane queues stay mergeable into a single
    deterministic timeline (see {!peek_key}). *)
val create : ?tick:int ref -> unit -> 'a t

(** [add t ~time v] schedules [v] at [time] and returns its handle. *)
val add : 'a t -> time:float -> 'a -> handle

(** [cancel h] marks the event dead; it will never be returned by
    [pop].  Cancelling twice is harmless. *)
val cancel : handle -> unit

(** [cancelled h] is [true] iff [h] has been cancelled. *)
val cancelled : handle -> bool

(** [pop t] removes and returns the earliest live event as
    [Some (time, v)], or [None] if the queue holds no live event. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time t] is the timestamp of the earliest live event, if any.
    Dead events at the front are discarded as a side effect. *)
val peek_time : 'a t -> float option

(** [peek_key t] is the [(time, sequence)] ordering key of the earliest
    live event, if any.  Comparing keys across queues that share a [tick]
    counter yields the exact order a single merged queue would have
    produced — the conservative merge primitive of the engine's event
    lanes.  Dead events at the front are discarded as a side effect. *)
val peek_key : 'a t -> (float * int) option

(** [is_empty t] is [true] iff no live event remains.  Dead events at the
    front are discarded as a side effect. *)
val is_empty : 'a t -> bool

(** [live_length t] counts live events (O(1): the queue tracks its
    cancelled-but-present population). *)
val live_length : 'a t -> int

(** [length t] is the physical heap size — live plus not-yet-collected
    cancelled events (O(1)).  An upper bound on {!live_length}; as long
    as scheduling continues, insertion-time compaction keeps it within
    ~2× the live population plus a constant.  Cheap enough for per-event
    queue-depth profiling. *)
val length : 'a t -> int
