module Ascii_plot = P2p_stats.Ascii_plot

type hist = {
  count : int;
  mean : float;
  stddev : float;
  min_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  bins : (float * int) list;
}

type loghist = {
  l_count : int;
  l_sum : float;
  l_min : float;
  l_max : float;
  l_p50 : float;
  l_p90 : float;
  l_p95 : float;
  l_p99 : float;
  l_p999 : float;
}

type metric = Counter of int | Gauge of float | Histogram of hist | LogHist of loghist

type t = (string * (string * metric) list) list

let float_field json name =
  Option.value ~default:0.0 (Option.bind (Json.member name json) Json.to_float)

let hist_of_json json =
  let bins =
    match Option.bind (Json.member "bins" json) Json.to_list with
    | None -> []
    | Some items ->
      List.filter_map
        (fun item ->
          match
            ( Option.bind (Json.member "lo" item) Json.to_float,
              Option.bind (Json.member "count" item) Json.to_int )
          with
          | Some lo, Some count -> Some (lo, count)
          | _ -> None)
        items
  in
  {
    count = Option.value ~default:0 (Option.bind (Json.member "count" json) Json.to_int);
    mean = float_field json "mean";
    stddev = float_field json "stddev";
    min_v = float_field json "min";
    p50 = float_field json "p50";
    p90 = float_field json "p90";
    p99 = float_field json "p99";
    max_v = float_field json "max";
    bins;
  }

let loghist_of_json json =
  {
    l_count = Option.value ~default:0 (Option.bind (Json.member "count" json) Json.to_int);
    l_sum = float_field json "sum";
    l_min = float_field json "min";
    l_max = float_field json "max";
    l_p50 = float_field json "p50";
    l_p90 = float_field json "p90";
    l_p95 = float_field json "p95";
    l_p99 = float_field json "p99";
    l_p999 = float_field json "p999";
  }

let metric_of_json json =
  match Option.bind (Json.member "kind" json) Json.to_str with
  | Some "counter" -> (
    match Option.bind (Json.member "value" json) Json.to_int with
    | Some v -> Ok (Counter v)
    | None -> Error "counter without integer \"value\"")
  | Some "gauge" -> (
    match Option.bind (Json.member "value" json) Json.to_float with
    | Some v -> Ok (Gauge v)
    | None -> Error "gauge without numeric \"value\"")
  | Some "histogram" -> Ok (Histogram (hist_of_json json))
  | Some "log_histogram" -> Ok (LogHist (loghist_of_json json))
  | Some kind -> Error (Printf.sprintf "unknown metric kind %S" kind)
  | None -> Error "metric without \"kind\""

let of_json json =
  match json with
  | Json.Obj subsystems ->
    let rec subsystem_list acc = function
      | [] -> Ok (List.rev acc)
      | (subsystem, Json.Obj fields) :: rest ->
        let rec metric_list macc = function
          | [] -> Ok (List.rev macc)
          | (name, mjson) :: mrest -> (
            match metric_of_json mjson with
            | Ok m -> metric_list ((name, m) :: macc) mrest
            | Error e -> Error (Printf.sprintf "%s/%s: %s" subsystem name e))
        in
        (match metric_list [] fields with
         | Ok metrics -> subsystem_list ((subsystem, metrics) :: acc) rest
         | Error _ as e -> e)
      | (subsystem, _) :: _ ->
        Error (Printf.sprintf "subsystem %S is not an object" subsystem)
    in
    subsystem_list [] subsystems
  | _ -> Error "metrics document must be a JSON object"

let of_string text =
  match Json.parse text with
  | Error msg -> Error ("JSON parse error: " ^ msg)
  | Ok json -> of_json json

let of_registry registry =
  match of_json (Registry.to_json registry) with
  | Ok report -> report
  | Error msg ->
    (* to_json always produces the schema of_json reads *)
    invalid_arg ("Report.of_registry: " ^ msg)

let render_histogram buf name h =
  Buffer.add_string buf
    (Printf.sprintf "  %-28s n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n"
       name h.count h.mean h.stddev h.min_v h.p50 h.p90 h.p99 h.max_v);
  if h.bins <> [] && h.count > 1 then begin
    let bars =
      List.map (fun (lo, count) -> (Printf.sprintf "%10.2f" lo, float_of_int count)) h.bins
    in
    let chart = Ascii_plot.histogram ~bars () in
    String.split_on_char '\n' chart
    |> List.iter (fun line ->
           if line <> "" then Buffer.add_string buf ("    " ^ line ^ "\n"))
  end

let strip_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  if l > ls && String.sub s (l - ls) ls = suffix then Some (String.sub s 0 (l - ls))
  else None

(* The ["audit"] subsystem renders as a per-check health table instead of
   a raw metric dump: the auditor writes a [<check>_violations] counter
   and a [<check>_last_run_ms] freshness gauge per invariant check, which
   pair up into OK / VIOLATED rows.  Metrics that follow neither naming
   convention (the health gauges — load balance, peers in transit, ...)
   print as usual below the table, so nothing in the file is hidden. *)
let render_health buf metrics =
  Buffer.add_string buf "== health (audit) ==\n";
  (match List.assoc_opt "ticks" metrics with
   | Some (Counter n) -> Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" "audit ticks" n)
   | _ -> ());
  List.iter
    (fun (name, metric) ->
      match (metric, strip_suffix ~suffix:"_violations" name) with
      | Counter v, Some check ->
        let verdict = if v = 0 then "OK" else Printf.sprintf "VIOLATED (%d)" v in
        let freshness =
          match List.assoc_opt (check ^ "_last_run_ms") metrics with
          | Some (Gauge t) -> Printf.sprintf "  last run %g ms" t
          | _ -> ""
        in
        Buffer.add_string buf (Printf.sprintf "  %-20s %-14s%s\n" check verdict freshness)
      | _ -> ())
    metrics;
  List.iter
    (fun (name, metric) ->
      match metric with
      | Gauge v
        when name <> "ticks"
             && strip_suffix ~suffix:"_last_run_ms" name = None
             && strip_suffix ~suffix:"_violations" name = None ->
        Buffer.add_string buf (Printf.sprintf "  %-28s %g\n" name v)
      | _ -> ())
    metrics;
  Buffer.add_char buf '\n'

let render_loghist_line buf name l =
  if l.l_count = 0 then
    Buffer.add_string buf (Printf.sprintf "  %-28s (empty)\n" name)
  else
    Buffer.add_string buf
      (Printf.sprintf "  %-28s %8d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n" name
         l.l_count l.l_p50 l.l_p90 l.l_p95 l.l_p99 l.l_p999 l.l_max)

(* "<kind>_tier_<tier>_ms" -> (kind, tier) *)
let split_tier_gauge name =
  match strip_suffix ~suffix:"_ms" name with
  | None -> None
  | Some stem ->
    let marker = "_tier_" in
    let ml = String.length marker and n = String.length stem in
    let rec scan i =
      if i + ml > n then None
      else if String.sub stem i ml = marker then
        Some (String.sub stem 0 i, String.sub stem (i + ml) (n - i - ml))
      else scan (i + 1)
    in
    scan 0

(* The ["latency"] subsystem (written by the span analyzer) renders as a
   percentile table over the log-bucketed histograms plus a per-tier
   critical-path attribution line per op kind.  Attribution percentages
   are relative to the summed total latency of that kind, so the listed
   tiers visibly account for <= 100% of where the time went. *)
let render_latency buf metrics =
  Buffer.add_string buf "== latency ==\n";
  (match List.assoc_opt "ops_analyzed" metrics with
   | Some (Counter n) ->
     Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" "ops analyzed" n)
   | _ -> ());
  let rows =
    List.filter_map
      (fun (name, metric) ->
        match metric with
        | LogHist l when l.l_count > 0 -> Some (name, l)
        | _ -> None)
      metrics
  in
  if rows <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  %-28s %8s %9s %9s %9s %9s %9s %9s\n" "metric" "n" "p50"
         "p90" "p95" "p99" "p99.9" "max");
    List.iter (fun (name, l) -> render_loghist_line buf name l) rows
  end;
  let tiers =
    List.filter_map
      (fun (name, metric) ->
        match metric with
        | Gauge v -> (
          match split_tier_gauge name with
          | Some (kind, tier) -> Some (kind, (tier, v))
          | None -> None)
        | _ -> None)
      metrics
  in
  let kinds =
    List.fold_left
      (fun acc (kind, _) -> if List.mem kind acc then acc else acc @ [ kind ])
      [] tiers
  in
  List.iter
    (fun kind ->
      let parts = List.filter_map
          (fun (k, tv) -> if k = kind then Some tv else None)
          tiers
      in
      let total_ms =
        match List.assoc_opt (kind ^ "_total_ms") metrics with
        | Some (LogHist l) when l.l_sum > 0.0 -> Some l.l_sum
        | _ -> None
      in
      let part_str (tier, ms) =
        match total_ms with
        | Some total ->
          Printf.sprintf "%s %.1f ms (%.1f%%)" tier ms (100.0 *. ms /. total)
        | None -> Printf.sprintf "%s %.1f ms" tier ms
      in
      Buffer.add_string buf
        (Printf.sprintf "  critical path (%s): %s%s\n" kind
           (String.concat ", " (List.map part_str parts))
           (match total_ms with
            | Some total -> Printf.sprintf " of %.1f ms total" total
            | None -> "")))
    kinds;
  Buffer.add_char buf '\n'

(* The ["gc"] subsystem renders as a one-line runtime header at the very
   top of the report — the allocation rate is the hot-path signal every
   workflow should see without asking — and is skipped in the body so it
   does not repeat itself. *)
let render_runtime_header buf metrics =
  let value name =
    match List.assoc_opt name metrics with Some (Gauge v) -> Some v | _ -> None
  in
  let part fmt name = Option.map (Printf.sprintf fmt) (value name) in
  let parts =
    List.filter_map Fun.id
      [
        part "alloc %.1f MB/s" "alloc_rate_mb_s";
        part "heap %.1f MB" "heap_mb";
        part "minor gcs %.0f" "minor_collections";
        part "major gcs %.0f" "major_collections";
        part "compactions %.0f" "compactions";
      ]
  in
  if parts <> [] then
    Buffer.add_string buf ("runtime: " ^ String.concat " | " parts ^ "\n\n")

(* The ["lanes"] subsystem (written by the engine-stats fold on sharded
   engines) renders as a per-lane occupancy table: lane<i>_{executed,
   pending,high_water,stalls} gauges become one row per lane, plus the
   imbalance summary line. *)
let render_lanes buf metrics =
  Buffer.add_string buf "== lanes ==\n";
  let value name =
    match List.assoc_opt name metrics with Some (Gauge v) -> Some v | _ -> None
  in
  let get i suffix = value (Printf.sprintf "lane%d_%s" i suffix) in
  Buffer.add_string buf
    (Printf.sprintf "  %4s %12s %10s %12s %8s\n" "lane" "executed" "pending"
       "high-water" "stalls");
  let rec row i =
    match get i "executed" with
    | None -> ()
    | Some executed ->
      let f suffix = Option.value ~default:0.0 (get i suffix) in
      Buffer.add_string buf
        (Printf.sprintf "  %4d %12.0f %10.0f %12.0f %8.0f\n" i executed
           (f "pending") (f "high_water") (f "stalls"));
      row (i + 1)
  in
  row 0;
  (match value "imbalance" with
   | Some v ->
     Buffer.add_string buf
       (Printf.sprintf "  imbalance (max/mean executed)  %.2f\n" v)
   | None -> ());
  Buffer.add_char buf '\n'

let render report =
  let buf = Buffer.create 1024 in
  (match List.assoc_opt "gc" report with
   | Some metrics -> render_runtime_header buf metrics
   | None -> ());
  List.iter
    (fun (subsystem, metrics) ->
      if subsystem = "gc" then ()
      else if subsystem = "audit" then render_health buf metrics
      else if subsystem = "latency" then render_latency buf metrics
      else if subsystem = "lanes" then render_lanes buf metrics
      else begin
        Buffer.add_string buf (Printf.sprintf "== %s ==\n" subsystem);
        (* counters and gauges first, aligned; histograms after with charts *)
        List.iter
          (fun (name, metric) ->
            match metric with
            | Counter v -> Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" name v)
            | Gauge v -> Buffer.add_string buf (Printf.sprintf "  %-28s %g\n" name v)
            | Histogram _ | LogHist _ -> ())
          metrics;
        List.iter
          (fun (name, metric) ->
            match metric with
            | Histogram h -> render_histogram buf name h
            | LogHist l ->
              if l.l_count > 0 then
                Buffer.add_string buf
                  (Printf.sprintf
                     "  %-28s n=%d p50=%.3f p95=%.3f p99=%.3f max=%.3f\n" name
                     l.l_count l.l_p50 l.l_p95 l.l_p99 l.l_max)
            | Counter _ | Gauge _ -> ())
          metrics;
        Buffer.add_char buf '\n'
      end)
    report;
  Buffer.contents buf

(* --- timeline sparklines --- *)

let spark_glyphs = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}"; "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let spark values =
  match values with
  | [] -> ""
  | _ ->
    let mx = List.fold_left Float.max 0.0 values in
    let glyph v =
      if mx <= 0.0 then spark_glyphs.(0)
      else
        spark_glyphs.(Stdlib.min 7 (Stdlib.max 0 (int_of_float (v /. mx *. 8.0))))
    in
    String.concat "" (List.map glyph values)

(* Average runs of samples down to [width] columns so a long run's
   timeline still fits a terminal row. *)
let downsample ~width values =
  let n = List.length values in
  if n <= width then values
  else begin
    let arr = Array.of_list values in
    List.init width (fun c ->
        let lo = c * n / width and hi = Stdlib.max 1 ((c + 1) * n / width) in
        let hi = Stdlib.max hi (lo + 1) in
        let sum = ref 0.0 in
        for i = lo to hi - 1 do
          sum := !sum +. arr.(i)
        done;
        !sum /. float_of_int (hi - lo))
  end

(* Render a sampler timeline (JSONL of {"t","counters","gauges"}) as one
   sparkline per active series: counters plot per-interval increments
   (activity rate), gauges plot raw values; flat series are skipped. *)
let render_timeline text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line line =
    Result.bind (Json.parse line) (fun json ->
        match Option.bind (Json.member "t" json) Json.to_float with
        | Some t -> Ok (t, json)
        | None -> Error "timeline line without numeric \"t\"")
  in
  let rec parse acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok sample -> parse (sample :: acc) (lineno + 1) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  match parse [] 1 lines with
  | Error _ as e -> e
  | Ok [] -> Ok "== timeline ==\n  (no samples)\n"
  | Ok samples ->
    let series_of section =
      (* key -> values in sample order, missing samples as 0 *)
      let keys = ref [] in
      List.iter
        (fun (_, json) ->
          match Json.member section json with
          | Some (Json.Obj fields) ->
            List.iter
              (fun (k, _) -> if not (List.mem k !keys) then keys := !keys @ [ k ])
              fields
          | _ -> ())
        samples;
      List.map
        (fun key ->
          ( key,
            List.map
              (fun (_, json) ->
                match Option.bind (Json.member section json) (Json.member key) with
                | Some v -> Option.value ~default:0.0 (Json.to_float v)
                | None -> 0.0)
              samples ))
        !keys
    in
    let deltas values =
      match values with
      | [] -> []
      | first :: _ ->
        let prev = ref first in
        List.map
          (fun v ->
            let d = Float.max 0.0 (v -. !prev) in
            prev := v;
            d)
          values
    in
    let buf = Buffer.create 1024 in
    let times = List.map fst samples in
    let t0 = List.fold_left Float.min infinity times
    and t1 = List.fold_left Float.max neg_infinity times in
    Buffer.add_string buf
      (Printf.sprintf "== timeline (%d samples, %.0f..%.0f ms) ==\n"
         (List.length samples) t0 t1);
    let emit label values =
      let mx = List.fold_left Float.max 0.0 values
      and mn = List.fold_left Float.min infinity values in
      if mx > mn || mx > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %s  max %g\n" label
             (spark (downsample ~width:60 values))
             mx)
    in
    List.iter
      (fun (key, values) -> emit (key ^ " (rate)") (deltas values))
      (series_of "counters");
    List.iter (fun (key, values) -> emit key values) (series_of "gauges");
    Ok (Buffer.contents buf)
