type handle = {
  mutable dead : bool;
  mutable queued : bool;  (* still physically present in some heap slot *)
  dead_count : int ref;  (* shared with the owning queue *)
}

(* Entries are mutable and recycled through a bounded pool; event times
   live in a parallel [float array] so they stay unboxed (a mixed
   float/pointer record would box the float on every insertion). *)
type 'a entry = {
  mutable seq : int;
  mutable value : 'a;
  mutable handle : handle;
}

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap]/[times] slots at index >= size are physical garbage kept only
     to satisfy the array type. *)
  mutable times : float array;
  mutable size : int;
  tick : int ref;
  dead_in_heap : int ref;  (* cancelled entries still occupying slots *)
  immortal : handle;  (* shared handle for never-cancelled events *)
  mutable pool : 'a entry array;
  mutable pool_len : int;
  mutable pending : int;  (* appended but not yet sifted (batch mode) *)
}

(* Bounds how many popped entries (and thus stale ['a] references) a
   queue retains for reuse. *)
let pool_cap = 1024

let create ?tick () =
  let tick = match tick with Some t -> t | None -> ref 0 in
  let dead_in_heap = ref 0 in
  {
    heap = [||];
    times = [||];
    size = 0;
    tick;
    dead_in_heap;
    immortal = { dead = false; queued = false; dead_count = dead_in_heap };
    pool = [||];
    pool_len = 0;
    pending = 0;
  }

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.heap.(i).seq < t.heap.(j).seq)

let swap t i j =
  let e = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- e;
  let x = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- x

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let heap = Array.make new_cap entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap;
    let times = Array.make new_cap 0.0 in
    Array.blit t.times 0 times 0 t.size;
    t.times <- times
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let recycle t e =
  e.handle <- t.immortal;  (* never retain a cancellable handle *)
  if t.pool_len < pool_cap then begin
    let cap = Array.length t.pool in
    if t.pool_len = cap then begin
      let pool = Array.make (min pool_cap (max 16 (cap * 2))) e in
      Array.blit t.pool 0 pool 0 t.pool_len;
      t.pool <- pool
    end;
    t.pool.(t.pool_len) <- e;
    t.pool_len <- t.pool_len + 1
  end

let take_entry t ~value ~handle =
  let seq = !(t.tick) in
  t.tick := seq + 1;
  if t.pool_len > 0 then begin
    t.pool_len <- t.pool_len - 1;
    let e = t.pool.(t.pool_len) in
    e.seq <- seq;
    e.value <- value;
    e.handle <- handle;
    e
  end
  else { seq; value; handle }

(* Squeeze every cancelled entry out in one pass and re-heapify.  Lazy
   cancellation only frees dead events when they surface at the root, so
   timer-heavy churn (watchdog resets, anti-entropy rearming) would
   otherwise keep arbitrarily many dead slots alive in the middle of the
   heap.  The full heapify also validates any pending batch suffix. *)
let compact t =
  let live = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    if e.handle.dead then begin
      e.handle.queued <- false;
      recycle t e
    end
    else begin
      t.heap.(!live) <- e;
      t.times.(!live) <- t.times.(i);
      incr live
    end
  done;
  t.size <- !live;
  t.dead_in_heap := 0;
  t.pending <- 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let maybe_compact t = if t.size >= 16 && 2 * !(t.dead_in_heap) > t.size then compact t

let flush_batch t =
  let k = t.pending in
  if k > 0 then begin
    t.pending <- 0;
    (* Large batch relative to the heap: one bottom-up heapify is O(size)
       and beats k * O(log size) sifts.  Small batch: sift each appended
       element up in append order, which is exactly the deferred inserts. *)
    if k * 4 >= t.size then
      for i = (t.size / 2) - 1 downto 0 do
        sift_down t i
      done
    else
      for i = t.size - k to t.size - 1 do
        sift_up t i
      done;
    maybe_compact t
  end

(* Every operation that reads the root must see a valid heap. *)
let ensure t = if t.pending > 0 then flush_batch t

let append t ~time entry =
  grow t entry;
  t.heap.(t.size) <- entry;
  t.times.(t.size) <- time;
  t.size <- t.size + 1

let add t ~time value =
  ensure t;
  let handle = { dead = false; queued = true; dead_count = t.dead_in_heap } in
  let entry = take_entry t ~value ~handle in
  maybe_compact t;
  append t ~time entry;
  sift_up t (t.size - 1);
  handle

let add_fast t ~time value =
  ensure t;
  let entry = take_entry t ~value ~handle:t.immortal in
  maybe_compact t;
  append t ~time entry;
  sift_up t (t.size - 1)

let batch_add t ~time value =
  let handle = { dead = false; queued = true; dead_count = t.dead_in_heap } in
  let entry = take_entry t ~value ~handle in
  append t ~time entry;
  t.pending <- t.pending + 1;
  handle

let batch_add_fast t ~time value =
  let entry = take_entry t ~value ~handle:t.immortal in
  append t ~time entry;
  t.pending <- t.pending + 1

let cancel h =
  if not h.dead then begin
    h.dead <- true;
    if h.queued then incr h.dead_count
  end

let cancelled h = h.dead

let remove_top t =
  let e = t.heap.(0) in
  let h = e.handle in
  h.queued <- false;
  if h.dead then decr t.dead_in_heap;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.times.(0) <- t.times.(t.size);
    sift_down t 0
  end;
  recycle t e

(* Discard dead events sitting at the root. *)
let rec drop_dead t =
  if t.size > 0 && t.heap.(0).handle.dead then begin
    remove_top t;
    drop_dead t
  end

let pop t =
  ensure t;
  drop_dead t;
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let value = t.heap.(0).value in
    remove_top t;
    Some (time, value)
  end

let pop_apply t f =
  ensure t;
  drop_dead t;
  if t.size = 0 then false
  else begin
    let time = t.times.(0) in
    let value = t.heap.(0).value in
    remove_top t;
    f time value;
    true
  end

let peek_time t =
  ensure t;
  drop_dead t;
  if t.size = 0 then None else Some t.times.(0)

let next_time t =
  ensure t;
  drop_dead t;
  if t.size = 0 then infinity else t.times.(0)

let peek_key t =
  ensure t;
  drop_dead t;
  if t.size = 0 then None
  else Some (t.times.(0), t.heap.(0).seq)

let peek_seq t =
  ensure t;
  drop_dead t;
  if t.size = 0 then max_int else t.heap.(0).seq

let is_empty t =
  ensure t;
  drop_dead t;
  t.size = 0

let length t = t.size

let live_length t = t.size - !(t.dead_in_heap)
