type series = { name : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; 'a'; 'b'; 'c'; 'd' |]

let line_chart ?(width = 64) ?(height = 16) ~series () =
  if width < 16 then invalid_arg "Ascii_plot.line_chart: width";
  if height < 4 then invalid_arg "Ascii_plot.line_chart: height";
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then "(empty chart)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_min = List.fold_left Float.min (List.hd xs) xs in
    let x_max = List.fold_left Float.max (List.hd xs) xs in
    let y_min = List.fold_left Float.min (List.hd ys) ys in
    let y_max = List.fold_left Float.max (List.hd ys) ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      Stdlib.min (width - 1)
        (int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1))))
    in
    let line y =
      let r =
        int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
      in
      height - 1 - Stdlib.min (height - 1) r
    in
    List.iteri
      (fun i s ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter (fun (x, y) -> grid.(line y).(col x) <- glyph) s.points)
      series;
    let buffer = Buffer.create ((width + 16) * (height + 2)) in
    Array.iteri
      (fun r row ->
        let label =
          if r = 0 then Printf.sprintf "%10.2f |" y_max
          else if r = height - 1 then Printf.sprintf "%10.2f |" y_min
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buffer label;
        Array.iter (Buffer.add_char buffer) row;
        Buffer.add_char buffer '\n')
      grid;
    Buffer.add_string buffer (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buffer
      (Printf.sprintf "%10s  %-8.2f%*s%8.2f\n" "" x_min (width - 16) "" x_max);
    List.iteri
      (fun i s ->
        Buffer.add_string buffer
          (Printf.sprintf "%10s  %c = %s\n" "" glyphs.(i mod Array.length glyphs) s.name))
      series;
    Buffer.contents buffer
  end

let histogram ?(width = 50) ~bars () =
  if bars = [] then "(empty histogram)\n"
  else begin
    let largest = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 bars in
    let label_width =
      List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 bars
    in
    let buffer = Buffer.create 256 in
    List.iter
      (fun (label, value) ->
        let filled =
          if largest <= 0.0 then 0
          else int_of_float (Float.round (value /. largest *. float_of_int width))
        in
        Buffer.add_string buffer
          (Printf.sprintf "%-*s |%s %g\n" label_width label (String.make filled '#') value))
      bars;
    Buffer.contents buffer
  end
