(* Causal span trees and the latency toolchain built on them: span
   lifecycle accounting in the trace ring buffer (orphans at wraparound,
   begin/end mismatches, suppression, clamping), critical-path analysis,
   log-bucketed percentile math, SLO specs and the timeline sampler. *)

module Trace = P2p_sim.Trace
module Engine = P2p_sim.Engine
module Spans = P2p_obs.Spans
module Log_hist = P2p_obs.Log_hist
module Registry = P2p_obs.Registry
module Sampler = P2p_obs.Sampler
module Slo = P2p_obs.Slo
module Json = P2p_obs.Json
module Report = P2p_obs.Report
module Export = P2p_obs.Export
module Flight_recorder = P2p_obs.Flight_recorder
module Gc_stats = P2p_obs.Gc_stats
module Engine_stats = P2p_obs.Engine_stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- span lifecycle --- *)

let test_lifecycle () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  let root =
    match Trace.op_root_span t op with
    | Some r -> r
    | None -> Alcotest.fail "no root span"
  in
  (* parent defaults to the op's root: no threading at call sites *)
  let s1 = Trace.begin_span t ~time:1.0 ~op ~tier:"t_network" ~phase:"ring_hop" "h1" in
  Trace.end_span t ~time:3.0 s1;
  (* explicit parent nests one level deeper *)
  let s2 =
    Trace.begin_span t ~time:4.0 ~op ~tier:"s_network" ~phase:"flood" ~parent:root "f"
  in
  Trace.end_span t ~time:6.0 s2;
  Trace.mark_span t ~time:6.5 ~op ~tier:"cache" ~phase:"hit" "k";
  Trace.end_op t ~time:10.0 ~op "found";
  checkb "root closed by end_op" true (Trace.op_root_span t op = None);
  let spans = Trace.spans_of_op t op in
  checki "root + 3 children" 4 (List.length spans);
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.span_id <> root then
        checki "children parented on root" root s.Trace.parent;
      checkb "all closed" true (s.Trace.span_stop <> None))
    spans;
  let mark =
    List.find (fun (s : Trace.span) -> s.Trace.tier = "cache") spans
  in
  checkf "mark is zero-duration" 0.0 (Spans.duration mark);
  checki "no orphans" 0 (Trace.span_orphans t);
  checki "no mismatches" 0 (Trace.span_mismatches t);
  checki "no suppressions" 0 (Trace.spans_suppressed t)

(* Spans opened through a disabled trace cost nothing and return -1. *)
let test_disabled () =
  let t = Trace.disabled in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Insert "k" in
  let s = Trace.begin_span t ~time:1.0 ~op ~tier:"t" ~phase:"p" "x" in
  checki "disabled begin_span is -1" (-1) s;
  Trace.end_span t ~time:2.0 s;
  Trace.end_op t ~time:3.0 ~op "done";
  checki "nothing counted" 0 (Trace.spans_started t)

(* --- orphaned spans at ring-buffer wraparound --- *)

let test_wraparound_orphans () =
  let t = Trace.create ~capacity:4 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  (* root span occupies slot 0; three more open spans fill the ring *)
  let s1 = Trace.begin_span t ~time:1.0 ~op ~tier:"x" ~phase:"p" "1" in
  let _s2 = Trace.begin_span t ~time:2.0 ~op ~tier:"x" ~phase:"p" "2" in
  let _s3 = Trace.begin_span t ~time:3.0 ~op ~tier:"x" ~phase:"p" "3" in
  checki "no orphan while ring has room" 0 (Trace.span_orphans t);
  (* the 5th span wraps onto the still-open root: one orphan *)
  let _s4 = Trace.begin_span t ~time:4.0 ~op ~tier:"x" ~phase:"p" "4" in
  checki "wraparound evicts open root" 1 (Trace.span_orphans t);
  (* the 6th wraps onto still-open s1 *)
  let _s5 = Trace.begin_span t ~time:5.0 ~op ~tier:"x" ~phase:"p" "5" in
  checki "second eviction counted" 2 (Trace.span_orphans t);
  (* ending an evicted id is a counted no-op under its own counter — a
     capacity artifact, not lumped into orphan ends *)
  Trace.end_span t ~time:6.0 s1;
  checki "evicted end counted" 1 (Trace.evicted_ends t);
  checki "not an orphan end" 0 (Trace.orphan_ends t);
  checki "not a mismatch" 0 (Trace.span_mismatches t);
  checki "minted ids keep counting" 6 (Trace.spans_started t)

(* The evicted/orphan split at the smallest capacities, where every mint
   recycles the single slot. *)
let test_evicted_ends_tiny () =
  let t = Trace.create ~capacity:1 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  (* the child span evicts the root from the one slot *)
  let s1 = Trace.begin_span t ~time:1.0 ~op ~tier:"x" ~phase:"p" "1" in
  checkb "child minted" true (s1 >= 0);
  (* a second op's root evicts s1 in turn *)
  let _op2 = Trace.begin_op t ~time:2.0 ~kind:Trace.Insert "k2" in
  Trace.end_span t ~time:3.0 s1;
  checki "evicted end counted" 1 (Trace.evicted_ends t);
  checki "no orphan end" 0 (Trace.orphan_ends t);
  checki "no mismatch" 0 (Trace.span_mismatches t);
  (* a never-minted id is a true orphan end, not an eviction *)
  Trace.end_span t ~time:4.0 999;
  checki "never-minted id is an orphan end" 1 (Trace.orphan_ends t);
  checki "evicted count unchanged" 1 (Trace.evicted_ends t);
  (* capacity 2: a span still inside the retained window ends normally *)
  let t2 = Trace.create ~capacity:2 () in
  let opb = Trace.begin_op t2 ~time:0.0 ~kind:Trace.Lookup "k" in
  let a = Trace.begin_span t2 ~time:1.0 ~op:opb ~tier:"x" ~phase:"p" "a" in
  let b = Trace.begin_span t2 ~time:2.0 ~op:opb ~tier:"x" ~phase:"p" "b" in
  checkb "b evicts only the root" true (b >= 0);
  Trace.end_span t2 ~time:3.0 a;
  checki "resident end is clean" 0 (Trace.evicted_ends t2);
  checki "still no orphan ends" 0 (Trace.orphan_ends t2);
  (* reset zeroes both counters *)
  Trace.reset t;
  checki "reset clears evicted ends" 0 (Trace.evicted_ends t);
  checki "reset clears orphan ends" 0 (Trace.orphan_ends t)

(* Closed spans are recycled silently: wraparound over a completed span
   is not an orphan. *)
let test_wraparound_closed_ok () =
  let t = Trace.create ~capacity:4 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  for i = 1 to 10 do
    let s =
      Trace.begin_span t ~time:(float_of_int i) ~op ~tier:"x" ~phase:"p" "s"
    in
    Trace.end_span t ~time:(float_of_int i +. 0.5) s
  done;
  (* only the root (still open, evicted once) orphans *)
  checki "closed spans recycle without orphaning" 1 (Trace.span_orphans t)

(* --- begin/end mismatch detection --- *)

let test_mismatches () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Insert "k" in
  let s = Trace.begin_span t ~time:1.0 ~op ~tier:"x" ~phase:"p" "s" in
  Trace.end_span t ~time:2.0 s;
  Trace.end_span t ~time:3.0 s;
  checki "double end is a mismatch" 1 (Trace.span_mismatches t);
  (* ending before the start is a mismatch; the stop is floored at the
     start so the interval stays well-formed *)
  let b = Trace.begin_span t ~time:5.0 ~op ~tier:"x" ~phase:"p" "b" in
  Trace.end_span t ~time:4.0 b;
  checki "backwards end is a mismatch" 2 (Trace.span_mismatches t);
  (match Trace.spans t |> List.find_opt (fun s -> s.Trace.span_id = b) with
   | Some s -> checkf "stop floored at start" 5.0 (Option.get s.Trace.span_stop)
   | None -> Alcotest.fail "span b lost");
  (* -1 (a suppressed begin's return) is always a safe no-op *)
  Trace.end_span t ~time:6.0 (-1);
  checki "-1 end is a no-op" 2 (Trace.span_mismatches t);
  checki "-1 end is not an orphan end" 0 (Trace.orphan_ends t)

(* --- suppression and clamping keep children inside parents --- *)

let test_suppression_and_clamp () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  (* a child still open when the op ends: its stop clamps to the root's *)
  let late = Trace.begin_span t ~time:2.0 ~op ~tier:"x" ~phase:"p" "late" in
  Trace.end_op t ~time:5.0 ~op "done";
  Trace.end_span t ~time:8.0 late;
  checki "late stop clamped" 1 (Trace.spans_clamped t);
  (match Trace.spans t |> List.find_opt (fun s -> s.Trace.span_id = late) with
   | Some s -> checkf "clamped to root stop" 5.0 (Option.get s.Trace.span_stop)
   | None -> Alcotest.fail "late span lost");
  (* work attributed to a finished op is suppressed, not recorded *)
  let dead = Trace.begin_span t ~time:9.0 ~op ~tier:"x" ~phase:"p" "dead" in
  checki "begin after end_op returns -1" (-1) dead;
  checki "suppression counted" 1 (Trace.spans_suppressed t);
  (* same under an explicitly closed parent *)
  let op2 = Trace.begin_op t ~time:10.0 ~kind:Trace.Insert "k2" in
  let p = Trace.begin_span t ~time:11.0 ~op:op2 ~tier:"x" ~phase:"p" "p" in
  Trace.end_span t ~time:12.0 p;
  let c =
    Trace.begin_span t ~time:13.0 ~op:op2 ~tier:"x" ~phase:"p" ~parent:p "c"
  in
  checki "begin under closed parent returns -1" (-1) c;
  checki "second suppression" 2 (Trace.spans_suppressed t)

(* --- critical-path analysis --- *)

let test_critical_path_disjoint () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  let a = Trace.begin_span t ~time:1.0 ~op ~tier:"t_network" ~phase:"ring_hop" "a" in
  Trace.end_span t ~time:3.0 a;
  let b = Trace.begin_span t ~time:4.0 ~op ~tier:"s_network" ~phase:"flood" "b" in
  Trace.end_span t ~time:6.0 b;
  Trace.end_op t ~time:10.0 ~op "found";
  match Spans.completed t with
  | [ o ] ->
    checks "kind is the wire name" "lookup" o.Spans.kind;
    checkf "total" 10.0 o.Spans.total_ms;
    checkf "critical = sum of disjoint segments" 4.0 o.Spans.critical_ms;
    checki "two segments" 2 (List.length o.Spans.chain);
    (match o.Spans.chain with
     | [ first; second ] ->
       checks "earliest segment first" "ring_hop" first.Spans.seg_phase;
       checks "then the flood" "flood" second.Spans.seg_phase;
       checkf "segment durations" 2.0 first.Spans.seg_ms;
       checkf "segment durations" 2.0 second.Spans.seg_ms
     | _ -> Alcotest.fail "chain shape");
    checki "span_count" 2 o.Spans.span_count
  | ops -> Alcotest.failf "expected 1 completed op, got %d" (List.length ops)

let test_critical_path_overlap () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Insert "k" in
  (* overlapping children: the sweep charges the later-stopping one in
     full, then skips the other (it stops after the cursor) *)
  let a = Trace.begin_span t ~time:1.0 ~op ~tier:"x" ~phase:"p" "a" in
  let b = Trace.begin_span t ~time:2.0 ~op ~tier:"x" ~phase:"q" "b" in
  Trace.end_span t ~time:5.0 a;
  Trace.end_span t ~time:6.0 b;
  Trace.end_op t ~time:10.0 ~op "done";
  (match Spans.completed t with
   | [ o ] ->
     checkf "overlap not double-charged" 4.0 o.Spans.critical_ms;
     checkb "critical <= total" true (o.Spans.critical_ms <= o.Spans.total_ms)
   | _ -> Alcotest.fail "expected 1 op");
  (* an op with no children has an empty chain and zero critical path *)
  let op2 = Trace.begin_op t ~time:20.0 ~kind:Trace.Lookup "k2" in
  Trace.end_op t ~time:21.0 ~op:op2 "done";
  match Spans.completed t with
  | [ _; o2 ] ->
    checkf "no children: critical 0" 0.0 o2.Spans.critical_ms;
    checkf "total still measured" 1.0 o2.Spans.total_ms
  | ops -> Alcotest.failf "expected 2 ops, got %d" (List.length ops)

(* Spans.record folds the analysis into the registry. *)
let test_record_into_registry () =
  let t = Trace.create ~capacity:64 () in
  let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
  let a = Trace.begin_span t ~time:1.0 ~op ~tier:"t_network" ~phase:"ring_hop" "a" in
  Trace.end_span t ~time:3.0 a;
  Trace.end_op t ~time:4.0 ~op "found";
  let reg = Registry.create () in
  Spans.record reg t;
  let h = Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms" in
  checki "one op observed" 1 (Log_hist.count h);
  checkf "tier attribution gauge" 2.0
    (Registry.gauge_value
       (Registry.gauge reg ~subsystem:"latency" ~name:"lookup_tier_t_network_ms"));
  checkf "health gauge mirrors trace counters" 0.0
    (Registry.gauge_value
       (Registry.gauge reg ~subsystem:"trace" ~name:"span_mismatches"))

(* --- log-bucketed percentile math --- *)

let test_log_hist_boundaries () =
  (* the grid is exact at boundaries: index (boundary i) = i *)
  for i = 0 to 80 do
    checki
      (Printf.sprintf "index(boundary %d)" i)
      i
      (Log_hist.index (Log_hist.boundary i))
  done;
  (* just above a boundary falls into the next bucket *)
  checki "above boundary -> next bucket" 41
    (Log_hist.index (Log_hist.boundary 40 *. 1.0001));
  checki "at or below v0 -> bucket 0" 0 (Log_hist.index (Log_hist.v0 /. 2.0));
  checkb "index raises on nan" true
    (try
       ignore (Log_hist.index Float.nan : int);
       false
     with Invalid_argument _ -> true)

let test_log_hist_percentiles () =
  let h = Log_hist.create () in
  (* a single sample is reported back exactly, at every percentile:
     the bucket boundary is clamped to the observed max *)
  Log_hist.observe h 7.0;
  List.iter
    (fun p -> checkf (Printf.sprintf "single sample p%g" p) 7.0 (Log_hist.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  (* samples sitting exactly on boundaries come back exactly *)
  let b4 = Log_hist.boundary 4 and b8 = Log_hist.boundary 8 and b12 = Log_hist.boundary 12 in
  let h = Log_hist.create () in
  List.iter (Log_hist.observe h) [ b4; b8; b12 ];
  checkf "p50 on boundary values" b8 (Log_hist.percentile h 50.0);
  checkf "p99 on boundary values" b12 (Log_hist.percentile h 99.0);
  checkf "p1 on boundary values" b4 (Log_hist.percentile h 1.0);
  (* percentiles are monotone in p *)
  let h2 = Log_hist.create () in
  for i = 1 to 1000 do
    Log_hist.observe h2 (float_of_int i)
  done;
  let last = ref 0.0 in
  List.iter
    (fun p ->
      let v = Log_hist.percentile h2 p in
      checkb (Printf.sprintf "monotone at p%g" p) true (v >= !last);
      last := v)
    [ 10.0; 50.0; 90.0; 95.0; 99.0; 99.9 ];
  checkb "empty percentile raises" true
    (try
       ignore (Log_hist.percentile (Log_hist.create ()) 50.0 : float);
       false
     with Invalid_argument _ -> true)

let test_log_hist_merge () =
  let fill seed n =
    let h = Log_hist.create () in
    let rng = P2p_sim.Rng.create seed in
    for _ = 1 to n do
      Log_hist.observe h (P2p_sim.Rng.float rng 5000.0 +. 0.01)
    done;
    h
  in
  let a = fill 1 200 and b = fill 2 300 and c = fill 3 150 in
  let l = Log_hist.merge (Log_hist.merge a b) c in
  let r = Log_hist.merge a (Log_hist.merge b c) in
  (* associative: identical buckets, counts, moments, percentiles *)
  checkb "merge associative (buckets)" true (Log_hist.buckets l = Log_hist.buckets r);
  checki "merge associative (count)" (Log_hist.count l) (Log_hist.count r);
  checkf "merge associative (sum)" (Log_hist.sum l) (Log_hist.sum r);
  checkf "merge associative (p99)" (Log_hist.percentile l 99.0) (Log_hist.percentile r 99.0);
  (* commutative, and counts add *)
  let ab = Log_hist.merge a b and ba = Log_hist.merge b a in
  checkb "merge commutative" true (Log_hist.buckets ab = Log_hist.buckets ba);
  checki "counts add" 500 (Log_hist.count ab);
  checkf "min survives merge" (Float.min (Log_hist.min_value a) (Log_hist.min_value b))
    (Log_hist.min_value ab);
  (* merge with empty is identity on the buckets *)
  let e = Log_hist.create () in
  checkb "empty is identity" true
    (Log_hist.buckets (Log_hist.merge a e) = Log_hist.buckets a);
  (* JSON round-trip preserves the distribution *)
  match Log_hist.of_json (Log_hist.to_json a) with
  | Ok a' ->
    checkb "json round-trip (buckets)" true (Log_hist.buckets a = Log_hist.buckets a');
    checkf "json round-trip (p95)" (Log_hist.percentile a 95.0)
      (Log_hist.percentile a' 95.0)
  | Error e -> Alcotest.failf "of_json failed: %s" e

(* --- SLO specs --- *)

let test_slo () =
  (match Slo.parse "lookup:p99<=40" with
   | Ok s ->
     checks "target" "lookup" s.Slo.target;
     checkf "quantile" 99.0 s.Slo.quantile;
     checkf "limit" 40.0 s.Slo.limit
   | Error e -> Alcotest.failf "parse failed: %s" e);
  checkb "explicit metric path parses" true
    (match Slo.parse "latency/lookup_total_ms:p95<=25" with Ok _ -> true | Error _ -> false);
  checkb "garbage rejected" true
    (match Slo.parse "lookup p99 40" with Ok _ -> false | Error _ -> true);
  let reg = Registry.create () in
  let h = Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms" in
  List.iter (Log_hist.observe h) [ 10.0; 20.0; 30.0 ];
  let lines = ref [] in
  let print l = lines := l :: !lines in
  checkb "pass under the limit" true
    (Slo.enforce reg ~specs:[ "lookup:p99<=1000" ] ~print);
  checkb "fail over the limit" false
    (Slo.enforce reg ~specs:[ "lookup:p99<=5" ] ~print);
  checkb "unresolvable target fails closed" false
    (Slo.enforce reg ~specs:[ "no_such_op:p99<=5" ] ~print);
  checkb "unparsable spec fails closed" false
    (Slo.enforce reg ~specs:[ "nonsense" ] ~print);
  checki "one line per check" 4 (List.length !lines)

(* --- timeline sampler --- *)

let test_sampler () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~subsystem:"s" ~name:"n" in
  let s = Sampler.create ~interval:10.0 reg in
  Sampler.poll s ~now:0.0;
  checki "first poll always samples" 1 (Sampler.count s);
  Registry.incr c;
  Sampler.poll s ~now:5.0;
  checki "before due: no sample" 1 (Sampler.count s);
  Sampler.poll s ~now:10.0;
  Sampler.poll s ~now:10.0;
  checki "due point samples once" 2 (Sampler.count s);
  Sampler.poll s ~now:47.0;
  checki "late poll takes one sample" 3 (Sampler.count s);
  (match Sampler.samples s with
   | (t0, _) :: _ -> checkf "timestamps preserved" 0.0 t0
   | [] -> Alcotest.fail "no samples");
  (* one JSON object per line *)
  let lines =
    Sampler.to_string s |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  checki "jsonl line per sample" 3 (List.length lines);
  List.iter
    (fun l ->
      checkb "line parses as json" true
        (match Json.parse l with Ok _ -> true | Error _ -> false))
    lines;
  checkb "sampler rejects bad interval" true
    (try
       ignore (Sampler.create ~interval:0.0 reg : Sampler.t);
       false
     with Invalid_argument _ -> true)

(* --- head-based op sampling --- *)

(* n ops, each with one timed child, one mark, and a deterministic total
   latency (4 + i mod 7 ms). *)
let run_ops t n =
  for i = 0 to n - 1 do
    let t0 = float_of_int (10 * i) in
    let op = Trace.begin_op t ~time:t0 ~kind:Trace.Lookup (Printf.sprintf "k%d" i) in
    let a =
      Trace.begin_span t ~time:(t0 +. 1.0) ~op ~tier:"t_network" ~phase:"ring_hop" "a"
    in
    Trace.end_span t ~time:(t0 +. 2.0) a;
    Trace.mark_span t ~time:(t0 +. 3.0) ~op ~tier:"cache" ~phase:"miss" "m";
    Trace.end_op t ~time:(t0 +. 4.0 +. float_of_int (i mod 7)) ~op "done"
  done

(* An op is all-or-nothing: a sampled op carries its whole span tree and
   its events; an unsampled op leaves no trace at all — never a half
   tree. *)
let test_sampling_no_half_trees () =
  let t = Trace.create ~capacity:4096 ~sample_rate:0.5 ~sample_seed:42 () in
  run_ops t 200;
  let s = Trace.ops_sampled t in
  checkb "some ops sampled" true (s > 0);
  checkb "some ops unsampled" true (s < 200);
  checkb "skipped spans counted" true (Trace.spans_unsampled t > 0);
  for op = 0 to 199 do
    let nspans = List.length (Trace.spans_of_op t op) in
    let nevents = List.length (Trace.events_of_op t op) in
    if Trace.sampled t op then begin
      checki (Printf.sprintf "sampled op %d has its full tree" op) 3 nspans;
      checkb (Printf.sprintf "sampled op %d has events" op) true (nevents > 0)
    end
    else begin
      checki (Printf.sprintf "unsampled op %d has no spans" op) 0 nspans;
      checki (Printf.sprintf "unsampled op %d has no events" op) 0 nevents
    end
  done;
  checki "sampling is not suppression" 0 (Trace.spans_suppressed t);
  checki "sampling is not orphaning" 0 (Trace.span_orphans t)

(* The sampled set is a pure hash of the op id: equal seeds pick equal
   sets (replays trace the ops the original run traced), and the rate
   endpoints are total. *)
let test_sampling_deterministic () =
  let sampled_set seed =
    let t = Trace.create ~capacity:16 ~sample_rate:0.3 ~sample_seed:seed () in
    List.init 300 (fun op -> Trace.sampled t op)
  in
  checkb "same seed, same sampled set" true (sampled_set 7 = sampled_set 7);
  checkb "different seed, different sampled set" true
    (sampled_set 7 <> sampled_set 8);
  let t0 = Trace.create ~capacity:16 ~sample_rate:0.0 () in
  run_ops t0 10;
  checki "rate 0 samples nothing" 0 (Trace.ops_sampled t0);
  checki "rate 0 mints no spans" 0 (Trace.spans_started t0);
  let t1 = Trace.create ~capacity:1024 ~sample_rate:1.0 () in
  run_ops t1 10;
  checki "rate 1 samples everything" 10 (Trace.ops_sampled t1);
  checkb "rate outside [0,1] rejected" true
    (try
       ignore (Trace.create ~capacity:4 ~sample_rate:1.5 () : Trace.t);
       false
     with Invalid_argument _ -> true)

let observe_exact t reg =
  Trace.on_op_complete t (fun (c : Trace.op_completion) ->
      Log_hist.observe
        (Registry.log_histogram reg ~subsystem:"latency"
           ~name:(c.Trace.comp_kind ^ "_total_ms"))
        (c.Trace.comp_stop -. c.Trace.comp_start))

(* The exact-latency path: listener-fed totals count 100% of ops and are
   bit-identical at every sample rate, so SLO gates never depend on the
   rate. *)
let test_sampling_exact_latency () =
  let totals rate =
    let t = Trace.create ~capacity:4096 ~sample_rate:rate ~sample_seed:3 () in
    let reg = Registry.create () in
    observe_exact t reg;
    run_ops t 250;
    let h = Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms" in
    (Log_hist.count h, Log_hist.percentile h 50.0, Log_hist.percentile h 99.0)
  in
  let full = totals 1.0 and sparse = totals 0.02 and off = totals 0.0 in
  checkb "totals identical at rate 0.02" true (full = sparse);
  checkb "totals identical at rate 0" true (full = off);
  (match full with n, _, _ -> checki "every op counted" 250 n);
  (* and Spans.record defers to the listener: no double counting when
     both run over the same trace *)
  let t = Trace.create ~capacity:4096 () in
  let reg = Registry.create () in
  observe_exact t reg;
  run_ops t 50;
  Spans.record reg t;
  let h = Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms" in
  checki "record + listener count once" 50 (Log_hist.count h);
  checkf "sample_rate gauge exported" 1.0
    (Registry.gauge_value (Registry.gauge reg ~subsystem:"trace" ~name:"sample_rate"))

(* --- flight recorder --- *)

let test_flight_recorder () =
  let fr = Flight_recorder.create ~capacity:4 () in
  let t = Trace.create ~capacity:256 ~sample_rate:0.5 ~sample_seed:1 () in
  Trace.on_op_complete t (Flight_recorder.observe fr);
  run_ops t 10;
  checki "ring bounded at capacity" 4 (Flight_recorder.length fr);
  checki "sees 100% of completions" 10 (Flight_recorder.total_recorded fr);
  Flight_recorder.record_audit fr ~at:99.0 ~check:"ring" ~severity:"audit-error"
    ~detail:"gap";
  (match List.rev (Flight_recorder.entries fr) with
   | Flight_recorder.Audit { check; _ } :: _ -> checks "audit entry newest" "ring" check
   | _ -> Alcotest.fail "expected the audit entry last");
  let lines =
    Flight_recorder.to_jsonl ~reason:"test" fr
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  checki "header + one line per retained entry" 5 (List.length lines);
  List.iter
    (fun l ->
      checkb "jsonl line parses" true
        (match Json.parse l with Ok _ -> true | Error _ -> false))
    lines;
  (* dump writes the ring + chrome trace + metrics, creating the dir *)
  let dir = Filename.temp_file "flight" "" in
  Sys.remove dir;
  let reg = Registry.create () in
  let files = Flight_recorder.dump fr ~trace:t ~registry:reg ~dir ~reason:"slo" () in
  checki "jsonl + chrome + metrics" 3 (List.length files);
  List.iter
    (fun f -> checkb (Filename.basename f ^ " exists") true (Sys.file_exists f))
    files;
  (match files with
   | jsonl :: chrome :: _ ->
     checkb "dump names carry the reason" true
       (Filename.basename jsonl = "flight-slo.jsonl");
     checkb "chrome dump parses as json" true
       (match Json.parse (Export.read_file chrome) with
        | Ok _ -> true
        | Error _ -> false)
   | _ -> Alcotest.fail "missing dump files");
  List.iter Sys.remove files;
  Sys.rmdir dir;
  checkb "zero capacity rejected" true
    (try
       ignore (Flight_recorder.create ~capacity:0 () : Flight_recorder.t);
       false
     with Invalid_argument _ -> true)

(* --- pull-style gauges: sampler hook, gc stats, lane stats --- *)

let test_sampler_hook () =
  let reg = Registry.create () in
  let g = Registry.gauge reg ~subsystem:"gc" ~name:"x" in
  let pulls = ref 0 in
  let s =
    Sampler.create ~interval:10.0
      ~on_sample:(fun () ->
        incr pulls;
        Registry.set g (float_of_int !pulls))
      reg
  in
  Sampler.poll s ~now:0.0;
  Sampler.poll s ~now:5.0;
  Sampler.poll s ~now:10.0;
  checki "hook fires once per snapshot, not per poll" 2 !pulls;
  (* the snapshot sees the value the hook just refreshed *)
  match List.rev (Sampler.samples s) with
  | (_, line) :: _ ->
    (match Option.bind (Json.member "gauges" line) (Json.member "gc/x") with
     | Some v ->
       checkf "gauge refreshed before snapshot" 2.0
         (Option.value ~default:0.0 (Json.to_float v))
     | None -> Alcotest.fail "gc/x gauge missing from snapshot")
  | [] -> Alcotest.fail "no samples"

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let test_runtime_and_lane_gauges () =
  let reg = Registry.create () in
  let gc = Gc_stats.create reg in
  ignore (Sys.opaque_identity (Array.make 100_000 0.0) : float array);
  Gc_stats.update gc;
  let gv name = Registry.gauge_value (Registry.gauge reg ~subsystem:"gc" ~name) in
  checkb "heap gauge populated" true (gv "heap_mb" > 0.0);
  checkb "allocation tracked" true (gv "allocated_mb_total" > 0.0);
  checkb "collection counts non-negative" true (gv "minor_collections" >= 0.0);
  (* sharded engine: per-lane stats sum to the whole-engine figures *)
  let e = Engine.create ~seed:1 ~lanes:4 () in
  for i = 0 to 99 do
    ignore
      (Engine.schedule ~shard:i e ~delay:(float_of_int (i mod 10)) (fun () -> ())
        : Engine.handle)
  done;
  Engine.run e;
  let stats = Engine.lane_stats e in
  checki "one stat per lane" 4 (Array.length stats);
  checki "lane executed sums to engine total" (Engine.events_executed e)
    (Array.fold_left (fun a s -> a + s.Engine.lane_events) 0 stats);
  checki "nothing left pending" 0
    (Array.fold_left (fun a s -> a + s.Engine.lane_pending) 0 stats);
  Array.iter
    (fun s -> checkb "high water covers executed" true
        (s.Engine.lane_high_water >= 1))
    stats;
  Engine_stats.record reg e;
  let lv name = Registry.gauge_value (Registry.gauge reg ~subsystem:"lanes" ~name) in
  checkf "per-lane executed gauge" 25.0 (lv "lane0_executed");
  checkf "balanced load reports imbalance 1" 1.0 (lv "imbalance");
  checkf "whole-engine gauge kept" 100.0
    (Registry.gauge_value (Registry.gauge reg ~subsystem:"engine" ~name:"events_executed"));
  (* the report renders both without any flag: runtime header + lane table *)
  let text = Report.render (Report.of_registry reg) in
  checkb "runtime header rendered" true (contains text "runtime: alloc");
  checkb "lanes section rendered" true (contains text "== lanes ==");
  checkb "imbalance line rendered" true (contains text "imbalance");
  (* a single-lane engine emits no lanes subsystem at all *)
  let reg1 = Registry.create () in
  Engine_stats.record reg1 (Engine.create ~seed:1 ());
  checkb "single lane: no lanes section" false
    (contains (Report.render (Report.of_registry reg1)) "== lanes ==")

(* --- cross-process identity: extern ops and span-id ranges --- *)

let test_extern_op_adopts_wire_id () =
  (* A live node's op identity is the wire request id, minted by the
     client — begin_extern_op must adopt it, root a span tree under it,
     and keep locally-minted op ids from ever colliding with it. *)
  let t = Trace.create ~capacity:256 () in
  Trace.begin_extern_op t ~time:1.0 ~op:5_000 ~kind:Trace.Lookup ~src:9 ~dst:2
    "needle";
  let root =
    match Trace.op_root_span t 5_000 with
    | Some r -> r
    | None -> Alcotest.fail "extern op has no root span"
  in
  let hop =
    Trace.begin_span t ~time:2.0 ~op:5_000 ~tier:"t_network" ~phase:"ring_hop"
      ~parent:root "needle"
  in
  Trace.end_span t ~time:3.0 hop;
  Trace.end_op t ~time:4.0 ~op:5_000 "found";
  checki "root + hop recorded" 2 (List.length (Trace.spans_of_op t 5_000));
  (* next local op must not reuse the extern id *)
  let local = Trace.begin_op t ~time:5.0 ~kind:Trace.Insert "k" in
  checkb "local op ids advance past extern ids" true (local > 5_000)

let test_extern_op_sampling_agrees () =
  (* Same rate + seed on two traces (two processes): the sampling
     decision for one wire op id must agree, whichever side asks. *)
  let mk first_span_id =
    Trace.create ~capacity:256 ~sample_rate:0.3 ~sample_seed:7 ~first_span_id ()
  in
  let a = mk 0 and b = mk (1 lsl 40) in
  let disagreements = ref 0 in
  for op = 0 to 999 do
    if Trace.sampled a op <> Trace.sampled b op then incr disagreements
  done;
  checki "cluster-wide sampling decisions agree" 0 !disagreements;
  (* and an unsampled extern op opens no span tree *)
  let unsampled =
    let rec find op = if Trace.sampled a op then find (op + 1) else op in
    find 0
  in
  Trace.begin_extern_op a ~time:1.0 ~op:unsampled ~kind:Trace.Lookup "k";
  checkb "unsampled extern op has no root" true
    (Trace.op_root_span a unsampled = None)

let test_first_span_id_ranges_disjoint () =
  (* Per-process span-id ranges: node k mints from k * 2^40, so a span
     id arriving in a wire trace header never aliases a local span. *)
  let stride = 1 lsl 40 in
  let node_spans node =
    let t = Trace.create ~capacity:64 ~first_span_id:(node * stride) () in
    let op = Trace.begin_op t ~time:0.0 ~kind:Trace.Lookup "k" in
    let s =
      Trace.begin_span t ~time:1.0 ~op ~tier:"t_network" ~phase:"hop" "k"
    in
    Trace.end_span t ~time:2.0 s;
    Trace.end_op t ~time:3.0 ~op "done";
    List.map (fun (sp : Trace.span) -> sp.Trace.span_id) (Trace.spans_of_op t op)
  in
  let s0 = node_spans 0 and s3 = node_spans 3 in
  List.iter
    (fun id -> checkb "node 0 ids in node 0's range" true (id < stride))
    s0;
  List.iter
    (fun id ->
      checkb "node 3 ids in node 3's range" true
        (id >= 3 * stride && id < 4 * stride))
    s3;
  (* remote parents (outside the local range) are kept verbatim *)
  let t = Trace.create ~capacity:64 ~first_span_id:0 () in
  Trace.begin_extern_op t ~time:0.0 ~op:42 ~kind:Trace.Insert "k";
  let remote_parent = (3 * stride) + 5 in
  let s =
    Trace.begin_span t ~time:1.0 ~op:42 ~tier:"t_network" ~phase:"ring_hop"
      ~parent:remote_parent "k"
  in
  Trace.end_span t ~time:2.0 s;
  Trace.end_op t ~time:3.0 ~op:42 "done";
  let hop =
    List.find
      (fun (sp : Trace.span) -> sp.Trace.phase = "ring_hop")
      (Trace.spans_of_op t 42)
  in
  checki "remote parent preserved for the merger" remote_parent hop.Trace.parent

let suite =
  [
    Alcotest.test_case "span lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "disabled trace" `Quick test_disabled;
    Alcotest.test_case "wraparound orphans" `Quick test_wraparound_orphans;
    Alcotest.test_case "evicted ends at tiny capacities" `Quick test_evicted_ends_tiny;
    Alcotest.test_case "wraparound recycles closed" `Quick test_wraparound_closed_ok;
    Alcotest.test_case "begin/end mismatches" `Quick test_mismatches;
    Alcotest.test_case "suppression and clamping" `Quick test_suppression_and_clamp;
    Alcotest.test_case "critical path disjoint" `Quick test_critical_path_disjoint;
    Alcotest.test_case "critical path overlap" `Quick test_critical_path_overlap;
    Alcotest.test_case "record into registry" `Quick test_record_into_registry;
    Alcotest.test_case "log-hist bucket boundaries" `Quick test_log_hist_boundaries;
    Alcotest.test_case "log-hist percentiles" `Quick test_log_hist_percentiles;
    Alcotest.test_case "log-hist merge" `Quick test_log_hist_merge;
    Alcotest.test_case "slo specs" `Quick test_slo;
    Alcotest.test_case "timeline sampler" `Quick test_sampler;
    Alcotest.test_case "sampling: no half trees" `Quick test_sampling_no_half_trees;
    Alcotest.test_case "sampling: deterministic" `Quick test_sampling_deterministic;
    Alcotest.test_case "sampling: exact latency" `Quick test_sampling_exact_latency;
    Alcotest.test_case "flight recorder" `Quick test_flight_recorder;
    Alcotest.test_case "sampler on_sample hook" `Quick test_sampler_hook;
    Alcotest.test_case "runtime and lane gauges" `Quick test_runtime_and_lane_gauges;
    Alcotest.test_case "extern op adopts the wire id" `Quick
      test_extern_op_adopts_wire_id;
    Alcotest.test_case "extern sampling agrees cluster-wide" `Quick
      test_extern_op_sampling_agrees;
    Alcotest.test_case "per-process span-id ranges disjoint" `Quick
      test_first_span_id_ranges_disjoint;
  ]
