lib/analysis/formulas.ml: Float
