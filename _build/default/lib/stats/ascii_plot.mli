(** Text rendering of experiment series.

    The benchmark harness regenerates the paper's *figures*; this module
    draws them as fixed-size ASCII charts so a terminal run of
    [bench/main.exe] shows the curve shapes, not just number columns.

    Rendering is deterministic and pure; all functions return strings. *)

(** One named series of (x, y) points. *)
type series = { name : string; points : (float * float) list }

(** [line_chart ~width ~height ~series ()] plots the series over a shared
    scale.  Each series is drawn with its own glyph ([*], [o], [+], [x],
    then letters) and a legend line follows the chart.  X values need not
    be sorted or shared between series.  Empty input yields an
    ["(empty chart)"] placeholder.
    @raise Invalid_argument if [width < 16] or [height < 4]. *)
val line_chart : ?width:int -> ?height:int -> series:series list -> unit -> string

(** [histogram ~width ~bars ()] renders labelled horizontal bars scaled to
    the largest value, e.g. for per-bucket PDFs. *)
val histogram : ?width:int -> bars:(string * float) list -> unit -> string
