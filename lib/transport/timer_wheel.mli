(** Wall-clock timer wheel for the live transport.

    Same semantics as the engine-clock {!P2p_sim.Timer} — restartable
    one-shots and periodics, cancel-after-fire is a no-op counted on the
    shared [timer/cancel_late] counter ({!P2p_sim.Timer.cancel_late}) —
    but driven by an external event loop instead of the simulation
    engine: the loop sleeps until {!next_deadline} and then calls
    {!run_due}. *)

type t

(** [create ~clock] makes an empty wheel reading time (any monotone
    unit; the live loop uses milliseconds) from [clock]. *)
val create : clock:(unit -> float) -> t

val one_shot : t -> delay:float -> (unit -> unit) -> Transport.timer
val periodic : t -> period:float -> (unit -> unit) -> Transport.timer

(** Earliest pending deadline, in clock units, if any timer is armed. *)
val next_deadline : t -> float option

(** Number of armed timers. *)
val pending : t -> int

(** [run_due t] fires every timer due at or before [clock ()], in
    deadline order, and returns how many fired.  Periodics re-arm
    before their action runs. *)
val run_due : t -> int
