test/test_sim.ml: Alcotest Float List Option P2p_sim
