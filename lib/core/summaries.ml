let enabled w = w.World.config.Config.bloom_bits_per_key > 0

let tree_root peer =
  match peer.Peer.t_home with Some home -> home | None -> peer

let fresh w root = root.Peer.summaries_epoch = w.World.summary_epoch

let invalidate_tree peer = (tree_root peer).Peer.summaries_epoch <- -1

let invalidate_all w = w.World.summary_epoch <- w.World.summary_epoch + 1

(* Keys a flood visit at [peer] can answer from: primary store plus the
   replica shadow.  Cached copies are deliberately left out — they expire
   on their own schedule and every cacheable item also has a primary in
   the same tree, so omitting them never changes whether a flood succeeds,
   only which holder answers first. *)
let local_keys peer =
  List.rev_append (Data_store.keys peer.Peer.store) (Data_store.keys peer.Peer.replicas)

let rebuild w root =
  let depth = w.World.config.Config.bloom_depth in
  let bits_per_key = w.World.config.Config.bloom_bits_per_key in
  (* Postorder walk: [collect peer] fills [peer.summaries] for each live
     child and returns the keys of [peer]'s subtree bucketed by distance
     from [peer] (the last bucket absorbs everything deeper). *)
  let rec collect peer =
    Hashtbl.reset peer.Peer.summaries;
    let levels = Array.make depth [] in
    levels.(0) <- local_keys peer;
    List.iter
      (fun child ->
        if child.Peer.alive then begin
          let child_levels = collect child in
          let filters =
            Array.map
              (fun keys ->
                let f = Bloom.create ~expected:(List.length keys) ~bits_per_key in
                List.iter (Bloom.add f) keys;
                f)
              child_levels
          in
          Hashtbl.replace peer.Peer.summaries child.Peer.host filters;
          Array.iteri
            (fun i keys ->
              let j = min (i + 1) (depth - 1) in
              levels.(j) <- List.rev_append keys levels.(j))
            child_levels
        end)
      peer.Peer.children;
    levels
  in
  ignore (collect root : string list array);
  root.Peer.summaries_epoch <- w.World.summary_epoch;
  World.bump w ~subsystem:"s_network" ~name:"summary_rebuilds"

let ensure_fresh w peer =
  if enabled w then begin
    let root = tree_root peer in
    if not (fresh w root) then rebuild w root
  end

let note_stored w ~holder ~key =
  if enabled w then begin
    let root = tree_root holder in
    if fresh w root then begin
      (* Add the key to the on-path filter of every ancestor edge.  An
         edge attached after the last rebuild has no summary yet — floods
         never prune such edges, so skipping it is safe, but the walk must
         continue: higher edges do have (now incomplete) summaries. *)
      let rec up child parent dist =
        (match Hashtbl.find_opt parent.Peer.summaries child.Peer.host with
         | Some filters -> Bloom.add filters.(min (dist - 1) (Array.length filters - 1)) key
         | None -> ());
        match parent.Peer.cp with
        | Some grand -> up parent grand (dist + 1)
        | None -> ()
      in
      match holder.Peer.cp with
      | Some parent -> up holder parent 1
      | None -> ()
    end
  end

let child_may_hold peer child ~budget ~key =
  match Hashtbl.find_opt peer.Peer.summaries child.Peer.host with
  | None -> true
  | Some filters ->
    (* Filter level [i] holds keys [i+1] hops below [peer]; with [budget]
       forwards left the flood reaches levels [0 .. budget-1].  The
       attenuated last level also stands for keys deeper than the flood
       can reach — checking it when the budget covers it only widens the
       answer (false positives, never negatives). *)
    let levels = min (Array.length filters) budget in
    let rec probe i = i < levels && (Bloom.mem filters.(i) key || probe (i + 1)) in
    probe 0
