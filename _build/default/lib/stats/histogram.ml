type t = { mutable bins : int array; mutable total : int; mutable max_v : int }

let create () = { bins = [||]; total = 0; max_v = -1 }

let ensure t v =
  let cap = Array.length t.bins in
  if v >= cap then begin
    let new_cap = Stdlib.max (v + 1) (Stdlib.max 16 (cap * 2)) in
    let bins = Array.make new_cap 0 in
    Array.blit t.bins 0 bins 0 cap;
    t.bins <- bins
  end

let observe_many t v n =
  if v < 0 then invalid_arg "Histogram.observe: negative value";
  if n < 0 then invalid_arg "Histogram.observe_many: negative count";
  ensure t v;
  t.bins.(v) <- t.bins.(v) + n;
  t.total <- t.total + n;
  if n > 0 && v > t.max_v then t.max_v <- v

let observe t v = observe_many t v 1

let count t v = if v < 0 || v >= Array.length t.bins then 0 else t.bins.(v)

let total t = t.total

let max_value t = t.max_v

let fraction t v =
  if t.total = 0 then 0.0 else float_of_int (count t v) /. float_of_int t.total

let fraction_at_most t v =
  if t.total = 0 then 0.0
  else begin
    let acc = ref 0 in
    for i = 0 to Stdlib.min v t.max_v do
      acc := !acc + t.bins.(i)
    done;
    float_of_int !acc /. float_of_int t.total
  end

let to_assoc t =
  let acc = ref [] in
  for v = t.max_v downto 0 do
    if t.bins.(v) > 0 then acc := (v, t.bins.(v)) :: !acc
  done;
  !acc

let rebin t ~width =
  if width <= 0 then invalid_arg "Histogram.rebin: width must be positive";
  if t.max_v < 0 then []
  else begin
    let buckets = (t.max_v / width) + 1 in
    let counts = Array.make buckets 0 in
    for v = 0 to t.max_v do
      counts.(v / width) <- counts.(v / width) + t.bins.(v)
    done;
    List.init buckets (fun b -> (b * width, counts.(b)))
  end

let mean t =
  if t.total = 0 then 0.0
  else begin
    let acc = ref 0 in
    for v = 0 to t.max_v do
      acc := !acc + (v * t.bins.(v))
    done;
    float_of_int !acc /. float_of_int t.total
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (v, c) -> Format.fprintf ppf "%d: %d@," v c) (to_assoc t);
  Format.fprintf ppf "@]"
