(** Always-on flight recorder: a bounded ring of recent operation
    completions and audit findings, dumped when something trips.

    The recorder answers "what led up to the violation" without
    re-running: it is cheap enough to leave enabled at million-peer
    scale (recording is one array store, no allocation beyond the entry
    itself), survives span-ring wraparound (it keeps op {e roots}, not
    span trees), and sees 100% of ops regardless of the trace sample
    rate when fed through {!observe}.  On an [--slo] failure, an audit
    error, or [--dump-on-exit], {!dump} writes the ring as JSONL plus a
    chrome trace of whatever sampled spans the trace still retains. *)

type t

(** One recorded moment: an operation root (kind, completion time, total
    latency, whether its span tree was sampled) or an audit finding. *)
type entry =
  | Op of {
      at : float;
      op : int;
      kind : string;
      total_ms : float;
      op_sampled : bool;
    }
  | Audit of { at : float; check : string; severity : string; detail : string }

(** [create ~capacity ()] — a recorder retaining the last [capacity]
    entries.  @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> unit -> t

(** Record one completed operation. *)
val record_op :
  t -> at:float -> op:int -> kind:string -> total_ms:float -> sampled:bool -> unit

(** Record one audit finding. *)
val record_audit :
  t -> at:float -> check:string -> severity:string -> detail:string -> unit

(** [observe t] shaped as a {!P2p_sim.Trace.on_op_complete} listener:
    [Trace.on_op_complete trace (Flight_recorder.observe t)] feeds the
    recorder every completion. *)
val observe : t -> P2p_sim.Trace.op_completion -> unit

(** Entries currently retained. *)
val length : t -> int

(** Entries ever recorded (including dropped ones). *)
val total_recorded : t -> int

(** Retained entries, oldest first. *)
val entries : t -> entry list

(** The ring as JSONL: a [{"type":"flight-recorder","reason":...,
    "entries":n,"dropped":n}] header line, then one object per entry
    (oldest first) — [{"t":ms,"type":"op","op":id,"kind":...,
    "total_ms":...,"sampled":bool}] or [{"t":ms,"type":"audit",
    "check":...,"severity":...,"detail":...}]. *)
val to_jsonl : ?reason:string -> t -> string

(** [dump t ~dir ~reason ()] writes [dir/flight-<reason>.jsonl] (the
    ring), plus [flight-<reason>.chrome.json] when [trace] is an enabled
    trace ({!Export.write_chrome_trace} of its retained spans; [lane_of]
    adds the per-lane rows) and [flight-<reason>.metrics.json] when
    [registry] is given.  Creates [dir] (and parents) as needed; returns
    the paths written, JSONL first. *)
val dump :
  t ->
  ?trace:P2p_sim.Trace.t ->
  ?lane_of:(int -> int option) ->
  ?registry:Registry.t ->
  dir:string ->
  reason:string ->
  unit ->
  string list
