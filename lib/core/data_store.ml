open P2p_hashspace

type entry = { value : string; route_id : Id_space.id }

type t = { items : (string, entry) Hashtbl.t }

let create () = { items = Hashtbl.create 16 }

let size t = Hashtbl.length t.items

let insert_routed t ~route_id ~key ~value =
  Hashtbl.replace t.items key { value; route_id }

let insert t ~key ~value =
  insert_routed t ~route_id:(Key_hash.of_string key) ~key ~value

let find t ~key = Option.map (fun e -> e.value) (Hashtbl.find_opt t.items key)

let remove t ~key = Hashtbl.remove t.items key

let mem t ~key = Hashtbl.mem t.items key

let segment_items t ~left ~right =
  Hashtbl.fold
    (fun key e acc ->
      if Id_space.between_incl_right e.route_id ~left ~right then
        (key, e.value, e.route_id) :: acc
      else acc)
    t.items []

let take_segment t ~left ~right =
  let selected = segment_items t ~left ~right in
  List.iter (fun (key, _, _) -> Hashtbl.remove t.items key) selected;
  selected

(* Order-independent content digest: XOR of per-item hashes commutes, so
   two stores holding the same (key, value, route_id) set produce the
   same digest regardless of insertion order; the count term
   distinguishes the empty set from self-cancelling pairs. *)
let digest_items items =
  List.fold_left
    (fun acc (key, value, route_id) -> acc lxor Hashtbl.hash (key, value, route_id))
    (List.length items * 0x9e3779b1)
    items

let segment_digest t ~left ~right = digest_items (segment_items t ~left ~right)

let take_all t =
  let all = Hashtbl.fold (fun key e acc -> (key, e.value, e.route_id) :: acc) t.items [] in
  Hashtbl.reset t.items;
  all

let iter t f =
  Hashtbl.iter (fun key e -> f ~key ~value:e.value ~route_id:e.route_id) t.items

let keys t = Hashtbl.fold (fun key _ acc -> key :: acc) t.items []

let clear t = Hashtbl.reset t.items
