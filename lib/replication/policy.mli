(** Replica-placement policy: where the durability layer puts the
    [replication_factor] redundant copies of an item whose primary copy
    lives at a given peer.

    Two modes ([Config.replica_placement]):

    - {e Ring_successors}: one copy with each of the next [r] live
      t-peers clockwise from the owner of the primary holder's segment —
      distinct s-networks, so losing a whole tree (or its t-peer) leaves
      [r] copies standing.  This mirrors the successor-list discipline
      structured overlays use for their own state.
    - {e Tree_neighbors}: copies on the primary holder's s-tree parent
      and children (truncated to [r]), honouring the paper's Scheme A/B
      placement — after a spreading walk the copies stay one tree hop
      from wherever the walk ended.  Cheap, but correlated with the
      primary's failure domain.

    The policy is {e location-agnostic}: targets are computed from the
    current membership, so after churn the "right" target set moves and
    the heal pass re-establishes it. *)

module World := Hybrid_p2p.World
module Peer := Hybrid_p2p.Peer

(** [targets w ~primary] lists the peers that should hold a replica of
    an item whose primary copy sits at [primary], under the world's
    configured placement and factor.  Never includes [primary]; at most
    [replication_factor] peers; shorter when the membership cannot
    support the full factor (fewer than [r + 1] t-peers, or a sparse
    tree).  Empty when replication is off, [primary] is dead, or its
    t-home is dead (pre-repair limbo — the post-repair heal recomputes). *)
val targets : World.t -> primary:Peer.t -> Peer.t list

(** [expected_copies w ~primary] is [List.length (targets w ~primary)] —
    the factor the audit check holds the system to for this item. *)
val expected_copies : World.t -> primary:Peer.t -> int

(** [ring_successors w ~home ~factor] is the raw successor enumeration
    [Ring_successors] mode builds on: the next [min factor (n-1)] live
    t-peers clockwise from [home].  Exposed for the per-segment
    anti-entropy exchange, which pairs each segment owner with exactly
    these peers. *)
val ring_successors : World.t -> home:Peer.t -> factor:int -> Peer.t list
