(* p2psim — command-line driver for the hybrid P2P simulator.

   Subcommands:
     run       build a system, insert items, run lookups, print metrics
     churn     crash a fraction of the population and report the damage
     compare   hybrid vs pure Chord vs pure Gnutella on one workload
     scenario  run a declarative churn/workload script (see parse_script)
     audit     run the invariant-check catalogue online over a live system
     analyze   print the Section-4 analytical model for given parameters
     report    pretty-print (and merge) metrics JSON files written by run/serve
     serve     fork a live localhost ring over real TCP sockets
     top       live per-node table for a serving ring (scrape poller)
     cluster-report  one-shot merged rollup + SLO gate for a serving ring *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module World = Hybrid_p2p.World
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Data_store = Hybrid_p2p.Data_store
module Auditor = P2p_audit.Auditor
module Checks = P2p_audit.Checks
module Rng = P2p_sim.Rng
module Trace = P2p_sim.Trace
module Engine = P2p_sim.Engine
module Registry = P2p_obs.Registry
module Export = P2p_obs.Export
module Report = P2p_obs.Report
module Spans = P2p_obs.Spans
module Sampler = P2p_obs.Sampler
module Slo = P2p_obs.Slo
module Gc_stats = P2p_obs.Gc_stats
module Engine_stats = P2p_obs.Engine_stats
module Flight_recorder = P2p_obs.Flight_recorder
module Transit_stub = P2p_topology.Transit_stub
module Routing = P2p_topology.Routing
module Metrics = P2p_net.Metrics
module Summary = P2p_stats.Summary
module Keys = P2p_workload.Keys
module Churn = P2p_workload.Churn
module Chord = P2p_chord.Ring
module Replication = P2p_replication.Manager
module Scenario = P2p_scenario.Scenario
module Mesh = P2p_gnutella.Mesh
module F = P2p_analysis.Formulas

open Cmdliner

(* --- shared argument definitions --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let ps_arg =
  Arg.(
    value
    & opt float 0.7
    & info [ "p"; "ps" ] ~docv:"PS"
        ~doc:"System parameter $(i,p_s): fraction of peers that are s-peers.")

let peers_arg =
  Arg.(value & opt int 300 & info [ "n"; "peers" ] ~docv:"N" ~doc:"Number of peers.")

let items_arg =
  Arg.(value & opt int 2000 & info [ "items" ] ~docv:"K" ~doc:"Data items to insert.")

let lookups_arg =
  Arg.(value & opt int 2000 & info [ "lookups" ] ~docv:"K" ~doc:"Lookups to issue.")

let ttl_arg =
  Arg.(value & opt int 4 & info [ "ttl" ] ~docv:"TTL" ~doc:"Flood TTL in s-networks.")

let delta_arg =
  Arg.(
    value & opt int 3
    & info [ "delta" ] ~docv:"D" ~doc:"Degree constraint of s-network trees.")

let scheme_arg =
  let parse = function
    | "tpeer" -> Ok Config.Store_at_tpeer
    | "spread" -> Ok Config.Spread_to_neighbors
    | s -> Error (`Msg (Printf.sprintf "unknown placement %S (tpeer|spread)" s))
  in
  let print ppf = function
    | Config.Store_at_tpeer -> Format.fprintf ppf "tpeer"
    | Config.Spread_to_neighbors -> Format.fprintf ppf "spread"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Spread_to_neighbors
    & info [ "placement" ] ~docv:"SCHEME" ~doc:"Data placement: tpeer or spread.")

let bloom_bits_arg =
  Arg.(
    value & opt int 0
    & info [ "bloom-bits" ] ~docv:"B"
        ~doc:
          "Bits per key of the attenuated Bloom summaries on s-tree edges; keyed \
           floods prune child branches whose summary misses the key (0 disables \
           pruning).")

let bloom_depth_arg =
  Arg.(
    value & opt int 4
    & info [ "bloom-depth" ] ~docv:"D"
        ~doc:
          "Attenuation depth of the edge summaries: levels beyond $(docv) hops \
           collapse into the last filter.")

let cache_arg =
  Arg.(
    value & opt int 0
    & info [ "cache" ] ~docv:"CAP"
        ~doc:
          "Per-peer result-cache capacity: successful lookups leave a copy at the \
           requester, serving repeat (Zipf-popular) requests locally (0 disables \
           caching).")

let cache_ttl_arg =
  Arg.(
    value & opt float Config.default.Config.cache_lifetime
    & info [ "cache-ttl" ] ~docv:"MS"
        ~doc:"Lifetime of cached lookup results, in simulated milliseconds.")

let lanes_arg =
  Arg.(
    value & opt int 1
    & info [ "lanes" ] ~docv:"N"
        ~doc:
          "Number of engine event lanes (ring-segment partitions of the event \
           queue).  With the default zero lookahead the executed event order is \
           identical for every lane count.")

let lookahead_arg =
  Arg.(
    value & opt float 0.0
    & info [ "lookahead" ] ~docv:"MS"
        ~doc:
          "Conservative-lookahead window in simulated milliseconds: lets one \
           lane run batched up to $(docv) past the other lanes' heads.  Safe \
           while at most the minimum cross-lane message latency; 0 keeps the \
           exact single-queue order.")

let replication_arg =
  Arg.(
    value & opt int 0
    & info [ "r"; "replication" ] ~docv:"R"
        ~doc:
          "Replication factor: keep $(docv) redundant copies of every item beyond \
           the primary (0 disables the durability layer).")

let anti_entropy_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "anti-entropy" ] ~docv:"MS"
        ~doc:
          "After the workload, run with the periodic anti-entropy timer armed for \
           $(docv) simulated milliseconds (requires $(b,--replication) > 0).")

(* --- observability argument definitions --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the structured event trace as JSON Lines to $(docv).")

let trace_cap_arg =
  Arg.(
    value & opt int 200_000
    & info [ "trace-cap" ] ~docv:"N"
        ~doc:"Trace ring-buffer capacity: the newest $(docv) events are kept.")

let trace_sample_arg =
  Arg.(
    value & opt float 1.0
    & info [ "trace-sample" ] ~docv:"RATE"
        ~doc:
          "Head-based op sampling rate in [0,1]: each operation either carries \
           its full event/span record ($(docv) of them, chosen by a \
           deterministic hash of the op id, so replays trace identical ops) or \
           costs one integer compare per record.  Latency percentiles and \
           $(b,--slo) gates always count 100% of operations regardless of the \
           rate.  1 (default) traces everything.")

let dump_on_exit_arg =
  Arg.(
    value & flag
    & info [ "dump-on-exit" ]
        ~doc:
          "Always write the flight-recorder dump at the end of the run, even \
           when no SLO gate or audit check tripped.")

let dump_dir_arg =
  Arg.(
    value & opt string "flight"
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for flight-recorder dumps (created on demand).  A dump — \
           the recent-completion ring as JSONL, a chrome trace of the retained \
           spans, and a metrics snapshot — is written automatically when an \
           $(b,--slo) gate fails, an audit check finds an error, or \
           $(b,--dump-on-exit) is set.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Format of $(b,--trace-out): $(b,jsonl) (one event object per line) or \
           $(b,chrome) (Chrome trace-event JSON of the causal spans, loadable in \
           Perfetto / chrome://tracing).")

let timeline_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline-out" ] ~docv:"FILE"
        ~doc:
          "Sample every counter and gauge on a simulated-time cadence and write \
           the series as JSON Lines to $(docv) (rendered by \
           $(b,report --timeline)).")

let timeline_interval_arg =
  Arg.(
    value & opt float 50.0
    & info [ "timeline-interval" ] ~docv:"MS"
        ~doc:"Sampling cadence of $(b,--timeline-out), simulated milliseconds.")

let slo_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Latency objective gate, repeatable: $(i,target):p$(i,N)<=$(i,MS), e.g. \
           $(b,lookup:p99<=40) or $(b,latency/phase_flood_ms:p95<=10).  Checked \
           after the run; any violated or unresolvable spec makes the command \
           exit non-zero.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Dump the metrics registry as JSON to $(docv) (read by $(b,report)).")

let metrics_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:"Dump the metrics registry as CSV to $(docv).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable engine profiling: per-label handler CPU time and the event-queue \
           high-water mark, printed after the run.")

let audit_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "audit-interval" ] ~docv:"MS"
        ~doc:
          "Run the online invariant auditor every $(docv) simulated milliseconds; \
           violations are printed, counted under the audit/* metrics, and make the \
           command exit non-zero.")

(* Shared epilogue for audited commands: per-check summary, then the exit
   code carries whether any Error-severity violation was ever seen. *)
let finish_audit a =
  Printf.printf "audit: %d ticks, %d violations (%d errors)\n" (Auditor.ticks a)
    (Auditor.violations_total a) (Auditor.errors_total a);
  (match Auditor.last_snapshot a with
   | None -> ()
   | Some snap ->
     List.iter
       (fun (s : Checks.status) ->
         let verdict =
           match s.Checks.violations with
           | [] -> "OK"
           | vs -> Printf.sprintf "VIOLATED (%d)" (List.length vs)
         in
         Printf.printf "  %-16s %s\n" s.Checks.name verdict;
         List.iteri
           (fun i v ->
             if i < 5 then Printf.printf "    %s\n" (Format.asprintf "%a" Checks.pp_violation v))
           s.Checks.violations;
         if List.length s.Checks.violations > 5 then
           Printf.printf "    ... and %d more\n" (List.length s.Checks.violations - 5))
       snap.Checks.statuses);
  if Auditor.errors_total a > 0 then Some 1 else None

(* Snapshot engine counters (whole-engine plus per-lane occupancy when
   sharded) into the registry so exported metrics carry them alongside
   the protocol subsystems. *)
let snapshot_engine_stats h =
  let reg = Metrics.registry (H.metrics h) in
  Engine_stats.record reg (H.engine h);
  reg

(* Lane attribution for chrome exports: a peer's spans execute on the
   lane serving its ring-segment shard. *)
let lane_of_host h =
  let engine = H.engine h in
  let lanes = Engine.lanes engine in
  if lanes <= 1 then None
  else
    Some
      (fun host ->
        Option.map (fun s -> s mod lanes) (World.shard_of_host (H.world h) ~host))

let export_observability h ?(trace_format = `Jsonl) ~trace_out ~metrics_out
    ~metrics_csv ~profile () =
  let reg = snapshot_engine_stats h in
  (* fold the span analysis into the registry first, so the exported
     metrics carry the latency/* percentiles and tier attribution *)
  if Trace.enabled (H.trace h) then Spans.record reg (H.trace h);
  try
  (match trace_out with
   | Some path ->
     (match trace_format with
      | `Jsonl ->
        Export.write_trace ~path (H.trace h);
        Printf.printf "trace: %d events (%d ops) -> %s\n"
          (Trace.length (H.trace h))
          (Trace.ops_started (H.trace h))
          path
      | `Chrome ->
        Export.write_chrome_trace ~path ?lane_of:(lane_of_host h) (H.trace h);
        Printf.printf "trace: %d spans (%d ops) -> %s (chrome trace-event)\n"
          (Trace.spans_started (H.trace h))
          (Trace.ops_started (H.trace h))
          path)
   | None -> ());
  (match metrics_out with
   | Some path ->
     Export.write_metrics ~path reg;
     Printf.printf "metrics -> %s\n" path
   | None -> ());
  (match metrics_csv with
   | Some path ->
     Export.write_metrics_csv ~path reg;
     Printf.printf "metrics (csv) -> %s\n" path
   | None -> ());
  if profile then begin
    let engine = H.engine h in
    Printf.printf "engine: %d events executed, queue high-water %d\n"
      (Engine.events_executed engine)
      (Engine.queue_high_water engine);
    List.iter
      (fun (label, fires, cpu_s) ->
        Printf.printf "  %-12s %9d fires  %9.3f ms cpu\n" label fires (cpu_s *. 1e3))
      (Engine.profile engine)
  end
  with Sys_error e ->
    Printf.eprintf "p2psim: cannot write output: %s\n" e;
    exit 1

(* --- system construction over a transit-stub underlay --- *)

let topology_for n =
  (* pick transit-stub parameters that give at least n nodes *)
  let rec fit stub_nodes =
    let p =
      {
        Transit_stub.default_params with
        Transit_stub.transit_domains = 3;
        transit_nodes = 3;
        stub_domains_per_node = 4;
        stub_nodes;
      }
    in
    if Transit_stub.node_count p >= n then p else fit (stub_nodes + 1)
  in
  fit 3

let build_system ?trace ?(profile = false) ~seed ~ps ~n ~config () =
  let topo = Transit_stub.generate ~rng:(Rng.create (seed + 1)) (topology_for n) in
  let routing = Routing.create topo.Transit_stub.graph in
  let h = H.create ~seed ~routing ~config ?trace () in
  if profile then Engine.enable_profiling (H.engine h);
  let rng = Rng.create (seed + 2) in
  let roles = Array.init n (fun _ -> if Rng.bernoulli rng ps then Peer.S_peer else Peer.T_peer) in
  roles.(0) <- Peer.T_peer;
  Array.iteri
    (fun host role ->
      ignore (H.join h ~host ~role () : Peer.t);
      H.run h)
    roles;
  (h, rng)

let print_metrics h =
  Format.printf "%a@." Metrics.pp (H.metrics h);
  match H.check_invariants h with
  | Ok () -> print_endline "invariants: OK"
  | Error e -> Printf.printf "invariants: VIOLATED (%s)\n" e

(* --- run subcommand --- *)

let run_cmd =
  let run seed ps n items lookups ttl delta placement bloom_bits bloom_depth
      cache_capacity cache_ttl lanes lookahead replication anti_entropy
      trace_out trace_cap trace_sample trace_format timeline_out
      timeline_interval slos metrics_out metrics_csv profile audit_interval
      dump_on_exit dump_dir =
    let config =
      {
        Config.default with
        Config.default_ttl = ttl;
        delta;
        placement;
        bloom_bits_per_key = bloom_bits;
        bloom_depth;
        cache_capacity;
        cache_lifetime = cache_ttl;
        engine_lanes = lanes;
        engine_lookahead = lookahead;
        replication_factor = replication;
      }
    in
    (match Config.validate config with
     | Ok () -> ()
     | Error e ->
       Printf.eprintf "p2psim: %s\n" e;
       exit 1);
    if trace_cap <= 0 then begin
      Printf.eprintf "p2psim: --trace-cap must be positive (got %d)\n" trace_cap;
      exit 1
    end;
    if timeline_interval <= 0.0 then begin
      Printf.eprintf "p2psim: --timeline-interval must be positive (got %g)\n"
        timeline_interval;
      exit 1
    end;
    if trace_sample < 0.0 || trace_sample > 1.0 then begin
      Printf.eprintf "p2psim: --trace-sample must be in [0,1] (got %g)\n"
        trace_sample;
      exit 1
    end;
    let trace =
      (* SLO specs over latency/* percentiles need the op-completion
         stream, so a gate also turns tracing on (without a --trace-out
         file nothing is written); same for an exit dump, whose chrome
         trace comes from the retained spans *)
      match (trace_out, slos, dump_on_exit) with
      | Some _, _, _ | None, _ :: _, _ | None, [], true ->
        Some
          (Trace.create ~capacity:trace_cap ~sample_rate:trace_sample
             ~sample_seed:seed ())
      | None, [], false -> None
    in
    Printf.printf "building %d peers (p_s = %.2f) over a transit-stub underlay...\n%!" n ps;
    let h, rng = build_system ?trace ~profile ~seed ~ps ~n ~config () in
    let manager =
      if replication > 0 then Some (Replication.install (H.world h)) else None
    in
    let auditor =
      Option.map (fun interval -> Auditor.create ~interval (H.world h)) audit_interval
    in
    let reg = Metrics.registry (H.metrics h) in
    let gcs = Gc_stats.create reg in
    (* The always-on flight recorder: fed 100% of op completions by the
       trace listener (independent of --trace-sample) and every audit
       violation; dumped when something trips. *)
    let recorder =
      match (trace, auditor) with
      | None, None -> None
      | _ -> Some (Flight_recorder.create ~capacity:8192 ())
    in
    (match (recorder, trace) with
     | Some fr, Some tr -> Trace.on_op_complete tr (Flight_recorder.observe fr)
     | _ -> ());
    (match (recorder, auditor) with
     | Some fr, Some a ->
       Auditor.set_on_violation a (fun ~time ~check ~severity ~detail ->
           Flight_recorder.record_audit fr ~at:time ~check ~severity ~detail)
     | _ -> ());
    let sampler =
      Option.map
        (fun _ ->
          Sampler.create ~interval:timeline_interval
            ~on_sample:(fun () ->
              Gc_stats.update gcs;
              Engine_stats.record reg (H.engine h))
            reg)
        timeline_out
    in
    let drain () =
      match sampler with
      | None -> (
        match auditor with None -> H.run h | Some a -> Auditor.settle a)
      | Some s ->
        (* custom step loop: interleave metric sampling (and due audit
           ticks) with event execution, then close the window *)
        let engine = H.engine h in
        let continue = ref true in
        while !continue do
          Sampler.poll s ~now:(Engine.now engine);
          (match auditor with
           | Some a when Auditor.due a -> ignore (Auditor.tick a : Checks.snapshot)
           | Some _ | None -> ());
          if not (Engine.step engine) then continue := false
        done;
        Sampler.poll s ~now:(Engine.now engine);
        (match auditor with
         | Some a -> ignore (Auditor.tick a : Checks.snapshot)
         | None -> ())
    in
    Printf.printf "system: %d t-peers, %d s-peers\n%!" (H.t_peer_count h) (H.s_peer_count h);
    let corpus = Keys.generate ~rng ~count:items ~categories:4 in
    Array.iter
      (fun it ->
        H.insert h ~from:(H.random_peer h) ~key:it.Keys.key ~value:it.Keys.value ())
      corpus;
    drain ();
    Printf.printf "inserted %d items\n%!" (H.total_items h);
    let targets = Keys.lookup_sequence ~rng ~items:corpus ~count:lookups in
    Array.iter
      (fun it ->
        H.lookup h ~from:(H.random_peer h) ~key:it.Keys.key ~on_result:(fun _ -> ()) ())
      targets;
    drain ();
    (match (manager, anti_entropy) with
     | Some m, Some ms ->
       (* the periodic timer keeps the queue non-empty: bracket it *)
       Printf.printf "anti-entropy window: %.0f ms\n%!" ms;
       Replication.start m;
       (match sampler with
        | None -> (
          match auditor with
          | None -> H.run_for h ms
          | Some a -> Auditor.advance a ~ms)
        | Some s ->
          (* advance in sampling-cadence slices so the timeline keeps
             ticking through the otherwise opaque window *)
          let engine = H.engine h in
          let target = Engine.now engine +. ms in
          while Engine.now engine < target do
            let next = Float.min target (Engine.now engine +. timeline_interval) in
            Engine.run_until engine ~time:next;
            Sampler.poll s ~now:(Engine.now engine);
            match auditor with
            | Some a when Auditor.due a -> ignore (Auditor.tick a : Checks.snapshot)
            | Some _ | None -> ()
          done);
       Replication.stop m;
       drain ()
     | None, Some _ ->
       Printf.eprintf "p2psim: --anti-entropy requires --replication > 0\n";
       exit 1
     | _, None -> ());
    print_metrics h;
    (* final pull of the runtime gauges so the exported snapshot (and
       the report header rendered from it) carries them *)
    Gc_stats.update gcs;
    export_observability h ~trace_format ~trace_out ~metrics_out ~metrics_csv
      ~profile ();
    (match (sampler, timeline_out) with
     | Some s, Some path ->
       (try
          Export.write_file ~path (Sampler.to_string s);
          Printf.printf "timeline: %d samples -> %s\n" (Sampler.count s) path
        with Sys_error e ->
          Printf.eprintf "p2psim: cannot write output: %s\n" e;
          exit 1)
     | _ -> ());
    let slo_ok =
      slos = [] || Slo.enforce reg ~specs:slos ~print:print_endline
    in
    let audit_failed =
      match auditor with Some a -> Auditor.errors_total a > 0 | None -> false
    in
    (* flight dump before any failure exit, so a tripped gate always
       leaves its post-mortem record behind *)
    (match recorder with
     | Some fr ->
       let reason =
         if not slo_ok then Some "slo"
         else if audit_failed then Some "audit"
         else if dump_on_exit then Some "exit"
         else None
       in
       (match reason with
        | Some reason ->
          (try
             let files =
               Flight_recorder.dump fr ?trace
                 ?lane_of:(lane_of_host h) ~registry:reg ~dir:dump_dir ~reason ()
             in
             List.iter (fun f -> Printf.printf "flight dump -> %s\n" f) files
           with Sys_error e ->
             Printf.eprintf "p2psim: cannot write flight dump: %s\n" e;
             exit 1)
        | None -> ())
     | None -> ());
    (match Option.bind auditor finish_audit with
     | Some code -> exit code
     | None -> ());
    if not slo_ok then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg $ ps_arg $ peers_arg $ items_arg $ lookups_arg $ ttl_arg
      $ delta_arg $ scheme_arg $ bloom_bits_arg $ bloom_depth_arg $ cache_arg
      $ cache_ttl_arg $ lanes_arg $ lookahead_arg $ replication_arg
      $ anti_entropy_arg $ trace_out_arg
      $ trace_cap_arg $ trace_sample_arg $ trace_format_arg $ timeline_out_arg
      $ timeline_interval_arg $ slo_arg $ metrics_out_arg $ metrics_csv_arg
      $ profile_arg $ audit_interval_arg $ dump_on_exit_arg $ dump_dir_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Build a hybrid system, insert items, run lookups, print metrics.")
    term

(* --- churn subcommand --- *)

let churn_cmd =
  let run seed ps n crash_fraction replication =
    let config = { Config.default with Config.replication_factor = replication } in
    let h, rng = build_system ~seed ~ps ~n ~config () in
    let manager =
      if replication > 0 then Some (Replication.install (H.world h)) else None
    in
    Option.iter
      (fun m -> Printf.printf "replication: factor %d\n" (Replication.factor m))
      manager;
    let corpus = Keys.generate ~rng ~count:1000 ~categories:4 in
    Array.iter
      (fun it ->
        H.insert h ~from:(H.random_peer h) ~key:it.Keys.key ~value:it.Keys.value ())
      corpus;
    H.run h;
    let before = H.total_items h in
    let peers = Array.of_list (H.peers h) in
    let victims = Churn.crash_storm ~rng ~population:(Array.length peers) ~fraction:crash_fraction in
    Array.iter (fun i -> H.crash h peers.(i)) victims;
    H.repair h;
    H.run h;
    Printf.printf "crashed %d peers; %d/%d items survived\n" (Array.length victims)
      (H.total_items h) before;
    Array.iter
      (fun it ->
        H.lookup h ~from:(H.random_peer h) ~key:it.Keys.key ~on_result:(fun _ -> ()) ())
      corpus;
    H.run h;
    Printf.printf "lookup failure ratio after storm: %.4f\n"
      (Metrics.failure_ratio (H.metrics h));
    print_metrics h
  in
  let fraction_arg =
    Arg.(
      value & opt float 0.2
      & info [ "crash" ] ~docv:"F" ~doc:"Fraction of peers to crash.")
  in
  let term =
    Term.(const run $ seed_arg $ ps_arg $ peers_arg $ fraction_arg $ replication_arg)
  in
  Cmd.v (Cmd.info "churn" ~doc:"Crash a fraction of peers and measure the damage.") term

(* --- compare subcommand: hybrid vs pure baselines --- *)

let compare_cmd =
  let run seed n items lookups ttl =
    let rng = Rng.create seed in
    let corpus = Keys.generate ~rng ~count:items ~categories:4 in
    (* hybrid at the paper's sweet spot *)
    let config = { Config.default with Config.default_ttl = ttl } in
    let h, hrng = build_system ~seed ~ps:0.7 ~n ~config () in
    ignore hrng;
    Array.iter
      (fun it ->
        H.insert h ~from:(H.random_peer h) ~key:it.Keys.key ~value:it.Keys.value ())
      corpus;
    H.run h;
    let targets = Keys.lookup_sequence ~rng ~items:corpus ~count:lookups in
    Array.iter
      (fun it ->
        H.lookup h ~from:(H.random_peer h) ~key:it.Keys.key ~on_result:(fun _ -> ()) ())
      targets;
    H.run h;
    let hm = H.metrics h in
    Printf.printf "%-22s failure %6.4f   mean hops %6.2f   connum/lookup %8.1f\n"
      "hybrid (ps=0.7)" (Metrics.failure_ratio hm)
      (Summary.mean (Metrics.lookup_hops hm))
      (float_of_int (Metrics.connum hm) /. float_of_int lookups);
    (* pure Chord, with the same successor-list budget the hybrid ring uses *)
    let ring =
      Chord.create
        ~successor_list_length:Config.default.Config.successor_list_length ()
    in
    let crng = Rng.create (seed + 10) in
    let nodes = ref [] in
    let used = Hashtbl.create n in
    while List.length !nodes < n do
      let id = Rng.int crng P2p_hashspace.Id_space.size in
      if not (Hashtbl.mem used id) then begin
        Hashtbl.add used id ();
        nodes := fst (Chord.join ring ~host:(Hashtbl.length used) ~p_id:id) :: !nodes
      end
    done;
    let node_arr = Array.of_list !nodes in
    Array.iter
      (fun it ->
        ignore
          (Chord.store ring ~from:(Rng.pick crng node_arr) ~key:it.Keys.key
             ~value:it.Keys.value
            : Chord.node list))
      corpus;
    let chops = ref 0 and cfail = ref 0 in
    Array.iter
      (fun it ->
        let value, path = Chord.lookup ring ~from:(Rng.pick crng node_arr) ~key:it.Keys.key in
        chops := !chops + List.length path - 1;
        if value = None then incr cfail)
      targets;
    Printf.printf "%-22s failure %6.4f   mean hops %6.2f   (finger-routed)\n" "pure Chord"
      (float_of_int !cfail /. float_of_int lookups)
      (float_of_int !chops /. float_of_int lookups);
    (* pure Gnutella *)
    let mesh = Mesh.create ~rng:(Rng.create (seed + 20)) ~links_per_join:3 () in
    let mpeers = Array.init n (fun host -> Mesh.join mesh ~host) in
    let mrng = Rng.create (seed + 21) in
    Array.iter
      (fun it ->
        Mesh.store mesh (Rng.pick mrng mpeers) ~key:it.Keys.key ~value:it.Keys.value)
      corpus;
    let ghits = ref 0 and gcontacts = ref 0 in
    Array.iter
      (fun it ->
        let r = Mesh.flood_lookup mesh ~from:(Rng.pick mrng mpeers) ~key:it.Keys.key ~ttl in
        if r.Mesh.value <> None then incr ghits;
        gcontacts := !gcontacts + r.Mesh.contacted)
      targets;
    Printf.printf "%-22s failure %6.4f   contacts/lookup %8.1f   (ttl %d flood)\n"
      "pure Gnutella"
      (1.0 -. (float_of_int !ghits /. float_of_int lookups))
      (float_of_int !gcontacts /. float_of_int lookups)
      ttl
  in
  let term =
    Term.(const run $ seed_arg $ peers_arg $ items_arg $ lookups_arg $ ttl_arg)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Hybrid vs pure Chord vs pure Gnutella on one workload.")
    term

(* --- scenario subcommand --- *)

(* Compact script syntax, whitespace-separated tokens:
     join:N:PS  leave  crash  crash:F  repair  insert:N  lookup:N
     settle     advance:MS  anti-entropy:MS
   e.g. "join:80:0.7 insert:200 crash:0.2 repair lookup:200" *)
let parse_script text =
  let parse_token token =
    match String.split_on_char ':' token with
    | [ "join"; n; ps ] -> Ok (Scenario.Join_many (int_of_string n, float_of_string ps))
    | [ "join" ] -> Ok (Scenario.Join_many (1, 0.5))
    | [ "leave" ] -> Ok Scenario.Leave_random
    | [ "crash" ] -> Ok Scenario.Crash_random
    | [ "crash"; f ] -> Ok (Scenario.Crash_fraction (float_of_string f))
    | [ "repair" ] -> Ok Scenario.Repair
    | [ "insert"; n ] -> Ok (Scenario.Insert_items (int_of_string n))
    | [ "lookup"; n ] -> Ok (Scenario.Lookup_items (int_of_string n))
    | [ "settle" ] -> Ok Scenario.Settle
    | [ "advance"; ms ] -> Ok (Scenario.Advance (float_of_string ms))
    | [ "anti-entropy"; ms ] -> Ok (Scenario.Anti_entropy (float_of_string ms))
    | _ -> Error token
  in
  String.split_on_char ' ' text
  |> List.filter (fun t -> t <> "")
  |> List.fold_left
       (fun acc token ->
         match (acc, parse_token token) with
         | Ok actions, Ok a -> Ok (a :: actions)
         | (Error _ as e), _ -> e
         | Ok _, Error t -> Error t)
       (Ok [])
  |> Result.map List.rev

let scenario_cmd =
  let run seed n script_text lanes lookahead replication assert_no_loss
      audit_interval trace_out trace_cap trace_sample trace_format metrics_out =
    match parse_script script_text with
    | Error token ->
      Printf.printf "cannot parse script token %S\n" token;
      exit 1
    | Ok script ->
      if trace_cap <= 0 then begin
        Printf.eprintf "p2psim: --trace-cap must be positive (got %d)\n" trace_cap;
        exit 1
      end;
      if trace_sample < 0.0 || trace_sample > 1.0 then begin
        Printf.eprintf "p2psim: --trace-sample must be in [0,1] (got %g)\n"
          trace_sample;
        exit 1
      end;
      let trace =
        match trace_out with
        | Some _ ->
          Some
            (Trace.create ~capacity:trace_cap ~sample_rate:trace_sample
               ~sample_seed:seed ())
        | None -> None
      in
      let config =
        {
          Config.default with
          Config.replication_factor = replication;
          engine_lanes = lanes;
          engine_lookahead = lookahead;
        }
      in
      (match Config.validate config with
       | Ok () -> ()
       | Error e ->
         Printf.eprintf "p2psim: %s\n" e;
         exit 1);
      let topo = Transit_stub.generate ~rng:(Rng.create (seed + 1)) (topology_for n) in
      let h =
        H.create ~seed ~routing:(Routing.create topo.Transit_stub.graph) ~config
          ?trace ()
      in
      let report = Scenario.run ?audit_interval h ~seed ~script in
      Format.printf "%a@." Scenario.pp_report report;
      let reg = Metrics.registry (H.metrics h) in
      if Trace.enabled (H.trace h) then Spans.record reg (H.trace h);
      (try
         (match trace_out with
          | Some path ->
            (match trace_format with
             | `Jsonl ->
               Export.write_trace ~path (H.trace h);
               Printf.printf "trace: %d events (%d ops) -> %s\n"
                 (Trace.length (H.trace h))
                 (Trace.ops_started (H.trace h))
                 path
             | `Chrome ->
               Export.write_chrome_trace ~path ?lane_of:(lane_of_host h) (H.trace h);
               Printf.printf "trace: %d spans (%d ops) -> %s (chrome trace-event)\n"
                 (Trace.spans_started (H.trace h))
                 (Trace.ops_started (H.trace h))
                 path)
          | None -> ());
         match metrics_out with
         | Some path ->
           Export.write_metrics ~path reg;
           Printf.printf "metrics -> %s\n" path
         | None -> ()
       with Sys_error e ->
         Printf.eprintf "p2psim: cannot write output: %s\n" e;
         exit 1);
      if
        assert_no_loss
        && report.Scenario.final_items < report.Scenario.inserted
      then begin
        Printf.printf "DATA LOST: %d of %d inserted items missing at the end\n"
          (report.Scenario.inserted - report.Scenario.final_items)
          report.Scenario.inserted;
        exit 1
      end;
      (* with auditing on, the exit code carries health: any violation at
         any tick fails the command (CI gates on this) *)
      (match report.Scenario.audit with
       | Some a when a.Scenario.audit_violations > 0 -> exit 1
       | Some _ | None ->
         if audit_interval <> None && Result.is_error report.Scenario.invariants then
           exit 1)
  in
  let script_arg =
    Arg.(
      value
      & opt string "join:80:0.7 insert:200 settle crash:0.2 repair lookup:200"
      & info [ "script" ] ~docv:"SCRIPT"
          ~doc:
            "Whitespace-separated actions: join:N:PS, leave, crash, crash:F, \
             repair, insert:N, lookup:N, settle, advance:MS, anti-entropy:MS.")
  in
  let assert_no_loss_arg =
    Arg.(
      value & flag
      & info [ "assert-no-loss" ]
          ~doc:
            "Exit non-zero if any inserted item is missing from the primary stores \
             when the script ends (the durability gate CI runs under \
             $(b,--replication)).")
  in
  let term =
    Term.(
      const run $ seed_arg $ peers_arg $ script_arg $ lanes_arg $ lookahead_arg
      $ replication_arg $ assert_no_loss_arg $ audit_interval_arg $ trace_out_arg
      $ trace_cap_arg $ trace_sample_arg $ trace_format_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a declarative churn/workload script and report.")
    term

(* --- audit subcommand --- *)

(* Deliberate corruption of a live system, for demonstrating (and testing)
   that the auditor catches real damage.  Each injection violates exactly
   one invariant class. *)
let inject_corruption h ~config = function
  | "none" -> ()
  | "degree" ->
    (* wire unregistered stowaway children onto a root until its tree
       degree exceeds delta *)
    let w = H.world h in
    let arr = World.t_peers w in
    if Array.length arr = 0 then failwith "no t-peer to corrupt";
    let root = arr.(0) in
    let needed = config.Config.delta + 1 - List.length root.Peer.children in
    for i = 1 to max 1 needed do
      let child =
        Peer.make ~host:(-i) ~p_id:root.Peer.p_id ~role:Peer.S_peer
          ~link_capacity:10.0 ()
      in
      Peer.attach_child ~parent:root ~child
    done
  | "ring" ->
    let w = H.world h in
    let arr = World.t_peers w in
    if Array.length arr < 2 then failwith "need at least 2 t-peers to break the ring";
    arr.(0).Peer.succ <- Some arr.(0)
  | "placement" ->
    (* plant an item whose route_id falls outside its holder's segment *)
    let w = H.world h in
    let arr = World.t_peers w in
    if Array.length arr < 2 then failwith "need at least 2 t-peers to misplace an item";
    let victim = arr.(0) in
    let outside = Peer.segment_left victim in
    Data_store.insert_routed victim.Peer.store ~route_id:outside
      ~key:"audit-misplaced" ~value:"x"
  | "replication" ->
    (* silently drop one replica copy: the replication_factor check must
       flag the under-replicated item, and a heal pass must restore it *)
    if config.Config.replication_factor = 0 then
      failwith "--inject replication requires --replication > 0";
    let w = H.world h in
    let holder =
      List.find_opt
        (fun p -> Data_store.size p.Peer.replicas > 0)
        (World.live_peers w)
    in
    (match holder with
     | None -> failwith "no replica copies exist to corrupt"
     | Some p ->
       (match Data_store.keys p.Peer.replicas with
        | [] -> assert false
        | key :: _ ->
          Data_store.remove p.Peer.replicas ~key;
          Printf.printf "dropped replica copy of %S at host %d\n" key p.Peer.host))
  | other -> failwith (Printf.sprintf "unknown injection %S" other)

let audit_cmd =
  let run seed ps n items lookups interval inject bloom_bits bloom_depth cache_capacity
      replication checks trace_out trace_cap trace_sample trace_format
      metrics_out metrics_csv =
    let config =
      {
        Config.default with
        Config.bloom_bits_per_key = bloom_bits;
        bloom_depth;
        cache_capacity;
        replication_factor = replication;
      }
    in
    (match Config.validate config with
     | Ok () -> ()
     | Error e ->
       Printf.eprintf "p2psim: %s\n" e;
       exit 1);
    if trace_cap <= 0 then begin
      Printf.eprintf "p2psim: --trace-cap must be positive (got %d)\n" trace_cap;
      exit 1
    end;
    if trace_sample < 0.0 || trace_sample > 1.0 then begin
      Printf.eprintf "p2psim: --trace-sample must be in [0,1] (got %g)\n"
        trace_sample;
      exit 1
    end;
    let selected =
      match checks with
      | [] -> Checks.all
      | names -> (
        match Checks.select names with
        | Ok cs -> cs
        | Error unknown ->
          Printf.eprintf "p2psim audit: unknown check %S (have: %s)\n" unknown
            (String.concat ", " Checks.names);
          exit 1)
    in
    let trace =
      match trace_out with
      | Some _ ->
        Some
          (Trace.create ~capacity:trace_cap ~sample_rate:trace_sample
             ~sample_seed:seed ())
      | None -> None
    in
    Printf.printf "building %d peers (p_s = %.2f)...\n%!" n ps;
    let h, rng = build_system ?trace ~seed ~ps ~n ~config () in
    let manager =
      if replication > 0 then Some (Replication.install (H.world h)) else None
    in
    let a = Auditor.create ~interval ~checks:selected (H.world h) in
    let corpus = Keys.generate ~rng ~count:items ~categories:4 in
    Array.iter
      (fun it ->
        H.insert h ~from:(H.random_peer h) ~key:it.Keys.key ~value:it.Keys.value ())
      corpus;
    Auditor.settle a;
    let targets = Keys.lookup_sequence ~rng ~items:corpus ~count:lookups in
    Array.iter
      (fun it ->
        H.lookup h ~from:(H.random_peer h) ~key:it.Keys.key ~on_result:(fun _ -> ()) ())
      targets;
    Auditor.settle a;
    (try inject_corruption h ~config inject
     with Failure msg ->
       Printf.eprintf "p2psim audit: %s\n" msg;
       exit 2);
    if inject <> "none" then
      Printf.printf "injected corruption: %s\n" inject;
    (* let the armed periodic timer catch whatever state the run ended in *)
    Auditor.start a;
    H.run_for h (2.0 *. interval);
    Auditor.stop a;
    (* for the replication demo, close the loop: a heal pass restores the
       dropped copy and a final tick shows the check going quiet again *)
    (match (manager, inject) with
     | Some m, "replication" ->
       Replication.heal m;
       H.run h;
       let snap = Auditor.tick a in
       let healed =
         List.for_all
           (fun (s : Checks.status) ->
             s.Checks.name <> "replication_factor" || s.Checks.violations = [])
           snap.Checks.statuses
       in
       Printf.printf "heal pass: replication_factor %s\n"
         (if healed then "restored (check clean)" else "STILL VIOLATED")
     | _ -> ());
    export_observability h ~trace_format ~trace_out ~metrics_out ~metrics_csv
      ~profile:false ();
    match finish_audit a with Some code -> exit code | None -> ()
  in
  let interval_arg =
    Arg.(
      value & opt float 250.0
      & info [ "interval" ] ~docv:"MS" ~doc:"Audit cadence in simulated milliseconds.")
  in
  let inject_arg =
    Arg.(
      value
      & opt string "none"
      & info [ "inject" ] ~docv:"KIND"
          ~doc:
            "Deliberately corrupt the system before the final audit window: \
             $(b,degree) (s-peer over the degree cap), $(b,ring) (broken successor \
             pointer), $(b,placement) (item outside its owner's segment), \
             $(b,replication) (silently dropped replica copy; needs \
             $(b,--replication) > 0, and a heal pass restores it after the audit \
             window), or $(b,none).")
  in
  let checks_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "check" ] ~docv:"NAME"
          ~doc:"Run only this catalogue check (repeatable; default: all).")
  in
  let term =
    Term.(
      const run $ seed_arg $ ps_arg $ peers_arg $ items_arg $ lookups_arg $ interval_arg
      $ inject_arg $ bloom_bits_arg $ bloom_depth_arg $ cache_arg $ replication_arg
      $ checks_arg $ trace_out_arg $ trace_cap_arg $ trace_sample_arg
      $ trace_format_arg $ metrics_out_arg $ metrics_csv_arg)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Build a system, run a workload under the online invariant auditor, and exit \
          non-zero if any Error-severity violation is found.  $(b,--inject) \
          demonstrates detection by corrupting the system first.")
    term

(* --- analyze subcommand --- *)

let analyze_cmd =
  let run n delta ttl =
    Printf.printf "Section-4 model, N = %d, delta = %d, ttl = %d\n" n delta ttl;
    Printf.printf "%6s  %12s  %14s  %14s\n" "p_s" "join (hops)" "lookup (hops)" "failure ratio";
    List.iter
      (fun ps ->
        Printf.printf "%6.2f  %12.3f  %14.3f  %14.4f\n" ps
          (F.join_latency ~ps ~n ~delta)
          (F.lookup_latency ~ps ~n ~delta ~ttl)
          (F.lookup_failure_ratio ~ps ~delta ~ttl))
      [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ]
  in
  let n_arg =
    Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Total number of peers.")
  in
  let term = Term.(const run $ n_arg $ delta_arg $ ttl_arg) in
  Cmd.v (Cmd.info "analyze" ~doc:"Print the paper's Section-4 analytical model.") term

(* --- report subcommand --- *)

(* Merge several metrics documents (e.g. one per live node, or serve's
   per-node scrape files) into one registry export: counters sum,
   gauges keep the maximum, log histograms merge bucketwise.  A single
   file passes through unmerged so Summary-backed histograms (which the
   merge cannot rebuild) stay visible. *)
let merged_metrics_doc paths =
  match paths with
  | [ path ] -> Ok (Export.read_file path)
  | paths ->
    let reg = Registry.create () in
    let rec fold = function
      | [] -> Ok (P2p_obs.Json.to_string (Registry.to_json reg))
      | path :: rest -> (
        match P2p_obs.Json.parse (Export.read_file path) with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok doc ->
          (* scrape snapshots wrap the registry doc in [metrics] *)
          let doc =
            match P2p_obs.Scrape.of_json doc with
            | Ok snap -> snap.P2p_obs.Scrape.metrics
            | Error _ -> doc
          in
          P2p_obs.Scrape.merge_metrics_into reg doc;
          fold rest)
    in
    fold paths

let report_cmd =
  let run paths timeline =
    if paths = [] && timeline = None then begin
      Printf.eprintf
        "p2psim report: nothing to render (give METRICS.json and/or --timeline)\n";
      exit 1
    end;
    (match paths with
     | [] -> ()
     | paths -> (
       match merged_metrics_doc paths with
       | Error msg ->
         Printf.eprintf "p2psim report: %s\n" msg;
         exit 1
       | Ok doc -> (
         match Report.of_string doc with
         | Ok report ->
           if List.length paths > 1 then
             Printf.printf "merged report over %d metrics files\n\n"
               (List.length paths);
           print_string (Report.render report)
         | Error msg ->
           Printf.eprintf "p2psim report: cannot parse metrics: %s\n" msg;
           exit 1)));
    match timeline with
    | Some tpath -> (
      match Report.render_timeline (Export.read_file tpath) with
      | Ok text -> print_string text
      | Error msg ->
        Printf.eprintf "p2psim report: cannot parse timeline %s: %s\n" tpath msg;
        exit 1)
    | None -> ()
  in
  let path_arg =
    Arg.(
      value
      & pos_all file []
      & info [] ~docv:"METRICS.json"
          ~doc:
            "Metrics JSON files written by $(b,run --metrics-out) or \
             $(b,serve)'s per-node scrapes.  Several files are merged \
             (counters sum, gauges max, latency log histograms \
             bucket-merge) before rendering.")
  in
  let timeline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Also render a sampler timeline (JSONL written by \
             $(b,run --timeline-out)) as ASCII sparklines, one row per active \
             series.")
  in
  let term = Term.(const run $ path_arg $ timeline_arg) in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Pretty-print a metrics JSON dump: per-subsystem counters, gauges, \
          latency percentile tables with critical-path attribution, and ASCII \
          charts; $(b,--timeline) adds sparkline time series.")
    term

(* --- serve subcommand --- *)

let serve_cmd =
  let run peers port_base smoke inserts lookups ready_timeout dump_dir
      sample_rate sample_seed slo linger =
    if peers < 1 then begin
      Printf.eprintf "p2psim serve: --peers must be >= 1\n";
      exit 2
    end;
    if sample_rate < 0.0 || sample_rate > 1.0 then begin
      Printf.eprintf "p2psim serve: --trace-sample must be within [0, 1]\n";
      exit 2
    end;
    List.iter
      (fun spec ->
        match Slo.parse spec with
        | Ok _ -> ()
        | Error msg ->
          Printf.eprintf "p2psim serve: bad --slo %S: %s\n" spec msg;
          exit 2)
      slo;
    let outcome =
      P2p_transport.Serve.run ~inserts ~lookups ~ready_timeout ~dump_dir
        ~sample_rate ~sample_seed ~slo ~linger ~peers ~port_base ~smoke ()
    in
    P2p_transport.Serve.print_outcome outcome;
    exit outcome.P2p_transport.Serve.exit_code
  in
  let peers_arg =
    Arg.(
      value & opt int 8
      & info [ "peers" ] ~docv:"N" ~doc:"Number of worker processes to fork.")
  in
  let port_base_arg =
    Arg.(
      value & opt int 4700
      & info [ "port-base" ] ~docv:"PORT"
          ~doc:
            "First TCP port; worker $(i,i) listens on 127.0.0.1:PORT+$(i,i) \
             and the client on PORT+N.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the smoke workload (inserts + lookups), report recall, shut \
             the ring down and exit non-zero unless recall is 1.0 and the \
             health dumps are violation-free.")
  in
  let inserts_arg =
    Arg.(
      value & opt int 200
      & info [ "inserts" ] ~docv:"K" ~doc:"Smoke-mode insert count.")
  in
  let lookups_arg =
    Arg.(
      value & opt int 500
      & info [ "lookups" ] ~docv:"K" ~doc:"Smoke-mode lookup count.")
  in
  let ready_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "ready-timeout" ] ~docv:"SECONDS"
          ~doc:"How long to wait for every worker to report ready.")
  in
  let dump_dir_arg =
    Arg.(
      value & opt string "_serve_health"
      & info [ "dump-dir" ] ~docv:"DIR"
          ~doc:
            "Directory receiving one health-$(i,node).jsonl per worker \
             (periodic self-audit and transport counters).")
  in
  let sample_rate_arg =
    Arg.(
      value
      & opt float Config.default.Config.trace_sample_rate
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:
            "Cluster-wide head-sampling rate for cross-process traces \
             (every worker gets the same rate so wire-propagated sampling \
             bits agree with local decisions).")
  in
  let sample_seed_arg =
    Arg.(
      value
      & opt int Config.default.Config.trace_sample_seed
      & info [ "trace-seed" ] ~docv:"SEED"
          ~doc:"Seed of the sampling hash (must also match cluster-wide).")
  in
  let slo_arg =
    Arg.(
      value & opt_all string []
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Latency objective such as $(i,lookup:p99<=2000), enforced in \
             smoke mode against the cluster-merged histograms; repeatable; \
             any violation makes the exit code non-zero.")
  in
  let linger_arg =
    Arg.(
      value & opt float 0.
      & info [ "linger" ] ~docv:"SECONDS"
          ~doc:
            "Smoke mode: keep the warmed-up ring serving this long after \
             the scrape, so $(b,p2psim top) / $(b,p2psim cluster-report) \
             can poll it with populated histograms.")
  in
  let term =
    Term.(
      const run $ peers_arg $ port_base_arg $ smoke_arg $ inserts_arg
      $ lookups_arg $ ready_timeout_arg $ dump_dir_arg $ sample_rate_arg
      $ sample_seed_arg $ slo_arg $ linger_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Fork N OS processes that bootstrap a live ring on localhost over \
          real TCP sockets, serve inserts/lookups, answer observability \
          scrapes, and write periodic JSONL health dumps per process.")
    term

(* --- top / cluster-report subcommands (live-ring aggregator) --- *)

let aggregator_args =
  let peers_arg =
    Arg.(
      value & opt int 8
      & info [ "peers" ] ~docv:"N"
          ~doc:"Ring size of the serving cluster to poll.")
  in
  let port_base_arg =
    Arg.(
      value & opt int 4700
      & info [ "port-base" ] ~docv:"PORT"
          ~doc:"The serving ring's $(b,--port-base).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"How long to wait for scrape replies each round.")
  in
  (peers_arg, port_base_arg, timeout_arg)

let top_cmd =
  let run peers port_base timeout interval count =
    if peers < 1 then begin
      Printf.eprintf "p2psim top: --peers must be >= 1\n";
      exit 2
    end;
    let agg = P2p_transport.Serve.aggregator ~peers ~port_base () in
    let rounds = ref 0 in
    let stop = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ | Sys_error _ -> ());
    while (not !stop) && (count = 0 || !rounds < count) do
      let snapshots = P2p_transport.Serve.aggregator_scrape agg ~timeout () in
      incr rounds;
      (* full-screen refresh, like top(1); suppressed for single shots
         so the output stays pipeable *)
      if count <> 1 then print_string "\027[2J\027[H";
      Printf.printf "p2psim top — ring @ 127.0.0.1:%d+ (%d peers), round %d\n\n"
        port_base peers !rounds;
      if snapshots = [] then
        print_string "no peers answered (is the ring serving?)\n"
      else print_string (P2p_obs.Scrape.render_table snapshots);
      if snapshots = [] && !rounds = 1 && count = 1 then begin
        P2p_transport.Serve.aggregator_stop agg;
        exit 1
      end;
      if count = 0 || !rounds < count then
        ignore (Unix.select [] [] [] interval)
    done;
    P2p_transport.Serve.aggregator_stop agg;
    exit 0
  in
  let peers_arg, port_base_arg, timeout_arg = aggregator_args in
  let interval_arg =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Delay between refreshes.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"K"
          ~doc:"Stop after this many refreshes (0 = until Ctrl-C).")
  in
  let term =
    Term.(
      const run $ peers_arg $ port_base_arg $ timeout_arg $ interval_arg
      $ count_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-node table for a serving ring: poll every peer's scrape \
          endpoint and refresh a cluster view (readiness, store sizes, \
          merged latency percentiles, wire counters) like top(1).")
    term

let cluster_report_cmd =
  let run peers port_base timeout slo metrics_out trace_out =
    if peers < 1 then begin
      Printf.eprintf "p2psim cluster-report: --peers must be >= 1\n";
      exit 2
    end;
    List.iter
      (fun spec ->
        match Slo.parse spec with
        | Ok _ -> ()
        | Error msg ->
          Printf.eprintf "p2psim cluster-report: bad --slo %S: %s\n" spec msg;
          exit 2)
      slo;
    let agg = P2p_transport.Serve.aggregator ~peers ~port_base () in
    let snapshots =
      P2p_transport.Serve.aggregator_scrape agg ~spans:true ~timeout ()
    in
    P2p_transport.Serve.aggregator_stop agg;
    if snapshots = [] then begin
      Printf.eprintf
        "p2psim cluster-report: no peers answered (is the ring serving?)\n";
      exit 1
    end;
    let scraped = List.length snapshots in
    if scraped < peers then
      Printf.eprintf "p2psim cluster-report: warning: only %d/%d peers answered\n"
        scraped peers;
    let merged = P2p_obs.Scrape.merged_registry snapshots in
    print_string (P2p_obs.Scrape.render_table snapshots);
    print_newline ();
    (match Report.of_string (P2p_obs.Json.to_string (Registry.to_json merged)) with
     | Ok report -> print_string (Report.render report)
     | Error msg ->
       Printf.eprintf "p2psim cluster-report: cannot render report: %s\n" msg);
    (match metrics_out with
     | Some path ->
       Export.write_file ~path
         (P2p_obs.Json.to_string (Registry.to_json merged));
       Printf.printf "merged metrics -> %s\n" path
     | None -> ());
    (match trace_out with
     | Some path ->
       Export.write_file ~path
         (P2p_obs.Json.to_string (P2p_obs.Scrape.merged_chrome snapshots));
       Printf.printf "merged chrome trace -> %s (load in ui.perfetto.dev)\n"
         path
     | None -> ());
    let slo_ok =
      match slo with
      | [] -> true
      | specs ->
        Slo.enforce merged ~specs ~print:(fun line ->
            Printf.printf "%s\n" line)
    in
    exit (if slo_ok then 0 else 1)
  in
  let peers_arg, port_base_arg, timeout_arg = aggregator_args in
  let slo_arg =
    Arg.(
      value & opt_all string []
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Latency objective such as $(i,lookup:p99<=2000), enforced \
             against the cluster-merged histograms; repeatable; exits \
             non-zero on violation.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the merged registry JSON here.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the merged chrome/Perfetto trace here (one track per \
             process, cross-process span trees intact).")
  in
  let term =
    Term.(
      const run $ peers_arg $ port_base_arg $ timeout_arg $ slo_arg
      $ metrics_out_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "cluster-report"
       ~doc:
         "One-shot cluster rollup for a serving ring: scrape every peer, \
          merge histograms bucketwise into cluster-wide percentiles, render \
          the merged report, optionally write merged metrics/trace files, \
          and gate $(b,--slo) specs on the aggregated distribution.")
    term

let () =
  let doc = "hybrid peer-to-peer system simulator (Yang & Yang reproduction)" in
  let info = Cmd.info "p2psim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; churn_cmd; compare_cmd; scenario_cmd; audit_cmd; analyze_cmd;
            report_cmd; serve_cmd; top_cmd; cluster_report_cmd ]))
