test/test_edge_cases.ml: Alcotest Config Data_ops H Helpers List Option P2p_hashspace P2p_net P2p_sim P2p_stats Peer Printf Result
