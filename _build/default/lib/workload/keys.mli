(** Synthetic data-sharing workloads.

    The paper's experiments insert data items (key, value pairs — file
    names and file contents) generated at random peers, then issue lookups
    for previously inserted keys.  This module produces those keys
    deterministically from a seeded RNG, optionally tagged with an interest
    category for the interest-based s-network experiments. *)

type item = {
  key : string;
  value : string;
  category : int; (** interest category, in [\[0, categories)] *)
}

(** [generate ~rng ~count ~categories] makes [count] distinct items with
    uniformly random category tags.
    @raise Invalid_argument if [count < 0] or [categories <= 0]. *)
val generate : rng:P2p_sim.Rng.t -> count:int -> categories:int -> item array

(** [d_id item] is the item's hashed ID in the shared space. *)
val d_id : item -> P2p_hashspace.Id_space.id

(** [lookup_sequence ~rng ~items ~count] draws [count] uniform lookup
    targets (with replacement) from previously generated items. *)
val lookup_sequence : rng:P2p_sim.Rng.t -> items:item array -> count:int -> item array

(** [zipf_lookup_sequence ~rng ~items ~count ~exponent] draws lookups with
    Zipf-distributed popularity over item rank (rank 0 most popular). *)
val zipf_lookup_sequence :
  rng:P2p_sim.Rng.t -> items:item array -> count:int -> exponent:float -> item array
