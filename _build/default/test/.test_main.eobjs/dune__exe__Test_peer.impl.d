test/test_peer.ml: Alcotest Hybrid_p2p List
