(* Tests for P2p_workload: Keys, Zipf, Churn. *)

module Rng = P2p_sim.Rng
module Keys = P2p_workload.Keys
module Zipf = P2p_workload.Zipf
module Churn = P2p_workload.Churn

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf3 = Alcotest.check (Alcotest.float 1e-3)

let test_keys_distinct () =
  let items = Keys.generate ~rng:(Rng.create 1) ~count:1000 ~categories:5 in
  checki "count" 1000 (Array.length items);
  let seen = Hashtbl.create 1000 in
  Array.iter
    (fun it ->
      checkb "unique key" false (Hashtbl.mem seen it.Keys.key);
      Hashtbl.add seen it.Keys.key ();
      checkb "category in range" true (it.Keys.category >= 0 && it.Keys.category < 5))
    items

let test_keys_deterministic () =
  let a = Keys.generate ~rng:(Rng.create 9) ~count:10 ~categories:3 in
  let b = Keys.generate ~rng:(Rng.create 9) ~count:10 ~categories:3 in
  Array.iteri
    (fun i it -> Alcotest.check Alcotest.string "same keys" it.Keys.key b.(i).Keys.key)
    a

let test_keys_d_id_valid () =
  let items = Keys.generate ~rng:(Rng.create 2) ~count:100 ~categories:2 in
  Array.iter
    (fun it -> checkb "valid d_id" true (P2p_hashspace.Id_space.valid (Keys.d_id it)))
    items

let test_keys_rejects () =
  Alcotest.check_raises "negative count" (Invalid_argument "Keys.generate: negative count")
    (fun () -> ignore (Keys.generate ~rng:(Rng.create 1) ~count:(-1) ~categories:1 : Keys.item array));
  Alcotest.check_raises "no categories" (Invalid_argument "Keys.generate: categories")
    (fun () -> ignore (Keys.generate ~rng:(Rng.create 1) ~count:1 ~categories:0 : Keys.item array))

let test_lookup_sequence () =
  let rng = Rng.create 3 in
  let items = Keys.generate ~rng ~count:50 ~categories:1 in
  let seq = Keys.lookup_sequence ~rng ~items ~count:500 in
  checki "length" 500 (Array.length seq);
  Array.iter
    (fun it -> checkb "drawn from items" true (Array.exists (fun x -> x == it) items))
    seq

let test_zipf_probabilities_sum () =
  let z = Zipf.create ~n:100 ~exponent:1.0 in
  let sum = ref 0.0 in
  for k = 0 to 99 do
    sum := !sum +. Zipf.probability z k
  done;
  checkf3 "sums to 1" 1.0 !sum

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~exponent:0.8 in
  for k = 1 to 49 do
    checkb "decreasing" true (Zipf.probability z k <= Zipf.probability z (k - 1) +. 1e-12)
  done

let test_zipf_uniform_when_zero_exponent () =
  let z = Zipf.create ~n:10 ~exponent:0.0 in
  for k = 0 to 9 do
    checkf3 "uniform" 0.1 (Zipf.probability z k)
  done

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:100 ~exponent:1.2 in
  let rng = Rng.create 4 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 0 dominates rank 50" true (counts.(0) > 10 * counts.(50));
  (* empirical top-rank frequency near its probability *)
  let p0 = float_of_int counts.(0) /. 20_000.0 in
  checkb "empirical matches model" true (abs_float (p0 -. Zipf.probability z 0) < 0.02)

let test_zipf_rejects () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n") (fun () ->
      ignore (Zipf.create ~n:0 ~exponent:1.0 : Zipf.t));
  let z = Zipf.create ~n:5 ~exponent:1.0 in
  Alcotest.check_raises "rank out of range" (Invalid_argument "Zipf.probability")
    (fun () -> ignore (Zipf.probability z 5 : float))

let test_zipf_lookup_sequence () =
  let rng = Rng.create 5 in
  let items = Keys.generate ~rng ~count:20 ~categories:1 in
  let seq = Keys.zipf_lookup_sequence ~rng ~items ~count:2000 ~exponent:1.5 in
  let count_first = Array.fold_left (fun acc it -> if it == items.(0) then acc + 1 else acc) 0 seq in
  let count_last =
    Array.fold_left (fun acc it -> if it == items.(19) then acc + 1 else acc) 0 seq
  in
  checkb "head much hotter than tail" true (count_first > 5 * max 1 count_last)

let test_churn_poisson_rates () =
  let rng = Rng.create 6 in
  let events =
    Churn.poisson ~rng ~duration:10_000.0 ~join_rate:0.01 ~leave_rate:0.005 ~crash_rate:0.0
  in
  checkb "sorted" true (Churn.is_sorted events);
  let joins = List.length (List.filter (fun e -> e.Churn.kind = Churn.Join) events) in
  let leaves = List.length (List.filter (fun e -> e.Churn.kind = Churn.Leave) events) in
  let crashes = List.length (List.filter (fun e -> e.Churn.kind = Churn.Crash) events) in
  checkb "join count near 100" true (joins > 60 && joins < 150);
  checkb "leave count near 50" true (leaves > 25 && leaves < 85);
  checki "no crashes at rate 0" 0 crashes;
  List.iter
    (fun e -> checkb "within duration" true (e.Churn.time >= 0.0 && e.Churn.time < 10_000.0))
    events

let test_churn_rejects () =
  Alcotest.check_raises "negative rate" (Invalid_argument "Churn.poisson: negative rate")
    (fun () ->
      ignore
        (Churn.poisson ~rng:(Rng.create 1) ~duration:1.0 ~join_rate:(-1.0) ~leave_rate:0.0
           ~crash_rate:0.0
          : Churn.event list))

let test_crash_storm () =
  let rng = Rng.create 7 in
  let victims = Churn.crash_storm ~rng ~population:100 ~fraction:0.25 in
  checki "size" 25 (Array.length victims);
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      checkb "in range" true (v >= 0 && v < 100);
      checkb "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    victims;
  checki "fraction 0" 0 (Array.length (Churn.crash_storm ~rng ~population:100 ~fraction:0.0));
  checki "fraction 1" 100 (Array.length (Churn.crash_storm ~rng ~population:100 ~fraction:1.0));
  Alcotest.check_raises "bad fraction" (Invalid_argument "Churn.crash_storm: fraction")
    (fun () -> ignore (Churn.crash_storm ~rng ~population:10 ~fraction:1.5 : int array))

let suite =
  [
    Alcotest.test_case "keys: distinct and tagged" `Quick test_keys_distinct;
    Alcotest.test_case "keys: deterministic" `Quick test_keys_deterministic;
    Alcotest.test_case "keys: valid d_ids" `Quick test_keys_d_id_valid;
    Alcotest.test_case "keys: rejects bad args" `Quick test_keys_rejects;
    Alcotest.test_case "keys: lookup sequence" `Quick test_lookup_sequence;
    Alcotest.test_case "zipf: probabilities sum to 1" `Quick test_zipf_probabilities_sum;
    Alcotest.test_case "zipf: monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf: exponent 0 is uniform" `Quick test_zipf_uniform_when_zero_exponent;
    Alcotest.test_case "zipf: sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf: rejects bad args" `Quick test_zipf_rejects;
    Alcotest.test_case "zipf: lookup sequence skew" `Quick test_zipf_lookup_sequence;
    Alcotest.test_case "churn: poisson rates" `Quick test_churn_poisson_rates;
    Alcotest.test_case "churn: rejects bad args" `Quick test_churn_rejects;
    Alcotest.test_case "churn: crash storm" `Quick test_crash_storm;
  ]
