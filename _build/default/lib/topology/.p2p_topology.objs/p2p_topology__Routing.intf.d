lib/topology/routing.mli: Graph
