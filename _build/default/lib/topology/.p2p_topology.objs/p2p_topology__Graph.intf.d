lib/topology/graph.mli:
