lib/workload/zipf.mli: P2p_sim
