(* Table 2: total connum — the number of peers all lookups contacted —
   for p_s x TTL in {1, 2, 4} (Section 6.3).  The paper's simulation
   forwards data requests linearly along the ring, so connum at p_s = 0 is
   about N/2 per lookup and falls roughly linearly as p_s grows; TTL only
   matters at high p_s, where floods cover big s-networks. *)

open Experiments

let run ~scale () =
  header "Table 2 — total connum under different p_s and TTL values";
  row "%6s  %12s  %12s  %12s\n" "p_s" "TTL=1" "TTL=2" "TTL=4";
  List.iter
    (fun ps ->
      let connums =
        List.map
          (fun ttl ->
            let b = build ~seed:10 ~ps ~scale () in
            insert_corpus b;
            let before = Metrics.connum (H.metrics b.h) in
            run_lookups ~ttl b ~count:scale.n_lookups;
            Metrics.connum (H.metrics b.h) - before)
          [ 1; 2; 4 ]
      in
      match connums with
      | [ c1; c2; c4 ] -> row "%6.2f  %12d  %12d  %12d\n%!" ps c1 c2 c4
      | _ -> assert false)
    ps_sweep
