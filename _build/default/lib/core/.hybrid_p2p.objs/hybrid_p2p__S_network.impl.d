lib/core/s_network.ml: Data_store Hashtbl List Option P2p_sim Peer Printf World
