type op_kind =
  | Insert
  | Lookup
  | T_join
  | S_join
  | Leave
  | Repair
  | Keyword
  | Replicate
  | Anti_entropy
  | Custom of string

let op_kind_to_string = function
  | Insert -> "insert"
  | Lookup -> "lookup"
  | T_join -> "t-join"
  | S_join -> "s-join"
  | Leave -> "leave"
  | Repair -> "repair"
  | Keyword -> "keyword"
  | Replicate -> "replicate"
  | Anti_entropy -> "anti-entropy"
  | Custom s -> s

let op_kind_of_string = function
  | "insert" -> Insert
  | "lookup" -> Lookup
  | "t-join" -> T_join
  | "s-join" -> S_join
  | "leave" -> Leave
  | "repair" -> Repair
  | "keyword" -> Keyword
  | "replicate" -> Replicate
  | "anti-entropy" -> Anti_entropy
  | s -> Custom s

type event = {
  time : float;
  tag : string;
  op : int option;
  src : int option;
  dst : int option;
  detail : string;
}

type span = {
  span_id : int;
  parent : int;
  span_op : int;
  tier : string;
  phase : string;
  span_src : int option;
  span_dst : int option;
  span_start : float;
  mutable span_stop : float option;
  span_label : string;
}

type op_completion = {
  comp_op : int;
  comp_kind : string;
  comp_start : float;
  comp_stop : float;
  comp_sampled : bool;
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int; (* slot for the next write *)
  mutable retained : int;
  mutable total : int;
  mutable next_op : int;
  active : bool;
  (* head-based op sampling: the decision is a pure hash of the op id, so
     an unsampled op costs one integer compare per record/begin_span and
     the sampled set is identical across same-seed runs *)
  sample_rate : float;
  sample_seed : int;
  sample_all : bool;
  sample_threshold : int; (* sampled iff hash62 op < threshold *)
  (* one-entry decision memo: events arrive in per-op bursts, so this
     turns the per-record hash (boxed Int64 arithmetic) into an integer
     compare on the hot path *)
  mutable memo_op : int;
  mutable memo_sampled : bool;
  mutable ops_sampled : int;
  mutable spans_unsampled : int; (* begin/mark skipped on unsampled ops *)
  (* causal span trees: span id [k] lives at slot [k mod capacity], so
     ending a span is O(1) and eviction is detected by an id mismatch *)
  spans : span option array;
  mutable span_next : int;
  span_first : int; (* first id this trace mints; nonzero gives a live
                       process its own disjoint span-id range *)
  mutable span_retained : int;
  mutable span_orphans : int; (* still-open spans evicted by wraparound *)
  mutable orphan_ends : int; (* end_span on a never-minted id *)
  mutable evicted_ends : int; (* end_span on an already-evicted id *)
  mutable span_mismatches : int; (* double end, or time running backwards *)
  mutable spans_suppressed : int; (* begin after the parent had closed *)
  mutable spans_clamped : int; (* stop clamped to the parent's stop *)
  op_roots : (int, int) Hashtbl.t; (* open op id -> its root span id *)
  (* exact latency accounting for 100% of ops, independent of sampling *)
  open_ops : (int, string * float) Hashtbl.t; (* op id -> kind, start *)
  mutable op_listener : (op_completion -> unit) option;
}

let two_pow_62 = 4611686018427387904.0

let create ~capacity ?(sample_rate = 1.0) ?(sample_seed = 0)
    ?(first_span_id = 0) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if not (sample_rate >= 0.0 && sample_rate <= 1.0) then
    invalid_arg "Trace.create: sample_rate must be in [0, 1]";
  if first_span_id < 0 then
    invalid_arg "Trace.create: first_span_id must be >= 0";
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    retained = 0;
    total = 0;
    next_op = 0;
    active = true;
    sample_rate;
    sample_seed;
    sample_all = sample_rate >= 1.0;
    sample_threshold =
      (if sample_rate >= 1.0 then max_int
       else int_of_float (sample_rate *. two_pow_62));
    memo_op = -1;
    memo_sampled = false;
    ops_sampled = 0;
    spans_unsampled = 0;
    spans = Array.make capacity None;
    span_next = first_span_id;
    span_first = first_span_id;
    span_retained = 0;
    span_orphans = 0;
    orphan_ends = 0;
    evicted_ends = 0;
    span_mismatches = 0;
    spans_suppressed = 0;
    spans_clamped = 0;
    op_roots = Hashtbl.create 64;
    open_ops = Hashtbl.create 64;
    op_listener = None;
  }

let disabled =
  {
    capacity = 1;
    buffer = [| None |];
    next = 0;
    retained = 0;
    total = 0;
    next_op = 0;
    active = false;
    sample_rate = 1.0;
    sample_seed = 0;
    sample_all = true;
    sample_threshold = max_int;
    memo_op = -1;
    memo_sampled = false;
    ops_sampled = 0;
    spans_unsampled = 0;
    spans = [| None |];
    span_next = 0;
    span_first = 0;
    span_retained = 0;
    span_orphans = 0;
    orphan_ends = 0;
    evicted_ends = 0;
    span_mismatches = 0;
    spans_suppressed = 0;
    spans_clamped = 0;
    op_roots = Hashtbl.create 1;
    open_ops = Hashtbl.create 1;
    op_listener = None;
  }

let enabled t = t.active

let sampled t op =
  t.sample_all
  || op = t.memo_op && t.memo_sampled
  ||
  if op = t.memo_op then false
  else begin
    let d = op >= 0 && Rng.hash62 ~seed:t.sample_seed op < t.sample_threshold in
    t.memo_op <- op;
    t.memo_sampled <- d;
    d
  end

let sample_rate t = t.sample_rate

let record t ~time ~tag ?op ?src ?dst detail =
  if t.active && (match op with None -> true | Some o -> sampled t o) then begin
    t.buffer.(t.next) <- Some { time; tag; op; src; dst; detail };
    t.next <- (t.next + 1) mod t.capacity;
    if t.retained < t.capacity then t.retained <- t.retained + 1;
    t.total <- t.total + 1
  end

let record_f t ~time ~tag ?op ?src ?dst fmt =
  if t.active && (match op with None -> true | Some o -> sampled t o) then
    Printf.ksprintf (record t ~time ~tag ?op ?src ?dst) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

(* --- causal spans --- *)

let find_span t id =
  if id < 0 then None
  else
    match t.spans.(id mod t.capacity) with
    | Some s when s.span_id = id -> Some s
    | _ -> None

let mint_span t ~time ~op ~tier ~phase ~parent ?src ?dst label =
  let id = t.span_next in
  let slot = id mod t.capacity in
  (match t.spans.(slot) with
   | Some old when old.span_stop = None -> t.span_orphans <- t.span_orphans + 1
   | _ -> ());
  t.spans.(slot) <-
    Some
      {
        span_id = id;
        parent;
        span_op = op;
        tier;
        phase;
        span_src = src;
        span_dst = dst;
        span_start = time;
        span_stop = None;
        span_label = label;
      };
  t.span_next <- id + 1;
  if t.span_retained < t.capacity then t.span_retained <- t.span_retained + 1;
  id

let begin_span t ~time ~op ~tier ~phase ?parent ?src ?dst label =
  if not t.active then -1
  else if not (sampled t op) then begin
    (* counted separately from suppression: the op was healthy, the
       observer just chose not to watch it *)
    t.spans_unsampled <- t.spans_unsampled + 1;
    -1
  end
  else
    let chosen =
      match parent with Some p -> Some p | None -> Hashtbl.find_opt t.op_roots op
    in
    match chosen with
    | None ->
      (* the op has already completed (or never opened a root): its causal
         tree is closed, so late work — flood tails, stale timers — is
         suppressed rather than recorded outside the parent interval *)
      t.spans_suppressed <- t.spans_suppressed + 1;
      -1
    | Some p -> (
      match find_span t p with
      | Some ps when ps.span_stop <> None ->
        t.spans_suppressed <- t.spans_suppressed + 1;
        -1
      | _ -> mint_span t ~time ~op ~tier ~phase ~parent:p ?src ?dst label)

let end_span t ~time id =
  if t.active && id >= 0 then
    match find_span t id with
    | None ->
      (* ids below the retained window were minted and then overwritten by
         wraparound — a capacity artifact, not a protocol bug — so they
         get their own counter; anything else is a true orphan *)
      if id >= t.span_first && id < t.span_next - t.span_retained then
        t.evicted_ends <- t.evicted_ends + 1
      else t.orphan_ends <- t.orphan_ends + 1
    | Some s -> (
      match s.span_stop with
      | Some _ -> t.span_mismatches <- t.span_mismatches + 1
      | None ->
        let limit =
          match find_span t s.parent with Some p -> p.span_stop | None -> None
        in
        let stop =
          match limit with
          | Some ps when ps < time ->
            t.spans_clamped <- t.spans_clamped + 1;
            ps
          | _ -> time
        in
        if time < s.span_start then t.span_mismatches <- t.span_mismatches + 1;
        s.span_stop <- Some (Float.max stop s.span_start))

let mark_span t ~time ~op ~tier ~phase ?parent ?src ?dst label =
  let id = begin_span t ~time ~op ~tier ~phase ?parent ?src ?dst label in
  end_span t ~time id

let begin_op t ~time ~kind detail =
  let id = t.next_op in
  t.next_op <- t.next_op + 1;
  record t ~time ~tag:(op_kind_to_string kind ^ "-start") ~op:id detail;
  if t.active then begin
    (* every op is accounted exactly, sampled or not: percentile gates
       must not depend on the sample rate *)
    Hashtbl.replace t.open_ops id (op_kind_to_string kind, time);
    if sampled t id then begin
      t.ops_sampled <- t.ops_sampled + 1;
      let root =
        mint_span t ~time ~op:id ~tier:"op" ~phase:(op_kind_to_string kind)
          ~parent:(-1) detail
      in
      Hashtbl.replace t.op_roots id root
    end
  end;
  id

(* Like {!begin_op} for an operation whose id was minted elsewhere — a
   client request id arriving over the wire.  The externally-chosen id
   is registered for exact completion accounting and, when sampled,
   given a root span carrying [src]/[dst] so cross-process exports place
   it on the right process track.  [next_op] is bumped past [op] so a
   later {!begin_op} never re-mints the id. *)
let begin_extern_op t ~time ~op ~kind ?src ?dst detail =
  if op >= t.next_op then t.next_op <- op + 1;
  record t ~time ~tag:(op_kind_to_string kind ^ "-start") ~op ?src ?dst detail;
  if t.active then begin
    Hashtbl.replace t.open_ops op (op_kind_to_string kind, time);
    if sampled t op then begin
      t.ops_sampled <- t.ops_sampled + 1;
      let root =
        mint_span t ~time ~op ~tier:"op" ~phase:(op_kind_to_string kind)
          ~parent:(-1) ?src ?dst detail
      in
      Hashtbl.replace t.op_roots op root
    end
  end

let end_op t ~time ~op detail =
  record t ~time ~tag:"op-end" ~op detail;
  if t.active then begin
    (match Hashtbl.find_opt t.open_ops op with
     | None -> ()
     | Some (kind, start) ->
       Hashtbl.remove t.open_ops op;
       (match t.op_listener with
        | None -> ()
        | Some f ->
          f
            {
              comp_op = op;
              comp_kind = kind;
              comp_start = start;
              comp_stop = time;
              comp_sampled = sampled t op;
            }));
    match Hashtbl.find_opt t.op_roots op with
    | None -> ()
    | Some root ->
      Hashtbl.remove t.op_roots op;
      end_span t ~time root
  end

let on_op_complete t f =
  if t.active then
    match t.op_listener with
    | None -> t.op_listener <- Some f
    | Some g ->
      t.op_listener <-
        Some
          (fun c ->
            g c;
            f c)

let has_op_listener t = t.op_listener <> None

let op_root_span t op = Hashtbl.find_opt t.op_roots op

let spans t =
  let start = t.span_next - t.span_retained in
  List.init t.span_retained (fun i ->
      match find_span t (start + i) with Some s -> s | None -> assert false)

let spans_of_op t op = List.filter (fun s -> s.span_op = op) (spans t)

let spans_started t = t.span_next

let span_orphans t = t.span_orphans

let orphan_ends t = t.orphan_ends

let evicted_ends t = t.evicted_ends

let ops_sampled t = t.ops_sampled

let spans_unsampled t = t.spans_unsampled

let span_mismatches t = t.span_mismatches

let spans_suppressed t = t.spans_suppressed

let spans_clamped t = t.spans_clamped

let ops_started t = t.next_op

let length t = t.retained

let total_recorded t = t.total

let events t =
  (* the oldest retained event sits [retained] writes behind [next] *)
  let start = (t.next - t.retained + t.capacity) mod t.capacity in
  List.init t.retained (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let find t ~tag = List.filter (fun e -> e.tag = tag) (events t)

let events_of_op t op = List.filter (fun e -> e.op = Some op) (events t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.retained <- 0;
  Array.fill t.spans 0 t.capacity None;
  t.span_retained <- 0;
  Hashtbl.reset t.op_roots;
  Hashtbl.reset t.open_ops

let reset t =
  clear t;
  t.next <- 0;
  t.total <- 0;
  t.next_op <- 0;
  t.span_next <- t.span_first;
  t.span_orphans <- 0;
  t.orphan_ends <- 0;
  t.evicted_ends <- 0;
  t.span_mismatches <- 0;
  t.spans_suppressed <- 0;
  t.spans_clamped <- 0;
  t.ops_sampled <- 0;
  t.spans_unsampled <- 0

let pp_event ppf e =
  let pp_id ppf = function
    | Some i -> Format.fprintf ppf "#%d" i
    | None -> Format.pp_print_char ppf '-'
  in
  Format.fprintf ppf "%.3f [%s]" e.time e.tag;
  (match e.op with Some op -> Format.fprintf ppf " op=%d" op | None -> ());
  (match (e.src, e.dst) with
   | None, None -> ()
   | src, dst -> Format.fprintf ppf " %a->%a" pp_id src pp_id dst);
  Format.fprintf ppf " %s" e.detail

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
