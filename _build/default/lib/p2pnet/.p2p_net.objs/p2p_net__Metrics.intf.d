lib/p2pnet/metrics.mli: Format P2p_stats
