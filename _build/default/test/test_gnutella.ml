(* Tests for the Gnutella baseline (P2p_gnutella.Mesh). *)

module Mesh = P2p_gnutella.Mesh
module Rng = P2p_sim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build ~seed ~links n =
  let rng = Rng.create seed in
  let mesh = Mesh.create ~rng ~links_per_join:links () in
  let peers = List.init n (fun host -> Mesh.join mesh ~host) in
  (mesh, peers)

let test_join_links () =
  let mesh, peers = build ~seed:1 ~links:3 10 in
  checki "count" 10 (Mesh.peer_count mesh);
  checkb "connected" true (Mesh.is_connected mesh);
  (* first peer has no one to link to; later peers link up to 3 *)
  checki "first peer linked by others only"
    (Mesh.degree (List.hd peers))
    (List.length (Mesh.neighbors (List.hd peers)));
  List.iteri
    (fun i p ->
      if i > 0 then checkb (Printf.sprintf "peer %d has neighbors" i) true (Mesh.degree p >= 1))
    peers

let test_join_small_population () =
  let mesh, _ = build ~seed:2 ~links:5 3 in
  (* only 2 candidates for the third peer *)
  checkb "connected" true (Mesh.is_connected mesh);
  checki "count" 3 (Mesh.peer_count mesh)

let test_store_stays_local () =
  let mesh, peers = build ~seed:3 ~links:2 5 in
  let p = List.nth peers 2 in
  Mesh.store mesh p ~key:"k" ~value:"v";
  checki "stored locally" 1 (Mesh.stored_items p);
  List.iteri
    (fun i q -> if q != p then checki (Printf.sprintf "peer %d empty" i) 0 (Mesh.stored_items q))
    peers

let test_flood_finds_nearby () =
  let mesh, peers = build ~seed:4 ~links:3 30 in
  let holder = List.nth peers 7 in
  Mesh.store mesh holder ~key:"needle" ~value:"gold";
  let result = Mesh.flood_lookup mesh ~from:holder ~key:"needle" ~ttl:0 in
  Alcotest.check (Alcotest.option Alcotest.string) "ttl 0 finds own data" (Some "gold")
    result.Mesh.value;
  checki "only self contacted" 1 result.Mesh.contacted;
  Alcotest.check (Alcotest.option Alcotest.int) "0 hops" (Some 0) result.Mesh.hops_to_hit

let test_flood_ttl_limits () =
  (* build a long chain by joining with 1 link each: a path graph *)
  let rng = Rng.create 5 in
  let mesh = Mesh.create ~rng ~links_per_join:1 () in
  let first = Mesh.join mesh ~host:0 in
  let rec chain prev n acc =
    if n = 0 then List.rev acc
    else begin
      ignore prev;
      let p = Mesh.join mesh ~host:n in
      chain p (n - 1) (p :: acc)
    end
  in
  ignore (chain first 10 []);
  (* distance from first to the farthest peer is at least a few hops;
     ttl 1 reaches only direct neighbors *)
  let far =
    List.find
      (fun p ->
        let r = Mesh.flood_lookup mesh ~from:first ~key:"absent" ~ttl:1 in
        ignore r;
        not (List.exists (fun q -> q == p) (Mesh.neighbors first)) && p != first)
      (Mesh.peers mesh)
  in
  Mesh.store mesh far ~key:"distant" ~value:"v";
  let r1 = Mesh.flood_lookup mesh ~from:first ~key:"distant" ~ttl:1 in
  checkb "ttl 1 misses far data" true (r1.Mesh.value = None);
  let r10 = Mesh.flood_lookup mesh ~from:first ~key:"distant" ~ttl:10 in
  checkb "large ttl finds it" true (r10.Mesh.value = Some "v")

let test_flood_contacts_monotone_in_ttl () =
  let mesh, peers = build ~seed:6 ~links:3 50 in
  let from = List.hd peers in
  let prev = ref 0 in
  List.iter
    (fun ttl ->
      let r = Mesh.flood_lookup mesh ~from ~key:"nothing" ~ttl in
      checkb (Printf.sprintf "ttl %d contacts >= previous" ttl) true
        (r.Mesh.contacted >= !prev);
      prev := r.Mesh.contacted)
    [ 0; 1; 2; 3; 4 ]

let test_flood_mesh_duplicates () =
  (* triangle: A-B, B-C, C-A; flood from A with ttl 2 sends duplicate
     transmissions but contacts each peer once *)
  let rng = Rng.create 7 in
  let mesh = Mesh.create ~rng ~links_per_join:2 () in
  let a = Mesh.join mesh ~host:0 in
  let _b = Mesh.join mesh ~host:1 in
  let _c = Mesh.join mesh ~host:2 in
  let r = Mesh.flood_lookup mesh ~from:a ~key:"no" ~ttl:2 in
  checki "three distinct contacts" 3 r.Mesh.contacted;
  checkb "messages exceed contacts (duplicates)" true (r.Mesh.messages > 2)

let test_random_walk () =
  let mesh, peers = build ~seed:8 ~links:3 40 in
  let holder = List.nth peers 20 in
  Mesh.store mesh holder ~key:"walk-target" ~value:"v";
  let r =
    Mesh.random_walk_lookup mesh ~from:(List.hd peers) ~key:"walk-target" ~walkers:8
      ~ttl:100
  in
  checkb "walkers find popular-enough item" true (r.Mesh.value = Some "v");
  let r_zero =
    Mesh.random_walk_lookup mesh ~from:(List.hd peers) ~key:"absent" ~walkers:2 ~ttl:5
  in
  checkb "absent not found" true (r_zero.Mesh.value = None);
  checkb "walk messages bounded by walkers*ttl" true (r_zero.Mesh.messages <= 10)

let test_random_walk_rejects () =
  let mesh, peers = build ~seed:9 ~links:2 5 in
  Alcotest.check_raises "walkers 0" (Invalid_argument "Mesh.random_walk_lookup")
    (fun () ->
      ignore
        (Mesh.random_walk_lookup mesh ~from:(List.hd peers) ~key:"k" ~walkers:0 ~ttl:5
          : Mesh.lookup_result))

let test_leave_transfers_data () =
  let mesh, peers = build ~seed:10 ~links:2 10 in
  let p = List.nth peers 5 in
  Mesh.store mesh p ~key:"a" ~value:"1";
  Mesh.store mesh p ~key:"b" ~value:"2";
  let total () =
    List.fold_left (fun acc q -> acc + Mesh.stored_items q) 0 (Mesh.peers mesh)
  in
  let before = total () in
  Mesh.leave mesh p;
  checki "items preserved" before (total ());
  checki "population shrank" 9 (Mesh.peer_count mesh);
  checkb "victim unlinked everywhere" true
    (List.for_all
       (fun q -> not (List.exists (fun n -> n == p) (Mesh.neighbors q)))
       (Mesh.peers mesh))

let test_crash_loses_data () =
  let mesh, peers = build ~seed:11 ~links:2 10 in
  let p = List.nth peers 5 in
  Mesh.store mesh p ~key:"a" ~value:"1";
  Mesh.crash mesh p;
  let total =
    List.fold_left (fun acc q -> acc + Mesh.stored_items q) 0 (Mesh.peers mesh)
  in
  checki "data gone" 0 total;
  checkb "dead" false (Mesh.alive p)

let test_double_leave_rejected () =
  let mesh, peers = build ~seed:12 ~links:2 4 in
  let p = List.hd peers in
  Mesh.leave mesh p;
  Alcotest.check_raises "double leave" (Invalid_argument "Mesh.leave: peer already gone")
    (fun () -> Mesh.leave mesh p);
  Alcotest.check_raises "crash after leave" (Invalid_argument "Mesh.crash: peer already gone")
    (fun () -> Mesh.crash mesh p)

let test_flood_ignores_dead () =
  let mesh, peers = build ~seed:13 ~links:3 20 in
  let victim = List.nth peers 10 in
  Mesh.crash mesh victim;
  let r = Mesh.flood_lookup mesh ~from:(List.hd peers) ~key:"x" ~ttl:10 in
  checkb "contacts at most live population" true (r.Mesh.contacted <= 19)

let suite =
  [
    Alcotest.test_case "join wires random links" `Quick test_join_links;
    Alcotest.test_case "join with few candidates" `Quick test_join_small_population;
    Alcotest.test_case "store is local" `Quick test_store_stays_local;
    Alcotest.test_case "flood finds own data at ttl 0" `Quick test_flood_finds_nearby;
    Alcotest.test_case "flood ttl limits reach" `Quick test_flood_ttl_limits;
    Alcotest.test_case "flood contacts monotone in ttl" `Quick
      test_flood_contacts_monotone_in_ttl;
    Alcotest.test_case "mesh floods duplicate messages" `Quick test_flood_mesh_duplicates;
    Alcotest.test_case "random walk" `Quick test_random_walk;
    Alcotest.test_case "random walk rejects bad args" `Quick test_random_walk_rejects;
    Alcotest.test_case "graceful leave transfers data" `Quick test_leave_transfers_data;
    Alcotest.test_case "crash loses data" `Quick test_crash_loses_data;
    Alcotest.test_case "double leave rejected" `Quick test_double_leave_rejected;
    Alcotest.test_case "flood ignores dead peers" `Quick test_flood_ignores_dead;
  ]
