module Engine = P2p_sim.Engine
module Rng = P2p_sim.Rng
module Trace = P2p_sim.Trace
module Graph = P2p_topology.Graph
module Routing = P2p_topology.Routing
module Metrics = P2p_net.Metrics
module Underlay = P2p_net.Underlay
module Histogram = P2p_stats.Histogram

type t = {
  w : World.t;
  routing : Routing.t;
  s_fraction : float;
  mutable next_host : int;
}

type join_outcome = { peer : Peer.t; hops : int; latency : float }

let create ~seed ~routing ?(config = Config.default) ?snet_policy ?(s_fraction = 0.5)
    ?(processing_delay = 0.1) ?stress ?trace () =
  if s_fraction < 0.0 || s_fraction > 1.0 then invalid_arg "Hybrid.create: s_fraction";
  let engine =
    Engine.create ~seed ~lanes:config.Config.engine_lanes
      ~lookahead:config.Config.engine_lookahead ()
  in
  let metrics = Metrics.create () in
  (* Exact latency path: every op completion — sampled or not — feeds
     latency/<kind>_total_ms directly, so percentiles and SLO gates stay
     exact at any --trace-sample rate.  Spans.record sees the listener
     and skips its own (sampled, ring-bounded) totals fold. *)
  (match trace with
   | Some tr when Trace.enabled tr ->
     let reg = Metrics.registry metrics in
     let hists = Hashtbl.create 8 in
     Trace.on_op_complete tr (fun (c : Trace.op_completion) ->
         let h =
           match Hashtbl.find_opt hists c.Trace.comp_kind with
           | Some h -> h
           | None ->
             let h =
               P2p_obs.Registry.log_histogram reg ~subsystem:"latency"
                 ~name:(c.Trace.comp_kind ^ "_total_ms")
             in
             Hashtbl.add hists c.Trace.comp_kind h;
             h
         in
         P2p_obs.Log_hist.observe h (c.Trace.comp_stop -. c.Trace.comp_start))
   | Some _ | None -> ());
  let underlay =
    Underlay.create ~engine ~routing ~metrics ?stress ?trace ~processing_delay ()
  in
  let w = World.create ~engine ~underlay ~metrics ~config ?snet_policy () in
  Failure.install_query_hook w;
  if config.Config.transmission_ms > 0.0 then
    Underlay.set_transmission_delay underlay (fun ~src ~dst ->
        let capacity host =
          match World.find_peer w ~host with
          | Some p -> p.Peer.link_capacity
          | None -> 1.0
        in
        config.Config.transmission_ms /. Float.min (capacity src) (capacity dst));
  { w; routing; s_fraction; next_host = 0 }

let create_star ~seed ~peers ?(latency = 1.0) ?config ?snet_policy ?s_fraction ?trace
    () =
  if peers <= 0 then invalid_arg "Hybrid.create_star: peers";
  let graph = Graph.create (peers + 1) in
  let hub = peers in
  for host = 0 to peers - 1 do
    Graph.add_edge graph host hub ~latency
  done;
  let routing = Routing.create graph in
  create ~seed ~routing ?config ?snet_policy ?s_fraction ?trace ()

let engine t = t.w.World.engine
let trace t = Underlay.trace t.w.World.underlay
let metrics t = t.w.World.metrics
let config t = t.w.World.config
let world t = t.w
let now t = World.now t.w

let peers t = World.live_peers t.w
let peer_count t = World.peer_count t.w

let t_peer_count t = Array.length (World.t_peers t.w)
let s_peer_count t = peer_count t - t_peer_count t

let random_peer t =
  match peers t with
  | [] -> invalid_arg "Hybrid.random_peer: empty system"
  | all -> Rng.pick_list t.w.World.rng all

let run t = Engine.run (engine t)

let run_for t ms = Engine.run_until (engine t) ~time:(now t +. ms)

let finish_join t peer started ~op ?(on_done = fun (_ : join_outcome) -> ()) ~hops () =
  let latency = now t -. started in
  Metrics.record_join (metrics t) ~latency ~hops;
  Trace.end_op (trace t) ~time:(now t) ~op
    (Printf.sprintf "#%d joined, %d hops, %.2f ms" peer.Peer.host hops latency);
  Failure.enable_heartbeats t.w peer;
  on_done { peer; hops; latency }

let join t ~host ?role ?p_id ?(link_capacity = 1.0) ?interest ?on_done () =
  (match World.find_peer t.w ~host with
   | Some _ -> invalid_arg "Hybrid.join: host already occupied"
   | None -> ());
  if host < 0 || host >= Graph.node_count (Routing.graph t.routing) then
    invalid_arg "Hybrid.join: host outside the physical topology";
  let no_t_peers = t_peer_count t = 0 in
  let role =
    if no_t_peers then Peer.T_peer
    else
      match role with
      | Some r -> r
      | None ->
        if Rng.bernoulli t.w.World.rng t.s_fraction then Peer.S_peer else Peer.T_peer
  in
  let started = now t in
  match role with
  | Peer.T_peer ->
    let p_id = match p_id with Some id -> id | None -> World.fresh_p_id t.w in
    let cache_capacity = (config t).Config.cache_capacity in
    let peer =
      Peer.make ~cache_capacity ~interner:(World.interner t.w) ~host ~p_id
        ~role:Peer.T_peer ~link_capacity ?interest ()
    in
    let op =
      Trace.begin_op (trace t) ~time:started ~kind:Trace.T_join
        (Printf.sprintf "#%d" host)
    in
    (* A join can fail if the ring empties while the request is in
       flight; the joiner then retries through the server, bootstrapping a
       fresh ring if it is first. *)
    let retries = ref 0 in
    let rec start_join () =
      match World.random_t_peer t.w with
      | None ->
        T_network.bootstrap t.w peer;
        finish_join t peer started ~op ?on_done ~hops:0 ()
      | Some introducer ->
        T_network.join t.w ~op ~joiner:peer ~introducer
          ~on_fail:(fun () ->
            incr retries;
            if !retries <= 30 then
              ignore
                (World.one_shot t.w ~delay:1.0 start_join
                  : P2p_transport.Transport.timer))
          ~on_done:(fun ~hops -> finish_join t peer started ~op ?on_done ~hops ())
          ()
    in
    start_join ();
    peer
  | Peer.S_peer ->
    let cache_capacity = (config t).Config.cache_capacity in
    let peer =
      Peer.make ~cache_capacity ~interner:(World.interner t.w) ~host ~p_id:0
        ~role:Peer.S_peer ~link_capacity ?interest ()
    in
    let op =
      Trace.begin_op (trace t) ~time:started ~kind:Trace.S_join
        (Printf.sprintf "#%d" host)
    in
    let root =
      match World.choose_s_network t.w ~joiner:peer with
      | Some root -> root
      | None -> assert false (* no_t_peers handled above *)
    in
    (* The join request first travels to the assigned t-peer. *)
    World.send_span t.w ~op ~tier:"s_network" ~phase:"join_request" ~src:peer
      ~dst:root (fun () ->
        S_network.join t.w ~op ~joiner:peer ~root
          ~on_done:(fun ~hops ~cp:_ ->
            finish_join t peer started ~op ?on_done ~hops:(hops + 1) ())
          ());
    peer

let settle t =
  if (config t).Config.heartbeats then
    run_for t (3.0 *. (config t).Config.hello_timeout)
  else run t

let fresh_host t =
  let limit = Graph.node_count (Routing.graph t.routing) in
  let rec scan host =
    if host >= limit then invalid_arg "Hybrid.grow: physical topology exhausted"
    else
      match World.find_peer t.w ~host with
      | None -> host
      | Some _ -> scan (host + 1)
  in
  let host = scan t.next_host in
  t.next_host <- host + 1;
  host

let grow t ~count ~s_fraction =
  Array.init count (fun _ ->
      let host = fresh_host t in
      let role =
        if t_peer_count t = 0 then Peer.T_peer
        else if Rng.bernoulli t.w.World.rng s_fraction then Peer.S_peer
        else Peer.T_peer
      in
      let peer = join t ~host ~role () in
      settle t;
      peer)

let leave t peer ?(on_done = fun () -> ()) () =
  let op =
    Trace.begin_op (trace t) ~time:(now t) ~kind:Trace.Leave
      (Printf.sprintf "#%d" peer.Peer.host)
  in
  let on_done () =
    Trace.end_op (trace t) ~time:(now t) ~op
      (Printf.sprintf "#%d left" peer.Peer.host);
    on_done ()
  in
  match peer.Peer.role with
  | Peer.T_peer -> T_network.leave t.w ~op peer ~on_done
  | Peer.S_peer ->
    S_network.leave t.w ~op peer;
    on_done ()

let crash t peer = Failure.crash t.w peer

let repair t = Failure.repair t.w

let insert t ~from ~key ~value ?route_id ?(on_done = fun ~holder:_ ~hops:_ -> ()) () =
  Data_ops.insert t.w ~from ~key ~value ?route_id () ~on_done

let lookup t ~from ~key ?ttl ?route_id ~on_result () =
  Data_ops.lookup t.w ~from ~key ?ttl ?route_id () ~on_result

let keyword_search t ~from ~substring ~route_id ?ttl ?(window = 2_000.0)
    ~on_result () =
  Data_ops.keyword_lookup t.w ~from ~substring ~route_id ?ttl ~window () ~on_result

let data_distribution t =
  let h = Histogram.create () in
  List.iter (fun p -> Histogram.observe h (Data_store.size p.Peer.store)) (peers t);
  h

let total_items t =
  List.fold_left (fun acc p -> acc + Data_store.size p.Peer.store) 0 (peers t)

let check_invariants t =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = T_network.check_ring t.w in
  let tpeers = World.t_peers t.w in
  let delta = (config t).Config.delta in
  let rec check_trees i =
    if i >= Array.length tpeers then Ok ()
    else
      let* () = S_network.check_tree ~delta tpeers.(i) in
      check_trees (i + 1)
  in
  let* () = check_trees 0 in
  (* Every live peer must belong to exactly one tree. *)
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun root ->
      List.iter (fun m -> Hashtbl.replace seen m.Peer.host ()) (Peer.tree_members root))
    tpeers;
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if Hashtbl.mem seen p.Peer.host then Ok ()
        else Error (Printf.sprintf "peer #%d is in no s-network" p.Peer.host))
      (Ok ()) (peers t)
  in
  let* () =
    if Hashtbl.length seen = peer_count t then Ok ()
    else
      Error
        (Printf.sprintf "tree membership mismatch: %d in trees, %d live"
           (Hashtbl.length seen) (peer_count t))
  in
  (* Every stored item must sit in the s-network serving its d_id. *)
  if Array.length tpeers = 0 then Ok ()
  else begin
    let bad = ref None in
    List.iter
      (fun p ->
        match p.Peer.t_home with
        | None -> bad := Some (Printf.sprintf "peer #%d has no t_home" p.Peer.host)
        | Some home ->
          Data_store.iter p.Peer.store (fun ~key ~value:_ ~route_id ->
              if !bad = None && not (Peer.covers home route_id) then
                bad :=
                  Some
                    (Printf.sprintf
                       "item %S (route_id %#x) stored at #%d outside its segment" key
                       route_id p.Peer.host)))
      (peers t);
    match !bad with Some reason -> Error reason | None -> Ok ()
  end
