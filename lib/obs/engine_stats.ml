(* Engine occupancy folded into the registry.

   "engine/*" carries the whole-engine figures every run already
   exported; "lanes/*" (only when the engine is sharded) carries the
   per-lane view: where events execute, how deep each lane's heap gets,
   and how often a lookahead batch stalls on another lane's frontier.
   The imbalance gauge is max/mean of per-lane executed events — 1.0 is
   a perfectly balanced engine, lanes sitting idle push it toward the
   lane count. *)

module Engine = P2p_sim.Engine

let record reg engine =
  let set sub name v =
    Registry.set (Registry.gauge reg ~subsystem:sub ~name) v
  in
  set "engine" "events_executed"
    (float_of_int (Engine.events_executed engine));
  set "engine" "queue_high_water"
    (float_of_int (Engine.queue_high_water engine));
  (* cancels that arrived after their timer had already fired — a
     process-wide figure shared by the sim timer and the live transport's
     wall-clock wheel *)
  set "timer" "cancel_late" (float_of_int (P2p_sim.Timer.cancel_late ()));
  let stats = Engine.lane_stats engine in
  let n = Array.length stats in
  if n > 1 then begin
    let max_exec = ref 0 and sum_exec = ref 0 in
    Array.iteri
      (fun i (s : Engine.lane_stat) ->
        if s.Engine.lane_events > !max_exec then
          max_exec := s.Engine.lane_events;
        sum_exec := !sum_exec + s.Engine.lane_events;
        let lane name v =
          set "lanes" (Printf.sprintf "lane%d_%s" i name) (float_of_int v)
        in
        lane "executed" s.Engine.lane_events;
        lane "pending" s.Engine.lane_pending;
        lane "high_water" s.Engine.lane_high_water;
        lane "stalls" s.Engine.lane_merge_stalls)
      stats;
    let mean = float_of_int !sum_exec /. float_of_int n in
    set "lanes" "imbalance"
      (if mean > 0.0 then float_of_int !max_exec /. mean else 1.0)
  end
