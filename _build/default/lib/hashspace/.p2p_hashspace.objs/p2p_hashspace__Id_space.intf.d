lib/hashspace/id_space.mli: Format
