module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Data_ops = Hybrid_p2p.Data_ops
module Rng = P2p_sim.Rng
module Churn = P2p_workload.Churn

type action =
  | Join_t
  | Join_s
  | Join_many of int * float
  | Leave_random
  | Crash_random
  | Crash_fraction of float
  | Repair
  | Insert_items of int
  | Lookup_items of int
  | Settle
  | Advance of float

type report = {
  joined : int;
  left : int;
  crashed : int;
  inserted : int;
  lookups_ok : int;
  lookups_failed : int;
  final_peers : int;
  final_items : int;
  invariants : (unit, string) result;
}

type state = {
  h : H.t;
  rng : Rng.t;
  mutable keys : string list; (* inserted keys, newest first *)
  mutable key_count : int;
  mutable joined : int;
  mutable left : int;
  mutable crashed : int;
  mutable inserted : int;
  mutable lookups_ok : int;
  mutable lookups_failed : int;
  mutable needs_repair : bool;
}

let join_one st ~role =
  let host = H.fresh_host st.h in
  let role = if H.peer_count st.h = 0 then Peer.T_peer else role in
  ignore (H.join st.h ~host ~role () : Peer.t);
  H.run st.h;
  st.joined <- st.joined + 1

let random_live st =
  match H.peers st.h with
  | [] -> None
  | all -> Some (Rng.pick_list st.rng all)

let insert_items st count =
  for _ = 1 to count do
    match random_live st with
    | None -> ()
    | Some from ->
      let key = Printf.sprintf "scenario-%06d" st.key_count in
      st.key_count <- st.key_count + 1;
      st.keys <- key :: st.keys;
      st.inserted <- st.inserted + 1;
      H.insert st.h ~from ~key ~value:("v:" ^ key) ()
  done;
  H.run st.h

let lookup_items st count =
  let pool = Array.of_list st.keys in
  for _ = 1 to count do
    if Array.length pool = 0 then st.lookups_failed <- st.lookups_failed + 1
    else
      match random_live st with
      | None -> st.lookups_failed <- st.lookups_failed + 1
      | Some from ->
        let key = Rng.pick st.rng pool in
        H.lookup st.h ~from ~key
          ~on_result:(function
            | Data_ops.Found _ -> st.lookups_ok <- st.lookups_ok + 1
            | Data_ops.Timed_out -> st.lookups_failed <- st.lookups_failed + 1)
          ()
  done;
  H.run st.h

let crash_fraction st fraction =
  let peers = Array.of_list (H.peers st.h) in
  let victims =
    Churn.crash_storm ~rng:st.rng ~population:(Array.length peers) ~fraction
  in
  Array.iter
    (fun i ->
      H.crash st.h peers.(i);
      st.crashed <- st.crashed + 1)
    victims;
  if Array.length victims > 0 then st.needs_repair <- true

let step st = function
  | Join_t -> join_one st ~role:Peer.T_peer
  | Join_s -> join_one st ~role:Peer.S_peer
  | Join_many (count, s_fraction) ->
    for _ = 1 to count do
      let role =
        if Rng.bernoulli st.rng s_fraction then Peer.S_peer else Peer.T_peer
      in
      join_one st ~role
    done
  | Leave_random ->
    (match random_live st with
     | None -> ()
     | Some victim ->
       H.leave st.h victim ();
       H.run st.h;
       st.left <- st.left + 1)
  | Crash_random ->
    (match random_live st with
     | None -> ()
     | Some victim ->
       H.crash st.h victim;
       st.crashed <- st.crashed + 1;
       st.needs_repair <- true)
  | Crash_fraction fraction -> crash_fraction st fraction
  | Repair ->
    H.repair st.h;
    H.run st.h;
    st.needs_repair <- false
  | Insert_items count -> insert_items st count
  | Lookup_items count -> lookup_items st count
  | Settle -> H.run st.h
  | Advance ms -> H.run_for st.h ms

let run h ~seed ~script =
  let st =
    {
      h;
      rng = Rng.create seed;
      keys = [];
      key_count = 0;
      joined = 0;
      left = 0;
      crashed = 0;
      inserted = 0;
      lookups_ok = 0;
      lookups_failed = 0;
      needs_repair = false;
    }
  in
  List.iter (step st) script;
  (* the invariant check presumes crash damage was repaired; do it
     implicitly so every script ends in a checkable state *)
  if st.needs_repair then begin
    H.repair st.h;
    H.run st.h
  end;
  {
    joined = st.joined;
    left = st.left;
    crashed = st.crashed;
    inserted = st.inserted;
    lookups_ok = st.lookups_ok;
    lookups_failed = st.lookups_failed;
    final_peers = H.peer_count st.h;
    final_items = H.total_items st.h;
    invariants = H.check_invariants st.h;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>joined %d, left %d, crashed %d@,inserted %d items@,lookups: %d ok, %d failed@,final: %d peers, %d items@,invariants: %s@]"
    r.joined r.left r.crashed r.inserted r.lookups_ok r.lookups_failed r.final_peers
    r.final_items
    (match r.invariants with Ok () -> "OK" | Error e -> "VIOLATED: " ^ e)
