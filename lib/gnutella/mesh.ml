module Rng = P2p_sim.Rng
module Trace = P2p_sim.Trace

type peer = {
  host : int;
  mutable neighbor_list : peer list;
  store : (string, string) Hashtbl.t;
  mutable alive : bool;
  mutable mark : int; (* visited-epoch for flood deduplication *)
}

type lookup_result = {
  value : string option;
  contacted : int;
  messages : int;
  hops_to_hit : int option;
}

type t = {
  rng : Rng.t;
  links_per_join : int;
  mutable members : peer list;
  mutable count : int;
  mutable epoch : int;
  trace : Trace.t option;
  mutable clock : float;
      (* logical time for span attribution: the mesh is synchronous, so
         each flood level / walk step ticks an internal 1 ms clock *)
}

let create ?trace ~rng ~links_per_join () =
  if links_per_join <= 0 then invalid_arg "Mesh.create: links_per_join";
  { rng; links_per_join; members = []; count = 0; epoch = 0; trace; clock = 0.0 }

(* Span plumbing for the synchronous lookups: one [Custom] op per lookup,
   one 1-ms span per transmission, parented on the op's root. *)
let trace_begin t ~kind label =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Some (tr, Trace.begin_op tr ~time:t.clock ~kind:(Trace.Custom kind) label)
  | Some _ | None -> None

let trace_hop t tr_op ~phase ~src ~dst ~depth =
  match tr_op with
  | Some (tr, op) ->
    let time = t.clock +. float_of_int depth in
    let s =
      Trace.begin_span tr ~time ~op ~tier:"gnutella" ~phase ~src:src.host
        ~dst:dst.host phase
    in
    Trace.end_span tr ~time:(time +. 1.0) s
  | None -> ()

let trace_finish t tr_op ~depth label =
  match tr_op with
  | Some (tr, op) ->
    let stop = t.clock +. float_of_int depth +. 1.0 in
    Trace.end_op tr ~time:stop ~op label;
    t.clock <- stop +. 1.0
  | None -> ()

let peer_count t = t.count
let peers t = t.members
let host p = p.host
let neighbors p = p.neighbor_list
let degree p = List.length p.neighbor_list
let alive p = p.alive
let stored_items p = Hashtbl.length p.store

let join t ~host =
  let peer =
    { host; neighbor_list = []; store = Hashtbl.create 8; alive = true; mark = 0 }
  in
  let existing = Array.of_list t.members in
  let n = Array.length existing in
  let wanted = min t.links_per_join n in
  if wanted > 0 then begin
    let targets = Rng.sample_without_replacement t.rng ~k:wanted existing in
    Array.iter
      (fun target ->
        peer.neighbor_list <- target :: peer.neighbor_list;
        target.neighbor_list <- peer :: target.neighbor_list)
      targets
  end;
  t.members <- peer :: t.members;
  t.count <- t.count + 1;
  peer

let unlink peer =
  List.iter
    (fun n -> n.neighbor_list <- List.filter (fun m -> m != peer) n.neighbor_list)
    peer.neighbor_list;
  peer.neighbor_list <- []

let remove t peer =
  t.members <- List.filter (fun p -> p != peer) t.members;
  t.count <- t.count - 1;
  peer.alive <- false

let leave t peer =
  if not peer.alive then invalid_arg "Mesh.leave: peer already gone";
  (match peer.neighbor_list with
   | [] -> ()
   | heir :: _ ->
     Hashtbl.iter (fun k v -> Hashtbl.replace heir.store k v) peer.store);
  Hashtbl.reset peer.store;
  unlink peer;
  remove t peer

let crash t peer =
  if not peer.alive then invalid_arg "Mesh.crash: peer already gone";
  Hashtbl.reset peer.store;
  unlink peer;
  remove t peer

let store _t peer ~key ~value = Hashtbl.replace peer.store key value

let flood_lookup t ~from ~key ~ttl =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let tr_op = trace_begin t ~kind:"mesh-flood" key in
  let contacted = ref 0 and messages = ref 0 in
  let value = ref None and hops_to_hit = ref None in
  let visit depth peer =
    if peer.mark <> epoch then begin
      peer.mark <- epoch;
      incr contacted;
      if !value = None then
        match Hashtbl.find_opt peer.store key with
        | Some v ->
          value := Some v;
          hops_to_hit := Some depth
        | None -> ()
    end
  in
  visit 0 from;
  (* Breadth-first levels; every transmission over an edge counts as a
     message even if the receiver has already seen the query (the mesh
     duplication the paper's tree s-networks avoid). *)
  let frontier = ref [ from ] in
  let depth = ref 0 in
  while !depth < ttl && !frontier <> [] do
    incr depth;
    let next = ref [] in
    List.iter
      (fun peer ->
        List.iter
          (fun neighbor ->
            if neighbor.alive then begin
              incr messages;
              trace_hop t tr_op ~phase:"flood" ~src:peer ~dst:neighbor
                ~depth:(!depth - 1);
              if neighbor.mark <> epoch then begin
                visit !depth neighbor;
                next := neighbor :: !next
              end
            end)
          peer.neighbor_list)
      !frontier;
    frontier := !next
  done;
  trace_finish t tr_op ~depth:!depth
    (Printf.sprintf "%d messages, %d contacted" !messages !contacted);
  { value = !value; contacted = !contacted; messages = !messages; hops_to_hit = !hops_to_hit }

let random_walk_lookup t ~from ~key ~walkers ~ttl =
  if walkers <= 0 || ttl < 0 then invalid_arg "Mesh.random_walk_lookup";
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let tr_op = trace_begin t ~kind:"mesh-walk" key in
  let max_depth = ref 0 in
  let contacted = ref 0 and messages = ref 0 in
  let value = ref None and hops_to_hit = ref None in
  let check depth peer =
    if peer.mark <> epoch then begin
      peer.mark <- epoch;
      incr contacted
    end;
    if !value = None then
      match Hashtbl.find_opt peer.store key with
      | Some v ->
        value := Some v;
        if !hops_to_hit = None then hops_to_hit := Some depth
      | None -> ()
  in
  check 0 from;
  for _ = 1 to walkers do
    let current = ref from and depth = ref 0 in
    let stuck = ref false in
    while !depth < ttl && !value = None && not !stuck do
      let live = List.filter (fun p -> p.alive) !current.neighbor_list in
      match live with
      | [] -> stuck := true
      | _ ->
        let next = Rng.pick_list t.rng live in
        incr messages;
        trace_hop t tr_op ~phase:"walk" ~src:!current ~dst:next ~depth:!depth;
        incr depth;
        if !depth > !max_depth then max_depth := !depth;
        check !depth next;
        current := next
    done
  done;
  trace_finish t tr_op ~depth:!max_depth
    (Printf.sprintf "%d messages, %d contacted" !messages !contacted);
  { value = !value; contacted = !contacted; messages = !messages; hops_to_hit = !hops_to_hit }

let is_connected t =
  match t.members with
  | [] -> true
  | first :: _ ->
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    let seen = ref 0 in
    let rec dfs p =
      if p.mark <> epoch then begin
        p.mark <- epoch;
        incr seen;
        List.iter (fun n -> if n.alive then dfs n) p.neighbor_list
      end
    in
    dfs first;
    !seen = t.count
