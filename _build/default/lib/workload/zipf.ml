module Rng = P2p_sim.Rng

type t = { cdf : float array }

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if exponent < 0.0 then invalid_arg "Zipf.create: exponent";
  let weights = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cdf.(k) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t k =
  let n = Array.length t.cdf in
  if k < 0 || k >= n then invalid_arg "Zipf.probability";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
