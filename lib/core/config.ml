type placement = Store_at_tpeer | Spread_to_neighbors

type s_style = Flooding_tree | Random_walks of int | Bittorrent_tracker

type replica_placement = Ring_successors | Tree_neighbors

type t = {
  delta : int;
  default_ttl : int;
  placement : placement;
  s_style : s_style;
  use_fingers_for_join : bool;
  use_fingers_for_data : bool;
  hello_period : float;
  hello_timeout : float;
  ack_timeout : float;
  suppress_period : float;
  lookup_timeout : float;
  heartbeats : bool;
  bypass_enabled : bool;
  bypass_lifetime : float;
  link_usage_aware : bool;
  link_usage_threshold : float;
  transmission_ms : float;
  reflood_attempts : int;
  cache_capacity : int;
  cache_lifetime : float;
  bloom_bits_per_key : int;
  bloom_depth : int;
  replication_factor : int;
  replica_placement : replica_placement;
  anti_entropy_interval : float;
  successor_list_length : int;
  engine_lanes : int;
  engine_lookahead : float;
  batch_sends : bool;
  trace_sample_rate : float;
  trace_sample_seed : int;
}

let default =
  {
    delta = 3;
    default_ttl = 4;
    placement = Spread_to_neighbors;
    s_style = Flooding_tree;
    use_fingers_for_join = true;
    use_fingers_for_data = false;
    hello_period = 500.0;
    hello_timeout = 1600.0;
    ack_timeout = 800.0;
    suppress_period = 250.0;
    lookup_timeout = 60_000.0;
    heartbeats = false;
    bypass_enabled = false;
    bypass_lifetime = 30_000.0;
    link_usage_aware = false;
    link_usage_threshold = 1.0;
    transmission_ms = 0.0;
    reflood_attempts = 0;
    cache_capacity = 0;
    cache_lifetime = 20_000.0;
    bloom_bits_per_key = 0;
    bloom_depth = 4;
    replication_factor = 0;
    replica_placement = Ring_successors;
    anti_entropy_interval = 5_000.0;
    successor_list_length = 8;
    engine_lanes = 1;
    engine_lookahead = 0.0;
    batch_sends = true;
    trace_sample_rate = 0.01;
    trace_sample_seed = 0;
  }

let validate t =
  if t.delta < 2 then Error "delta must be >= 2"
  else if t.default_ttl < 0 then Error "default_ttl must be >= 0"
  else if t.hello_period <= 0.0 then Error "hello_period must be positive"
  else if t.hello_timeout <= t.hello_period then
    Error "hello_timeout must exceed hello_period"
  else if t.ack_timeout <= 0.0 then Error "ack_timeout must be positive"
  else if t.suppress_period < 0.0 then Error "suppress_period must be >= 0"
  else if t.lookup_timeout <= 0.0 then Error "lookup_timeout must be positive"
  else if t.bypass_lifetime <= 0.0 then Error "bypass_lifetime must be positive"
  else if t.link_usage_threshold <= 0.0 then
    Error "link_usage_threshold must be positive"
  else if t.transmission_ms < 0.0 then Error "transmission_ms must be >= 0"
  else if t.reflood_attempts < 0 then Error "reflood_attempts must be >= 0"
  else if t.cache_capacity < 0 then Error "cache_capacity must be >= 0"
  else if t.cache_lifetime <= 0.0 then Error "cache_lifetime must be positive"
  else if t.bloom_bits_per_key < 0 then Error "bloom_bits_per_key must be >= 0"
  else if t.bloom_depth < 1 then Error "bloom_depth must be >= 1"
  else if t.replication_factor < 0 then Error "replication_factor must be >= 0"
  else if t.anti_entropy_interval <= 0.0 then
    Error "anti_entropy_interval must be positive"
  else if t.successor_list_length < 1 then
    Error "successor_list_length must be >= 1"
  else if t.engine_lanes < 1 then Error "engine_lanes must be >= 1"
  else if t.engine_lookahead < 0.0 then Error "engine_lookahead must be >= 0"
  else if t.trace_sample_rate < 0.0 || t.trace_sample_rate > 1.0 then
    Error "trace_sample_rate must be within [0, 1]"
  else
    match t.s_style with
    | Random_walks walkers when walkers <= 0 ->
      Error "Random_walks needs a positive walker count"
    | Random_walks _ | Flooding_tree | Bittorrent_tracker -> Ok ()
