test/test_analysis.ml: Alcotest List P2p_analysis Printf
