examples/file_sharing.ml: Array Hybrid_p2p List P2p_sim P2p_stats P2p_workload Printf
