examples/music_library.mli:
