type id = int

let bits = 30

let size = 1 lsl bits

let valid i = i >= 0 && i < size

let normalize i =
  let r = i mod size in
  if r < 0 then r + size else r

let distance ~src ~dst = normalize (dst - src)

let between x ~left ~right =
  if left = right then x <> left
  else begin
    let d_right = distance ~src:left ~dst:right in
    let d_x = distance ~src:left ~dst:x in
    d_x > 0 && d_x < d_right
  end

let between_incl_right x ~left ~right =
  x = right || between x ~left ~right

let midpoint ~left ~right =
  (* left = right denotes the full ring (a single-node segment), so the
     whole space minus the endpoint is available. *)
  let gap = if left = right then size else distance ~src:left ~dst:right in
  if gap <= 1 then None else Some (normalize (left + (gap / 2)))

let add i k = normalize (i + k)

let finger_start ~base k =
  if k < 0 || k >= bits then invalid_arg "Id_space.finger_start";
  normalize (base + (1 lsl k))

let pp ppf i = Format.fprintf ppf "%#x" i
