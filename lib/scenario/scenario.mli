(** Declarative scenario scripts for the hybrid system.

    A scenario is a list of actions executed in order against a
    {!Hybrid_p2p.Hybrid.t}: membership churn, data operations, crash
    storms, time advancement.  The runner tracks what happened and reports
    a summary with the final invariant check — the backbone of the
    integration tests and a convenient harness for users experimenting
    with the system.

    Example — a flash-crowd-under-churn scenario:
    {[
      let report =
        Scenario.run h ~seed:7
          ~script:
            [ Join_many (100, 0.7); Insert_items 500; Settle;
              Crash_fraction 0.2; Repair; Settle;
              Lookup_items 500; Settle ]
      in
      assert (Result.is_ok report.invariants)
    ]} *)

type action =
  | Join_t  (** one structured peer joins *)
  | Join_s  (** one unstructured peer joins (t-peer if the system is empty) *)
  | Join_many of int * float
      (** [(count, s_fraction)] peers join, settling between joins *)
  | Leave_random  (** a uniformly random peer departs gracefully *)
  | Crash_random  (** a uniformly random peer crashes *)
  | Crash_fraction of float  (** that fraction of the population crashes at once *)
  | Repair  (** offline repair of all crash damage *)
  | Insert_items of int  (** insert that many fresh items from random peers *)
  | Lookup_items of int
      (** look up that many uniformly drawn previously inserted items *)
  | Settle  (** drive the engine to quiescence *)
  | Advance of float  (** advance the clock by that many ms *)
  | Anti_entropy of float
      (** run with the periodic anti-entropy timer armed for that many
          ms, then disarm and settle.  No-op unless the system's config
          enables replication (the runner installs the
          {!P2p_replication.Manager} automatically when
          [replication_factor > 0]). *)

(** What the online auditor saw across the whole run (present only when
    [run] was given an [audit_interval]). *)
type audit_summary = {
  audit_ticks : int;  (** how many times the catalogue ran *)
  audit_violations : int;  (** all violations, both severities *)
  audit_errors : int;  (** [Error]-severity subset *)
  timeline : (float * int) list;
      (** violations found per tick, oldest first — the
          violations-over-time series *)
}

type report = {
  joined : int;
  left : int;
  crashed : int;
  inserted : int;
  lookups_ok : int;
  lookups_failed : int;
  final_peers : int;
  final_items : int;
  invariants : (unit, string) result;  (** checked after the last action *)
  audit : audit_summary option;
}

(** [run ?audit_interval ?audit_checks h ~seed ~script] executes the
    script.  Lookups before any insert are counted as failed.  The
    scenario's randomness is independent of the system's.

    With [audit_interval] (simulated ms), an online
    {!P2p_audit.Auditor} audits the system throughout the run: every
    settle/advance passes through the auditor so invariant checks fire on
    cadence mid-churn, the report's [audit] field summarizes what they
    saw, and [invariants] comes from a final audit tick over the drained,
    repaired end state instead of the single offline
    [Hybrid.check_invariants].  [audit_checks] narrows the catalogue
    (default: all checks).

    When the system's config has [replication_factor > 0] the runner
    installs the replication manager before the first action, so inserts
    fan out, crashes re-replicate, and the [replication_factor] audit
    check is live. *)
val run :
  ?audit_interval:float ->
  ?audit_checks:P2p_audit.Checks.check list ->
  Hybrid_p2p.Hybrid.t ->
  seed:int ->
  script:action list ->
  report

val pp_report : Format.formatter -> report -> unit
