(* Versioned per-process observability snapshots and their cluster-wide
   merge.

   A live node answers a scrape with one JSON document: ring-position
   health (ready, p_id, successor/predecessor, store size, violations),
   its full {!Registry} export, and — on request — the chrome span
   events its trace still retains.  The aggregator side parses those
   documents back, folds every registry into one merged registry
   (counters sum, gauges take the max, log histograms merge bucketwise —
   so cluster p99 comes from the true merged distribution, not an
   average of per-node percentiles), and pools the span events into a
   single Perfetto file with one process track per node.

   Plain summary-backed histograms cannot be reconstructed from their
   fixed-width export bins, so they are carried per-node but skipped in
   the merge; every latency surface the live path feeds is a log
   histogram precisely so the merge is lossless. *)

let snapshot_version = 1

type snapshot = {
  node : int;
  at : float;  (* ms on the cluster-shared epoch *)
  uptime_ms : float;
  ready : bool;
  p_id : int;
  succ : int;
  pred : int;
  store : int;
  violations : int;
  metrics : Json.t;  (* {!Registry.to_json} shape *)
  trace : Json.t list;  (* chrome span events; [] unless requested *)
}

let to_json s =
  Json.Obj
    [
      ("type", Json.String "scrape");
      ("version", Json.Int snapshot_version);
      ("node", Json.Int s.node);
      ("at", Json.Float s.at);
      ("uptime_ms", Json.Float s.uptime_ms);
      ("ready", Json.Bool s.ready);
      ("p_id", Json.Int s.p_id);
      ("succ", Json.Int s.succ);
      ("pred", Json.Int s.pred);
      ("store", Json.Int s.store);
      ("violations", Json.Int s.violations);
      ("metrics", s.metrics);
      ("trace", Json.List s.trace);
    ]

let to_string s = Json.to_string (to_json s)

let of_json j =
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "scrape: missing or bad %S" name)
  in
  let float name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "scrape: missing or bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "type" j) Json.to_str with
    | Some "scrape" -> Ok ()
    | Some other -> Error (Printf.sprintf "scrape: wrong document type %S" other)
    | None -> Error "scrape: missing \"type\""
  in
  let* v = int "version" in
  let* () =
    if v = snapshot_version then Ok ()
    else Error (Printf.sprintf "scrape: unsupported snapshot version %d" v)
  in
  let* node = int "node" in
  let* at = float "at" in
  let* uptime_ms = float "uptime_ms" in
  let* ready =
    match Json.member "ready" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "scrape: missing or bad \"ready\""
  in
  let* p_id = int "p_id" in
  let* succ = int "succ" in
  let* pred = int "pred" in
  let* store = int "store" in
  let* violations = int "violations" in
  let* metrics =
    match Json.member "metrics" j with
    | Some m -> Ok m
    | None -> Error "scrape: missing \"metrics\""
  in
  let trace =
    match Option.bind (Json.member "trace" j) Json.to_list with
    | Some l -> l
    | None -> []
  in
  Ok { node; at; uptime_ms; ready; p_id; succ; pred; store; violations;
       metrics; trace }

let of_string text =
  match Json.parse text with Error e -> Error e | Ok j -> of_json j

(* --- registry merge --------------------------------------------------- *)

(* Fold one {!Registry.to_json} document into [reg].  Counters add,
   gauges keep the max (a cluster high-water), log histograms merge
   bucketwise.  Summary histograms and malformed fields are skipped:
   a half-broken peer must not poison the cluster report. *)
let merge_metrics_into reg metrics =
  match metrics with
  | Json.Obj subsystems ->
    List.iter
      (fun (subsystem, fields) ->
        match fields with
        | Json.Obj fields ->
          List.iter
            (fun (name, m) ->
              match Option.bind (Json.member "kind" m) Json.to_str with
              | Some "counter" -> (
                match Option.bind (Json.member "value" m) Json.to_int with
                | Some v ->
                  (try Registry.incr ~by:v (Registry.counter reg ~subsystem ~name)
                   with Invalid_argument _ -> ())
                | None -> ())
              | Some "gauge" -> (
                match Option.bind (Json.member "value" m) Json.to_float with
                | Some v ->
                  (try Registry.set_max (Registry.gauge reg ~subsystem ~name) v
                   with Invalid_argument _ -> ())
                | None -> ())
              | Some "log_histogram" -> (
                match Log_hist.of_json m with
                | Ok h -> (
                  try
                    Log_hist.merge_into
                      ~into:(Registry.log_histogram reg ~subsystem ~name) h
                  with Invalid_argument _ -> ())
                | Error _ -> ())
              | _ -> ())
            fields
        | _ -> ())
      subsystems
  | _ -> ()

let merged_registry snapshots =
  let reg = Registry.create () in
  List.iter (fun s -> merge_metrics_into reg s.metrics) snapshots;
  reg

(* --- merged chrome trace ---------------------------------------------- *)

(* Pool every snapshot's span events into one trace-event array.  The
   per-node exports each carry their own [ph:"M"] process metadata for
   just the pids that node saw; strip those and re-derive one metadata
   set from the pooled events so every process track is named exactly
   once. *)
let merged_chrome snapshots =
  let is_meta e =
    match Option.bind (Json.member "ph" e) Json.to_str with
    | Some "M" -> true
    | _ -> false
  in
  let events =
    List.concat_map (fun s -> List.filter (fun e -> not (is_meta e)) s.trace)
      snapshots
  in
  let pids = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Option.bind (Json.member "pid" e) Json.to_int with
      | Some pid -> Hashtbl.replace pids pid ()
      | None -> ())
    events;
  let metadata =
    Hashtbl.fold (fun pid () acc -> pid :: acc) pids []
    |> List.sort compare
    |> List.map (fun pid ->
           Json.Obj
             [
               ("name", Json.String "process_name");
               ("ph", Json.String "M");
               ("pid", Json.Int pid);
               ("tid", Json.Int 0);
               ( "args",
                 Json.Obj
                   [
                     (* live-span pids are node indices (the span's dst),
                        so node 0 really is a peer — no "ops" track here *)
                     ("name", Json.String (Printf.sprintf "peer %d" pid));
                   ] );
             ])
  in
  Json.List (metadata @ events)

(* --- rendering -------------------------------------------------------- *)

let log_hist_of_metrics metrics ~subsystem ~name =
  match
    Option.bind (Json.member subsystem metrics) (Json.member name)
  with
  | None -> None
  | Some m -> (
    match Log_hist.of_json m with
    | Ok h when Log_hist.count h > 0 -> Some h
    | _ -> None)

let counter_of_metrics metrics ~subsystem ~name =
  Option.bind
    (Option.bind (Json.member subsystem metrics) (Json.member name))
    (fun m -> Option.bind (Json.member "value" m) Json.to_int)

let pctl h p = Log_hist.percentile h p

let render_table snapshots =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%5s %6s %6s %5s %7s %10s %10s %10s %7s\n" "node" "ready"
       "store" "viol" "ops" "p50(ms)" "p99(ms)" "sent" "drops");
  let sorted = List.sort (fun a b -> compare a.node b.node) snapshots in
  List.iter
    (fun s ->
      let lookups = log_hist_of_metrics s.metrics ~subsystem:"latency"
          ~name:"lookup_total_ms"
      and inserts = log_hist_of_metrics s.metrics ~subsystem:"latency"
          ~name:"insert_total_ms"
      in
      let merged =
        match (lookups, inserts) with
        | Some a, Some b -> Some (Log_hist.merge a b)
        | (Some _ as h), None | None, (Some _ as h) -> h
        | None, None -> None
      in
      let ops = match merged with Some h -> Log_hist.count h | None -> 0 in
      let pc p =
        match merged with
        | Some h -> Printf.sprintf "%10.2f" (pctl h p)
        | None -> Printf.sprintf "%10s" "-"
      in
      let sent =
        Option.value ~default:0
          (counter_of_metrics s.metrics ~subsystem:"wire" ~name:"msgs_sent")
      and drops =
        Option.value ~default:0
          (counter_of_metrics s.metrics ~subsystem:"wire" ~name:"drops")
      in
      Buffer.add_string b
        (Printf.sprintf "%5d %6s %6d %5d %7d %s %s %10d %7d\n" s.node
           (if s.ready then "yes" else "NO")
           s.store s.violations ops (pc 50.0) (pc 99.0) sent drops))
    sorted;
  let merged = merged_registry snapshots in
  let cluster kind =
    let h =
      try
        Some (Registry.log_histogram merged ~subsystem:"latency"
                ~name:(kind ^ "_total_ms"))
      with Invalid_argument _ -> None
    in
    match h with
    | Some h when Log_hist.count h > 0 ->
      Printf.sprintf "%s n=%d p50=%.2fms p99=%.2fms" kind (Log_hist.count h)
        (pctl h 50.0) (pctl h 99.0)
    | _ -> Printf.sprintf "%s (no samples)" kind
  in
  Buffer.add_string b
    (Printf.sprintf "cluster: %d/%d ready | %s | %s\n"
       (List.length (List.filter (fun s -> s.ready) snapshots))
       (List.length snapshots) (cluster "lookup") (cluster "insert"));
  Buffer.contents b
