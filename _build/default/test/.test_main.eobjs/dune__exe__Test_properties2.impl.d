test/test_properties2.ml: Hashtbl Hybrid_p2p List P2p_scenario P2p_sim P2p_stats Printf QCheck QCheck_alcotest Random Result String
