examples/quickstart.mli:
