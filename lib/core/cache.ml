type entry = { value : string; expiry : float }

(* Eviction order comes from a min-heap of (expiry, key) pairs with lazy
   deletion: refreshing an entry pushes a new pair and strands the old one,
   which is discarded when it surfaces (its expiry no longer matches the
   table).  The heap is rebuilt from the table when stranded pairs dominate,
   bounding it at O(capacity). *)
type t = {
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  mutable heap : (float * string) array;
  mutable heap_size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    capacity;
    entries = Hashtbl.create (min 64 (capacity + 1));
    heap = [||];
    heap_size = 0;
    hits = 0;
    misses = 0;
  }

let size t = Hashtbl.length t.entries

let capacity t = t.capacity

let heap_before a b = fst a < fst b || (fst a = fst b && snd a <= snd b)

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.heap_size && heap_before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.heap_size && heap_before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let heap_push t pair =
  let cap = Array.length t.heap in
  if t.heap_size = cap then begin
    let heap = Array.make (if cap = 0 then 16 else cap * 2) pair in
    Array.blit t.heap 0 heap 0 t.heap_size;
    t.heap <- heap
  end;
  t.heap.(t.heap_size) <- pair;
  t.heap_size <- t.heap_size + 1;
  sift_up t (t.heap_size - 1)

let heap_pop t =
  let top = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    sift_down t 0
  end;
  top

(* A heap pair is live iff the table still maps its key to its expiry. *)
let pair_live t (expiry, key) =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e.expiry = expiry
  | None -> false

let rebuild_heap t =
  t.heap_size <- 0;
  Hashtbl.iter (fun key e -> heap_push t (e.expiry, key)) t.entries

(* Stranded pairs never exceed one per refresh; rebuild when they are the
   majority so the heap stays within a small factor of the live set. *)
let maybe_compact t =
  if t.heap_size > 16 && t.heap_size > 2 * Hashtbl.length t.entries then
    rebuild_heap t

let evict_soonest t =
  let rec pop () =
    if t.heap_size > 0 then begin
      let pair = heap_pop t in
      if pair_live t pair then Hashtbl.remove t.entries (snd pair) else pop ()
    end
  in
  pop ()

let put t ~now ~lifetime ~key ~value =
  if t.capacity > 0 then begin
    if (not (Hashtbl.mem t.entries key)) && Hashtbl.length t.entries >= t.capacity then
      evict_soonest t;
    Hashtbl.replace t.entries key { value; expiry = now +. lifetime };
    heap_push t (now +. lifetime, key);
    maybe_compact t
  end

let find t ~now ~key =
  match Hashtbl.find_opt t.entries key with
  | Some e when e.expiry > now ->
    t.hits <- t.hits + 1;
    Some e.value
  | Some _ ->
    Hashtbl.remove t.entries key;
    t.misses <- t.misses + 1;
    None
  | None ->
    t.misses <- t.misses + 1;
    None

let hits t = t.hits

let misses t = t.misses

let clear t =
  Hashtbl.reset t.entries;
  t.heap_size <- 0
