(** Closed-form performance model (paper Section 4).

    These formulas regenerate the paper's analytical Figs. 3a and 3b and
    give the quantities the simulation is validated against:

    - Eq. (1): average join latency (in overlay hops) as a function of the
      system parameter [p_s], mixing the finger-accelerated ring join of
      t-peers with the tree walk of s-peers;
    - Eq. (2): the expected number of peers outside a TTL-bounded flood's
      reach in a degree-[δ] tree s-network;
    - the average lookup latency with and without the degree constraint.

    All logarithms follow the paper's conventions: [log] is base 2 and
    terms are clamped at zero where the paper's expressions go negative
    for degenerate parameters (tiny [(1-p_s)N]). *)

(** Average s-network size [p_s / (1 - p_s)] (s-peers per t-peer).
    [infinity] when [p_s = 1]. *)
val avg_snetwork_size : ps:float -> float

(** Eq. (1): average join latency in hops.
    @raise Invalid_argument unless [0 <= ps <= 1], [n > 0], [delta >= 2]. *)
val join_latency : ps:float -> n:int -> delta:int -> float

(** Join latency of a t-peer alone: [log((1-p_s) N / 2)], clamped at 0. *)
val t_join_latency : ps:float -> n:int -> float

(** Join latency of an s-peer alone: [log_δ(p_s / (1-p_s))], clamped
    at 0. *)
val s_join_latency : ps:float -> delta:int -> float

(** Probability [p] that a requested item lives in the requester's own
    s-network: [p_s / (N (1 - p_s))], clamped to [\[0, 1\]]. *)
val local_hit_probability : ps:float -> n:int -> float

(** Eq. (2): expected number of s-network peers beyond a TTL-[ttl] flood
    under degree constraint [delta] (midpoint of the t-peer-initiated and
    leaf-initiated cases), clamped at 0. *)
val peers_out_of_reach : ps:float -> delta:int -> ttl:int -> float

(** Lookup failure ratio implied by Eq. (2): out-of-reach peers divided by
    the average s-network size (0 when the s-network is empty). *)
val lookup_failure_ratio : ps:float -> delta:int -> ttl:int -> float

(** Average lookup latency in hops, without the degree constraint
    (star-shaped s-networks, diameter 2). *)
val lookup_latency_unconstrained : ps:float -> n:int -> float

(** Average lookup latency in hops with degree constraint [delta] and
    flood TTL [ttl]. *)
val lookup_latency : ps:float -> n:int -> delta:int -> ttl:int -> float
