module Rng = P2p_sim.Rng

type event_kind = Join | Leave | Crash

type event = { time : float; kind : event_kind }

let process ~rng ~duration ~rate kind =
  if rate = 0.0 then []
  else begin
    let rec loop t acc =
      let t = t +. Rng.exponential rng ~mean:(1.0 /. rate) in
      if t >= duration then List.rev acc else loop t ({ time = t; kind } :: acc)
    in
    loop 0.0 []
  end

let poisson ~rng ~duration ~join_rate ~leave_rate ~crash_rate =
  if duration < 0.0 then invalid_arg "Churn.poisson: negative duration";
  if join_rate < 0.0 || leave_rate < 0.0 || crash_rate < 0.0 then
    invalid_arg "Churn.poisson: negative rate";
  let joins = process ~rng ~duration ~rate:join_rate Join in
  let leaves = process ~rng ~duration ~rate:leave_rate Leave in
  let crashes = process ~rng ~duration ~rate:crash_rate Crash in
  List.sort (fun a b -> compare a.time b.time) (joins @ leaves @ crashes)

let crash_storm ~rng ~population ~fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Churn.crash_storm: fraction";
  if population < 0 then invalid_arg "Churn.crash_storm: population";
  let k = int_of_float (Float.round (fraction *. float_of_int population)) in
  let everyone = Array.init population (fun i -> i) in
  Rng.sample_without_replacement rng ~k everyone

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a.time <= b.time && is_sorted rest
