lib/stats/pdf.ml: Format Histogram List Stdlib
