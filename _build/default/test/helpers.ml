(* Shared fixtures for the hybrid-system test suites. *)

module H = Hybrid_p2p.Hybrid
module Config = Hybrid_p2p.Config
module Peer = Hybrid_p2p.Peer
module Data_ops = Hybrid_p2p.Data_ops
module World = Hybrid_p2p.World

let default_config = Config.default

(* A small system over a star underlay, grown to [n] peers with ratio
   [ps], settled to quiescence. *)
let star_system ?(config = default_config) ?snet_policy ?(seed = 42) ?(capacity = 600)
    ~n ~ps () =
  let h = H.create_star ~seed ~peers:capacity ?config:(Some config) ?snet_policy () in
  let members = H.grow h ~count:n ~s_fraction:ps in
  (h, members)

let ok_invariants h =
  match H.check_invariants h with
  | Ok () -> ()
  | Error reason -> Alcotest.fail ("invariants: " ^ reason)

(* Insert [count] items from random peers and settle; returns the keys. *)
let insert_items h ~count =
  let keys = List.init count (fun i -> Printf.sprintf "item-%05d" i) in
  List.iter
    (fun key -> H.insert h ~from:(H.random_peer h) ~key ~value:("v:" ^ key) ())
    keys;
  H.run h;
  keys

(* Resolve one key synchronously (drives the engine). *)
let lookup_sync h ~from ~key ?ttl () =
  let result = ref None in
  H.lookup h ~from ~key ?ttl ~on_result:(fun r -> result := Some r) ();
  H.run h;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "lookup callback never fired"

let found = function Data_ops.Found _ -> true | Data_ops.Timed_out -> false
