lib/stats/pdf.mli: Format Histogram
