(* A shared music library: keyword search over an interest-based
   s-network, plus the Section-7 caching scheme absorbing a flash crowd.

   Run with: dune exec examples/music_library.exe *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Interest = Hybrid_p2p.Interest
module Cache = Hybrid_p2p.Cache
module Rng = P2p_sim.Rng

let music = 0 (* the interest category everyone here shares *)

let tracks =
  [ "beatles - yesterday.flac"; "beatles - help.flac";
    "beatles - let it be.flac"; "miles davis - so what.flac";
    "miles davis - blue in green.flac"; "nina simone - sinnerman.flac";
    "radiohead - pyramid song.flac"; "radiohead - reckoner.flac" ]

let () =
  let config =
    { Config.default with
      Config.default_ttl = 10;
      cache_capacity = 16;
      cache_lifetime = 60_000.0;
    }
  in
  let h =
    H.create_star ~seed:11 ~peers:128 ~config
      ~snet_policy:Hybrid_p2p.World.By_interest ()
  in
  (* the music s-network: its t-peer sits exactly at the category's
     routing ID, plus a few backbone t-peers *)
  ignore (H.join h ~host:0 ~role:Peer.T_peer ~p_id:(Interest.route_id music) () : Peer.t);
  H.run h;
  for host = 1 to 8 do
    ignore (H.join h ~host ~role:Peer.T_peer () : Peer.t);
    H.run h
  done;
  let listeners =
    List.init 60 (fun i ->
        let p = H.join h ~host:(9 + i) ~role:Peer.S_peer ~interest:music () in
        H.run h;
        p)
  in
  Printf.printf "library up: %d peers, %d in the music s-network\n\n"
    (H.peer_count h) (List.length listeners + 1);

  (* everyone shares some tracks *)
  let rng = Rng.create 3 in
  List.iter
    (fun title ->
      let publisher = Rng.pick_list rng listeners in
      H.insert h ~from:publisher ~key:title ~value:"<flac bits>"
        ~route_id:(Interest.route_id music) ())
    tracks;
  H.run h;

  (* keyword search: "give me everything by radiohead" *)
  H.keyword_search h ~from:(List.hd listeners) ~substring:"radiohead"
    ~route_id:(Interest.route_id music)
    ~on_result:(fun matches ->
      Printf.printf "keyword search \"radiohead\" -> %d matches:\n" (List.length matches);
      List.iter
        (fun m ->
          Printf.printf "  %-34s held by peer #%d\n" m.Data_ops.match_key
            m.Data_ops.match_holder.Peer.host)
        matches)
    ();
  H.run h;

  (* flash crowd: every listener wants "sinnerman" at once — twice *)
  let hot = "nina simone - sinnerman.flac" in
  let served = Hashtbl.create 16 in
  let round label =
    List.iter
      (fun from ->
        H.lookup h ~from ~key:hot ~route_id:(Interest.route_id music)
          ~on_result:(function
            | Data_ops.Found { holder; _ } ->
              Hashtbl.replace served holder.Peer.host
                (1 + Option.value ~default:0 (Hashtbl.find_opt served holder.Peer.host))
            | Data_ops.Timed_out -> ())
          ())
      listeners;
    H.run h;
    let max_load = Hashtbl.fold (fun _ n acc -> max n acc) served 0 in
    Printf.printf "%s: hottest peer served %d of the %d replies so far\n" label max_load
      (Hashtbl.fold (fun _ n acc -> acc + n) served 0)
  in
  Printf.printf "\nflash crowd for %S:\n" hot;
  round "round 1 (cold caches)";
  round "round 2 (warm caches)";
  let cached =
    List.length
      (List.filter
         (fun p -> Cache.find p.Peer.cache ~now:(H.now h) ~key:hot <> None)
         listeners)
  in
  Printf.printf
    "%d listeners now hold a cached copy — the Section-7 scheme at work.\n" cached
