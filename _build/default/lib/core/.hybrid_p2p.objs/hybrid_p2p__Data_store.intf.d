lib/core/data_store.mli: Id_space P2p_hashspace
