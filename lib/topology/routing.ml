type source_result = { dist : float array; prev : int array }

type graph_routed = {
  graph : Graph.t;
  cache : source_result option array;
  max_cached : int;
  last_used : int array;  (* LRU stamps, meaningful where cache is Some *)
  mutable clock : int;
  mutable cached : int;
}

(* [Synthetic] short-circuits path computation entirely: every distinct
   pair is one hop at a fixed latency.  Million-node underlays cannot
   afford per-source Dijkstra (the cache alone is O(n) per source), and
   overlay-scalability studies do not need real path diversity. *)
type t =
  | Graph_routed of graph_routed
  | Synthetic of { graph : Graph.t; latency : float }

let create ?(max_cached_sources = max_int) graph =
  if max_cached_sources < 1 then invalid_arg "Routing.create: max_cached_sources";
  let n = Graph.node_count graph in
  Graph_routed
    {
      graph;
      cache = Array.make n None;
      max_cached = max_cached_sources;
      last_used = Array.make n 0;
      clock = 0;
      cached = 0;
    }

let synthetic ~nodes ~latency =
  if nodes < 0 then invalid_arg "Routing.synthetic: negative node count";
  if latency <= 0.0 then invalid_arg "Routing.synthetic: latency must be positive";
  Synthetic { graph = Graph.create nodes; latency }

(* Dijkstra with a simple binary heap of (distance, node). *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h x =
    let cap = Array.length h.data in
    if h.size = cap then begin
      let data = Array.make (if cap = 0 then 16 else cap * 2) x in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
          if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = h.data.(!i) in
            h.data.(!i) <- h.data.(!smallest);
            h.data.(!smallest) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

let dijkstra graph src =
  let n = Graph.node_count graph in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- 0.0;
  let heap = Heap.create () in
  Heap.push heap (0.0, src);
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        Graph.iter_neighbors graph u (fun v w ->
            let alt = d +. w in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              prev.(v) <- u;
              Heap.push heap (alt, v)
            end)
      end;
      loop ()
  in
  loop ();
  { dist; prev }

(* Evict the least-recently-used cached source.  The linear scan is noise
   next to the Dijkstra run that triggered it. *)
let evict_lru t =
  let victim = ref (-1) in
  Array.iteri
    (fun i r ->
      if r <> None && (!victim < 0 || t.last_used.(i) < t.last_used.(!victim)) then
        victim := i)
    t.cache;
  if !victim >= 0 then begin
    t.cache.(!victim) <- None;
    t.cached <- t.cached - 1
  end

let source_result t src =
  t.clock <- t.clock + 1;
  t.last_used.(src) <- t.clock;
  match t.cache.(src) with
  | Some r -> r
  | None ->
    if t.cached >= t.max_cached then evict_lru t;
    let r = dijkstra t.graph src in
    t.cache.(src) <- Some r;
    t.cached <- t.cached + 1;
    r

let distance t u v =
  match t with
  | Graph_routed t -> (source_result t u).dist.(v)
  | Synthetic { latency; _ } -> if u = v then 0.0 else latency

let path t u v =
  match t with
  | Graph_routed t ->
    let r = source_result t u in
    if r.dist.(v) = infinity then raise Not_found;
    let rec build acc node =
      if node = u then u :: acc else build (node :: acc) r.prev.(node)
    in
    build [] v
  | Synthetic _ -> if u = v then [ u ] else [ u; v ]

let hop_count t u v = List.length (path t u v) - 1

let eccentricity t u =
  match t with
  | Graph_routed t ->
    let r = source_result t u in
    Array.fold_left (fun acc d -> if d <> infinity && d > acc then d else acc) 0.0 r.dist
  | Synthetic { latency; _ } -> latency

let graph = function
  | Graph_routed t -> t.graph
  | Synthetic { graph; _ } -> graph
