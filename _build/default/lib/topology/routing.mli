(** Shortest-path routing over the physical graph.

    Overlay links are logical: a message sent over the overlay edge
    [u -> v] traverses the latency-shortest physical path from [u] to [v].
    This module computes those paths with Dijkstra's algorithm, caching the
    full single-source result per source on first use (a 1,000-node topology
    fits comfortably). *)

type t

(** [create graph] prepares a router; no paths are computed yet. *)
val create : Graph.t -> t

(** [distance t u v] is the latency of the shortest path.  [infinity] when
    unreachable. *)
val distance : t -> int -> int -> float

(** [path t u v] is the node sequence [u; ...; v] of a shortest path.
    @raise Not_found when unreachable. *)
val path : t -> int -> int -> int list

(** [hop_count t u v] is [List.length (path t u v) - 1]; 0 when [u = v].
    @raise Not_found when unreachable. *)
val hop_count : t -> int -> int -> int

(** [eccentricity t u] is the maximum finite distance from [u]. *)
val eccentricity : t -> int -> float

(** [graph t] is the underlying graph. *)
val graph : t -> Graph.t
