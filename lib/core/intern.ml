type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* id -> string; slots >= count are garbage *)
  mutable count : int;
}

let create ?(initial_capacity = 64) () =
  if initial_capacity < 0 then invalid_arg "Intern.create: negative capacity";
  { ids = Hashtbl.create (max 1 initial_capacity); names = [||]; count = 0 }

let count t = t.count

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.count in
    let cap = Array.length t.names in
    if id = cap then begin
      let names = Array.make (if cap = 0 then 16 else cap * 2) s in
      Array.blit t.names 0 names 0 t.count;
      t.names <- names
    end;
    t.names.(id) <- s;
    t.count <- t.count + 1;
    Hashtbl.add t.ids s id;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Intern.name: unknown id";
  t.names.(id)

let mem_id t id = id >= 0 && id < t.count
