open P2p_hashspace
module Engine = P2p_sim.Engine
module Rng = P2p_sim.Rng
module Trace = P2p_sim.Trace
module Underlay = P2p_net.Underlay
module Metrics = P2p_net.Metrics
module Landmark = P2p_topology.Landmark
module Transport = P2p_transport.Transport

type snet_policy =
  | Smallest_s_network
  | By_interest
  | By_cluster of Landmark.t

(* Membership state is flat: hosts are dense graph-node ids, so a
   [Peer.t option array] indexed by host replaces the host->peer Hashtbl,
   and an int array (-1 = no entry) replaces the s-network size table.
   The t-ring oracle keeps a parallel [t_ids] int array next to
   [t_sorted] so successor search is a binary search over a flat int
   array with no pointer chasing.  See SCALING.md for the per-peer byte
   budget this buys at million-peer scale. *)
type t = {
  engine : Engine.t;
  underlay : Underlay.t;
  transport : Transport.t;
  metrics : Metrics.t;
  config : Config.t;
  rng : Rng.t;
  interner : Intern.t;
  mutable slots : Peer.t option array;
  mutable live_count : int;
  mutable snet : int array;
  mutable t_sorted : Peer.t array;
  mutable t_ids : int array;
  mutable t_dirty : bool;
  mutable fingers_dirty : bool;
  mutable summary_epoch : int;
  snet_policy : snet_policy;
  pending_election : (int, Peer.t option) Hashtbl.t;
  mutable on_query : (receiver:Peer.t -> sender:Peer.t -> unit) option;
  mutable on_stored :
    (op:int option ->
    holder:Peer.t ->
    route_id:Id_space.id ->
    key:string ->
    value:string ->
    unit)
      option;
  mutable on_peer_failure : (Peer.t -> unit) option;
  mutable on_repaired : (op:int option -> unit) option;
  mutable replication_pending : int;
}

let create ~engine ~underlay ~metrics ~config ?(snet_policy = Smallest_s_network) () =
  (match Config.validate config with
   | Ok () -> ()
   | Error reason -> invalid_arg ("World.create: " ^ reason));
  {
    engine;
    underlay;
    transport = P2p_transport.Sim_transport.create ~underlay;
    metrics;
    config;
    rng = Rng.split (Engine.rng engine);
    interner = Intern.create ();
    slots = [||];
    live_count = 0;
    snet = [||];
    t_sorted = [||];
    t_ids = [||];
    t_dirty = false;
    fingers_dirty = false;
    summary_epoch = 0;
    snet_policy;
    pending_election = Hashtbl.create 8;
    on_query = None;
    on_stored = None;
    on_peer_failure = None;
    on_repaired = None;
    replication_pending = 0;
  }

let now t = Transport.now t.transport

let trace t = Underlay.trace t.underlay

let interner t = t.interner

(* Ring-segment sharding: the id space splits into 64 equal arcs and a
   message's shard is the arc of its destination's p_id, so each engine
   lane serves a contiguous ring segment.  Cross-segment traffic (finger
   hops) crosses lanes; segment-local traffic (successor walks, tree
   floods, stabilization) stays lane-local. *)
let shard_shift = Id_space.bits - 6

let shard_of (p : Peer.t) = p.Peer.p_id lsr shard_shift

let send t ?op ~src ~dst f =
  Transport.send t.transport ?op ~shard:(shard_of dst) ~src:src.Peer.host
    ~dst:dst.Peer.host f

(* Fan-out seam: run [f]'s sends with the transport's insertion batching
   (one event-heap restructuring pass for the whole fan-out) unless the
   config switched it off for A/B measurement.  Ordering is identical
   either way. *)
let batch t f =
  if t.config.Config.batch_sends then Transport.batch t.transport f else f ()

(* Timers on the transport clock — the protocol layers' only way to arm
   delayed work, so the same code runs over the simulation engine and
   the live wall-clock wheel. *)
let one_shot t ?label ~delay f = Transport.one_shot t.transport ?label ~delay f

let periodic t ?label ~period f =
  Transport.periodic t.transport ?label ~period f

(* Like [send], but the delivery is also a causal span of [op]: opened
   when the message is posted, closed (under the op's root span — no
   parent threading at call sites) when the handler finishes, so the
   span covers propagation delay plus handler work.  Unsampled ops take
   the plain path: no span, no handler wrapper, no closure — the
   per-message cost head-based sampling exists to avoid. *)
let send_span t ?op ~tier ~phase ~src ~dst f =
  let tr = trace t in
  match op with
  | Some op_id when Trace.enabled tr && Trace.sampled tr op_id ->
    let span =
      Trace.begin_span tr ~time:(now t) ~op:op_id ~tier ~phase
        ~src:src.Peer.host ~dst:dst.Peer.host phase
    in
    Transport.send t.transport ~op:op_id ~shard:(shard_of dst)
      ~src:src.Peer.host ~dst:dst.Peer.host
      (fun () ->
        Fun.protect
          ~finally:(fun () -> Trace.end_span tr ~time:(now t) span)
          f)
  | _ -> send t ?op ~src ~dst f

(* A zero-duration span: an instant of attributable work (a cache probe,
   a heal step) that costs no simulated time. *)
let mark_span t ?op ~tier ~phase ?src ?dst label =
  match op with
  | Some op_id ->
    Trace.mark_span (trace t) ~time:(now t) ~op:op_id ~tier ~phase
      ?src:(Option.map (fun p -> p.Peer.host) src)
      ?dst:(Option.map (fun p -> p.Peer.host) dst)
      label
  | None -> ()

let bump t ~subsystem ~name = Metrics.bump t.metrics ~subsystem ~name

let touch_ring t =
  t.t_dirty <- true;
  t.fingers_dirty <- true;
  (* ring membership changes move segment ownership and restructure trees,
     so every edge summary built before this instant is suspect *)
  t.summary_epoch <- t.summary_epoch + 1

(* Grow both host-indexed arrays to cover [host] (doubling, so n peers
   cost O(n) amortized).  Hosts are graph node ids — dense from 0 — so
   the arrays carry essentially no slack. *)
let ensure_slot t host =
  let n = Array.length t.slots in
  if host >= n then begin
    let cap = ref (max 16 n) in
    while host >= !cap do
      cap := !cap * 2
    done;
    let slots = Array.make !cap None in
    Array.blit t.slots 0 slots 0 n;
    t.slots <- slots;
    let snet = Array.make !cap (-1) in
    Array.blit t.snet 0 snet 0 n;
    t.snet <- snet
  end

let register t peer =
  let host = peer.Peer.host in
  if host < 0 then invalid_arg "World.register: negative host";
  ensure_slot t host;
  (match t.slots.(host) with
   | None -> t.live_count <- t.live_count + 1
   | Some _ -> ());
  t.slots.(host) <- Some peer;
  if Peer.is_t_peer peer then begin
    touch_ring t;
    if t.snet.(host) < 0 then t.snet.(host) <- 0
  end

let unregister t peer =
  let host = peer.Peer.host in
  if host >= 0 && host < Array.length t.slots then begin
    (match t.slots.(host) with
     | Some _ -> t.live_count <- t.live_count - 1
     | None -> ());
    t.slots.(host) <- None;
    if Peer.is_t_peer peer then begin
      touch_ring t;
      t.snet.(host) <- -1
    end
  end

let find_peer t ~host =
  if host < 0 || host >= Array.length t.slots then None else t.slots.(host)

let shard_of_host t ~host =
  match find_peer t ~host with
  | Some p -> Some (shard_of p)
  | None -> None

let peer_count t = t.live_count

let iter_peers t f =
  Array.iter (function Some p -> f p | None -> ()) t.slots

let live_peers t =
  let acc = ref [] in
  for i = Array.length t.slots - 1 downto 0 do
    match t.slots.(i) with Some p -> acc := p :: !acc | None -> ()
  done;
  !acc

let t_peers t =
  if t.t_dirty then begin
    let acc = ref [] in
    for i = Array.length t.slots - 1 downto 0 do
      match t.slots.(i) with
      | Some p when Peer.is_t_peer p && p.Peer.alive -> acc := p :: !acc
      | Some _ | None -> ()
    done;
    let arr = Array.of_list !acc in
    Array.sort (fun a b -> compare a.Peer.p_id b.Peer.p_id) arr;
    t.t_sorted <- arr;
    t.t_ids <- Array.map (fun p -> p.Peer.p_id) arr;
    t.t_dirty <- false
  end;
  t.t_sorted

(* Index into the sorted t-peer array of [d_id]'s successor — the first
   p_id >= d_id, wrapping to index 0 past the highest p_id.  The search
   runs over the flat [t_ids] int array (no pointer chasing per probe);
   [-1] on an empty ring. *)
let successor_index t d_id =
  ignore (t_peers t);
  let ids = t.t_ids in
  let n = Array.length ids in
  if n = 0 then -1
  else begin
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ids.(mid) >= d_id then hi := mid else lo := mid + 1
    done;
    if !lo = n then 0 else !lo
  end

let oracle_owner t d_id =
  match successor_index t d_id with
  | -1 -> None
  | i -> Some t.t_sorted.(i)

let fresh_p_id t = Rng.int t.rng Id_space.size

let random_t_peer t =
  let arr = t_peers t in
  if Array.length arr = 0 then None else Some (Rng.pick t.rng arr)

let snet_size t tpeer =
  let host = tpeer.Peer.host in
  if host < 0 || host >= Array.length t.snet then 0 else max 0 t.snet.(host)

let set_snet_size t tpeer n =
  let host = tpeer.Peer.host in
  if host < 0 then invalid_arg "World.set_snet_size: negative host";
  ensure_slot t host;
  t.snet.(host) <- n

let snet_size_changed t tpeer ~delta =
  set_snet_size t tpeer (snet_size t tpeer + delta)

let snet_size_entries t =
  let acc = ref [] in
  for host = Array.length t.snet - 1 downto 0 do
    if t.snet.(host) >= 0 then acc := (host, t.snet.(host)) :: !acc
  done;
  !acc

let fingers_fresh t = not t.fingers_dirty

let smallest_s_network t =
  let arr = t_peers t in
  if Array.length arr = 0 then None
  else begin
    let best = ref arr.(0) in
    Array.iter (fun p -> if snet_size t p < snet_size t !best then best := p) arr;
    Some !best
  end

(* Interest-based assignment: a category's home is the s-network serving
   the category's routing ID, so interested peers and the category's data
   meet in one s-network (Section 5.3). *)
let by_interest t ~joiner =
  match joiner.Peer.interest with
  | Some category -> oracle_owner t (Interest.route_id category)
  | None -> smallest_s_network t

let by_cluster t landmark ~joiner =
  let arr = t_peers t in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let cluster = Landmark.cluster_id landmark joiner.Peer.host in
    (* Same cluster -> same s-network.  Prefer a t-peer physically inside
       the joiner's cluster (so the whole s-network is co-located and its
       flood traffic stays off the backbone); balance by size among the
       candidates.  Clusters without a t-peer spread round-robin. *)
    let same_cluster =
      Array.to_list arr
      |> List.filter (fun p -> Landmark.cluster_id landmark p.Peer.host = cluster)
    in
    match same_cluster with
    | [] -> Some arr.(cluster mod n)
    | first :: rest ->
      Some
        (List.fold_left
           (fun best p -> if snet_size t p < snet_size t best then p else best)
           first rest)
  end

let choose_s_network t ~joiner =
  match t.snet_policy with
  | Smallest_s_network -> smallest_s_network t
  | By_interest -> by_interest t ~joiner
  | By_cluster landmark -> by_cluster t landmark ~joiner

let refresh_fingers_of t peer =
  let fingers =
    if Array.length peer.Peer.fingers = Id_space.bits then peer.Peer.fingers
    else begin
      let arr = Array.make Id_space.bits None in
      peer.Peer.fingers <- arr;
      arr
    end
  in
  for k = 0 to Id_space.bits - 1 do
    fingers.(k) <- oracle_owner t (Id_space.finger_start ~base:peer.Peer.p_id k)
  done

let ensure_fingers t =
  if t.fingers_dirty then begin
    Array.iter (refresh_fingers_of t) (t_peers t);
    t.fingers_dirty <- false
  end

let stabilize_ring t =
  t.t_dirty <- true;
  t.fingers_dirty <- true;
  let arr = t_peers t in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    arr.(i).Peer.succ <- Some arr.((i + 1) mod n);
    arr.(i).Peer.pred <- Some arr.((i + n - 1) mod n)
  done;
  ensure_fingers t

let substitute_in_fingers t ~old_peer ~replacement =
  Array.iter
    (fun p ->
      Array.iteri
        (fun k f ->
          match f with
          | Some q when q == old_peer -> p.Peer.fingers.(k) <- Some replacement
          | Some _ | None -> ())
        p.Peer.fingers)
    (t_peers t)
