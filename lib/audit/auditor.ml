module World = Hybrid_p2p.World
module Engine = P2p_sim.Engine
module Trace = P2p_sim.Trace
module Registry = P2p_obs.Registry
module Metrics = P2p_net.Metrics

type t = {
  world : World.t;
  interval : float;
  checks : Checks.check list;
  ticks_c : Registry.counter;
  violation_counters : (string * Registry.counter) list;  (* check -> counter *)
  freshness_gauges : (string * Registry.gauge) list;  (* check -> last-run gauge *)
  mutable tick_count : int;
  mutable violations_total : int;
  mutable errors_total : int;
  mutable first_error : Checks.violation option;
  mutable last_snapshot : Checks.snapshot option;
  mutable timeline_rev : (float * int) list;
  mutable next_due : float;
  mutable ticked_at : float;  (* clock value of the last tick; nan = never *)
  mutable timer : Engine.handle option;
  mutable on_violation :
    (time:float -> check:string -> severity:string -> detail:string -> unit)
    option;
}

let subsystem = "audit"

let create ?(interval = 250.0) ?(checks = Checks.all) world =
  if interval <= 0.0 then invalid_arg "Auditor.create: interval must be positive";
  let reg = Metrics.registry world.World.metrics in
  let ticks_c = Registry.counter reg ~subsystem ~name:"ticks" in
  let violation_counters =
    List.map
      (fun c ->
        let name = Checks.check_name c in
        (name, Registry.counter reg ~subsystem ~name:(name ^ "_violations")))
      checks
  in
  let freshness_gauges =
    List.map
      (fun c ->
        let name = Checks.check_name c in
        (name, Registry.gauge reg ~subsystem ~name:(name ^ "_last_run_ms")))
      checks
  in
  {
    world;
    interval;
    checks;
    ticks_c;
    violation_counters;
    freshness_gauges;
    tick_count = 0;
    violations_total = 0;
    errors_total = 0;
    first_error = None;
    last_snapshot = None;
    timeline_rev = [];
    next_due = Engine.now world.World.engine +. interval;
    ticked_at = Float.nan;
    timer = None;
    on_violation = None;
  }

let set_on_violation t f = t.on_violation <- Some f

let world t = t.world

let interval t = t.interval

let severity_tag v =
  match v.Checks.severity with
  | Checks.Error -> "audit-error"
  | Checks.Warning -> "audit-warning"

let tick t =
  let w = t.world in
  let time = World.now w in
  let trace = World.trace w in
  let reg = Metrics.registry w.World.metrics in
  let op =
    Trace.begin_op trace ~time ~kind:(Trace.Custom "audit")
      (Printf.sprintf "tick %d" t.tick_count)
  in
  let snap = Checks.run_all ~checks:t.checks w in
  let tick_violations = ref 0 in
  List.iter
    (fun (s : Checks.status) ->
      (match List.assoc_opt s.Checks.name t.violation_counters with
       | Some c when s.Checks.violations <> [] ->
         Registry.incr ~by:(List.length s.Checks.violations) c
       | _ -> ());
      (match List.assoc_opt s.Checks.name t.freshness_gauges with
       | Some g -> Registry.set g time
       | None -> ());
      List.iter
        (fun (gname, v) ->
          Registry.set (Registry.gauge reg ~subsystem ~name:gname) v)
        s.Checks.gauges;
      List.iter
        (fun (v : Checks.violation) ->
          incr tick_violations;
          t.violations_total <- t.violations_total + 1;
          if v.Checks.severity = Checks.Error then begin
            t.errors_total <- t.errors_total + 1;
            if t.first_error = None then t.first_error <- Some v
          end;
          Trace.record trace ~time ~tag:(severity_tag v) ~op
            ?src:v.Checks.subject
            (Printf.sprintf "%s: %s" v.Checks.check v.Checks.detail);
          match t.on_violation with
          | None -> ()
          | Some f ->
            f ~time ~check:v.Checks.check ~severity:(severity_tag v)
              ~detail:v.Checks.detail)
        s.Checks.violations)
    snap.Checks.statuses;
  Registry.incr t.ticks_c;
  t.tick_count <- t.tick_count + 1;
  t.last_snapshot <- Some snap;
  t.timeline_rev <- (time, !tick_violations) :: t.timeline_rev;
  t.next_due <- time +. t.interval;
  t.ticked_at <- time;
  Trace.end_op trace ~time ~op
    (Printf.sprintf "violations=%d" !tick_violations);
  snap

let due t = Engine.now t.world.World.engine >= t.next_due

let settle t =
  let engine = t.world.World.engine in
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    if due t then ignore (tick t);
    if Engine.step engine then progressed := true else continue := false
  done;
  (* Close the window: audit the drained state unless the last tick
     already saw it. *)
  if !progressed || Float.is_nan t.ticked_at then ignore (tick t)

let advance t ~ms =
  if ms < 0.0 then invalid_arg "Auditor.advance: negative duration";
  let engine = t.world.World.engine in
  let target = Engine.now engine +. ms in
  let continue = ref true in
  while !continue do
    if t.next_due < target then begin
      Engine.run_until engine ~time:t.next_due;
      ignore (tick t)
    end
    else begin
      Engine.run_until engine ~time:target;
      continue := false
    end
  done

let rec arm t =
  let engine = t.world.World.engine in
  let delay = Float.max 0.0 (t.next_due -. Engine.now engine) in
  let handle =
    Engine.schedule ~label:"audit" engine ~delay (fun () ->
        ignore (tick t);
        if t.timer <> None then arm t)
  in
  t.timer <- Some handle

let start t = if t.timer = None then arm t

let stop t =
  match t.timer with
  | None -> ()
  | Some h ->
    Engine.cancel h;
    t.timer <- None

let ticks t = t.tick_count

let violations_total t = t.violations_total

let errors_total t = t.errors_total

let last_snapshot t = t.last_snapshot

let timeline t = List.rev t.timeline_rev

let result t =
  match t.first_error with
  | None -> Ok ()
  | Some v ->
    Error (Printf.sprintf "%s: %s" v.Checks.check v.Checks.detail)
