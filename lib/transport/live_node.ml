(* One live ring node: the protocol logic a [p2psim serve] worker
   process runs over {!Live_transport}.

   Bootstrap is tracker-style (the paper's BitTorrent-like s-network,
   §5): every node announces itself to node 0; once the tracker has
   heard from all [n] members it broadcasts the full peer list, and each
   node derives its ring position — successor and predecessor by p_id
   order — locally.  Connection refusals during the race where workers
   come up in arbitrary order are absorbed by the transport's
   retry/backoff, so announces need no application-level retry.

   Data operations route Chord-style around the successor ring: a node
   owning the key's [d_id] (half-open arc (pred, self]) serves it,
   anyone else forwards to its successor with the hop counter bumped.
   Client requests enter at any node; that entry node remembers the
   requesting client per request id and relays the ring's answer back as
   a [Client_reply].

   Observability spans processes.  Each node runs its own {!Trace} (one
   disjoint span-id range per process) and {!Registry}; the entry node
   opens the operation — the wire request id is the operation id — and
   every frame of a sampled operation carries a wire-v2 trace header, so
   each hop rebinds its span under the sender's.  All nodes share the
   sampling seed and rate, so the pure-hash decision agrees everywhere.
   Completion latency is exact (an [on_op_complete] listener feeds
   [latency/<kind>_total_ms] log histograms, 100% of ops regardless of
   sampling) and a {!Flight_recorder} keeps the recent-completions ring.

   A [Scrape_request] frame is answered on the same socket with a
   versioned {!P2p_obs.Scrape} snapshot: liveness, ring position, the
   full registry, and (on request) retained chrome span events — the
   aggregator's raw material for cluster-wide percentiles and the
   merged Perfetto trace.

   Every node audits itself: each stored key must hash into the node's
   own arc, the peer list must have exactly [n] members, and a routed
   message must never exceed [2n] hops.  Violations are counted and
   published in the periodic JSONL health dump ([health-<node>.jsonl]),
   one self-describing object per line, which the orchestrator collects
   after shutdown. *)

module Json = P2p_obs.Json
module Registry = P2p_obs.Registry
module Log_hist = P2p_obs.Log_hist
module Scrape = P2p_obs.Scrape
module Export = P2p_obs.Export
module Flight_recorder = P2p_obs.Flight_recorder
module Trace = P2p_sim.Trace
module Id_space = P2p_hashspace.Id_space
module Key_hash = P2p_hashspace.Key_hash

type t = {
  node : int;
  n : int;
  p_id : int;
  tr : Live_transport.t;
  store : (string, string) Hashtbl.t;
  mutable peers : (int * int) list;  (* (node, p_id), sorted by p_id *)
  mutable succ : int;
  mutable pred : int;
  mutable pred_id : int;
  mutable ready : bool;
  pending : (int, int) Hashtbl.t;  (* request id -> client node *)
  mutable violations : int;
  mutable hops_served : int;
  mutable served : int;
  dump : out_channel option;
  dump_dir : string option;
  mutable stopping : bool;
  (* tracker state (node 0 only) *)
  announced : (int, int * int) Hashtbl.t;  (* node -> (p_id, port) *)
  (* observability *)
  trace : Trace.t;
  reg : Registry.t;
  recorder : Flight_recorder.t;
  epoch : float;  (* wall-clock seconds shared by the whole cluster *)
  started : float;
  (* set by a signal handler (async-signal-safe: one field write); acted
     on from the select loop in {!run} *)
  mutable flight_reason : string option;
}

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Disjoint per-process span-id ranges: a span id carried over the wire
   as a remote parent can never alias a locally minted span. *)
let span_id_stride = 1 lsl 40

let owns t d_id =
  t.n = 1 || Id_space.between_incl_right d_id ~left:t.pred_id ~right:t.p_id

let max_hops t = 2 * t.n

let now_ms t = (Unix.gettimeofday () -. t.epoch) *. 1000.0

(* --- health dump ----------------------------------------------------- *)

let dump_health t ~event =
  match t.dump with
  | None -> ()
  | Some oc ->
    let s = Live_transport.stats t.tr in
    let line =
      Json.Obj
        [
          ("ts", Json.Float (Unix.gettimeofday ()));
          ("event", Json.String event);
          ("node", Json.Int t.node);
          ("p_id", Json.Int t.p_id);
          ("ready", Json.Bool t.ready);
          ("store", Json.Int (Hashtbl.length t.store));
          ("served", Json.Int t.served);
          ("hops_served", Json.Int t.hops_served);
          ("violations", Json.Int t.violations);
          ("msgs_sent", Json.Int s.msgs_sent);
          ("msgs_received", Json.Int s.msgs_received);
          ("bytes_sent", Json.Int s.bytes_sent);
          ("bytes_received", Json.Int s.bytes_received);
          ("retries", Json.Int s.retries);
          ("window_stalls", Json.Int s.window_stalls);
          ("drops", Json.Int s.drops);
          ("decode_errors", Json.Int s.decode_errors);
          ("trace_bytes", Json.Int s.trace_bytes);
          ("timer_cancel_late", Json.Int (P2p_sim.Timer.cancel_late ()));
        ]
    in
    output_string oc (Json.to_string line);
    output_char oc '\n';
    flush oc

(* --- self-audit ------------------------------------------------------ *)

let audit t =
  if t.ready then begin
    if List.length t.peers <> t.n then begin
      t.violations <- t.violations + 1;
      Flight_recorder.record_audit t.recorder ~at:(now_ms t) ~check:"peer_count"
        ~severity:"error"
        ~detail:(Printf.sprintf "%d peers, want %d" (List.length t.peers) t.n)
    end;
    Hashtbl.iter
      (fun key _ ->
        if not (owns t (Key_hash.of_string key)) then begin
          t.violations <- t.violations + 1;
          Flight_recorder.record_audit t.recorder ~at:(now_ms t)
            ~check:"key_placement" ~severity:"error"
            ~detail:(Printf.sprintf "key %S outside own arc" key)
        end)
      t.store
  end

(* --- ring bootstrap -------------------------------------------------- *)

let send t ~dst msg = Live_transport.send t.tr ~src:t.node ~dst msg

(* Send one frame of operation [op] with trace context attached when the
   causal chain is live: [pspan >= 0] is the sender-side span (or op
   root) the receiver should hang its span under.  Unsampled operations
   ([pspan = -1]) travel unstamped — 1 byte of flags, no header. *)
let send_ctx t ~op ~pspan ~dst msg =
  let trace =
    if pspan >= 0 then
      Some Wire.{ tc_op = op; tc_parent = pspan; tc_sampled = true }
    else None
  in
  Live_transport.send_traced t.tr ?trace ~dst msg

let apply_peers t peers =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a b)
      (List.map (fun (node, p_id, _port) -> (node, p_id)) peers)
  in
  t.peers <- sorted;
  let len = List.length sorted in
  let idx = ref 0 in
  List.iteri (fun i (node, _) -> if node = t.node then idx := i) sorted;
  let succ_node, _ = List.nth sorted ((!idx + 1) mod len) in
  let pred_node, pred_id = List.nth sorted ((!idx + len - 1) mod len) in
  t.succ <- succ_node;
  t.pred <- pred_node;
  t.pred_id <- pred_id;
  t.ready <- true

let tracker_maybe_broadcast t =
  if t.node = 0 && Hashtbl.length t.announced = t.n then begin
    let peers =
      List.sort compare
        (Hashtbl.fold
           (fun node (p_id, port) acc -> (node, p_id, port) :: acc)
           t.announced [])
    in
    List.iter
      (fun (node, _, _) ->
        if node = t.node then apply_peers t peers
        else send t ~dst:node (Wire.Tracker_peers { peers }))
      peers
  end

(* --- data path ------------------------------------------------------- *)

let reply_client t ~req ~found ~value ~holder ~hops =
  match Hashtbl.find_opt t.pending req with
  | None -> ()
  | Some client ->
    Hashtbl.remove t.pending req;
    (* the operation completes when its entry node answers the client:
       this fires the completion listener (exact latency histograms +
       flight recorder) and closes the root span *)
    Trace.end_op t.trace ~time:(now_ms t) ~op:req
      (if found then "found" else "not-found");
    send t ~dst:client (Wire.Client_reply { req; found; value; holder; hops })

let route_insert t ~op ~origin ~route_id ~key ~value ~hops ~pspan =
  if hops > max_hops t then t.violations <- t.violations + 1
  else if owns t (Key_hash.of_string key) then begin
    Hashtbl.replace t.store key value;
    t.served <- t.served + 1;
    t.hops_served <- t.hops_served + hops;
    if origin = t.node then
      reply_client t ~req:op ~found:true ~value:"" ~holder:t.node ~hops
    else
      send_ctx t ~op ~pspan ~dst:origin (Wire.Insert_ack { op; holder = t.node; hops })
  end
  else if t.succ = t.node then t.violations <- t.violations + 1
  else
    send_ctx t ~op ~pspan ~dst:t.succ
      (Wire.Insert { op; origin; route_id; key; value; hops = hops + 1 })

let route_lookup t ~op ~origin ~route_id ~key ~ttl ~hops ~pspan =
  if hops > max_hops t then t.violations <- t.violations + 1
  else if owns t (Key_hash.of_string key) then begin
    t.served <- t.served + 1;
    t.hops_served <- t.hops_served + hops;
    let answer =
      match Hashtbl.find_opt t.store key with
      | Some value -> Wire.Found { op; key; value; holder = t.node; hops }
      | None -> Wire.Not_found { op; key; hops }
    in
    if origin = t.node then
      match answer with
      | Wire.Found { value; holder; hops; _ } ->
        reply_client t ~req:op ~found:true ~value ~holder ~hops
      | _ -> reply_client t ~req:op ~found:false ~value:"" ~holder:(-1) ~hops
    else send_ctx t ~op ~pspan ~dst:origin answer
  end
  else if t.succ = t.node then t.violations <- t.violations + 1
  else
    send_ctx t ~op ~pspan ~dst:t.succ
      (Wire.Lookup { op; origin; route_id; key; ttl; hops = hops + 1 })

(* --- scrape endpoint ------------------------------------------------- *)

(* Mirror the transport's monotonic stats into registry counters (by
   delta, so repeated scrapes stay correct) right before exporting. *)
let sync_stats t =
  let s = Live_transport.stats t.tr in
  let c name v =
    let c = Registry.counter t.reg ~subsystem:"wire" ~name in
    Registry.incr ~by:(v - Registry.counter_value c) c
  in
  c "msgs_sent" s.msgs_sent;
  c "msgs_received" s.msgs_received;
  c "bytes_sent" s.bytes_sent;
  c "bytes_received" s.bytes_received;
  c "connects" s.connects;
  c "retries" s.retries;
  c "window_stalls" s.window_stalls;
  c "drops" s.drops;
  c "decode_errors" s.decode_errors;
  c "trace_bytes" s.trace_bytes;
  let r name v =
    let c = Registry.counter t.reg ~subsystem:"ring" ~name in
    Registry.incr ~by:(v - Registry.counter_value c) c
  in
  r "served" t.served;
  r "hops_served" t.hops_served;
  r "violations" t.violations;
  Registry.set (Registry.gauge t.reg ~subsystem:"ring" ~name:"store")
    (float_of_int (Hashtbl.length t.store));
  Registry.set (Registry.gauge t.reg ~subsystem:"ring" ~name:"pending")
    (float_of_int (Hashtbl.length t.pending))

let snapshot t ~spans =
  sync_stats t;
  {
    Scrape.node = t.node;
    at = now_ms t;
    uptime_ms = (Unix.gettimeofday () -. t.started) *. 1000.0;
    ready = t.ready;
    p_id = t.p_id;
    succ = t.succ;
    pred = t.pred;
    store = Hashtbl.length t.store;
    violations = t.violations;
    metrics = Registry.to_json t.reg;
    trace = (if spans then Export.chrome_events t.trace else []);
  }

(* --- dispatch -------------------------------------------------------- *)

let handle t ~src ~trace msg =
  (* A hop span for a data frame that arrived with trace context: bound
     under the sender's span (a remote id — disjoint ranges make it
     unambiguous), placed on this node's process track via [dst]. *)
  let hop ~op ~phase label =
    match trace with
    | None -> -1
    | Some c ->
      Trace.begin_span t.trace ~time:(now_ms t) ~op ~tier:"t_network" ~phase
        ~parent:c.Wire.tc_parent ~src ~dst:t.node label
  in
  let close span = if span >= 0 then Trace.end_span t.trace ~time:(now_ms t) span in
  let pspan_for span =
    if span >= 0 then span
    else match trace with Some c -> c.Wire.tc_parent | None -> -1
  in
  match msg with
  | Wire.Tracker_announce { host; p_id; port } ->
    if t.node = 0 then begin
      Hashtbl.replace t.announced host (p_id, port);
      tracker_maybe_broadcast t
    end
  | Wire.Tracker_peers { peers } -> apply_peers t peers
  | Wire.Insert { op; origin; route_id; key; value; hops } ->
    let span = hop ~op ~phase:"ring_hop" key in
    route_insert t ~op ~origin ~route_id ~key ~value ~hops
      ~pspan:(pspan_for span);
    close span
  | Wire.Insert_ack { op; holder; hops } ->
    (match trace with
     | Some c ->
       Trace.mark_span t.trace ~time:(now_ms t) ~op ~tier:"t_network"
         ~phase:"ack" ~parent:c.Wire.tc_parent ~src ~dst:t.node "insert-ack"
     | None -> ());
    reply_client t ~req:op ~found:true ~value:"" ~holder ~hops
  | Wire.Lookup { op; origin; route_id; key; ttl; hops } ->
    let span = hop ~op ~phase:"ring_hop" key in
    route_lookup t ~op ~origin ~route_id ~key ~ttl ~hops
      ~pspan:(pspan_for span);
    close span
  | Wire.Found { op; value; holder; hops; key = _ } ->
    (match trace with
     | Some c ->
       Trace.mark_span t.trace ~time:(now_ms t) ~op ~tier:"t_network"
         ~phase:"reply" ~parent:c.Wire.tc_parent ~src ~dst:t.node "found"
     | None -> ());
    reply_client t ~req:op ~found:true ~value ~holder ~hops
  | Wire.Not_found { op; hops; key = _ } ->
    (match trace with
     | Some c ->
       Trace.mark_span t.trace ~time:(now_ms t) ~op ~tier:"t_network"
         ~phase:"reply" ~parent:c.Wire.tc_parent ~src ~dst:t.node "not-found"
     | None -> ());
    reply_client t ~req:op ~found:false ~value:"" ~holder:(-1) ~hops
  | Wire.Client_insert { req; key; value } ->
    Hashtbl.replace t.pending req src;
    (* the wire request id is the operation id, minted by the client and
       globally unique — so every process attributes work to the same op *)
    Trace.begin_extern_op t.trace ~time:(now_ms t) ~op:req ~kind:Trace.Insert
      ~src ~dst:t.node key;
    let root =
      match Trace.op_root_span t.trace req with Some r -> r | None -> -1
    in
    route_insert t ~op:req ~origin:t.node ~route_id:req ~key ~value ~hops:0
      ~pspan:root
  | Wire.Client_lookup { req; key } ->
    Hashtbl.replace t.pending req src;
    Trace.begin_extern_op t.trace ~time:(now_ms t) ~op:req ~kind:Trace.Lookup
      ~src ~dst:t.node key;
    let root =
      match Trace.op_root_span t.trace req with Some r -> r | None -> -1
    in
    route_lookup t ~op:req ~origin:t.node ~route_id:req ~key
      ~ttl:(max_hops t) ~hops:0 ~pspan:root
  | Wire.Status_request { req } ->
    send t ~dst:src
      (Wire.Status
         {
           req;
           node = t.node;
           ready = t.ready;
           store = Hashtbl.length t.store;
           violations = t.violations;
         })
  | Wire.Scrape_request { req; port; spans } ->
    (* an aggregator outside the ring's address book tells us where it
       listens; ring members and the orchestrator re-register their
       existing address, which is harmless *)
    if port > 0 then Live_transport.set_peer_addr t.tr src (loopback port);
    let snap = snapshot t ~spans in
    send t ~dst:src
      (Wire.Scrape_reply { req; node = t.node; snapshot = Scrape.to_string snap })
  | Wire.Shutdown -> t.stopping <- true
  | Wire.Ping { nonce } -> send t ~dst:src (Wire.Pong { nonce })
  | _ -> ()

(* --- lifecycle ------------------------------------------------------- *)

(* [client] is the orchestrator's node index (= [n]); it gets an address
   so replies can dial back to it. *)
let create ?dump_dir ?epoch ?(trace_capacity = 8192) ?(sample_rate = 1.0)
    ?(sample_seed = 0) ~node ~n ~port_base () =
  let port = port_base + node in
  let p_id = Key_hash.of_address ~ip:"127.0.0.1" ~port in
  let tr = Live_transport.create ~p_id ~self:node () in
  for peer = 0 to n do
    Live_transport.set_peer_addr tr peer (loopback (port_base + peer))
  done;
  Live_transport.listen tr (loopback port);
  let dump =
    Option.map
      (fun dir ->
        open_out (Filename.concat dir (Printf.sprintf "health-%d.jsonl" node)))
      dump_dir
  in
  let started = Unix.gettimeofday () in
  let trace =
    Trace.create ~capacity:trace_capacity ~sample_rate ~sample_seed
      ~first_span_id:(node * span_id_stride) ()
  in
  let reg = Registry.create () in
  let recorder = Flight_recorder.create ~capacity:1024 () in
  (* exact latency accounting: 100% of completions feed the per-kind log
     histograms (mergeable cluster-wide) and the flight recorder *)
  Trace.on_op_complete trace (fun c ->
      let h =
        Registry.log_histogram reg ~subsystem:"latency"
          ~name:(c.Trace.comp_kind ^ "_total_ms")
      in
      Log_hist.observe h (c.Trace.comp_stop -. c.Trace.comp_start);
      Flight_recorder.observe recorder c);
  let t =
    {
      node;
      n;
      p_id;
      tr;
      store = Hashtbl.create 256;
      peers = [];
      succ = node;
      pred = node;
      pred_id = p_id;
      ready = false;
      pending = Hashtbl.create 64;
      violations = 0;
      hops_served = 0;
      served = 0;
      dump;
      dump_dir;
      stopping = false;
      announced = Hashtbl.create 16;
      trace;
      reg;
      recorder;
      epoch = Option.value epoch ~default:started;
      started;
      flight_reason = None;
    }
  in
  Live_transport.set_handler_traced tr (fun ~src ~dst:_ ~trace msg ->
      handle t ~src ~trace msg);
  (* Announce to the tracker; node 0 announces to itself locally. *)
  if node = 0 then begin
    Hashtbl.replace t.announced 0 (p_id, port);
    tracker_maybe_broadcast t
  end
  else send t ~dst:0 (Wire.Tracker_announce { host = node; p_id; port });
  dump_health t ~event:"start";
  ignore
    (Live_transport.periodic tr ~period:500. (fun () ->
         audit t;
         dump_health t ~event:"tick"));
  t

let ready t = t.ready

let step ?timeout t = Live_transport.step ?timeout t.tr

let transport t = t.tr

let violations t = t.violations

let trace t = t.trace

let registry t = t.reg

let scrape_snapshot t ~spans = snapshot t ~spans

let request_flight_dump t ~reason =
  if t.flight_reason = None then t.flight_reason <- Some reason

let flight_dump t ~reason =
  match t.dump_dir with
  | None -> []
  | Some dir ->
    sync_stats t;
    Flight_recorder.dump t.recorder ~trace:t.trace ~registry:t.reg ~dir
      ~reason:(Printf.sprintf "%s-node-%d" reason t.node) ()

let stop t =
  audit t;
  dump_health t ~event:"final";
  (match t.dump with Some oc -> close_out oc | None -> ());
  Live_transport.stop t.tr

(* Run until a [Shutdown] frame arrives, then flush a final health line
   and close every socket.  A few extra steps before closing let the
   last replies (and other nodes' shutdowns) drain.

   A signal handler may have asked for a flight dump
   ({!request_flight_dump}); it is honoured here, between select turns —
   never inside the handler, where the heap is off-limits — and then
   shuts the node down cleanly. *)
let run t =
  while not t.stopping do
    ignore (step ~timeout:0.05 t);
    match t.flight_reason with
    | Some reason ->
      ignore (flight_dump t ~reason);
      t.stopping <- true
    | None -> ()
  done;
  for _ = 1 to 5 do
    ignore (step ~timeout:0.01 t)
  done;
  stop t
