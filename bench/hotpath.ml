(* Hot-path speed proof (SCALING.md, "hot-path speed pass").

   Four configurations of the same 10k-peer workload on the same
   transit-stub underlay, isolating the two PR-9 optimisations:

     dijkstra          on-demand per-source Dijkstra (LRU-capped cache),
                       fan-out batching off — the pre-link-state baseline
                       that forced bench/scale.ml onto a fake Synthetic
                       underlay
     link_state        precomputed link-state tables, batching off
     link_state+batch  link-state tables plus batched fan-out insertion —
                       the shipping configuration
     synthetic+batch   the fake uniform-latency underlay — the routing
                       cost ceiling the real graph is measured against

   Per configuration: events/sec, minor words allocated per event
   (Gc.quick_stat deltas around the workload), lookup p50/p99 from the
   exact op-completion histograms, recall and invariants.

   Output: BENCH_hotpath.json.  Gates (CI runs [--smoke]):
     - recall 1.0 in every configuration
     - batching is pure speed: link_state with and without batching
       execute the identical event schedule (events/stored/found equal)
     - link_state+batch >= 1.5x the dijkstra baseline events/sec
     - link_state+batch allocates fewer minor words/event than the
       baseline, and stays under an absolute ceiling (the
       allocation-regression check: an accidental boxing on the hop path
       shows up here long before it shows up in wall clock)
     - events/sec floor as in the scale bench
     - every --slo spec against the shipping configuration's registry

   The dijkstra baseline runs a reduced operation count (each message
   re-runs an O(E log V) shortest-path computation when the source
   misses the cache, which is the point): events/sec is a rate, so the
   comparison stands. *)

module H = Hybrid_p2p.Hybrid
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Routing = P2p_topology.Routing
module Transit_stub = P2p_topology.Transit_stub
module Engine = P2p_sim.Engine
module Trace = P2p_sim.Trace
module Rng = P2p_sim.Rng
module Metrics = P2p_net.Metrics
module Registry = P2p_obs.Registry
module Gc_stats = P2p_obs.Gc_stats
module Spans = P2p_obs.Spans
module Log_hist = P2p_obs.Log_hist
module Slo = P2p_obs.Slo
module Json = P2p_obs.Json

let n_peers = 10_000
let telemetry_sample_rate = 0.01
let min_events_per_s = 10_000.0

(* The headline gate: the shipping configuration must beat the Dijkstra
   baseline by at least this factor on the routed graph. *)
let min_speedup = 1.5

(* Allocation-regression ceiling for the shipping configuration, in
   minor words per executed event.  Measured ~185 on the seed machine
   (PR-9; the residue is protocol payload closures and sampled-trace
   spans — the event queue itself recycles entries).  The ceiling leaves
   headroom for workload drift while still catching a reintroduced
   per-hop handle/closure/boxing regression, which costs hundreds of
   words per event at this fan-out: the dijkstra baseline sits at
   ~135,000. *)
let max_minor_words_per_event = 300.0

type result = {
  name : string;
  routing : string;
  batch : bool;
  items : int;
  lookups : int;
  found : int;
  events : int;
  wall_s : float;
  events_per_s : float;
  minor_words_per_event : float;
  p50_ms : float option;
  p99_ms : float option;
  stored_total : int;
  invariant_error : string option;
}

let make_routing ~seed = function
  | `Synthetic -> (Routing.synthetic ~nodes:n_peers ~latency:5.0, "synthetic")
  | `Link_state -> (Scale.link_state_routing ~seed n_peers, "link_state")
  | `Dijkstra ->
    let params = Scale.transit_stub_params n_peers in
    let ts = Transit_stub.generate ~rng:(Rng.create (seed + 3)) params in
    (* uncapped would be O(n^2) memory; the cap makes eviction churn
       part of what is being measured, as it would be in production *)
    ( Routing.create ~max_cached_sources:512 ts.Transit_stub.graph,
      "dijkstra" )

let measure ~seed ~name ~routing_mode ~batch ~items ~lookups () =
  let routing, routing_label = make_routing ~seed routing_mode in
  let config =
    {
      Config.default with
      Config.use_fingers_for_data = true;
      batch_sends = batch;
    }
  in
  let capacity = max 100_000 (60 * lookups) in
  let trace =
    Trace.create ~capacity ~sample_rate:telemetry_sample_rate
      ~sample_seed:seed ()
  in
  let h = H.create ~seed ~routing ~config ~trace () in
  let rng = Rng.create (seed + 17) in
  let peers, _t_count = Scale.populate h ~rng ~n:n_peers in
  let reg = Metrics.registry (H.metrics h) in
  let gc_gauges = Gc_stats.create reg in
  let key i = Printf.sprintf "item-%06d" i in
  let e = H.engine h in
  let ev0 = Engine.events_executed e in
  let g0 = Gc.quick_stat () in
  let w0 = Sys.time () in
  for i = 0 to items - 1 do
    let from = peers.(Rng.int rng n_peers) in
    H.insert h ~from ~key:(key i) ~value:(Printf.sprintf "v%d" i) ();
    H.run h
  done;
  let found = ref 0 in
  for _ = 1 to lookups do
    let from = peers.(Rng.int rng n_peers) in
    let i = Rng.int rng items in
    H.lookup h ~from ~key:(key i)
      ~on_result:(function
        | Data_ops.Found _ -> incr found
        | Data_ops.Timed_out -> ())
      ();
    H.run h
  done;
  let wall_s = Sys.time () -. w0 in
  let g1 = Gc.quick_stat () in
  let events = Engine.events_executed e - ev0 in
  let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
  Gc_stats.update gc_gauges;
  Spans.record reg (H.trace h);
  let hist =
    Registry.log_histogram reg ~subsystem:"latency" ~name:"lookup_total_ms"
  in
  let p50_ms, p99_ms =
    if Log_hist.count hist > 0 then
      ( Some (Log_hist.percentile hist 50.0),
        Some (Log_hist.percentile hist 99.0) )
    else (None, None)
  in
  let r =
    {
      name;
      routing = routing_label;
      batch;
      items;
      lookups;
      found = !found;
      events;
      wall_s;
      events_per_s =
        (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
      minor_words_per_event =
        (if events > 0 then minor_words /. float_of_int events else 0.0);
      p50_ms;
      p99_ms;
      stored_total = H.total_items h;
      invariant_error =
        (match H.check_invariants h with Ok () -> None | Error m -> Some m);
    }
  in
  (r, reg)

let print_result r =
  Printf.printf
    "  %-18s [%-10s batch=%-5b]  %8.0f ev/s  %6.1f minor w/ev  found %d/%d  \
     p50 %s p99 %s\n\
     %!"
    r.name r.routing r.batch r.events_per_s r.minor_words_per_event r.found
    r.lookups
    (match r.p50_ms with Some f -> Printf.sprintf "%.1fms" f | None -> "-")
    (match r.p99_ms with Some f -> Printf.sprintf "%.1fms" f | None -> "-")

let opt_float = function Some f -> Json.Float f | None -> Json.Null

let result_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("routing", Json.String r.routing);
      ("batch", Json.Bool r.batch);
      ("peers", Json.Int n_peers);
      ("items", Json.Int r.items);
      ("lookups", Json.Int r.lookups);
      ("found", Json.Int r.found);
      ("stored_total", Json.Int r.stored_total);
      ("events", Json.Int r.events);
      ("workload_cpu_s", Json.Float r.wall_s);
      ("events_per_s", Json.Float r.events_per_s);
      ("minor_words_per_event", Json.Float r.minor_words_per_event);
      ("lookup_p50_ms", opt_float r.p50_ms);
      ("lookup_p99_ms", opt_float r.p99_ms);
      ( "invariants",
        match r.invariant_error with
        | None -> Json.String "ok"
        | Some m -> Json.String m );
    ]

let run ~smoke () =
  let seed = 42 in
  Printf.printf "== hotpath%s ==\n%!" (if smoke then " (smoke)" else "");
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* rates stabilise within a few hundred ops; the baseline pays an
     O(E log V) recompute per cache miss, so it gets the small corpus *)
  let base_ops = if smoke then 200 else 400 in
  let items, lookups =
    if smoke then (2_000, 2_000) else Scale.sized n_peers
  in
  let dijkstra, _ =
    measure ~seed ~name:"dijkstra" ~routing_mode:`Dijkstra ~batch:false
      ~items:base_ops ~lookups:base_ops ()
  in
  print_result dijkstra;
  let ls, _ =
    measure ~seed ~name:"link_state" ~routing_mode:`Link_state ~batch:false
      ~items ~lookups ()
  in
  print_result ls;
  let ls_batch, ls_batch_reg =
    measure ~seed ~name:"link_state+batch" ~routing_mode:`Link_state
      ~batch:true ~items ~lookups ()
  in
  print_result ls_batch;
  let syn_batch, _ =
    measure ~seed ~name:"synthetic+batch" ~routing_mode:`Synthetic ~batch:true
      ~items ~lookups ()
  in
  print_result syn_batch;
  let all = [ dijkstra; ls; ls_batch; syn_batch ] in
  (* recall: every configuration must find every looked-up item *)
  List.iter
    (fun r ->
      if r.found <> r.lookups then
        fail "%s: recall %d/%d (expected 1.0)" r.name r.found r.lookups;
      match r.invariant_error with
      | None -> ()
      | Some m -> fail "%s: invariants violated: %s" r.name m)
    all;
  (* batching must be pure mechanics: same routing, same seed, batch
     on/off -> bit-identical schedule *)
  if
    ls.events <> ls_batch.events
    || ls.stored_total <> ls_batch.stored_total
    || ls.found <> ls_batch.found
  then
    fail
      "batching changed the simulation (events %d vs %d, stored %d vs %d, \
       found %d vs %d)"
      ls.events ls_batch.events ls.stored_total ls_batch.stored_total ls.found
      ls_batch.found;
  let speedup =
    if dijkstra.events_per_s > 0.0 then
      ls_batch.events_per_s /. dijkstra.events_per_s
    else infinity
  in
  Printf.printf "  speedup vs dijkstra baseline: %.1fx\n%!" speedup;
  if speedup < min_speedup then
    fail "speedup %.2fx below the %.1fx floor (link_state+batch %.0f ev/s vs \
          dijkstra %.0f ev/s)"
      speedup min_speedup ls_batch.events_per_s dijkstra.events_per_s;
  if ls_batch.minor_words_per_event >= dijkstra.minor_words_per_event then
    fail
      "no allocation drop: link_state+batch %.1f minor words/event vs \
       dijkstra %.1f"
      ls_batch.minor_words_per_event dijkstra.minor_words_per_event;
  if ls_batch.minor_words_per_event > max_minor_words_per_event then
    fail "allocation regression: %.1f minor words/event exceeds ceiling %.1f"
      ls_batch.minor_words_per_event max_minor_words_per_event;
  if ls_batch.events_per_s < min_events_per_s then
    fail "events/sec %.0f below floor %.0f" ls_batch.events_per_s
      min_events_per_s;
  (* latency SLO gates (--slo) against the shipping configuration *)
  (match !Experiments.slo_specs with
  | [] -> ()
  | specs ->
    if
      not
        (Slo.enforce ls_batch_reg ~specs
           ~print:(fun line -> Printf.printf "  [slo] %s\n%!" line))
    then fail "latency SLO violated (see lines above)");
  let doc =
    Json.Obj
      [
        ("bench", Json.String "hotpath");
        ("smoke", Json.Bool smoke);
        ("seed", Json.Int seed);
        ("peers", Json.Int n_peers);
        ("telemetry_sample_rate", Json.Float telemetry_sample_rate);
        ("configs", Json.List (List.map result_json all));
        ("speedup_vs_dijkstra", Json.Float speedup);
        ( "batch_deterministic",
          Json.Bool
            (ls.events = ls_batch.events
            && ls.stored_total = ls_batch.stored_total
            && ls.found = ls_batch.found) );
        ( "gate",
          Json.Obj
            [
              ("min_speedup", Json.Float min_speedup);
              ("max_minor_words_per_event", Json.Float max_minor_words_per_event);
              ("min_events_per_s", Json.Float min_events_per_s);
              ( "failures",
                Json.List (List.rev_map (fun s -> Json.String s) !failures) );
            ] );
      ]
  in
  Scale.write_json ~path:"BENCH_hotpath.json" doc;
  match !failures with
  | [] -> Printf.printf "hotpath gate: PASS\n%!"
  | fs ->
    List.iter (fun f -> Printf.printf "hotpath gate FAIL: %s\n%!" f)
      (List.rev fs);
    exit 1
