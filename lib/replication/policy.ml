module World = Hybrid_p2p.World
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config

(* The next [factor] live t-peers clockwise from [home] on the sorted
   oracle ring, excluding [home] itself.  With fewer than [factor + 1]
   t-peers the list is simply shorter: the ID space has no more distinct
   segments to copy into. *)
let ring_successors w ~home ~factor =
  let arr = World.t_peers w in
  let n = Array.length arr in
  let idx = ref (-1) in
  Array.iteri (fun i p -> if p == home then idx := i) arr;
  if !idx < 0 || n <= 1 then []
  else List.init (min factor (n - 1)) (fun k -> arr.((!idx + k + 1) mod n))

let targets w ~primary =
  let config = w.World.config in
  let factor = config.Config.replication_factor in
  if factor <= 0 || not primary.Peer.alive then []
  else
    match config.Config.replica_placement with
    | Config.Ring_successors -> (
      match primary.Peer.t_home with
      | Some home when home.Peer.alive -> ring_successors w ~home ~factor
      | Some _ | None -> [])
    | Config.Tree_neighbors ->
      Peer.tree_neighbors primary
      |> List.filter (fun q -> q.Peer.alive)
      |> List.filteri (fun i _ -> i < factor)

let expected_copies w ~primary = List.length (targets w ~primary)
