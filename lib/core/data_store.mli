(** Per-peer storage of (key, value) data items.

    Every peer keeps the items it is responsible for in a local database.
    The store caches each key's hashed [d_id] because load transfer
    (Section 3.2.1) repeatedly partitions the database by ID segment.

    Internally the store is flat: interned key/value ids and routing ids
    live in parallel int arrays with open addressing, and an empty store
    holds no arrays at all.  Strings appear only at the API boundary.
    Stores created with a shared {!Intern.t} (the world's interner) keep
    exactly one heap copy of each distinct key and value across every
    peer, which is what makes million-peer populations fit in memory. *)

open P2p_hashspace

type t

(** [create ?interner ()] — an empty store.  [interner] (default: a fresh
    private one) maps keys and values to dense ids; pass the world's
    interner so all peers share string storage. *)
val create : ?interner:Intern.t -> unit -> t

(** The interner this store resolves ids against. *)
val interner : t -> Intern.t

(** Number of items held. *)
val size : t -> int

(** [insert t ~key ~value] adds or replaces an item, routed by
    [Key_hash.of_string key]. *)
val insert : t -> key:string -> value:string -> unit

(** [insert_routed t ~route_id ~key ~value] adds an item routed and
    load-transferred by an explicit ID — interest-based s-networks route a
    whole category under one ID (Section 5.3). *)
val insert_routed : t -> route_id:Id_space.id -> key:string -> value:string -> unit

(** [find t ~key] is the stored value, if any. *)
val find : t -> key:string -> string option

(** [remove t ~key] deletes the item if present. *)
val remove : t -> key:string -> unit

(** [mem t ~key] tests presence. *)
val mem : t -> key:string -> bool

(** [take_segment t ~left ~right] removes and returns every item whose
    routing ID lies in the ring segment [(left, right]] — the
    load-transfer primitive: when a new t-peer with ID [right] joins after
    predecessor [left], these are exactly the items it must receive.
    Returns [(key, value, route_id)] triples. *)
val take_segment :
  t -> left:Id_space.id -> right:Id_space.id -> (string * string * Id_space.id) list

(** [segment_items t ~left ~right] is {!take_segment} without the
    removal: the items whose routing ID lies in [(left, right]], left in
    place.  The anti-entropy exchange reads segments non-destructively. *)
val segment_items :
  t -> left:Id_space.id -> right:Id_space.id -> (string * string * Id_space.id) list

(** [digest_items items] is an order-independent digest of a
    [(key, value, route_id)] set: two item lists digest equal iff they
    hold the same set (up to hash collisions).  Exposed so both sides of
    an anti-entropy exchange share one definition. *)
val digest_items : (string * string * Id_space.id) list -> int

(** [segment_digest t ~left ~right] is [digest_items (segment_items t
    ~left ~right)] — what replica peers compare per ring segment before
    deciding whether a sync is needed. *)
val segment_digest : t -> left:Id_space.id -> right:Id_space.id -> int

(** [take_all t] removes and returns everything — the paper's [loaddump]
    when a peer leaves gracefully. *)
val take_all : t -> (string * string * Id_space.id) list

(** [iter t f] applies [f ~key ~value ~route_id] to each item. *)
val iter : t -> (key:string -> value:string -> route_id:Id_space.id -> unit) -> unit

(** [keys t] lists stored keys in unspecified order. *)
val keys : t -> string list

val clear : t -> unit
