type kind = One_shot | Periodic

type t = {
  engine : Engine.t;
  delay : float;
  kind : kind;
  action : unit -> unit;
  mutable handle : Engine.handle option;
}

let arm t =
  let rec fire () =
    t.handle <- None;
    (match t.kind with
     | Periodic ->
       t.handle <- Some (Engine.schedule ~label:"timer" t.engine ~delay:t.delay fire)
     | One_shot -> ());
    t.action ()
  in
  t.handle <- Some (Engine.schedule ~label:"timer" t.engine ~delay:t.delay fire)

let one_shot engine ~delay action =
  let t = { engine; delay; kind = One_shot; action; handle = None } in
  arm t;
  t

let periodic engine ~period action =
  let t = { engine; delay = period; kind = Periodic; action; handle = None } in
  arm t;
  t

let cancel t =
  match t.handle with
  | None -> ()
  | Some h ->
    Engine.cancel h;
    t.handle <- None

let reset t =
  cancel t;
  arm t

let active t = t.handle <> None
