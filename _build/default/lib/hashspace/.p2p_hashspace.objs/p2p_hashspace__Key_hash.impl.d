lib/hashspace/key_hash.ml: Char Id_space Int64 Printf String
