(* Transport seam: wire codec (round-trip, golden bytes, fuzz), timer
   cancel-late semantics (engine clock and wall-clock wheel), and the
   live TCP loop driven entirely in-process — two [Live_transport]
   endpoints on localhost stepped by hand through connect,
   retry-after-refused, windowed send under a full buffer, and clean
   shutdown. *)

module Wire = P2p_transport.Wire
module Transport = P2p_transport.Transport
module Live = P2p_transport.Live_transport
module Wheel = P2p_transport.Timer_wheel
module Sim_transport = P2p_transport.Sim_transport
module Timer = P2p_sim.Timer
module Engine = P2p_sim.Engine

let golden_v1_path = "golden/wire_v1.bin"
let golden_v2_path = "golden/wire_v2.bin"

(* --- codec ----------------------------------------------------------- *)

let roundtrip_every_kind () =
  List.iter
    (fun msg ->
      let frame = Wire.encode msg in
      match Wire.decode frame with
      | Ok (Some (decoded, consumed)) ->
        Alcotest.(check int)
          (Wire.tag_name msg ^ " consumes whole frame")
          (String.length frame) consumed;
        Alcotest.(check bool) (Wire.tag_name msg ^ " round-trips") true
          (decoded = msg)
      | Ok None -> Alcotest.fail (Wire.tag_name msg ^ ": incomplete?")
      | Error e -> Alcotest.fail (Wire.tag_name msg ^ ": " ^ e))
    Wire.golden_exemplars

let all_tags_covered () =
  (* The exemplar list is the codec's coverage contract: one value per
     constructor, distinct tags. *)
  let tags =
    List.sort_uniq compare (List.map Wire.tag_of Wire.golden_exemplars)
  in
  Alcotest.(check int) "one exemplar per message kind" 28 (List.length tags)

let read_golden path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let golden = really_input_string ic len in
  close_in ic;
  golden

let decode_all_traced buf =
  let rec go off acc =
    match Wire.decode_traced ~off buf with
    | Ok (Some (msg, trace, consumed)) -> go (off + consumed) ((msg, trace) :: acc)
    | Ok None ->
      Alcotest.(check int) "no trailing bytes" (String.length buf) off;
      List.rev acc
    | Error e -> Alcotest.fail ("golden stream: " ^ e)
  in
  go 0 []

(* The checked-in v2 golden stream: every exemplar unstamped, then the
   traced exemplars with their headers — all flag combinations pinned. *)
let v2_stream () =
  String.concat ""
    (List.map Wire.encode Wire.golden_exemplars
    @ List.map
        (fun (msg, trace) -> Wire.encode ?trace msg)
        Wire.golden_trace_exemplars)

let golden_bytes () =
  let concatenated = v2_stream () in
  match Sys.getenv_opt "WIRE_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc concatenated;
    close_out oc
  | None ->
    let golden = read_golden golden_v2_path in
    Alcotest.(check int) "golden length" (String.length golden)
      (String.length concatenated);
    Alcotest.(check bool) "every message kind encodes byte-identically" true
      (golden = concatenated);
    let expected =
      List.map (fun msg -> (msg, None)) Wire.golden_exemplars
      @ Wire.golden_trace_exemplars
    in
    Alcotest.(check bool)
      "golden stream decodes to the exemplars, trace contexts intact" true
      (decode_all_traced golden = expected)

let golden_v1_still_decodes () =
  (* The frozen v1 stream (no flags byte, version 1) predates the two
     scrape messages; the v2 decoder must keep accepting it forever. *)
  let golden = read_golden golden_v1_path in
  let expected =
    List.filteri (fun i _ -> i < 26) Wire.golden_exemplars
    |> List.map (fun msg -> (msg, None))
  in
  Alcotest.(check bool) "v1 stream decodes, no trace contexts" true
    (decode_all_traced golden = expected)

let truncation_never_raises () =
  List.iter
    (fun msg ->
      let frame = Wire.encode msg in
      for cut = 0 to String.length frame - 1 do
        match Wire.decode (String.sub frame 0 cut) with
        | Ok None | Error _ -> ()
        | Ok (Some _) ->
          Alcotest.fail
            (Printf.sprintf "%s truncated to %d bytes decoded"
               (Wire.tag_name msg) cut)
      done)
    Wire.golden_exemplars

let corruption_never_raises () =
  (* Flip every byte of every frame through a few xor patterns: decode
     must return (any result), never raise.  Header corruption (magic,
     version, tag) must be an [Error]. *)
  List.iter
    (fun msg ->
      let frame = Wire.encode msg in
      List.iter
        (fun pattern ->
          for pos = 0 to String.length frame - 1 do
            let corrupted = Bytes.of_string frame in
            Bytes.set corrupted pos
              (Char.chr (Char.code (Bytes.get corrupted pos) lxor pattern));
            ignore (Wire.decode (Bytes.to_string corrupted))
          done)
        [ 0xff; 0x01; 0x80 ])
    Wire.golden_exemplars;
  let frame = Bytes.of_string (Wire.encode Wire.Shutdown) in
  Bytes.set frame 4 'X';
  (match Wire.decode (Bytes.to_string frame) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad magic accepted");
  let frame = Bytes.of_string (Wire.encode Wire.Shutdown) in
  Bytes.set frame 6 '\xee';
  (match Wire.decode (Bytes.to_string frame) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown version accepted");
  let frame = Bytes.of_string (Wire.encode Wire.Shutdown) in
  Bytes.set frame 7 '\xee';
  match Wire.decode (Bytes.to_string frame) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let oversized_frame_rejected () =
  let b = Buffer.create 8 in
  Buffer.add_int32_be b 0x7fff_ffffl;
  Buffer.add_string b "P2";
  match Wire.decode (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame length accepted"

(* --- trace header ----------------------------------------------------- *)

let trace_ctx_roundtrip () =
  List.iter
    (fun trace ->
      List.iter
        (fun msg ->
          let frame = Wire.encode ?trace msg in
          Alcotest.(check int)
            (Wire.tag_name msg ^ " trace overhead matches the accounting")
            (String.length frame)
            (String.length (Wire.encode msg) - 1 + Wire.trace_overhead trace);
          match Wire.decode_traced frame with
          | Ok (Some (decoded, decoded_trace, consumed)) ->
            Alcotest.(check int) "whole frame consumed" (String.length frame)
              consumed;
            Alcotest.(check bool) "message survives" true (decoded = msg);
            Alcotest.(check bool) "trace context survives" true
              (decoded_trace = trace)
          | Ok None -> Alcotest.fail "incomplete?"
          | Error e -> Alcotest.fail e)
        Wire.golden_exemplars)
    [
      None;
      Some Wire.{ tc_op = 0; tc_parent = -1; tc_sampled = true };
      Some Wire.{ tc_op = max_int; tc_parent = max_int; tc_sampled = false };
      Some Wire.{ tc_op = 123_456_789; tc_parent = 1 lsl 42; tc_sampled = true };
    ]

let traced_frames_survive_fuzz () =
  (* Truncation and byte corruption of trace-stamped frames: any result,
     never an exception.  Unknown flag bits must be an [Error]. *)
  let trace = Some Wire.{ tc_op = 9001; tc_parent = 17; tc_sampled = true } in
  List.iter
    (fun msg ->
      let frame = Wire.encode ?trace msg in
      for cut = 0 to String.length frame - 1 do
        match Wire.decode_traced (String.sub frame 0 cut) with
        | Ok None | Error _ -> ()
        | Ok (Some _) ->
          Alcotest.fail
            (Printf.sprintf "%s traced, truncated to %d bytes decoded"
               (Wire.tag_name msg) cut)
      done;
      List.iter
        (fun pattern ->
          for pos = 0 to String.length frame - 1 do
            let corrupted = Bytes.of_string frame in
            Bytes.set corrupted pos
              (Char.chr (Char.code (Bytes.get corrupted pos) lxor pattern));
            ignore (Wire.decode_traced (Bytes.to_string corrupted))
          done)
        [ 0xff; 0x01; 0x80 ])
    Wire.golden_exemplars;
  let frame = Bytes.of_string (Wire.encode Wire.Shutdown) in
  (* flags byte sits right after the tag *)
  Bytes.set frame 8 '\xf0';
  match Wire.decode_traced (Bytes.to_string frame) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown flag bits accepted"

(* --- timer cancel-late semantics ------------------------------------- *)

let sim_cancel_late_counted () =
  let engine = Engine.create ~seed:7 () in
  let fired = ref 0 in
  let t = Timer.one_shot engine ~delay:5.0 (fun () -> incr fired) in
  Engine.run engine;
  Alcotest.(check int) "fired once" 1 !fired;
  let before = Timer.cancel_late () in
  Timer.cancel t;
  Alcotest.(check int) "cancel after fire is counted" (before + 1)
    (Timer.cancel_late ());
  Timer.cancel t;
  Alcotest.(check int) "second cancel is an uncounted no-op" (before + 1)
    (Timer.cancel_late ());
  (* A cancel-late must not leave a ghost entry for the engine to chew. *)
  Alcotest.(check int) "no ghost event scheduled" 1 (Engine.events_executed engine)

let sim_cancel_in_time_not_counted () =
  let engine = Engine.create ~seed:7 () in
  let fired = ref 0 in
  let t = Timer.one_shot engine ~delay:5.0 (fun () -> incr fired) in
  let before = Timer.cancel_late () in
  Timer.cancel t;
  Engine.run engine;
  Alcotest.(check int) "never fired" 0 !fired;
  Alcotest.(check int) "timely cancel is not late" before (Timer.cancel_late ())

let wheel_fires_and_counts_late_cancel () =
  let clock_now = ref 0.0 in
  let wheel = Wheel.create ~clock:(fun () -> !clock_now) in
  let fired = ref 0 in
  let tm = Wheel.one_shot wheel ~delay:10.0 (fun () -> incr fired) in
  Alcotest.(check int) "armed" 1 (Wheel.pending wheel);
  clock_now := 5.0;
  Alcotest.(check int) "not due yet" 0 (Wheel.run_due wheel);
  clock_now := 10.0;
  Alcotest.(check int) "fires when due" 1 (Wheel.run_due wheel);
  Alcotest.(check int) "fired once" 1 !fired;
  Alcotest.(check int) "wheel drained" 0 (Wheel.pending wheel);
  let before = Timer.cancel_late () in
  Transport.cancel tm;
  Alcotest.(check int) "wheel shares the cancel_late counter" (before + 1)
    (Timer.cancel_late ());
  Transport.cancel tm;
  Alcotest.(check int) "wheel double cancel uncounted" (before + 1)
    (Timer.cancel_late ())

let wheel_periodic_reset_cancel () =
  let clock_now = ref 0.0 in
  let wheel = Wheel.create ~clock:(fun () -> !clock_now) in
  let ticks = ref 0 in
  let tm = Wheel.periodic wheel ~period:10.0 (fun () -> incr ticks) in
  clock_now := 35.0;
  ignore (Wheel.run_due wheel);
  (* Wall-clock periodics re-arm from now: a stalled loop fires once and
     moves on, it does not burst through the missed intervals. *)
  Alcotest.(check int) "stall fires once, no catch-up burst" 1 !ticks;
  Transport.reset tm;
  clock_now := 44.0;
  Alcotest.(check int) "reset pushed next tick out" 0 (Wheel.run_due wheel);
  clock_now := 45.0;
  Alcotest.(check int) "tick after reset" 1 (Wheel.run_due wheel);
  Transport.cancel tm;
  clock_now := 1000.0;
  Alcotest.(check int) "cancelled periodic stays quiet" 0 (Wheel.run_due wheel);
  Alcotest.(check int) "wheel empty after cancel" 0 (Wheel.pending wheel)

(* --- live loop ------------------------------------------------------- *)

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Step both endpoints until [pred ()] or a wall-clock deadline. *)
let pump ?(seconds = 5.0) transports pred =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      List.iter (fun tr -> ignore (Live.step ~timeout:0.01 tr)) transports;
      loop ()
    end
  in
  loop ()

let make_pair ~port_a ~port_b =
  let a = Live.create ~self:0 () in
  let b = Live.create ~self:1 () in
  Live.set_peer_addr a 1 (loopback port_b);
  Live.set_peer_addr b 0 (loopback port_a);
  (a, b)

let live_connect_and_exchange () =
  let port_a = 43210 and port_b = 43211 in
  let a, b = make_pair ~port_a ~port_b in
  Live.listen a (loopback port_a);
  Live.listen b (loopback port_b);
  let got_a = ref [] and got_b = ref [] in
  Live.set_handler a (fun ~src ~dst:_ msg -> got_a := (src, msg) :: !got_a);
  Live.set_handler b (fun ~src ~dst:_ msg -> got_b := (src, msg) :: !got_b);
  Live.send b ~src:1 ~dst:0 (Wire.Ping { nonce = 99 });
  Alcotest.(check bool) "ping arrives" true
    (pump [ a; b ] (fun () -> !got_a <> []));
  (match !got_a with
   | [ (src, Wire.Ping { nonce }) ] ->
     Alcotest.(check int) "handshake identified the sender" 1 src;
     Alcotest.(check int) "payload intact" 99 nonce
   | _ -> Alcotest.fail "unexpected messages at a");
  Live.send a ~src:0 ~dst:1 (Wire.Pong { nonce = 99 });
  Alcotest.(check bool) "pong arrives" true
    (pump [ a; b ] (fun () -> !got_b <> []));
  Live.stop a;
  Live.stop b

let live_trace_ctx_propagates () =
  let port_a = 43270 and port_b = 43271 in
  let a, b = make_pair ~port_a ~port_b in
  Live.listen a (loopback port_a);
  Live.listen b (loopback port_b);
  let got_a = ref [] in
  Live.set_handler_traced a (fun ~src:_ ~dst:_ ~trace msg ->
      got_a := (msg, trace) :: !got_a);
  let ctx = Wire.{ tc_op = 4242; tc_parent = 1 lsl 41; tc_sampled = true } in
  Live.send_traced b ~trace:ctx ~dst:0 (Wire.Ping { nonce = 1 });
  Live.send_traced b ~dst:0 (Wire.Ping { nonce = 2 });
  Alcotest.(check bool) "both frames arrive" true
    (pump [ a; b ] (fun () -> List.length !got_a = 2));
  (match List.rev !got_a with
   | [ (Wire.Ping { nonce = 1 }, Some decoded); (Wire.Ping { nonce = 2 }, None) ]
     ->
     Alcotest.(check bool) "context crossed the socket intact" true
       (decoded = ctx)
   | _ -> Alcotest.fail "unexpected traced delivery");
  (* The overhead accounting the 2%-budget gate reads: one flags byte
     per frame, 16 more for the stamped one. *)
  Alcotest.(check int) "trace_bytes counts flags + stamped header"
    (1 + 16 + 1)
    (Live.stats b).Live.trace_bytes;
  Live.stop a;
  Live.stop b

let live_retry_after_refused () =
  let port_a = 43220 and port_b = 43221 in
  let a, b = make_pair ~port_a ~port_b in
  let got_a = ref [] in
  Live.set_handler a (fun ~src ~dst:_ msg -> got_a := (src, msg) :: !got_a);
  (* Nobody listens on port_a yet: the dial is refused and must back
     off, keeping the queued frame. *)
  Live.send b ~src:1 ~dst:0 (Wire.Ping { nonce = 7 });
  let saw_retry =
    pump ~seconds:3.0 [ b ] (fun () -> (Live.stats b).Live.retries >= 1)
  in
  Alcotest.(check bool) "connect refused triggers backoff retry" true saw_retry;
  Alcotest.(check bool) "message not delivered while down" true (!got_a = []);
  (* Now bring the listener up: a later retry must connect and flush the
     queued frame. *)
  Live.listen a (loopback port_a);
  Alcotest.(check bool) "queued frame delivered after listener appears" true
    (pump ~seconds:10.0 [ a; b ] (fun () -> !got_a <> []));
  (match !got_a with
   | [ (_, Wire.Ping { nonce }) ] -> Alcotest.(check int) "same frame" 7 nonce
   | _ -> Alcotest.fail "unexpected messages at a");
  Live.stop a;
  Live.stop b

let live_windowed_send_under_full_buffer () =
  let port_a = 43230 and port_b = 43231 in
  let a = Live.create ~self:0 () in
  (* A tiny window so a burst outruns it immediately; the hard cap is
     kept wide so backpressure stalls, it does not drop. *)
  let b = Live.create ~self:1 ~window:2048 ~max_queued:(1024 * 1024) () in
  Live.set_peer_addr a 1 (loopback port_b);
  Live.set_peer_addr b 0 (loopback port_a);
  Live.listen a (loopback port_a);
  let received = ref 0 in
  Live.set_handler a (fun ~src:_ ~dst:_ msg ->
      match msg with Wire.Insert _ -> incr received | _ -> ());
  let total = 64 in
  let value = String.make 1024 'x' in
  (* Burst without stepping the receiver: the connection is still in
     flight, so every frame queues and the window fills. *)
  for i = 1 to total do
    Live.send b ~src:1 ~dst:0
      (Wire.Insert
         {
           op = i;
           origin = 1;
           route_id = i;
           key = Printf.sprintf "k%d" i;
           value;
           hops = 0;
         })
  done;
  Alcotest.(check bool) "burst past the window counts stalls" true
    ((Live.stats b).Live.window_stalls > 0);
  Alcotest.(check bool) "backpressure kept bytes queued" true
    (Live.pending_bytes b 0 > 2048);
  (* Draining both loops delivers the entire burst in order. *)
  Alcotest.(check bool) "every frame delivered" true
    (pump ~seconds:10.0 [ a; b ] (fun () -> !received = total));
  Alcotest.(check int) "nothing lost to backpressure" total !received;
  Live.stop a;
  Live.stop b

let live_hard_cap_bounds_dead_peer_queue () =
  (* Nothing ever listens on the destination port: the connection sits
     in backoff forever, and the hard cap must bound what a runaway
     sender can queue against it. *)
  let b = Live.create ~self:1 ~window:1024 ~max_queued:(8 * 1024) () in
  Live.set_peer_addr b 0 (loopback 43250);
  let value = String.make 512 'x' in
  for i = 1 to 200 do
    Live.send b ~src:1 ~dst:0
      (Wire.Insert
         { op = i; origin = 1; route_id = i; key = "k"; value; hops = 0 })
  done;
  let s = Live.stats b in
  Alcotest.(check bool) "past the cap, frames are dropped and counted" true
    (s.Live.drops > 0);
  Alcotest.(check bool) "queued bytes stay under the hard cap" true
    (Live.pending_bytes b 0 <= 8 * 1024 + 1024);
  Alcotest.(check int) "drops account for the whole burst"
    200 (s.Live.msgs_sent + s.Live.drops);
  Live.stop b

let live_peer_close_is_backoff_not_sigpipe () =
  (* After the remote stops, continued sends must surface as EPIPE /
     ECONNRESET inside flush_conn and land in backoff — a SIGPIPE with
     default disposition would kill this whole test process. *)
  let port_a = 43260 and port_b = 43261 in
  let a, b = make_pair ~port_a ~port_b in
  Live.listen a (loopback port_a);
  let got_a = ref [] in
  Live.set_handler a (fun ~src ~dst:_ msg -> got_a := (src, msg) :: !got_a);
  Live.send b ~src:1 ~dst:0 (Wire.Ping { nonce = 1 });
  Alcotest.(check bool) "exchange before the remote dies" true
    (pump [ a; b ] (fun () -> !got_a <> []));
  Live.stop a;
  let retries_before = (Live.stats b).Live.retries in
  (* Keep writing into the dead connection until the failure registers.
     The first write after close may be swallowed by the socket buffer;
     the RST turns later ones into EPIPE/ECONNRESET. *)
  let saw_backoff =
    pump ~seconds:5.0 [ b ] (fun () ->
        Live.send b ~src:1 ~dst:0 (Wire.Ping { nonce = 2 });
        (Live.stats b).Live.retries > retries_before)
  in
  Alcotest.(check bool) "peer close became a backoff retry, not a crash"
    true saw_backoff;
  Live.stop b

let live_clean_shutdown () =
  let port_a = 43240 and port_b = 43241 in
  let a, b = make_pair ~port_a ~port_b in
  Live.listen a (loopback port_a);
  let got_a = ref [] in
  Live.set_handler a (fun ~src ~dst:_ msg -> got_a := (src, msg) :: !got_a);
  Live.send b ~src:1 ~dst:0 (Wire.Ping { nonce = 1 });
  Alcotest.(check bool) "exchange before shutdown" true
    (pump [ a; b ] (fun () -> !got_a <> []));
  Live.stop b;
  Live.stop a;
  Alcotest.(check bool) "stopped transports report not running" false
    (Live.running a || Live.running b);
  Alcotest.(check bool) "step after stop is a no-op" false
    (Live.step ~timeout:0.0 a || Live.step ~timeout:0.0 b);
  Live.stop a;
  (* The listening socket really closed: the port can be bound again. *)
  let a2 = Live.create ~self:0 () in
  Live.listen a2 (loopback port_a);
  Live.stop a2

(* --- sim transport sanity -------------------------------------------- *)

let sim_transport_timer_is_engine_timer () =
  let engine = Engine.create ~seed:11 () in
  let g = P2p_topology.Graph.create 4 in
  P2p_topology.Graph.add_edge g 0 1 ~latency:1.0;
  P2p_topology.Graph.add_edge g 1 2 ~latency:1.0;
  P2p_topology.Graph.add_edge g 2 3 ~latency:1.0;
  let routing = P2p_topology.Routing.create g in
  let metrics = P2p_net.Metrics.create () in
  let underlay =
    P2p_net.Underlay.create ~engine ~routing ~metrics ~processing_delay:0.5 ()
  in
  let tr = Sim_transport.create ~underlay in
  let fired = ref [] in
  ignore
    (Transport.one_shot tr ~delay:3.0 (fun () -> fired := `T :: !fired)
      : Transport.timer);
  Transport.send tr ~src:1 ~dst:2 (fun () -> fired := `M :: !fired);
  Engine.run engine;
  (* message at underlay delay (< 3.0), then the timer *)
  Alcotest.(check bool) "message then timer, on one engine clock" true
    (!fired = [ `T; `M ]);
  Alcotest.(check bool) "transport clock is the engine clock" true
    (Transport.now tr = Engine.now engine)

let suite =
  [
    Alcotest.test_case "codec round-trips every message kind" `Quick
      roundtrip_every_kind;
    Alcotest.test_case "exemplar list covers every tag" `Quick all_tags_covered;
    Alcotest.test_case "golden wire_v2.bin is byte-identical" `Quick
      golden_bytes;
    Alcotest.test_case "frozen wire_v1.bin still decodes" `Quick
      golden_v1_still_decodes;
    Alcotest.test_case "decoder survives truncation" `Quick
      truncation_never_raises;
    Alcotest.test_case "decoder survives corruption" `Quick
      corruption_never_raises;
    Alcotest.test_case "oversized frame rejected" `Quick
      oversized_frame_rejected;
    Alcotest.test_case "trace context round-trips on every kind" `Quick
      trace_ctx_roundtrip;
    Alcotest.test_case "traced frames survive truncation and corruption"
      `Quick traced_frames_survive_fuzz;
    Alcotest.test_case "sim timer: cancel after fire is a counted no-op"
      `Quick sim_cancel_late_counted;
    Alcotest.test_case "sim timer: timely cancel is not late" `Quick
      sim_cancel_in_time_not_counted;
    Alcotest.test_case "wheel: fires due timers, shares cancel_late" `Quick
      wheel_fires_and_counts_late_cancel;
    Alcotest.test_case "wheel: periodic catch-up, reset, cancel" `Quick
      wheel_periodic_reset_cancel;
    Alcotest.test_case "live: connect and exchange" `Quick
      live_connect_and_exchange;
    Alcotest.test_case "live: trace context crosses the socket" `Quick
      live_trace_ctx_propagates;
    Alcotest.test_case "live: retry after refused" `Quick
      live_retry_after_refused;
    Alcotest.test_case "live: windowed send under full buffer" `Quick
      live_windowed_send_under_full_buffer;
    Alcotest.test_case "live: hard cap bounds a dead peer's queue" `Quick
      live_hard_cap_bounds_dead_peer_queue;
    Alcotest.test_case "live: peer close is backoff, not SIGPIPE" `Quick
      live_peer_close_is_backoff_not_sigpipe;
    Alcotest.test_case "live: clean shutdown" `Quick live_clean_shutdown;
    Alcotest.test_case "sim transport: one clock for messages and timers"
      `Quick sim_transport_timer_is_engine_timer;
  ]
