(** One live ring node — the protocol logic a [p2psim serve] worker
    process runs over {!Live_transport}.

    Tracker-style bootstrap (node 0 collects announces and broadcasts
    the peer list), Chord-style successor-ring routing for inserts and
    lookups, client request relay, per-node self-audit (stored keys must
    hash into the node's own arc) and periodic JSONL health dumps. *)

type t

(** [create ~node ~n ~port_base ()] builds node [node] of an [n]-node
    ring listening on [port_base + node].  Node indices [0..n-1] are
    ring members; index [n] is reserved for the orchestrator/client.
    [dump_dir], when given, receives [health-<node>.jsonl]. *)
val create : ?dump_dir:string -> node:int -> n:int -> port_base:int -> unit -> t

(** [true] once the tracker's peer list arrived and the ring position
    (successor/predecessor) is known. *)
val ready : t -> bool

(** One event-loop turn; see {!Live_transport.step}. *)
val step : ?timeout:float -> t -> bool

val transport : t -> Live_transport.t

(** Audit violations counted so far (misplaced keys, ring shape,
    hop-count overruns). *)
val violations : t -> int

(** Blocking loop: step until a [Shutdown] frame arrives, drain, then
    {!stop}. *)
val run : t -> unit

(** Final audit + health line, close dump and sockets. *)
val stop : t -> unit
