(* Tests for P2p_topology: Graph, Transit_stub, Routing, Link_stress,
   Landmark. *)

module Rng = P2p_sim.Rng
module Graph = P2p_topology.Graph
module Transit_stub = P2p_topology.Transit_stub
module Routing = P2p_topology.Routing
module Link_stress = P2p_topology.Link_stress
module Landmark = P2p_topology.Landmark

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Graph --- *)

let test_graph_basic () =
  let g = Graph.create 4 in
  checki "nodes" 4 (Graph.node_count g);
  checki "no edges" 0 (Graph.edge_count g);
  Graph.add_edge g 0 1 ~latency:2.0;
  Graph.add_edge g 1 2 ~latency:3.0;
  checki "edges" 2 (Graph.edge_count g);
  checkb "has 0-1" true (Graph.has_edge g 0 1);
  checkb "symmetric" true (Graph.has_edge g 1 0);
  checkb "absent" false (Graph.has_edge g 0 2);
  checkf "latency" 2.0 (Graph.latency g 0 1);
  checkf "latency symmetric" 2.0 (Graph.latency g 1 0);
  checki "degree" 2 (Graph.degree g 1)

let test_graph_rejects () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> Graph.add_edge g 1 1 ~latency:1.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge g 1 0 ~latency:1.0);
  Alcotest.check_raises "bad latency"
    (Invalid_argument "Graph.add_edge: non-positive latency") (fun () ->
      Graph.add_edge g 1 2 ~latency:0.0);
  Alcotest.check_raises "out of range" (Invalid_argument "Graph: node out of range")
    (fun () -> Graph.add_edge g 0 3 ~latency:1.0)

let test_graph_edges_listing () =
  let g = Graph.create 3 in
  Graph.add_edge g 2 0 ~latency:1.5;
  (match Graph.edges g with
   | [ { Graph.u; v; latency } ] ->
     checki "u < v" 0 u;
     checki "v" 2 v;
     checkf "latency" 1.5 latency
   | _ -> Alcotest.fail "expected exactly one edge")

let test_graph_connectivity () =
  let g = Graph.create 4 in
  checkb "disconnected" false (Graph.is_connected g);
  Graph.add_edge g 0 1 ~latency:1.0;
  Graph.add_edge g 1 2 ~latency:1.0;
  checkb "still disconnected" false (Graph.is_connected g);
  Graph.add_edge g 2 3 ~latency:1.0;
  checkb "connected" true (Graph.is_connected g);
  checkb "empty graph connected" true (Graph.is_connected (Graph.create 0))

(* --- Transit_stub --- *)

let small_params =
  {
    Transit_stub.default_params with
    Transit_stub.transit_domains = 2;
    transit_nodes = 3;
    stub_domains_per_node = 2;
    stub_nodes = 4;
  }

let test_ts_node_count () =
  checki "formula" (6 + (6 * 2 * 4)) (Transit_stub.node_count small_params);
  checki "default params give 1000" 1000 (Transit_stub.node_count Transit_stub.default_params)

let test_ts_connected () =
  let rng = Rng.create 1 in
  let t = Transit_stub.generate ~rng small_params in
  checkb "connected" true (Graph.is_connected t.Transit_stub.graph);
  checki "node count" (Transit_stub.node_count small_params)
    (Graph.node_count t.Transit_stub.graph)

let test_ts_classes () =
  let rng = Rng.create 2 in
  let t = Transit_stub.generate ~rng small_params in
  let transit = Transit_stub.transit_nodes t and stub = Transit_stub.stub_nodes t in
  checki "transit count" 6 (List.length transit);
  checki "stub count" 48 (List.length stub);
  (* stub nodes reference a valid transit node *)
  List.iter
    (fun u ->
      match t.Transit_stub.classes.(u) with
      | Transit_stub.Stub owner -> checkb "owner is transit" true (owner >= 0 && owner < 6)
      | Transit_stub.Transit _ -> Alcotest.fail "stub classified as transit")
    stub

let test_ts_deterministic () =
  let t1 = Transit_stub.generate ~rng:(Rng.create 7) small_params in
  let t2 = Transit_stub.generate ~rng:(Rng.create 7) small_params in
  checki "same edge count" (Graph.edge_count t1.Transit_stub.graph)
    (Graph.edge_count t2.Transit_stub.graph);
  let e1 = Graph.edges t1.Transit_stub.graph and e2 = Graph.edges t2.Transit_stub.graph in
  checkb "identical topologies" true
    (List.for_all2 (fun a b -> a.Graph.u = b.Graph.u && a.Graph.v = b.Graph.v) e1 e2)

let test_ts_latency_classes () =
  let rng = Rng.create 3 in
  let t = Transit_stub.generate ~rng Transit_stub.default_params in
  let p = Transit_stub.default_params in
  List.iter
    (fun { Graph.u; v; latency } ->
      let lo, hi =
        match (t.Transit_stub.classes.(u), t.Transit_stub.classes.(v)) with
        | Transit_stub.Transit a, Transit_stub.Transit b when a = b ->
          p.Transit_stub.intra_transit_latency
        | Transit_stub.Transit _, Transit_stub.Transit _ ->
          p.Transit_stub.transit_transit_latency
        | Transit_stub.Stub _, Transit_stub.Stub _ -> p.Transit_stub.intra_stub_latency
        | Transit_stub.Transit _, Transit_stub.Stub _
        | Transit_stub.Stub _, Transit_stub.Transit _ ->
          p.Transit_stub.transit_stub_latency
      in
      checkb "latency in class range" true (latency >= lo && latency <= hi))
    (Graph.edges t.Transit_stub.graph)

let test_ts_rejects () =
  Alcotest.check_raises "bad params"
    (Invalid_argument "Transit_stub.generate: non-positive size parameter") (fun () ->
      ignore
        (Transit_stub.generate ~rng:(Rng.create 1)
           { small_params with Transit_stub.transit_nodes = 0 }
          : Transit_stub.t))

(* --- Routing --- *)

let line_graph n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1) ~latency:1.0
  done;
  g

let test_routing_line () =
  let r = Routing.create (line_graph 5) in
  checkf "0 to 4" 4.0 (Routing.distance r 0 4);
  checkf "self" 0.0 (Routing.distance r 2 2);
  Alcotest.check (Alcotest.list Alcotest.int) "path" [ 0; 1; 2; 3; 4 ] (Routing.path r 0 4);
  checki "hop count" 4 (Routing.hop_count r 0 4);
  checki "self hops" 0 (Routing.hop_count r 3 3)

let test_routing_shortcut () =
  let g = line_graph 5 in
  Graph.add_edge g 0 4 ~latency:1.5;
  let r = Routing.create g in
  checkf "uses shortcut" 1.5 (Routing.distance r 0 4);
  Alcotest.check (Alcotest.list Alcotest.int) "short path" [ 0; 4 ] (Routing.path r 0 4)

let test_routing_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~latency:1.0;
  let r = Routing.create g in
  checkb "infinite" true (Routing.distance r 0 2 = infinity);
  Alcotest.check_raises "no path" Not_found (fun () ->
      ignore (Routing.path r 0 2 : int list))

let test_routing_symmetric () =
  let rng = Rng.create 4 in
  let t = Transit_stub.generate ~rng small_params in
  let r = Routing.create t.Transit_stub.graph in
  for _ = 1 to 50 do
    let u = Rng.int rng 54 and v = Rng.int rng 54 in
    checkf "d(u,v) = d(v,u)"
      (Routing.distance r u v) (Routing.distance r v u)
  done

let test_routing_triangle_inequality () =
  let rng = Rng.create 5 in
  let t = Transit_stub.generate ~rng small_params in
  let r = Routing.create t.Transit_stub.graph in
  for _ = 1 to 100 do
    let a = Rng.int rng 54 and b = Rng.int rng 54 and c = Rng.int rng 54 in
    checkb "triangle" true
      (Routing.distance r a c <= Routing.distance r a b +. Routing.distance r b c +. 1e-9)
  done

let test_routing_lru_bound () =
  (* A router capped at 2 cached sources must evict (LRU) yet keep
     answering exactly like an unbounded one. *)
  let rng = Rng.create 6 in
  let t = Transit_stub.generate ~rng small_params in
  let unbounded = Routing.create t.Transit_stub.graph in
  let capped = Routing.create ~max_cached_sources:2 t.Transit_stub.graph in
  (* cycle through more sources than the cap, twice, so every source is
     computed, evicted and recomputed at least once *)
  for round = 1 to 2 do
    ignore round;
    for u = 0 to 9 do
      for v = 0 to 53 do
        checkf "capped = unbounded"
          (Routing.distance unbounded u v)
          (Routing.distance capped u v)
      done
    done
  done;
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Routing.create: max_cached_sources") (fun () ->
      ignore (Routing.create ~max_cached_sources:0 t.Transit_stub.graph : Routing.t))

let test_routing_eccentricity () =
  let r = Routing.create (line_graph 5) in
  checkf "end node" 4.0 (Routing.eccentricity r 0);
  checkf "middle node" 2.0 (Routing.eccentricity r 2)

let test_graph_set_latency () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Graph.set_latency g 1 0 ~latency:2.5;
  checkf "updated both directions" 2.5 (Graph.latency g 0 1);
  Alcotest.check_raises "absent edge" Not_found (fun () ->
      Graph.set_latency g 0 2 ~latency:1.0);
  Alcotest.check_raises "bad latency"
    (Invalid_argument "Graph.set_latency: non-positive latency") (fun () ->
      Graph.set_latency g 0 1 ~latency:0.0)

(* --- link-state routing --- *)

let is_transit_of t u =
  match t.Transit_stub.classes.(u) with
  | Transit_stub.Transit _ -> true
  | Transit_stub.Stub _ -> false

(* When [u ~ v], the backend's reported path must be real (edges exist),
   cost exactly the reported distance, and agree with [hop_count].  This
   is checked per backend, not across backends: equal-cost ties may give
   the two backends different — equally shortest — paths. *)
let check_path_valid g r name u v =
  if Routing.distance r u v < infinity then begin
    let p = Routing.path r u v in
    (match p with
     | first :: _ -> checki (name ^ ": path starts at u") u first
     | [] -> Alcotest.fail (name ^ ": empty path"));
    checki (name ^ ": path ends at v") v (List.nth p (List.length p - 1));
    let rec cost = function
      | a :: (b :: _ as rest) ->
        checkb (name ^ ": edge exists") true (Graph.has_edge g a b);
        Graph.latency g a b +. cost rest
      | _ -> 0.0
    in
    Alcotest.check (Alcotest.float 1e-6)
      (name ^ ": path cost = distance")
      (Routing.distance r u v) (cost p);
    checki
      (name ^ ": hop_count = |path| - 1")
      (List.length p - 1)
      (Routing.hop_count r u v)
  end

(* Property: over random transit-stub graphs, the precomputed link-state
   tables answer exactly like per-source Dijkstra on every pair
   (distances to float tolerance — hierarchical composition sums in a
   different order), and both backends report self-consistent paths. *)
let test_link_state_matches_dijkstra () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let t = Transit_stub.generate ~rng small_params in
      let g = t.Transit_stub.graph in
      let dij = Routing.create g in
      let ls = Routing.link_state g ~is_transit:(is_transit_of t) in
      let n = Graph.node_count g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          Alcotest.check (Alcotest.float 1e-6) "distance agrees"
            (Routing.distance dij u v)
            (Routing.distance ls u v);
          check_path_valid g dij "dijkstra" u v;
          check_path_valid g ls "link_state" u v
        done
      done)
    [ 11; 12; 13 ]

(* Hand-built hierarchy where every figure is known exactly: transit
   backbone 0 -- 1, a 3-node stub domain {2,3,4} on node 0, a 2-node
   stub domain {5,6} on node 1, and node 7 an isolated stub domain with
   no access link. *)
let manual_hierarchy () =
  let g = Graph.create 8 in
  Graph.add_edge g 0 1 ~latency:10.0;
  Graph.add_edge g 2 3 ~latency:1.0;
  Graph.add_edge g 3 4 ~latency:1.0;
  Graph.add_edge g 0 2 ~latency:2.0;
  Graph.add_edge g 5 6 ~latency:1.0;
  Graph.add_edge g 1 5 ~latency:3.0;
  (g, Routing.link_state g ~is_transit:(fun u -> u < 2))

let test_link_state_manual () =
  let _g, r = manual_hierarchy () in
  checkf "intra-domain" 2.0 (Routing.distance r 2 4);
  checkf "stub to transit" 13.0 (Routing.distance r 3 1);
  checkf "transit to stub" 4.0 (Routing.distance r 1 6);
  checkf "cross-domain" 18.0 (Routing.distance r 4 6);
  checki "cross-domain hops" 6 (Routing.hop_count r 4 6);
  Alcotest.check (Alcotest.list Alcotest.int) "cross-domain path"
    [ 4; 3; 2; 0; 1; 5; 6 ] (Routing.path r 4 6);
  checkf "eccentricity" 18.0 (Routing.eccentricity r 4);
  (* the isolated domain: reachable from itself, nothing else *)
  checkf "isolated self" 0.0 (Routing.distance r 7 7);
  checkb "isolated unreachable" true (Routing.distance r 7 4 = infinity);
  checkb "unreachable from transit" true (Routing.distance r 0 7 = infinity);
  Alcotest.check_raises "no path" Not_found (fun () ->
      ignore (Routing.path r 4 7 : int list));
  Alcotest.check_raises "no hop count" Not_found (fun () ->
      ignore (Routing.hop_count r 4 7 : int))

let test_link_state_rejects_multi_access () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Graph.add_edge g 2 3 ~latency:1.0;
  Graph.add_edge g 0 2 ~latency:1.0;
  Graph.add_edge g 1 3 ~latency:1.0;
  (* stub domain {2,3} touches the backbone twice: not transit-stub *)
  checkb "rejected" true
    (match Routing.link_state g ~is_transit:(fun u -> u < 2) with
     | exception Invalid_argument _ -> true
     | (_ : Routing.t) -> false)

(* Incremental recomputation: after [update_link] on each link class
   (intra-stub, transit-transit, access) the link-state router must
   answer exactly like a fresh Dijkstra router over the mutated graph. *)
let test_link_state_update_link () =
  let rng = Rng.create 21 in
  let t = Transit_stub.generate ~rng small_params in
  let g = t.Transit_stub.graph in
  let is_t = is_transit_of t in
  let ls = Routing.link_state g ~is_transit:is_t in
  let edges = Graph.edges g in
  let pick pred = List.find pred edges in
  let intra = pick (fun e -> (not (is_t e.Graph.u)) && not (is_t e.Graph.v)) in
  let transit = pick (fun e -> is_t e.Graph.u && is_t e.Graph.v) in
  let access = pick (fun e -> is_t e.Graph.u <> is_t e.Graph.v) in
  let check_against_fresh name =
    let fresh = Routing.create g in
    let n = Graph.node_count g in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Alcotest.check (Alcotest.float 1e-6) name
          (Routing.distance fresh u v)
          (Routing.distance ls u v)
      done
    done
  in
  Routing.update_link ls intra.Graph.u intra.Graph.v ~latency:0.25;
  check_against_fresh "after intra-stub update";
  Routing.update_link ls transit.Graph.u transit.Graph.v ~latency:123.0;
  check_against_fresh "after transit update";
  Routing.update_link ls access.Graph.u access.Graph.v ~latency:9.5;
  check_against_fresh "after access-link update"

let test_graph_routed_update_link () =
  let g = line_graph 5 in
  let r = Routing.create g in
  checkf "before" 4.0 (Routing.distance r 0 4);
  (* the cached source-0 tree must be dropped, not reused *)
  Routing.update_link r 2 3 ~latency:10.0;
  checkf "after" 13.0 (Routing.distance r 0 4);
  checki "hops unchanged" 4 (Routing.hop_count r 0 4);
  Alcotest.check_raises "synthetic rejects"
    (Invalid_argument "Routing.update_link: synthetic router") (fun () ->
      Routing.update_link
        (Routing.synthetic ~nodes:3 ~latency:1.0)
        0 1 ~latency:2.0)

let test_routing_refresh () =
  let g, r = manual_hierarchy () in
  checkf "before" 2.0 (Routing.distance r 2 4);
  (* a structural change (new edge) needs the full refresh *)
  Graph.add_edge g 2 4 ~latency:0.5;
  Routing.refresh r;
  checkf "refreshed intra" 0.5 (Routing.distance r 2 4);
  checkf "refreshed cross" 16.5 (Routing.distance r 4 6);
  (* Dijkstra backend: refresh drops the cache *)
  let g2 = line_graph 3 in
  let r2 = Routing.create g2 in
  checkf "line before" 2.0 (Routing.distance r2 0 2);
  Graph.add_edge g2 0 2 ~latency:0.5;
  Routing.refresh r2;
  checkf "line after" 0.5 (Routing.distance r2 0 2)

let test_routing_lru_cap_one () =
  (* cap 1 thrashes the intrusive LRU list on every alternating source:
     head/tail bookkeeping must survive constant single-entry churn *)
  let rng = Rng.create 8 in
  let t = Transit_stub.generate ~rng small_params in
  let unbounded = Routing.create t.Transit_stub.graph in
  let capped = Routing.create ~max_cached_sources:1 t.Transit_stub.graph in
  for v = 0 to 53 do
    checkf "source 0" (Routing.distance unbounded 0 v) (Routing.distance capped 0 v);
    checkf "source 9" (Routing.distance unbounded 9 v) (Routing.distance capped 9 v)
  done

(* --- Link_stress --- *)

let test_stress_basic () =
  let g = line_graph 4 in
  let s = Link_stress.create g in
  Link_stress.charge_path s [ 0; 1; 2 ];
  Link_stress.charge_path s [ 1; 2; 3 ];
  checki "link 0-1" 1 (Link_stress.stress s 0 1);
  checki "link 1-2 charged twice" 2 (Link_stress.stress s 1 2);
  checki "order irrelevant" 2 (Link_stress.stress s 2 1);
  checki "uncharged" 0 (Link_stress.stress s 2 3 - 1);
  checki "total" 4 (Link_stress.total s);
  checki "max" 2 (Link_stress.max_stress s);
  checkf "mean over used" (4.0 /. 3.0) (Link_stress.mean_over_used_links s)

let test_stress_trivial_paths () =
  let s = Link_stress.create (line_graph 3) in
  Link_stress.charge_path s [];
  Link_stress.charge_path s [ 1 ];
  checki "nothing charged" 0 (Link_stress.total s)

let test_stress_clear () =
  let s = Link_stress.create (line_graph 3) in
  Link_stress.charge_path s [ 0; 1; 2 ];
  Link_stress.clear s;
  checki "cleared" 0 (Link_stress.total s);
  checki "max cleared" 0 (Link_stress.max_stress s)

(* --- Landmark --- *)

let test_landmark_selection () =
  let r = Routing.create (line_graph 10) in
  let rng = Rng.create 6 in
  let marks = Landmark.select_landmarks ~rng r ~count:3 in
  checki "count" 3 (List.length marks);
  checki "distinct" 3 (List.length (List.sort_uniq compare marks));
  Alcotest.check_raises "too many" (Invalid_argument "Landmark.select_landmarks")
    (fun () -> ignore (Landmark.select_landmarks ~rng r ~count:11 : int list))

let test_landmark_farthest_point_spread () =
  (* On a line, 2 landmarks by farthest-point sampling must include both
     extremes or at least be far apart. *)
  let r = Routing.create (line_graph 100) in
  let rng = Rng.create 7 in
  match Landmark.select_landmarks ~rng r ~count:2 with
  | [ a; b ] -> checkb "spread out" true (abs (a - b) > 50)
  | _ -> Alcotest.fail "expected two landmarks"

let test_landmark_clusters () =
  let r = Routing.create (line_graph 10) in
  let t = Landmark.create r ~landmarks:[ 0; 9 ] ~levels:[] in
  (* nodes 0..4 are closer to 0; nodes 5..9 closer to 9 *)
  checkb "same side same cluster" true
    (Landmark.cluster_id t 1 = Landmark.cluster_id t 2);
  checkb "opposite sides differ" true
    (Landmark.cluster_id t 1 <> Landmark.cluster_id t 8);
  checki "two clusters" 2 (Landmark.cluster_count t)

let test_landmark_levels_refine () =
  let r = Routing.create (line_graph 10) in
  let coarse = Landmark.create r ~landmarks:[ 0; 9 ] ~levels:[] in
  let fine = Landmark.create r ~landmarks:[ 0; 9 ] ~levels:[ 2.0; 5.0 ] in
  ignore (Landmark.cluster_id coarse 1 : int);
  ignore (Landmark.cluster_id coarse 4 : int);
  ignore (Landmark.cluster_id fine 1 : int);
  ignore (Landmark.cluster_id fine 4 : int);
  (* with latency levels, node 1 (d=1 to landmark 0) and node 4 (d=4)
     split into different clusters even though the ordering is the same *)
  checkb "levels refine clusters" true
    (Landmark.cluster_id fine 1 <> Landmark.cluster_id fine 4);
  checkb "ordering-only merges them" true
    (Landmark.cluster_id coarse 1 = Landmark.cluster_id coarse 4)

let test_landmark_coordinate_stable () =
  let r = Routing.create (line_graph 6) in
  let t = Landmark.create r ~landmarks:[ 0; 5 ] ~levels:[] in
  Alcotest.check Alcotest.string "memoized" (Landmark.coordinate t 3) (Landmark.coordinate t 3)

let suite =
  [
    Alcotest.test_case "graph: basics" `Quick test_graph_basic;
    Alcotest.test_case "graph: rejects bad edges" `Quick test_graph_rejects;
    Alcotest.test_case "graph: edges listing" `Quick test_graph_edges_listing;
    Alcotest.test_case "graph: connectivity" `Quick test_graph_connectivity;
    Alcotest.test_case "transit-stub: node count" `Quick test_ts_node_count;
    Alcotest.test_case "transit-stub: connected" `Quick test_ts_connected;
    Alcotest.test_case "transit-stub: classes" `Quick test_ts_classes;
    Alcotest.test_case "transit-stub: deterministic" `Quick test_ts_deterministic;
    Alcotest.test_case "transit-stub: latency classes" `Quick test_ts_latency_classes;
    Alcotest.test_case "transit-stub: rejects bad params" `Quick test_ts_rejects;
    Alcotest.test_case "routing: line graph" `Quick test_routing_line;
    Alcotest.test_case "routing: picks shortcut" `Quick test_routing_shortcut;
    Alcotest.test_case "routing: unreachable" `Quick test_routing_unreachable;
    Alcotest.test_case "routing: symmetric" `Quick test_routing_symmetric;
    Alcotest.test_case "routing: triangle inequality" `Quick test_routing_triangle_inequality;
    Alcotest.test_case "routing: eccentricity" `Quick test_routing_eccentricity;
    Alcotest.test_case "routing: LRU-bounded cache" `Quick test_routing_lru_bound;
    Alcotest.test_case "graph: set_latency" `Quick test_graph_set_latency;
    Alcotest.test_case "routing: link-state matches Dijkstra" `Quick
      test_link_state_matches_dijkstra;
    Alcotest.test_case "routing: link-state manual hierarchy" `Quick test_link_state_manual;
    Alcotest.test_case "routing: link-state rejects multi-access domains" `Quick
      test_link_state_rejects_multi_access;
    Alcotest.test_case "routing: link-state incremental update" `Quick
      test_link_state_update_link;
    Alcotest.test_case "routing: Dijkstra update_link drops cache" `Quick
      test_graph_routed_update_link;
    Alcotest.test_case "routing: refresh after structural change" `Quick test_routing_refresh;
    Alcotest.test_case "routing: LRU cap of one" `Quick test_routing_lru_cap_one;
    Alcotest.test_case "stress: accounting" `Quick test_stress_basic;
    Alcotest.test_case "stress: trivial paths" `Quick test_stress_trivial_paths;
    Alcotest.test_case "stress: clear" `Quick test_stress_clear;
    Alcotest.test_case "landmark: selection" `Quick test_landmark_selection;
    Alcotest.test_case "landmark: farthest-point spread" `Quick test_landmark_farthest_point_spread;
    Alcotest.test_case "landmark: clustering" `Quick test_landmark_clusters;
    Alcotest.test_case "landmark: latency levels refine" `Quick test_landmark_levels_refine;
    Alcotest.test_case "landmark: coordinate memoized" `Quick test_landmark_coordinate_stable;
  ]
