module Trace = P2p_sim.Trace

let opt_int_field name = function
  | Some i -> [ (name, Json.Int i) ]
  | None -> []

let event_to_json (e : Trace.event) =
  Json.Obj
    ([ ("t", Json.Float e.Trace.time); ("tag", Json.String e.Trace.tag) ]
    @ opt_int_field "op" e.Trace.op
    @ opt_int_field "src" e.Trace.src
    @ opt_int_field "dst" e.Trace.dst
    @ [ ("detail", Json.String e.Trace.detail) ])

let event_of_json json =
  let open Json in
  match (Option.bind (member "t" json) to_float, Option.bind (member "tag" json) to_str)
  with
  | Some time, Some tag ->
    let detail =
      Option.value ~default:"" (Option.bind (member "detail" json) to_str)
    in
    let int_field name = Option.bind (member name json) to_int in
    Ok
      {
        Trace.time;
        tag;
        op = int_field "op";
        src = int_field "src";
        dst = int_field "dst";
        detail;
      }
  | _ -> Error "trace event needs numeric \"t\" and string \"tag\" fields"

let trace_to_buffer buf trace =
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (Trace.events trace)

let trace_to_string trace =
  let buf = Buffer.create 4096 in
  trace_to_buffer buf trace;
  Buffer.contents buf

let events_of_jsonl text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let rec parse_lines acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Json.parse line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok json -> (
        match event_of_json json with
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        | Ok e -> parse_lines (e :: acc) (lineno + 1) rest))
  in
  parse_lines [] 1 lines

let metrics_to_string registry = Json.to_string (Registry.to_json registry)

(* --- Chrome trace-event / Perfetto export ---

   One complete event (ph "X") per finished span: pid is the peer the
   work ran on (the destination host of message-backed spans; pid 0 is
   the synthetic "ops" process holding root spans), tid is the
   operation id, timestamps are simulated ms scaled to the format's
   microseconds.  Open spans are skipped — the trace clamps children
   into their parents, so every emitted event nests properly in
   ui.perfetto.dev.  Process-name metadata (ph "M") labels each lane. *)

let span_pid (s : Trace.span) =
  match (s.Trace.span_dst, s.Trace.span_src) with
  | Some d, _ -> d
  | None, Some src -> src
  | None, None -> 0

(* Synthetic process holding one thread row per engine lane; far above
   any real host id so Perfetto sorts it after the peer processes. *)
let lanes_pid = 1_000_000_000

let chrome_events ?lane_of trace =
  let spans = Trace.spans trace in
  let pids = Hashtbl.create 16 in
  let lanes_seen = Hashtbl.create 8 in
  let span_event ~pid ~tid (s : Trace.span) stop =
    Json.Obj
      [
        ("name", Json.String s.Trace.phase);
        ("cat", Json.String s.Trace.tier);
        ("ph", Json.String "X");
        ("ts", Json.Float (s.Trace.span_start *. 1000.0));
        ("dur", Json.Float ((stop -. s.Trace.span_start) *. 1000.0));
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ( "args",
          Json.Obj
            [
              ("op", Json.Int s.Trace.span_op);
              ("span", Json.Int s.Trace.span_id);
              ("parent", Json.Int s.Trace.parent);
              ("label", Json.String s.Trace.span_label);
            ] );
      ]
  in
  let events =
    List.concat_map
      (fun (s : Trace.span) ->
        match s.Trace.span_stop with
        | None -> []
        | Some stop ->
          let pid = span_pid s in
          if not (Hashtbl.mem pids pid) then Hashtbl.add pids pid ();
          let per_peer = span_event ~pid ~tid:s.Trace.span_op s stop in
          (* mirror the span onto its engine lane's thread row, so the
             "engine lanes" process shows per-lane occupancy over time *)
          let on_lane =
            match lane_of with
            | None -> []
            | Some f -> (
              match f pid with
              | None -> []
              | Some lane ->
                if not (Hashtbl.mem lanes_seen lane) then
                  Hashtbl.add lanes_seen lane ();
                [ span_event ~pid:lanes_pid ~tid:lane s stop ])
          in
          per_peer :: on_lane)
      spans
  in
  let meta ~pid ~tid ~what name =
    Json.Obj
      [
        ("name", Json.String what);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  let metadata =
    Hashtbl.fold (fun pid () acc -> pid :: acc) pids []
    |> List.sort compare
    |> List.map (fun pid ->
           meta ~pid ~tid:0 ~what:"process_name"
             (if pid = 0 then "ops" else Printf.sprintf "peer %d" pid))
  in
  let lane_metadata =
    match Hashtbl.length lanes_seen with
    | 0 -> []
    | _ ->
      meta ~pid:lanes_pid ~tid:0 ~what:"process_name" "engine lanes"
      :: (Hashtbl.fold (fun lane () acc -> lane :: acc) lanes_seen []
         |> List.sort compare
         |> List.map (fun lane ->
                meta ~pid:lanes_pid ~tid:lane ~what:"thread_name"
                  (Printf.sprintf "lane %d" lane)))
  in
  metadata @ lane_metadata @ events

let trace_to_chrome ?lane_of trace =
  Json.to_string (Json.List (chrome_events ?lane_of trace))

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_trace ~path trace = write_file ~path (trace_to_string trace)

let write_chrome_trace ~path ?lane_of trace =
  write_file ~path (trace_to_chrome ?lane_of trace)

let write_metrics ~path registry = write_file ~path (metrics_to_string registry)

let write_metrics_csv ~path registry = write_file ~path (Registry.to_csv registry)
