module Summary = P2p_stats.Summary
module Registry = P2p_obs.Registry

(* The legacy flat record is now a set of handles into a Registry: every
   recording lands in the registry (where per-subsystem exports read it),
   and every legacy accessor reads back out of it, so the two views cannot
   diverge. *)
type t = {
  registry : Registry.t;
  messages : Registry.counter;
  physical_hops : Registry.counter;
  lookups_issued : Registry.counter;
  lookups_succeeded : Registry.counter;
  lookups_failed : Registry.counter;
  connum : Registry.counter;
  lookup_latency : Registry.histogram;
  lookup_hops : Registry.histogram;
  join_latency : Registry.histogram;
  join_hops : Registry.histogram;
}

let create ?registry () =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  {
    registry;
    messages = Registry.counter registry ~subsystem:"underlay" ~name:"messages";
    physical_hops = Registry.counter registry ~subsystem:"underlay" ~name:"physical_hops";
    lookups_issued = Registry.counter registry ~subsystem:"data_ops" ~name:"lookups_issued";
    lookups_succeeded =
      Registry.counter registry ~subsystem:"data_ops" ~name:"lookups_succeeded";
    lookups_failed = Registry.counter registry ~subsystem:"data_ops" ~name:"lookups_failed";
    connum = Registry.counter registry ~subsystem:"data_ops" ~name:"connum";
    lookup_latency =
      Registry.histogram registry ~subsystem:"data_ops" ~name:"lookup_latency_ms";
    lookup_hops = Registry.histogram registry ~subsystem:"data_ops" ~name:"lookup_hops";
    join_latency =
      Registry.histogram registry ~subsystem:"membership" ~name:"join_latency_ms";
    join_hops = Registry.histogram registry ~subsystem:"membership" ~name:"join_hops";
  }

let registry t = t.registry

let counter t ~subsystem ~name = Registry.counter t.registry ~subsystem ~name

let bump t ~subsystem ~name = Registry.incr (counter t ~subsystem ~name)

let record_message t ~physical_hops =
  Registry.incr t.messages;
  Registry.incr ~by:physical_hops t.physical_hops

let record_lookup_issued t = Registry.incr t.lookups_issued

let record_lookup_success t ~latency ~hops =
  Registry.incr t.lookups_succeeded;
  Registry.observe t.lookup_latency latency;
  Registry.observe t.lookup_hops (float_of_int hops)

let record_lookup_failure t = Registry.incr t.lookups_failed

let record_contact t = Registry.incr t.connum

let record_contacts t n = Registry.incr ~by:n t.connum

let record_join t ~latency ~hops =
  Registry.observe t.join_latency latency;
  Registry.observe t.join_hops (float_of_int hops)

let messages t = Registry.counter_value t.messages
let physical_hops t = Registry.counter_value t.physical_hops
let lookups_issued t = Registry.counter_value t.lookups_issued
let lookups_succeeded t = Registry.counter_value t.lookups_succeeded
let lookups_failed t = Registry.counter_value t.lookups_failed

let failure_ratio t =
  if lookups_issued t = 0 then 0.0
  else float_of_int (lookups_failed t) /. float_of_int (lookups_issued t)

let connum t = Registry.counter_value t.connum

let lookup_latency t = Registry.summary t.lookup_latency
let lookup_hops t = Registry.summary t.lookup_hops
let join_latency t = Registry.summary t.join_latency
let join_hops t = Registry.summary t.join_hops

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages: %d (physical hops %d)@,lookups: %d issued, %d ok, %d failed (ratio %.4f)@,connum: %d@,lookup latency: %a@,join latency: %a@]"
    (messages t) (physical_hops t) (lookups_issued t) (lookups_succeeded t)
    (lookups_failed t) (failure_ratio t) (connum t) Summary.pp (lookup_latency t)
    Summary.pp (join_latency t)
