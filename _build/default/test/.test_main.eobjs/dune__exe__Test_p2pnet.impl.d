test/test_p2pnet.ml: Alcotest P2p_net P2p_sim P2p_stats P2p_topology
