lib/topology/landmark.ml: Array Graph Hashtbl List P2p_sim Printf Routing String
