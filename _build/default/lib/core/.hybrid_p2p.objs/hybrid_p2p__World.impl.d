lib/core/world.ml: Array Config Hashtbl Id_space Interest List Option P2p_hashspace P2p_net P2p_sim P2p_topology Peer
