open P2p_hashspace

type role = T_peer | S_peer

type 'peer pending_join = {
  candidate : 'peer;
  announce : hops:int -> unit;
  hops_so_far : int;
  op : int option;
}

type t = {
  host : int;
  mutable p_id : Id_space.id;
  mutable role : role;
  mutable alive : bool;
  link_capacity : float;
  mutable interest : int option;
  mutable succ : t option;
  mutable pred : t option;
  mutable fingers : t option array;
  mutable joining : bool;
  mutable leaving : bool;
  mutable join_queue : t pending_join list;
  mutable t_home : t option;
  mutable cp : t option;
  mutable children : t list;
  store : Data_store.t;
  replicas : Data_store.t;
  cache : Cache.t;
  summaries : (int, Bloom.t array) Hashtbl.t;
  mutable summaries_epoch : int;
  tracker_index : (string, t) Hashtbl.t;
  mutable bypass : (t * float) list;
  mutable watchdogs : (int, P2p_transport.Transport.timer) Hashtbl.t;
  mutable hello_timer : P2p_transport.Transport.timer option;
  mutable last_ack_sent : float;
}

let make ?(cache_capacity = 0) ?interner ~host ~p_id ~role ~link_capacity
    ?interest () =
  {
    host;
    p_id;
    role;
    alive = true;
    link_capacity;
    interest;
    succ = None;
    pred = None;
    fingers = [||];
    joining = false;
    leaving = false;
    join_queue = [];
    t_home = None;
    cp = None;
    children = [];
    store = Data_store.create ?interner ();
    replicas = Data_store.create ?interner ();
    cache = Cache.create ~capacity:cache_capacity;
    (* initial capacity 1: at million-peer scale these tables are almost
       always empty, and Hashtbl grows them on demand anyway *)
    summaries = Hashtbl.create 1;
    summaries_epoch = -1;
    tracker_index = Hashtbl.create 1;
    bypass = [];
    watchdogs = Hashtbl.create 1;
    hello_timer = None;
    last_ack_sent = neg_infinity;
  }

let is_t_peer p = p.role = T_peer
let is_s_peer p = p.role = S_peer

let segment_left p =
  match p.pred with Some q -> q.p_id | None -> p.p_id

let covers p d_id =
  Id_space.between_incl_right d_id ~left:(segment_left p) ~right:p.p_id

let quiet p =
  p.alive && (not p.joining) && (not p.leaving) && p.join_queue = []

let tree_degree p =
  List.length p.children + (match p.cp with Some _ -> 1 | None -> 0)

let has_free_slot config p =
  tree_degree p < config.Config.delta
  && (not config.Config.link_usage_aware
      || float_of_int (tree_degree p + 1) /. p.link_capacity
         <= config.Config.link_usage_threshold)

let attach_child ~parent ~child =
  child.cp <- Some parent;
  child.t_home <- parent.t_home;
  child.p_id <- parent.p_id;
  parent.children <- child :: parent.children

let detach_child ~parent ~child =
  parent.children <- List.filter (fun c -> c != child) parent.children;
  child.cp <- None

let tree_members root =
  let rec walk acc p = List.fold_left walk (p :: acc) p.children in
  List.rev (walk [] root)

let tree_neighbors p =
  match p.cp with Some parent -> parent :: p.children | None -> p.children

let rec live_subtree_roots children =
  List.concat_map
    (fun c -> if c.alive then [ c ] else live_subtree_roots c.children)
    children

let depth p =
  let rec up acc p = match p.cp with None -> acc | Some parent -> up (acc + 1) parent in
  up 0 p

let live_bypass p ~now =
  let live, dead = List.partition (fun (q, expiry) -> q.alive && expiry > now) p.bypass in
  if dead <> [] then p.bypass <- live;
  List.map fst live

let add_bypass config p target ~now =
  if
    config.Config.bypass_enabled && p != target && p.alive && target.alive
    (* rule 1: only while total degree (tree + bypass) is under δ *)
    && tree_degree p + List.length (live_bypass p ~now) < config.Config.delta
  then begin
    let without = List.filter (fun (q, _) -> q != target) p.bypass in
    p.bypass <- (target, now +. config.Config.bypass_lifetime) :: without
  end

let pp ppf p =
  Format.fprintf ppf "%s#%d(p_id=%#x%s)"
    (match p.role with T_peer -> "t" | S_peer -> "s")
    p.host p.p_id
    (if p.alive then "" else ",dead")
