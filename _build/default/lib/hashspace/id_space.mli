(** Circular identifier space shared by peers and data.

    Peer IDs ([p_id]) and data IDs ([d_id]) live in the same space
    [\[0, 2^bits)], arranged on a ring; a t-peer with ID [p] whose ring
    predecessor has ID [q] owns the clockwise segment [(q, p]].  All the
    interval tests the protocols need (Chord-style [between], clockwise
    distance, midpoint for conflict resolution) live here. *)

type id = int

(** Number of bits of the ID space (30, so every ID fits a native int even
    on 32-bit-boxed platforms). *)
val bits : int

(** Size of the space, [2^bits]. *)
val size : int

(** [valid i] is [true] iff [0 <= i < size]. *)
val valid : id -> bool

(** [normalize i] maps any integer into the space by taking it modulo
    [size] (result is always non-negative). *)
val normalize : int -> id

(** [distance ~src ~dst] is the clockwise distance from [src] to [dst];
    [0] when equal. *)
val distance : src:id -> dst:id -> int

(** [between x ~left ~right] is [true] iff travelling clockwise from [left]
    one meets [x] strictly before [right].  This is the open interval
    [(left, right)] on the ring; when [left = right] the interval is the
    whole ring minus the endpoint. *)
val between : id -> left:id -> right:id -> bool

(** [between_incl_right x ~left ~right] is the half-open interval
    [(left, right]] — the ownership test: t-peer [right] with predecessor
    [left] owns [x] iff this holds. *)
val between_incl_right : id -> left:id -> right:id -> bool

(** [midpoint ~left ~right] is the clockwise midpoint of [(left, right)];
    used by the paper's ID-conflict resolution ([(id + suc.id) / 2] on the
    ring).  When [right] immediately follows [left] there is no interior
    point and the function returns [None]. *)
val midpoint : left:id -> right:id -> id option

(** [add i k] is [i + k] on the ring. *)
val add : id -> int -> id

(** [finger_start ~base k] is [base + 2^k] on the ring — the start of the
    [k]-th Chord finger interval.  @raise Invalid_argument if
    [k < 0 || k >= bits]. *)
val finger_start : base:id -> int -> id

val pp : Format.formatter -> id -> unit
