test/test_extensions.ml: Alcotest Config Data_ops H Helpers Hybrid_p2p List Option P2p_hashspace P2p_net P2p_sim P2p_topology Peer Printf Result World
