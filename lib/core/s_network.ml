module Rng = P2p_sim.Rng

(* Walk from [at] down random branches until a peer with a free slot is
   found, then call [attach at_cp ~hops].  Every forward is a message.
   A hop may arrive at a peer that died while the request was in flight;
   the walk then restarts at the live t-peer now owning the tree's ring
   segment (the server re-resolving the assignment). *)
let rec walk w ?op ~at ~hops ~attach () =
  if not at.Peer.alive then begin
    match World.oracle_owner w at.Peer.p_id with
    | Some root when root.Peer.alive ->
      World.send_span w ?op ~tier:"s_network" ~phase:"tree_walk" ~src:at
        ~dst:root (fun () -> walk w ?op ~at:root ~hops:(hops + 1) ~attach ())
    | Some _ | None -> () (* no live t-peer left: the join is abandoned *)
  end
  else if Peer.has_free_slot w.World.config at || at.Peer.children = [] then
    attach ~cp:at ~hops
  else begin
    let live_children = List.filter (fun c -> c.Peer.alive) at.Peer.children in
    match live_children with
    | [] -> attach ~cp:at ~hops
    | _ ->
      let next = Rng.pick_list w.World.rng live_children in
      World.send_span w ?op ~tier:"s_network" ~phase:"tree_walk" ~src:at
        ~dst:next (fun () -> walk w ?op ~at:next ~hops:(hops + 1) ~attach ())
  end

let join w ?op ~joiner ~root ~on_done () =
  let attach ~cp ~hops =
    Peer.attach_child ~parent:cp ~child:joiner;
    World.register w joiner;
    (match joiner.Peer.t_home with
     | Some home -> World.snet_size_changed w home ~delta:1
     | None -> ());
    World.bump w ~subsystem:"s_network" ~name:"joins_completed";
    (* Completion notice travels back to the joiner. *)
    World.send_span w ?op ~tier:"s_network" ~phase:"join_reply" ~src:cp
      ~dst:joiner (fun () -> on_done ~hops:(hops + 1) ~cp)
  in
  walk w ?op ~at:root ~hops:0 ~attach ()

let rec set_subtree_home_peer ~home peer =
  peer.Peer.t_home <- Some home;
  peer.Peer.p_id <- home.Peer.p_id;
  List.iter (set_subtree_home_peer ~home) peer.Peer.children

let set_subtree_home _w ~root ~home = set_subtree_home_peer ~home root

let rejoin_subtree w ?op ~child ~root ~on_done () =
  World.bump w ~subsystem:"s_network" ~name:"rejoins";
  let attach ~cp ~hops =
    Peer.attach_child ~parent:cp ~child;
    (* attach_child only rewires the child itself; carry the subtree. *)
    set_subtree_home_peer ~home:(Option.get cp.Peer.t_home) child;
    (* the rejoining subtree carries data the receiving tree's edge
       summaries know nothing about *)
    Summaries.invalidate_tree cp;
    on_done ~hops
  in
  walk w ?op ~at:root ~hops:0 ~attach ()

(* Synchronous variant used by offline repair: same random walk, no
   messages (repair models the *outcome* of recovery, not its timing). *)
let rejoin_subtree_sync w ~child ~root =
  let rec walk at =
    if Peer.has_free_slot w.World.config at || at.Peer.children = [] then at
    else walk (Rng.pick_list w.World.rng at.Peer.children)
  in
  let cp = walk root in
  Peer.attach_child ~parent:cp ~child;
  set_subtree_home_peer ~home:(Option.get cp.Peer.t_home) child;
  Summaries.invalidate_tree cp

let leave w ?op peer =
  if Peer.is_t_peer peer then invalid_arg "S_network.leave: t-peer";
  if not peer.Peer.alive then invalid_arg "S_network.leave: dead peer";
  World.bump w ~subsystem:"s_network" ~name:"leaves";
  let home = Option.get peer.Peer.t_home in
  (* the departing peer's load moves one hop up: ancestor summaries now
     misplace those keys by one level, so stop pruning until a rebuild *)
  Summaries.invalidate_tree home;
  (* Transfer the data load to the connect point. *)
  (match peer.Peer.cp with
   | Some cp ->
     List.iter
       (fun (key, value, route_id) -> Data_store.insert_routed cp.Peer.store ~route_id ~key ~value)
       (Data_store.take_all peer.Peer.store)
   | None -> ());
  (match peer.Peer.cp with
   | Some cp -> Peer.detach_child ~parent:cp ~child:peer
   | None -> ());
  peer.Peer.alive <- false;
  World.unregister w peer;
  World.snet_size_changed w home ~delta:(-1);
  (* Children rejoin through the t-peer, carrying their subtrees; live
     subtrees below already-dead children are rescued too. *)
  let orphans = Peer.live_subtree_roots peer.Peer.children in
  peer.Peer.children <- [];
  List.iter
    (fun child ->
      child.Peer.cp <- None;
      World.send_span w ?op ~tier:"s_network" ~phase:"rejoin" ~src:child
        ~dst:home (fun () ->
          rejoin_subtree w ?op ~child ~root:home ~on_done:(fun ~hops:_ -> ()) ()))
    orphans

let flood w ?op ?prune_key ~from ~ttl ~visit () =
  World.bump w ~subsystem:"s_network" ~name:"floods";
  (* A keyed flood rebuilds the tree's edge summaries if they went stale —
     synchronous, like the other oracle-style maintenance: we model the
     outcome of background summary propagation, not its timing. *)
  (match prune_key with Some _ -> Summaries.ensure_fresh w from | None -> ());
  let rec deliver peer ~depth ~sender =
    World.bump w ~subsystem:"s_network" ~name:"flood_visits";
    (match (sender, w.World.on_query) with
     | Some s, Some hook -> hook ~receiver:peer ~sender:s
     | (None, _ | _, None) -> ());
    let keep_forwarding = visit peer ~depth in
    if depth < ttl && keep_forwarding then begin
      (* Freshness is re-checked at every hop: if churn invalidated the
         summaries while this flood was in flight, pruning stops and the
         flood degrades to the full tree visit. *)
      let prune =
        match prune_key with
        | Some _ ->
          Summaries.enabled w && Summaries.fresh w (Summaries.tree_root peer)
        | None -> false
      in
      let next_hops =
        List.filter
          (fun q -> q.Peer.alive && (match sender with Some s -> q != s | None -> true))
          (Peer.tree_neighbors peer)
      in
      let next_hops =
        if not prune then next_hops
        else
          List.filter
            (fun q ->
              (* only child edges carry summaries; the upward (cp) edge is
                 never pruned *)
              let is_child =
                match peer.Peer.cp with Some c -> c != q | None -> true
              in
              (not is_child)
              ||
              let key = Option.get prune_key in
              let may = Summaries.child_may_hold peer q ~budget:(ttl - depth) ~key in
              if not may then
                World.bump w ~subsystem:"s_network" ~name:"flood_pruned";
              may)
            next_hops
      in
      (* the hottest fan-out in the system: batch the per-child event
         insertions into one heap pass (a single hop is just a send) *)
      let fan_out () =
        List.iter
          (fun q ->
            World.send_span w ?op ~tier:"s_network" ~phase:"flood" ~src:peer
              ~dst:q (fun () -> deliver q ~depth:(depth + 1) ~sender:(Some peer)))
          next_hops
      in
      match next_hops with
      | [] | [ _ ] -> fan_out ()
      | _ -> World.batch w fan_out
    end
  in
  deliver from ~depth:0 ~sender:None

let check_tree ~delta root =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () =
    if Peer.is_t_peer root then Ok ()
    else Error (Printf.sprintf "root #%d is not a t-peer" root.Peer.host)
  in
  let* () =
    match root.Peer.cp with
    | None -> Ok ()
    | Some _ -> Error (Printf.sprintf "root #%d has a connect point" root.Peer.host)
  in
  let seen = Hashtbl.create 64 in
  let rec check peer =
    if Hashtbl.mem seen peer.Peer.host then
      Error (Printf.sprintf "cycle at peer #%d" peer.Peer.host)
    else begin
      Hashtbl.add seen peer.Peer.host ();
      let* () =
        if Peer.tree_degree peer <= delta then Ok ()
        else Error (Printf.sprintf "peer #%d exceeds degree %d" peer.Peer.host delta)
      in
      let* () =
        match peer.Peer.t_home with
        | Some home when home == root -> Ok ()
        | Some home ->
          Error
            (Printf.sprintf "peer #%d: t_home is #%d, expected #%d" peer.Peer.host
               home.Peer.host root.Peer.host)
        | None -> Error (Printf.sprintf "peer #%d: no t_home" peer.Peer.host)
      in
      let* () =
        if peer.Peer.p_id = root.Peer.p_id then Ok ()
        else Error (Printf.sprintf "peer #%d: p_id differs from root" peer.Peer.host)
      in
      let rec check_children = function
        | [] -> Ok ()
        | child :: rest ->
          let* () =
            match child.Peer.cp with
            | Some cp when cp == peer -> Ok ()
            | Some _ | None ->
              Error
                (Printf.sprintf "child #%d: cp does not point to parent #%d"
                   child.Peer.host peer.Peer.host)
          in
          let* () = check child in
          check_children rest
      in
      check_children peer.Peer.children
    end
  in
  let* () =
    match root.Peer.t_home with
    | Some home when home == root -> Ok ()
    | Some _ | None -> Error (Printf.sprintf "root #%d: t_home not itself" root.Peer.host)
  in
  check root
