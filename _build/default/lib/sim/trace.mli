(** Bounded in-memory event tracing.

    A trace is a ring buffer of timestamped, tagged events.  Subsystems
    record what they do ([message], [join], [lookup], ...); tests and
    debugging sessions inspect, filter, or dump the buffer.  Keeping the
    buffer bounded makes tracing safe to leave enabled in long experiments
    — old events fall off the back.

    Recording through a disabled trace is a no-op costing one branch, so
    library code can trace unconditionally. *)

type t

type event = {
  time : float;  (** simulated ms *)
  tag : string;  (** category, e.g. ["message"], ["join"], ["crash"] *)
  detail : string;
}

(** [create ~capacity ()] makes a trace keeping the last [capacity]
    events.  @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> unit -> t

(** A trace that drops everything (the default wiring). *)
val disabled : t

(** [enabled t] — does recording do anything? *)
val enabled : t -> bool

(** [record t ~time ~tag detail] appends an event (dropping the oldest if
    full). *)
val record : t -> time:float -> tag:string -> string -> unit

(** [record_f t ~time ~tag fmt ...] — like {!record} with a format string;
    the message is not built when the trace is disabled. *)
val record_f : t -> time:float -> tag:string -> ('a, unit, string, unit) format4 -> 'a

(** Number of events currently retained. *)
val length : t -> int

(** Total events ever recorded (including dropped ones). *)
val total_recorded : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

(** [find t ~tag] retains only events with the given tag, oldest first. *)
val find : t -> tag:string -> event list

(** [clear t] empties the buffer (the total count survives). *)
val clear : t -> unit

(** [pp ppf t] prints one event per line: ["%.3f [tag] detail"]. *)
val pp : Format.formatter -> t -> unit
