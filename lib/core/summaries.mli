(** Attenuated Bloom summaries of s-tree branches — the flood pruner.

    Every peer keeps, per tree child, an array of {!Bloom} filters
    summarizing the keys stored in that child's subtree bucketed by depth:
    level [i] holds the keys exactly [i+1] hops below the peer, and the
    last level absorbs everything deeper (the classic attenuated Bloom
    filter).  {!S_network.flood} consults these summaries to skip branches
    that cannot hold the looked-up key, turning the paper's whole-tree
    flood into a near-directed walk.

    Correctness contract: a {e fresh} summary may err only toward false
    positives (extra messages), never false negatives (missed data).
    Inserts extend fresh summaries in place ({!note_stored}); structural
    changes that move data in ways cheap in-place updates cannot track
    (leaves, subtree rejoins, ring membership changes, replication heals)
    mark the tree — or every tree, via {!World.t}'s [summary_epoch] —
    stale, floods stop pruning, and the next keyed flood rebuilds the
    tree's summaries in one walk ({!ensure_fresh}).  The [bloom_coverage]
    audit check verifies the contract against oracle placement. *)

(** Summaries are on iff [bloom_bits_per_key > 0] in the configuration. *)
val enabled : World.t -> bool

(** The root of the s-tree [peer] belongs to ([peer] itself when it has no
    [t_home]). *)
val tree_root : Peer.t -> Peer.t

(** [fresh w root] — were [root]'s tree summaries rebuilt against the
    current summary epoch (and not invalidated since)? *)
val fresh : World.t -> Peer.t -> bool

(** Mark the summaries of [peer]'s tree stale; floods through it stop
    pruning until the next rebuild. *)
val invalidate_tree : Peer.t -> unit

(** Mark every tree's summaries stale (bumps the world's summary epoch). *)
val invalidate_all : World.t -> unit

(** [rebuild w root] recomputes every edge summary of [root]'s tree in one
    postorder walk and stamps the tree fresh. *)
val rebuild : World.t -> Peer.t -> unit

(** [ensure_fresh w peer] rebuilds [peer]'s tree summaries iff summaries
    are enabled and the tree is stale — the lazy entry point floods use. *)
val ensure_fresh : World.t -> Peer.t -> unit

(** [note_stored w ~holder ~key] extends the fresh summaries on [holder]'s
    root path after [key] landed at [holder] (primary or replica copy).
    No-op on stale trees — the pending rebuild sees the key anyway. *)
val note_stored : World.t -> holder:Peer.t -> key:string -> unit

(** [child_may_hold peer child ~budget ~key] — may a flood with [budget]
    remaining forwards find [key] somewhere in [child]'s subtree?  [true]
    when no summary exists for the edge (never prune blind).  Only
    meaningful while the tree is fresh. *)
val child_may_hold : Peer.t -> Peer.t -> budget:int -> key:string -> bool
