bench/main.mli:
