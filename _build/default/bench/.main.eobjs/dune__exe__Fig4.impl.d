bench/fig4.ml: Config Experiments H List P2p_stats Stdlib
