test/test_stats.ml: Alcotest List P2p_stats
