(** [p2psim serve] orchestration: fork [peers] worker processes each
    running one {!Live_node} on [127.0.0.1:(port_base + node)], act as
    the client from the parent, and (in smoke mode) drive an
    insert/lookup workload, compute recall, scrape every node's
    observability snapshot mid-run (merged cluster metrics, merged
    chrome trace, SLO and trace-overhead gates) and scan the workers'
    JSONL health dumps for violations.

    The scrape path is also exposed standalone (see {!aggregator}) for
    [p2psim top] / [p2psim cluster-report], which poll a serving ring
    they did not fork. *)

type outcome = {
  ready_nodes : int;
  inserts_ok : int;
  lookups_found : int;
  lookups_total : int;
  recall : float;  (** found / total lookups, smoke mode *)
  violations : int;  (** summed from final health-dump lines *)
  decode_errors : int;
  scraped : int;  (** nodes that answered the mid-run scrape *)
  slo_ok : bool;  (** [--slo] specs held on the merged registry *)
  trace_overhead_pct : float;
      (** wire-v2 trace bytes as a percentage of what the same traffic
          would cost under v1 framing *)
  exit_code : int;  (** 0 = ring formed, recall 1.0, dumps clean, gates ok *)
}

(** [run ~peers ~port_base ~smoke ()] forks the ring and returns after
    shutdown (smoke mode) or after SIGINT/SIGTERM (serve mode).
    [dump_dir] (default ["_serve_health"]) receives
    [health-<node>.jsonl] per worker plus, in smoke mode,
    [scrape-<node>.json], [cluster-metrics.json] and
    [cluster-trace.chrome.json].  [sample_rate]/[sample_seed] (default
    0.01 / 0) set cluster-wide trace sampling; [slo] holds
    [metric:pNN<=value] specs enforced against the merged registry.
    Workers dump their flight recorder on SIGTERM/SIGINT before
    exiting.  [linger] (smoke mode, default 0) keeps the warmed-up ring
    serving that many extra seconds after the scrape, so an external
    {!aggregator} can poll populated histograms;
    [cluster-metrics.json] appearing in [dump_dir] marks the window's
    start. *)
val run :
  ?inserts:int ->
  ?lookups:int ->
  ?ready_timeout:float ->
  ?dump_dir:string ->
  ?sample_rate:float ->
  ?sample_seed:int ->
  ?slo:string list ->
  ?linger:float ->
  peers:int ->
  port_base:int ->
  smoke:bool ->
  unit ->
  outcome

val print_outcome : outcome -> unit

(** A scrape-only client for an already-serving ring.  It joins the
    fabric as node index [peers + 1] (the forking orchestrator holds
    [peers]); ring members learn its listen port from the scrape
    request frame itself, so no pre-registration is needed. *)
type aggregator

val aggregator : peers:int -> port_base:int -> unit -> aggregator

(** One scrape round: request a snapshot from every ring node, pump
    until all replied or [timeout] (default 5s) elapsed, return the
    parsed snapshots sorted by node.  [spans] asks nodes to include
    their retained chrome span events. *)
val aggregator_scrape :
  aggregator ->
  ?spans:bool ->
  ?timeout:float ->
  unit ->
  P2p_obs.Scrape.snapshot list

val aggregator_stop : aggregator -> unit
