test/test_workload.ml: Alcotest Array Hashtbl List P2p_hashspace P2p_sim P2p_workload
