test/test_topology.ml: Alcotest Array List P2p_sim P2p_topology
