(* Tests for Data_ops corner cases and the Failure machinery. *)

open Helpers
module Metrics = P2p_net.Metrics
module Data_store = Hybrid_p2p.Data_store
module Id_space = P2p_hashspace.Id_space

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Data_store --- *)

let test_store_basic () =
  let s = Data_store.create () in
  checki "empty" 0 (Data_store.size s);
  Data_store.insert s ~key:"a" ~value:"1";
  Data_store.insert s ~key:"b" ~value:"2";
  Data_store.insert s ~key:"a" ~value:"3";
  checki "replace not duplicate" 2 (Data_store.size s);
  Alcotest.check (Alcotest.option Alcotest.string) "updated" (Some "3")
    (Data_store.find s ~key:"a");
  checkb "mem" true (Data_store.mem s ~key:"b");
  Data_store.remove s ~key:"b";
  checkb "removed" false (Data_store.mem s ~key:"b")

let test_store_take_segment () =
  let s = Data_store.create () in
  for i = 0 to 99 do
    Data_store.insert s ~key:(Printf.sprintf "seg-%d" i) ~value:"v"
  done;
  (* split the space in half; the two segments must partition the store *)
  let mid = Id_space.size / 2 in
  let first = Data_store.take_segment s ~left:0 ~right:mid in
  let second = Data_store.take_segment s ~left:mid ~right:0 in
  checki "partition covers all" 100 (List.length first + List.length second);
  checki "store drained" 0 (Data_store.size s);
  List.iter
    (fun (_, _, route_id) ->
      checkb "in first segment" true
        (Id_space.between_incl_right route_id ~left:0 ~right:mid))
    first

let test_store_take_segment_wraparound () =
  (* a segment with left > right wraps through zero: (size-100, 50] *)
  let s = Data_store.create () in
  let left = Id_space.size - 100 and right = 50 in
  Data_store.insert_routed s ~route_id:(Id_space.size - 50) ~key:"hi-side" ~value:"v";
  Data_store.insert_routed s ~route_id:20 ~key:"lo-side" ~value:"v";
  Data_store.insert_routed s ~route_id:right ~key:"right-edge" ~value:"v";
  Data_store.insert_routed s ~route_id:left ~key:"left-edge" ~value:"v";
  Data_store.insert_routed s ~route_id:500 ~key:"outside" ~value:"v";
  let taken = Data_store.take_segment s ~left ~right in
  let keys = List.sort compare (List.map (fun (k, _, _) -> k) taken) in
  (* half-open (left, right]: the left edge stays, the right edge moves *)
  Alcotest.check (Alcotest.list Alcotest.string) "wrapped segment"
    [ "hi-side"; "lo-side"; "right-edge" ] keys;
  checki "others untouched" 2 (Data_store.size s);
  checkb "left edge stays" true (Data_store.mem s ~key:"left-edge");
  checkb "outside stays" true (Data_store.mem s ~key:"outside")

let test_store_segment_items_wraparound () =
  (* the non-destructive view agrees with take_segment across the wrap,
     and the digest tracks segment content *)
  let s = Data_store.create () in
  let left = Id_space.size - 10 and right = 10 in
  Data_store.insert_routed s ~route_id:(Id_space.size - 3) ~key:"a" ~value:"1";
  Data_store.insert_routed s ~route_id:7 ~key:"b" ~value:"2";
  Data_store.insert_routed s ~route_id:9999 ~key:"c" ~value:"3";
  let viewed = Data_store.segment_items s ~left ~right in
  checki "view is non-destructive" 3 (Data_store.size s);
  let d_before = Data_store.segment_digest s ~left ~right in
  checki "digest matches viewed items" d_before (Data_store.digest_items viewed);
  let taken = Data_store.take_segment s ~left ~right in
  checki "view agrees with take" (List.length viewed) (List.length taken);
  checkb "digest changes when segment drained" true
    (Data_store.segment_digest s ~left ~right <> d_before)

let test_store_take_all () =
  let s = Data_store.create () in
  Data_store.insert s ~key:"x" ~value:"1";
  Data_store.insert s ~key:"y" ~value:"2";
  let all = Data_store.take_all s in
  checki "two items" 2 (List.length all);
  checki "empty after" 0 (Data_store.size s)

(* --- Data_ops --- *)

let test_insert_local_stays_home () =
  let h, _ = star_system ~seed:40 ~n:60 ~ps:0.7 () in
  (* craft a key owned by the peer's own s-network *)
  let p = H.random_peer h in
  let home = Option.get p.Peer.t_home in
  let rec find_local i =
    let key = Printf.sprintf "local-%d" i in
    if Peer.covers home (P2p_hashspace.Key_hash.of_string key) then key
    else find_local (i + 1)
  in
  let key = find_local 0 in
  let holder = ref None in
  H.insert h ~from:p ~key ~value:"v" ~on_done:(fun ~holder:hl ~hops:_ -> holder := Some hl) ();
  H.run h;
  match !holder with
  | None -> Alcotest.fail "insert never completed"
  | Some holder ->
    checkb "stored at the generating peer itself" true (holder == p)

let test_insert_remote_lands_in_owner_segment () =
  let h, _ = star_system ~seed:41 ~n:60 ~ps:0.7 () in
  let p = H.random_peer h in
  let home = Option.get p.Peer.t_home in
  let rec find_remote i =
    let key = Printf.sprintf "remote-%d" i in
    if Peer.covers home (P2p_hashspace.Key_hash.of_string key) then find_remote (i + 1)
    else key
  in
  let key = find_remote 0 in
  let holder = ref None in
  H.insert h ~from:p ~key ~value:"v" ~on_done:(fun ~holder:hl ~hops:_ -> holder := Some hl) ();
  H.run h;
  match !holder with
  | None -> Alcotest.fail "insert never completed"
  | Some holder ->
    let holder_home = Option.get holder.Peer.t_home in
    checkb "holder's s-network serves the key" true
      (Peer.covers holder_home (P2p_hashspace.Key_hash.of_string key))

let test_lookup_ttl_zero_vs_large () =
  (* deep item in a big s-network: ttl 0 from the t-peer misses it unless
     the t-peer holds it; a large ttl finds it *)
  let config = { default_config with Config.placement = Config.Store_at_tpeer } in
  let h, _ = star_system ~config ~seed:42 ~n:80 ~ps:0.9 () in
  ignore (insert_items h ~count:100 : string list);
  (* place an item by hand at the deepest leaf of the s-network that owns
     its d_id, so the query's flood is what must reach it *)
  let w = H.world h in
  let owner =
    Option.get (World.oracle_owner w (P2p_hashspace.Key_hash.of_string "deep-item"))
  in
  let deep =
    List.fold_left
      (fun best p -> if Peer.depth p > Peer.depth best then p else best)
      owner (Peer.tree_members owner)
  in
  checkb "found a deep peer" true (Peer.depth deep >= 2);
  Data_store.insert deep.Peer.store ~key:"deep-item" ~value:"v";
  (* lookup from another s-network so the query goes through the ring and
     floods from the t-peer *)
  let other =
    List.find
      (fun p -> Option.get p.Peer.t_home != Option.get deep.Peer.t_home)
      (H.peers h)
  in
  let r0 = lookup_sync h ~from:other ~key:"deep-item" ~ttl:0 () in
  checkb "ttl 0 misses deep item" false (found r0);
  let r8 = lookup_sync h ~from:other ~key:"deep-item" ~ttl:8 () in
  checkb "ttl 8 finds it" true (found r8)

let test_connum_counts_ring_contacts () =
  let h, _ = star_system ~seed:43 ~n:50 ~ps:0.0 () in
  ignore (insert_items h ~count:20 : string list);
  let before = Metrics.connum (H.metrics h) in
  let r = lookup_sync h ~from:(H.random_peer h) ~key:"item-00000" () in
  checkb "found" true (found r);
  let per_lookup = Metrics.connum (H.metrics h) - before in
  (* pure ring walk: expect on the order of N/2 contacts *)
  checkb (Printf.sprintf "ring-walk connum %d" per_lookup) true
    (per_lookup >= 1 && per_lookup <= 50)

let test_lookup_latency_metrics_only_successes () =
  let h, _ = star_system ~seed:44 ~n:40 ~ps:0.5 () in
  ignore (insert_items h ~count:10 : string list);
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:"item-00001" () : Data_ops.lookup_outcome);
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:"missing" () : Data_ops.lookup_outcome);
  let m = H.metrics h in
  checki "one success" 1 (Metrics.lookups_succeeded m);
  checki "one failure" 1 (Metrics.lookups_failed m);
  checki "latency samples = successes" 1
    (P2p_stats.Summary.count (Metrics.lookup_latency m))

(* --- Failure --- *)

let test_crash_dead_peer_rejected () =
  let h, _ = star_system ~seed:45 ~n:20 ~ps:0.5 () in
  let p = H.random_peer h in
  H.crash h p;
  Alcotest.check_raises "double crash" (Invalid_argument "Failure.crash: peer already dead")
    (fun () -> H.crash h p)

let test_repair_counts_sizes () =
  let h, _ = star_system ~seed:46 ~n:60 ~ps:0.8 () in
  let w = H.world h in
  (* crash a third of the s-peers *)
  let victims =
    List.filteri (fun i _ -> i mod 3 = 0) (List.filter Peer.is_s_peer (H.peers h))
  in
  List.iter (H.crash h) victims;
  H.repair h;
  H.run h;
  ok_invariants h;
  (* size table matches reality *)
  Array.iter
    (fun tp ->
      checki
        (Printf.sprintf "size of s-network at #%d" tp.Peer.host)
        (List.length (Peer.tree_members tp) - 1)
        (World.snet_size w tp))
    (World.t_peers w)

let test_repair_smallest_host_promoted () =
  let h, _ = star_system ~seed:47 ~n:40 ~ps:0.8 () in
  let victim = List.find (fun p -> Peer.is_t_peer p && p.Peer.children <> []) (H.peers h) in
  let members =
    List.filter (fun m -> m != victim) (Peer.tree_members victim)
  in
  let smallest =
    List.fold_left (fun b m -> if m.Peer.host < b.Peer.host then m else b)
      (List.hd members) members
  in
  let old_pid = victim.Peer.p_id in
  H.crash h victim;
  H.repair h;
  H.run h;
  checkb "smallest-address survivor promoted" true
    (Peer.is_t_peer smallest && smallest.Peer.p_id = old_pid);
  ok_invariants h

let test_repair_idempotent () =
  let h, _ = star_system ~seed:48 ~n:50 ~ps:0.7 () in
  List.iter (H.crash h) (List.filteri (fun i _ -> i mod 7 = 0) (H.peers h));
  H.repair h;
  H.run h;
  ok_invariants h;
  H.repair h;
  H.run h;
  ok_invariants h

let test_cascading_crashes_online () =
  let config =
    { default_config with Config.heartbeats = true; hello_period = 10.0;
      hello_timeout = 35.0 }
  in
  let h, _ = star_system ~config ~seed:49 ~n:50 ~ps:0.7 () in
  (* crash several peers at once, including t-peers *)
  let victims = List.filteri (fun i _ -> i mod 6 = 0) (H.peers h) in
  List.iter (H.crash h) victims;
  H.run_for h 2000.0;
  ok_invariants h;
  checki "population" (50 - List.length victims) (H.peer_count h)

let test_lost_fraction_matches_crash_fraction () =
  (* data loss after a crash storm should be roughly proportional to the
     crashed fraction under the spread placement *)
  let h, _ = star_system ~seed:50 ~n:100 ~ps:0.7 () in
  ignore (insert_items h ~count:1000 : string list);
  let before = H.total_items h in
  let victims = List.filteri (fun i _ -> i mod 5 = 0) (H.peers h) in
  List.iter (H.crash h) victims;
  H.repair h;
  H.run h;
  let lost = before - H.total_items h in
  let lost_fraction = float_of_int lost /. float_of_int before in
  checkb
    (Printf.sprintf "lost fraction %.2f near 0.20" lost_fraction)
    true
    (lost_fraction > 0.05 && lost_fraction < 0.45)

let test_partitioned_insert_rehomed () =
  (* regression: items written while the only t-peer was crashed (the
     writer's s-network orphaned) must be re-homed by repair so the
     placement invariant holds and the items stay findable *)
  let h = H.create_star ~seed:51 ~peers:16 () in
  let t0 = H.join h ~host:0 () in
  H.run h;
  let s1 = H.join h ~host:1 ~role:Peer.S_peer () in
  H.run h;
  H.crash h t0;
  (* the orphan writes while partitioned *)
  H.insert h ~from:s1 ~key:"orphan-item" ~value:"v" ();
  H.run h;
  (* a new t-peer bootstraps a fresh ring *)
  ignore (H.join h ~host:2 ~role:Peer.T_peer () : Peer.t);
  H.run h;
  H.repair h;
  H.run h;
  ok_invariants h;
  let r = lookup_sync h ~from:(H.random_peer h) ~key:"orphan-item" () in
  checkb "re-homed item findable" true (found r)

let test_join_survives_empty_ring_race () =
  (* regression: a t-join in flight while the last t-peer leaves must not
     be dropped — the joiner retries and bootstraps a fresh ring *)
  let h = H.create_star ~seed:52 ~peers:16 () in
  let a = H.join h ~host:0 ~p_id:0 () in
  H.run h;
  let joiners =
    List.init 3 (fun i -> H.join h ~host:(1 + i) ~p_id:((i + 1) * 1000) ~role:Peer.T_peer ())
  in
  H.leave h a ();
  H.run h;
  checki "all joiners made it" 3 (H.peer_count h);
  List.iter (fun p -> checkb "wired" true (p.Peer.succ <> None)) joiners;
  ok_invariants h

let suite =
  [
    Alcotest.test_case "data_store: basics" `Quick test_store_basic;
    Alcotest.test_case "data_store: take_segment partitions" `Quick test_store_take_segment;
    Alcotest.test_case "data_store: take_segment wraps through zero" `Quick
      test_store_take_segment_wraparound;
    Alcotest.test_case "data_store: segment view/digest across wrap" `Quick
      test_store_segment_items_wraparound;
    Alcotest.test_case "data_store: take_all" `Quick test_store_take_all;
    Alcotest.test_case "insert: local stays home" `Quick test_insert_local_stays_home;
    Alcotest.test_case "insert: remote lands in owner segment" `Quick
      test_insert_remote_lands_in_owner_segment;
    Alcotest.test_case "lookup: ttl gates deep items" `Quick test_lookup_ttl_zero_vs_large;
    Alcotest.test_case "lookup: connum counts ring walk" `Quick
      test_connum_counts_ring_contacts;
    Alcotest.test_case "lookup: latency only on success" `Quick
      test_lookup_latency_metrics_only_successes;
    Alcotest.test_case "failure: double crash rejected" `Quick test_crash_dead_peer_rejected;
    Alcotest.test_case "failure: repair recounts sizes" `Quick test_repair_counts_sizes;
    Alcotest.test_case "failure: smallest host promoted" `Quick
      test_repair_smallest_host_promoted;
    Alcotest.test_case "failure: repair idempotent" `Quick test_repair_idempotent;
    Alcotest.test_case "failure: cascading crashes online" `Quick
      test_cascading_crashes_online;
    Alcotest.test_case "failure: loss proportional to crashes" `Quick
      test_lost_fraction_matches_crash_fraction;
    Alcotest.test_case "failure: partitioned insert re-homed" `Quick
      test_partitioned_insert_rehomed;
    Alcotest.test_case "failure: join survives empty-ring race" `Quick
      test_join_survives_empty_ring_race;
  ]
