(** Restartable one-shot and periodic timers on top of {!Engine}.

    The hybrid protocol of the paper leans heavily on timers: periodic HELLO
    heartbeats, per-neighbour crash-detection timeouts, lookup expiration
    timers, acknowledgment suppress timers and bypass-link expiry.  This
    module gives them a uniform interface with cheap reset (the paper resets
    a neighbour's timer on every HELLO or acknowledgment received). *)

type t

(** [one_shot engine ~delay f] arms a timer firing [f] once after [delay].
    The timer may be {!reset} (rearmed for a fresh [delay]) or {!cancel}ed
    before it fires.  [label] (default ["timer"]) is the engine profiling
    label of the scheduled event. *)
val one_shot : ?label:string -> Engine.t -> delay:float -> (unit -> unit) -> t

(** [periodic engine ~period f] fires [f] every [period], starting one
    [period] from now, until cancelled. *)
val periodic : ?label:string -> Engine.t -> period:float -> (unit -> unit) -> t

(** [reset t] rearms the timer: a one-shot fires a full delay from now, a
    periodic's next tick moves to one period from now.  Resetting a
    cancelled or already-fired one-shot re-arms it. *)
val reset : t -> unit

(** [cancel t] disarms the timer permanently until the next [reset].
    Cancelling a timer that already fired is a silent no-op counted under
    {!cancel_late} — it leaves no ghost entry in the event queue.
    Cancelling an already-cancelled timer is an uncounted no-op. *)
val cancel : t -> unit

(** [active t] is [true] iff the timer is armed. *)
val active : t -> bool

(** Process-wide count of cancels that arrived after their timer had
    already fired.  The live transport's wall-clock wheel shares this
    counter so sim and live runs export one [timer/cancel_late] figure. *)
val cancel_late : unit -> int

(** Bump the shared late-cancel counter — for alternative timer
    implementations (the live transport's wall-clock wheel) that keep the
    same cancel semantics. *)
val note_cancel_late : unit -> unit
