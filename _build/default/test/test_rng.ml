(* Tests for P2p_sim.Rng: determinism, ranges, splitting, sampling. *)

module Rng = P2p_sim.Rng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checkb "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a : int64);
  let b = Rng.copy a in
  Alcotest.check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a : int64);
  (* advancing a does not advance b *)
  let a2 = Rng.bits64 a and b2 = Rng.bits64 b in
  checkb "diverged" true (a2 <> b2)

let test_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0 : int))

let test_int_in_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:(-5) ~hi:5 in
    checkb "in range" true (v >= -5 && v <= 5)
  done;
  check Alcotest.int "singleton range" 9 (Rng.int_in_range r ~lo:9 ~hi:9)

let test_int_uniformity () =
  let r = Rng.create 11 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 10 in
      checkb (Printf.sprintf "bucket %d near uniform" i) true
        (abs (c - expected) < expected / 5))
    counts

let test_float_range () =
  let r = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    checkb "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let r = Rng.create 17 in
  let sum = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int trials in
  checkb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let r = Rng.create 19 in
  checkb "p=0 false" false (Rng.bernoulli r 0.0);
  checkb "p=1 true" true (Rng.bernoulli r 1.0);
  checkb "p<0 false" false (Rng.bernoulli r (-1.0));
  checkb "p>1 true" true (Rng.bernoulli r 2.0)

let test_bernoulli_rate () =
  let r = Rng.create 23 in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let r = Rng.create 29 in
  let sum = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Rng.exponential r ~mean:4.0 in
    checkb "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int trials in
  checkb "mean near 4" true (abs_float (mean -. 4.0) < 0.15)

let test_split_independent () =
  let a = Rng.create 31 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checkb "split streams differ" true (!same < 4)

let test_pick () =
  let r = Rng.create 37 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r arr in
    checkb "element of array" true (Array.exists (fun x -> x = v) arr)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||] : int))

let test_pick_list () =
  let r = Rng.create 41 in
  check Alcotest.int "singleton" 5 (Rng.pick_list r [ 5 ]);
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list")
    (fun () -> ignore (Rng.pick_list r [] : int))

let test_shuffle_permutation () =
  let r = Rng.create 43 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_shuffle_actually_shuffles () =
  let r = Rng.create 47 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle r arr;
  let fixed = ref 0 in
  Array.iteri (fun i v -> if i = v then incr fixed) arr;
  checkb "most elements moved" true (!fixed < 20)

let test_sample_without_replacement () =
  let r = Rng.create 53 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement r ~k:10 arr in
  check Alcotest.int "size" 10 (Array.length s);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      checkb "no duplicates" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ();
      checkb "from source" true (v >= 0 && v < 20))
    s;
  check Alcotest.int "k = 0" 0 (Array.length (Rng.sample_without_replacement r ~k:0 arr));
  check Alcotest.int "k = n" 20 (Array.length (Rng.sample_without_replacement r ~k:20 arr));
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement r ~k:21 arr : int array))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "pick_list" `Quick test_pick_list;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle moves elements" `Quick test_shuffle_actually_shuffles;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
  ]
