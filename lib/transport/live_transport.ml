(* Live backend of the transport seam: non-blocking TCP with a
   [Unix.select] event loop.

   Each peer is a node index mapped to a socket address.  Outbound
   connections are dialled on first send and carry a per-connection
   state machine — [Connecting] (non-blocking connect in flight),
   [Connected], [Backoff] (connect refused/reset; retry with exponential
   backoff), [Closed].  Frames queued while a connection is down are
   kept and flushed on reconnect; a fresh [Hello] handshake frame is
   written first on every (re)connect so the remote can attribute the
   connection.  Sends are windowed: once a connection's queued bytes
   exceed the window the send still queues but a [window_stalls]
   counter records the backpressure, and past the hard [max_queued]
   cap the frame is dropped and counted in [drops] — a dead or
   never-listening peer costs bounded memory, not monotonic growth.

   SIGPIPE is ignored at [create] so a write to a peer-closed socket
   surfaces as [Unix_error EPIPE] and goes through the backoff/retry
   machinery instead of killing the process with the signal's default
   disposition.

   Inbound connections are accepted, identified by their first [Hello],
   and read until EOF.  Received frames are decoded incrementally from a
   per-connection buffer — a decode error closes the connection and
   counts [decode_errors], it never raises.

   Wall-clock timers live on a {!Timer_wheel} sharing the engine timer's
   cancel-after-fire semantics; [step] drives sockets and wheel
   together.  Times are milliseconds since the transport's creation. *)

type payload = Wire.msg
type addr = int

type conn_state = Connecting | Connected | Backoff | Closed

type conn = {
  peer : int;  (* outbound: destination node; inbound: -1 *)
  mutable fd : Unix.file_descr option;
  mutable state : conn_state;
  outq : string Queue.t;
  mutable queued_bytes : int;
  mutable woff : int;  (* bytes of the head frame already written *)
  mutable hello : string;  (* handshake bytes still to write *)
  rbuf : Buffer.t;
  mutable remote : int;  (* peer identified by Hello (inbound) *)
  mutable attempts : int;
  mutable retry_at : float;  (* ms; meaningful in Backoff *)
}

type stats = {
  mutable msgs_sent : int;
  mutable msgs_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable connects : int;
  mutable retries : int;
  mutable window_stalls : int;
  mutable drops : int;
  mutable decode_errors : int;
  mutable trace_bytes : int;
      (* bytes spent on wire-v2 trace plumbing beyond the v1 layout:
         one flags byte per sent frame plus 16 bytes per stamped trace
         header (see {!Wire.trace_overhead}) *)
}

type t = {
  self : int;
  p_id : int;
  window : int;
  max_queued : int;
  backoff_base : float;  (* ms *)
  backoff_max : float;  (* ms *)
  epoch : float;
  addrs : (int, Unix.sockaddr) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;  (* outbound, by destination *)
  mutable inbound : conn list;
  mutable listen_fd : Unix.file_descr option;
  mutable handler :
    src:int -> dst:int -> trace:Wire.trace_ctx option -> Wire.msg -> unit;
  wheel : Timer_wheel.t;
  stats : stats;
  mutable running : bool;
}

let create ?(p_id = 0) ?(window = 256 * 1024) ?max_queued
    ?(backoff_base = 50.) ?(backoff_max = 2_000.) ~self () =
  (* Writes to a peer-closed socket must raise EPIPE, not deliver a
     fatal SIGPIPE before the Unix_error handlers ever run. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let max_queued = Option.value max_queued ~default:(16 * window) in
  let epoch = Unix.gettimeofday () in
  let clock () = (Unix.gettimeofday () -. epoch) *. 1000.0 in
  {
    self;
    p_id;
    window;
    max_queued;
    backoff_base;
    backoff_max;
    epoch;
    addrs = Hashtbl.create 64;
    conns = Hashtbl.create 64;
    inbound = [];
    listen_fd = None;
    handler = (fun ~src:_ ~dst:_ ~trace:_ _ -> ());
    wheel = Timer_wheel.create ~clock;
    stats =
      {
        msgs_sent = 0;
        msgs_received = 0;
        bytes_sent = 0;
        bytes_received = 0;
        connects = 0;
        retries = 0;
        window_stalls = 0;
        drops = 0;
        decode_errors = 0;
        trace_bytes = 0;
      };
    running = true;
  }

let now t = (Unix.gettimeofday () -. t.epoch) *. 1000.0

let stats t = t.stats

(* The trace-blind [Transport.S] handler; context-carrying callers use
   {!set_handler_traced}.  Either setter replaces the other. *)
let set_handler t f = t.handler <- (fun ~src ~dst ~trace:_ msg -> f ~src ~dst msg)

let set_handler_traced t f = t.handler <- f

let set_peer_addr t peer sockaddr = Hashtbl.replace t.addrs peer sockaddr

let listen t sockaddr =
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd sockaddr;
  Unix.listen fd 128;
  t.listen_fd <- Some fd

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Connection failed or dropped: park it in backoff, keeping its queued
   frames for the retry.  The handshake is re-staged so the next attempt
   leads with a fresh [Hello]. *)
let conn_failed t c =
  (match c.fd with Some fd -> close_fd fd | None -> ());
  c.fd <- None;
  c.woff <- 0;
  c.attempts <- c.attempts + 1;
  c.state <- Backoff;
  c.retry_at <-
    now t
    +. Float.min t.backoff_max
         (t.backoff_base *. (2. ** float_of_int (c.attempts - 1)));
  t.stats.retries <- t.stats.retries + 1

let hello_frame t = Wire.encode (Wire.Hello { node = t.self; p_id = t.p_id })

(* Connection established: clear the attempt count so the next drop of
   this (now proven-reachable) peer backs off from [backoff_base], not
   from wherever the dial history left the exponent. *)
let mark_connected c =
  c.state <- Connected;
  c.attempts <- 0

(* Start (or restart) a non-blocking connect.  On loopback the kernel
   may refuse synchronously — that is a normal backoff, not an error. *)
let attempt_connect t c =
  match Hashtbl.find_opt t.addrs c.peer with
  | None -> conn_failed t c
  | Some sockaddr -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    c.fd <- Some fd;
    c.hello <- hello_frame t;
    c.woff <- 0;
    t.stats.connects <- t.stats.connects + 1;
    match Unix.connect fd sockaddr with
    | () -> mark_connected c
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
      c.state <- Connecting
    | exception Unix.Unix_error _ -> conn_failed t c)

let ensure_conn t dst =
  match Hashtbl.find_opt t.conns dst with
  | Some c -> c
  | None ->
    let c =
      {
        peer = dst;
        fd = None;
        state = Closed;
        outq = Queue.create ();
        queued_bytes = 0;
        woff = 0;
        hello = "";
        rbuf = Buffer.create 4096;
        remote = dst;
        attempts = 0;
        retry_at = 0.;
      }
    in
    Hashtbl.replace t.conns dst c;
    attempt_connect t c;
    c

(* Drain as much queued output as the socket accepts: handshake bytes
   first, then whole frames with partial-write bookkeeping. *)
let rec flush_conn t c =
  match c.fd with
  | None -> ()
  | Some fd -> (
    if c.hello <> "" then (
      match Unix.write_substring fd c.hello 0 (String.length c.hello) with
      | n ->
        t.stats.bytes_sent <- t.stats.bytes_sent + n;
        c.hello <- String.sub c.hello n (String.length c.hello - n);
        if c.hello = "" then flush_conn t c
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> conn_failed t c)
    else
      match Queue.peek_opt c.outq with
      | None -> ()
      | Some frame -> (
        let len = String.length frame in
        match Unix.write_substring fd frame c.woff (len - c.woff) with
        | n ->
          t.stats.bytes_sent <- t.stats.bytes_sent + n;
          c.woff <- c.woff + n;
          if c.woff = len then begin
            ignore (Queue.pop c.outq);
            c.queued_bytes <- c.queued_bytes - len;
            c.woff <- 0;
            flush_conn t c
          end
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
        | exception Unix.Unix_error _ -> conn_failed t c))

let send_traced t ?trace ~dst msg =
  let c = ensure_conn t dst in
  let frame = Wire.encode ?trace msg in
  if c.queued_bytes + String.length frame > t.max_queued then
    (* Hard cap: a peer that is dead, never listening, or hopelessly
       behind must cost bounded memory.  The newest frame is dropped —
       older queued frames preserve FIFO delivery for whatever does get
       through — and [drops] records the loss for the caller. *)
    t.stats.drops <- t.stats.drops + 1
  else begin
    if c.queued_bytes + String.length frame > t.window then
      t.stats.window_stalls <- t.stats.window_stalls + 1;
    Queue.push frame c.outq;
    c.queued_bytes <- c.queued_bytes + String.length frame;
    t.stats.msgs_sent <- t.stats.msgs_sent + 1;
    t.stats.trace_bytes <- t.stats.trace_bytes + Wire.trace_overhead trace
  end;
  if c.state = Closed then attempt_connect t c;
  if c.state = Connected then flush_conn t c

let send t ?op:_ ?shard:_ ~src:_ ~dst msg = send_traced t ~dst msg

(* Decode every complete frame sitting in the connection's read buffer.
   [Hello] identifies the remote end and stays transport-internal; all
   other messages dispatch to the handler.  Returns [false] when the
   stream is corrupt and the connection must die.

   The buffer is materialised once and walked with an offset, then
   compacted once at the end — decoding a backlog of n frames is O(n),
   not the O(n^2) of re-copying the remainder per frame. *)
let drain_frames t c =
  let buf = Buffer.contents c.rbuf in
  let len = String.length buf in
  let rec loop off =
    match Wire.decode_traced ~off buf with
    | Ok None -> Ok off
    | Ok (Some (msg, trace, consumed)) -> (
      t.stats.msgs_received <- t.stats.msgs_received + 1;
      match msg with
      | Wire.Hello { node; _ } ->
        c.remote <- node;
        loop (off + consumed)
      | msg ->
        t.handler ~src:c.remote ~dst:t.self ~trace msg;
        loop (off + consumed))
    | Error _ ->
      t.stats.decode_errors <- t.stats.decode_errors + 1;
      Error ()
  in
  match loop 0 with
  | Error () -> false
  | Ok off ->
    if off > 0 then begin
      Buffer.clear c.rbuf;
      if off < len then Buffer.add_substring c.rbuf buf off (len - off)
    end;
    true

let kill_conn t c =
  (match c.fd with Some fd -> close_fd fd | None -> ());
  c.fd <- None;
  c.state <- Closed;
  if c.peer = -1 then t.inbound <- List.filter (fun x -> x != c) t.inbound

let read_conn t c =
  match c.fd with
  | None -> ()
  | Some fd -> (
    let chunk = Bytes.create 65536 in
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      (* EOF: inbound conns die; outbound go through backoff so queued
         frames survive the remote's restart. *)
      if c.peer = -1 then kill_conn t c else conn_failed t c
    | n ->
      t.stats.bytes_received <- t.stats.bytes_received + n;
      Buffer.add_subbytes c.rbuf chunk 0 n;
      if not (drain_frames t c) then kill_conn t c
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
      if c.peer = -1 then kill_conn t c else conn_failed t c)

let accept_all t =
  match t.listen_fd with
  | None -> ()
  | Some lfd -> (
    let rec loop () =
      match Unix.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        let c =
          {
            peer = -1;
            fd = Some fd;
            state = Connected;
            outq = Queue.create ();
            queued_bytes = 0;
            woff = 0;
            hello = "";
            rbuf = Buffer.create 4096;
            remote = -1;
            attempts = 0;
            retry_at = 0.;
          }
        in
        t.inbound <- c :: t.inbound;
        loop ()
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    loop ())

let outbound_conns t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

(* One event-loop turn: redial due backoffs, select on every live fd
   (bounded by [timeout] seconds and the earliest timer/retry deadline),
   service readiness, then fire due wall-clock timers.  Returns true if
   any socket activity or timer fired — callers poll [step] in a loop
   and may sleep harder when it reports idleness. *)
let step ?(timeout = 0.05) t =
  if not t.running then false
  else begin
    let now_ms = now t in
    let outbound = outbound_conns t in
    List.iter
      (fun c ->
        if c.state = Backoff && c.retry_at <= now_ms then attempt_connect t c)
      outbound;
    let outbound = outbound_conns t in
    let reads =
      (match t.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.filter_map
          (fun c -> if c.state = Connected then c.fd else None)
          (outbound @ t.inbound)
    in
    let writes =
      List.filter_map
        (fun c ->
          match (c.state, c.fd) with
          | Connecting, Some fd -> Some fd
          | Connected, Some fd
            when c.hello <> "" || not (Queue.is_empty c.outq) ->
            Some fd
          | _ -> None)
        outbound
    in
    let deadline =
      List.fold_left
        (fun acc ms -> Float.min acc ((ms -. now t) /. 1000.))
        timeout
        (Option.to_list (Timer_wheel.next_deadline t.wheel)
        @ List.filter_map
            (fun c -> if c.state = Backoff then Some c.retry_at else None)
            outbound)
    in
    let select_timeout = Float.max 0. deadline in
    let rset, wset, _ =
      try Unix.select reads writes [] select_timeout
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if Some fd = t.listen_fd then accept_all t
        else
          match
            List.find_opt (fun c -> c.fd = Some fd) (outbound @ t.inbound)
          with
          | Some c -> read_conn t c
          | None -> ())
      rset;
    List.iter
      (fun fd ->
        match List.find_opt (fun c -> c.fd = Some fd) outbound with
        | Some c -> (
          match c.state with
          | Connecting -> (
            match Unix.getsockopt_error fd with
            | None ->
              mark_connected c;
              flush_conn t c
            | Some _ -> conn_failed t c)
          | Connected -> flush_conn t c
          | _ -> ())
        | None -> ())
      wset;
    let fired = Timer_wheel.run_due t.wheel in
    rset <> [] || wset <> [] || fired > 0
  end

let one_shot t ?label:_ ~delay f = Timer_wheel.one_shot t.wheel ~delay f

let periodic t ?label:_ ~period f = Timer_wheel.periodic t.wheel ~period f

let connected t peer =
  match Hashtbl.find_opt t.conns peer with
  | Some { state = Connected; _ } -> true
  | _ -> false

let pending_bytes t peer =
  match Hashtbl.find_opt t.conns peer with
  | Some c -> c.queued_bytes + String.length c.hello
  | None -> 0

(* Clean shutdown: one best-effort flush per connection, then close
   every socket.  Subsequent [step]s are no-ops. *)
let stop t =
  if t.running then begin
    t.running <- false;
    Hashtbl.iter
      (fun _ c ->
        if c.state = Connected then flush_conn t c;
        (match c.fd with Some fd -> close_fd fd | None -> ());
        c.fd <- None;
        c.state <- Closed)
      t.conns;
    List.iter
      (fun c ->
        (match c.fd with Some fd -> close_fd fd | None -> ());
        c.fd <- None;
        c.state <- Closed)
      t.inbound;
    t.inbound <- [];
    (match t.listen_fd with Some fd -> close_fd fd | None -> ());
    t.listen_fd <- None
  end

let running t = t.running
