(* Simulation backend of the transport seam: a thin adapter over
   [Underlay] (delivery with propagation delay, stress and trace
   accounting) and [Timer] (engine-clock timers).  The adapter adds no
   scheduling of its own — every [send] maps 1:1 onto the same
   [Underlay.send] call the protocol code used to make directly, so
   event order, sequence numbers and traces are bit-identical to the
   pre-seam code. *)

open P2p_sim

type payload = unit -> unit
type addr = int

type t = {
  engine : Engine.t;
  underlay : P2p_net.Underlay.t;
  mutable handler : src:addr -> dst:addr -> payload -> unit;
  (* true while [handler] is still the identity dispatch below: [send]
     then hands the payload straight to the underlay instead of building
     a wrapper closure per message *)
  mutable default_dispatch : bool;
}

(* The closure payload is its own handler: the default dispatch just
   runs it.  [set_handler] exists for harnesses that want to observe or
   wrap deliveries. *)
let make ~underlay =
  {
    engine = P2p_net.Underlay.engine underlay;
    underlay;
    handler = (fun ~src:_ ~dst:_ f -> f ());
    default_dispatch = true;
  }

let now t = Engine.now t.engine

let send t ?op ?shard ~src ~dst payload =
  if t.default_dispatch then
    P2p_net.Underlay.send t.underlay ?op ?shard ~src ~dst payload
  else
    P2p_net.Underlay.send t.underlay ?op ?shard ~src ~dst (fun () ->
        t.handler ~src ~dst payload)

let set_handler t f =
  t.handler <- f;
  t.default_dispatch <- false

let wrap tm =
  {
    Transport.cancel = (fun () -> Timer.cancel tm);
    reset = (fun () -> Timer.reset tm);
    active = (fun () -> Timer.active tm);
  }

let one_shot t ?label ~delay f = wrap (Timer.one_shot ?label t.engine ~delay f)

let periodic t ?label ~period f =
  wrap (Timer.periodic ?label t.engine ~period f)

let transport t =
  {
    Transport.now = (fun () -> now t);
    send = (fun ?op ?shard ~src ~dst f -> send t ?op ?shard ~src ~dst f);
    one_shot = (fun ?label ~delay f -> one_shot t ?label ~delay f);
    periodic = (fun ?label ~period f -> periodic t ?label ~period f);
    batch = (fun f -> Engine.schedule_batch t.engine f);
  }

let create ~underlay = transport (make ~underlay)
