(** Poll-driven time-series sampler: counter/gauge snapshots on a
    simulated-time cadence, exported as timeline JSONL.

    The sampler never schedules engine events (a periodic timer would
    keep the queue non-empty and [Engine.run] would never return);
    instead the run's drain loop calls {!poll} between engine steps and a
    snapshot is taken whenever simulated time has crossed the next due
    point. *)

type t

(** [create ~interval reg] samples [reg] at most once per [interval]
    simulated ms.  [on_sample] (if given) runs immediately before every
    snapshot — the place to refresh pull-style gauges (GC deltas,
    per-lane engine occupancy) that nobody updates eagerly.
    @raise Invalid_argument if [interval <= 0]. *)
val create : interval:float -> ?on_sample:(unit -> unit) -> Registry.t -> t

(** [poll t ~now] takes a snapshot if [now] has reached the next due
    point; otherwise does nothing.  The first call always samples. *)
val poll : t -> now:float -> unit

(** Snapshots taken so far. *)
val count : t -> int

(** [(time, line)] pairs, oldest first. *)
val samples : t -> (float * Json.t) list

(** The timeline as JSONL: one
    [{"t":ms,"counters":{...},"gauges":{...}}] object per line. *)
val to_string : t -> string
