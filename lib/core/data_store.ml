open P2p_hashspace

(* Flat open-addressed layout: three parallel int arrays (interned key id,
   interned value id, route_id) with linear probing.  A store holds no
   per-item heap blocks at all — one item costs three words here plus the
   (world-shared) interned strings — where the previous string-keyed
   Hashtbl paid a bucket, an entry record and a per-copy key pointer for
   every item on every peer.  Empty stores hold empty arrays: at million-
   peer scale most peers store a handful of items and the fixed per-peer
   footprint is what dominates RSS. *)

let empty_slot = -1

let tombstone = -2

type t = {
  interner : Intern.t;
  mutable keys : int array;  (* key id, or [empty_slot] / [tombstone] *)
  mutable vals : int array;
  mutable routes : int array;
  mutable live : int;
  mutable used : int;  (* live + tombstones: occupied probe slots *)
}

let create ?interner () =
  let interner = match interner with Some i -> i | None -> Intern.create () in
  { interner; keys = [||]; vals = [||]; routes = [||]; live = 0; used = 0 }

let interner t = t.interner

let size t = t.live

(* Multiplicative mixing spreads the dense interned ids over the table;
   capacity is always a power of two so the mask is the modulus. *)
let mix kid cap = kid * 0x9e3779b1 land (cap - 1)

let rehash t cap =
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap 0 in
  let routes = Array.make cap 0 in
  let old_keys = t.keys and old_vals = t.vals and old_routes = t.routes in
  for i = 0 to Array.length old_keys - 1 do
    let kid = old_keys.(i) in
    if kid >= 0 then begin
      let j = ref (mix kid cap) in
      while keys.(!j) <> empty_slot do
        j := (!j + 1) land (cap - 1)
      done;
      keys.(!j) <- kid;
      vals.(!j) <- old_vals.(i);
      routes.(!j) <- old_routes.(i)
    end
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.routes <- routes;
  t.used <- t.live

let ensure_room t =
  let cap = Array.length t.keys in
  if cap = 0 then rehash t 8
  else if 4 * (t.used + 1) > 3 * cap then
    (* grow only when live entries justify it; otherwise the rehash just
       squeezes out tombstones at the same capacity *)
    rehash t (if 2 * t.live >= cap then 2 * cap else cap)

let insert_routed t ~route_id ~key ~value =
  ensure_room t;
  let kid = Intern.intern t.interner key in
  let cap = Array.length t.keys in
  let first_free = ref (-1) in
  let i = ref (mix kid cap) in
  let result = ref (-1) in
  (* probe until the key or a hard empty slot; remember the first
     reusable slot (tombstone or empty) for the insertion case *)
  while !result < 0 do
    let k = t.keys.(!i) in
    if k = kid then result := !i
    else if k = empty_slot then begin
      if !first_free < 0 then first_free := !i;
      result := !first_free;
      t.keys.(!result) <- kid;
      t.live <- t.live + 1;
      if !result = !i then t.used <- t.used + 1
    end
    else begin
      if k = tombstone && !first_free < 0 then first_free := !i;
      i := (!i + 1) land (cap - 1)
    end
  done;
  t.vals.(!result) <- Intern.intern t.interner value;
  t.routes.(!result) <- route_id

let insert t ~key ~value =
  insert_routed t ~route_id:(Key_hash.of_string key) ~key ~value

(* Probe for [key]'s slot, or [-1] when absent (including: never interned,
   or interned only by other stores sharing the interner). *)
let slot_of t ~key =
  if t.live = 0 then -1
  else
    match Intern.find t.interner key with
    | None -> -1
    | Some kid ->
      let cap = Array.length t.keys in
      let rec probe i =
        let k = t.keys.(i) in
        if k = kid then i
        else if k = empty_slot then -1
        else probe ((i + 1) land (cap - 1))
      in
      probe (mix kid cap)

let find t ~key =
  match slot_of t ~key with
  | -1 -> None
  | i -> Some (Intern.name t.interner t.vals.(i))

let mem t ~key = slot_of t ~key >= 0

let remove t ~key =
  match slot_of t ~key with
  | -1 -> ()
  | i ->
    t.keys.(i) <- tombstone;
    t.live <- t.live - 1

let iter t f =
  Array.iteri
    (fun i kid ->
      if kid >= 0 then
        f
          ~key:(Intern.name t.interner kid)
          ~value:(Intern.name t.interner t.vals.(i))
          ~route_id:t.routes.(i))
    t.keys

let segment_items t ~left ~right =
  let acc = ref [] in
  Array.iteri
    (fun i kid ->
      if kid >= 0 && Id_space.between_incl_right t.routes.(i) ~left ~right then
        acc :=
          ( Intern.name t.interner kid,
            Intern.name t.interner t.vals.(i),
            t.routes.(i) )
          :: !acc)
    t.keys;
  !acc

let take_segment t ~left ~right =
  let acc = ref [] in
  Array.iteri
    (fun i kid ->
      if kid >= 0 && Id_space.between_incl_right t.routes.(i) ~left ~right then begin
        acc :=
          ( Intern.name t.interner kid,
            Intern.name t.interner t.vals.(i),
            t.routes.(i) )
          :: !acc;
        t.keys.(i) <- tombstone;
        t.live <- t.live - 1
      end)
    t.keys;
  !acc

(* Order-independent content digest: XOR of per-item hashes commutes, so
   two stores holding the same (key, value, route_id) set produce the
   same digest regardless of insertion order; the count term
   distinguishes the empty set from self-cancelling pairs. *)
let digest_items items =
  List.fold_left
    (fun acc (key, value, route_id) -> acc lxor Hashtbl.hash (key, value, route_id))
    (List.length items * 0x9e3779b1)
    items

let segment_digest t ~left ~right = digest_items (segment_items t ~left ~right)

let clear t =
  t.keys <- [||];
  t.vals <- [||];
  t.routes <- [||];
  t.live <- 0;
  t.used <- 0

let take_all t =
  let acc = ref [] in
  Array.iteri
    (fun i kid ->
      if kid >= 0 then
        acc :=
          ( Intern.name t.interner kid,
            Intern.name t.interner t.vals.(i),
            t.routes.(i) )
          :: !acc)
    t.keys;
  clear t;
  !acc

let keys t =
  let acc = ref [] in
  Array.iter (fun kid -> if kid >= 0 then acc := Intern.name t.interner kid :: !acc) t.keys;
  !acc
