(** Undirected weighted graphs representing the physical network.

    Nodes are dense integers [0 .. node_count - 1]; edge weights are
    latencies in milliseconds.  The graph is the *underlay*: overlay links
    of the P2P system map onto shortest physical paths through it. *)

type t

(** An undirected edge; [u < v] is guaranteed by construction. *)
type edge = { u : int; v : int; latency : float }

(** [create n] is an edgeless graph of [n] nodes.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

val node_count : t -> int

val edge_count : t -> int

(** [add_edge t u v ~latency] inserts an undirected edge.  Inserting an
    existing edge or a self-loop raises [Invalid_argument]; latency must be
    positive. *)
val add_edge : t -> int -> int -> latency:float -> unit

(** [has_edge t u v] tests adjacency. *)
val has_edge : t -> int -> int -> bool

(** [latency t u v] is the weight of edge [u -- v].
    @raise Not_found if absent. *)
val latency : t -> int -> int -> float

(** [set_latency t u v ~latency] changes the weight of the existing edge
    [u -- v] (both directions).  Routing state computed from the old
    weight is not informed — callers go through {!Routing.update_link},
    which re-derives the affected tables.
    @raise Not_found if the edge is absent; [Invalid_argument] if
    [latency <= 0]. *)
val set_latency : t -> int -> int -> latency:float -> unit

(** [neighbors t u] lists [(v, latency)] for every edge at [u]. *)
val neighbors : t -> int -> (int * float) list

(** [degree t u] is the number of edges at [u]. *)
val degree : t -> int -> int

(** [edges t] lists every edge once. *)
val edges : t -> edge list

(** [is_connected t] is [true] iff every node is reachable from node 0
    (or the graph is empty). *)
val is_connected : t -> bool

(** [iter_neighbors t u f] applies [f v latency] to each neighbour without
    allocating. *)
val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
