(** Serialization of traces and metric registries.

    Traces export as JSONL — one compact JSON object per line, schema
    [{"t": <ms>, "tag": "...", "op"?: <id>, "src"?: <host>,
    "dst"?: <host>, "detail": "..."}] — so any line-oriented tool (jq,
    grep, a spreadsheet import) can slice a run by tag or operation id.
    Registries export as a single JSON object ({!Registry.to_json}
    schema) or CSV. *)

(** [event_to_json e] — the JSONL object for one event.  Optional fields
    ([op], [src], [dst]) are omitted when unset, never [null]. *)
val event_to_json : P2p_sim.Trace.event -> Json.t

(** [event_of_json j] inverts {!event_to_json}.  A missing [detail]
    defaults to [""]; missing [t]/[tag] is an error. *)
val event_of_json : Json.t -> (P2p_sim.Trace.event, string) result

(** [trace_to_string trace] — retained events, oldest first, one JSON
    object per line. *)
val trace_to_string : P2p_sim.Trace.t -> string

(** [events_of_jsonl text] parses a JSONL trace dump back into events
    (blank lines skipped).  The error names the offending line. *)
val events_of_jsonl : string -> (P2p_sim.Trace.event list, string) result

(** [metrics_to_string registry] — the registry snapshot as one JSON
    document. *)
val metrics_to_string : Registry.t -> string

(** [trace_to_chrome trace] — the trace's completed spans in Chrome
    trace-event format (a JSON array of [ph:"X"] complete events plus
    [ph:"M"] process-name metadata), loadable by [ui.perfetto.dev] and
    [chrome://tracing].  One process lane per peer ([pid] 0 holds the
    operation root spans), one thread per operation id; simulated ms map
    to the format's microseconds.  Still-open spans are skipped.

    [lane_of host] (if given) maps a host id to its engine lane; each
    span is then mirrored onto a synthetic ["engine lanes"] process with
    one named thread row per lane, so Perfetto shows lane occupancy over
    time next to the per-peer view. *)
val trace_to_chrome : ?lane_of:(int -> int option) -> P2p_sim.Trace.t -> string

(** The chrome trace-event objects behind {!trace_to_chrome}, as JSON
    values — [ph:"M"] process metadata first, then the [ph:"X"] span
    events.  Lets a cross-process aggregator pool several traces' events
    and emit one merged file ({!P2p_obs.Scrape.merged_chrome}). *)
val chrome_events :
  ?lane_of:(int -> int option) -> P2p_sim.Trace.t -> Json.t list

(** {1 Files} *)

(** [write_file ~path contents] writes (truncating) and closes. *)
val write_file : path:string -> string -> unit

(** [read_file path] reads a whole file.  @raise Sys_error on IO
    failure. *)
val read_file : string -> string

val write_trace : path:string -> P2p_sim.Trace.t -> unit

val write_chrome_trace :
  path:string -> ?lane_of:(int -> int option) -> P2p_sim.Trace.t -> unit
val write_metrics : path:string -> Registry.t -> unit
val write_metrics_csv : path:string -> Registry.t -> unit
