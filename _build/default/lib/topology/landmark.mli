(** Landmark binning for topology-aware peer clustering (paper Section 5.2,
    after Ratnasamy et al.'s binning scheme).

    A set of landmark nodes is fixed; each node probes its latency to every
    landmark and orders the landmarks by increasing distance.  The ordered
    list is the node's *coordinate*; nodes sharing a coordinate form a
    cluster and are assigned to the same s-network.  Optionally each
    distance is also discretized into latency *levels*, which refines the
    coordinate exactly as in the original binning paper. *)

type t

(** [select_landmarks ~rng routing ~count] picks [count] landmarks spread
    across the topology using farthest-point sampling from a random seed
    node — this realizes the paper's "landmarks are predetermined so that
    they are uniformly distributed around the network".
    @raise Invalid_argument if [count] exceeds the node count or is [<= 0]. *)
val select_landmarks : rng:P2p_sim.Rng.t -> Routing.t -> count:int -> int list

(** [create routing ~landmarks ~levels] prepares the binning structure.
    [levels] are the latency thresholds (ms) splitting distances into bins;
    pass [[]] to use pure ordering coordinates. *)
val create : Routing.t -> landmarks:int list -> levels:float list -> t

(** [coordinate t node] is the node's coordinate string, e.g. ["2<0<1"] or
    with levels ["2:0<0:1<1:2"]. *)
val coordinate : t -> int -> string

(** [cluster_id t node] is a dense integer identifying the node's cluster;
    two nodes share a cluster iff their coordinates are equal. *)
val cluster_id : t -> int -> int

(** Number of distinct clusters seen so far. *)
val cluster_count : t -> int

(** [landmarks t] returns the landmark list. *)
val landmarks : t -> int list
