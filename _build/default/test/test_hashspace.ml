(* Tests for P2p_hashspace: Id_space ring arithmetic and Key_hash. *)

module Id_space = P2p_hashspace.Id_space
module Key_hash = P2p_hashspace.Key_hash

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_size () =
  checki "size is 2^bits" (1 lsl Id_space.bits) Id_space.size;
  checkb "0 valid" true (Id_space.valid 0);
  checkb "size-1 valid" true (Id_space.valid (Id_space.size - 1));
  checkb "size invalid" false (Id_space.valid Id_space.size);
  checkb "negative invalid" false (Id_space.valid (-1))

let test_normalize () =
  checki "identity" 42 (Id_space.normalize 42);
  checki "wrap" 0 (Id_space.normalize Id_space.size);
  checki "wrap+1" 1 (Id_space.normalize (Id_space.size + 1));
  checki "negative wraps" (Id_space.size - 1) (Id_space.normalize (-1))

let test_distance () =
  checki "same" 0 (Id_space.distance ~src:5 ~dst:5);
  checki "forward" 3 (Id_space.distance ~src:5 ~dst:8);
  checki "wrap" (Id_space.size - 3) (Id_space.distance ~src:8 ~dst:5)

let test_between () =
  checkb "inside" true (Id_space.between 5 ~left:1 ~right:10);
  checkb "left endpoint excluded" false (Id_space.between 1 ~left:1 ~right:10);
  checkb "right endpoint excluded" false (Id_space.between 10 ~left:1 ~right:10);
  checkb "outside" false (Id_space.between 15 ~left:1 ~right:10);
  (* wrapping interval *)
  checkb "wrap inside high" true (Id_space.between (Id_space.size - 1) ~left:(Id_space.size - 5) ~right:3);
  checkb "wrap inside low" true (Id_space.between 1 ~left:(Id_space.size - 5) ~right:3);
  checkb "wrap outside" false (Id_space.between 10 ~left:(Id_space.size - 5) ~right:3);
  (* degenerate: left = right = whole ring minus the point *)
  checkb "full ring" true (Id_space.between 5 ~left:0 ~right:0);
  checkb "full ring excludes endpoint" false (Id_space.between 0 ~left:0 ~right:0)

let test_between_incl_right () =
  checkb "right endpoint included" true (Id_space.between_incl_right 10 ~left:1 ~right:10);
  checkb "left excluded" false (Id_space.between_incl_right 1 ~left:1 ~right:10);
  checkb "interior" true (Id_space.between_incl_right 2 ~left:1 ~right:10);
  (* single node owns everything *)
  checkb "self segment owns all" true (Id_space.between_incl_right 12345 ~left:7 ~right:7);
  checkb "self segment owns own id" true (Id_space.between_incl_right 7 ~left:7 ~right:7)

let test_midpoint () =
  checki "simple" 5 (Option.get (Id_space.midpoint ~left:0 ~right:10));
  checkb "adjacent has none" true (Id_space.midpoint ~left:4 ~right:5 = None);
  checkb "same point" true (Id_space.midpoint ~left:4 ~right:4 <> None);
  (* wrapping midpoint lies inside the wrapped interval *)
  let m = Option.get (Id_space.midpoint ~left:(Id_space.size - 10) ~right:10) in
  checkb "wrapped midpoint inside" true
    (Id_space.between m ~left:(Id_space.size - 10) ~right:10)

let test_midpoint_always_inside () =
  let rng = P2p_sim.Rng.create 5 in
  for _ = 1 to 1000 do
    let left = P2p_sim.Rng.int rng Id_space.size in
    let right = P2p_sim.Rng.int rng Id_space.size in
    match Id_space.midpoint ~left ~right with
    | Some m -> checkb "midpoint inside (left,right)" true (Id_space.between m ~left ~right)
    | None ->
      checkb "no midpoint only when adjacent" true (Id_space.distance ~src:left ~dst:right <= 1)
  done

let test_add () =
  checki "plain" 15 (Id_space.add 10 5);
  checki "wraps" 4 (Id_space.add (Id_space.size - 1) 5)

let test_finger_start () =
  checki "k=0" 11 (Id_space.finger_start ~base:10 0);
  checki "k=4" 26 (Id_space.finger_start ~base:10 4);
  checki "wraps" 0 (Id_space.finger_start ~base:(Id_space.size - 1) 0
                    |> fun x -> x mod Id_space.size);
  Alcotest.check_raises "k too big" (Invalid_argument "Id_space.finger_start") (fun () ->
      ignore (Id_space.finger_start ~base:0 Id_space.bits : int))

let test_hash_deterministic () =
  checki "same key same id" (Key_hash.of_string "hello") (Key_hash.of_string "hello");
  checkb "different keys differ" true
    (Key_hash.of_string "hello" <> Key_hash.of_string "world")

let test_hash_in_range () =
  let rng = P2p_sim.Rng.create 6 in
  for _ = 1 to 1000 do
    let key = string_of_int (P2p_sim.Rng.int rng 1_000_000_000) in
    checkb "valid id" true (Id_space.valid (Key_hash.of_string key))
  done

let test_hash_dispersion () =
  (* sequential keys should scatter across the space: check quartile
     occupancy *)
  let quartiles = Array.make 4 0 in
  let q_size = Id_space.size / 4 in
  for i = 0 to 9999 do
    let id = Key_hash.of_string (Printf.sprintf "file-%06d" i) in
    quartiles.(min 3 (id / q_size)) <- quartiles.(min 3 (id / q_size)) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "quartile %d populated" i) true (c > 2000 && c < 3000))
    quartiles

let test_hash_known_fnv () =
  (* FNV-1a 64 reference values *)
  Alcotest.check Alcotest.int64 "empty string" 0xCBF29CE484222325L (Key_hash.fnv1a64 "");
  Alcotest.check Alcotest.int64 "'a'" 0xAF63DC4C8601EC8CL (Key_hash.fnv1a64 "a")

let test_hash_of_address () =
  checkb "address includes port" true
    (Key_hash.of_address ~ip:"10.0.0.1" ~port:80
     <> Key_hash.of_address ~ip:"10.0.0.1" ~port:81)

let suite =
  [
    Alcotest.test_case "size and validity" `Quick test_size;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "distance" `Quick test_distance;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "between_incl_right" `Quick test_between_incl_right;
    Alcotest.test_case "midpoint" `Quick test_midpoint;
    Alcotest.test_case "midpoint always inside (random)" `Quick test_midpoint_always_inside;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "finger_start" `Quick test_finger_start;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "hash in range" `Quick test_hash_in_range;
    Alcotest.test_case "hash dispersion" `Quick test_hash_dispersion;
    Alcotest.test_case "hash FNV reference values" `Quick test_hash_known_fnv;
    Alcotest.test_case "hash of address" `Quick test_hash_of_address;
  ]
