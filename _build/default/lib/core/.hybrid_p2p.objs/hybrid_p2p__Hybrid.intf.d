lib/core/hybrid.mli: Config Data_ops P2p_hashspace P2p_net P2p_sim P2p_stats P2p_topology Peer World
