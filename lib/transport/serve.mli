(** [p2psim serve] orchestration: fork [peers] worker processes each
    running one {!Live_node} on [127.0.0.1:(port_base + node)], act as
    the client from the parent, and (in smoke mode) drive an
    insert/lookup workload, compute recall and scan the workers' JSONL
    health dumps for violations. *)

type outcome = {
  ready_nodes : int;
  inserts_ok : int;
  lookups_found : int;
  lookups_total : int;
  recall : float;  (** found / total lookups, smoke mode *)
  violations : int;  (** summed from final health-dump lines *)
  decode_errors : int;
  exit_code : int;  (** 0 = ring formed, recall 1.0, dumps clean *)
}

(** [run ~peers ~port_base ~smoke ()] forks the ring and returns after
    shutdown (smoke mode) or after SIGINT/SIGTERM (serve mode).
    [dump_dir] (default ["_serve_health"]) receives
    [health-<node>.jsonl] per worker. *)
val run :
  ?inserts:int ->
  ?lookups:int ->
  ?ready_timeout:float ->
  ?dump_dir:string ->
  peers:int ->
  port_base:int ->
  smoke:bool ->
  unit ->
  outcome

val print_outcome : outcome -> unit
