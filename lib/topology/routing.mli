(** Shortest-path routing over the physical graph.

    Overlay links are logical: a message sent over the overlay edge
    [u -> v] traverses the latency-shortest physical path from [u] to [v].
    This module computes those paths with Dijkstra's algorithm, caching the
    full single-source result per source on first use (a 1,000-node topology
    fits comfortably; [max_cached_sources] bounds the cache for larger
    ones). *)

type t

(** [create graph] prepares a router; no paths are computed yet.
    [max_cached_sources] caps how many single-source results stay cached
    (LRU eviction beyond it); the default is unlimited — O(n²) memory once
    every node has sent, which is the right trade below a few thousand
    nodes.  @raise Invalid_argument when [max_cached_sources < 1]. *)
val create : ?max_cached_sources:int -> Graph.t -> t

(** [synthetic ~nodes ~latency] is a router over [nodes] hosts in which
    every distinct pair is directly connected at a uniform [latency] (ms)
    — one physical hop, no path computation, O(1) memory.  This is the
    underlay for overlay-scalability runs (the million-peer sweep in
    [bench/scale.ml]) where per-source shortest-path state is
    unaffordable and physical path diversity is not under study.
    {!graph} returns an edgeless placeholder of [nodes] nodes.
    @raise Invalid_argument when [nodes < 0] or [latency <= 0]. *)
val synthetic : nodes:int -> latency:float -> t

(** [distance t u v] is the latency of the shortest path.  [infinity] when
    unreachable. *)
val distance : t -> int -> int -> float

(** [path t u v] is the node sequence [u; ...; v] of a shortest path.
    @raise Not_found when unreachable. *)
val path : t -> int -> int -> int list

(** [hop_count t u v] is [List.length (path t u v) - 1]; 0 when [u = v].
    @raise Not_found when unreachable. *)
val hop_count : t -> int -> int -> int

(** [eccentricity t u] is the maximum finite distance from [u]. *)
val eccentricity : t -> int -> float

(** [graph t] is the underlying graph. *)
val graph : t -> Graph.t
