examples/tracker_mode.mli:
