test/test_hashspace.ml: Alcotest Array Option P2p_hashspace P2p_sim Printf
