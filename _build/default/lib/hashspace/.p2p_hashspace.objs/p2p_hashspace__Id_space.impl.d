lib/hashspace/id_space.ml: Format
