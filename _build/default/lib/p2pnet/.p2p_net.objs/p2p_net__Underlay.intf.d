lib/p2pnet/underlay.mli: Metrics P2p_sim P2p_topology
