(* Tests for the tooling layer: Trace (sim), Ascii_plot (stats) and the
   Scenario runner. *)

module Trace = P2p_sim.Trace
module Ascii_plot = P2p_stats.Ascii_plot
module Scenario = P2p_scenario.Scenario
module H = Hybrid_p2p.Hybrid

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* --- Trace --- *)

let test_trace_records_in_order () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t ~time:1.0 ~tag:"a" "first";
  Trace.record t ~time:2.0 ~tag:"b" "second";
  checki "length" 2 (Trace.length t);
  checki "total" 2 (Trace.total_recorded t);
  match Trace.events t with
  | [ e1; e2 ] ->
    Alcotest.check Alcotest.string "first detail" "first" e1.Trace.detail;
    Alcotest.check Alcotest.string "second tag" "b" e2.Trace.tag
  | _ -> Alcotest.fail "expected two events"

let test_trace_ring_overwrites () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~tag:"x" (string_of_int i)
  done;
  checki "bounded" 3 (Trace.length t);
  checki "total counts everything" 5 (Trace.total_recorded t);
  Alcotest.check (Alcotest.list Alcotest.string) "keeps the newest" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.detail) (Trace.events t))

let test_trace_find_and_clear () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t ~time:1.0 ~tag:"join" "a";
  Trace.record t ~time:2.0 ~tag:"message" "b";
  Trace.record t ~time:3.0 ~tag:"join" "c";
  checki "two joins" 2 (List.length (Trace.find t ~tag:"join"));
  Trace.clear t;
  checki "cleared" 0 (Trace.length t);
  checki "lifetime counter survives" 3 (Trace.total_recorded t)

let test_trace_disabled_is_noop () =
  let t = Trace.disabled in
  checkb "disabled" false (Trace.enabled t);
  Trace.record t ~time:1.0 ~tag:"x" "dropped";
  Trace.record_f t ~time:1.0 ~tag:"x" "%s" "dropped";
  checki "nothing retained" 0 (Trace.length t)

let test_trace_record_f () =
  let t = Trace.create ~capacity:4 () in
  Trace.record_f t ~time:1.0 ~tag:"fmt" "%d-%s" 42 "x";
  Alcotest.check Alcotest.string "formatted" "42-x"
    (List.hd (Trace.events t)).Trace.detail

let test_trace_captures_system_messages () =
  let trace = Trace.create ~capacity:1000 () in
  let h =
    H.create_star ~seed:80 ~peers:32
      ~config:Hybrid_p2p.Config.default ()
  in
  ignore h;
  (* create_star has no trace hook; use Hybrid.create with one *)
  let g = P2p_topology.Graph.create 4 in
  P2p_topology.Graph.add_edge g 0 1 ~latency:1.0;
  P2p_topology.Graph.add_edge g 1 2 ~latency:1.0;
  P2p_topology.Graph.add_edge g 2 3 ~latency:1.0;
  let h2 =
    H.create ~seed:81 ~routing:(P2p_topology.Routing.create g) ~trace ()
  in
  ignore (H.join h2 ~host:0 () : Hybrid_p2p.Peer.t);
  H.run h2;
  ignore (H.join h2 ~host:1 ~role:Hybrid_p2p.Peer.S_peer () : Hybrid_p2p.Peer.t);
  H.run h2;
  checkb "messages traced" true (Trace.find trace ~tag:"message" <> [])

(* --- Ascii_plot --- *)

let test_plot_dimensions () =
  let series =
    [ { Ascii_plot.name = "one"; points = [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ] } ]
  in
  let chart = Ascii_plot.line_chart ~width:40 ~height:8 ~series () in
  let lines = String.split_on_char '\n' chart in
  (* 8 grid rows + axis + x labels + 1 legend + trailing *)
  checki "line count" 12 (List.length lines);
  checkb "contains glyph" true (String.contains chart '*');
  checkb "contains legend" true (List.exists (contains ~needle:"one") lines)

let test_plot_empty () =
  Alcotest.check Alcotest.string "placeholder" "(empty chart)\n"
    (Ascii_plot.line_chart ~series:[ { Ascii_plot.name = "e"; points = [] } ] ());
  Alcotest.check_raises "width too small" (Invalid_argument "Ascii_plot.line_chart: width")
    (fun () ->
      ignore (Ascii_plot.line_chart ~width:5 ~series:[] () : string))

let test_plot_two_series_glyphs () =
  let series =
    [ { Ascii_plot.name = "a"; points = [ (0.0, 0.0); (1.0, 1.0) ] };
      { Ascii_plot.name = "b"; points = [ (0.0, 1.0); (1.0, 0.0) ] } ]
  in
  let chart = Ascii_plot.line_chart ~width:20 ~height:6 ~series () in
  checkb "first glyph" true (String.contains chart '*');
  checkb "second glyph" true (String.contains chart 'o')

let test_plot_constant_series () =
  (* constant y must not divide by zero *)
  let series = [ { Ascii_plot.name = "flat"; points = [ (0.0, 5.0); (1.0, 5.0) ] } ] in
  checkb "renders" true (String.length (Ascii_plot.line_chart ~series ()) > 0)

let test_histogram_bars () =
  let out = Ascii_plot.histogram ~width:10 ~bars:[ ("a", 10.0); ("bb", 5.0) ] () in
  let lines = String.split_on_char '\n' out in
  (match lines with
   | a :: b :: _ ->
     checkb "full bar" true (contains ~needle:"##########" a);
     checkb "half bar" true (contains ~needle:"#####" b)
   | _ -> Alcotest.fail "expected two bars");
  Alcotest.check Alcotest.string "empty" "(empty histogram)\n"
    (Ascii_plot.histogram ~bars:[] ())

(* --- Scenario --- *)

let test_scenario_basic_flow () =
  let h = H.create_star ~seed:82 ~peers:256 () in
  let report =
    Scenario.run h ~seed:1
      ~script:
        [ Scenario.Join_many (60, 0.7); Scenario.Insert_items 100; Scenario.Settle;
          Scenario.Lookup_items 100; Scenario.Settle ]
  in
  checki "joined" 60 report.Scenario.joined;
  checki "inserted" 100 report.Scenario.inserted;
  checki "all lookups ok" 100 report.Scenario.lookups_ok;
  checki "final peers" 60 report.Scenario.final_peers;
  checki "final items" 100 report.Scenario.final_items;
  checkb "invariants" true (Result.is_ok report.Scenario.invariants)

let test_scenario_crash_storm () =
  let h = H.create_star ~seed:83 ~peers:256 () in
  let report =
    Scenario.run h ~seed:2
      ~script:
        [ Scenario.Join_many (80, 0.7); Scenario.Insert_items 200;
          Scenario.Crash_fraction 0.25; Scenario.Repair;
          Scenario.Lookup_items 200 ]
  in
  checki "crashed" 20 report.Scenario.crashed;
  checki "population" 60 report.Scenario.final_peers;
  checkb "data lost" true (report.Scenario.final_items < 200);
  checkb "failures reflect the loss" true (report.Scenario.lookups_failed > 0);
  checkb "invariants" true (Result.is_ok report.Scenario.invariants)

let test_scenario_implicit_repair () =
  (* a script that crashes without repairing still ends checkable *)
  let h = H.create_star ~seed:84 ~peers:128 () in
  let report =
    Scenario.run h ~seed:3
      ~script:[ Scenario.Join_many (30, 0.6); Scenario.Crash_random; Scenario.Crash_random ]
  in
  checki "two crashed" 2 report.Scenario.crashed;
  checkb "invariants after implicit repair" true (Result.is_ok report.Scenario.invariants)

let test_scenario_lookup_before_insert () =
  let h = H.create_star ~seed:85 ~peers:64 () in
  let report =
    Scenario.run h ~seed:4
      ~script:[ Scenario.Join_many (10, 0.5); Scenario.Lookup_items 5 ]
  in
  checki "counted as failed" 5 report.Scenario.lookups_failed

let test_scenario_mixed_churn () =
  let h = H.create_star ~seed:86 ~peers:256 () in
  let report =
    Scenario.run h ~seed:5
      ~script:
        [ Scenario.Join_many (50, 0.7); Scenario.Insert_items 100;
          Scenario.Leave_random; Scenario.Leave_random; Scenario.Join_t;
          Scenario.Join_s; Scenario.Crash_random; Scenario.Repair;
          Scenario.Lookup_items 100; Scenario.Advance 1000.0 ]
  in
  checki "population tracks churn" (50 - 2 + 2 - 1) report.Scenario.final_peers;
  checkb "invariants" true (Result.is_ok report.Scenario.invariants)

let suite =
  [
    Alcotest.test_case "trace: in-order recording" `Quick test_trace_records_in_order;
    Alcotest.test_case "trace: ring overwrite" `Quick test_trace_ring_overwrites;
    Alcotest.test_case "trace: find and clear" `Quick test_trace_find_and_clear;
    Alcotest.test_case "trace: disabled no-op" `Quick test_trace_disabled_is_noop;
    Alcotest.test_case "trace: record_f" `Quick test_trace_record_f;
    Alcotest.test_case "trace: captures system messages" `Quick
      test_trace_captures_system_messages;
    Alcotest.test_case "plot: dimensions" `Quick test_plot_dimensions;
    Alcotest.test_case "plot: empty and invalid" `Quick test_plot_empty;
    Alcotest.test_case "plot: two series" `Quick test_plot_two_series_glyphs;
    Alcotest.test_case "plot: constant series" `Quick test_plot_constant_series;
    Alcotest.test_case "plot: histogram" `Quick test_histogram_bars;
    Alcotest.test_case "scenario: basic flow" `Quick test_scenario_basic_flow;
    Alcotest.test_case "scenario: crash storm" `Quick test_scenario_crash_storm;
    Alcotest.test_case "scenario: implicit repair" `Quick test_scenario_implicit_repair;
    Alcotest.test_case "scenario: lookup before insert" `Quick
      test_scenario_lookup_before_insert;
    Alcotest.test_case "scenario: mixed churn" `Quick test_scenario_mixed_churn;
  ]
