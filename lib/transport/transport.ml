(* The transport seam: everything the protocol layers are allowed to ask
   of the outside world — deliver a message to a peer, arm a timer, read
   the clock.  Two families implement it: the deterministic simulation
   backend ([Sim_transport], closures over the event engine) and the live
   Unix backend ([Live_transport], wire-encoded messages over real
   sockets).  Protocol code written against this seam cannot tell which
   one is underneath. *)

type timer = {
  cancel : unit -> unit;
  reset : unit -> unit;
  active : unit -> bool;
}

let cancel t = t.cancel ()
let reset t = t.reset ()
let active t = t.active ()

module type S = sig
  type t

  (** What travels: the sim instantiates this with closures (the message
      IS its own handler), the live backend with {!Wire.msg} values that
      must survive serialization. *)
  type payload

  (** How peers are named: dense host ints in the sim, node indices with
      a socket-address table in the live backend. *)
  type addr

  (** Monotonic transport clock, in milliseconds.  Simulated time or the
      wall clock — protocol code must not care which. *)
  val now : t -> float

  (** [send t ?op ?shard ~src ~dst payload] hands [payload] to the
      transport for delivery to [dst].  [op] attributes the message to a
      traced operation; [shard] selects the engine event lane (sim) and
      is ignored by backends without lanes. *)
  val send : t -> ?op:int -> ?shard:int -> src:addr -> dst:addr -> payload -> unit

  (** [set_handler t f] installs the receive dispatch: every delivered
      payload is passed to [f]. *)
  val set_handler : t -> (src:addr -> dst:addr -> payload -> unit) -> unit

  (** [one_shot t ~delay f] arms a timer on the transport clock.
      Cancelling a fired timer is a counted no-op (the [timer/cancel_late]
      counter), never a ghost queue entry. *)
  val one_shot : t -> ?label:string -> delay:float -> (unit -> unit) -> timer

  val periodic : t -> ?label:string -> period:float -> (unit -> unit) -> timer
end

(* First-class instance of the signature, specialised to the closure
   payload the in-process protocol core uses.  The core stores one of
   these in [World.t]; [Sim_transport.create] builds it over the event
   engine.  (A record of functions rather than a functor application so
   the backend can be picked at run time without functorising the whole
   protocol stack.) *)
type t = {
  now : unit -> float;
  send :
    ?op:int -> ?shard:int -> src:int -> dst:int -> (unit -> unit) -> unit;
  one_shot : ?label:string -> delay:float -> (unit -> unit) -> timer;
  periodic : ?label:string -> period:float -> (unit -> unit) -> timer;
  batch : (unit -> unit) -> unit;
}

let now t = t.now ()

let send t ?op ?shard ~src ~dst f = t.send ?op ?shard ~src ~dst f

let batch t f = t.batch f

let one_shot t ?label ~delay f = t.one_shot ?label ~delay f

let periodic t ?label ~period f = t.periodic ?label ~period f
