(** Restartable one-shot and periodic timers on top of {!Engine}.

    The hybrid protocol of the paper leans heavily on timers: periodic HELLO
    heartbeats, per-neighbour crash-detection timeouts, lookup expiration
    timers, acknowledgment suppress timers and bypass-link expiry.  This
    module gives them a uniform interface with cheap reset (the paper resets
    a neighbour's timer on every HELLO or acknowledgment received). *)

type t

(** [one_shot engine ~delay f] arms a timer firing [f] once after [delay].
    The timer may be {!reset} (rearmed for a fresh [delay]) or {!cancel}ed
    before it fires. *)
val one_shot : Engine.t -> delay:float -> (unit -> unit) -> t

(** [periodic engine ~period f] fires [f] every [period], starting one
    [period] from now, until cancelled. *)
val periodic : Engine.t -> period:float -> (unit -> unit) -> t

(** [reset t] rearms the timer: a one-shot fires a full delay from now, a
    periodic's next tick moves to one period from now.  Resetting a
    cancelled or already-fired one-shot re-arms it. *)
val reset : t -> unit

(** [cancel t] disarms the timer permanently until the next [reset]. *)
val cancel : t -> unit

(** [active t] is [true] iff the timer is armed. *)
val active : t -> bool
