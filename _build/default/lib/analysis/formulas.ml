let log2 x = log x /. log 2.0

let check ~ps ~n ~delta =
  if ps < 0.0 || ps > 1.0 then invalid_arg "Formulas: ps out of [0,1]";
  if n <= 0 then invalid_arg "Formulas: n must be positive";
  if delta < 2 then invalid_arg "Formulas: delta must be >= 2"

let avg_snetwork_size ~ps = if ps >= 1.0 then infinity else ps /. (1.0 -. ps)

let clamp0 x = if x < 0.0 || Float.is_nan x then 0.0 else x

let t_join_latency ~ps ~n =
  check ~ps ~n ~delta:2;
  if ps >= 1.0 then 0.0
  else clamp0 (log2 ((1.0 -. ps) *. float_of_int n /. 2.0))

let s_join_latency ~ps ~delta =
  check ~ps ~n:1 ~delta;
  if ps <= 0.0 then 0.0
  else if ps >= 1.0 then infinity
  else clamp0 (log (avg_snetwork_size ~ps) /. log (float_of_int delta))

let join_latency ~ps ~n ~delta =
  check ~ps ~n ~delta;
  let t_part = if ps >= 1.0 then 0.0 else (1.0 -. ps) *. t_join_latency ~ps ~n in
  let s_part = if ps <= 0.0 then 0.0 else ps *. s_join_latency ~ps ~delta in
  t_part +. s_part

let local_hit_probability ~ps ~n =
  check ~ps ~n ~delta:2;
  if ps >= 1.0 then 1.0
  else Float.min 1.0 (clamp0 (avg_snetwork_size ~ps /. float_of_int n))

let peers_out_of_reach ~ps ~delta ~ttl =
  check ~ps ~n:1 ~delta;
  if ttl < 0 then invalid_arg "Formulas: ttl must be >= 0";
  if ps >= 1.0 then infinity
  else begin
    let d = float_of_int delta in
    let size = avg_snetwork_size ~ps in
    let ttlf = float_of_int ttl in
    (* Paper Eq. (2): midpoint of the root-initiated and leaf-initiated
       reachable-set sizes. *)
    let reached =
      ((d ** (ttlf +. 1.0)) *. (d -. 1.0)
       +. (d ** (2.0 +. (ttlf /. 2.0)))
       -. ((d -. 1.0) *. ttlf /. 2.0))
      /. (2.0 *. ((d -. 1.0) ** 2.0))
    in
    clamp0 (size -. reached)
  end

let lookup_failure_ratio ~ps ~delta ~ttl =
  let size = avg_snetwork_size ~ps in
  if size <= 0.0 then 0.0
  else if size = infinity then 1.0
  else Float.min 1.0 (peers_out_of_reach ~ps ~delta ~ttl /. size)

let ring_half ~ps ~n =
  if ps >= 1.0 then 0.0
  else clamp0 (log2 ((1.0 -. ps) *. float_of_int n /. 2.0))

let lookup_latency_unconstrained ~ps ~n =
  check ~ps ~n ~delta:2;
  let p = local_hit_probability ~ps ~n in
  (p *. 2.0) +. ((1.0 -. p) *. (2.0 +. ring_half ~ps ~n))

let lookup_latency ~ps ~n ~delta ~ttl =
  check ~ps ~n ~delta;
  if ttl < 0 then invalid_arg "Formulas: ttl must be >= 0";
  let p = local_hit_probability ~ps ~n in
  let ttlf = float_of_int ttl in
  let climb =
    if ps <= 0.0 || ps >= 1.0 then 0.0
    else Float.max 0.0 (0.5 *. (log (avg_snetwork_size ~ps) /. log (float_of_int delta)))
  in
  (p *. ttlf) +. ((1.0 -. p) *. (climb +. ttlf +. ring_half ~ps ~n))
