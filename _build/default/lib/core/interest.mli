(** Interest categories and their routing IDs (Section 5.3).

    An interest-based s-network serves all data of one category.  To make
    the category and its data land in the same s-network, both sides use
    the same mapping: a category hashes to a {e routing ID}, the s-network
    serving that ID is the category's home, the server assigns peers
    interested in the category to that s-network, and data of the category
    is inserted and looked up with that routing ID. *)

(** [route_id category] is the deterministic routing ID of a category. *)
val route_id : int -> P2p_hashspace.Id_space.id
