(** Deterministic, splittable pseudo-random number generator.

    The generator is a SplitMix64 stream.  Every run of the simulator is
    seeded explicitly so that experiments are reproducible bit-for-bit; the
    [split] operation derives an independent stream, which lets concurrent
    subsystems (workload generation, topology generation, protocol noise)
    draw randomness without perturbing each other. *)

type t

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is a generator with the same state as [t]; the two evolve
    independently afterwards. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)
val split : t -> t

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [hash62 ~seed x] is a stateless SplitMix64 avalanche of item [x] on
    stream [seed], folded to a nonnegative 62-bit int.  Deterministic —
    equal [(seed, x)] always hash alike — which makes it the right
    primitive for reproducible per-item sampling decisions (compare the
    hash against [rate * 2^62]). *)
val hash62 : seed:int -> int -> int

(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [float_in_range t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val float_in_range : t -> lo:float -> hi:float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples an exponential with the given mean.
    Used for churn inter-arrival times. *)
val exponential : t -> mean:float -> float

(** [pick t arr] is a uniformly random element of [arr].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] is a uniformly random element of [l].
    @raise Invalid_argument on an empty list. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~k arr] returns [k] distinct elements of
    [arr] in random order.  @raise Invalid_argument if [k] exceeds the array
    length or is negative. *)
val sample_without_replacement : t -> k:int -> 'a array -> 'a array
