(* Scale-refactor tests: key interning, the flat data store, the flat
   world membership (successor-index wraparound) and the sharded engine
   lanes (merge order and end-to-end determinism under churn). *)

open Helpers
module Intern = Hybrid_p2p.Intern
module Data_store = Hybrid_p2p.Data_store
module Engine = P2p_sim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- key interning ----------------------------------------------------- *)

let test_intern_round_trip () =
  let t = Intern.create () in
  let ids = List.map (fun k -> Intern.intern t k) [ "a"; "b"; "c" ] in
  checki "dense ids from zero" 0 (List.nth ids 0);
  checki "dense ids in order" 2 (List.nth ids 2);
  checki "count" 3 (Intern.count t);
  (* duplicate interning is stable and does not grow the table *)
  checki "re-intern returns same id" (List.nth ids 1) (Intern.intern t "b");
  checki "count unchanged" 3 (Intern.count t);
  (* id -> name -> id round trip *)
  List.iteri
    (fun i id ->
      let name = Intern.name t id in
      checks "name round-trips" (List.nth [ "a"; "b"; "c" ] i) name;
      checki "find round-trips" id (Option.get (Intern.find t name)))
    ids;
  (* find never interns *)
  checkb "find misses unknown" true (Intern.find t "zzz" = None);
  checki "find did not intern" 3 (Intern.count t);
  checkb "mem_id in range" true (Intern.mem_id t 2);
  checkb "mem_id out of range" false (Intern.mem_id t 3)

let test_intern_growth () =
  let t = Intern.create ~initial_capacity:2 () in
  for i = 0 to 999 do
    checki "sequential ids" i (Intern.intern t (string_of_int i))
  done;
  checki "all interned" 1000 (Intern.count t);
  for i = 0 to 999 do
    checki "stable after growth" i (Intern.intern t (string_of_int i))
  done;
  checki "no duplicates" 1000 (Intern.count t)

(* --- flat data store --------------------------------------------------- *)

let test_store_basics () =
  let s = Data_store.create () in
  checki "empty" 0 (Data_store.size s);
  checkb "find on empty" true (Data_store.find s ~key:"a" = None);
  for i = 0 to 199 do
    Data_store.insert s
      ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  checki "all inserted" 200 (Data_store.size s);
  for i = 0 to 199 do
    checks "find after growth"
      (Printf.sprintf "v%d" i)
      (Option.get (Data_store.find s ~key:(Printf.sprintf "k%d" i)))
  done;
  (* overwrite does not grow *)
  Data_store.insert s ~key:"k7" ~value:"fresh";
  checki "overwrite keeps size" 200 (Data_store.size s);
  checks "overwrite wins" "fresh" (Option.get (Data_store.find s ~key:"k7"))

let test_store_tombstones () =
  let s = Data_store.create () in
  for i = 0 to 99 do
    Data_store.insert s ~key:(Printf.sprintf "k%d" i) ~value:"v"
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then Data_store.remove s ~key:(Printf.sprintf "k%d" i)
  done;
  checki "half removed" 50 (Data_store.size s);
  for i = 0 to 99 do
    let expect = i mod 2 = 1 in
    checkb "survivors only" expect
      (Data_store.mem s ~key:(Printf.sprintf "k%d" i))
  done;
  (* tombstoned slots are reused: re-insert the removed half *)
  for i = 0 to 99 do
    if i mod 2 = 0 then
      Data_store.insert s ~key:(Printf.sprintf "k%d" i) ~value:"back"
  done;
  checki "all back" 100 (Data_store.size s);
  checks "re-inserted readable" "back" (Option.get (Data_store.find s ~key:"k0"));
  (* remove everything, store stays usable *)
  for i = 0 to 99 do
    Data_store.remove s ~key:(Printf.sprintf "k%d" i)
  done;
  checki "emptied" 0 (Data_store.size s);
  Data_store.insert s ~key:"again" ~value:"x";
  checkb "usable after full drain" true (Data_store.mem s ~key:"again")

let test_store_shared_interner () =
  let interner = Intern.create () in
  let a = Data_store.create ~interner () in
  let b = Data_store.create ~interner () in
  Data_store.insert a ~key:"shared-key" ~value:"1";
  let before = Intern.count interner in
  (* the key is already interned; only the new value "2" is added *)
  Data_store.insert b ~key:"shared-key" ~value:"2";
  checki "second store reuses the interned key" (before + 1)
    (Intern.count interner);
  Data_store.insert b ~key:"shared-key" ~value:"1";
  checki "fully shared key+value interns nothing" (before + 1)
    (Intern.count interner);
  Data_store.insert b ~key:"shared-key" ~value:"2";
  checks "stores stay independent" "1"
    (Option.get (Data_store.find a ~key:"shared-key"));
  checks "stores stay independent (b)" "2"
    (Option.get (Data_store.find b ~key:"shared-key"))

(* --- flat world: successor index --------------------------------------- *)

let test_successor_index_wraparound () =
  let h = H.create_star ~seed:11 ~peers:16 () in
  let ids = [ 100; 200; 300 ] in
  List.iteri
    (fun host p_id ->
      ignore (H.join h ~host ~role:Peer.T_peer ~p_id ());
      H.run h)
    ids;
  let w = H.world h in
  let succ_id d = (World.t_peers w).(World.successor_index w d).Peer.p_id in
  checki "below the ring minimum" 100 (succ_id 50);
  checki "interior gap" 200 (succ_id 150);
  checki "exact hit maps to itself" 200 (succ_id 200);
  checki "last arc" 300 (succ_id 250);
  checki "past the maximum wraps to index 0" 100 (succ_id 301);
  checki "top of the id space wraps" 100
    (succ_id (P2p_hashspace.Id_space.size - 1))

(* --- engine lanes ------------------------------------------------------ *)

(* Events scheduled across 4 lanes must pop in the exact global
   (time, seq) order a single lane would produce. *)
let test_lane_merge_order () =
  let record engine ~lanes:_ =
    let out = ref [] in
    (* same schedule in both runs: shard i places events round-robin *)
    for i = 0 to 31 do
      ignore
        (Engine.schedule ~shard:i engine
           ~delay:(float_of_int ((i * 7) mod 5))
           (fun () -> out := i :: !out)
          : Engine.handle)
    done;
    while Engine.step engine do
      ()
    done;
    List.rev !out
  in
  let single = record (Engine.create ~seed:3 ~lanes:1 ()) ~lanes:1 in
  let sharded = record (Engine.create ~seed:3 ~lanes:4 ()) ~lanes:4 in
  checki "same event count" (List.length single) (List.length sharded);
  checkb "identical pop order" true (single = sharded);
  (* run (batched draining) must also execute everything *)
  let e = Engine.create ~seed:3 ~lanes:4 ~lookahead:1.0 () in
  let n = ref 0 in
  for i = 0 to 31 do
    ignore
      (Engine.schedule ~shard:i e ~delay:(float_of_int (i mod 3)) (fun () ->
           incr n)
        : Engine.handle)
  done;
  Engine.run e;
  checki "run drains every lane" 32 !n

(* --- end-to-end determinism under churn -------------------------------- *)

(* Same seed, same scenario, 1 vs 4 lanes: the final stored-item
   multiset (host, key, value, route) must be identical and the audit
   invariants clean.  This is the contract SCALING.md documents. *)
let stored_items h =
  let acc = ref [] in
  World.iter_peers (H.world h)
    (fun p ->
      Data_store.iter p.Peer.store (fun ~key ~value ~route_id ->
          acc := Printf.sprintf "%d|%s|%s|%d" p.Peer.host key value route_id :: !acc));
  List.sort compare !acc

let churn_run ~lanes =
  let config =
    { Config.default with Config.engine_lanes = lanes; replication_factor = 1 }
  in
  let h, _ = star_system ~config ~seed:7 ~capacity:2200 ~n:2000 ~ps:0.8 () in
  ignore (insert_items h ~count:200 : string list);
  (* churn: crash a deterministic slice, then heal *)
  let victims =
    List.filteri (fun i _ -> i mod 17 = 3) (World.live_peers (H.world h))
  in
  List.iter (fun p -> H.crash h p) victims;
  H.repair h;
  H.run h;
  ok_invariants h;
  (H.total_items h, stored_items h)

let test_lanes_deterministic_churn () =
  let items1, set1 = churn_run ~lanes:1 in
  let items4, set4 = churn_run ~lanes:4 in
  checki "same stored count" items1 items4;
  checki "same set size" (List.length set1) (List.length set4);
  checkb "identical stored-item sets" true (set1 = set4)

let suite =
  [
    Alcotest.test_case "intern: round trips" `Quick test_intern_round_trip;
    Alcotest.test_case "intern: growth keeps ids" `Quick test_intern_growth;
    Alcotest.test_case "flat store: insert/find/overwrite" `Quick
      test_store_basics;
    Alcotest.test_case "flat store: tombstone reuse" `Quick
      test_store_tombstones;
    Alcotest.test_case "flat store: shared interner" `Quick
      test_store_shared_interner;
    Alcotest.test_case "world: successor index wraparound" `Quick
      test_successor_index_wraparound;
    Alcotest.test_case "lanes: merge order matches single queue" `Quick
      test_lane_merge_order;
    Alcotest.test_case "lanes: churn scenario deterministic 1-vs-4" `Slow
      test_lanes_deterministic_churn;
  ]
