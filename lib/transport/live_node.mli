(** One live ring node — the protocol logic a [p2psim serve] worker
    process runs over {!Live_transport}.

    Tracker-style bootstrap (node 0 collects announces and broadcasts
    the peer list), Chord-style successor-ring routing for inserts and
    lookups, client request relay, per-node self-audit (stored keys must
    hash into the node's own arc) and periodic JSONL health dumps.

    Observability spans processes: sampled operations stamp a wire-v2
    trace header on every frame so each hop's span rebinds under the
    sender's, completion latency feeds mergeable
    [latency/<kind>_total_ms] log histograms for 100% of ops, and a
    [Scrape_request] frame is answered with a versioned
    {!P2p_obs.Scrape} snapshot of the node's registry and health. *)

type t

(** [create ~node ~n ~port_base ()] builds node [node] of an [n]-node
    ring listening on [port_base + node].  Node indices [0..n-1] are
    ring members; index [n] is reserved for the orchestrator/client.
    [dump_dir], when given, receives [health-<node>.jsonl] (and any
    flight-recorder dumps).  [epoch] (wall-clock seconds, default: time
    of creation) anchors every trace timestamp — the orchestrator
    passes one epoch to all workers so cross-process span times align.
    [sample_rate]/[sample_seed] configure head-based op sampling and
    must match cluster-wide for the wire sampling bit to agree with
    local decisions; [trace_capacity] bounds the span/event rings. *)
val create :
  ?dump_dir:string ->
  ?epoch:float ->
  ?trace_capacity:int ->
  ?sample_rate:float ->
  ?sample_seed:int ->
  node:int ->
  n:int ->
  port_base:int ->
  unit ->
  t

(** [true] once the tracker's peer list arrived and the ring position
    (successor/predecessor) is known. *)
val ready : t -> bool

(** One event-loop turn; see {!Live_transport.step}. *)
val step : ?timeout:float -> t -> bool

val transport : t -> Live_transport.t

(** Audit violations counted so far (misplaced keys, ring shape,
    hop-count overruns). *)
val violations : t -> int

(** The node's trace (per-process span-id range, cluster-shared
    sampling). *)
val trace : t -> P2p_sim.Trace.t

(** The node's metrics registry (latency log histograms, wire and ring
    counters). *)
val registry : t -> P2p_obs.Registry.t

(** The snapshot a [Scrape_request] answers with; [spans] includes the
    retained chrome span events. *)
val scrape_snapshot : t -> spans:bool -> P2p_obs.Scrape.snapshot

(** [request_flight_dump t ~reason] — flag a flight-recorder dump to be
    taken from the run loop.  Async-signal-safe (one field write); this
    is what SIGTERM/SIGINT handlers call.  First reason wins. *)
val request_flight_dump : t -> reason:string -> unit

(** [flight_dump t ~reason] — write the flight-recorder ring (plus
    chrome trace and metrics) into [dump_dir] now, from loop context.
    Returns the paths written ([[]] without a [dump_dir]). *)
val flight_dump : t -> reason:string -> string list

(** Blocking loop: step until a [Shutdown] frame arrives — or a
    requested flight dump is honoured — then drain and {!stop}. *)
val run : t -> unit

(** Final audit + health line, close dump and sockets. *)
val stop : t -> unit
