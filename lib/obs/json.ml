type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null" (* JSON has no NaN/inf *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.text then error c "truncated \\u escape";
         let hex = String.sub c.text c.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> error c "bad \\u escape"
         in
         (* ASCII range only; anything else degrades to '?' — the trace
            and metrics emitters never produce non-ASCII escapes. *)
         Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
         c.pos <- c.pos + 4
       | Some ch -> error c (Printf.sprintf "bad escape \\%c" ch)
       | None -> error c "unterminated escape");
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_number_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec scan () =
    match peek c with
    | Some ch when is_number_char ch ->
      advance c;
      scan ()
    | Some _ | None -> ()
  in
  scan ();
  let text = String.sub c.text start (c.pos - start) in
  if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
  then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected , or ] in array"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> error c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let parse text =
  let c = { text; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length text then Error "trailing characters after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None
