(** Global experiment metrics.

    One instance is threaded through a simulation run and accumulates every
    quantity the paper's evaluation reports:

    - lookup latency (paper Section 6.3, Fig. 6a/6b) — simulated
      milliseconds from issuing a lookup to receiving the data;
    - lookup failure ratio (Fig. 5a/5b);
    - [connum] (Table 2) — the number of peers all lookups contacted;
    - join latency (Fig. 3a validation) — hops and milliseconds;
    - raw message and physical-hop counts (bandwidth proxies).

    Since the observability layer landed, this record is a {e view} over a
    {!P2p_obs.Registry}: every recorder writes a registry metric (under
    the ["underlay"], ["data_ops"], and ["membership"] subsystems) and
    every accessor reads it back, so the legacy API and the exported
    registry snapshot always agree.  Subsystems reach the registry itself
    through {!registry} (or the {!counter} convenience) to record their own
    per-tier quantities next to these. *)

type t

(** [create ?registry ()] — a metrics view over [registry] (a fresh
    registry when omitted). *)
val create : ?registry:P2p_obs.Registry.t -> unit -> t

(** The backing registry, for per-subsystem recording and export. *)
val registry : t -> P2p_obs.Registry.t

(** [counter t ~subsystem ~name] — get-or-create a registry counter;
    shorthand for going through {!registry}. *)
val counter : t -> subsystem:string -> name:string -> P2p_obs.Registry.counter

(** [bump t ~subsystem ~name] increments a registry counter by one. *)
val bump : t -> subsystem:string -> name:string -> unit

(** {1 Recording} *)

val record_message : t -> physical_hops:int -> unit
val record_lookup_issued : t -> unit
val record_lookup_success : t -> latency:float -> hops:int -> unit
val record_lookup_failure : t -> unit
val record_contact : t -> unit
(** one peer contacted (checked its database) during some lookup *)

val record_contacts : t -> int -> unit
val record_join : t -> latency:float -> hops:int -> unit

(** {1 Reading} *)

val messages : t -> int
val physical_hops : t -> int
val lookups_issued : t -> int
val lookups_succeeded : t -> int
val lookups_failed : t -> int

(** Failed / issued; [0.] when no lookup was issued. *)
val failure_ratio : t -> float

(** Total peers contacted by all lookups — the paper's [connum]. *)
val connum : t -> int

val lookup_latency : t -> P2p_stats.Summary.t
val lookup_hops : t -> P2p_stats.Summary.t
val join_latency : t -> P2p_stats.Summary.t
val join_hops : t -> P2p_stats.Summary.t

val pp : Format.formatter -> t -> unit
