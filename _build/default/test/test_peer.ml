(* Unit tests for Hybrid_p2p.Peer: pure structural helpers. *)

module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk ?(role = Peer.S_peer) ?(capacity = 1.0) host =
  Peer.make ~host ~p_id:host ~role ~link_capacity:capacity ()

let config = Config.default (* delta = 3 *)

let test_roles () =
  let t = mk ~role:Peer.T_peer 1 and s = mk 2 in
  checkb "t" true (Peer.is_t_peer t);
  checkb "t not s" false (Peer.is_s_peer t);
  checkb "s" true (Peer.is_s_peer s)

let test_segment () =
  let a = mk ~role:Peer.T_peer 100 and b = mk ~role:Peer.T_peer 200 in
  a.Peer.pred <- Some b;
  checki "segment left is pred id" 200 (Peer.segment_left a);
  checkb "covers own id" true (Peer.covers a 100);
  checkb "covers wrapped interval" true (Peer.covers a 50);
  checkb "does not cover pred id" false (Peer.covers a 200);
  checkb "does not cover outside" false (Peer.covers a 150);
  (* single node on ring covers everything *)
  let solo = mk ~role:Peer.T_peer 300 in
  solo.Peer.pred <- Some solo;
  checkb "solo covers all" true (Peer.covers solo 12345)

let test_tree_attach_detach () =
  let root = mk ~role:Peer.T_peer 0 in
  root.Peer.t_home <- Some root;
  root.Peer.p_id <- 777;
  let child = mk 1 in
  Peer.attach_child ~parent:root ~child;
  checkb "cp set" true (match child.Peer.cp with Some p -> p == root | None -> false);
  checkb "t_home inherited" true
    (match child.Peer.t_home with Some p -> p == root | None -> false);
  checki "p_id inherited" 777 child.Peer.p_id;
  checki "root degree" 1 (Peer.tree_degree root);
  checki "child degree counts cp" 1 (Peer.tree_degree child);
  Peer.detach_child ~parent:root ~child;
  checkb "cp cleared" true (child.Peer.cp = None);
  checki "root degree after detach" 0 (Peer.tree_degree root)

let test_free_slot_delta () =
  let root = mk ~role:Peer.T_peer 0 in
  root.Peer.t_home <- Some root;
  checkb "empty root has slot" true (Peer.has_free_slot config root);
  for i = 1 to 3 do
    Peer.attach_child ~parent:root ~child:(mk i)
  done;
  checkb "root full at delta" false (Peer.has_free_slot config root);
  let s = mk 10 in
  Peer.attach_child ~parent:root ~child:s |> ignore;
  ignore s
  (* note: attach beyond delta is the caller's responsibility; has_free_slot
     is the guard *)

let test_free_slot_link_usage () =
  let cfg = { config with Config.link_usage_aware = true; link_usage_threshold = 0.5 } in
  let fast = mk ~capacity:10.0 1 and slow = mk ~capacity:2.0 2 in
  (* degree+1 / capacity <= 0.5 ? fast: 1/10 yes; slow: 1/2 <= 0.5 yes, but
     after one child 2/2 > 0.5 *)
  checkb "fast accepts" true (Peer.has_free_slot cfg fast);
  checkb "slow accepts first" true (Peer.has_free_slot cfg slow);
  Peer.attach_child ~parent:slow ~child:(mk 3);
  checkb "slow rejects second" false (Peer.has_free_slot cfg slow)

let test_tree_members_preorder () =
  let root = mk ~role:Peer.T_peer 0 in
  root.Peer.t_home <- Some root;
  let a = mk 1 and b = mk 2 and c = mk 3 in
  Peer.attach_child ~parent:root ~child:a;
  Peer.attach_child ~parent:root ~child:b;
  Peer.attach_child ~parent:a ~child:c;
  let hosts = List.map (fun p -> p.Peer.host) (Peer.tree_members root) in
  checki "four members" 4 (List.length hosts);
  checkb "contains all" true
    (List.for_all (fun h -> List.mem h hosts) [ 0; 1; 2; 3 ]);
  checki "root first" 0 (List.hd hosts)

let test_tree_neighbors () =
  let root = mk ~role:Peer.T_peer 0 in
  root.Peer.t_home <- Some root;
  let a = mk 1 and b = mk 2 in
  Peer.attach_child ~parent:root ~child:a;
  Peer.attach_child ~parent:a ~child:b;
  checki "root neighbors" 1 (List.length (Peer.tree_neighbors root));
  checki "middle neighbors" 2 (List.length (Peer.tree_neighbors a));
  checki "leaf neighbors" 1 (List.length (Peer.tree_neighbors b))

let test_depth () =
  let root = mk ~role:Peer.T_peer 0 in
  root.Peer.t_home <- Some root;
  let a = mk 1 and b = mk 2 in
  Peer.attach_child ~parent:root ~child:a;
  Peer.attach_child ~parent:a ~child:b;
  checki "root depth" 0 (Peer.depth root);
  checki "a depth" 1 (Peer.depth a);
  checki "b depth" 2 (Peer.depth b)

let bypass_config = { config with Config.bypass_enabled = true; bypass_lifetime = 100.0 }

let test_bypass_add_and_expire () =
  let a = mk 1 and b = mk 2 in
  Peer.add_bypass bypass_config a b ~now:0.0;
  checki "one live at t=50" 1 (List.length (Peer.live_bypass a ~now:50.0));
  checki "expired at t=150" 0 (List.length (Peer.live_bypass a ~now:150.0))

let test_bypass_refresh () =
  let a = mk 1 and b = mk 2 in
  Peer.add_bypass bypass_config a b ~now:0.0;
  Peer.add_bypass bypass_config a b ~now:80.0;
  checki "still one link" 1 (List.length a.Peer.bypass);
  checki "refreshed survives" 1 (List.length (Peer.live_bypass a ~now:150.0))

let test_bypass_rules () =
  let a = mk 1 and b = mk 2 in
  (* disabled config: no link *)
  Peer.add_bypass config a b ~now:0.0;
  checki "disabled" 0 (List.length a.Peer.bypass);
  (* self link refused *)
  Peer.add_bypass bypass_config a a ~now:0.0;
  checki "no self link" 0 (List.length a.Peer.bypass);
  (* dead target refused *)
  b.Peer.alive <- false;
  Peer.add_bypass bypass_config a b ~now:0.0;
  checki "no dead target" 0 (List.length a.Peer.bypass)

let test_bypass_degree_budget () =
  (* rule 1: bypass only while degree < delta *)
  let a = mk 1 in
  Peer.attach_child ~parent:a ~child:(mk 10);
  Peer.attach_child ~parent:a ~child:(mk 11);
  Peer.attach_child ~parent:a ~child:(mk 12);
  (* tree degree 3 = delta: no bypass capacity left *)
  Peer.add_bypass bypass_config a (mk 20) ~now:0.0;
  checki "full peer refuses bypass" 0 (List.length a.Peer.bypass);
  let b = mk 2 in
  Peer.attach_child ~parent:b ~child:(mk 13);
  Peer.add_bypass bypass_config b (mk 21) ~now:0.0;
  checki "partial peer accepts" 1 (List.length b.Peer.bypass);
  Peer.add_bypass bypass_config b (mk 22) ~now:0.0;
  checki "second accepted (degree 1 + 1 bypass < 3)" 2 (List.length b.Peer.bypass);
  Peer.add_bypass bypass_config b (mk 23) ~now:0.0;
  checki "third refused (tree 1 + bypass 2 = 3)" 2 (List.length b.Peer.bypass)

let test_bypass_prunes_dead () =
  let a = mk 1 and b = mk 2 in
  Peer.add_bypass bypass_config a b ~now:0.0;
  b.Peer.alive <- false;
  checki "dead target pruned" 0 (List.length (Peer.live_bypass a ~now:10.0))

let suite =
  [
    Alcotest.test_case "roles" `Quick test_roles;
    Alcotest.test_case "segment ownership" `Quick test_segment;
    Alcotest.test_case "tree attach/detach" `Quick test_tree_attach_detach;
    Alcotest.test_case "free slot: delta" `Quick test_free_slot_delta;
    Alcotest.test_case "free slot: link usage" `Quick test_free_slot_link_usage;
    Alcotest.test_case "tree members" `Quick test_tree_members_preorder;
    Alcotest.test_case "tree neighbors" `Quick test_tree_neighbors;
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "bypass: add and expire" `Quick test_bypass_add_and_expire;
    Alcotest.test_case "bypass: refresh" `Quick test_bypass_refresh;
    Alcotest.test_case "bypass: rules" `Quick test_bypass_rules;
    Alcotest.test_case "bypass: degree budget" `Quick test_bypass_degree_budget;
    Alcotest.test_case "bypass: prunes dead" `Quick test_bypass_prunes_dead;
  ]
