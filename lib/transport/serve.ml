(* [p2psim serve]: fork N worker processes, each running one
   {!Live_node} of a live localhost ring, and drive them from the parent
   acting as the client (node index N on the same transport fabric).

   The parent waits for every worker to report [ready] via
   [Status_request]/[Status] polling, then — in smoke mode — pushes a
   fixed insert/lookup workload through round-robin entry nodes,
   computes recall, scrapes every node mid-run (registry snapshots plus
   retained chrome spans), writes the merged cluster artifacts
   (per-node [scrape-<i>.json], [cluster-metrics.json],
   [cluster-trace.chrome.json]), gates the merged percentiles against
   [--slo] specs and the wire-v2 trace overhead against its 2% budget,
   shuts the ring down with [Shutdown] frames, reaps the children and
   scans their JSONL health dumps for audit violations and decode
   errors.  Exit code 0 means the ring formed, recall was 1.0, the
   dumps are clean, and every observability gate passed; anything else
   is 1.

   Without [--smoke] the ring is left serving until the parent receives
   SIGINT/SIGTERM, which triggers the same clean shutdown.  Workers
   install their own SIGTERM/SIGINT handlers that flag a
   flight-recorder dump, taken from the select loop before the clean
   exit — a killed node leaves forensics, not silence.

   The same scrape machinery is exposed as an {!aggregator} for
   [p2psim top] / [p2psim cluster-report]: an extra client (node index
   [n + 1], a port the scraped nodes learn from the request frame)
   that can poll a serving ring it did not fork. *)

module Json = P2p_obs.Json
module Scrape = P2p_obs.Scrape
module Registry = P2p_obs.Registry
module Export = P2p_obs.Export
module Slo = P2p_obs.Slo

type outcome = {
  ready_nodes : int;
  inserts_ok : int;
  lookups_found : int;
  lookups_total : int;
  recall : float;
  violations : int;
  decode_errors : int;
  scraped : int;  (* nodes that answered the mid-run scrape *)
  slo_ok : bool;
  trace_overhead_pct : float;  (* trace header bytes vs v1 bytes-on-wire *)
  exit_code : int;
}

let mkdir_p dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ())

(* --- child ----------------------------------------------------------- *)

let run_child ~node ~n ~port_base ~dump_dir ~epoch ~sample_rate ~sample_seed =
  let t =
    Live_node.create ~dump_dir ~epoch ~sample_rate ~sample_seed ~node ~n
      ~port_base ()
  in
  (* Signals only flag the dump; the run loop takes it between select
     turns, then shuts down cleanly (final health line included). *)
  List.iter
    (fun (signal, name) ->
      try
        Sys.set_signal signal
          (Sys.Signal_handle
             (fun _ -> Live_node.request_flight_dump t ~reason:name))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigterm, "sigterm"); (Sys.sigint, "sigint") ];
  Live_node.run t;
  exit 0

(* --- parent: client over the live fabric ----------------------------- *)

type client = {
  self : int;
  port : int;  (* where this client listens; scrape requests carry it *)
  tr : Live_transport.t;
  replies : (int, Wire.msg) Hashtbl.t;
  statuses : (int, Wire.msg) Hashtbl.t;
  scrapes : (int, int * string) Hashtbl.t;  (* node -> (req, snapshot) *)
  mutable scrape_req : int;  (* next scrape request id *)
}

let make_client ~self ~listen_peers ~n ~port_base =
  let tr = Live_transport.create ~self () in
  for peer = 0 to listen_peers do
    Live_transport.set_peer_addr tr peer
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port_base + peer))
  done;
  let port = port_base + self in
  Live_transport.listen tr (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let c =
    {
      self;
      port;
      tr;
      replies = Hashtbl.create 1024;
      statuses = Hashtbl.create 64;
      scrapes = Hashtbl.create 64;
      scrape_req = 1;
    }
  in
  ignore n;
  Live_transport.set_handler tr (fun ~src:_ ~dst:_ msg ->
      match msg with
      | Wire.Client_reply { req; _ } -> Hashtbl.replace c.replies req msg
      | Wire.Status { node; _ } -> Hashtbl.replace c.statuses node msg
      | Wire.Scrape_reply { req; node; snapshot } ->
        Hashtbl.replace c.scrapes node (req, snapshot)
      | _ -> ());
  c

(* Step the client loop until [done_ ()] or the wall-clock deadline. *)
let pump c ~seconds done_ =
  let deadline = Unix.gettimeofday () +. seconds in
  let finished = ref (done_ ()) in
  while (not !finished) && Unix.gettimeofday () < deadline do
    ignore (Live_transport.step ~timeout:0.02 c.tr);
    finished := done_ ()
  done;
  !finished

let wait_ready c ~n ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let req = ref 0 in
  let all_ready () =
    let count = ref 0 in
    Hashtbl.iter
      (fun _ msg ->
        match msg with Wire.Status { ready = true; _ } -> incr count | _ -> ())
      c.statuses;
    !count = n
  in
  let ready = ref (all_ready ()) in
  while (not !ready) && Unix.gettimeofday () < deadline do
    for node = 0 to n - 1 do
      incr req;
      Live_transport.send c.tr ~src:c.self ~dst:node
        (Wire.Status_request { req = !req })
    done;
    ignore (pump c ~seconds:0.25 all_ready);
    ready := all_ready ()
  done;
  let count = ref 0 in
  Hashtbl.iter
    (fun _ msg ->
      match msg with Wire.Status { ready = true; _ } -> incr count | _ -> ())
    c.statuses;
  (!ready, !count)

(* --- scraping --------------------------------------------------------- *)

(* One scrape round: ask all [n] nodes, wait until everyone answered (or
   the deadline), parse what came back.  Replies from earlier rounds are
   recognised by request id and ignored. *)
let scrape_round c ~n ~spans ~seconds =
  let lo = c.scrape_req in
  c.scrape_req <- c.scrape_req + n;
  for node = 0 to n - 1 do
    Live_transport.send c.tr ~src:c.self ~dst:node
      (Wire.Scrape_request { req = lo + node; port = c.port; spans })
  done;
  let current () =
    Hashtbl.fold
      (fun node (req, snap) acc ->
        if req >= lo then (node, snap) :: acc else acc)
      c.scrapes []
  in
  ignore (pump c ~seconds (fun () -> List.length (current ()) = n));
  let snapshots =
    List.filter_map
      (fun (_, snap) ->
        match Scrape.of_string snap with Ok s -> Some s | Error _ -> None)
      (current ())
  in
  List.sort (fun a b -> compare a.Scrape.node b.Scrape.node) snapshots

(* --- standalone aggregator (p2psim top / cluster-report) -------------- *)

type aggregator = { agg_client : client; agg_n : int }

(* Node index [n + 1]: the orchestrator already holds [n], and ring
   members learn the aggregator's port from the request frame itself. *)
let aggregator ~peers:n ~port_base () =
  let c = make_client ~self:(n + 1) ~listen_peers:(n - 1) ~n ~port_base in
  { agg_client = c; agg_n = n }

let aggregator_scrape a ?(spans = false) ?(timeout = 5.) () =
  scrape_round a.agg_client ~n:a.agg_n ~spans ~seconds:timeout

let aggregator_stop a = Live_transport.stop a.agg_client.tr

(* --- observability gates ---------------------------------------------- *)

(* Trace overhead vs plain v1 framing, from the merged wire counters:
   [trace_bytes] counts the flags byte and stamped headers, so
   [bytes_sent - trace_bytes] is what the same traffic cost under v1. *)
let overhead_pct merged =
  let value name =
    Registry.counter_value (Registry.counter merged ~subsystem:"wire" ~name)
  in
  let trace_bytes = value "trace_bytes" and bytes_sent = value "bytes_sent" in
  let v1_bytes = bytes_sent - trace_bytes in
  if v1_bytes <= 0 then 0.0
  else 100.0 *. float_of_int trace_bytes /. float_of_int v1_bytes

type obs_outcome = {
  obs_scraped : int;
  obs_slo_ok : bool;
  obs_overhead_pct : float;
  obs_overhead_ok : bool;
}

(* Scrape the serving ring, write every artifact, gate SLOs and trace
   overhead.  Runs while the ring is still serving (before shutdown). *)
let observe_cluster c ~n ~dump_dir ~slo ~sample_rate =
  let scrape_started = Unix.gettimeofday () in
  let snapshots = scrape_round c ~n ~spans:true ~seconds:10. in
  let scrape_ms = (Unix.gettimeofday () -. scrape_started) *. 1000.0 in
  List.iter
    (fun s ->
      Export.write_file
        ~path:(Filename.concat dump_dir (Printf.sprintf "scrape-%d.json" s.Scrape.node))
        (Scrape.to_string s))
    snapshots;
  let merged = Scrape.merged_registry snapshots in
  Export.write_file
    ~path:(Filename.concat dump_dir "cluster-metrics.json")
    (Json.to_string (Registry.to_json merged));
  Export.write_file
    ~path:(Filename.concat dump_dir "cluster-trace.chrome.json")
    (Json.to_string (Scrape.merged_chrome snapshots));
  print_string (Scrape.render_table snapshots);
  let slo_ok =
    match slo with
    | [] -> true
    | specs ->
      Slo.enforce merged ~specs ~print:(fun line ->
          Printf.printf "serve: %s\n%!" line)
  in
  let pct = overhead_pct merged in
  (* the 2% budget is the bench gate for the intended production rate;
     runs traced at higher rates pay for what they asked for, and runs
     too small for the ratio to be signal (bootstrap frames dominate
     under ~100 KiB) are measured but not gated *)
  let v1_bytes =
    let value name =
      Registry.counter_value (Registry.counter merged ~subsystem:"wire" ~name)
    in
    value "bytes_sent" - value "trace_bytes"
  in
  let overhead_ok =
    sample_rate > 0.0101 || v1_bytes < 100 * 1024 || pct <= 2.0
  in
  Printf.printf "serve: scraped=%d/%d in %.1fms trace_overhead=%.3f%%%s\n%!"
    (List.length snapshots) n scrape_ms pct
    (if overhead_ok then "" else " (EXCEEDS 2% BUDGET)");
  {
    obs_scraped = List.length snapshots;
    obs_slo_ok = slo_ok;
    obs_overhead_pct = pct;
    obs_overhead_ok = overhead_ok;
  }

(* --- health-dump scan ------------------------------------------------ *)

let scan_dumps ~dump_dir ~n =
  let violations = ref 0 and decode_errors = ref 0 in
  for node = 0 to n - 1 do
    let path = Filename.concat dump_dir (Printf.sprintf "health-%d.jsonl" node) in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let last = ref None in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then last := Some line
         done
       with End_of_file -> ());
      close_in ic;
      match !last with
      | None -> ()
      | Some line -> (
        match Json.parse line with
        | Error _ -> incr decode_errors
        | Ok v ->
          let field name =
            Option.value ~default:0
              (Option.bind (Json.member name v) Json.to_int)
          in
          violations := !violations + field "violations";
          decode_errors := !decode_errors + field "decode_errors")
    end
  done;
  (!violations, !decode_errors)

(* --- orchestration --------------------------------------------------- *)

let kill_children pids =
  List.iter (fun pid -> try Unix.kill pid Sys.sigkill with _ -> ()) pids

let reap pids ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait_one pid =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.02);
        wait_one pid
      end
      else begin
        (try Unix.kill pid Sys.sigkill with _ -> ());
        ignore (Unix.waitpid [] pid)
      end
    | _ -> ()
    | exception Unix.Unix_error (ECHILD, _, _) -> ()
  in
  List.iter wait_one pids

let shutdown_ring c ~n =
  for node = 0 to n - 1 do
    Live_transport.send c.tr ~src:c.self ~dst:node Wire.Shutdown
  done;
  (* Let the shutdown frames flush. *)
  ignore (pump c ~seconds:1.0 (fun () -> false))

let smoke_workload c ~n ~inserts ~lookups =
  let key i = Printf.sprintf "live-key-%04d" i in
  for i = 1 to inserts do
    Live_transport.send c.tr ~src:c.self ~dst:((i - 1) mod n)
      (Wire.Client_insert { req = i; key = key i; value = Printf.sprintf "v%d" i })
  done;
  let inserts_done () =
    let ok = ref 0 in
    for i = 1 to inserts do
      if Hashtbl.mem c.replies i then incr ok
    done;
    !ok = inserts
  in
  let _ = pump c ~seconds:30. inserts_done in
  let inserts_ok = ref 0 in
  for i = 1 to inserts do
    match Hashtbl.find_opt c.replies i with
    | Some (Wire.Client_reply { found = true; _ }) -> incr inserts_ok
    | _ -> ()
  done;
  let base = 1_000_000 in
  for j = 1 to lookups do
    let target = ((j * 7) mod inserts) + 1 in
    Live_transport.send c.tr ~src:c.self ~dst:((j - 1) mod n)
      (Wire.Client_lookup { req = base + j; key = key target })
  done;
  let lookups_done () =
    let ok = ref 0 in
    for j = 1 to lookups do
      if Hashtbl.mem c.replies (base + j) then incr ok
    done;
    !ok = lookups
  in
  let _ = pump c ~seconds:30. lookups_done in
  let found = ref 0 in
  for j = 1 to lookups do
    match Hashtbl.find_opt c.replies (base + j) with
    | Some (Wire.Client_reply { found = true; _ }) -> incr found
    | _ -> ()
  done;
  (!inserts_ok, !found)

let run ?(inserts = 200) ?(lookups = 500) ?(ready_timeout = 30.)
    ?(dump_dir = "_serve_health") ?(sample_rate = 0.01) ?(sample_seed = 0)
    ?(slo = []) ?(linger = 0.) ~peers:n ~port_base ~smoke () =
  (* The live loop selects with [Unix.select], whose fd_set caps out at
     FD_SETSIZE (typically 1024).  The tracker node and the parent
     client both talk to every peer, so rings past a few hundred peers
     exceed it; warn rather than corrupt fd_sets silently. *)
  if n > 400 then
    Printf.eprintf
      "serve: warning: %d peers approaches the select() FD_SETSIZE limit \
       (1024 fds); rings this size need a poll/epoll loop (see SCALING.md)\n%!"
      n;
  mkdir_p dump_dir;
  (* One epoch for the whole cluster, fixed before the forks: every
     process stamps trace times on the same zero, so merged span trees
     line up across tracks. *)
  let epoch = Unix.gettimeofday () in
  let pids =
    List.init n (fun node ->
        match Unix.fork () with
        | 0 ->
          (* Child: run the node; never returns. *)
          (try
             run_child ~node ~n ~port_base ~dump_dir ~epoch ~sample_rate
               ~sample_seed
           with e ->
             Printf.eprintf "node %d died: %s\n%!" node (Printexc.to_string e);
             exit 2)
        | pid -> pid)
  in
  let c = make_client ~self:n ~listen_peers:n ~n ~port_base in
  let finish ~ready_nodes ~inserts_ok ~lookups_found ~lookups_total ~obs =
    shutdown_ring c ~n;
    Live_transport.stop c.tr;
    reap pids ~seconds:5.;
    let violations, decode_errors = scan_dumps ~dump_dir ~n in
    let recall =
      if lookups_total = 0 then 0.
      else float_of_int lookups_found /. float_of_int lookups_total
    in
    let exit_code =
      if
        ready_nodes = n
        && inserts_ok = inserts
        && lookups_total > 0
        && lookups_found = lookups_total
        && violations = 0
        && decode_errors = 0
        && obs.obs_slo_ok
        && obs.obs_overhead_ok
      then 0
      else 1
    in
    {
      ready_nodes;
      inserts_ok;
      lookups_found;
      lookups_total;
      recall;
      violations;
      decode_errors;
      scraped = obs.obs_scraped;
      slo_ok = obs.obs_slo_ok;
      trace_overhead_pct = obs.obs_overhead_pct;
      exit_code;
    }
  in
  let no_obs =
    { obs_scraped = 0; obs_slo_ok = true; obs_overhead_pct = 0.;
      obs_overhead_ok = true }
  in
  let all_ready, ready_nodes = wait_ready c ~n ~seconds:ready_timeout in
  if not all_ready then begin
    Printf.eprintf "serve: only %d/%d nodes ready after %.0fs\n%!" ready_nodes
      n ready_timeout;
    let o =
      finish ~ready_nodes ~inserts_ok:0 ~lookups_found:0 ~lookups_total:0
        ~obs:no_obs
    in
    kill_children pids;
    { o with exit_code = 1 }
  end
  else if smoke then begin
    Printf.printf "serve: ring of %d nodes ready on ports %d-%d\n%!" n
      port_base (port_base + n - 1);
    let inserts_ok, lookups_found = smoke_workload c ~n ~inserts ~lookups in
    (* scrape while the ring is still serving — this is the live window
       dump-on-exit never had *)
    let obs = observe_cluster c ~n ~dump_dir ~slo ~sample_rate in
    if linger > 0. then begin
      (* hold the warmed-up ring open so an external aggregator
         ([p2psim top] / [cluster-report]) can scrape populated
         histograms; cluster-metrics.json already on disk marks the
         window's start for scripts *)
      Printf.printf "serve: lingering %.0fs for external scrapes\n%!" linger;
      ignore (pump c ~seconds:linger (fun () -> false))
    end;
    finish ~ready_nodes ~inserts_ok ~lookups_found ~lookups_total:lookups ~obs
  end
  else begin
    Printf.printf
      "serve: ring of %d nodes ready on ports %d-%d (Ctrl-C to stop)\n%!" n
      port_base (port_base + n - 1);
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
    while not !stop do
      ignore (Live_transport.step ~timeout:0.2 c.tr)
    done;
    let o =
      finish ~ready_nodes ~inserts_ok:0 ~lookups_found:0 ~lookups_total:0
        ~obs:no_obs
    in
    (* Without a smoke workload, success means the ring formed and the
       dumps are clean. *)
    {
      o with
      exit_code =
        (if ready_nodes = n && o.violations = 0 && o.decode_errors = 0 then 0
         else 1);
    }
  end

let print_outcome o =
  Printf.printf
    "serve: ready=%d inserts_ok=%d lookups=%d/%d recall=%.3f violations=%d \
     decode_errors=%d scraped=%d slo_ok=%b trace_overhead=%.3f%% -> %s\n%!"
    o.ready_nodes o.inserts_ok o.lookups_found o.lookups_total o.recall
    o.violations o.decode_errors o.scraped o.slo_ok o.trace_overhead_pct
    (if o.exit_code = 0 then "PASS" else "FAIL")
