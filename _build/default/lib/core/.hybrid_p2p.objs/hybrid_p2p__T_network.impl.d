lib/core/t_network.ml: Array Config Data_store Hashtbl Id_space List Option P2p_hashspace P2p_sim Peer Printf S_network Stdlib World
