type handle = {
  mutable dead : bool;
  mutable queued : bool;  (* still physically present in some heap slot *)
  dead_count : int ref;  (* shared with the owning queue *)
}

type 'a entry = { time : float; seq : int; value : 'a; handle : handle }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots at index >= size are physical garbage kept only to satisfy
     the array type; [dummy] fills freed slots. *)
  mutable size : int;
  tick : int ref;
  dead_in_heap : int ref;  (* cancelled entries still occupying slots *)
}

let create ?tick () =
  let tick = match tick with Some t -> t | None -> ref 0 in
  { heap = [||]; size = 0; tick; dead_in_heap = ref 0 }

let entry_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let heap = Array.make new_cap entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

(* Squeeze every cancelled entry out in one pass and re-heapify.  Lazy
   cancellation only frees dead events when they surface at the root, so
   timer-heavy churn (watchdog resets, anti-entropy rearming) would
   otherwise keep arbitrarily many dead slots alive in the middle of the
   heap. *)
let compact t =
  let live = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    if e.handle.dead then e.handle.queued <- false
    else begin
      t.heap.(!live) <- e;
      incr live
    end
  done;
  t.size <- !live;
  t.dead_in_heap := 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let maybe_compact t = if t.size >= 16 && 2 * !(t.dead_in_heap) > t.size then compact t

let add t ~time value =
  let handle = { dead = false; queued = true; dead_count = t.dead_in_heap } in
  let entry = { time; seq = !(t.tick); value; handle } in
  t.tick := !(t.tick) + 1;
  maybe_compact t;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  handle

let cancel h =
  if not h.dead then begin
    h.dead <- true;
    if h.queued then incr h.dead_count
  end

let cancelled h = h.dead

let remove_top t =
  let h = t.heap.(0).handle in
  h.queued <- false;
  if h.dead then decr t.dead_in_heap;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end

(* Discard dead events sitting at the root. *)
let rec drop_dead t =
  if t.size > 0 && t.heap.(0).handle.dead then begin
    remove_top t;
    drop_dead t
  end

let pop t =
  drop_dead t;
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    remove_top t;
    Some (top.time, top.value)
  end

let peek_time t =
  drop_dead t;
  if t.size = 0 then None else Some t.heap.(0).time

let peek_key t =
  drop_dead t;
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    Some (top.time, top.seq)
  end

let is_empty t =
  drop_dead t;
  t.size = 0

let length t = t.size

let live_length t = t.size - !(t.dead_in_heap)
