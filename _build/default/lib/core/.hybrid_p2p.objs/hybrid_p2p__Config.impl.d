lib/core/config.ml:
