type handle = Event_queue.handle

type labeled = { label : string option; thunk : unit -> unit }

type label_stats = { mutable fires : int; mutable cpu_s : float }

(* The event population is partitioned into [lanes] independent heaps
   sharing one sequence counter.  Execution merges the lane heads by
   (time, seq), so with [lookahead = 0] the order is bit-identical to a
   single queue for every lane count; [run] additionally drains a lane in
   batches while it stays ahead of every other lane (plus the lookahead
   allowance), which keeps the merge overhead off the hot path when
   segments genuinely run independently. *)
type lane_stat = {
  lane_events : int;
  lane_pending : int;
  lane_high_water : int;
  lane_merge_stalls : int;
}

type t = {
  lanes : labeled Event_queue.t array;
  lookahead : float;
  mutable clock : float;
  mutable executed : int;
  root_rng : Rng.t;
  mutable queue_hwm : int;
  mutable physical : int;  (* events currently occupying heap slots *)
  mutable profiling : bool;
  label_table : (string, label_stats) Hashtbl.t;
  (* per-lane occupancy: where do events execute, how deep does each
     lane's heap get, and how often does a batch hit another lane's
     frontier (the merge-overhead signal lookahead tuning cares about) *)
  lane_executed : int array;
  lane_hwm : int array;
  lane_stalls : int array;
  (* one executor closure per lane, built once — [pop_apply] then runs
     events without a fresh closure per pop *)
  mutable exec : (float -> labeled -> unit) array;
  (* scoped batch insertion: inside [schedule_batch] every insert defers
     its heap sift; [batch_dirty] marks the lanes to flush on exit *)
  mutable in_batch : bool;
  batch_dirty : bool array;
}

let account t label cpu_s =
  let stats =
    match Hashtbl.find_opt t.label_table label with
    | Some s -> s
    | None ->
      let s = { fires = 0; cpu_s = 0.0 } in
      Hashtbl.add t.label_table label s;
      s
  in
  stats.fires <- stats.fires + 1;
  stats.cpu_s <- stats.cpu_s +. cpu_s

let execute t lane time { label; thunk } =
  t.clock <- time;
  t.executed <- t.executed + 1;
  t.lane_executed.(lane) <- t.lane_executed.(lane) + 1;
  t.physical <- t.physical - 1;
  match label with
  | Some label when t.profiling ->
    let started = Sys.time () in
    thunk ();
    account t label (Sys.time () -. started)
  | Some _ | None -> thunk ()

let create ~seed ?(lanes = 1) ?(lookahead = 0.0) () =
  if lanes < 1 then invalid_arg "Engine.create: lanes must be >= 1";
  if lookahead < 0.0 then invalid_arg "Engine.create: negative lookahead";
  let tick = ref 0 in
  let t =
    {
      lanes = Array.init lanes (fun _ -> Event_queue.create ~tick ());
      lookahead;
      clock = 0.0;
      executed = 0;
      root_rng = Rng.create seed;
      queue_hwm = 0;
      physical = 0;
      profiling = false;
      label_table = Hashtbl.create 16;
      lane_executed = Array.make lanes 0;
      lane_hwm = Array.make lanes 0;
      lane_stalls = Array.make lanes 0;
      exec = [||];
      in_batch = false;
      batch_dirty = Array.make lanes false;
    }
  in
  t.exec <- Array.init lanes (fun i time ev -> execute t i time ev);
  t

let rng t = t.root_rng

let now t = t.clock

let lanes t = Array.length t.lanes

let lookahead t = t.lookahead

let enable_profiling t = t.profiling <- true

let profiling t = t.profiling

let lane_index t shard =
  match shard with
  | None -> 0
  | Some s -> (s land max_int) mod Array.length t.lanes

let physical_length t =
  Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.lanes

(* Incremental physical-population bookkeeping around one lane insert:
   adding can trigger a lane compaction, so resync against the true
   figure when the lane shrank. *)
let track_insert t i ~before ~after =
  t.physical <- t.physical + (after - before);
  if after < before then t.physical <- physical_length t
  else if t.physical > t.queue_hwm then t.queue_hwm <- t.physical;
  if after > t.lane_hwm.(i) then t.lane_hwm.(i) <- after

let add t ~time ~shard ~label f =
  let i = lane_index t shard in
  let q = t.lanes.(i) in
  let before = Event_queue.length q in
  let h =
    if t.in_batch then begin
      t.batch_dirty.(i) <- true;
      Event_queue.batch_add q ~time { label; thunk = f }
    end
    else Event_queue.add q ~time { label; thunk = f }
  in
  track_insert t i ~before ~after:(Event_queue.length q);
  h

let schedule ?label ?shard t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  add t ~time:(t.clock +. delay) ~shard ~label f

let schedule_at ?label ?shard t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  add t ~time ~shard ~label f

(* The fire-and-forget fast path: no handle, and [label]/[shard] are
   plain arguments so a call site with hoisted values allocates nothing
   beyond the event record itself. *)
let schedule_detached t ~label ~shard ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_detached: negative delay";
  let i = (shard land max_int) mod Array.length t.lanes in
  let q = t.lanes.(i) in
  let time = t.clock +. delay in
  let before = Event_queue.length q in
  if t.in_batch then begin
    t.batch_dirty.(i) <- true;
    Event_queue.batch_add_fast q ~time { label; thunk = f }
  end
  else Event_queue.add_fast q ~time { label; thunk = f };
  track_insert t i ~before ~after:(Event_queue.length q)

let flush_batches t =
  for i = 0 to Array.length t.batch_dirty - 1 do
    if t.batch_dirty.(i) then begin
      t.batch_dirty.(i) <- false;
      let q = t.lanes.(i) in
      let before = Event_queue.length q in
      Event_queue.flush_batch q;
      (* flushing can compact the lane; only shrinkage to account for *)
      let after = Event_queue.length q in
      if after < before then t.physical <- physical_length t
    end
  done

(* hand-rolled instead of [Fun.protect]: this wraps every multi-recipient
   fan-out, and the protect wrapper's closure is measurable there *)
let schedule_batch t f =
  if t.in_batch then f ()
  else begin
    t.in_batch <- true;
    match f () with
    | () ->
      t.in_batch <- false;
      flush_batches t
    | exception e ->
      t.in_batch <- false;
      flush_batches t;
      raise e
  end

let cancel = Event_queue.cancel

(* Index of the lane holding the globally earliest live event by
   (time, seq) — exactly the entry a single merged heap would pop. *)
let min_lane t =
  let n = Array.length t.lanes in
  if n = 1 then if Event_queue.is_empty t.lanes.(0) then -1 else 0
  else begin
    let best = ref (-1) in
    let best_time = ref infinity and best_seq = ref max_int in
    for i = 0 to n - 1 do
      let q = t.lanes.(i) in
      if not (Event_queue.is_empty q) then begin
        let time = Event_queue.next_time q in
        let seq = Event_queue.peek_seq q in
        if time < !best_time || (time = !best_time && seq < !best_seq) then begin
          best := i;
          best_time := time;
          best_seq := seq
        end
      end
    done;
    !best
  end

let step t =
  match min_lane t with
  | -1 -> false
  | i -> Event_queue.pop_apply t.lanes.(i) t.exec.(i)

(* Earliest head time over every lane except [i]: the conservative bound
   up to which lane [i] may run without consulting the others. *)
let frontier_excluding t i =
  let bound = ref infinity in
  for j = 0 to Array.length t.lanes - 1 do
    if j <> i then begin
      let time = Event_queue.next_time t.lanes.(j) in
      if time < !bound then bound := time
    end
  done;
  !bound

let rec run t =
  match min_lane t with
  | -1 -> ()
  | i ->
    let q = t.lanes.(i) in
    let exec = t.exec.(i) in
    ignore (Event_queue.pop_apply q exec : bool);
    (* Batch: keep draining this lane while it cannot race any other
       lane.  With lookahead = 0 only strictly earlier events qualify
       (same-time events across lanes must merge by sequence number, so
       order stays single-queue-identical); a positive lookahead lets the
       lane run bounded-skew ahead, the conservative-lookahead window. *)
    let continue = ref true in
    while !continue do
      if Event_queue.is_empty q then continue := false
      else begin
        let frontier = frontier_excluding t i in
        let time = Event_queue.next_time q in
        if
          time < frontier
          || (t.lookahead > 0.0 && time <= frontier +. t.lookahead)
        then ignore (Event_queue.pop_apply q exec : bool)
        else begin
          (* the lane still has work but another lane's frontier stops
             the batch: back to the global merge *)
          t.lane_stalls.(i) <- t.lane_stalls.(i) + 1;
          continue := false
        end
      end
    done;
    run t

let run_until t ~time =
  let rec loop () =
    match min_lane t with
    | -1 -> ()
    | i ->
      let q = t.lanes.(i) in
      (* min_lane <> -1 guarantees a live head *)
      if Event_queue.next_time q <= time then begin
        ignore (Event_queue.pop_apply q t.exec.(i) : bool);
        loop ()
      end
  in
  loop ();
  if time > t.clock then t.clock <- time

let events_executed t = t.executed

let pending t =
  Array.fold_left (fun acc q -> acc + Event_queue.live_length q) 0 t.lanes

let queue_high_water t = t.queue_hwm

let lane_stats t =
  Array.mapi
    (fun i q ->
      {
        lane_events = t.lane_executed.(i);
        lane_pending = Event_queue.live_length q;
        lane_high_water = t.lane_hwm.(i);
        lane_merge_stalls = t.lane_stalls.(i);
      })
    t.lanes

let profile t =
  Hashtbl.fold
    (fun label s acc -> (label, s.fires, s.cpu_s) :: acc)
    t.label_table []
  |> List.sort compare
