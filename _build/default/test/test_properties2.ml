(* Second property batch: the extension features and tooling.

   - cache: capacity bound, freshness, and hit consistency under random
     put/find/advance sequences;
   - trace: ring-buffer retention law under random record streams;
   - data conservation through the spreading walk: inserts never lose or
     duplicate items whatever the tree shape;
   - scenario runner: invariants hold and population arithmetic balances
     for arbitrary scripts;
   - ascii plots: never raise, always bounded output. *)

module Cache = Hybrid_p2p.Cache
module Trace = P2p_sim.Trace
module Ascii_plot = P2p_stats.Ascii_plot
module Scenario = P2p_scenario.Scenario
module H = Hybrid_p2p.Hybrid

(* --- cache laws --- *)

type cache_op = Put of string * float | Find of string * float

let cache_op_gen =
  QCheck.Gen.(
    let key = map (Printf.sprintf "k%d") (int_bound 8) in
    let time = float_bound_inclusive 100.0 in
    oneof
      [ map2 (fun k t -> Put (k, t)) key time; map2 (fun k t -> Find (k, t)) key time ])

let cache_script_arb =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d ops=%d" cap (List.length ops))
    QCheck.Gen.(pair (int_range 1 5) (list_size (int_range 1 60) cache_op_gen))

let prop_cache_capacity_bound =
  QCheck.Test.make ~name:"cache size never exceeds capacity" ~count:300 cache_script_arb
    (fun (capacity, ops) ->
      let c = Cache.create ~capacity in
      List.for_all
        (fun op ->
          (match op with
           | Put (key, now) -> Cache.put c ~now ~lifetime:10.0 ~key ~value:key
           | Find (key, now) -> ignore (Cache.find c ~now ~key : string option));
          Cache.size c <= capacity)
        ops)

let prop_cache_never_serves_stale =
  QCheck.Test.make ~name:"cache never serves an expired entry" ~count:300
    cache_script_arb (fun (capacity, ops) ->
      let c = Cache.create ~capacity in
      (* remember the freshest expiry per key *)
      let expiry = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | Put (key, now) ->
            Cache.put c ~now ~lifetime:10.0 ~key ~value:key;
            Hashtbl.replace expiry key (now +. 10.0);
            true
          | Find (key, now) -> (
            match Cache.find c ~now ~key with
            | Some _ ->
              (* a hit implies the freshest put has not expired *)
              (match Hashtbl.find_opt expiry key with
               | Some e -> e > now
               | None -> false)
            | None -> true))
        ops)

(* --- trace retention --- *)

let prop_trace_retention =
  QCheck.Test.make ~name:"trace keeps exactly the newest min(total, capacity) events"
    ~count:300
    (QCheck.pair (QCheck.make (QCheck.Gen.int_range 1 8)) QCheck.small_nat)
    (fun (capacity, n) ->
      QCheck.assume (n <= 200);
      let t = Trace.create ~capacity () in
      for i = 1 to n do
        Trace.record t ~time:(float_of_int i) ~tag:"t" (string_of_int i)
      done;
      let events = Trace.events t in
      Trace.length t = min n capacity
      && Trace.total_recorded t = n
      && List.length events = min n capacity
      && List.for_all2
           (fun e expected -> e.Trace.detail = string_of_int expected)
           events
           (List.init (min n capacity) (fun i -> n - min n capacity + i + 1)))

(* --- data conservation through placement --- *)

let prop_insert_conserves_items =
  QCheck.Test.make ~name:"inserts conserve items under both placement schemes"
    ~count:12
    (QCheck.triple QCheck.small_int QCheck.bool (QCheck.make (QCheck.Gen.int_range 10 60)))
    (fun (seed, spread, n_items) ->
      let placement =
        if spread then Hybrid_p2p.Config.Spread_to_neighbors
        else Hybrid_p2p.Config.Store_at_tpeer
      in
      let config = { Hybrid_p2p.Config.default with Hybrid_p2p.Config.placement } in
      let h = H.create_star ~seed ~peers:128 ~config () in
      ignore (H.grow h ~count:40 ~s_fraction:0.7 : Hybrid_p2p.Peer.t array);
      for i = 0 to n_items - 1 do
        H.insert h ~from:(H.random_peer h) ~key:(Printf.sprintf "c%d" i) ~value:"v" ()
      done;
      H.run h;
      H.total_items h = n_items && Result.is_ok (H.check_invariants h))

(* --- scenario runner --- *)

let scenario_action_gen =
  QCheck.Gen.frequency
    [ (3, QCheck.Gen.return Scenario.Join_t);
      (4, QCheck.Gen.return Scenario.Join_s);
      (2, QCheck.Gen.return Scenario.Leave_random);
      (1, QCheck.Gen.return Scenario.Crash_random);
      (1, QCheck.Gen.return Scenario.Repair);
      (2, QCheck.Gen.map (fun n -> Scenario.Insert_items (n mod 20)) QCheck.Gen.small_nat);
      (2, QCheck.Gen.map (fun n -> Scenario.Lookup_items (n mod 20)) QCheck.Gen.small_nat);
      (1, QCheck.Gen.return Scenario.Settle) ]

let scenario_arb =
  QCheck.make
    ~print:(fun (seed, script) ->
      Printf.sprintf "seed=%d actions=%d" seed (List.length script))
    QCheck.Gen.(pair small_nat (list_size (int_range 1 25) scenario_action_gen))

let prop_scenario_always_checkable =
  QCheck.Test.make ~name:"scenario scripts always end with invariants intact" ~count:20
    scenario_arb (fun (seed, script) ->
      let h = H.create_star ~seed:(seed + 1) ~peers:200 () in
      let report = Scenario.run h ~seed ~script in
      Result.is_ok report.Scenario.invariants)

let prop_scenario_population_arithmetic =
  QCheck.Test.make ~name:"scenario population = joined - left - crashed" ~count:20
    scenario_arb (fun (seed, script) ->
      let h = H.create_star ~seed:(seed + 2) ~peers:200 () in
      let report = Scenario.run h ~seed ~script in
      report.Scenario.final_peers
      = report.Scenario.joined - report.Scenario.left - report.Scenario.crashed)

let prop_scenario_lookups_accounted =
  QCheck.Test.make ~name:"scenario lookups all reported" ~count:20 scenario_arb
    (fun (seed, script) ->
      let requested =
        List.fold_left
          (fun acc -> function Scenario.Lookup_items n -> acc + n | _ -> acc)
          0 script
      in
      let h = H.create_star ~seed:(seed + 3) ~peers:200 () in
      let report = Scenario.run h ~seed ~script in
      report.Scenario.lookups_ok + report.Scenario.lookups_failed = requested)

(* --- plots never fail --- *)

let series_gen =
  QCheck.Gen.(
    list_size (int_range 0 4)
      (map
         (fun pts -> { Ascii_plot.name = "s"; points = pts })
         (list_size (int_range 0 20)
            (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))))

let prop_plot_total_function =
  QCheck.Test.make ~name:"line_chart is total and bounded" ~count:300
    (QCheck.make series_gen) (fun series ->
      let chart = Ascii_plot.line_chart ~width:40 ~height:8 ~series () in
      String.length chart > 0 && String.length chart < 20_000)

let prop_histogram_total_function =
  QCheck.Test.make ~name:"histogram is total" ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 10)
           (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))
              (float_bound_inclusive 50.0))))
    (fun bars ->
      String.length (Ascii_plot.histogram ~width:20 ~bars ()) > 0)

(* pinned randomness: property runs are reproducible across invocations *)
let suite =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      prop_cache_capacity_bound;
      prop_cache_never_serves_stale;
      prop_trace_retention;
      prop_insert_conserves_items;
      prop_scenario_always_checkable;
      prop_scenario_population_arithmetic;
      prop_scenario_lookups_accounted;
      prop_plot_total_function;
      prop_histogram_total_function;
    ]
