lib/analysis/formulas.mli:
