(** Deterministic simulation backend of the transport seam.

    A thin adapter over {!P2p_net.Underlay} (message delivery with
    propagation delay, link stress and tracing) and {!P2p_sim.Timer}
    (engine-clock timers).  It introduces no scheduling of its own:
    [send] maps 1:1 onto [Underlay.send] and timers onto [Timer], so a
    simulation driven through this seam produces bit-identical traces to
    one calling the underlay directly. *)

type t

include
  Transport.S
    with type t := t
     and type payload = unit -> unit
     and type addr = int

(** [make ~underlay] builds the backend over an existing underlay (the
    engine is the underlay's engine). *)
val make : underlay:P2p_net.Underlay.t -> t

(** [transport t] is the first-class closure-payload record the protocol
    core stores. *)
val transport : t -> Transport.t

(** [create ~underlay] is [transport (make ~underlay)]. *)
val create : underlay:P2p_net.Underlay.t -> Transport.t
