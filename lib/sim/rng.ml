type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift/multiply avalanche of the incremented
   state.  Reference: Steele, Lea, Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let hash62 ~seed x =
  (* One stateless SplitMix64 step: item [x] indexes the stream position,
     [seed] selects the stream.  No state, so callers can hash the same
     item repeatedly (per-op sampling decisions) at constant cost. *)
  let z =
    Int64.add (Int64.mul (Int64.of_int x) golden_gamma) (Int64.of_int seed)
  in
  Int64.to_int (Int64.shift_right_logical (mix z) 2)

let split t =
  let seed = bits64 t in
  { state = seed }

let nonneg_int t =
  (* Take the top 62 bits so the result fits a native OCaml int. *)
  Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = nonneg_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let float_in_range t ~lo ~hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let copy = Array.copy arr in
  (* Partial Fisher-Yates: after i swaps the first i slots are the sample. *)
  for i = 0 to k - 1 do
    let j = int_in_range t ~lo:i ~hi:(n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
