lib/topology/link_stress.ml: Graph Hashtbl Option Stdlib
