lib/workload/churn.mli: P2p_sim
