type point = { value : int; density : float }

let of_histogram h ~bin_width =
  let total = Histogram.total h in
  if total = 0 then []
  else
    Histogram.rebin h ~width:bin_width
    |> List.map (fun (value, count) ->
           { value; density = float_of_int count /. float_of_int total })

let fraction_zero h = Histogram.fraction h 0

let fraction_below h v = if v <= 0 then 0.0 else Histogram.fraction_at_most h (v - 1)

let max_load h = Stdlib.max 0 (Histogram.max_value h)

let pp_series ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun { value; density } -> Format.fprintf ppf "%6d  %.5f@," value density)
    points;
  Format.fprintf ppf "@]"
