(** Bounded in-memory event tracing with operation-scoped correlation.

    A trace is a ring buffer of timestamped, tagged events.  Subsystems
    record what they do ([message], [join], [lookup], ...); tests and
    debugging sessions inspect, filter, or dump the buffer.  Keeping the
    buffer bounded makes tracing safe to leave enabled in long experiments
    — old events fall off the back.

    Every top-level operation (an insert, a lookup, a join, ...) can mint
    an {e operation id} with {!begin_op}; each message, timer, and handler
    the operation causes records events carrying that id, so a single
    lookup can be replayed afterwards as an ordered per-hop event list
    ({!events_of_op}).

    Recording through a disabled trace is a no-op costing one branch, so
    library code can trace unconditionally. *)

type t

(** The operation classes the hybrid system distinguishes.  [Custom]
    covers ad-hoc experiment-defined operations. *)
type op_kind =
  | Insert
  | Lookup
  | T_join
  | S_join
  | Leave
  | Repair
  | Keyword
  | Replicate  (** replica fan-out / re-replication heal *)
  | Anti_entropy  (** periodic digest exchange between replica peers *)
  | Custom of string

(** Stable wire name of an operation kind (["insert"], ["t-join"], ...). *)
val op_kind_to_string : op_kind -> string

(** Inverse of {!op_kind_to_string}; unknown names map to [Custom]. *)
val op_kind_of_string : string -> op_kind

type event = {
  time : float;  (** simulated ms *)
  tag : string;  (** category, e.g. ["message"], ["join"], ["crash"] *)
  op : int option;  (** operation id the event belongs to, if any *)
  src : int option;  (** sending host for message events *)
  dst : int option;  (** receiving host for message events *)
  detail : string;
}

(** [create ~capacity ()] makes a trace keeping the last [capacity]
    events.  @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> unit -> t

(** A trace that drops everything (the default wiring). *)
val disabled : t

(** [enabled t] — does recording do anything? *)
val enabled : t -> bool

(** [record t ~time ~tag ?op ?src ?dst detail] appends an event (dropping
    the oldest if full).  [op] attributes the event to an operation minted
    with {!begin_op}; [src]/[dst] identify the hosts of a message event. *)
val record :
  t -> time:float -> tag:string -> ?op:int -> ?src:int -> ?dst:int -> string -> unit

(** [record_f t ~time ~tag fmt ...] — like {!record} with a format string;
    the message is not built when the trace is disabled. *)
val record_f :
  t ->
  time:float ->
  tag:string ->
  ?op:int ->
  ?src:int ->
  ?dst:int ->
  ('a, unit, string, unit) format4 ->
  'a

(** [begin_op t ~time ~kind detail] mints a fresh operation id and records
    a ["<kind>-start"] event carrying it.  Ids are consecutive from [0] in
    minting order, so a fixed seed yields identical ids run to run.  The id
    is minted (and unique) even when the trace is disabled. *)
val begin_op : t -> time:float -> kind:op_kind -> string -> int

(** [end_op t ~time ~op detail] records the terminal ["op-end"] event of
    operation [op] ([detail] conventionally carries the outcome). *)
val end_op : t -> time:float -> op:int -> string -> unit

(** Number of operation ids minted so far. *)
val ops_started : t -> int

(** Number of events currently retained. *)
val length : t -> int

(** Total events ever recorded (including dropped ones). *)
val total_recorded : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

(** [find t ~tag] retains only events with the given tag, oldest first. *)
val find : t -> tag:string -> event list

(** [events_of_op t op] — the retained events of one operation, oldest
    first: the operation's replayable hop-by-hop record. *)
val events_of_op : t -> int -> event list

(** [clear t] empties the buffer.  The lifetime accounting survives:
    {!total_recorded} and {!ops_started} keep counting from where they
    were, so a consumer draining the buffer in slices still sees how much
    was ever recorded.  Use {!reset} to also zero the counters. *)
val clear : t -> unit

(** [reset t] empties the buffer {e and} zeroes the lifetime counters:
    after [reset], {!total_recorded} and {!ops_started} are [0] and the
    next {!begin_op} mints id [0] again — a fresh trace in place.  Only
    safe when no live operation id minted before the reset will be used
    afterwards (ids restart and would collide). *)
val reset : t -> unit

(** [pp_event ppf e] prints one event:
    ["%.3f [tag] op=N #src->#dst detail"] (op and hosts only when set). *)
val pp_event : Format.formatter -> event -> unit

(** [pp ppf t] prints one event per line with {!pp_event}. *)
val pp : Format.formatter -> t -> unit
