module Summary = P2p_stats.Summary

type t = {
  mutable messages : int;
  mutable physical_hops : int;
  mutable lookups_issued : int;
  mutable lookups_succeeded : int;
  mutable lookups_failed : int;
  mutable connum : int;
  lookup_latency : Summary.t;
  lookup_hops : Summary.t;
  join_latency : Summary.t;
  join_hops : Summary.t;
}

let create () =
  {
    messages = 0;
    physical_hops = 0;
    lookups_issued = 0;
    lookups_succeeded = 0;
    lookups_failed = 0;
    connum = 0;
    lookup_latency = Summary.create ();
    lookup_hops = Summary.create ();
    join_latency = Summary.create ();
    join_hops = Summary.create ();
  }

let record_message t ~physical_hops =
  t.messages <- t.messages + 1;
  t.physical_hops <- t.physical_hops + physical_hops

let record_lookup_issued t = t.lookups_issued <- t.lookups_issued + 1

let record_lookup_success t ~latency ~hops =
  t.lookups_succeeded <- t.lookups_succeeded + 1;
  Summary.add t.lookup_latency latency;
  Summary.add t.lookup_hops (float_of_int hops)

let record_lookup_failure t = t.lookups_failed <- t.lookups_failed + 1

let record_contact t = t.connum <- t.connum + 1

let record_contacts t n = t.connum <- t.connum + n

let record_join t ~latency ~hops =
  Summary.add t.join_latency latency;
  Summary.add t.join_hops (float_of_int hops)

let messages t = t.messages
let physical_hops t = t.physical_hops
let lookups_issued t = t.lookups_issued
let lookups_succeeded t = t.lookups_succeeded
let lookups_failed t = t.lookups_failed

let failure_ratio t =
  if t.lookups_issued = 0 then 0.0
  else float_of_int t.lookups_failed /. float_of_int t.lookups_issued

let connum t = t.connum

let lookup_latency t = t.lookup_latency
let lookup_hops t = t.lookup_hops
let join_latency t = t.join_latency
let join_hops t = t.join_hops

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages: %d (physical hops %d)@,lookups: %d issued, %d ok, %d failed (ratio %.4f)@,connum: %d@,lookup latency: %a@,join latency: %a@]"
    t.messages t.physical_hops t.lookups_issued t.lookups_succeeded
    t.lookups_failed (failure_ratio t) t.connum Summary.pp t.lookup_latency
    Summary.pp t.join_latency
