(** The hybrid peer-to-peer system: public facade.

    One value of type {!t} is a complete simulated deployment: the
    discrete-event engine, the physical underlay, the well-known server,
    and every peer.  Peers join and leave (gracefully or by crashing),
    insert [(key, value)] items and look them up; all operations travel as
    messages with real latencies, and every quantity the paper evaluates
    accumulates in {!metrics}.

    Typical use:
    {[
      let h = Hybrid.create_star ~seed:42 ~peers:100 () in
      Hybrid.grow h ~count:100 ~s_fraction:0.7;
      let p = Hybrid.random_peer h in
      Hybrid.insert h ~from:p ~key:"song.mp3" ~value:"bits";
      Hybrid.run h;
      Hybrid.lookup h ~from:(Hybrid.random_peer h) ~key:"song.mp3"
        ~on_result:(fun outcome -> ...);
      Hybrid.run h
    ]} *)

type t

(** Completed join, reported through [on_done]. *)
type join_outcome = { peer : Peer.t; hops : int; latency : float }

(** [create ~seed ~routing ?config ?snet_policy ?s_fraction
    ?processing_delay ?stress ()] makes an empty system over the given
    physical topology.  [s_fraction] is the paper's [p_s], used when
    {!join} is called without an explicit role (default [0.5]).
    [processing_delay] (ms, default [0.1]) is added to every message. *)
val create :
  seed:int ->
  routing:P2p_topology.Routing.t ->
  ?config:Config.t ->
  ?snet_policy:World.snet_policy ->
  ?s_fraction:float ->
  ?processing_delay:float ->
  ?stress:P2p_topology.Link_stress.t ->
  ?trace:P2p_sim.Trace.t ->
  unit ->
  t

(** [create_star ~seed ~peers ?latency ?config ?s_fraction ()] builds a
    synthetic hub-and-spoke underlay of [peers] hosts (every pair is two
    [latency]-ms hops apart) — handy for unit tests and examples that do
    not care about the physical topology. *)
val create_star :
  seed:int ->
  peers:int ->
  ?latency:float ->
  ?config:Config.t ->
  ?snet_policy:World.snet_policy ->
  ?s_fraction:float ->
  ?trace:P2p_sim.Trace.t ->
  unit ->
  t

(** {1 Accessors} *)

val engine : t -> P2p_sim.Engine.t

(** The message trace (disabled unless a trace was passed to {!create}). *)
val trace : t -> P2p_sim.Trace.t
val metrics : t -> P2p_net.Metrics.t
val config : t -> Config.t
val world : t -> World.t
val now : t -> float

(** Live peers, unordered. *)
val peers : t -> Peer.t list

val peer_count : t -> int
val t_peer_count : t -> int
val s_peer_count : t -> int

(** A uniformly random live peer.  @raise Invalid_argument when empty. *)
val random_peer : t -> Peer.t

(** {1 Running the clock} *)

(** [run t] drains every pending event.  Only terminates when heartbeats
    are off (periodic timers never quiesce). *)
val run : t -> unit

(** [run_for t ms] advances the clock by [ms] simulated milliseconds. *)
val run_for : t -> float -> unit

(** {1 Membership} *)

(** [join t ~host ...] starts a join.  The peer is visible immediately but
    only wired once the protocol completes (drive the engine!).  [role]
    overrides the server's coin-flip on [s_fraction]; the very first peer
    always bootstraps the ring.  [p_id] overrides the server-generated ID
    (t-peers only; conflicts resolve by ring midpoint).
    @raise Invalid_argument if [host] is already occupied. *)
val join :
  t ->
  host:int ->
  ?role:Peer.role ->
  ?p_id:P2p_hashspace.Id_space.id ->
  ?link_capacity:float ->
  ?interest:int ->
  ?on_done:(join_outcome -> unit) ->
  unit ->
  Peer.t

(** [grow t ~count ~s_fraction] joins [count] peers on fresh hosts with the
    given t/s split, settling the network between joins; returns them.
    Intended for test and experiment setup. *)
val grow : t -> count:int -> s_fraction:float -> Peer.t array

(** [fresh_host t] allocates the next unoccupied physical host.
    @raise Invalid_argument when the topology is exhausted. *)
val fresh_host : t -> int

(** [leave t peer ?on_done ()] departs gracefully (role transfer /
    leave triangle for t-peers; load handoff and subtree rejoin for
    s-peers). *)
val leave : t -> Peer.t -> ?on_done:(unit -> unit) -> unit -> unit

(** [crash t peer] rips the peer out without notice; its data is lost. *)
val crash : t -> Peer.t -> unit

(** [repair t] synchronously restores all invariants after crashes (the
    offline equivalent of heartbeat-driven recovery). *)
val repair : t -> unit

(** {1 Data} *)

(** [insert t ~from ~key ~value ?route_id ?on_done ()] stores an item
    (drive the engine to completion).  [route_id] overrides the routing ID
    for interest-based sharing — see {!Interest.route_id}. *)
val insert :
  t ->
  from:Peer.t ->
  key:string ->
  value:string ->
  ?route_id:P2p_hashspace.Id_space.id ->
  ?on_done:(holder:Peer.t -> hops:int -> unit) ->
  unit ->
  unit

(** [lookup t ~from ~key ?ttl ~on_result ()] resolves a key; the outcome
    callback fires exactly once. *)
val lookup :
  t ->
  from:Peer.t ->
  key:string ->
  ?ttl:int ->
  ?route_id:P2p_hashspace.Id_space.id ->
  on_result:(Data_ops.lookup_outcome -> unit) ->
  unit ->
  unit

(** [keyword_search t ~from ~substring ~route_id ~on_result ()] performs a
    partial search (Section 5.3): floods the s-network serving [route_id]
    and, after [window] ms (default 2000), reports every key containing
    [substring] with its holder. *)
val keyword_search :
  t ->
  from:Peer.t ->
  substring:string ->
  route_id:P2p_hashspace.Id_space.id ->
  ?ttl:int ->
  ?window:float ->
  on_result:(Data_ops.keyword_match list -> unit) ->
  unit ->
  unit

(** {1 Inspection} *)

(** Items stored per live peer — the Fig. 4 measurement. *)
val data_distribution : t -> P2p_stats.Histogram.t

(** Total items stored across all live peers. *)
val total_items : t -> int

(** [check_invariants t] validates ring order, tree shape (degree [<= δ],
    acyclicity, cp symmetry), role/p_id consistency, and that every stored
    item lies in the s-network serving its [d_id].  Call at quiescence. *)
val check_invariants : t -> (unit, string) result
