lib/workload/zipf.ml: Array P2p_sim
