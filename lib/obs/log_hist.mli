(** Log-bucketed latency histograms, mergeable across runs.

    Samples are counted into geometric buckets on the fixed grid
    [b_i = v0 * gamma^i] with [gamma = 2^(1/4)] (four buckets per
    doubling).  Because every histogram shares the grid, {!merge} is
    plain elementwise bucket addition — associative, commutative, and
    safe across processes via {!to_json}/{!of_json}.

    Percentiles are nearest-rank over the cumulative bucket counts and
    return the upper boundary of the selected bucket (clamped to the
    observed maximum), so a sample sitting exactly on a bucket boundary
    is reported back exactly. *)

type t

(** Lowest bucket boundary: values at or below [v0] land in bucket 0. *)
val v0 : float

(** Geometric bucket growth factor, [2 ** 0.25]. *)
val gamma : float

(** [boundary i] — the upper edge of bucket [i], [v0 * gamma^i]. *)
val boundary : int -> float

(** [index x] — the bucket of sample [x]; exact at boundaries:
    [index (boundary i) = i].  @raise Invalid_argument on NaN/infinite. *)
val index : float -> int

val create : unit -> t

(** [observe t x] counts sample [x]. *)
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float

(** Mean of the samples; [0.] when empty. *)
val mean : t -> float

(** @raise Invalid_argument when empty. *)
val min_value : t -> float

(** @raise Invalid_argument when empty. *)
val max_value : t -> float

(** Occupied buckets as [(index, count)], sorted by index. *)
val buckets : t -> (int * int) list

(** [percentile t p] for [p] in [\[0, 100\]].
    @raise Invalid_argument when empty or [p] out of range. *)
val percentile : t -> float -> float

(** [merge a b] — a fresh histogram counting both inputs' samples. *)
val merge : t -> t -> t

(** [merge_into ~into src] folds [src]'s samples into [into] in place —
    the aggregator's form of {!merge} when the destination is a live
    {!Registry} handle that cannot be replaced. *)
val merge_into : into:t -> t -> unit

(** [clear t] empties the histogram in place (handles stay valid). *)
val clear : t -> unit

(** Stable JSON form carrying the grid parameters, count/sum/min/max,
    precomputed p50/p90/p95/p99/p999 and the sparse bucket list. *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
