(** OCaml runtime gauges fed from [Gc.quick_stat] deltas.

    Registers, under subsystem ["gc"]:
    - [alloc_rate_mb_s] — MB allocated (minor + major, promotions not
      double-counted) per host {e CPU} second since the previous
      {!update};
    - [allocated_mb_total] — MB allocated since {!create};
    - [heap_mb] — current major-heap size;
    - [minor_collections], [major_collections], [compactions] —
      lifetime collection counts.

    These are pull-style gauges: nothing updates them per event.  Wire
    {!update} as the {!Sampler}'s [on_sample] hook for a timeline view,
    and call it once more before exporting final metrics. *)

type t

(** [create reg] registers the gauges and anchors the deltas at the
    current allocation figures. *)
val create : Registry.t -> t

(** [update t] re-reads [Gc.quick_stat] and refreshes every gauge.  The
    allocation rate covers the window since the previous [update] (it is
    left unchanged when no CPU time has elapsed). *)
val update : t -> unit
