lib/core/world.mli: Config Hashtbl Id_space P2p_hashspace P2p_net P2p_sim P2p_topology Peer
