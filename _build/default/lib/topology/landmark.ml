module Rng = P2p_sim.Rng

type t = {
  routing : Routing.t;
  landmark_list : int list;
  levels : float list;
  coords : (int, string) Hashtbl.t;
  clusters : (string, int) Hashtbl.t;
  mutable next_cluster : int;
}

let select_landmarks ~rng routing ~count =
  let n = Graph.node_count (Routing.graph routing) in
  if count <= 0 || count > n then invalid_arg "Landmark.select_landmarks";
  (* Farthest-point sampling: greedily add the node maximizing its distance
     to the already-chosen set. *)
  let first = Rng.int rng n in
  let chosen = ref [ first ] in
  let min_dist = Array.init n (fun v -> Routing.distance routing first v) in
  for _ = 2 to count do
    let best = ref 0 and best_d = ref neg_infinity in
    for v = 0 to n - 1 do
      if min_dist.(v) > !best_d && min_dist.(v) <> infinity then begin
        best := v;
        best_d := min_dist.(v)
      end
    done;
    chosen := !best :: !chosen;
    for v = 0 to n - 1 do
      let d = Routing.distance routing !best v in
      if d < min_dist.(v) then min_dist.(v) <- d
    done
  done;
  List.rev !chosen

let create routing ~landmarks ~levels =
  {
    routing;
    landmark_list = landmarks;
    levels;
    coords = Hashtbl.create 64;
    clusters = Hashtbl.create 64;
    next_cluster = 0;
  }

let level_of t d =
  let rec index i = function
    | [] -> i
    | threshold :: rest -> if d < threshold then i else index (i + 1) rest
  in
  index 0 t.levels

let compute_coordinate t node =
  let measured =
    List.mapi (fun i l -> (i, Routing.distance t.routing node l)) t.landmark_list
  in
  let sorted =
    List.sort
      (fun (i, d) (j, d') -> if d = d' then compare i j else compare d d')
      measured
  in
  let part (i, d) =
    if t.levels = [] then string_of_int i
    else Printf.sprintf "%d:%d" i (level_of t d)
  in
  String.concat "<" (List.map part sorted)

let coordinate t node =
  match Hashtbl.find_opt t.coords node with
  | Some c -> c
  | None ->
    let c = compute_coordinate t node in
    Hashtbl.add t.coords node c;
    c

let cluster_id t node =
  let c = coordinate t node in
  match Hashtbl.find_opt t.clusters c with
  | Some id -> id
  | None ->
    let id = t.next_cluster in
    t.next_cluster <- id + 1;
    Hashtbl.add t.clusters c id;
    id

let cluster_count t = t.next_cluster

let landmarks t = t.landmark_list
