(** The peer: a single participant of the hybrid system.

    A peer is either a {e t-peer} — a member of the structured ring
    (t-network) and root of its attached s-network tree — or an {e s-peer}
    hanging inside exactly one s-network tree.  The record is transparent:
    the protocol modules ([T_network], [S_network], [Data_ops], [Failure])
    cooperate by mutating it, and {!Hybrid} presents the safe facade.

    Pure structural helpers (tree walks, degree accounting, segment tests)
    live here so the protocol modules stay focused on message flows. *)

open P2p_hashspace

type role = T_peer | S_peer

(** A pending t-network join, queued while the predecessor's segment is
    locked by another join/leave (Section 3.3). *)
type 'peer pending_join = {
  candidate : 'peer;  (** the joining peer *)
  announce : hops:int -> unit;
      (** called when the join triangle completes, with the hop count the
          join request accumulated *)
  hops_so_far : int;
  op : int option;  (** trace operation id of the join, if tracing *)
}

type t = {
  host : int;  (** physical node the peer runs on; also its address *)
  mutable p_id : Id_space.id;
      (** ring ID; an s-peer carries its t-peer's p_id (Section 3.2.2) *)
  mutable role : role;
  mutable alive : bool;
  link_capacity : float;  (** access-link capacity (Section 5.1) *)
  mutable interest : int option;  (** interest category (Section 5.3) *)
  (* t-network state *)
  mutable succ : t option;
  mutable pred : t option;
  mutable fingers : t option array;  (** length [Id_space.bits]; t-peers only *)
  mutable joining : bool;  (** mutex: a join after me is in flight *)
  mutable leaving : bool;  (** mutex: I am executing the leave triangle *)
  mutable join_queue : t pending_join list;  (** FIFO, newest last *)
  (* s-network state *)
  mutable t_home : t option;  (** t-peer of my s-network; self for t-peers *)
  mutable cp : t option;  (** connect point = tree parent; [None] for roots *)
  mutable children : t list;
  (* data *)
  store : Data_store.t;
  replicas : Data_store.t;
      (** redundant copies held on behalf of other peers' segments when
          replication is on ({!P2p_replication}); kept apart from [store]
          so primary-placement invariants and item accounting are
          untouched.  Replica reads are a lookup fallback, never the
          primary path. *)
  cache : Cache.t;  (** soft cache of popular items (Section-7 future work) *)
  summaries : (int, Bloom.t array) Hashtbl.t;
      (** child host -> attenuated Bloom summary of the keys in that
          child's subtree, one filter per depth level.  Maintained by
          {!Summaries}; empty while edge summaries are disabled. *)
  mutable summaries_epoch : int;
      (** at tree roots: the {!World.t} summary epoch this tree's
          summaries were last rebuilt against; [-1] = never / stale *)
  tracker_index : (string, t) Hashtbl.t;
      (** BitTorrent-style mode only: at a t-peer, maps keys stored anywhere
          in its s-network to the holding peer *)
  (* bypass links, with absolute expiry times *)
  mutable bypass : (t * float) list;
  (* failure detection bookkeeping (driven by the [Failure] module) *)
  mutable watchdogs : (int, P2p_transport.Transport.timer) Hashtbl.t;  (** neighbour host -> timer *)
  mutable hello_timer : P2p_transport.Transport.timer option;
  mutable last_ack_sent : float;  (** for the suppress timer *)
}

(** [make ~host ~p_id ~role ~link_capacity ()] allocates a fresh,
    unconnected peer.  [cache_capacity] sizes the soft cache (default 0 =
    disabled).  [interner] is shared by the peer's store and replica store
    (pass the world's interner so every peer shares string storage;
    default: each store gets a private one). *)
val make :
  ?cache_capacity:int ->
  ?interner:Intern.t ->
  host:int -> p_id:Id_space.id -> role:role -> link_capacity:float ->
  ?interest:int -> unit -> t

(** {1 Role and segment} *)

val is_t_peer : t -> bool
val is_s_peer : t -> bool

(** [segment_left peer] is the exclusive left bound of the ID segment
    peer's s-network serves: the predecessor's p_id (or its own when alone
    on the ring).  Meaningful for t-peers. *)
val segment_left : t -> Id_space.id

(** [covers tpeer d_id] — does [tpeer]'s s-network serve [d_id]? *)
val covers : t -> Id_space.id -> bool

(** [quiet peer] — alive with no join/leave mutex engaged and an empty
    join queue.  Online checks only judge ring segments whose endpoints
    are quiet: a non-quiet peer's pointers may be mid-rewire inside a
    join/leave triangle, which is protocol, not damage. *)
val quiet : t -> bool

(** {1 Tree structure} *)

(** Tree degree: children plus one for the connect point if present.  The
    paper's δ constraint applies to this number. *)
val tree_degree : t -> int

(** [has_free_slot config peer] — may [peer] accept one more child under
    the degree constraint (and, when enabled, the link-usage rule of
    Section 5.1)? *)
val has_free_slot : Config.t -> t -> bool

(** [attach_child ~parent ~child] wires the tree edge and the child's
    [cp]/[t_home]/[p_id]. *)
val attach_child : parent:t -> child:t -> unit

(** [detach_child ~parent ~child] unwires the edge; the child keeps its
    subtree. *)
val detach_child : parent:t -> child:t -> unit

(** [tree_members root] lists the whole s-network below (and including)
    [root] in preorder. *)
val tree_members : t -> t list

(** [tree_neighbors peer] is [cp @ children] — every s-network link. *)
val tree_neighbors : t -> t list

(** [live_subtree_roots children] finds the roots of the live subtrees in a
    children forest, looking through dead intermediate nodes: a live child
    is a root itself; a dead child contributes the live roots beneath it. *)
val live_subtree_roots : t list -> t list

(** [depth peer] is the number of cp hops to the tree root. *)
val depth : t -> int

(** {1 Bypass links} *)

(** [live_bypass peer ~now] prunes expired bypass links and returns the
    remaining targets. *)
val live_bypass : t -> now:float -> t list

(** [add_bypass config peer target ~now] installs or refreshes a bypass
    link if allowed (degree budget, Section 5.4 rule 1; both peers alive;
    no self-link). *)
val add_bypass : Config.t -> t -> t -> now:float -> unit

val pp : Format.formatter -> t -> unit
