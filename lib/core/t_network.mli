(** The structured tier: the ring of t-peers (Sections 3.2.1 and 3.3).

    Implements the paper's Table 1 pseudocode and Fig. 2 handshakes:

    - position finding for a joining t-peer, walking the ring (optionally
      finger-accelerated) as messages through the underlay;
    - the {e join triangle}: [pre -> new -> suc -> pre], serialized per
      segment by the [joining]/[leaving] mutexes with a FIFO queue of
      deferred joins;
    - the {e leave triangle}: [leaving -> pre -> suc -> leaving], with the
      predecessor-identity check at [suc];
    - ID-conflict resolution by ring midpoint;
    - role transfer: a leaving t-peer with a non-empty s-network promotes a
      random s-peer instead of tearing the segment down, so finger tables
      need substitution only;
    - load transfer from the successor's whole s-network on join, and the
      [loaddump] to the successor on triangle leave;
    - ring forwarding of data operations ("forwarded along the ring"),
      visiting each intermediate t-peer. *)

open P2p_hashspace

(** [join w ~joiner ~introducer ~on_done] inserts [joiner] (role must be
    [T_peer]) into the ring.  The join request routes from [introducer] to
    the correct segment, waits in the predecessor's queue if the segment is
    locked, runs the join triangle, pulls the joiner's data segment out of
    the successor's s-network, registers the peer and finally calls
    [on_done ~hops].  On an unresolvable ID conflict (full segment) the
    join is abandoned and [on_fail] fires.  [op] stamps every message the
    join causes — including messages of queued, re-routed and restarted
    attempts — with the operation id in the trace. *)
val join :
  World.t ->
  ?op:int ->
  joiner:Peer.t ->
  introducer:Peer.t ->
  ?on_fail:(unit -> unit) ->
  on_done:(hops:int -> unit) ->
  unit ->
  unit

(** [bootstrap w peer] installs the very first t-peer: a one-node ring. *)
val bootstrap : World.t -> Peer.t -> unit

(** [leave w peer ~on_done] removes a t-peer gracefully.  With a non-empty
    s-network a random s-peer is promoted in place (Section 3.2.1); with an
    empty one the leave triangle runs and the data load dumps to the
    successor.  If the peer's segment is busy the leave retries shortly
    (the paper's "will not accept any leave request ... process the join
    request first").  [op] is the trace operation id of the leave. *)
val leave : World.t -> ?op:int -> Peer.t -> on_done:(unit -> unit) -> unit

(** [promote_replacement w ~old_peer ~replacement ~transfer_data] executes
    the role transfer shared by graceful leave ([transfer_data = true])
    and crash recovery ([false]; the crashed peer's items are lost):
    [replacement] becomes a t-peer with [old_peer]'s p_id and ring
    pointers, its subtree follows it, [old_peer]'s remaining children
    rejoin under it, and every finger table substitutes [old_peer] with
    [replacement].  [op] attributes the orphan-rejoin messages in the
    trace. *)
val promote_replacement :
  World.t ->
  ?op:int ->
  old_peer:Peer.t ->
  replacement:Peer.t ->
  transfer_data:bool ->
  unit ->
  unit

(** [route_to_owner w ~from ~d_id ~visit ~on_arrive] forwards a data
    operation along the ring from the t-peer [from] to the t-peer owning
    [d_id].  [visit] runs at every t-peer the request reaches (including
    [from] and the owner) at message-arrival time; [on_arrive] fires at the
    owner with the accumulated hop count.  [op] stamps every forwarding
    hop with the operation id in the trace. *)
val route_to_owner :
  World.t ->
  ?op:int ->
  from:Peer.t ->
  d_id:Id_space.id ->
  visit:(Peer.t -> unit) ->
  on_arrive:(owner:Peer.t -> hops:int -> unit) ->
  unit ->
  unit

(** [check_ring w] validates the ring: t-peers sorted by p_id with
    mutually consistent successor/predecessor pointers and no engaged
    mutexes (call at quiescence). *)
val check_ring : World.t -> (unit, string) result
