lib/scenario/scenario.ml: Array Format Hybrid_p2p List P2p_sim P2p_workload Printf
