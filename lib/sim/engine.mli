(** Discrete-event simulation engine.

    The engine owns a simulated clock and an event queue of thunks.  A
    simulation is driven by scheduling actions at relative delays or
    absolute times and then calling one of the [run] functions.  Actions may
    schedule further actions; time only advances between events.

    This replaces the NS2 substrate the paper evaluated on: every metric the
    paper reports (hop counts, latencies, message counts, failure ratios) is
    produced by event-driven message delivery on top of this engine.

    {b Profiling.} The engine always tracks the number of events executed
    and the high-water mark of the queue depth.  When profiling is switched
    on ({!enable_profiling}), events scheduled with a [?label] additionally
    accumulate per-label fire counts and host-CPU handler time, so a run
    report can show where simulation wall-clock goes (message delivery vs
    timers vs experiment glue).  Profiling is off by default and labelled
    scheduling costs nothing while it stays off. *)

type t

type handle = Event_queue.handle

(** [create ~seed ()] makes an engine whose clock starts at [0.] and whose
    root RNG is seeded with [seed]. *)
val create : seed:int -> unit -> t

(** The engine's root RNG.  Subsystems should [Rng.split] it rather than
    share it, so that adding a consumer does not shift other streams. *)
val rng : t -> Rng.t

(** Current simulated time. *)
val now : t -> float

(** [schedule ?label t ~delay f] runs [f ()] at [now t +. delay].
    [label] groups the event for {!profile} accounting.
    @raise Invalid_argument if [delay < 0.]. *)
val schedule : ?label:string -> t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at ?label t ~time f] runs [f ()] at absolute [time].
    @raise Invalid_argument if [time] is in the simulated past. *)
val schedule_at : ?label:string -> t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents a scheduled action from running. *)
val cancel : handle -> unit

(** [step t] executes the earliest pending event, advancing the clock.
    Returns [false] if no event was pending. *)
val step : t -> bool

(** [run t] executes events until the queue is empty. *)
val run : t -> unit

(** [run_until t ~time] executes all events with timestamp [<= time], then
    advances the clock to exactly [time]. *)
val run_until : t -> time:float -> unit

(** {1 Profiling} *)

(** [enable_profiling t] turns on per-label handler timing (irreversible
    for the engine's lifetime; meant to be set right after {!create}). *)
val enable_profiling : t -> unit

(** Is per-label profiling on? *)
val profiling : t -> bool

(** Number of events executed so far. *)
val events_executed : t -> int

(** Number of live events still pending. *)
val pending : t -> int

(** Highest queue depth observed so far (physical heap size, counting
    not-yet-collected cancelled events). *)
val queue_high_water : t -> int

(** [profile t] — per-label [(label, fires, cpu_seconds)] rows, sorted by
    label.  Empty unless {!enable_profiling} was called and labelled events
    fired.  CPU time is host time ([Sys.time]), not simulated time. *)
val profile : t -> (string * int * float) list
