type handle = Event_queue.handle

type labeled = { label : string option; thunk : unit -> unit }

type label_stats = { mutable fires : int; mutable cpu_s : float }

(* The event population is partitioned into [lanes] independent heaps
   sharing one sequence counter.  Execution merges the lane heads by
   (time, seq), so with [lookahead = 0] the order is bit-identical to a
   single queue for every lane count; [run] additionally drains a lane in
   batches while it stays ahead of every other lane (plus the lookahead
   allowance), which keeps the merge overhead off the hot path when
   segments genuinely run independently. *)
type lane_stat = {
  lane_events : int;
  lane_pending : int;
  lane_high_water : int;
  lane_merge_stalls : int;
}

type t = {
  lanes : labeled Event_queue.t array;
  lookahead : float;
  mutable clock : float;
  mutable executed : int;
  root_rng : Rng.t;
  mutable queue_hwm : int;
  mutable physical : int;  (* events currently occupying heap slots *)
  mutable profiling : bool;
  label_table : (string, label_stats) Hashtbl.t;
  (* per-lane occupancy: where do events execute, how deep does each
     lane's heap get, and how often does a batch hit another lane's
     frontier (the merge-overhead signal lookahead tuning cares about) *)
  lane_executed : int array;
  lane_hwm : int array;
  lane_stalls : int array;
}

let create ~seed ?(lanes = 1) ?(lookahead = 0.0) () =
  if lanes < 1 then invalid_arg "Engine.create: lanes must be >= 1";
  if lookahead < 0.0 then invalid_arg "Engine.create: negative lookahead";
  let tick = ref 0 in
  {
    lanes = Array.init lanes (fun _ -> Event_queue.create ~tick ());
    lookahead;
    clock = 0.0;
    executed = 0;
    root_rng = Rng.create seed;
    queue_hwm = 0;
    physical = 0;
    profiling = false;
    label_table = Hashtbl.create 16;
    lane_executed = Array.make lanes 0;
    lane_hwm = Array.make lanes 0;
    lane_stalls = Array.make lanes 0;
  }

let rng t = t.root_rng

let now t = t.clock

let lanes t = Array.length t.lanes

let lookahead t = t.lookahead

let enable_profiling t = t.profiling <- true

let profiling t = t.profiling

let lane_index t shard =
  match shard with
  | None -> 0
  | Some s -> (s land max_int) mod Array.length t.lanes

let physical_length t =
  Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.lanes

let add t ~time ~shard ~label f =
  let i = lane_index t shard in
  let q = t.lanes.(i) in
  let before = Event_queue.length q in
  let h = Event_queue.add q ~time { label; thunk = f } in
  (* adding can trigger a lane compaction; track the physical population
     incrementally and resync against the true figure when it shrank *)
  let after = Event_queue.length q in
  t.physical <- t.physical + (after - before);
  if after < before then t.physical <- physical_length t
  else if t.physical > t.queue_hwm then t.queue_hwm <- t.physical;
  if after > t.lane_hwm.(i) then t.lane_hwm.(i) <- after;
  h

let schedule ?label ?shard t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  add t ~time:(t.clock +. delay) ~shard ~label f

let schedule_at ?label ?shard t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  add t ~time ~shard ~label f

let cancel = Event_queue.cancel

let account t label cpu_s =
  let stats =
    match Hashtbl.find_opt t.label_table label with
    | Some s -> s
    | None ->
      let s = { fires = 0; cpu_s = 0.0 } in
      Hashtbl.add t.label_table label s;
      s
  in
  stats.fires <- stats.fires + 1;
  stats.cpu_s <- stats.cpu_s +. cpu_s

let execute t lane time { label; thunk } =
  t.clock <- time;
  t.executed <- t.executed + 1;
  t.lane_executed.(lane) <- t.lane_executed.(lane) + 1;
  t.physical <- t.physical - 1;
  match label with
  | Some label when t.profiling ->
    let started = Sys.time () in
    thunk ();
    account t label (Sys.time () -. started)
  | Some _ | None -> thunk ()

(* Index of the lane holding the globally earliest live event by
   (time, seq) — exactly the entry a single merged heap would pop. *)
let min_lane t =
  let n = Array.length t.lanes in
  if n = 1 then if Event_queue.is_empty t.lanes.(0) then -1 else 0
  else begin
    let best = ref (-1) in
    let best_time = ref infinity and best_seq = ref max_int in
    for i = 0 to n - 1 do
      match Event_queue.peek_key t.lanes.(i) with
      | Some (time, seq)
        when time < !best_time || (time = !best_time && seq < !best_seq) ->
        best := i;
        best_time := time;
        best_seq := seq
      | Some _ | None -> ()
    done;
    !best
  end

let step t =
  match min_lane t with
  | -1 -> false
  | i ->
    (match Event_queue.pop t.lanes.(i) with
     | Some (time, ev) ->
       execute t i time ev;
       true
     | None -> false)

(* Earliest head time over every lane except [i]: the conservative bound
   up to which lane [i] may run without consulting the others. *)
let frontier_excluding t i =
  let bound = ref infinity in
  Array.iteri
    (fun j q ->
      if j <> i then
        match Event_queue.peek_time q with
        | Some time when time < !bound -> bound := time
        | Some _ | None -> ())
    t.lanes;
  !bound

let rec run t =
  match min_lane t with
  | -1 -> ()
  | i ->
    let q = t.lanes.(i) in
    (match Event_queue.pop q with
     | Some (time, ev) -> execute t i time ev
     | None -> ());
    (* Batch: keep draining this lane while it cannot race any other
       lane.  With lookahead = 0 only strictly earlier events qualify
       (same-time events across lanes must merge by sequence number, so
       order stays single-queue-identical); a positive lookahead lets the
       lane run bounded-skew ahead, the conservative-lookahead window. *)
    let continue = ref true in
    while !continue do
      let frontier = frontier_excluding t i in
      match Event_queue.peek_time q with
      | Some time
        when time < frontier
             || (t.lookahead > 0.0 && time <= frontier +. t.lookahead) -> (
        match Event_queue.pop q with
        | Some (time, ev) -> execute t i time ev
        | None -> continue := false)
      | Some _ ->
        (* the lane still has work but another lane's frontier stops the
           batch: back to the global merge *)
        t.lane_stalls.(i) <- t.lane_stalls.(i) + 1;
        continue := false
      | None -> continue := false
    done;
    run t

let run_until t ~time =
  let rec loop () =
    match min_lane t with
    | -1 -> ()
    | i -> (
      match Event_queue.peek_time t.lanes.(i) with
      | Some event_time when event_time <= time -> (
        match Event_queue.pop t.lanes.(i) with
        | Some (event_time, ev) ->
          execute t i event_time ev;
          loop ()
        | None -> ())
      | Some _ | None -> ())
  in
  loop ();
  if time > t.clock then t.clock <- time

let events_executed t = t.executed

let pending t =
  Array.fold_left (fun acc q -> acc + Event_queue.live_length q) 0 t.lanes

let queue_high_water t = t.queue_hwm

let lane_stats t =
  Array.mapi
    (fun i q ->
      {
        lane_events = t.lane_executed.(i);
        lane_pending = Event_queue.live_length q;
        lane_high_water = t.lane_hwm.(i);
        lane_merge_stalls = t.lane_stalls.(i);
      })
    t.lanes

let profile t =
  Hashtbl.fold
    (fun label s acc -> (label, s.fires, s.cpu_s) :: acc)
    t.label_table []
  |> List.sort compare
