(* Ablation benches for the design choices DESIGN.md calls out:

   - the degree constraint delta (tree depth vs hotspot trade-off);
   - finger tables for data forwarding (the paper's simulation walks the
     ring linearly; what does O(log N) routing buy?);
   - bypass links (Section 5.4);
   - BitTorrent-style s-networks vs flooding (Section 5.5). *)

open Experiments
module Summary = P2p_stats.Summary

let ablate_delta ~scale () =
  header "Ablation — degree constraint delta at p_s = 0.9";
  row "%8s  %12s  %14s  %14s  %12s\n" "delta" "join hops" "lookup fail" "lookup ms" "max degree";
  List.iter
    (fun delta ->
      let config = { Config.default with Config.delta } in
      let b = build ~config ~seed:11 ~ps:0.9 ~scale () in
      insert_corpus b;
      run_lookups b ~count:scale.n_lookups;
      let m = H.metrics b.h in
      let max_degree =
        List.fold_left (fun acc p -> max acc (Peer.tree_degree p)) 0 (H.peers b.h)
      in
      row "%8d  %12.2f  %14.4f  %14.2f  %12d\n%!" delta
        (Summary.mean (Metrics.join_hops m))
        (Metrics.failure_ratio m)
        (Summary.mean (Metrics.lookup_latency m))
        max_degree)
    [ 2; 3; 4; 8 ]

let ablate_fingers ~scale () =
  header "Ablation — finger tables for data forwarding (p_s = 0.3)";
  row "%16s  %14s  %14s  %14s\n" "routing" "lookup hops" "lookup ms" "connum/lookup";
  List.iter
    (fun (label, use_fingers) ->
      let config = { Config.default with Config.use_fingers_for_data = use_fingers } in
      let b = build ~config ~seed:12 ~ps:0.3 ~scale () in
      insert_corpus b;
      let before = Metrics.connum (H.metrics b.h) in
      run_lookups b ~count:scale.n_lookups;
      let m = H.metrics b.h in
      row "%16s  %14.2f  %14.2f  %14.2f\n%!" label
        (Summary.mean (Metrics.lookup_hops m))
        (Summary.mean (Metrics.lookup_latency m))
        (float_of_int (Metrics.connum m - before) /. float_of_int scale.n_lookups))
    [ ("ring walk", false); ("finger tables", true) ]

let ablate_bypass ~scale () =
  header "Ablation — bypass links (Section 5.4), repeated cross-network lookups";
  row "%10s  %14s  %14s\n" "bypass" "lookup ms" "connum/lookup";
  List.iter
    (fun (label, bypass_enabled) ->
      let config =
        { Config.default with Config.bypass_enabled; bypass_lifetime = 1e12 }
      in
      let b = build ~config ~seed:14 ~ps:0.8 ~scale () in
      insert_corpus b;
      (* a small set of requesters repeatedly fetching the same popular
         items: the workload bypass links thrive on *)
      let requesters = Array.sub b.peers 0 (Array.length b.peers / 20) in
      let hot = Array.sub b.items 0 50 in
      let before = Metrics.connum (H.metrics b.h) in
      let count = ref 0 in
      for round = 1 to 20 do
        ignore round;
        Array.iter
          (fun from ->
            if from.Peer.alive then begin
              let item = Rng.pick b.rng hot in
              incr count;
              H.lookup b.h ~from ~key:item.Keys.key ~on_result:(fun _ -> ()) ()
            end)
          requesters;
        H.run b.h
      done;
      let m = H.metrics b.h in
      row "%10s  %14.2f  %14.2f\n%!" label
        (Summary.mean (Metrics.lookup_latency m))
        (float_of_int (Metrics.connum m - before) /. float_of_int !count))
    [ ("off", false); ("on", true) ]

let ablate_bittorrent ~scale () =
  header "Ablation — BitTorrent-style s-networks vs flooding (p_s = 0.85, TTL = 2)";
  row "%18s  %10s  %14s  %14s\n" "s-network style" "failures" "lookup ms" "connum/lookup";
  List.iter
    (fun (label, s_style) ->
      let config = { Config.default with Config.s_style; default_ttl = 2 } in
      let b = build ~config ~seed:15 ~ps:0.85 ~scale () in
      insert_corpus b;
      let before = Metrics.connum (H.metrics b.h) in
      run_lookups b ~count:scale.n_lookups;
      let m = H.metrics b.h in
      row "%18s  %10d  %14.2f  %14.2f\n%!" label (Metrics.lookups_failed m)
        (Summary.mean (Metrics.lookup_latency m))
        (float_of_int (Metrics.connum m - before) /. float_of_int scale.n_lookups))
    [ ("flooding tree", Config.Flooding_tree); ("tracker", Config.Bittorrent_tracker) ]

let ablate_cache ~scale () =
  header "Ablation — Section-7 caching under a Zipf-popular workload (p_s = 0.7)";
  row "%10s  %14s  %16s  %14s\n" "cache" "lookup ms" "max holder load" "connum/lookup";
  List.iter
    (fun (label, cache_capacity) ->
      let config =
        { Config.default with Config.cache_capacity; cache_lifetime = 1e12 }
      in
      let b = build ~config ~seed:16 ~ps:0.7 ~scale () in
      insert_corpus b;
      let live = Array.of_list (H.peers b.h) in
      let targets =
        Keys.zipf_lookup_sequence ~rng:b.rng ~items:b.items ~count:scale.n_lookups
          ~exponent:1.2
      in
      let served : (int, int) Hashtbl.t = Hashtbl.create 256 in
      let before = Metrics.connum (H.metrics b.h) in
      Array.iter
        (fun item ->
          let from = Rng.pick b.rng live in
          H.lookup b.h ~from ~key:item.Keys.key
            ~on_result:(function
              | Data_ops.Found { holder; _ } ->
                Hashtbl.replace served holder.Peer.host
                  (1 + Option.value ~default:0 (Hashtbl.find_opt served holder.Peer.host))
              | Data_ops.Timed_out -> ())
            ())
        targets;
      H.run b.h;
      let m = H.metrics b.h in
      let max_load = Hashtbl.fold (fun _ n acc -> max n acc) served 0 in
      row "%10s  %14.2f  %16d  %14.2f\n%!" label
        (Summary.mean (Metrics.lookup_latency m))
        max_load
        (float_of_int (Metrics.connum m - before) /. float_of_int scale.n_lookups))
    [ ("off", 0); ("on (32)", 32) ]

let link_stress ~scale () =
  header "Link stress of s-network floods — +/- topology awareness (Section 5.2)";
  row "%16s  %12s  %14s  %16s\n" "assignment" "total" "mean (used)" "max per link";
  List.iter
    (fun (label, landmarks) ->
      (* rebuild with stress tracking enabled *)
      let topo =
        P2p_topology.Transit_stub.generate ~rng:(Rng.create 99) scale.topology
      in
      let routing = P2p_topology.Routing.create topo.P2p_topology.Transit_stub.graph in
      let stress = P2p_topology.Link_stress.create topo.P2p_topology.Transit_stub.graph in
      let snet_policy =
        if landmarks > 0 then begin
          let marks =
            P2p_topology.Landmark.select_landmarks ~rng:(Rng.create 98) routing
              ~count:landmarks
          in
          Some
            (World.By_cluster
               (P2p_topology.Landmark.create routing ~landmarks:marks
                  ~levels:[ 10.0; 40.0 ]))
        end
        else None
      in
      let h = H.create ~seed:17 ~routing ~config:Config.default ?snet_policy ~stress () in
      let n = P2p_topology.Graph.node_count topo.P2p_topology.Transit_stub.graph in
      let rng = Rng.create 97 in
      for host = 0 to n - 1 do
        (* p_s = 0.9: big s-networks make the flood footprint visible *)
        let role = if host = 0 || not (Rng.bernoulli rng 0.9) then Peer.T_peer else Peer.S_peer in
        ignore (H.join h ~host ~role () : Peer.t);
        H.run h
      done;
      let items = Keys.generate ~rng ~count:(scale.n_items / 2) ~categories:4 in
      Array.iter
        (fun it ->
          H.insert h ~from:(H.random_peer h) ~key:it.Keys.key ~value:it.Keys.value ())
        items;
      H.run h;
      P2p_topology.Link_stress.clear stress;
      (* measure the flood traffic of LOCAL lookups: requester drawn from
         the s-network serving the item, so the physical spread of one
         s-network's members is exactly what the links pay for *)
      let targets = Keys.lookup_sequence ~rng ~items ~count:(scale.n_lookups / 2) in
      Array.iter
        (fun it ->
          let d_id = Keys.d_id it in
          match World.oracle_owner (H.world h) d_id with
          | None -> ()
          | Some owner ->
            let members = Array.of_list (Peer.tree_members owner) in
            let from = Rng.pick rng members in
            H.lookup h ~from ~key:it.Keys.key ~ttl:8 ~on_result:(fun _ -> ()) ())
        targets;
      H.run h;
      row "%16s  %12d  %14.2f  %16d\n%!" label
        (P2p_topology.Link_stress.total stress)
        (P2p_topology.Link_stress.mean_over_used_links stress)
        (P2p_topology.Link_stress.max_stress stress))
    [ ("random", 0); ("8 landmarks", 8) ]

(* Live churn: continuous Poisson joins/leaves/crashes while lookups run,
   with online HELLO-timer recovery (no offline repair).  The headline
   claim of the paper — the hybrid tolerates churn cheaply — measured
   directly: lookup failure stays low as the churn rate climbs. *)
let churn_live () =
  header "Live churn — lookup failure under continuous Poisson churn (online recovery)";
  row "%18s  %10s  %12s  %12s  %12s\n" "events/min" "lookups" "failures" "ratio" "final peers";
  List.iter
    (fun events_per_minute ->
      let config =
        { Config.default with
          Config.heartbeats = true;
          hello_period = 200.0;
          hello_timeout = 700.0;
          lookup_timeout = 8_000.0;
        }
      in
      let h = H.create ~seed:19
          ~routing:(P2p_topology.Routing.create
                      (let g = P2p_topology.Graph.create 257 in
                       for host = 0 to 255 do
                         P2p_topology.Graph.add_edge g host 256 ~latency:2.0
                       done;
                       g))
          ~config ()
      in
      ignore (H.grow h ~count:150 ~s_fraction:0.7 : Peer.t array);
      let rng = Rng.create 20 in
      for i = 0 to 499 do
        H.insert h ~from:(H.random_peer h) ~key:(Printf.sprintf "live-%03d" i)
          ~value:"v" ()
      done;
      H.run_for h 5_000.0;
      let engine = H.engine h in
      let horizon = 60_000.0 in
      (* churn events, one third each kind *)
      let rate = events_per_minute /. 60_000.0 in
      let events =
        Churn.poisson ~rng ~duration:horizon ~join_rate:(rate /. 3.0)
          ~leave_rate:(rate /. 3.0) ~crash_rate:(rate /. 3.0)
      in
      List.iter
        (fun { Churn.time; kind } ->
          ignore
            (P2p_sim.Engine.schedule engine ~delay:time (fun () ->
                 match kind with
                 | Churn.Join ->
                   (try ignore (H.join h ~host:(H.fresh_host h) () : Peer.t)
                    with Invalid_argument _ -> ())
                 | Churn.Leave -> if H.peer_count h > 2 then H.leave h (H.random_peer h) ()
                 | Churn.Crash -> if H.peer_count h > 2 then H.crash h (H.random_peer h))
              : P2p_sim.Engine.handle))
        events;
      (* 600 lookups spread over the horizon *)
      let failures = ref 0 and issued = ref 0 in
      for i = 0 to 599 do
        let at = horizon *. float_of_int i /. 600.0 in
        ignore
          (P2p_sim.Engine.schedule engine ~delay:at (fun () ->
               if H.peer_count h > 0 then begin
                 incr issued;
                 H.lookup h ~from:(H.random_peer h)
                   ~key:(Printf.sprintf "live-%03d" (Rng.int rng 500))
                   ~on_result:(function
                     | Data_ops.Found _ -> ()
                     | Data_ops.Timed_out -> incr failures)
                   ()
               end)
            : P2p_sim.Engine.handle)
      done;
      H.run_for h (horizon +. 20_000.0);
      row "%18.0f  %10d  %12d  %12.4f  %12d\n%!" events_per_minute !issued !failures
        (float_of_int !failures /. float_of_int (Stdlib.max 1 !issued))
        (H.peer_count h))
    [ 0.0; 30.0; 120.0; 300.0 ]
