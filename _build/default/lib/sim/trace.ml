type event = { time : float; tag : string; detail : string }

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int; (* slot for the next write *)
  mutable retained : int;
  mutable total : int;
  active : bool;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    retained = 0;
    total = 0;
    active = true;
  }

let disabled =
  { capacity = 1; buffer = [| None |]; next = 0; retained = 0; total = 0; active = false }

let enabled t = t.active

let record t ~time ~tag detail =
  if t.active then begin
    t.buffer.(t.next) <- Some { time; tag; detail };
    t.next <- (t.next + 1) mod t.capacity;
    if t.retained < t.capacity then t.retained <- t.retained + 1;
    t.total <- t.total + 1
  end

let record_f t ~time ~tag fmt =
  if t.active then Printf.ksprintf (record t ~time ~tag) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let length t = t.retained

let total_recorded t = t.total

let events t =
  (* the oldest retained event sits [retained] writes behind [next] *)
  let start = (t.next - t.retained + t.capacity) mod t.capacity in
  List.init t.retained (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let find t ~tag = List.filter (fun e -> e.tag = tag) (events t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.retained <- 0

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%.3f [%s] %s@." e.time e.tag e.detail)
    (events t)
