type edge = { u : int; v : int; latency : float }

type t = {
  adjacency : (int * float) list array;
  mutable edge_count : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { adjacency = Array.make n []; edge_count = 0 }

let node_count t = Array.length t.adjacency

let edge_count t = t.edge_count

let check_node t u =
  if u < 0 || u >= node_count t then invalid_arg "Graph: node out of range"

let has_edge t u v =
  check_node t u;
  check_node t v;
  List.mem_assoc v t.adjacency.(u)

let add_edge t u v ~latency =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if latency <= 0.0 then invalid_arg "Graph.add_edge: non-positive latency";
  if has_edge t u v then invalid_arg "Graph.add_edge: duplicate edge";
  t.adjacency.(u) <- (v, latency) :: t.adjacency.(u);
  t.adjacency.(v) <- (u, latency) :: t.adjacency.(v);
  t.edge_count <- t.edge_count + 1

let latency t u v =
  check_node t u;
  check_node t v;
  List.assoc v t.adjacency.(u)

let set_latency t u v ~latency =
  check_node t u;
  check_node t v;
  if latency <= 0.0 then invalid_arg "Graph.set_latency: non-positive latency";
  let rec update target = function
    | [] -> raise Not_found
    | (x, _) :: rest when x = target -> (x, latency) :: rest
    | pair :: rest -> pair :: update target rest
  in
  t.adjacency.(u) <- update v t.adjacency.(u);
  t.adjacency.(v) <- update u t.adjacency.(v)

let neighbors t u =
  check_node t u;
  t.adjacency.(u)

let degree t u = List.length (neighbors t u)

let edges t =
  let acc = ref [] in
  for u = 0 to node_count t - 1 do
    List.iter (fun (v, latency) -> if u < v then acc := { u; v; latency } :: !acc) t.adjacency.(u)
  done;
  !acc

let iter_neighbors t u f =
  check_node t u;
  List.iter (fun (v, latency) -> f v latency) t.adjacency.(u)

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visited = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        iter_neighbors t u (fun v _ ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr visited;
              stack := v :: !stack
            end);
        loop ()
    in
    loop ();
    !visited = n
  end
