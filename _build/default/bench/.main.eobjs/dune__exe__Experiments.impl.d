bench/experiments.ml: Array Float Hashtbl Hybrid_p2p P2p_net P2p_sim P2p_stats P2p_topology P2p_workload Printf
