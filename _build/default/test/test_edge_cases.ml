(* Edge cases across the stack: configuration validation, degenerate
   system sizes, bypass shortcut behaviour, link-usage-aware trees, and
   timing-sensitive paths not covered by the main suites. *)

open Helpers
module Metrics = P2p_net.Metrics
module Rng = P2p_sim.Rng
module Id_space = P2p_hashspace.Id_space

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_config_validation () =
  let bad field config = checkb field true (Result.is_error (Config.validate config)) in
  bad "delta" { default_config with Config.delta = 1 };
  bad "ttl" { default_config with Config.default_ttl = -1 };
  bad "hello period" { default_config with Config.hello_period = 0.0 };
  bad "hello timeout < period"
    { default_config with Config.hello_period = 10.0; hello_timeout = 5.0 };
  bad "lookup timeout" { default_config with Config.lookup_timeout = 0.0 };
  bad "bypass lifetime" { default_config with Config.bypass_lifetime = 0.0 };
  bad "transmission" { default_config with Config.transmission_ms = -1.0 };
  bad "reflood" { default_config with Config.reflood_attempts = -1 };
  bad "cache capacity" { default_config with Config.cache_capacity = -1 };
  checkb "default valid" true (Result.is_ok (Config.validate default_config))

let test_invalid_config_rejected_at_create () =
  let config = { default_config with Config.delta = 1 } in
  Alcotest.check_raises "create rejects"
    (Invalid_argument "World.create: delta must be >= 2") (fun () ->
      ignore (H.create_star ~seed:1 ~peers:4 ~config () : H.t))

let test_bad_s_fraction_rejected () =
  Alcotest.check_raises "s_fraction" (Invalid_argument "Hybrid.create: s_fraction")
    (fun () -> ignore (H.create_star ~seed:1 ~peers:4 ~s_fraction:1.5 () : H.t))

let test_two_peer_system_operates () =
  let h = H.create_star ~seed:2 ~peers:8 () in
  let a = H.join h ~host:0 () in
  H.run h;
  let b = H.join h ~host:1 ~role:Peer.S_peer () in
  H.run h;
  ok_invariants h;
  H.insert h ~from:b ~key:"solo" ~value:"v" ();
  H.run h;
  let r = lookup_sync h ~from:a ~key:"solo" () in
  checkb "found in two-peer system" true (found r)

let test_single_peer_self_lookup () =
  let h = H.create_star ~seed:3 ~peers:4 () in
  let a = H.join h ~host:0 () in
  H.run h;
  H.insert h ~from:a ~key:"mine" ~value:"v" ();
  H.run h;
  let r = lookup_sync h ~from:a ~key:"mine" () in
  checkb "self-resolves" true (found r)

let test_bypass_shortcut_skips_ring () =
  let config =
    { default_config with Config.bypass_enabled = true; bypass_lifetime = 1e12 }
  in
  let h, _ = star_system ~config ~seed:4 ~n:120 ~ps:0.5 () in
  ignore (insert_items h ~count:60 : string list);
  let p = H.random_peer h in
  (* pick a remote key so the first lookup crosses the ring *)
  let home = Option.get p.Peer.t_home in
  let key =
    List.find
      (fun key -> not (Peer.covers home (P2p_hashspace.Key_hash.of_string key)))
      (List.init 60 (Printf.sprintf "item-%05d"))
  in
  ignore (lookup_sync h ~from:p ~key () : Data_ops.lookup_outcome);
  let before = Metrics.connum (H.metrics h) in
  (match lookup_sync h ~from:p ~key () with
   | Data_ops.Found _ -> ()
   | Data_ops.Timed_out -> Alcotest.fail "repeat lookup failed");
  let contacts = Metrics.connum (H.metrics h) - before in
  (* with a bypass link (or cached holder knowledge) the repeat lookup
     avoids the ring walk almost entirely *)
  checkb (Printf.sprintf "repeat lookup cheap (%d contacts)" contacts) true (contacts <= 8)

let test_link_usage_aware_tree () =
  let config =
    { default_config with
      Config.link_usage_aware = true;
      link_usage_threshold = 0.5;
    }
  in
  let h = H.create_star ~seed:5 ~peers:64 ~config () in
  (* root with capacity 10 accepts children freely; slow peers do not *)
  ignore (H.join h ~host:0 ~role:Peer.T_peer ~link_capacity:10.0 () : Peer.t);
  H.run h;
  for host = 1 to 20 do
    ignore (H.join h ~host ~role:Peer.S_peer ~link_capacity:1.0 () : Peer.t);
    H.run h
  done;
  ok_invariants h;
  (* slow peers (capacity 1, threshold 0.5) accept no children at all:
     degree/capacity would exceed 0.5; so everyone hangs off the root up
     to delta, and the rest… must still attach somewhere (fallback), but
     slow inner nodes never exceed delta *)
  List.iter
    (fun p ->
      if Peer.is_s_peer p then
        checkb "degree bounded" true (Peer.tree_degree p <= config.Config.delta))
    (H.peers h)

let test_leave_during_pending_join_queue () =
  (* a t-peer with queued joins refuses to leave until they drain *)
  let h = H.create_star ~seed:6 ~peers:32 () in
  let a = H.join h ~host:0 ~p_id:0 () in
  H.run h;
  (* several concurrent joins into a's segment, then an immediate leave *)
  let joiners =
    List.init 4 (fun i -> H.join h ~host:(1 + i) ~p_id:((i + 1) * 1000) ~role:Peer.T_peer ())
  in
  let left = ref false in
  H.leave h a ~on_done:(fun () -> left := true) ();
  H.run h;
  checkb "leave eventually completed" true !left;
  checki "joins all survived" 4 (H.peer_count h);
  List.iter (fun p -> checkb "joiner alive" true p.Peer.alive) joiners;
  ok_invariants h

let test_crash_during_lookup_times_out () =
  let config = { default_config with Config.lookup_timeout = 500.0 } in
  let h, _ = star_system ~config ~seed:7 ~n:60 ~ps:0.5 () in
  ignore (insert_items h ~count:30 : string list);
  let p = H.random_peer h in
  let got = ref None in
  H.lookup h ~from:p ~key:"item-00004" ~on_result:(fun r -> got := Some r) ();
  (* kill every other peer before the lookup can progress *)
  List.iter (fun q -> if q != p then H.crash h q) (H.peers h);
  H.run h;
  (match !got with
   | Some Data_ops.Timed_out | Some (Data_ops.Found _) -> ()
   | None -> Alcotest.fail "lookup never resolved");
  checkb "outcome delivered exactly once" true (!got <> None)

let test_run_for_partial_progress () =
  let h = H.create_star ~seed:8 ~peers:16 ~latency:10.0 () in
  ignore (H.join h ~host:0 () : Peer.t);
  H.run h;
  (* an s-join takes >= 2 messages x 20ms; run_for 15ms must not finish it *)
  ignore (H.join h ~host:1 ~role:Peer.S_peer () : Peer.t);
  H.run_for h 15.0;
  checki "join still in flight" 1 (H.peer_count h);
  H.run h;
  checki "join completed" 2 (H.peer_count h)

let test_zero_items_distribution () =
  let h, _ = star_system ~seed:9 ~n:30 ~ps:0.5 () in
  let dist = H.data_distribution h in
  checki "all peers at zero" 30 (P2p_stats.Histogram.count dist 0);
  checki "total items" 0 (H.total_items h)

let test_metrics_message_counts_monotone () =
  let h, _ = star_system ~seed:10 ~n:40 ~ps:0.5 () in
  let m0 = Metrics.messages (H.metrics h) in
  ignore (insert_items h ~count:10 : string list);
  let m1 = Metrics.messages (H.metrics h) in
  checkb "inserts send messages" true (m1 > m0);
  ignore (lookup_sync h ~from:(H.random_peer h) ~key:"item-00000" () : Data_ops.lookup_outcome);
  checkb "lookups send messages" true (Metrics.messages (H.metrics h) > m1)

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "invalid config rejected at create" `Quick
      test_invalid_config_rejected_at_create;
    Alcotest.test_case "bad s_fraction rejected" `Quick test_bad_s_fraction_rejected;
    Alcotest.test_case "two-peer system" `Quick test_two_peer_system_operates;
    Alcotest.test_case "single peer self-lookup" `Quick test_single_peer_self_lookup;
    Alcotest.test_case "bypass shortcut skips ring" `Quick test_bypass_shortcut_skips_ring;
    Alcotest.test_case "link-usage-aware tree" `Quick test_link_usage_aware_tree;
    Alcotest.test_case "leave with pending joins" `Quick test_leave_during_pending_join_queue;
    Alcotest.test_case "crash during lookup" `Quick test_crash_during_lookup_times_out;
    Alcotest.test_case "run_for partial progress" `Quick test_run_for_partial_progress;
    Alcotest.test_case "empty distribution" `Quick test_zero_items_distribution;
    Alcotest.test_case "message counts monotone" `Quick test_metrics_message_counts_monotone;
  ]
