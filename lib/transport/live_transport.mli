(** Live Unix backend of the transport seam.

    Non-blocking TCP with a [Unix.select] event loop.  Peers are node
    indices mapped to socket addresses with {!set_peer_addr}; outbound
    connections are dialled on first {!send} and carry a
    connect/retry/backoff state machine — frames queued while a
    connection is down are preserved and flushed after reconnect.
    Sends past the per-connection byte window still queue but count
    [window_stalls]; past the hard [max_queued] cap the frame is
    dropped and counted in [drops], so an unreachable peer costs
    bounded memory.  Decoding a corrupt stream closes the connection
    and counts [decode_errors]; it never raises.  SIGPIPE is ignored
    at {!create} so peer-closed writes surface as [EPIPE] and go
    through backoff instead of killing the process.

    The loop owner calls {!step} repeatedly; each step selects on every
    live socket (bounded by the earliest wall-clock timer or retry
    deadline), services readiness, and fires due {!Timer_wheel} timers.
    Time is milliseconds since {!create}.

    Known limit: the loop uses [Unix.select], whose [fd_set] holds
    [FD_SETSIZE] (typically 1024) descriptors — one transport can drive
    a few hundred live connections, not thousands.  Rings beyond that
    need a poll/epoll loop (see SCALING.md, "sim vs live fidelity"). *)

type t

include Transport.S with type t := t and type payload = Wire.msg and type addr = int

type stats = {
  mutable msgs_sent : int;
  mutable msgs_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable connects : int;
  mutable retries : int;
  mutable window_stalls : int;
  mutable drops : int;
  mutable decode_errors : int;
  mutable trace_bytes : int;
      (** bytes spent on wire-v2 trace plumbing beyond the v1 frame
          layout: one flags byte per sent frame plus 16 per stamped
          trace header *)
}

(** [create ~self ()] makes a transport for node [self].  [p_id] is
    advertised in the connection handshake; [window] caps queued bytes
    per connection before sends count as stalled; [max_queued]
    (default [16 * window]) is the hard per-connection cap past which
    sends are dropped and counted; [backoff_base] / [backoff_max] (ms)
    bound the reconnect backoff. *)
val create :
  ?p_id:int ->
  ?window:int ->
  ?max_queued:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  self:int ->
  unit ->
  t

val stats : t -> stats

(** [send_traced t ?trace ~dst msg] — {!send} with a wire trace context
    stamped on the frame ({!Wire.trace_ctx}: op id, parent span id,
    sampling bit), so the receiver can rebind the message into the
    operation's cross-process span tree. *)
val send_traced : t -> ?trace:Wire.trace_ctx -> dst:int -> Wire.msg -> unit

(** [set_handler_traced t f] installs a handler that also receives each
    frame's trace context ([None] for v1 frames and unstamped v2
    frames).  Replaces — and is replaced by — {!set_handler}. *)
val set_handler_traced :
  t ->
  (src:int -> dst:int -> trace:Wire.trace_ctx option -> Wire.msg -> unit) ->
  unit

(** [set_peer_addr t peer sockaddr] registers where [peer] listens. *)
val set_peer_addr : t -> int -> Unix.sockaddr -> unit

(** [listen t sockaddr] binds and listens for inbound connections. *)
val listen : t -> Unix.sockaddr -> unit

(** [step ?timeout t] runs one event-loop turn: redial due backoffs,
    select (at most [timeout] seconds, default 0.05), read/write ready
    sockets, fire due timers.  Returns [true] iff anything happened. *)
val step : ?timeout:float -> t -> bool

(** [connected t peer] is [true] iff the outbound connection to [peer]
    is established. *)
val connected : t -> int -> bool

(** Bytes queued (and handshake pending) toward [peer]. *)
val pending_bytes : t -> int -> int

(** Flush best-effort, close every socket, stop accepting.  Idempotent;
    later {!step}s are no-ops. *)
val stop : t -> unit

val running : t -> bool
