(* Critical-path analysis over the causal span trees of a trace.

   Every completed operation owns a root span (tier "op") whose children
   are the timed units of work the op caused — ring hops, flood
   branches, replica probes.  The critical path is reconstructed by a
   backward sweep: starting a cursor at the root's stop, repeatedly pick
   the completed span with the latest stop not after the cursor and a
   start strictly before it, charge its full duration, and move the
   cursor to its start.  The chosen segments are pairwise disjoint and
   contained in the root interval (the trace clamps and suppresses spans
   to keep children inside their parent), so the critical-path length is
   <= the op's total latency by construction. *)

module Trace = P2p_sim.Trace

type segment = { seg_tier : string; seg_phase : string; seg_ms : float }

type op = {
  op_id : int;
  kind : string;  (* the root span's phase: the op kind's wire name *)
  op_start : float;
  op_stop : float;
  total_ms : float;
  critical_ms : float;
  chain : segment list;  (* earliest segment first *)
  span_count : int;  (* completed non-root spans of the op *)
}

let duration (s : Trace.span) =
  match s.Trace.span_stop with
  | Some stop -> stop -. s.Trace.span_start
  | None -> 0.0

let critical_chain ~(root : Trace.span) children =
  (* children sorted by stop descending; one pass keeps the sweep O(n log n) *)
  let stops = function Some x -> x | None -> neg_infinity in
  let sorted =
    List.sort
      (fun (a : Trace.span) b ->
        compare (stops b.Trace.span_stop) (stops a.Trace.span_stop))
      children
  in
  let cursor = ref (match root.Trace.span_stop with Some x -> x | None -> 0.0) in
  let chain = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.span_stop with
      | Some stop when stop <= !cursor && s.Trace.span_start < !cursor ->
        chain :=
          {
            seg_tier = s.Trace.tier;
            seg_phase = s.Trace.phase;
            seg_ms = stop -. s.Trace.span_start;
          }
          :: !chain;
        cursor := s.Trace.span_start
      | _ -> ())
    sorted;
  !chain

let completed trace =
  let spans = Trace.spans trace in
  let by_op = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.parent >= 0 && s.Trace.span_stop <> None then
        Hashtbl.replace by_op s.Trace.span_op
          (s :: (try Hashtbl.find by_op s.Trace.span_op with Not_found -> [])))
    spans;
  List.filter_map
    (fun (s : Trace.span) ->
      match (s.Trace.parent, s.Trace.span_stop) with
      | -1, Some stop ->
        let children =
          try Hashtbl.find by_op s.Trace.span_op with Not_found -> []
        in
        let chain = critical_chain ~root:s children in
        Some
          {
            op_id = s.Trace.span_op;
            kind = s.Trace.phase;
            op_start = s.Trace.span_start;
            op_stop = stop;
            total_ms = stop -. s.Trace.span_start;
            critical_ms = List.fold_left (fun a c -> a +. c.seg_ms) 0.0 chain;
            chain;
            span_count = List.length children;
          }
      | _ -> None)
    spans

let by_kind ops =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun o ->
      if not (Hashtbl.mem table o.kind) then begin
        Hashtbl.add table o.kind ();
        order := o.kind :: !order
      end)
    ops;
  List.rev_map
    (fun kind -> (kind, List.filter (fun o -> o.kind = kind) ops))
    !order

(* Fold the analysis into the registry under subsystem "latency":
   - log-histograms  <kind>_total_ms / <kind>_critical_ms  (percentiles)
   - log-histograms  phase_<phase>_ms  (per-phase span durations)
   - gauges          <kind>_tier_<tier>_ms  (critical-path ms per tier)
   - span-health gauges under subsystem "trace". *)
let record reg trace =
  let ops = completed trace in
  Registry.incr
    ~by:(List.length ops)
    (Registry.counter reg ~subsystem:"latency" ~name:"ops_analyzed");
  (* when an op-completion listener is wired (Hybrid installs one that
     feeds <kind>_total_ms from 100% of ops), the retained root spans are
     a sampled, bounded subset — folding them into the same histograms
     would double count, so the exact path wins *)
  let exact_totals = Trace.has_op_listener trace in
  let tier_totals = Hashtbl.create 16 in
  List.iter
    (fun o ->
      if not exact_totals then
        Log_hist.observe
          (Registry.log_histogram reg ~subsystem:"latency"
             ~name:(o.kind ^ "_total_ms"))
          o.total_ms;
      Log_hist.observe
        (Registry.log_histogram reg ~subsystem:"latency"
           ~name:(o.kind ^ "_critical_ms"))
        o.critical_ms;
      List.iter
        (fun seg ->
          let key = (o.kind, seg.seg_tier) in
          Hashtbl.replace tier_totals key
            (seg.seg_ms
            +. (try Hashtbl.find tier_totals key with Not_found -> 0.0)))
        o.chain)
    ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tier_totals []
  |> List.sort compare
  |> List.iter (fun ((kind, tier), ms) ->
         Registry.set
           (Registry.gauge reg ~subsystem:"latency"
              ~name:(Printf.sprintf "%s_tier_%s_ms" kind tier))
           ms);
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.parent >= 0 && s.Trace.span_stop <> None then
        Log_hist.observe
          (Registry.log_histogram reg ~subsystem:"latency"
             ~name:("phase_" ^ s.Trace.phase ^ "_ms"))
          (duration s))
    (Trace.spans trace);
  let trace_gauge name v =
    Registry.set
      (Registry.gauge reg ~subsystem:"trace" ~name)
      (float_of_int v)
  in
  trace_gauge "spans_started" (Trace.spans_started trace);
  trace_gauge "span_orphans" (Trace.span_orphans trace);
  trace_gauge "orphan_ends" (Trace.orphan_ends trace);
  trace_gauge "evicted_ends" (Trace.evicted_ends trace);
  trace_gauge "span_mismatches" (Trace.span_mismatches trace);
  trace_gauge "spans_suppressed" (Trace.spans_suppressed trace);
  trace_gauge "spans_clamped" (Trace.spans_clamped trace);
  trace_gauge "ops_sampled" (Trace.ops_sampled trace);
  trace_gauge "spans_unsampled" (Trace.spans_unsampled trace);
  Registry.set
    (Registry.gauge reg ~subsystem:"trace" ~name:"sample_rate")
    (Trace.sample_rate trace)
