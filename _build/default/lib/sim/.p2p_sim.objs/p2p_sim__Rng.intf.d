lib/sim/rng.mli:
