(** Link stress accounting.

    Link stress (paper Section 5.2) is the number of copies of a message
    transmitted over a given physical link.  Every overlay message charges
    one unit to each physical link on its path; the topology-awareness
    experiments compare stress distributions with and without landmark
    clustering. *)

type t

val create : Graph.t -> t

(** [charge_path t path] adds one unit of stress to each physical link along
    the node sequence [path]. *)
val charge_path : t -> int list -> unit

(** [stress t u v] is the accumulated stress of link [u -- v] (order
    irrelevant); [0] if never charged. *)
val stress : t -> int -> int -> int

(** Total stress over all links = total link-hops transmitted. *)
val total : t -> int

(** Highest per-link stress, [0] when nothing charged. *)
val max_stress : t -> int

(** Mean stress over links that were charged at least once. *)
val mean_over_used_links : t -> float

(** Reset all counters. *)
val clear : t -> unit
