lib/core/failure.mli: Peer World
