(* Fig. 3a / 3b: the paper's analytical join and lookup latency curves
   (Section 4, Eq. 1 and the lookup-latency expressions), plus a
   simulation validation pass that measures the same quantities on the
   event-driven system and prints them side by side. *)

open Experiments
module F = P2p_analysis.Formulas
module Ascii_plot = P2p_stats.Ascii_plot

let n = 1000

let fig3a () =
  header "Fig 3a — average join latency (hops) vs p_s, analytical Eq. (1)";
  row "%6s  %10s  %10s  %10s\n" "p_s" "delta=2" "delta=3" "delta=4";
  List.iter
    (fun ps ->
      row "%6.2f  %10.3f  %10.3f  %10.3f\n" ps
        (F.join_latency ~ps ~n ~delta:2)
        (F.join_latency ~ps ~n ~delta:3)
        (F.join_latency ~ps ~n ~delta:4))
    (ps_sweep @ [ 0.95; 0.99 ]);
  (* locate the optimum the paper quotes (~0.7 for delta = 2) *)
  let best_ps delta =
    let best = ref (0.0, infinity) in
    for i = 0 to 99 do
      let ps = float_of_int i /. 100.0 in
      let v = F.join_latency ~ps ~n ~delta in
      if v < snd !best then best := (ps, v)
    done;
    !best
  in
  List.iter
    (fun delta ->
      let ps, v = best_ps delta in
      row "minimum for delta=%d at p_s=%.2f (%.3f hops)\n" delta ps v)
    [ 2; 3; 4 ];
  let series delta =
    {
      Ascii_plot.name = Printf.sprintf "delta=%d" delta;
      points =
        List.map (fun ps -> (ps, F.join_latency ~ps ~n ~delta)) (ps_sweep @ [ 0.95; 0.99 ]);
    }
  in
  print_string (Ascii_plot.line_chart ~series:[ series 2; series 3; series 4 ] ())

let fig3b () =
  header "Fig 3b — average lookup latency (hops) vs p_s, analytical (ttl = 4)";
  row "%6s  %10s  %10s  %10s  %12s\n" "p_s" "delta=2" "delta=3" "delta=4" "no-constraint";
  List.iter
    (fun ps ->
      row "%6.2f  %10.3f  %10.3f  %10.3f  %12.3f\n" ps
        (F.lookup_latency ~ps ~n ~delta:2 ~ttl:4)
        (F.lookup_latency ~ps ~n ~delta:3 ~ttl:4)
        (F.lookup_latency ~ps ~n ~delta:4 ~ttl:4)
        (F.lookup_latency_unconstrained ~ps ~n))
    (ps_sweep @ [ 0.95; 0.99 ])

(* Simulation validation: measured mean join hops vs the model. *)
let fig3_sim ~scale () =
  header "Fig 3a validation — measured join hops vs Eq. (1) model";
  row "%6s  %12s  %12s\n" "p_s" "measured" "model";
  List.iter
    (fun ps ->
      let b = build ~seed:3 ~ps ~scale () in
      let measured = Summary.mean (Metrics.join_hops (H.metrics b.h)) in
      let n_sim = Array.length b.peers in
      let model = F.join_latency ~ps ~n:n_sim ~delta:Config.default.Config.delta in
      row "%6.2f  %12.3f  %12.3f\n%!" ps measured model)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.9 ]
