(** Run reports: parse an exported metrics snapshot and pretty-print it.

    [p2psim report m.json] reads a file written by {!Export.write_metrics}
    and renders per-subsystem counter tables and ASCII latency histograms
    (via {!P2p_stats.Ascii_plot}), so a run's cost profile is readable in
    a terminal without any external tooling. *)

(** A parsed histogram snapshot: summary statistics plus fixed-width
    [(lo, count)] buckets for chart rendering. *)
type hist = {
  count : int;
  mean : float;
  stddev : float;
  min_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_v : float;
  bins : (float * int) list;
}

(** A parsed log-bucketed histogram snapshot ({!Log_hist} JSON schema):
    the precomputed tail percentiles, no buckets. *)
type loghist = {
  l_count : int;
  l_sum : float;
  l_min : float;
  l_max : float;
  l_p50 : float;
  l_p90 : float;
  l_p95 : float;
  l_p99 : float;
  l_p999 : float;
}

type metric = Counter of int | Gauge of float | Histogram of hist | LogHist of loghist

(** Subsystems in file order, each with its metrics in file order. *)
type t = (string * (string * metric) list) list

(** [of_string text] parses a metrics JSON document ({!Registry.to_json}
    schema). *)
val of_string : string -> (t, string) result

(** [of_registry registry] snapshots a live registry without a
    serialization detour. *)
val of_registry : Registry.t -> t

(** [render report] — the full human-readable report: one [== subsystem ==]
    section each, counters/gauges aligned, histograms with summary lines
    and bar charts.  An ["audit"] subsystem (written by the online
    invariant auditor) renders as a "health" section instead: one
    OK / VIOLATED row per check, with last-run freshness, followed by the
    health gauges.  A ["latency"] subsystem (written by the span
    analyzer, {!Spans.record}) renders as a percentile table
    (p50/p90/p95/p99/p99.9/max per op kind and phase) plus per-tier
    critical-path attribution lines.  Reports without audit or latency
    metrics render exactly as before. *)
val render : t -> string

(** [render_timeline text] renders a sampler timeline (JSONL written by
    {!Sampler.to_string}) as ASCII sparklines: one row per active series,
    counters as per-interval increments, gauges as raw values. *)
val render_timeline : string -> (string, string) result
