type op_kind =
  | Insert
  | Lookup
  | T_join
  | S_join
  | Leave
  | Repair
  | Keyword
  | Replicate
  | Anti_entropy
  | Custom of string

let op_kind_to_string = function
  | Insert -> "insert"
  | Lookup -> "lookup"
  | T_join -> "t-join"
  | S_join -> "s-join"
  | Leave -> "leave"
  | Repair -> "repair"
  | Keyword -> "keyword"
  | Replicate -> "replicate"
  | Anti_entropy -> "anti-entropy"
  | Custom s -> s

let op_kind_of_string = function
  | "insert" -> Insert
  | "lookup" -> Lookup
  | "t-join" -> T_join
  | "s-join" -> S_join
  | "leave" -> Leave
  | "repair" -> Repair
  | "keyword" -> Keyword
  | "replicate" -> Replicate
  | "anti-entropy" -> Anti_entropy
  | s -> Custom s

type event = {
  time : float;
  tag : string;
  op : int option;
  src : int option;
  dst : int option;
  detail : string;
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int; (* slot for the next write *)
  mutable retained : int;
  mutable total : int;
  mutable next_op : int;
  active : bool;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    retained = 0;
    total = 0;
    next_op = 0;
    active = true;
  }

let disabled =
  {
    capacity = 1;
    buffer = [| None |];
    next = 0;
    retained = 0;
    total = 0;
    next_op = 0;
    active = false;
  }

let enabled t = t.active

let record t ~time ~tag ?op ?src ?dst detail =
  if t.active then begin
    t.buffer.(t.next) <- Some { time; tag; op; src; dst; detail };
    t.next <- (t.next + 1) mod t.capacity;
    if t.retained < t.capacity then t.retained <- t.retained + 1;
    t.total <- t.total + 1
  end

let record_f t ~time ~tag ?op ?src ?dst fmt =
  if t.active then Printf.ksprintf (record t ~time ~tag ?op ?src ?dst) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let begin_op t ~time ~kind detail =
  let id = t.next_op in
  t.next_op <- t.next_op + 1;
  record t ~time ~tag:(op_kind_to_string kind ^ "-start") ~op:id detail;
  id

let end_op t ~time ~op detail = record t ~time ~tag:"op-end" ~op detail

let ops_started t = t.next_op

let length t = t.retained

let total_recorded t = t.total

let events t =
  (* the oldest retained event sits [retained] writes behind [next] *)
  let start = (t.next - t.retained + t.capacity) mod t.capacity in
  List.init t.retained (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let find t ~tag = List.filter (fun e -> e.tag = tag) (events t)

let events_of_op t op = List.filter (fun e -> e.op = Some op) (events t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.retained <- 0

let reset t =
  clear t;
  t.next <- 0;
  t.total <- 0;
  t.next_op <- 0

let pp_event ppf e =
  let pp_id ppf = function
    | Some i -> Format.fprintf ppf "#%d" i
    | None -> Format.pp_print_char ppf '-'
  in
  Format.fprintf ppf "%.3f [%s]" e.time e.tag;
  (match e.op with Some op -> Format.fprintf ppf " op=%d" op | None -> ());
  (match (e.src, e.dst) with
   | None, None -> ()
   | src, dst -> Format.fprintf ppf " %a->%a" pp_id src pp_id dst);
  Format.fprintf ppf " %s" e.detail

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
