let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* FNV-1a mixes similar short keys mostly in the low bits; run a
   SplitMix64-style finalizer so the fold below sees avalanched bits. *)
let avalanche z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Fold 64 bits down to the ID space by xoring the high and low halves,
   which keeps all input bits influential. *)
let fold64 h =
  let h = avalanche h in
  let lo = Int64.to_int (Int64.logand h 0x3FFFFFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical h 30) 0x3FFFFFFFL) in
  Id_space.normalize (lo lxor hi)

let of_string key = fold64 (fnv1a64 key)

let of_int v = of_string (string_of_int v)

let of_address ~ip ~port = of_string (Printf.sprintf "%s:%d" ip port)
