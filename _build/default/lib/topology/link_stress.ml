type t = {
  node_count : int;
  counts : (int, int) Hashtbl.t; (* key = u * node_count + v with u < v *)
}

let create graph = { node_count = Graph.node_count graph; counts = Hashtbl.create 256 }

let key t u v =
  let u, v = if u < v then (u, v) else (v, u) in
  (u * t.node_count) + v

let charge t u v =
  let k = key t u v in
  let current = Option.value ~default:0 (Hashtbl.find_opt t.counts k) in
  Hashtbl.replace t.counts k (current + 1)

let rec charge_path t = function
  | [] | [ _ ] -> ()
  | u :: (v :: _ as rest) ->
    charge t u v;
    charge_path t rest

let stress t u v = Option.value ~default:0 (Hashtbl.find_opt t.counts (key t u v))

let total t = Hashtbl.fold (fun _ c acc -> acc + c) t.counts 0

let max_stress t = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) t.counts 0

let mean_over_used_links t =
  let n = Hashtbl.length t.counts in
  if n = 0 then 0.0 else float_of_int (total t) /. float_of_int n

let clear t = Hashtbl.reset t.counts
