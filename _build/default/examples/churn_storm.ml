(* Churn resilience: heartbeat-driven crash detection and recovery
   (paper Section 3.2.2).

   Heartbeats are ON: every peer broadcasts HELLOs, watchdog timers detect
   silent neighbours, orphaned subtrees rejoin through their t-peer, and
   crashed t-peers are replaced by the surviving member with the smallest
   address through the server election.  We crash 20% of the population in
   one storm and watch the overlay heal online — no offline repair call.

   Run with: dune exec examples/churn_storm.exe *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Churn = P2p_workload.Churn
module Rng = P2p_sim.Rng

let () =
  let config =
    { Config.default with
      Config.heartbeats = true;
      hello_period = 50.0;
      hello_timeout = 180.0;
      lookup_timeout = 5_000.0;
    }
  in
  let h = H.create_star ~seed:13 ~peers:200 ~config () in
  ignore (H.grow h ~count:120 ~s_fraction:0.75 : Peer.t array);
  Printf.printf "Before the storm: %d peers, %d t-peers\n" (H.peer_count h)
    (H.t_peer_count h);

  (* share 300 files *)
  for i = 0 to 299 do
    H.insert h ~from:(H.random_peer h) ~key:(Printf.sprintf "file-%03d" i) ~value:"v" ()
  done;
  H.run_for h 2_000.0;
  Printf.printf "Stored %d items across the system\n" (H.total_items h);

  (* the storm: 20%% of peers crash simultaneously, no goodbye *)
  let rng = Rng.create 5 in
  let peers = Array.of_list (H.peers h) in
  let victims =
    Churn.crash_storm ~rng ~population:(Array.length peers) ~fraction:0.2
  in
  Array.iter (fun i -> H.crash h peers.(i)) victims;
  Printf.printf "\nCRASH STORM: %d peers vanish without notice\n" (Array.length victims);

  (* let the heartbeat machinery detect and heal *)
  H.run_for h 3_000.0;
  (match H.check_invariants h with
   | Ok () -> print_endline "Online recovery complete: all invariants hold again."
   | Error e -> Printf.printf "still healing: %s\n" e);
  Printf.printf "Survivors: %d peers, %d t-peers, %d items survived\n"
    (H.peer_count h) (H.t_peer_count h) (H.total_items h);

  (* measure lookup failure on the healed overlay *)
  let ok = ref 0 and missed = ref 0 in
  for i = 0 to 299 do
    H.lookup h ~from:(H.random_peer h) ~key:(Printf.sprintf "file-%03d" i)
      ~on_result:(function
        | Data_ops.Found _ -> incr ok
        | Data_ops.Timed_out -> incr missed)
      ()
  done;
  H.run_for h 20_000.0;
  Printf.printf
    "\nPost-storm lookups: %d found, %d failed (%.1f%% failure — the data that\n\
     died with the crashed peers, as in the paper's Fig. 5b)\n"
    !ok !missed
    (100.0 *. float_of_int !missed /. 300.0)
