test/test_data_failure.ml: Alcotest Array Config Data_ops H Helpers Hybrid_p2p List Option P2p_hashspace P2p_net P2p_stats Peer Printf World
