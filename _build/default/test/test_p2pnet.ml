(* Tests for P2p_net: Metrics accounting and Underlay message delivery. *)

module Engine = P2p_sim.Engine
module Graph = P2p_topology.Graph
module Routing = P2p_topology.Routing
module Link_stress = P2p_topology.Link_stress
module Metrics = P2p_net.Metrics
module Underlay = P2p_net.Underlay
module Summary = P2p_stats.Summary

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.record_message m ~physical_hops:3;
  Metrics.record_message m ~physical_hops:2;
  checki "messages" 2 (Metrics.messages m);
  checki "physical hops" 5 (Metrics.physical_hops m);
  Metrics.record_lookup_issued m;
  Metrics.record_lookup_issued m;
  Metrics.record_lookup_success m ~latency:10.0 ~hops:4;
  Metrics.record_lookup_failure m;
  checki "issued" 2 (Metrics.lookups_issued m);
  checki "succeeded" 1 (Metrics.lookups_succeeded m);
  checki "failed" 1 (Metrics.lookups_failed m);
  checkf "failure ratio" 0.5 (Metrics.failure_ratio m);
  Metrics.record_contact m;
  Metrics.record_contacts m 4;
  checki "connum" 5 (Metrics.connum m);
  checkf "lookup latency mean" 10.0 (Summary.mean (Metrics.lookup_latency m));
  checkf "lookup hops mean" 4.0 (Summary.mean (Metrics.lookup_hops m))

let test_metrics_empty_ratio () =
  let m = Metrics.create () in
  checkf "no lookups -> ratio 0" 0.0 (Metrics.failure_ratio m)

let test_metrics_join () =
  let m = Metrics.create () in
  Metrics.record_join m ~latency:5.0 ~hops:2;
  Metrics.record_join m ~latency:7.0 ~hops:4;
  checkf "join latency mean" 6.0 (Summary.mean (Metrics.join_latency m));
  checkf "join hops mean" 3.0 (Summary.mean (Metrics.join_hops m))

let line_underlay ?(processing_delay = 0.0) ?stress n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1) ~latency:2.0
  done;
  let engine = Engine.create ~seed:1 () in
  let metrics = Metrics.create () in
  let routing = Routing.create g in
  let u = Underlay.create ~engine ~routing ~metrics ?stress ~processing_delay () in
  (engine, metrics, u, g)

let test_underlay_delivery_latency () =
  let engine, _, u, _ = line_underlay 4 in
  let arrival = ref nan in
  Underlay.send u ~src:0 ~dst:3 (fun () -> arrival := Engine.now engine);
  Engine.run engine;
  checkf "3 links x 2ms" 6.0 !arrival

let test_underlay_processing_delay () =
  let engine, _, u, _ = line_underlay ~processing_delay:0.5 4 in
  let arrival = ref nan in
  Underlay.send u ~src:0 ~dst:1 (fun () -> arrival := Engine.now engine);
  Engine.run engine;
  checkf "2ms + 0.5ms" 2.5 !arrival;
  checkf "delay function agrees" 2.5 (Underlay.delay u ~src:0 ~dst:1)

let test_underlay_self_send () =
  let engine, _, u, _ = line_underlay ~processing_delay:0.25 3 in
  let arrival = ref nan in
  Underlay.send u ~src:1 ~dst:1 (fun () -> arrival := Engine.now engine);
  Engine.run engine;
  checkf "self send costs only processing" 0.25 !arrival

let test_underlay_message_metrics () =
  let _, metrics, u, _ = line_underlay 5 in
  Underlay.send u ~src:0 ~dst:4 (fun () -> ());
  Underlay.send u ~src:1 ~dst:1 (fun () -> ());
  checki "messages" 2 (Metrics.messages metrics);
  checki "physical hops: 4 + 0" 4 (Metrics.physical_hops metrics)

let test_underlay_stress_accounting () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Graph.add_edge g 1 2 ~latency:1.0;
  let stress = Link_stress.create g in
  let engine = Engine.create ~seed:1 () in
  let metrics = Metrics.create () in
  let u =
    Underlay.create ~engine ~routing:(Routing.create g) ~metrics ~stress
      ~processing_delay:0.0 ()
  in
  Underlay.send u ~src:0 ~dst:2 (fun () -> ());
  Underlay.send u ~src:0 ~dst:2 (fun () -> ());
  checki "link 0-1 stress" 2 (Link_stress.stress stress 0 1);
  checki "link 1-2 stress" 2 (Link_stress.stress stress 1 2)

let test_underlay_ordering () =
  (* messages over shorter paths arrive first regardless of send order *)
  let engine, _, u, _ = line_underlay 5 in
  let order = ref [] in
  Underlay.send u ~src:0 ~dst:4 (fun () -> order := `Far :: !order);
  Underlay.send u ~src:0 ~dst:1 (fun () -> order := `Near :: !order);
  Engine.run engine;
  checkb "near first" true (!order = [ `Far; `Near ])

let test_underlay_rejects_negative_delay () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Alcotest.check_raises "negative processing delay"
    (Invalid_argument "Underlay.create: negative processing delay") (fun () ->
      ignore
        (Underlay.create ~engine:(Engine.create ~seed:1 ())
           ~routing:(Routing.create g) ~metrics:(Metrics.create ())
           ~processing_delay:(-1.0) ()
          : Underlay.t))

let suite =
  [
    Alcotest.test_case "metrics: counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics: empty failure ratio" `Quick test_metrics_empty_ratio;
    Alcotest.test_case "metrics: join summaries" `Quick test_metrics_join;
    Alcotest.test_case "underlay: delivery latency" `Quick test_underlay_delivery_latency;
    Alcotest.test_case "underlay: processing delay" `Quick test_underlay_processing_delay;
    Alcotest.test_case "underlay: self send" `Quick test_underlay_self_send;
    Alcotest.test_case "underlay: message metrics" `Quick test_underlay_message_metrics;
    Alcotest.test_case "underlay: stress accounting" `Quick test_underlay_stress_accounting;
    Alcotest.test_case "underlay: latency ordering" `Quick test_underlay_ordering;
    Alcotest.test_case "underlay: rejects negative delay" `Quick
      test_underlay_rejects_negative_delay;
  ]
