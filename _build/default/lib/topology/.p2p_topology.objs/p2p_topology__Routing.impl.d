lib/topology/routing.ml: Array Graph List
