(** Random transit-stub topology generation.

    Replaces the GT-ITM generator the paper used: the Internet is modelled
    as a small set of *transit domains* (backbone ASes) whose nodes each
    attach several *stub domains* (edge networks).  Latencies are drawn per
    link class — intercontinental transit-transit links are slow, links
    inside a stub domain are fast — matching how GT-ITM-based NS2 studies
    parameterize their topologies.

    The generated graph is always connected. *)

type params = {
  transit_domains : int;      (** number of transit domains *)
  transit_nodes : int;        (** nodes per transit domain *)
  stub_domains_per_node : int;(** stub domains hanging off each transit node *)
  stub_nodes : int;           (** nodes per stub domain *)
  extra_transit_edges : int;  (** extra random intra-transit-domain edges *)
  extra_stub_edges : int;     (** extra random intra-stub-domain edges *)
  transit_transit_latency : float * float; (** (lo, hi) ms, inter-domain *)
  intra_transit_latency : float * float;   (** (lo, hi) ms, intra-domain *)
  transit_stub_latency : float * float;    (** (lo, hi) ms, access links *)
  intra_stub_latency : float * float;      (** (lo, hi) ms, LAN links *)
}

(** Defaults sized to produce the paper's 1,000-node topologies:
    4 transit domains x 5 transit nodes, each transit node carrying
    7 stub domains of 7 nodes -> 20 + 980 = 1,000 nodes. *)
val default_params : params

(** [node_count p] is the total number of nodes [p] will generate. *)
val node_count : params -> int

(** Classification of a node, for latency assignment and experiments that
    place peers by role. *)
type node_class = Transit of int (** transit domain index *) | Stub of int (** owning transit node *)

type t = {
  graph : Graph.t;
  classes : node_class array;
}

(** [generate ~rng params] builds a random transit-stub topology.
    @raise Invalid_argument if any size parameter is non-positive. *)
val generate : rng:P2p_sim.Rng.t -> params -> t

(** [transit_nodes t] lists node indices that are transit nodes. *)
val transit_nodes : t -> int list

(** [stub_nodes t] lists node indices that are stub nodes. *)
val stub_nodes : t -> int list
