(** Gnutella-style unstructured overlay — the paper's unstructured baseline.

    When the hybrid system's parameter [p_s] is 1 it "becomes a
    Gnutella-style unstructured peer-to-peer system".  This library is that
    endpoint: peers join by linking to a handful of random existing peers
    (a mesh, so queries may reach a peer several times — the bandwidth
    drawback the hybrid's tree-shaped s-networks eliminate), data sits
    wherever it was generated, and lookups are TTL-bounded floods or
    fixed-length random walks. *)

type t

type peer

(** Result of a lookup attempt. *)
type lookup_result = {
  value : string option;      (** payload if found *)
  contacted : int;            (** distinct peers that checked their store *)
  messages : int;             (** query transmissions, counting duplicates *)
  hops_to_hit : int option;   (** overlay hops to the first replica found *)
}

(** [create ~rng ~links_per_join ()] prepares an empty mesh; each joining
    peer connects to up to [links_per_join] distinct random existing peers.
    When [trace] is given, every lookup is replayed into it as a [Custom]
    op with one span per transmission, timed on an internal logical clock
    (1 ms per flood level / walk step) — the mesh itself stays synchronous.
    @raise Invalid_argument if [links_per_join <= 0]. *)
val create :
  ?trace:P2p_sim.Trace.t -> rng:P2p_sim.Rng.t -> links_per_join:int -> unit -> t

val peer_count : t -> int
val peers : t -> peer list
val host : peer -> int
val neighbors : peer -> peer list
val degree : peer -> int
val alive : peer -> bool
val stored_items : peer -> int

(** [join t ~host] adds a peer and wires its random links.  Join cost is one
    hop per link established (the paper's constant-latency unstructured
    join). *)
val join : t -> host:int -> peer

(** [leave t peer] removes a peer gracefully: neighbours drop it from their
    lists and its data transfers to a random neighbour (or is lost if it has
    none). *)
val leave : t -> peer -> unit

(** [crash t peer] removes a peer abruptly: its data is lost. *)
val crash : t -> peer -> unit

(** [store t peer ~key ~value] inserts the item at [peer] itself — in an
    unstructured network data stays where it is generated. *)
val store : t -> peer -> key:string -> value:string -> unit

(** [flood_lookup t ~from ~key ~ttl] performs a breadth-first flood limited
    to [ttl] overlay hops. *)
val flood_lookup : t -> from:peer -> key:string -> ttl:int -> lookup_result

(** [random_walk_lookup t ~from ~key ~walkers ~ttl] launches [walkers]
    independent random walks of at most [ttl] steps each. *)
val random_walk_lookup :
  t -> from:peer -> key:string -> walkers:int -> ttl:int -> lookup_result

(** [is_connected t] checks overlay connectivity over live peers. *)
val is_connected : t -> bool
