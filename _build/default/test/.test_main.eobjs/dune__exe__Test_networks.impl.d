test/test_networks.ml: Alcotest Config H Hashtbl Helpers Hybrid_p2p List Option P2p_hashspace Peer Printf World
