bench/fig3.ml: Array Config Experiments H List Metrics P2p_analysis P2p_stats Printf Summary
