(** Minimal JSON values, printing, and parsing.

    The observability layer exports traces (JSONL) and metrics snapshots
    (JSON) and reads them back for [p2psim report] and round-trip tests.
    The toolchain has no JSON dependency baked in, so this module provides
    the small self-contained subset the layer needs: exact printing of the
    values it emits, and a strict recursive-descent parser.

    Limitations (fine for our own emitted data, documented for honesty):
    [\u] escapes outside ASCII parse to ['?'], and non-finite floats print
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] prints compact single-line JSON (no insignificant
    whitespace), suitable for JSONL. *)
val to_string : t -> string

(** [parse text] parses one complete JSON value; trailing garbage is an
    error.  Numbers without [.]/[e] parse as [Int], others as [Float]. *)
val parse : string -> (t, string) result

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

(** [member key v] looks up an object field. *)
val member : string -> t -> t option

(** [to_int v] accepts [Int] and integral [Float]. *)
val to_int : t -> int option

(** [to_float v] accepts [Float] and [Int]. *)
val to_float : t -> float option

val to_str : t -> string option
val to_list : t -> t list option
