(** Shortest-path routing over the physical graph.

    Overlay links are logical: a message sent over the overlay edge
    [u -> v] traverses the latency-shortest physical path from [u] to [v].
    Three backends compute those paths:

    - {!create} — on-demand per-source Dijkstra with an LRU-bounded cache.
      Exact on any graph; the right default below a few thousand nodes.
    - {!link_state} — precomputed tables exploiting the transit-stub
      hierarchy (each stub domain reaches the backbone through exactly one
      access link, so every inter-domain path factors through the
      gateways).  All-pairs state is kept only inside each small domain
      and across the transit backbone — O(Σ sᵢ² + g²) memory, O(1)
      [distance]/[hop_count] — so the real graph stays affordable on the
      hot message path at 10k+ nodes.
    - {!synthetic} — a fake uniform-latency clique for overlay-only
      scalability studies. *)

type t

(** [create graph] prepares a Dijkstra router; no paths are computed yet.
    [max_cached_sources] caps how many single-source results stay cached
    (O(1) LRU eviction beyond it); the default is unlimited — O(n²) memory
    once every node has sent, which is the right trade below a few
    thousand nodes.  @raise Invalid_argument when [max_cached_sources < 1]. *)
val create : ?max_cached_sources:int -> Graph.t -> t

(** [link_state graph ~is_transit] precomputes hierarchical routing
    tables over a transit-stub graph; [is_transit u] classifies node [u].
    Stub domains are the connected components of the stub-only subgraph;
    each must touch the backbone through at most one stub-to-transit edge
    (its access link) — a domain with none is simply unreachable from the
    outside.  Construction runs all-pairs shortest paths inside every
    domain and over the backbone; queries are table lookups.
    @raise Invalid_argument when some stub domain has several access
    links (the graph is not transit-stub shaped). *)
val link_state : Graph.t -> is_transit:(int -> bool) -> t

(** [synthetic ~nodes ~latency] is a router over [nodes] hosts in which
    every distinct pair is directly connected at a uniform [latency] (ms)
    — one physical hop, no path computation, O(1) memory.  This is the
    underlay for overlay-scalability runs (the million-peer sweep in
    [bench/scale.ml]) where per-source shortest-path state is
    unaffordable and physical path diversity is not under study.
    {!graph} returns an edgeless placeholder of [nodes] nodes.
    @raise Invalid_argument when [nodes < 0] or [latency <= 0]. *)
val synthetic : nodes:int -> latency:float -> t

(** [distance t u v] is the latency of the shortest path.  [infinity] when
    unreachable. *)
val distance : t -> int -> int -> float

(** [path t u v] is the node sequence [u; ...; v] of a shortest path.
    @raise Not_found when unreachable. *)
val path : t -> int -> int -> int list

(** [hop_count t u v] is the number of physical links on a shortest path;
    0 when [u = v].  Never materializes the path: the Dijkstra backend
    walks the predecessor chain, the link-state backend reads hop tables.
    @raise Not_found when unreachable. *)
val hop_count : t -> int -> int -> int

(** [update_link t u v ~latency] changes the weight of the existing edge
    [u -- v] and re-derives only the routing state the change can affect:
    the Dijkstra backend drops its cache; the link-state backend rebuilds
    the one stub domain (intra-domain edge), the backbone tables
    (transit-transit edge), or just the stored access latency
    (stub-to-transit edge).
    @raise Invalid_argument on a {!synthetic} router; [Not_found] when
    the edge is absent. *)
val update_link : t -> int -> int -> latency:float -> unit

(** [refresh t] recomputes all routing state from the current graph.
    Required after structural changes ([Graph.add_edge]) that
    {!update_link} does not cover.  No-op for {!synthetic}. *)
val refresh : t -> unit

(** [eccentricity t u] is the maximum finite distance from [u]. *)
val eccentricity : t -> int -> float

(** [graph t] is the underlying graph. *)
val graph : t -> Graph.t
