(** Latency SLO gates over a metrics registry.

    A spec reads ["<target>:p<N><=<limit>"] — e.g.
    ["lookup:p99<=40"] or ["latency/lookup_total_ms:p95<=25"].  The
    target is an explicit ["subsystem/name"] metric path, or an op-kind
    shorthand that resolves to [latency/<kind>_total_ms] (span-derived
    log histogram) and falls back to [data_ops/<kind>_latency_ms]
    (always-populated summary) when the run recorded no spans. *)

type spec = { raw : string; target : string; quantile : float; limit : float }

type verdict = {
  spec : spec;
  metric : string;  (** the ["subsystem/name"] actually consulted *)
  measured : float;
  ok : bool;
}

val parse : string -> (spec, string) result

(** [check reg spec] measures the spec's quantile.  [Error] when no
    candidate metric exists or has samples. *)
val check : Registry.t -> spec -> (verdict, string) result

(** One human-readable PASS/FAIL line. *)
val describe : verdict -> string

(** [enforce reg ~specs ~print] parses and checks every spec, printing
    one line each via [print]; returns [false] if any spec fails, cannot
    be parsed, or cannot be resolved. *)
val enforce : Registry.t -> specs:string list -> print:(string -> unit) -> bool
