(* Lookup-cost bench: Bloom-guided flood pruning and Zipf-aware result
   caching against the unguided baseline, in one process on identical
   topologies and workloads.

   For each (zipf exponent, p_s) point we build four systems from the
   same seed — baseline, Bloom summaries only, result cache only, and
   both — replay the exact same lookup stream (same RNG draw order, so
   targets and requesters match peer-for-peer), and report per-lookup
   flood visits, underlay messages, contacted peers (the paper's
   connum), recall and wall-clock.  Lookups are spaced in simulated time
   so cache entries filled by early replies can serve later requests, as
   they would in a live deployment.

   Results land in BENCH_lookup.json.  The run fails (non-zero exit)
   when an accelerated configuration loses recall against the baseline —
   the summaries' contract is "false positives only", so any lost answer
   is a bug, not a tuning problem. *)

open Experiments
module Registry = P2p_obs.Registry
module Json = P2p_obs.Json
module Slo = P2p_obs.Slo
module Engine = P2p_sim.Engine

(* "zipf=... ps=... variant" labels of configurations that failed a --slo
   spec; non-empty at the end of the run means a non-zero exit. *)
let slo_failures : string list ref = ref []

(* Check every --slo spec against the measured system's registry.  The
   registry was reset after corpus insertion, so data_ops/lookup_latency_ms
   (the shorthand fallback for specs like "lookup:p99<=40") holds exactly
   the lookups this variant replayed. *)
let slo_pass ~exponent ~ps ~variant b =
  match !slo_specs with
  | [] -> ()
  | specs ->
    let ok =
      Slo.enforce
        (Metrics.registry (H.metrics b.h))
        ~specs
        ~print:(fun line -> row "  [slo %-12s] %s\n%!" variant line)
    in
    if not ok then
      slo_failures :=
        Printf.sprintf "zipf=%.2f ps=%.2f %s" exponent ps variant
        :: !slo_failures

(* The gate point from the roadmap: Zipf s = 1.0, p_s = 0.8, delta = 4. *)
let gate_zipf = 1.0

let gate_ps = 0.8

(* Gap between lookup issues, ms of simulated time.  Small enough that a
   10k-lookup run still fits well inside the default cache lifetime. *)
let issue_gap = 3.0

type sample = {
  zipf : float;
  ps : float;
  variant : string;
  lookups : int;
  visits_per_lookup : float;
  pruned_per_lookup : float;
  messages_per_lookup : float;
  connum_per_lookup : float;
  cache_hit_rate : float;
  expected_hit_rate : float;
  recall : float;
  wall_s : float;
}

(* The four configurations under test.  Baseline keeps both features
   off; the accelerated variants switch them on one at a time, then
   together.  Everything else (delta, TTL, reflood) is shared. *)
let variants =
  [
    ("baseline", (0, 0));
    ("bloom", (8, 0));
    ("cache", (0, 64));
    ("bloom+cache", (8, 64));
  ]

let base_config =
  { Config.default with Config.delta = 4; default_ttl = 8; reflood_attempts = 2 }

let counter_value b ~subsystem ~name =
  Registry.counter_value
    (Registry.counter (Metrics.registry (H.metrics b.h)) ~subsystem ~name)

let measure ~scale ~lookups ~ps ~exponent (variant, (bloom_bits, cache_cap)) =
  let config =
    {
      base_config with
      Config.bloom_bits_per_key = bloom_bits;
      cache_capacity = cache_cap;
    }
  in
  let b = build ~config ~seed:11 ~ps ~scale () in
  insert_corpus b;
  (* Zero the registry so the numbers below measure the lookup phase
     alone: join and corpus-insert traffic otherwise bleeds into the
     per-lookup figures (and into --metrics-dir dumps), and the bleed
     differs across the four configs because Bloom maintenance itself
     sends messages.  The snapshot deltas below survive the reset — the
     "0" snapshots simply read zero. *)
  Registry.reset_values (Metrics.registry (H.metrics b.h));
  let live = Array.of_list (H.peers b.h) in
  (* Draw targets and requesters up front: the workload RNG has consumed
     exactly the same stream in every variant, so these arrays are
     identical across the four systems of a point. *)
  let targets =
    Keys.zipf_lookup_sequence ~rng:b.rng ~items:b.items ~count:lookups ~exponent
  in
  let froms = Array.map (fun _ -> Rng.pick b.rng live) targets in
  let visits0 = counter_value b ~subsystem:"s_network" ~name:"flood_visits" in
  let pruned0 = counter_value b ~subsystem:"s_network" ~name:"flood_pruned" in
  let hits0 = counter_value b ~subsystem:"cache" ~name:"hits" in
  let misses0 = counter_value b ~subsystem:"cache" ~name:"misses" in
  let messages0 = Metrics.messages (H.metrics b.h) in
  let connum0 = Metrics.connum (H.metrics b.h) in
  let found = ref 0 in
  let t0 = Sys.time () in
  let eng = H.engine b.h in
  Array.iteri
    (fun i item ->
      ignore
        (Engine.schedule eng ~label:"bench-lookup"
           ~delay:(float_of_int i *. issue_gap)
           (fun () ->
             H.lookup b.h ~from:froms.(i) ~key:item.Keys.key
               ~on_result:(function
                 | Data_ops.Found _ -> incr found
                 | Data_ops.Timed_out -> ())
               ())
          : Engine.handle))
    targets;
  H.run b.h;
  let wall = Sys.time () -. t0 in
  audit_pass b;
  dump_metrics b;
  slo_pass ~exponent ~ps ~variant b;
  let per c0 c1 = float_of_int (c1 - c0) /. float_of_int lookups in
  let hits = counter_value b ~subsystem:"cache" ~name:"hits" - hits0 in
  let misses = counter_value b ~subsystem:"cache" ~name:"misses" - misses0 in
  let probes = hits + misses in
  {
    zipf = exponent;
    ps;
    variant;
    lookups;
    visits_per_lookup =
      per visits0 (counter_value b ~subsystem:"s_network" ~name:"flood_visits");
    pruned_per_lookup =
      per pruned0 (counter_value b ~subsystem:"s_network" ~name:"flood_pruned");
    messages_per_lookup = per messages0 (Metrics.messages (H.metrics b.h));
    connum_per_lookup = per connum0 (Metrics.connum (H.metrics b.h));
    cache_hit_rate =
      (if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes);
    expected_hit_rate =
      (* Analytic floor (EXPERIMENTS.md): the requester keeps the soft
         copy, so a hit needs the same requester — drawn uniformly from
         the live peers — to re-draw a key it already fetched.  Over L
         Zipf(s) draws that's ≈ (L-1)/2 · Σₖ pₖ² / N_requesters, the
         birthday-style pair count.  At the smoke point (600 lookups,
         384 peers, Zipf 1.0 over 3000 items) this is ~1.7%, which is
         why the measured single-digit hit rate is expected, not a TTL
         bug: the workload simply re-asks per-requester too rarely. *)
      (let n = Array.length b.items in
       let norm = ref 0.0 in
       for k = 1 to n do
         norm := !norm +. (1.0 /. (float_of_int k ** exponent))
       done;
       let sum_sq = ref 0.0 in
       for k = 1 to n do
         let p = 1.0 /. (float_of_int k ** exponent) /. !norm in
         sum_sq := !sum_sq +. (p *. p)
       done;
       float_of_int (lookups - 1) /. 2.0 *. !sum_sq
       /. float_of_int (Array.length live));
    recall = float_of_int !found /. float_of_int lookups;
    wall_s = wall;
  }

let sample_json s =
  Json.Obj
    [
      ("zipf", Json.Float s.zipf);
      ("ps", Json.Float s.ps);
      ("config", Json.String s.variant);
      ("lookups", Json.Int s.lookups);
      ("flood_visits_per_lookup", Json.Float s.visits_per_lookup);
      ("flood_pruned_per_lookup", Json.Float s.pruned_per_lookup);
      ("messages_per_lookup", Json.Float s.messages_per_lookup);
      ("connum_per_lookup", Json.Float s.connum_per_lookup);
      ("cache_hit_rate", Json.Float s.cache_hit_rate);
      ("expected_hit_rate", Json.Float s.expected_hit_rate);
      ("recall", Json.Float s.recall);
      ("wallclock_s", Json.Float s.wall_s);
    ]

let output_path = "BENCH_lookup.json"

let run ?(smoke = false) ~scale () =
  header
    (Printf.sprintf "Lookup perf — Bloom-guided floods + Zipf caching%s"
       (if smoke then " (smoke)" else ""));
  let exponents = if smoke then [ gate_zipf ] else [ 0.0; 0.5; gate_zipf ] in
  let ps_list = if smoke then [ gate_ps ] else [ 0.5; gate_ps ] in
  (* The roadmap's gate point is measured over 10k lookups, regardless of
     which topology scale carries them. *)
  let lookups = if smoke then 600 else max scale.n_lookups 10_000 in
  row "%6s %5s  %-12s %10s %10s %10s %8s %8s %8s\n" "zipf" "ps" "config"
    "visits/lk" "msgs/lk" "connum/lk" "hit%" "recall" "wall s";
  let samples = ref [] in
  let recall_failures = ref [] in
  List.iter
    (fun exponent ->
      List.iter
        (fun ps ->
          let point =
            List.map (measure ~scale ~lookups ~ps ~exponent) variants
          in
          let baseline = List.hd point in
          List.iter
            (fun s ->
              row "%6.2f %5.2f  %-12s %10.2f %10.2f %10.2f %7.1f%% %8.3f %8.2f\n"
                s.zipf s.ps s.variant s.visits_per_lookup s.messages_per_lookup
                s.connum_per_lookup (100.0 *. s.cache_hit_rate) s.recall s.wall_s;
              if s.cache_hit_rate > 0.0 then
                row
                  "              %-12s analytic per-requester floor %.1f%% \
                   (see EXPERIMENTS.md: hit rate vs lookup volume)\n"
                  s.variant
                  (100.0 *. s.expected_hit_rate);
              if s.recall < baseline.recall then
                recall_failures :=
                  Printf.sprintf
                    "zipf=%.2f ps=%.2f %s: recall %.4f < baseline %.4f"
                    s.zipf s.ps s.variant s.recall baseline.recall
                  :: !recall_failures)
            point;
          samples := !samples @ point)
        ps_list)
    exponents;
  (* Reduction gate at the roadmap point: bloom+cache vs baseline. *)
  let at variant =
    List.find_opt
      (fun s -> s.variant = variant && s.zipf = gate_zipf && s.ps = gate_ps)
      !samples
  in
  let gate_json, reduction_ok =
    match (at "baseline", at "bloom+cache") with
    | Some base, Some accel ->
      let reduction = 1.0 -. (accel.visits_per_lookup /. base.visits_per_lookup) in
      row
        "\ngate (zipf=%.1f, ps=%.1f): flood visits/lookup %.2f -> %.2f \
         (%.1f%% reduction), recall %.3f -> %.3f\n"
        gate_zipf gate_ps base.visits_per_lookup accel.visits_per_lookup
        (100.0 *. reduction) base.recall accel.recall;
      ( Json.Obj
          [
            ("zipf", Json.Float gate_zipf);
            ("ps", Json.Float gate_ps);
            ("baseline_visits_per_lookup", Json.Float base.visits_per_lookup);
            ("accelerated_visits_per_lookup", Json.Float accel.visits_per_lookup);
            ("reduction", Json.Float reduction);
            ("baseline_recall", Json.Float base.recall);
            ("accelerated_recall", Json.Float accel.recall);
          ],
        reduction >= 0.4 )
    | _ -> (Json.Null, true)
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.String "lookup_perf");
        ("scale", Json.String scale.label);
        ("smoke", Json.Bool smoke);
        ("delta", Json.Int base_config.Config.delta);
        ("ttl", Json.Int base_config.Config.default_ttl);
        ("lookups_per_point", Json.Int lookups);
        ("points", Json.List (List.map sample_json !samples));
        ("gate", gate_json);
      ]
  in
  let oc = open_out output_path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  row "results -> %s\n" output_path;
  (match !recall_failures with
   | [] -> ()
   | fs ->
     List.iter (fun f -> Printf.eprintf "lookup_perf: RECALL REGRESSION %s\n" f) fs;
     exit 1);
  (match List.rev !slo_failures with
   | [] -> ()
   | fs ->
     List.iter (fun f -> Printf.eprintf "lookup_perf: SLO VIOLATION at %s\n" f) fs;
     exit 1);
  (* The 40%-fewer-visits target is enforced only on full runs: smoke
     workloads are too small to hold the bench to a perf promise. *)
  if (not smoke) && not reduction_ok then begin
    Printf.eprintf "lookup_perf: flood-visit reduction below the 40%% target\n";
    exit 1
  end
