module Engine = P2p_sim.Engine
module Trace = P2p_sim.Trace
module Routing = P2p_topology.Routing
module Link_stress = P2p_topology.Link_stress

type t = {
  engine : Engine.t;
  routing : Routing.t;
  metrics : Metrics.t;
  stress : Link_stress.t option;
  processing_delay : float;
  mutable transmission_delay : (src:int -> dst:int -> float) option;
  trace : Trace.t;
}

let create ~engine ~routing ~metrics ?stress ?(trace = Trace.disabled)
    ~processing_delay () =
  if processing_delay < 0.0 then invalid_arg "Underlay.create: negative processing delay";
  {
    engine;
    routing;
    metrics;
    stress;
    processing_delay;
    transmission_delay = None;
    trace;
  }

let set_transmission_delay t f = t.transmission_delay <- Some f

(* hoisted so the per-message schedule call allocates no [Some] *)
let message_label = Some "message"

let delay t ~src ~dst =
  let transmission =
    match t.transmission_delay with Some f -> f ~src ~dst | None -> 0.0
  in
  if src = dst then t.processing_delay
  else Routing.distance t.routing src dst +. t.processing_delay +. transmission

let send t ?op ?shard ~src ~dst f =
  (* default sharding: by destination host, so deliveries to one host
     stay in one lane; the overlay passes ring-segment shards instead *)
  let shard = match shard with Some s -> s | None -> dst in
  let path_hops =
    if src = dst then 0
    else begin
      (match t.stress with
       | Some stress -> Link_stress.charge_path stress (Routing.path t.routing src dst)
       | None -> ());
      Routing.hop_count t.routing src dst
    end
  in
  Metrics.record_message t.metrics ~physical_hops:path_hops;
  let message_delay = delay t ~src ~dst in
  (* guard: even a disabled trace pays a closure per [record_f] call
     (ikfprintf), and on a sampled trace an unsampled op would still pay
     the format machinery plus the [Some src]/[Some dst] wrappers — so
     decide sampling before building anything *)
  if
    Trace.enabled t.trace
    && (match op with None -> true | Some o -> Trace.sampled t.trace o)
  then
    Trace.record_f t.trace ~time:(Engine.now t.engine) ~tag:"message" ?op ~src
      ~dst "%.2f ms, %d links" message_delay path_hops;
  (* deliveries are never cancelled: the detached path skips the handle *)
  Engine.schedule_detached t.engine ~label:message_label ~shard
    ~delay:message_delay f

let engine t = t.engine
let trace t = t.trace
let metrics t = t.metrics
let routing t = t.routing
