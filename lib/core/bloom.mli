(** Space-efficient approximate key sets for s-tree edge summaries.

    A plain bit-array Bloom filter: [mem] answers "possibly present" or
    "definitely absent" — it can return false positives but never false
    negatives for keys that were [add]ed.  That one-sidedness is exactly
    what flood pruning needs: a branch whose filter misses the key can be
    skipped without ever hiding data, while a false positive merely costs
    the messages the unpruned flood would have sent anyway.

    Geometry is fixed at creation from the expected key count and a
    bits-per-key budget; the hash family is derived from two seeded hashes
    by double hashing, so no per-probe hashing cost. *)

type t

(** [create ~expected ~bits_per_key] sizes the filter for [expected] keys
    at [bits_per_key] bits each (minimum 64 bits total) and picks the
    matching hash count (≈ 0.7·bits_per_key).
    @raise Invalid_argument when [bits_per_key <= 0]. *)
val create : expected:int -> bits_per_key:int -> t

val add : t -> string -> unit

(** [mem t key] — [false] means [key] was definitely never added; [true]
    means it probably was (false-positive rate ≈ 0.6^bits_per_key when
    loaded at the design point). *)
val mem : t -> string -> bool

(** Number of [add] calls (duplicates counted). *)
val count : t -> int

val nbits : t -> int

(** Fraction of set bits — a load gauge; ≈ 0.5 at the design point. *)
val fill_ratio : t -> float
