(** Empirical probability density functions over integer observations.

    The paper's Fig. 4 plots the PDF of the number of data items stored per
    peer.  This module turns a {!Histogram.t} into a normalized density and
    extracts the headline quantities quoted in the paper (fraction of peers
    with zero items, fraction below a threshold, maximum load). *)

type point = { value : int; density : float }

(** [of_histogram h ~bin_width] is the normalized PDF with the given bin
    width: each point's [density] is the fraction of observations falling in
    [\[value, value + bin_width)]. *)
val of_histogram : Histogram.t -> bin_width:int -> point list

(** Fraction of observations equal to zero. *)
val fraction_zero : Histogram.t -> float

(** [fraction_below h v] is the fraction of observations strictly less than
    [v]. *)
val fraction_below : Histogram.t -> int -> float

(** Largest observation, [0] when empty. *)
val max_load : Histogram.t -> int

(** Renders the PDF as aligned text rows ["value density"] for figure
    regeneration. *)
val pp_series : Format.formatter -> point list -> unit
